package modelir_test

import (
	"math"
	"path/filepath"
	"testing"

	"modelir"
)

// The facade tests exercise the public API exactly as a downstream user
// would: generate an archive, register it, query it with each model
// family, and check the results are sane. Detailed behaviour is covered
// by the internal package suites.

func TestPublicTupleRetrieval(t *testing.T) {
	pts, err := modelir.GenerateTuples(1, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := modelir.NewEngine()
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	m, err := modelir.NewLinearModel([]string{"a", "b", "c"}, []float64{1, 1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	items, st, err := e.LinearTopKTuples("t", m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("items=%d", len(items))
	}
	if st.Indexed.PointsTouched >= len(pts) {
		t.Fatal("index did not prune")
	}
	// Scores must be real model values, descending.
	for i, it := range items {
		got, err := m.Eval(pts[it.ID])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-it.Score) > 1e-12 {
			t.Fatalf("score mismatch at %d", i)
		}
		if i > 0 && items[i-1].Score < it.Score {
			t.Fatal("results not descending")
		}
	}
}

func TestPublicSceneWorkflow(t *testing.T) {
	scene, err := modelir.GenerateScene(modelir.SceneConfig{Seed: 2, W: 64, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := modelir.BuildSceneArchive("s", scene.Bands, modelir.ArchiveOptions{
		TileSize: 16, PyramidLevels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip via disk like the CLI does.
	path := filepath.Join(t.TempDir(), "s.gob")
	if err := arch.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := modelir.LoadSceneArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	e := modelir.NewEngine()
	if err := e.AddScene("s", loaded); err != nil {
		t.Fatal(err)
	}
	pm, err := modelir.DecomposeLinear(modelir.HPSRiskModel(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	items, _, err := e.SceneTopK("s", pm, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("items=%d", len(items))
	}
}

func TestPublicFSMAndKnowledge(t *testing.T) {
	e := modelir.NewEngine()
	weather, err := modelir.GenerateWeather(modelir.WeatherConfig{Seed: 3, Regions: 20, Days: 365})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("w", weather); err != nil {
		t.Fatal(err)
	}
	items, _, err := e.FSMTopK("w", modelir.FireAntsModel(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("no fly-risk regions found in a warm archive")
	}

	wells, planted, err := modelir.GenerateWells(modelir.WellConfig{Seed: 4, Wells: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("g", wells); err != nil {
		t.Fatal(err)
	}
	q := modelir.GeologyQuery{
		Sequence: []modelir.Lithology{modelir.Shale, modelir.Sandstone, modelir.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	matches, _, err := e.GeologyTopK("g", q, len(wells), modelir.GeoPruned)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[int]bool)
	for _, m := range matches {
		if m.Score >= 0.999 {
			got[m.Well] = true
		}
	}
	for _, w := range planted {
		if !got[w] {
			t.Fatalf("planted well %d missing", w)
		}
	}
}

func TestPublicModelHelpers(t *testing.T) {
	if p := modelir.ForeclosureProbability(680); math.Abs(p-0.02) > 0.001 {
		t.Fatalf("P(680)=%v", p)
	}
	credit := modelir.CreditScoreModel()
	clean := make([]float64, credit.NumTerms())
	if s, _ := credit.Eval(clean); s != 900 {
		t.Fatalf("clean score %v", s)
	}
	d, err := modelir.MachineDistance(modelir.FireAntsModel(), modelir.FireAntsModel(), 8)
	if err != nil || d != 0 {
		t.Fatalf("self distance %v err %v", d, err)
	}
	nw, vars, err := modelir.HPSNetwork()
	if err != nil {
		t.Fatal(err)
	}
	p, err := nw.ProbTrue(vars.HighRisk, map[int]int{vars.House: 1, vars.Bushes: 1,
		vars.WetSeason: 1, vars.DrySeason: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Fatalf("evidenced HPS risk %v", p)
	}
	wf, err := modelir.NewWorkflow([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := wf.Calibrate([][]float64{{0}, {1}, {2}, {3}}, []float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-2) > 1e-9 || math.Abs(m.Intercept-1) > 1e-9 {
		t.Fatalf("fit %v + %v", m.Coeffs, m.Intercept)
	}
}

func TestPublicProgressiveCompare(t *testing.T) {
	scene, err := modelir.GenerateScene(modelir.SceneConfig{Seed: 5, W: 96, H: 96})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := modelir.BuildSceneArchive("s", scene.Bands, modelir.ArchiveOptions{
		TileSize: 16, PyramidLevels: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := modelir.DecomposeLinear(modelir.HPSRiskModel(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, items, err := modelir.CompareProgressive(pm, arch, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("items=%d", len(items))
	}
	if sp.PmPd() < 1 {
		t.Fatalf("combined speedup %v < 1", sp.PmPd())
	}
}

func TestPublicShardedEngineOptions(t *testing.T) {
	pts, err := modelir.GenerateTuples(2, 6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := modelir.NewLinearModel([]string{"a", "b", "c"}, []float64{2, -1, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want []modelir.Item
	for _, shards := range []int{1, 3, 8} {
		e := modelir.NewEngineWithOptions(modelir.EngineOptions{Shards: shards})
		if e.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", e.NumShards(), shards)
		}
		if err := e.AddTuples("t", pts); err != nil {
			t.Fatal(err)
		}
		items, _, err := e.LinearTopKTuples("t", m, 7)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = items
			continue
		}
		if len(items) != len(want) {
			t.Fatalf("shards=%d: %d vs %d items", shards, len(items), len(want))
		}
		for i := range want {
			if items[i].ID != want[i].ID || items[i].Score != want[i].Score {
				t.Fatalf("shards=%d pos %d: %+v vs %+v", shards, i, items[i], want[i])
			}
		}
	}
	// Zero options default to GOMAXPROCS shards.
	if got := modelir.NewEngineWithOptions(modelir.EngineOptions{}).NumShards(); got < 1 {
		t.Fatalf("default NumShards = %d", got)
	}
}
