package modelir_test

import (
	"context"
	"fmt"
	"log"

	"modelir"
)

// Retrieval by linear model over a tuple archive through the unified
// request API: the library's core loop.
func ExampleEngine_Run() {
	points := [][]float64{
		{1, 0, 0},
		{0, 2, 0},
		{5, 5, 5},
		{-1, -1, -1},
	}
	engine := modelir.NewEngine()
	if err := engine.AddTuples("demo", points); err != nil {
		log.Fatal(err)
	}
	model, err := modelir.NewLinearModel([]string{"a", "b", "c"}, []float64{1, 1, 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Run(context.Background(), modelir.Request{
		Dataset: "demo",
		Query:   modelir.LinearQuery{Model: model},
		K:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range res.Items {
		fmt.Printf("tuple %d scores %.0f\n", it.ID, it.Score)
	}
	// Output:
	// tuple 2 scores 15
	// tuple 1 scores 2
}

// The paper's HPS risk model evaluated at one location.
func ExampleHPSRiskModel() {
	m := modelir.HPSRiskModel()
	// Band 4 = 100 DN, band 5 = 50 DN, band 7 = 20 DN, elevation 300 m.
	r, err := m.Eval([]float64{100, 50, 20, 300})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R = %.2f\n", r)
	// Output:
	// R = 113.36
}

// The Fig. 1 fire-ants machine: rain, then three dry days, the third
// at or above 25°C.
func ExampleFireAntsModel() {
	m := modelir.FireAntsModel()
	const (
		rain    = modelir.Event(0)
		dryHot  = modelir.Event(1)
		dryCold = modelir.Event(2)
	)
	res, err := m.Run([]modelir.Event{rain, dryHot, dryCold, dryHot})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ants fly after day %d\n", res.FirstAccept+1)
	// Output:
	// ants fly after day 4
}

// Machine minimization: the Fig. 1 machine as drawn has a redundant
// state.
func ExampleMinimizeMachine() {
	m := modelir.FireAntsModel()
	min, err := modelir.MinimizeMachine(m)
	if err != nil {
		log.Fatal(err)
	}
	eq, err := modelir.MachinesEquivalent(m, min)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d states -> %d states, equivalent: %v\n",
		m.NumStates(), min.NumStates(), eq)
	// Output:
	// 5 states -> 4 states, equivalent: true
}

// Credit scoring with the published calibration anchors.
func ExampleForeclosureProbability() {
	fmt.Printf("P(foreclose | 680) = %.0f%%\n", 100*modelir.ForeclosureProbability(680))
	fmt.Printf("P(foreclose | 620) = %.0f%%\n", 100*modelir.ForeclosureProbability(620))
	// Output:
	// P(foreclose | 680) = 2%
	// P(foreclose | 620) = 8%
}

// Fig. 5 workflow: calibrate a model from observations, then revise it
// with retrieved-and-verified rows.
func ExampleNewWorkflow() {
	wf, err := modelir.NewWorkflow([]string{"soil_temp"})
	if err != nil {
		log.Fatal(err)
	}
	// Grasshopper activity is 2·soil_temp + 1 in this toy calibration.
	m, err := wf.Calibrate(
		[][]float64{{0}, {1}, {2}, {3}},
		[]float64{1, 3, 5, 7},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activity = %.0f + %.0f·soil_temp\n", m.Intercept, m.Coeffs[0])
	// Output:
	// activity = 1 + 2·soil_temp
}

// A fuzzy knowledge-model clause: "gamma ray higher than 45", graded.
func ExampleNewRuleSet() {
	rules := modelir.NewRuleSet()
	rules.Require("gamma", gammaAbove{})
	score, err := rules.Score(map[string]float64{"gamma": 55})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grade = %.1f\n", score)
	// Output:
	// grade = 1.0
}

// gammaAbove is a crisp "greater than 45" membership for the example.
type gammaAbove struct{}

func (gammaAbove) Grade(v float64) float64 {
	if v > 45 {
		return 1
	}
	return 0
}
