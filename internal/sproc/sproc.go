// Package sproc implements SPROC, the paper's search-space pruning
// machinery for fuzzy Cartesian (composite-object) queries [15,16]
// (Section 3.2). A query asks for the top-K assignments of M rule slots
// to database items, scored by fuzzy-AND (min) over per-slot unary grades
// and between-slot pairwise constraints — e.g. the geology model of
// Fig. 4: slot 1 = shale, slot 2 = sandstone adjacent below, slot 3 =
// siltstone adjacent below, all with gamma > 45.
//
// Three evaluators are provided:
//
//   - BruteForce — enumerates all L^M tuples; the paper's O(L^M) baseline
//     (guarded by a combination cap).
//   - DP — exact top-K dynamic programming keeping the K best partial
//     assignments per (slot, ending item): O(M·K·L²), the complexity the
//     paper quotes for SPROC [15].
//   - Pruned — the [16]-style refinement: a cheap beam pass derives a
//     lower bound on the K-th best score, unary-sorted item lists then
//     discard every item that cannot beat it (sound under min semantics
//     because a tuple's score never exceeds any of its unary grades),
//     and the exact DP runs on the survivors: O(M·L·log L + DP on L').
package sproc

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"modelir/internal/topk"
)

// Query defines an M-slot fuzzy Cartesian query over items 0..L-1.
type Query struct {
	// M is the number of rule slots (>= 1).
	M int
	// Unary grades item `item` for slot m (0-based); must return a value
	// in [0, 1].
	Unary func(m, item int) float64
	// Pair grades the compatibility of consecutive slot assignments:
	// prev fills slot m-1, cur fills slot m (m in [1, M)). Must return a
	// value in [0, 1]. May be nil when M == 1 or there are no pairwise
	// constraints (treated as always 1).
	Pair func(m, prev, cur int) float64
}

// Match is one scored slot assignment.
type Match struct {
	Items []int
	Score float64
}

// Stats counts the work an evaluation did.
type Stats struct {
	UnaryEvals int
	PairEvals  int
	// TuplesConsidered counts complete or partial assignments extended.
	TuplesConsidered int
	// ItemsAfterPrune reports the per-slot surviving item counts for
	// Pruned (nil otherwise).
	ItemsAfterPrune []int
}

// MaxBruteForceTuples caps BruteForce enumeration.
const MaxBruteForceTuples = 20_000_000

func (q Query) validate(l int) error {
	if q.M < 1 {
		return errors.New("sproc: query needs M >= 1 slots")
	}
	if l < 1 {
		return errors.New("sproc: empty item set")
	}
	if q.Unary == nil {
		return errors.New("sproc: nil unary scorer")
	}
	if q.M > 1 && q.Pair == nil {
		return errors.New("sproc: nil pair scorer for multi-slot query")
	}
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ctxCheckMask amortizes the evaluators' cooperative-cancellation
// polls: the non-blocking ctx.Done() select runs once every 64 units
// of inner-loop work (branch expansions, DP cells) instead of every
// unit. Each evaluator performs one final ctx.Err() read before
// returning its matches, so a cancellation that lands between polls is
// still surfaced — an evaluation never returns normal results from a
// cancelled context.
const ctxCheckMask = 63

// ctxTicker is the amortized poll state one evaluation threads through
// its loops.
type ctxTicker struct {
	ctx  context.Context
	done <-chan struct{}
	n    uint
}

func newCtxTicker(ctx context.Context) *ctxTicker {
	return &ctxTicker{ctx: ctx, done: ctx.Done()}
}

// tick polls ctx on every 64th call and returns its error once fired.
func (t *ctxTicker) tick() error {
	t.n++
	if t.n&ctxCheckMask != 0 {
		return nil
	}
	select {
	case <-t.done:
		return t.ctx.Err()
	default:
		return nil
	}
}

// BruteForce enumerates every tuple. Errors if L^M exceeds
// MaxBruteForceTuples.
func BruteForce(l int, q Query, k int) ([]Match, Stats, error) {
	return BruteForceCtx(context.Background(), l, q, k)
}

// BruteForceCtx is BruteForce with cooperative cancellation: the context
// is checked once per enumeration branch, and a cancelled evaluation
// returns ctx.Err().
func BruteForceCtx(ctx context.Context, l int, q Query, k int) ([]Match, Stats, error) {
	var st Stats
	if err := q.validate(l); err != nil {
		return nil, st, err
	}
	total := 1
	for m := 0; m < q.M; m++ {
		total *= l
		if total > MaxBruteForceTuples {
			return nil, st, fmt.Errorf("sproc: %d^%d tuples exceed brute-force cap", l, q.M)
		}
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, st, err
	}
	tick := newCtxTicker(ctx)
	items := make([]int, q.M)
	// Pre-compute unary grades (the baseline still pays L·M evals).
	unary := precomputeUnary(l, q, &st)
	var rec func(m int, score float64) error
	id := int64(0)
	rec = func(m int, score float64) error {
		if m == q.M {
			st.TuplesConsidered++
			tuple := make([]int, q.M)
			copy(tuple, items)
			h.Offer(topk.Item{ID: id, Score: score, Payload: tuple})
			id++
			return nil
		}
		if err := tick.tick(); err != nil {
			return err
		}
		for j := 0; j < l; j++ {
			s := minF(score, unary[m][j])
			if m > 0 {
				st.PairEvals++
				s = minF(s, q.Pair(m, items[m-1], j))
			}
			items[m] = j
			if err := rec(m+1, s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 1); err != nil {
		return nil, st, err
	}
	// Final poll: a cancellation that landed between amortized checks
	// must not be swallowed by a completed enumeration.
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	return heapToMatches(h), st, nil
}

// DP computes the exact top-K by dynamic programming: for each slot m and
// ending item j it keeps the K best partial scores (with back-pointers),
// transitioning over all L predecessor items — O(M·K·L²).
func DP(l int, q Query, k int) ([]Match, Stats, error) {
	return DPCtx(context.Background(), l, q, k)
}

// DPCtx is DP with cooperative cancellation: the context is checked once
// per (slot, ending item) DP cell, and a cancelled evaluation returns
// ctx.Err().
func DPCtx(ctx context.Context, l int, q Query, k int) ([]Match, Stats, error) {
	var st Stats
	if err := q.validate(l); err != nil {
		return nil, st, err
	}
	if k < 1 {
		return nil, st, errors.New("sproc: k must be >= 1")
	}
	items := make([]int, l)
	for j := range items {
		items[j] = j
	}
	unary := precomputeUnary(l, q, &st)
	return dpOver(ctx, items, unary, q, k, &st)
}

// Pruned runs the [16]-style sorted pruning, then exact DP on survivors:
//  1. Beam pass (width k) finds a lower bound LB on the k-th best score.
//  2. Any item with unary grade <= LB for its slot cannot appear in a
//     better-than-LB tuple (min semantics), so it is discarded — unless
//     fewer than k items survive a slot, in which case the slot keeps its
//     k best items to preserve exact top-K.
//  3. Exact DP over the surviving items.
func Pruned(l int, q Query, k int) ([]Match, Stats, error) {
	return PrunedCtx(context.Background(), l, q, k)
}

// PrunedCtx is Pruned with cooperative cancellation: the context is
// checked per beam slot and per DP cell, and a cancelled evaluation
// returns ctx.Err().
func PrunedCtx(ctx context.Context, l int, q Query, k int) ([]Match, Stats, error) {
	var st Stats
	if err := q.validate(l); err != nil {
		return nil, st, err
	}
	if k < 1 {
		return nil, st, errors.New("sproc: k must be >= 1")
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	unary := precomputeUnary(l, q, &st)

	// Stage 1: beam lower bound.
	lb, err := beamLowerBound(ctx, l, unary, q, k, &st)
	if err != nil {
		return nil, st, err
	}

	// Stage 2: sorted pruning per slot.
	st.ItemsAfterPrune = make([]int, q.M)
	kept := make([][]int, q.M)
	for m := 0; m < q.M; m++ {
		idx := make([]int, l)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool {
			if unary[m][idx[a]] != unary[m][idx[b]] {
				return unary[m][idx[a]] > unary[m][idx[b]]
			}
			return idx[a] < idx[b]
		})
		// Keep items with unary >= lb: a tuple scoring at least lb needs
		// every unary grade >= lb (min semantics), and the binding grade
		// of the k-th best tuple may equal lb exactly, so the comparison
		// must not be strict. Items grading exactly 0 are additionally
		// dropped even when lb == 0 — they can only form zero-score
		// (non-match) tuples, whose tie-break identity is not part of
		// the exactness contract; the keep-at-least-k fallback below
		// still guarantees k results.
		cut := 0
		for cut < l && unary[m][idx[cut]] >= lb && unary[m][idx[cut]] > 0 {
			cut++
		}
		if cut < k {
			cut = k
			if cut > l {
				cut = l
			}
		}
		slot := make([]int, cut)
		copy(slot, idx[:cut])
		sort.Ints(slot)
		kept[m] = slot
		st.ItemsAfterPrune[m] = cut
	}

	// Stage 3: exact DP over survivors. Different slots may keep
	// different item subsets, so dpOver receives per-slot item lists.
	return dpOverPerSlot(ctx, kept, unary, q, k, &st)
}

func precomputeUnary(l int, q Query, st *Stats) [][]float64 {
	unary := make([][]float64, q.M)
	for m := 0; m < q.M; m++ {
		unary[m] = make([]float64, l)
		for j := 0; j < l; j++ {
			unary[m][j] = q.Unary(m, j)
			st.UnaryEvals++
		}
	}
	return unary
}

// beamLowerBound runs a width-k greedy beam over slots and returns the
// k-th best (or worst surviving) complete score — a valid lower bound on
// the true k-th best, used only for pruning.
func beamLowerBound(ctx context.Context, l int, unary [][]float64, q Query, k int, st *Stats) (float64, error) {
	type partial struct {
		item  int
		score float64
	}
	done := ctx.Done()
	beam := make([]partial, 0, k)
	// Seed with the k best slot-0 items.
	idx := topk.SelectTopK(unary[0], k)
	for _, it := range idx {
		beam = append(beam, partial{item: int(it.ID), score: it.Score})
	}
	for m := 1; m < q.M; m++ {
		select {
		case <-done:
			return 0, ctx.Err()
		default:
		}
		h := topk.MustHeap(k)
		for bi, p := range beam {
			for j := 0; j < l; j++ {
				st.PairEvals++
				s := minF(p.score, minF(unary[m][j], q.Pair(m, p.item, j)))
				h.Offer(topk.Item{ID: int64(bi*l + j), Score: s, Payload: j})
			}
		}
		res := h.Results()
		nb := make([]partial, 0, len(res))
		for _, it := range res {
			j, ok := it.Payload.(int)
			if !ok {
				continue // cannot happen; payloads are ints by construction
			}
			nb = append(nb, partial{item: j, score: it.Score})
		}
		beam = nb
	}
	if len(beam) == 0 {
		return 0, nil
	}
	// Worst score still on the beam is the bound.
	lb := beam[0].score
	for _, p := range beam[1:] {
		if p.score < lb {
			lb = p.score
		}
	}
	return lb, nil
}

type dpEntry struct {
	score    float64
	prevItem int // index into previous slot's item list, -1 for slot 0
	prevSlot int // which of the K entries of the predecessor
}

// dpOver runs exact top-K DP when every slot uses the same item list.
func dpOver(ctx context.Context, items []int, unary [][]float64, q Query, k int, st *Stats) ([]Match, Stats, error) {
	perSlot := make([][]int, q.M)
	for m := range perSlot {
		perSlot[m] = items
	}
	return dpOverPerSlot(ctx, perSlot, unary, q, k, st)
}

// dpOverPerSlot runs exact top-K DP with per-slot candidate item lists.
// unary is indexed by original item id.
func dpOverPerSlot(ctx context.Context, perSlot [][]int, unary [][]float64, q Query, k int, st *Stats) ([]Match, Stats, error) {
	tick := newCtxTicker(ctx)
	m0 := perSlot[0]
	// table[m][ji] = up to k entries, best first.
	table := make([][][]dpEntry, q.M)
	table[0] = make([][]dpEntry, len(m0))
	for ji, j := range m0 {
		table[0][ji] = []dpEntry{{score: unary[0][j], prevItem: -1, prevSlot: -1}}
		st.TuplesConsidered++
	}
	for m := 1; m < q.M; m++ {
		cur := perSlot[m]
		prev := perSlot[m-1]
		table[m] = make([][]dpEntry, len(cur))
		for ji, j := range cur {
			if err := tick.tick(); err != nil {
				return nil, *st, err
			}
			h := topk.MustHeap(k)
			for pi, p := range prev {
				st.PairEvals++
				pairS := q.Pair(m, p, j)
				for si, e := range table[m-1][pi] {
					s := minF(e.score, minF(unary[m][j], pairS))
					st.TuplesConsidered++
					h.Offer(topk.Item{
						ID:      int64(pi)*int64(k+1) + int64(si),
						Score:   s,
						Payload: [2]int{pi, si},
					})
				}
			}
			res := h.Results()
			entries := make([]dpEntry, 0, len(res))
			for _, it := range res {
				ps, ok := it.Payload.([2]int)
				if !ok {
					return nil, *st, errors.New("sproc: internal payload corruption")
				}
				entries = append(entries, dpEntry{score: it.Score, prevItem: ps[0], prevSlot: ps[1]})
			}
			table[m][ji] = entries
		}
	}
	// Final poll (see ctxCheckMask): a cancellation between amortized
	// checks must surface even when the DP table completed.
	if err := ctx.Err(); err != nil {
		return nil, *st, err
	}
	// Collect global top-K over final-slot entries.
	h := topk.MustHeap(k)
	last := q.M - 1
	for ji := range perSlot[last] {
		for si, e := range table[last][ji] {
			h.Offer(topk.Item{
				ID:      int64(ji)*int64(k+1) + int64(si),
				Score:   e.score,
				Payload: [2]int{ji, si},
			})
		}
	}
	var out []Match
	for _, it := range h.Results() {
		ps, ok := it.Payload.([2]int)
		if !ok {
			return nil, *st, errors.New("sproc: internal payload corruption")
		}
		items := make([]int, q.M)
		ji, si := ps[0], ps[1]
		for m := last; m >= 0; m-- {
			items[m] = perSlot[m][ji]
			e := table[m][ji][si]
			ji, si = e.prevItem, e.prevSlot
		}
		out = append(out, Match{Items: items, Score: it.Score})
	}
	return out, *st, nil
}

func heapToMatches(h *topk.Heap) []Match {
	res := h.Results()
	out := make([]Match, 0, len(res))
	for _, it := range res {
		tuple, ok := it.Payload.([]int)
		if !ok {
			continue // cannot happen; payloads are tuples by construction
		}
		out = append(out, Match{Items: tuple, Score: it.Score})
	}
	return out
}
