// Top-1 DP with a reusable scratch. The engine's geology scan asks
// every well for its single best slot assignment (k == 1); running the
// general DP for that pays per-cell heaps with boxed payloads, a
// [][]float64 unary table and a three-level back-pointer table — per
// well, per query. DP1Ctx is the same dynamic program specialized to
// k == 1: per (slot, item) cell it keeps one best score and one back
// pointer in flat scratch arrays, with the identical tie rule (equal
// scores resolve to the smallest predecessor index, matching the
// (score, ID) heap order DPCtx uses), the identical Stats counters and
// the identical cancellation points — so its answer and accounting are
// bit-identical to DPCtx(ctx, l, q, 1)'s first match, at zero
// steady-state allocations.

package sproc

import "context"

// Scratch is DP1Ctx's reusable working set. Buffers regrow as needed;
// one scratch must not be shared concurrently — pool one per worker.
type Scratch struct {
	unary     []float64 // M*L unary grades, slot-major
	prev, cur []float64 // per-item best partial scores, two slots
	back      []int     // M*L back pointers (best predecessor item)
	items     []int     // reconstructed winning assignment
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) size(m, l int) {
	if cap(sc.unary) < m*l {
		sc.unary = make([]float64, m*l)
		sc.back = make([]int, m*l)
	}
	sc.unary = sc.unary[:m*l]
	sc.back = sc.back[:m*l]
	if cap(sc.prev) < l {
		sc.prev = make([]float64, l)
		sc.cur = make([]float64, l)
	}
	sc.prev, sc.cur = sc.prev[:l], sc.cur[:l]
	if cap(sc.items) < m {
		sc.items = make([]int, m)
	}
	sc.items = sc.items[:m]
}

// DP1Ctx computes the exact best (top-1) assignment. The returned
// Match.Items slice is owned by the scratch and valid only until the
// next DP1Ctx call with the same scratch; callers that retain it must
// copy. Stats and the match are bit-identical to DPCtx(ctx, l, q, 1).
func DP1Ctx(ctx context.Context, l int, q Query, sc *Scratch) (Match, Stats, error) {
	var st Stats
	if err := q.validate(l); err != nil {
		return Match{}, st, err
	}
	sc.size(q.M, l)
	tick := newCtxTicker(ctx)

	// Unary precompute, slot-major — the same evaluation order and
	// count as precomputeUnary.
	for m := 0; m < q.M; m++ {
		row := sc.unary[m*l : (m+1)*l]
		for j := 0; j < l; j++ {
			row[j] = q.Unary(m, j)
			st.UnaryEvals++
		}
	}

	// Slot 0 seeds the partial scores (one tuple considered per item,
	// as in the general DP's first table row).
	copy(sc.prev, sc.unary[:l])
	st.TuplesConsidered += l

	for m := 1; m < q.M; m++ {
		row := sc.unary[m*l : (m+1)*l]
		backRow := sc.back[m*l : (m+1)*l]
		for j := 0; j < l; j++ {
			if err := tick.tick(); err != nil {
				return Match{}, st, err
			}
			u := row[j]
			best, bestPi := -1.0, -1
			for pi := 0; pi < l; pi++ {
				st.PairEvals++
				pairS := q.Pair(m, pi, j)
				s := minF(sc.prev[pi], minF(u, pairS))
				st.TuplesConsidered++
				// Strictly greater keeps the first (smallest) pi on
				// ties — the (score, ID) order of the general DP's
				// per-cell heap.
				if bestPi < 0 || s > best {
					best, bestPi = s, pi
				}
			}
			sc.cur[j] = best
			backRow[j] = bestPi
		}
		sc.prev, sc.cur = sc.cur, sc.prev
	}
	// Final poll (see ctxCheckMask): a cancellation between amortized
	// checks must surface even when the DP completed.
	if err := ctx.Err(); err != nil {
		return Match{}, st, err
	}

	// Global best over the last slot, ties to the smallest item index.
	bestJ := 0
	for j := 1; j < l; j++ {
		if sc.prev[j] > sc.prev[bestJ] {
			bestJ = j
		}
	}
	items := sc.items
	items[q.M-1] = bestJ
	for m := q.M - 1; m >= 1; m-- {
		items[m-1] = sc.back[m*l+items[m]]
	}
	return Match{Items: items, Score: sc.prev[bestJ]}, st, nil
}
