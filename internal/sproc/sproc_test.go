package sproc

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomQuery builds a query with deterministic random unary and pair
// tables so all three evaluators can be cross-checked.
func randomQuery(seed int64, l, m int) Query {
	rng := rand.New(rand.NewSource(seed))
	unary := make([][]float64, m)
	for mi := range unary {
		unary[mi] = make([]float64, l)
		for j := range unary[mi] {
			unary[mi][j] = rng.Float64()
		}
	}
	pair := make([][][]float64, m)
	for mi := 1; mi < m; mi++ {
		pair[mi] = make([][]float64, l)
		for a := 0; a < l; a++ {
			pair[mi][a] = make([]float64, l)
			for b := 0; b < l; b++ {
				pair[mi][a][b] = rng.Float64()
			}
		}
	}
	return Query{
		M:     m,
		Unary: func(mi, item int) float64 { return unary[mi][item] },
		Pair:  func(mi, prev, cur int) float64 { return pair[mi][prev][cur] },
	}
}

func scoreTuple(q Query, items []int) float64 {
	s := 1.0
	for m, j := range items {
		s = math.Min(s, q.Unary(m, j))
		if m > 0 {
			s = math.Min(s, q.Pair(m, items[m-1], j))
		}
	}
	return s
}

func TestValidation(t *testing.T) {
	q := randomQuery(1, 5, 2)
	if _, _, err := BruteForce(0, q, 1); err == nil {
		t.Fatal("want empty-set error")
	}
	if _, _, err := DP(5, Query{M: 0}, 1); err == nil {
		t.Fatal("want M error")
	}
	if _, _, err := DP(5, Query{M: 1}, 1); err == nil {
		t.Fatal("want nil unary error")
	}
	noPair := Query{M: 2, Unary: q.Unary}
	if _, _, err := DP(5, noPair, 1); err == nil {
		t.Fatal("want nil pair error")
	}
	if _, _, err := DP(5, q, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, _, err := Pruned(5, q, 0); err == nil {
		t.Fatal("want k error")
	}
	// Brute-force cap.
	big := randomQuery(2, 100, 4)
	if _, _, err := BruteForce(100, big, 1); err == nil {
		t.Fatal("want cap error (100^4)")
	}
}

func TestSingleSlot(t *testing.T) {
	q := Query{M: 1, Unary: func(_, item int) float64 { return float64(item) / 10 }}
	got, _, err := DP(5, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Items[0] != 4 || got[1].Items[0] != 3 {
		t.Fatalf("single-slot results %+v", got)
	}
}

func TestDPMatchesBruteForce(t *testing.T) {
	for _, cfg := range []struct{ l, m, k int }{
		{8, 2, 3}, {10, 3, 5}, {6, 4, 4}, {15, 2, 10},
	} {
		q := randomQuery(int64(cfg.l*100+cfg.m), cfg.l, cfg.m)
		bf, _, err := BruteForce(cfg.l, q, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		dp, _, err := DP(cfg.l, q, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(bf) != len(dp) {
			t.Fatalf("L=%d M=%d: %d vs %d results", cfg.l, cfg.m, len(bf), len(dp))
		}
		for i := range bf {
			if math.Abs(bf[i].Score-dp[i].Score) > 1e-12 {
				t.Fatalf("L=%d M=%d pos %d: brute %v dp %v",
					cfg.l, cfg.m, i, bf[i].Score, dp[i].Score)
			}
			// DP's claimed tuple must really achieve its claimed score.
			if math.Abs(scoreTuple(q, dp[i].Items)-dp[i].Score) > 1e-12 {
				t.Fatalf("dp tuple %v scores %v, claims %v",
					dp[i].Items, scoreTuple(q, dp[i].Items), dp[i].Score)
			}
		}
	}
}

func TestPrunedMatchesDP(t *testing.T) {
	for _, cfg := range []struct{ l, m, k int }{
		{30, 3, 5}, {50, 2, 10}, {20, 4, 3},
	} {
		q := randomQuery(int64(cfg.l*7+cfg.m), cfg.l, cfg.m)
		dp, _, err := DP(cfg.l, q, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		pr, prSt, err := Pruned(cfg.l, q, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(dp) != len(pr) {
			t.Fatalf("result count %d vs %d", len(dp), len(pr))
		}
		for i := range dp {
			if math.Abs(dp[i].Score-pr[i].Score) > 1e-12 {
				t.Fatalf("pos %d: dp %v pruned %v", i, dp[i].Score, pr[i].Score)
			}
		}
		if prSt.ItemsAfterPrune == nil {
			t.Fatal("pruned stats missing")
		}
	}
}

func TestPrunedDoesLessPairWork(t *testing.T) {
	// A query with strong unary discrimination: most items grade near 0,
	// a few near 1 — pruning should collapse the candidate lists.
	l, m, k := 200, 3, 5
	rng := rand.New(rand.NewSource(9))
	unary := make([][]float64, m)
	for mi := range unary {
		unary[mi] = make([]float64, l)
		for j := range unary[mi] {
			if j%20 == 0 {
				unary[mi][j] = 0.8 + 0.2*rng.Float64()
			} else {
				unary[mi][j] = 0.3 * rng.Float64()
			}
		}
	}
	q := Query{
		M:     m,
		Unary: func(mi, item int) float64 { return unary[mi][item] },
		Pair:  func(mi, a, b int) float64 { return 0.5 + 0.5*rng.Float64() },
	}
	// Pair is stochastic here which breaks determinism between runs of
	// the two evaluators; use a deterministic pair table instead.
	pairTable := make([]float64, l*l)
	prng := rand.New(rand.NewSource(10))
	for i := range pairTable {
		pairTable[i] = 0.5 + 0.5*prng.Float64()
	}
	q.Pair = func(mi, a, b int) float64 { return pairTable[a*l+b] }

	dp, dpSt, err := DP(l, q, k)
	if err != nil {
		t.Fatal(err)
	}
	pr, prSt, err := Pruned(l, q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dp {
		if math.Abs(dp[i].Score-pr[i].Score) > 1e-12 {
			t.Fatalf("pos %d: dp %v pruned %v", i, dp[i].Score, pr[i].Score)
		}
	}
	if prSt.PairEvals*2 > dpSt.PairEvals {
		t.Fatalf("pruned pair evals %d vs dp %d: insufficient saving",
			prSt.PairEvals, dpSt.PairEvals)
	}
	for mI, n := range prSt.ItemsAfterPrune {
		if n >= l {
			t.Fatalf("slot %d kept all %d items", mI, n)
		}
	}
}

// Property: DP and brute force agree on random instances.
func TestDPExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 3 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		k := 1 + rng.Intn(6)
		q := randomQuery(seed, l, m)
		bf, _, err := BruteForce(l, q, k)
		if err != nil {
			return false
		}
		dp, _, err := DP(l, q, k)
		if err != nil {
			return false
		}
		pr, _, err := Pruned(l, q, k)
		if err != nil {
			return false
		}
		if len(bf) != len(dp) || len(bf) != len(pr) {
			return false
		}
		for i := range bf {
			if math.Abs(bf[i].Score-dp[i].Score) > 1e-12 {
				return false
			}
			if math.Abs(bf[i].Score-pr[i].Score) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsGrowth(t *testing.T) {
	// DP pair-eval count grows quadratically in L (the O(MKL²) term).
	q1 := randomQuery(11, 20, 3)
	q2 := randomQuery(11, 40, 3)
	_, st1, err := DP(20, q1, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := DP(40, q2, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(st2.PairEvals) / float64(st1.PairEvals)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("pair-eval growth %vx for 2x L, want ~4x", ratio)
	}
}

// A context cancelled from inside a scoring callback aborts every
// evaluator at its next check with ctx.Err() — the geology engine path
// relies on this to stop SPROC work mid-well.
func TestEvaluatorsCancelMidQuery(t *testing.T) {
	base := randomQuery(7, 12, 3)
	evals := map[string]func(context.Context, int, Query, int) ([]Match, Stats, error){
		"brute":  BruteForceCtx,
		"dp":     DPCtx,
		"pruned": PrunedCtx,
	}
	for name, eval := range evals {
		ctx, cancel := context.WithCancel(context.Background())
		q := base
		q.Pair = func(mi, prev, cur int) float64 {
			cancel() // fire during evaluation, after unary precompute
			return base.Pair(mi, prev, cur)
		}
		_, _, err := eval(ctx, 12, q, 2)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", name, err)
		}
	}
}

// The ctx-less entry points remain the uncancellable originals.
func TestCtxVariantsMatchPlain(t *testing.T) {
	q := randomQuery(8, 10, 3)
	ctx := context.Background()
	for name, pair := range map[string][2]func() ([]Match, Stats, error){
		"brute": {
			func() ([]Match, Stats, error) { return BruteForce(10, q, 3) },
			func() ([]Match, Stats, error) { return BruteForceCtx(ctx, 10, q, 3) },
		},
		"dp": {
			func() ([]Match, Stats, error) { return DP(10, q, 3) },
			func() ([]Match, Stats, error) { return DPCtx(ctx, 10, q, 3) },
		},
		"pruned": {
			func() ([]Match, Stats, error) { return Pruned(10, q, 3) },
			func() ([]Match, Stats, error) { return PrunedCtx(ctx, 10, q, 3) },
		},
	} {
		plain, _, err := pair[0]()
		if err != nil {
			t.Fatal(err)
		}
		withCtx, _, err := pair[1]()
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(withCtx) {
			t.Fatalf("%s: %d vs %d matches", name, len(plain), len(withCtx))
		}
		for i := range plain {
			if plain[i].Score != withCtx[i].Score {
				t.Fatalf("%s: score mismatch at %d", name, i)
			}
		}
	}
}
