package sproc

import (
	"context"
	"math/rand"
	"testing"
)

// randomTop1Query builds a random fuzzy Cartesian query over l items
// with deliberate grade collisions so the tie rules are exercised.
func randomTop1Query(rng *rand.Rand, l, m int) Query {
	unary := make([][]float64, m)
	for mi := range unary {
		unary[mi] = make([]float64, l)
		for j := range unary[mi] {
			unary[mi][j] = float64(rng.Intn(8)) / 8 // coarse: many ties
		}
	}
	pair := make([]float64, l*l)
	for i := range pair {
		pair[i] = float64(rng.Intn(4)) / 4
	}
	return Query{
		M:     m,
		Unary: func(mi, item int) float64 { return unary[mi][item] },
		Pair:  func(mi, a, b int) float64 { return pair[a*l+b] },
	}
}

// TestDP1MatchesDPTop1: DP1Ctx must reproduce DPCtx(k=1)'s first match
// — items, score and every Stats counter — across random queries,
// sizes and slot counts, with one scratch reused throughout.
func TestDP1MatchesDPTop1(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sc := NewScratch()
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		l := 1 + rng.Intn(40)
		m := 1 + rng.Intn(4)
		q := randomTop1Query(rng, l, m)
		wantMatches, wantSt, err := DPCtx(ctx, l, q, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, gotSt, err := DP1Ctx(ctx, l, q, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantMatches) != 1 {
			t.Fatalf("trial %d: DP returned %d matches", trial, len(wantMatches))
		}
		want := wantMatches[0]
		if got.Score != want.Score {
			t.Fatalf("trial %d (l=%d m=%d): score %v, want %v", trial, l, m, got.Score, want.Score)
		}
		if len(got.Items) != len(want.Items) {
			t.Fatalf("trial %d: %d items, want %d", trial, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			if got.Items[i] != want.Items[i] {
				t.Fatalf("trial %d slot %d: item %d, want %d (got %v want %v)",
					trial, i, got.Items[i], want.Items[i], got.Items, want.Items)
			}
		}
		if gotSt.UnaryEvals != wantSt.UnaryEvals || gotSt.PairEvals != wantSt.PairEvals ||
			gotSt.TuplesConsidered != wantSt.TuplesConsidered {
			t.Fatalf("trial %d: stats %+v, want %+v", trial, gotSt, wantSt)
		}
	}
}

// TestDP1Validation mirrors the general evaluators' input checks.
func TestDP1Validation(t *testing.T) {
	sc := NewScratch()
	ctx := context.Background()
	if _, _, err := DP1Ctx(ctx, 0, Query{M: 1, Unary: func(int, int) float64 { return 0 }}, sc); err == nil {
		t.Fatal("want empty item set error")
	}
	if _, _, err := DP1Ctx(ctx, 3, Query{M: 0}, sc); err == nil {
		t.Fatal("want bad M error")
	}
	if _, _, err := DP1Ctx(ctx, 3, Query{M: 2, Unary: func(int, int) float64 { return 0 }}, sc); err == nil {
		t.Fatal("want nil pair error")
	}
}

// TestDP1CancelMidQuery: cancellation inside the DP surfaces ctx.Err()
// exactly as DPCtx does.
func TestDP1CancelMidQuery(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	q := Query{
		M: 3,
		Unary: func(m, item int) float64 {
			return 0.5
		},
		Pair: func(m, a, b int) float64 {
			calls++
			if calls == 5000 {
				cancel()
			}
			return 1
		},
	}
	_, _, err := DP1Ctx(ctx, 120, q, NewScratch())
	cancel()
	if err == nil {
		t.Fatal("cancelled DP1 returned normally")
	}
}

// TestDP1SteadyStateZeroAllocs: the geology scan kernel must not
// allocate once its scratch is warm.
func TestDP1SteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	q := randomTop1Query(rng, 30, 3)
	sc := NewScratch()
	ctx := context.Background()
	run := func() {
		if _, _, err := DP1Ctx(ctx, 30, q, sc); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("steady-state DP1 allocates %.1f allocs/op, want 0", allocs)
	}
}
