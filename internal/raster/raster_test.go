package raster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	cases := []struct{ w, h int }{{0, 1}, {1, 0}, {-3, 4}, {4, -1}}
	for _, c := range cases {
		if _, err := NewGrid(c.w, c.h); err == nil {
			t.Errorf("NewGrid(%d,%d): want error", c.w, c.h)
		}
	}
	g, err := NewGrid(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Width() != 3 || g.Height() != 2 || g.Len() != 6 {
		t.Fatalf("dims wrong: %dx%d len %d", g.Width(), g.Height(), g.Len())
	}
}

func TestFromData(t *testing.T) {
	if _, err := FromData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("want length mismatch error")
	}
	g, err := FromData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 1 || g.At(1, 0) != 2 || g.At(0, 1) != 3 || g.At(1, 1) != 4 {
		t.Fatal("row-major layout broken")
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	g := MustGrid(4, 3)
	g.Set(2, 1, 7.5)
	if got := g.At(2, 1); got != 7.5 {
		t.Fatalf("At=%v want 7.5", got)
	}
	if g.Row(1)[2] != 7.5 {
		t.Fatal("Row does not alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := MustGrid(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 99)
	if g.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestStatsAndMinMax(t *testing.T) {
	g, _ := FromData(2, 2, []float64{1, 2, 3, 4})
	lo, hi := g.MinMax()
	if lo != 1 || hi != 4 {
		t.Fatalf("minmax=(%v,%v)", lo, hi)
	}
	if m := g.Mean(); m != 2.5 {
		t.Fatalf("mean=%v", m)
	}
	mean, std := g.Stats()
	if mean != 2.5 || math.Abs(std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stats=(%v,%v)", mean, std)
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{1, 1, 4, 3}
	if r.W() != 3 || r.H() != 2 || r.Area() != 6 {
		t.Fatalf("rect dims wrong: %+v", r)
	}
	if !r.Contains(1, 1) || r.Contains(4, 1) || r.Contains(1, 3) {
		t.Fatal("Contains wrong at boundaries")
	}
	o := r.Intersect(Rect{3, 0, 10, 10})
	if o != (Rect{3, 1, 4, 3}) {
		t.Fatalf("intersect=%+v", o)
	}
	if !r.Intersect(Rect{5, 5, 6, 6}).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
}

func TestSubMeanAndSubMinMax(t *testing.T) {
	g, _ := FromData(3, 3, []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	if m := g.SubMean(Rect{0, 0, 2, 2}); m != 3 {
		t.Fatalf("submean=%v want 3", m)
	}
	// Clipping: rect exceeding bounds
	if m := g.SubMean(Rect{2, 2, 10, 10}); m != 9 {
		t.Fatalf("clipped submean=%v want 9", m)
	}
	lo, hi := g.SubMinMax(Rect{1, 1, 3, 3})
	if lo != 5 || hi != 9 {
		t.Fatalf("subminmax=(%v,%v)", lo, hi)
	}
}

func TestTilesCoverExactly(t *testing.T) {
	g := MustGrid(10, 7)
	tiles := g.Tiles(4)
	if len(tiles) != 3*2 {
		t.Fatalf("tile count=%d want 6", len(tiles))
	}
	covered := MustGrid(10, 7)
	for _, r := range tiles {
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				covered.Set(x, y, covered.At(x, y)+1)
			}
		}
	}
	for y := 0; y < 7; y++ {
		for x := 0; x < 10; x++ {
			if covered.At(x, y) != 1 {
				t.Fatalf("cell (%d,%d) covered %v times", x, y, covered.At(x, y))
			}
		}
	}
}

func TestDownsample2MeanPreserved(t *testing.T) {
	g, _ := FromData(4, 2, []float64{
		0, 2, 4, 6,
		2, 4, 6, 8,
	})
	d := g.Downsample2()
	if d.Width() != 2 || d.Height() != 1 {
		t.Fatalf("downsampled dims %dx%d", d.Width(), d.Height())
	}
	if d.At(0, 0) != 2 || d.At(1, 0) != 6 {
		t.Fatalf("downsample values %v %v", d.At(0, 0), d.At(1, 0))
	}
}

func TestDownsample2OddDims(t *testing.T) {
	g, _ := FromData(3, 3, []float64{
		1, 1, 4,
		1, 1, 4,
		8, 8, 2,
	})
	d := g.Downsample2()
	if d.Width() != 2 || d.Height() != 2 {
		t.Fatalf("dims %dx%d", d.Width(), d.Height())
	}
	if d.At(0, 0) != 1 || d.At(1, 0) != 4 || d.At(0, 1) != 8 || d.At(1, 1) != 2 {
		t.Fatalf("odd-dim downsample wrong: %v", d.Data())
	}
}

// Property: downsampling preserves the global mean for even dimensions
// (each 2x2 block contributes equally).
func TestDownsampleMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		w, h := 8, 6
		g := MustGrid(w, h)
		s := seed
		for i := range g.Data() {
			s = s*6364136223846793005 + 1442695040888963407
			g.Data()[i] = float64(s%1000) / 10
		}
		d := g.Downsample2()
		return math.Abs(g.Mean()-d.Mean()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiband(t *testing.T) {
	m, err := NewMultiband(3, 2, []string{"b4", "b5", "b7"})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBands() != 3 {
		t.Fatalf("bands=%d", m.NumBands())
	}
	m.Band(1).Set(2, 1, 42)
	b, ok := m.BandByName("b5")
	if !ok || b.At(2, 1) != 42 {
		t.Fatal("BandByName broken")
	}
	if _, ok := m.BandByName("missing"); ok {
		t.Fatal("missing band reported present")
	}
	px := m.Pixel(2, 1, nil)
	if len(px) != 3 || px[1] != 42 {
		t.Fatalf("pixel=%v", px)
	}
}

func TestStackValidation(t *testing.T) {
	a := MustGrid(2, 2)
	b := MustGrid(3, 2)
	if _, err := Stack([]string{"a", "b"}, a, b); err == nil {
		t.Fatal("want shape mismatch error")
	}
	if _, err := Stack([]string{"a"}, a, a); err == nil {
		t.Fatal("want name count error")
	}
	if _, err := Stack(nil); err == nil {
		t.Fatal("want empty stack error")
	}
}

func TestMultibandDownsample(t *testing.T) {
	m, _ := NewMultiband(4, 4, []string{"x", "y"})
	m.Band(0).Fill(3)
	m.Band(1).Fill(5)
	d := m.Downsample2()
	if d.Width() != 2 || d.Height() != 2 {
		t.Fatalf("dims %dx%d", d.Width(), d.Height())
	}
	if d.Band(0).At(1, 1) != 3 || d.Band(1).At(0, 0) != 5 {
		t.Fatal("band values lost in downsample")
	}
}

func TestApplyAndFill(t *testing.T) {
	g := MustGrid(2, 2)
	g.Fill(2)
	g.Apply(func(v float64) float64 { return v * v })
	for _, v := range g.Data() {
		if v != 4 {
			t.Fatalf("apply result %v", v)
		}
	}
}

func TestEqual(t *testing.T) {
	a, _ := FromData(2, 1, []float64{1, 2})
	b, _ := FromData(2, 1, []float64{1, 2})
	c, _ := FromData(1, 2, []float64{1, 2})
	d, _ := FromData(2, 1, []float64{1, 3})
	if !a.Equal(b) {
		t.Fatal("equal grids reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("unequal grids reported equal")
	}
}
