// Package raster is the spatial data plane of the library: dense 2-D grids
// of float64 samples, multiband stacks of such grids, rectangular regions
// and tilings. Satellite imagery, digital elevation maps, risk surfaces and
// classification maps are all represented here.
//
// The paper's archives are multi-modal rasters (Landsat TM bands, DEMs) plus
// co-registered auxiliary layers; every model in Section 2 consumes values
// at locations (x, y) across several bands, which is exactly the access
// pattern this package optimizes: row-major contiguous storage, O(1) sample
// access, and cheap sub-region views for tile-based progressive processing.
package raster

import (
	"errors"
	"fmt"
	"math"
)

// Common construction errors.
var (
	ErrBadDims       = errors.New("raster: width and height must be positive")
	ErrBandCount     = errors.New("raster: band count must be positive")
	ErrShapeMismatch = errors.New("raster: grids have different shapes")
)

// Grid is a dense row-major 2-D array of float64 samples.
type Grid struct {
	w, h int
	data []float64
}

// NewGrid allocates a zero-filled grid of the given dimensions.
func NewGrid(w, h int) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDims, w, h)
	}
	return &Grid{w: w, h: h, data: make([]float64, w*h)}, nil
}

// MustGrid is NewGrid for statically valid dimensions; it panics on
// programmer error.
func MustGrid(w, h int) *Grid {
	g, err := NewGrid(w, h)
	if err != nil {
		panic(err)
	}
	return g
}

// FromData wraps an existing row-major slice. len(data) must equal w*h.
// The grid takes ownership of data.
func FromData(w, h int, data []float64) (*Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDims, w, h)
	}
	if len(data) != w*h {
		return nil, fmt.Errorf("raster: data length %d != %d*%d", len(data), w, h)
	}
	return &Grid{w: w, h: h, data: data}, nil
}

// Width returns the number of columns.
func (g *Grid) Width() int { return g.w }

// Height returns the number of rows.
func (g *Grid) Height() int { return g.h }

// Len returns the total sample count (Width*Height).
func (g *Grid) Len() int { return len(g.data) }

// At returns the sample at column x, row y. Callers must pass in-bounds
// coordinates; this is the hot path and is kept branch-free beyond the
// slice's own bounds check.
func (g *Grid) At(x, y int) float64 { return g.data[y*g.w+x] }

// Set stores v at column x, row y.
func (g *Grid) Set(x, y int, v float64) { g.data[y*g.w+x] = v }

// Row returns the y-th row as a slice aliasing the grid's storage.
func (g *Grid) Row(y int) []float64 { return g.data[y*g.w : (y+1)*g.w] }

// Data returns the underlying row-major storage. Mutating it mutates the
// grid; use Clone for an independent copy.
func (g *Grid) Data() []float64 { return g.data }

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	data := make([]float64, len(g.data))
	copy(data, g.data)
	return &Grid{w: g.w, h: g.h, data: data}
}

// Fill sets every sample to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// Apply replaces every sample s with f(s).
func (g *Grid) Apply(f func(float64) float64) {
	for i, v := range g.data {
		g.data[i] = f(v)
	}
}

// MinMax returns the smallest and largest sample values.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the arithmetic mean of all samples.
func (g *Grid) Mean() float64 {
	sum := 0.0
	for _, v := range g.data {
		sum += v
	}
	return sum / float64(len(g.data))
}

// Stats returns mean and (population) standard deviation in one pass.
func (g *Grid) Stats() (mean, std float64) {
	var sum, sumSq float64
	for _, v := range g.data {
		sum += v
		sumSq += v * v
	}
	n := float64(len(g.data))
	mean = sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return mean, math.Sqrt(variance)
}

// Rect is a half-open rectangular region [X0,X1) × [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Bounds returns the grid's full extent as a Rect.
func (g *Grid) Bounds() Rect { return Rect{0, 0, g.w, g.h} }

// W returns the rectangle width.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the number of cells covered.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle covers no cells.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the overlap of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: maxInt(r.X0, o.X0), Y0: maxInt(r.Y0, o.Y0),
		X1: minInt(r.X1, o.X1), Y1: minInt(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// SubMean returns the mean over the rectangle clipped to the grid.
func (g *Grid) SubMean(r Rect) float64 {
	r = r.Intersect(g.Bounds())
	if r.Empty() {
		return 0
	}
	sum := 0.0
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			sum += row[x]
		}
	}
	return sum / float64(r.Area())
}

// SubMinMax returns min and max over the rectangle clipped to the grid.
// An empty intersection yields (+Inf, -Inf).
func (g *Grid) SubMinMax(r Rect) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	r = r.Intersect(g.Bounds())
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			v := row[x]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// Tiles partitions the grid bounds into tiles of at most tile×tile cells,
// row-major. Edge tiles may be smaller. tile must be positive.
func (g *Grid) Tiles(tile int) []Rect {
	return TileRect(g.Bounds(), tile)
}

// TileRect partitions an arbitrary rectangle into tiles of side at most
// tile, row-major.
func TileRect(b Rect, tile int) []Rect {
	if tile <= 0 || b.Empty() {
		return nil
	}
	nx := (b.W() + tile - 1) / tile
	ny := (b.H() + tile - 1) / tile
	out := make([]Rect, 0, nx*ny)
	for ty := 0; ty < ny; ty++ {
		for tx := 0; tx < nx; tx++ {
			r := Rect{
				X0: b.X0 + tx*tile, Y0: b.Y0 + ty*tile,
				X1: minInt(b.X0+(tx+1)*tile, b.X1),
				Y1: minInt(b.Y0+(ty+1)*tile, b.Y1),
			}
			out = append(out, r)
		}
	}
	return out
}

// Downsample2 returns a half-resolution grid whose cell (x, y) is the mean
// of the 2×2 block at (2x, 2y). Odd trailing rows/columns are averaged over
// the cells that exist. A 1×1 grid downsamples to itself (a copy).
func (g *Grid) Downsample2() *Grid {
	nw, nh := (g.w+1)/2, (g.h+1)/2
	out := MustGrid(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			sum, n := 0.0, 0
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < g.w && sy < g.h {
						sum += g.At(sx, sy)
						n++
					}
				}
			}
			out.Set(x, y, sum/float64(n))
		}
	}
	return out
}

// Equal reports whether two grids have identical shape and samples.
func (g *Grid) Equal(o *Grid) bool {
	if g.w != o.w || g.h != o.h {
		return false
	}
	for i, v := range g.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// Multiband is an ordered stack of co-registered grids sharing one shape:
// the in-memory analogue of a multi-spectral scene (e.g. Landsat TM bands
// plus a DEM band plus derived layers).
type Multiband struct {
	w, h  int
	bands []*Grid
	names []string
}

// NewMultiband creates a stack with the given band names, all zero-filled.
func NewMultiband(w, h int, names []string) (*Multiband, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDims, w, h)
	}
	if len(names) == 0 {
		return nil, ErrBandCount
	}
	bands := make([]*Grid, len(names))
	for i := range bands {
		bands[i] = MustGrid(w, h)
	}
	ns := make([]string, len(names))
	copy(ns, names)
	return &Multiband{w: w, h: h, bands: bands, names: ns}, nil
}

// Stack builds a Multiband from existing grids, which must share a shape.
// The stack aliases the grids (no copy).
func Stack(names []string, grids ...*Grid) (*Multiband, error) {
	if len(grids) == 0 {
		return nil, ErrBandCount
	}
	if len(names) != len(grids) {
		return nil, fmt.Errorf("raster: %d names for %d grids", len(names), len(grids))
	}
	w, h := grids[0].w, grids[0].h
	for _, g := range grids[1:] {
		if g.w != w || g.h != h {
			return nil, ErrShapeMismatch
		}
	}
	ns := make([]string, len(names))
	copy(ns, names)
	bs := make([]*Grid, len(grids))
	copy(bs, grids)
	return &Multiband{w: w, h: h, bands: bs, names: ns}, nil
}

// Width returns the number of columns.
func (m *Multiband) Width() int { return m.w }

// Height returns the number of rows.
func (m *Multiband) Height() int { return m.h }

// NumBands returns the number of bands.
func (m *Multiband) NumBands() int { return len(m.bands) }

// BandNames returns a copy of the band names in order.
func (m *Multiband) BandNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// Band returns the i-th band grid (aliased, not copied).
func (m *Multiband) Band(i int) *Grid { return m.bands[i] }

// BandByName returns the band with the given name.
func (m *Multiband) BandByName(name string) (*Grid, bool) {
	for i, n := range m.names {
		if n == name {
			return m.bands[i], true
		}
	}
	return nil, false
}

// Pixel fills dst with the per-band values at (x, y) and returns it.
// dst is grown if needed; pass nil to allocate.
func (m *Multiband) Pixel(x, y int, dst []float64) []float64 {
	if cap(dst) < len(m.bands) {
		dst = make([]float64, len(m.bands))
	}
	dst = dst[:len(m.bands)]
	for i, b := range m.bands {
		dst[i] = b.At(x, y)
	}
	return dst
}

// Bounds returns the scene's extent.
func (m *Multiband) Bounds() Rect { return Rect{0, 0, m.w, m.h} }

// Downsample2 downsamples every band by 2 and returns a new stack.
func (m *Multiband) Downsample2() *Multiband {
	bands := make([]*Grid, len(m.bands))
	for i, b := range m.bands {
		bands[i] = b.Downsample2()
	}
	out, err := Stack(m.names, bands...)
	if err != nil {
		// Cannot happen: shapes are uniform by construction.
		panic(err)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
