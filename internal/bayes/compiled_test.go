package bayes

import (
	"math/rand"
	"testing"
)

// TestCompiledMatchesScore: compiled row scoring must be bit-identical
// to the map-based Score for random rule sets and rows, including
// unknown features (compiled to the missing grade) and soft weights.
func TestCompiledMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	columns := []string{"a.mean", "a.std", "b.mean", "b.max", "c.min"}
	for trial := 0; trial < 100; trial++ {
		r := NewRuleSet()
		nClauses := 1 + rng.Intn(5)
		for c := 0; c < nClauses; c++ {
			feat := columns[rng.Intn(len(columns))]
			if rng.Float64() < 0.15 {
				feat = "missing.feature"
			}
			var m Membership
			if rng.Float64() < 0.5 {
				m = Above{Lo: rng.Float64() * 50, Hi: 50 + rng.Float64()*50}
			} else {
				m = Below{Lo: rng.Float64() * 50, Hi: 50 + rng.Float64()*50}
			}
			w := rng.Float64()
			if w == 0 || rng.Float64() < 0.3 {
				w = 1
			}
			r.Add(feat, m, w)
		}
		comp, err := r.Compile(columns)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Len() != r.Len() {
			t.Fatalf("trial %d: compiled %d clauses, rule set %d", trial, comp.Len(), r.Len())
		}
		row := make([]float64, len(columns))
		vals := make(map[string]float64, len(columns))
		for i, n := range columns {
			row[i] = rng.Float64() * 120
			vals[n] = row[i]
		}
		want, err := r.Score(vals)
		if err != nil {
			t.Fatal(err)
		}
		if got := comp.ScoreRow(row); got != want {
			t.Fatalf("trial %d: ScoreRow %v, Score %v", trial, got, want)
		}
	}
}

// TestCompileValidation: empty rule sets and invalid weights fail at
// compile time with Score's errors.
func TestCompileValidation(t *testing.T) {
	if _, err := NewRuleSet().Compile([]string{"x"}); err == nil {
		t.Fatal("want empty rule set error")
	}
	r := NewRuleSet().Add("x", Above{Lo: 1, Hi: 2}, 1)
	r.weights[0] = 1.5
	if _, err := r.Compile([]string{"x"}); err == nil {
		t.Fatal("want weight validation error")
	}
}

// TestScoreRowZeroAlloc: compiled scoring is the knowledge scan kernel
// and must not allocate.
func TestScoreRowZeroAlloc(t *testing.T) {
	r := NewRuleSet().
		Require("a.mean", Above{Lo: 10, Hi: 20}).
		Add("b.max", Below{Lo: 50, Hi: 80}, 0.5)
	comp, err := r.Compile([]string{"a.mean", "b.max"})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{15, 60}
	if allocs := testing.AllocsPerRun(100, func() { comp.ScoreRow(row) }); allocs != 0 {
		t.Fatalf("ScoreRow allocates %.1f allocs/op, want 0", allocs)
	}
}
