package bayes

import (
	"math/rand"
	"testing"

	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

// twoClassScene builds a scene whose left half is class 0 (low DN) and
// right half class 1 (high DN) across two bands, with mild noise, plus
// the ground-truth label map.
func twoClassScene(seed int64, w, h int) (*raster.Multiband, *raster.Grid) {
	rng := rand.New(rand.NewSource(seed))
	b1 := raster.MustGrid(w, h)
	b2 := raster.MustGrid(w, h)
	truth := raster.MustGrid(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				b1.Set(x, y, 50+rng.NormFloat64()*5)
				b2.Set(x, y, 60+rng.NormFloat64()*5)
			} else {
				b1.Set(x, y, 180+rng.NormFloat64()*5)
				b2.Set(x, y, 150+rng.NormFloat64()*5)
				truth.Set(x, y, 1)
			}
		}
	}
	mb, err := raster.Stack([]string{"a", "b"}, b1, b2)
	if err != nil {
		panic(err)
	}
	return mb, truth
}

func trainFromScene(t *testing.T, mb *raster.Multiband, truth *raster.Grid) *GNB {
	t.Helper()
	var xs [][]float64
	var labels []int
	for y := 0; y < mb.Height(); y += 4 {
		for x := 0; x < mb.Width(); x += 4 {
			xs = append(xs, mb.Pixel(x, y, nil))
			labels = append(labels, int(truth.At(x, y)))
		}
	}
	g, err := TrainGNB(2, xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTrainGNBValidation(t *testing.T) {
	if _, err := TrainGNB(1, nil, nil); err == nil {
		t.Fatal("want error for 1 class")
	}
	if _, err := TrainGNB(2, [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Fatal("want error for label mismatch")
	}
	if _, err := TrainGNB(2, [][]float64{{1}, {2}}, []int{0, 5}); err == nil {
		t.Fatal("want error for label range")
	}
	if _, err := TrainGNB(2, [][]float64{{1}, {2}}, []int{0, 0}); err == nil {
		t.Fatal("want error for empty class")
	}
	if _, err := TrainGNB(2, [][]float64{{1}, {2, 3}}, []int{0, 1}); err == nil {
		t.Fatal("want error for ragged pixels")
	}
}

func TestGNBClassifiesSeparableData(t *testing.T) {
	mb, truth := twoClassScene(1, 64, 32)
	g := trainFromScene(t, mb, truth)
	if g.NumClasses() != 2 {
		t.Fatalf("classes=%d", g.NumClasses())
	}
	labels, evals, err := g.ClassifyScene(mb)
	if err != nil {
		t.Fatal(err)
	}
	if evals != 64*32 {
		t.Fatalf("evals=%d want %d", evals, 64*32)
	}
	errors := 0
	for y := 0; y < 32; y++ {
		for x := 0; x < 64; x++ {
			if labels.At(x, y) != truth.At(x, y) {
				errors++
			}
		}
	}
	if errors > 10 {
		t.Fatalf("%d misclassifications on separable data", errors)
	}
}

func TestClassifyValidation(t *testing.T) {
	mb, truth := twoClassScene(2, 32, 16)
	g := trainFromScene(t, mb, truth)
	if _, _, err := g.Classify([]float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
	bad, _ := raster.Stack([]string{"x"}, raster.MustGrid(4, 4))
	if _, _, err := g.ClassifyScene(bad); err == nil {
		t.Fatal("want band count error")
	}
}

func TestProgressiveAgreesAndSavesWork(t *testing.T) {
	mb, truth := twoClassScene(3, 128, 128)
	g := trainFromScene(t, mb, truth)

	flat, flatEvals, err := g.ClassifyScene(mb)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pyramid.BuildMultiband(mb, 5)
	if err != nil {
		t.Fatal(err)
	}
	prog, st, err := g.ClassifyProgressive(mp, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Work saved: progressive must use far fewer classifier calls.
	if st.TotalEvals()*3 > flatEvals {
		t.Fatalf("progressive evals %d vs flat %d: insufficient saving",
			st.TotalEvals(), flatEvals)
	}
	// Agreement: labels match flat except near the single class boundary;
	// allow the boundary columns to disagree.
	disagree := 0
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			if prog.At(x, y) != flat.At(x, y) {
				disagree++
			}
		}
	}
	if disagree > 128*8 { // at most a few columns around the boundary
		t.Fatalf("progressive disagrees on %d pixels", disagree)
	}
	// All pixels resolved exactly once.
	resolved := 0
	for _, n := range st.PixelsResolved {
		resolved += n
	}
	if resolved != 128*128 {
		t.Fatalf("resolved %d pixels, want %d", resolved, 128*128)
	}
}

func TestProgressiveValidation(t *testing.T) {
	mb, truth := twoClassScene(4, 32, 32)
	g := trainFromScene(t, mb, truth)
	other, _ := raster.Stack([]string{"x"}, raster.MustGrid(8, 8))
	mp, err := pyramid.BuildMultiband(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.ClassifyProgressive(mp, 1); err == nil {
		t.Fatal("want band count error")
	}
}

func TestProgressiveZeroThresholdResolvesCoarse(t *testing.T) {
	// With threshold 0 every block resolves at the coarsest level, so the
	// eval count equals the coarsest grid size.
	mb, truth := twoClassScene(5, 64, 64)
	g := trainFromScene(t, mb, truth)
	mp, err := pyramid.BuildMultiband(mb, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := g.ClassifyProgressive(mp, 0)
	if err != nil {
		t.Fatal(err)
	}
	coarse := mp.Band(0).Level(mp.NumLevels() - 1).Mean
	if st.TotalEvals() != coarse.Len() {
		t.Fatalf("evals %d want %d", st.TotalEvals(), coarse.Len())
	}
}
