package bayes

import (
	"math"
	"testing"
	"testing/quick"
)

// sprinkler builds the classic rain/sprinkler/wet-grass network with known
// posteriors for validating inference.
func sprinkler(t *testing.T) (*Network, [3]int) {
	t.Helper()
	b := NewBuilder()
	rain := b.Bool("rain")
	spr := b.Bool("sprinkler")
	wet := b.Bool("wet")
	if err := b.Prior(rain, []float64{0.8, 0.2}); err != nil {
		t.Fatal(err)
	}
	// Sprinkler depends on rain (less likely when raining).
	if err := b.CPT(spr, []int{rain}, [][]float64{
		{0.6, 0.4},
		{0.99, 0.01},
	}); err != nil {
		t.Fatal(err)
	}
	// Wet depends on (rain, sprinkler).
	if err := b.CPT(wet, []int{rain, spr}, [][]float64{
		{1.0, 0.0},   // no rain, no sprinkler
		{0.1, 0.9},   // no rain, sprinkler
		{0.2, 0.8},   // rain, no sprinkler
		{0.01, 0.99}, // rain, sprinkler
	}); err != nil {
		t.Fatal(err)
	}
	nw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nw, [3]int{rain, spr, wet}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Variable("x", 1); err == nil {
		t.Fatal("want error for 1-state variable")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for empty network")
	}
	v := b.Bool("v")
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for missing CPT")
	}
	if err := b.CPT(v, []int{v}, nil); err == nil {
		t.Fatal("want error for self-parent")
	}
	if err := b.Prior(v, []float64{0.5, 0.6}); err == nil {
		t.Fatal("want error for non-normalized row")
	}
	if err := b.Prior(v, []float64{0.5}); err == nil {
		t.Fatal("want error for short row")
	}
	if err := b.Prior(v, []float64{1.5, -0.5}); err == nil {
		t.Fatal("want error for out-of-range probabilities")
	}
	if err := b.CPT(99, nil, nil); err == nil {
		t.Fatal("want error for bad variable index")
	}
	if err := b.CPT(v, []int{99}, nil); err == nil {
		t.Fatal("want error for bad parent index")
	}
}

func TestCycleDetection(t *testing.T) {
	b := NewBuilder()
	x := b.Bool("x")
	y := b.Bool("y")
	if err := b.CPT(x, []int{y}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := b.CPT(y, []int{x}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("want cycle error")
	}
}

func TestJointProb(t *testing.T) {
	nw, v := sprinkler(t)
	// P(rain=1, spr=0, wet=1) = 0.2 * 0.99 * 0.8
	p, err := nw.JointProb(map3(v, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2 * 0.99 * 0.8
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("joint %v want %v", p, want)
	}
	if _, err := nw.JointProb([]int{1}); err == nil {
		t.Fatal("want length error")
	}
	if _, err := nw.JointProb([]int{5, 0, 0}); err == nil {
		t.Fatal("want state range error")
	}
}

func map3(v [3]int, a, b, c int) []int {
	out := make([]int, 3)
	out[v[0]] = a
	out[v[1]] = b
	out[v[2]] = c
	return out
}

func TestPosteriorMatchesHandComputation(t *testing.T) {
	nw, v := sprinkler(t)
	// P(rain=1 | wet=1): compute by brute force from the joint.
	num, den := 0.0, 0.0
	for r := 0; r <= 1; r++ {
		for s := 0; s <= 1; s++ {
			p, _ := nw.JointProb(map3(v, r, s, 1))
			den += p
			if r == 1 {
				num += p
			}
		}
	}
	want := num / den
	got, err := nw.ProbTrue(v[0], map[int]int{v[2]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(rain|wet) = %v want %v", got, want)
	}
	// Explaining away: knowing the sprinkler ran lowers P(rain | wet).
	withSpr, err := nw.ProbTrue(v[0], map[int]int{v[2]: 1, v[1]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if withSpr >= got {
		t.Fatalf("explaining away failed: %v >= %v", withSpr, got)
	}
}

func TestPosteriorValidation(t *testing.T) {
	nw, v := sprinkler(t)
	if _, err := nw.Posterior(99, nil); err == nil {
		t.Fatal("want query range error")
	}
	if _, err := nw.Posterior(v[0], map[int]int{99: 0}); err == nil {
		t.Fatal("want evidence variable error")
	}
	if _, err := nw.Posterior(v[0], map[int]int{v[1]: 9}); err == nil {
		t.Fatal("want evidence state error")
	}
	// Observed query: degenerate distribution.
	d, err := nw.Posterior(v[0], map[int]int{v[0]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d[1] != 1 || d[0] != 0 {
		t.Fatalf("degenerate posterior %v", d)
	}
	if _, err := nw.ProbTrue(99, nil); err == nil {
		t.Fatal("want range error")
	}
}

// Property: posteriors are normalized distributions for random evidence.
func TestPosteriorNormalizedProperty(t *testing.T) {
	nw, v := sprinkler(t)
	f := func(ev uint8, which uint8) bool {
		evidence := map[int]int{}
		if which%2 == 0 {
			evidence[v[1]] = int(ev) % 2
		}
		if which%3 == 0 {
			evidence[v[2]] = int(ev/2) % 2
		}
		d, err := nw.Posterior(v[0], evidence)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range d {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyOR(t *testing.T) {
	rows, err := NoisyOR([]float64{0.3, 0.5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	// No active parent: P(on) = leak.
	if math.Abs(rows[0][1]-0.1) > 1e-12 {
		t.Fatalf("leak row %v", rows[0])
	}
	// Both active: P(off) = (1-leak)*0.3*0.5.
	wantOff := 0.9 * 0.3 * 0.5
	if math.Abs(rows[3][0]-wantOff) > 1e-12 {
		t.Fatalf("both-on row %v want off=%v", rows[3], wantOff)
	}
	// First parent only: row index 2 (first parent varies slowest).
	if math.Abs(rows[2][0]-0.9*0.3) > 1e-12 {
		t.Fatalf("first-parent row %v", rows[2])
	}
	if _, err := NoisyOR(nil, 0); err == nil {
		t.Fatal("want error for no parents")
	}
	if _, err := NoisyOR([]float64{2}, 0); err == nil {
		t.Fatal("want error for bad inhibitor")
	}
	if _, err := NoisyOR([]float64{0.5}, -1); err == nil {
		t.Fatal("want error for bad leak")
	}
}

func TestHPSNetworkBehaviour(t *testing.T) {
	nw, v, err := HPSNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumVars() != 7 {
		t.Fatalf("vars=%d", nw.NumVars())
	}
	base, err := nw.ProbTrue(v.HighRisk, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Full evidence: house surrounded by bushes and wet-then-dry weather.
	full, err := nw.ProbTrue(v.HighRisk, map[int]int{
		v.House: 1, v.Bushes: 1, v.WetSeason: 1, v.DrySeason: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full <= base {
		t.Fatalf("evidence must raise risk: base %v full %v", base, full)
	}
	if full < 0.5 {
		t.Fatalf("fully-evidenced risk %v implausibly low", full)
	}
	// Contradictory evidence: no house -> low risk.
	none, err := nw.ProbTrue(v.HighRisk, map[int]int{v.House: 0, v.WetSeason: 0})
	if err != nil {
		t.Fatal(err)
	}
	if none >= base {
		t.Fatalf("negative evidence must lower risk: %v >= %v", none, base)
	}
}

func TestFitCPTRecoversDistribution(t *testing.T) {
	nw, v := sprinkler(t)
	// Generate samples from the true network by enumeration weights:
	// build the empirical sample set proportional to the joint.
	var samples [][]int
	for r := 0; r <= 1; r++ {
		for s := 0; s <= 1; s++ {
			for w := 0; w <= 1; w++ {
				p, _ := nw.JointProb(map3(v, r, s, w))
				n := int(p * 10000)
				for i := 0; i < n; i++ {
					samples = append(samples, map3(v, r, s, w))
				}
			}
		}
	}
	table, err := nw.FitCPT(v[2], samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Row for (rain=1, spr=0) is index 2: want P(wet=1) = 0.8.
	if math.Abs(table[2][1]-0.8) > 0.02 {
		t.Fatalf("refit P(wet|rain,~spr) = %v want ~0.8", table[2][1])
	}
	if _, err := nw.FitCPT(99, samples, 0); err == nil {
		t.Fatal("want range error")
	}
	if _, err := nw.FitCPT(v[2], samples, -1); err == nil {
		t.Fatal("want smoothing error")
	}
	if _, err := nw.FitCPT(v[2], [][]int{{0}}, 0); err == nil {
		t.Fatal("want sample shape error")
	}
	if _, err := nw.FitCPT(v[2], [][]int{{0, 0, 9}}, 0); err == nil {
		t.Fatal("want sample state error")
	}
}

func TestFitCPTUnobservedRowsUniform(t *testing.T) {
	nw, v := sprinkler(t)
	// One sample only, zero smoothing: unobserved rows become uniform.
	table, err := nw.FitCPT(v[2], [][]int{map3(v, 0, 0, 0)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if table[3][0] != 0.5 || table[3][1] != 0.5 {
		t.Fatalf("unobserved row %v want uniform", table[3])
	}
}

func TestAccessors(t *testing.T) {
	nw, v := sprinkler(t)
	if nw.Name(v[0]) != "rain" || nw.Arity(v[0]) != 2 {
		t.Fatal("metadata wrong")
	}
	ps := nw.Parents(v[2])
	if len(ps) != 2 {
		t.Fatalf("parents %v", ps)
	}
}
