package bayes

import (
	"errors"
	"fmt"
	"math"

	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

// Gaussian naive-Bayes pixel classification and its progressive variant.
// Reference [13] ("Progressive Classification in the Compressed Domain for
// Large EOS Satellite Databases") reports ~30× speedups by classifying at
// coarse resolution first and refining only ambiguous blocks; the paper
// frames that pipeline as "a special case of applying Bayesian network".

// GNB is a Gaussian naive-Bayes classifier over multiband pixels.
type GNB struct {
	classes int
	bands   int
	prior   []float64
	mean    [][]float64 // [class][band]
	std     [][]float64 // [class][band]
}

// TrainGNB fits class-conditional Gaussians per band from labeled pixels.
// labels[i] in [0, classes); xs[i] is a per-band value vector.
func TrainGNB(classes int, xs [][]float64, labels []int) (*GNB, error) {
	if classes < 2 {
		return nil, errors.New("bayes: need >= 2 classes")
	}
	if len(xs) == 0 || len(xs) != len(labels) {
		return nil, errors.New("bayes: bad training set")
	}
	bands := len(xs[0])
	if bands == 0 {
		return nil, errors.New("bayes: zero-dimensional pixels")
	}
	g := &GNB{
		classes: classes,
		bands:   bands,
		prior:   make([]float64, classes),
		mean:    make([][]float64, classes),
		std:     make([][]float64, classes),
	}
	count := make([]float64, classes)
	sum := make([][]float64, classes)
	sumSq := make([][]float64, classes)
	for c := 0; c < classes; c++ {
		sum[c] = make([]float64, bands)
		sumSq[c] = make([]float64, bands)
	}
	for i, x := range xs {
		c := labels[i]
		if c < 0 || c >= classes {
			return nil, fmt.Errorf("bayes: label %d out of range", c)
		}
		if len(x) != bands {
			return nil, fmt.Errorf("bayes: pixel %d has %d bands, want %d", i, len(x), bands)
		}
		count[c]++
		for b, v := range x {
			sum[c][b] += v
			sumSq[c][b] += v * v
		}
	}
	n := float64(len(xs))
	for c := 0; c < classes; c++ {
		if count[c] == 0 {
			return nil, fmt.Errorf("bayes: class %d has no training pixels", c)
		}
		g.prior[c] = count[c] / n
		g.mean[c] = make([]float64, bands)
		g.std[c] = make([]float64, bands)
		for b := 0; b < bands; b++ {
			m := sum[c][b] / count[c]
			variance := sumSq[c][b]/count[c] - m*m
			if variance < 1e-6 {
				variance = 1e-6 // floor to keep densities finite
			}
			g.mean[c][b] = m
			g.std[c][b] = math.Sqrt(variance)
		}
	}
	return g, nil
}

// NumClasses returns the class count.
func (g *GNB) NumClasses() int { return g.classes }

// LogPosteriors returns unnormalized log posteriors for one pixel.
func (g *GNB) LogPosteriors(x []float64, out []float64) ([]float64, error) {
	if len(x) != g.bands {
		return nil, fmt.Errorf("bayes: pixel has %d bands, want %d", len(x), g.bands)
	}
	if cap(out) < g.classes {
		out = make([]float64, g.classes)
	}
	out = out[:g.classes]
	for c := 0; c < g.classes; c++ {
		lp := math.Log(g.prior[c])
		for b, v := range x {
			z := (v - g.mean[c][b]) / g.std[c][b]
			lp += -0.5*z*z - math.Log(g.std[c][b])
		}
		out[c] = lp
	}
	return out, nil
}

// Classify returns the MAP class and the log-posterior margin to the
// runner-up (larger margin = more confident).
func (g *GNB) Classify(x []float64) (class int, margin float64, err error) {
	lps, err := g.LogPosteriors(x, nil)
	if err != nil {
		return 0, 0, err
	}
	best, second := 0, -1
	for c := 1; c < len(lps); c++ {
		if lps[c] > lps[best] {
			second = best
			best = c
		} else if second < 0 || lps[c] > lps[second] {
			second = c
		}
	}
	return best, lps[best] - lps[second], nil
}

// ClassifyScene labels every pixel of a multiband scene at full
// resolution: the flat baseline for experiment E2. Returns the label map
// and the number of classifier invocations.
func (g *GNB) ClassifyScene(m *raster.Multiband) (*raster.Grid, int, error) {
	if m.NumBands() != g.bands {
		return nil, 0, fmt.Errorf("bayes: scene has %d bands, classifier wants %d", m.NumBands(), g.bands)
	}
	out := raster.MustGrid(m.Width(), m.Height())
	px := make([]float64, g.bands)
	evals := 0
	for y := 0; y < m.Height(); y++ {
		for x := 0; x < m.Width(); x++ {
			px = m.Pixel(x, y, px)
			c, _, err := g.Classify(px)
			if err != nil {
				return nil, evals, err
			}
			evals++
			out.Set(x, y, float64(c))
		}
	}
	return out, evals, nil
}

// ProgressiveStats reports the work a progressive classification did.
type ProgressiveStats struct {
	// EvalsAtLevel[l] counts classifier invocations at pyramid level l.
	EvalsAtLevel []int
	// PixelsResolved[l] counts full-resolution pixels whose label was
	// decided at level l.
	PixelsResolved []int
}

// TotalEvals sums classifier invocations across levels.
func (s ProgressiveStats) TotalEvals() int {
	t := 0
	for _, n := range s.EvalsAtLevel {
		t += n
	}
	return t
}

// ProgressiveOptions tunes ClassifyProgressiveOpts.
type ProgressiveOptions struct {
	// MarginThreshold is the minimum log-posterior margin for resolving
	// a block at a coarse level.
	MarginThreshold float64
	// MaxRange, when positive, additionally requires every band's
	// (max − min) envelope within the block to be at most MaxRange
	// before the block may resolve coarse. This is the compressed-domain
	// purity test of [13]: mixed blocks average multiple class
	// signatures and can look confidently — but wrongly — like a third
	// class, so confidence alone is not enough.
	MaxRange float64
}

// ClassifyProgressive labels a scene coarse-to-fine on a multiband
// pyramid: blocks whose coarse-level classification margin is at least
// marginThreshold are labeled wholesale; ambiguous blocks are split and
// re-examined at the next finer level, down to exact per-pixel
// classification at level 0. With spatially coherent scenes, most blocks
// resolve coarse, giving the [13]-style speedup while agreeing with the
// flat classifier except near class boundaries.
func (g *GNB) ClassifyProgressive(mp *pyramid.MultibandPyramid, marginThreshold float64) (*raster.Grid, ProgressiveStats, error) {
	return g.ClassifyProgressiveOpts(mp, ProgressiveOptions{MarginThreshold: marginThreshold})
}

// ClassifyProgressiveOpts is ClassifyProgressive with the full option
// set (margin + homogeneity gating).
func (g *GNB) ClassifyProgressiveOpts(mp *pyramid.MultibandPyramid, opt ProgressiveOptions) (*raster.Grid, ProgressiveStats, error) {
	marginThreshold := opt.MarginThreshold
	if mp.NumBands() != g.bands {
		return nil, ProgressiveStats{}, fmt.Errorf("bayes: pyramid has %d bands, classifier wants %d", mp.NumBands(), g.bands)
	}
	levels := mp.NumLevels()
	st := ProgressiveStats{
		EvalsAtLevel:   make([]int, levels),
		PixelsResolved: make([]int, levels),
	}
	base := mp.Band(0).Level(0).Mean
	out := raster.MustGrid(base.Width(), base.Height())

	type cell struct{ x, y int }
	top := levels - 1
	coarse := mp.Band(0).Level(top).Mean
	frontier := make([]cell, 0, coarse.Width()*coarse.Height())
	for y := 0; y < coarse.Height(); y++ {
		for x := 0; x < coarse.Width(); x++ {
			frontier = append(frontier, cell{x, y})
		}
	}

	px := make([]float64, g.bands)
	for lvl := top; lvl >= 0; lvl-- {
		var next []cell
		for _, c := range frontier {
			for b := 0; b < g.bands; b++ {
				px[b] = mp.Band(b).Level(lvl).Mean.At(c.x, c.y)
			}
			class, margin, err := g.Classify(px)
			if err != nil {
				return nil, st, err
			}
			st.EvalsAtLevel[lvl]++
			pure := true
			if opt.MaxRange > 0 && lvl > 0 {
				for b := 0; b < g.bands && pure; b++ {
					l := mp.Band(b).Level(lvl)
					if l.Max.At(c.x, c.y)-l.Min.At(c.x, c.y) > opt.MaxRange {
						pure = false
					}
				}
			}
			if lvl == 0 || (margin >= marginThreshold && pure) {
				r := mp.Band(0).CellRect(lvl, c.x, c.y)
				for yy := r.Y0; yy < r.Y1; yy++ {
					for xx := r.X0; xx < r.X1; xx++ {
						out.Set(xx, yy, float64(class))
					}
				}
				st.PixelsResolved[lvl] += r.Area()
				continue
			}
			// Split into children at the next finer level.
			fine := mp.Band(0).Level(lvl - 1).Mean
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					nx, ny := 2*c.x+dx, 2*c.y+dy
					if nx < fine.Width() && ny < fine.Height() {
						next = append(next, cell{nx, ny})
					}
				}
			}
		}
		frontier = next
	}
	return out, st, nil
}
