package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVEMatchesEnumerationSprinkler(t *testing.T) {
	nw, v := sprinkler(t)
	cases := []map[int]int{
		nil,
		{v[2]: 1},
		{v[2]: 1, v[1]: 1},
		{v[1]: 0},
		{v[0]: 1, v[1]: 0},
	}
	for qi := 0; qi < 3; qi++ {
		for _, ev := range cases {
			want, err := nw.Posterior(v[qi], ev)
			if err != nil {
				t.Fatal(err)
			}
			got, err := nw.PosteriorVE(v[qi], ev)
			if err != nil {
				t.Fatal(err)
			}
			for s := range want {
				if math.Abs(want[s]-got[s]) > 1e-12 {
					t.Fatalf("query %d evidence %v state %d: enum %v ve %v",
						qi, ev, s, want[s], got[s])
				}
			}
		}
	}
}

func TestVEMatchesEnumerationHPS(t *testing.T) {
	nw, v, err := HPSNetwork()
	if err != nil {
		t.Fatal(err)
	}
	evidences := []map[int]int{
		nil,
		{v.House: 1, v.Bushes: 1},
		{v.House: 1, v.Bushes: 1, v.WetSeason: 1, v.DrySeason: 1},
		{v.Surrounded: 1},
		{v.WetDry: 0, v.House: 1},
	}
	for _, ev := range evidences {
		want, err := nw.ProbTrue(v.HighRisk, ev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nw.ProbTrueVE(v.HighRisk, ev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("evidence %v: enum %v ve %v", ev, want, got)
		}
	}
}

func TestVEValidation(t *testing.T) {
	nw, v := sprinkler(t)
	if _, err := nw.PosteriorVE(99, nil); err == nil {
		t.Fatal("want query range error")
	}
	if _, err := nw.PosteriorVE(v[0], map[int]int{99: 0}); err == nil {
		t.Fatal("want evidence variable error")
	}
	if _, err := nw.PosteriorVE(v[0], map[int]int{v[1]: 9}); err == nil {
		t.Fatal("want evidence state error")
	}
	d, err := nw.PosteriorVE(v[0], map[int]int{v[0]: 1})
	if err != nil || d[1] != 1 {
		t.Fatalf("observed query: %v %v", d, err)
	}
	if _, err := nw.ProbTrueVE(99, nil); err == nil {
		t.Fatal("want range error")
	}
}

// randomNetwork builds a random DAG over binary variables (edges only
// from lower to higher indices, keeping it acyclic).
func randomNetwork(rng *rand.Rand, n int) (*Network, error) {
	b := NewBuilder()
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = b.Bool("v")
	}
	for i := 0; i < n; i++ {
		var parents []int
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.35 && len(parents) < 3 {
				parents = append(parents, ids[j])
			}
		}
		rows := 1 << uint(len(parents))
		table := make([][]float64, rows)
		for r := range table {
			p := 0.05 + 0.9*rng.Float64()
			table[r] = []float64{1 - p, p}
		}
		if err := b.CPT(ids[i], parents, table); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// Property: VE equals enumeration on random networks with random
// evidence.
func TestVEMatchesEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		nw, err := randomNetwork(rng, n)
		if err != nil {
			return false
		}
		query := rng.Intn(n)
		evidence := map[int]int{}
		for v := 0; v < n; v++ {
			if v != query && rng.Float64() < 0.3 {
				evidence[v] = rng.Intn(2)
			}
		}
		want, err1 := nw.Posterior(query, evidence)
		got, err2 := nw.PosteriorVE(query, evidence)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // both rejected (e.g. zero-probability evidence)
		}
		for s := range want {
			if math.Abs(want[s]-got[s]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// VE must handle a chain network of width beyond enumeration comfort
// quickly (20 variables = 2^20 enumeration states, trivial for VE).
func TestVEScalesOnChain(t *testing.T) {
	b := NewBuilder()
	const n = 20
	ids := make([]int, n)
	for i := range ids {
		ids[i] = b.Bool("v")
	}
	if err := b.Prior(ids[0], []float64{0.7, 0.3}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := b.CPT(ids[i], []int{ids[i-1]}, [][]float64{
			{0.8, 0.2},
			{0.3, 0.7},
		}); err != nil {
			t.Fatal(err)
		}
	}
	nw, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := nw.ProbTrueVE(ids[n-1], map[int]int{ids[0]: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Fatalf("chain posterior %v", p)
	}
	// Stationarity check: far down the chain the posterior approaches
	// the Markov chain's stationary distribution pi(1) = 0.2/(0.2+0.3).
	if math.Abs(p-0.4) > 0.01 {
		t.Fatalf("chain posterior %v, want ~0.4", p)
	}
}
