// Canonical byte encoding for cache fingerprinting and, since the
// cluster layer, for shipping rule sets between router and shard-server
// nodes (see the matching methods in internal/linear; framing
// primitives in internal/canon). A rule set canonicalizes clause by
// clause in declaration order — clause order does not change a score
// (min is commutative), so identical rule sets written in different
// orders fingerprint apart, which only under-shares the cache, never
// aliases it. DecodeRuleSet is the exact inverse over the membership
// kinds this package knows how to serialize.

package bayes

import (
	"fmt"

	"modelir/internal/canon"
)

// AppendCanonical appends the rule set's canonical encoding. ok is
// false when a clause uses a Membership implementation this package
// does not know how to serialize — such rule sets cannot be
// fingerprinted and their queries bypass the result cache.
func (r *RuleSet) AppendCanonical(b []byte) ([]byte, bool) {
	b = append(b, 'R', 'S')
	b = canon.AppendUint(b, uint64(len(r.clauses)))
	for i, c := range r.clauses {
		b = canon.AppendString(b, c.Feature)
		b = canon.AppendFloat(b, r.weights[i])
		switch m := c.Member.(type) {
		case Trapezoid:
			b = append(b, 'T')
			b = canon.AppendFloat(b, m.A)
			b = canon.AppendFloat(b, m.B)
			b = canon.AppendFloat(b, m.C)
			b = canon.AppendFloat(b, m.D)
		case Above:
			b = append(b, 'A')
			b = canon.AppendFloat(b, m.Lo)
			b = canon.AppendFloat(b, m.Hi)
		case Below:
			b = append(b, 'B')
			b = canon.AppendFloat(b, m.Lo)
			b = canon.AppendFloat(b, m.Hi)
		default:
			return b, false
		}
	}
	return b, true
}

// DecodeRuleSet consumes one canonical rule-set encoding from r.
// Trapezoids are rebuilt through NewTrapezoid so ordering violations in
// a corrupt stream are rejected; unknown membership tags fail with
// canon.ErrCorrupt (rule sets with unserializable memberships were
// never encodable in the first place).
func DecodeRuleSet(r *canon.Reader) (*RuleSet, error) {
	if err := r.Expect("RS"); err != nil {
		return nil, err
	}
	// A clause is at least a feature length prefix, a weight, a
	// membership tag, and two float parameters.
	n, err := r.Count(8 + 8 + 1 + 16)
	if err != nil {
		return nil, err
	}
	rs := NewRuleSet()
	for i := 0; i < n; i++ {
		feature, err := r.String()
		if err != nil {
			return nil, err
		}
		weight, err := r.Float()
		if err != nil {
			return nil, err
		}
		tag, err := r.Byte()
		if err != nil {
			return nil, err
		}
		var member Membership
		switch tag {
		case 'T':
			var p [4]float64
			for j := range p {
				if p[j], err = r.Float(); err != nil {
					return nil, err
				}
			}
			t, err := NewTrapezoid(p[0], p[1], p[2], p[3])
			if err != nil {
				return nil, fmt.Errorf("%w: %v", canon.ErrCorrupt, err)
			}
			member = t
		case 'A':
			var a Above
			if a.Lo, err = r.Float(); err != nil {
				return nil, err
			}
			if a.Hi, err = r.Float(); err != nil {
				return nil, err
			}
			member = a
		case 'B':
			var bl Below
			if bl.Lo, err = r.Float(); err != nil {
				return nil, err
			}
			if bl.Hi, err = r.Float(); err != nil {
				return nil, err
			}
			member = bl
		default:
			return nil, canon.ErrCorrupt
		}
		rs.Add(feature, member, weight)
	}
	return rs, nil
}
