// Canonical byte encoding for cache fingerprinting (see the matching
// methods in internal/linear; framing primitives in internal/canon).
// A rule set canonicalizes clause by clause in declaration order —
// clause order does not change a score (min is commutative), so
// identical rule sets written in different orders fingerprint apart,
// which only under-shares the cache, never aliases it.

package bayes

import (
	"modelir/internal/canon"
)

// AppendCanonical appends the rule set's canonical encoding. ok is
// false when a clause uses a Membership implementation this package
// does not know how to serialize — such rule sets cannot be
// fingerprinted and their queries bypass the result cache.
func (r *RuleSet) AppendCanonical(b []byte) ([]byte, bool) {
	b = append(b, 'R', 'S')
	b = canon.AppendUint(b, uint64(len(r.clauses)))
	for i, c := range r.clauses {
		b = canon.AppendString(b, c.Feature)
		b = canon.AppendFloat(b, r.weights[i])
		switch m := c.Member.(type) {
		case Trapezoid:
			b = append(b, 'T')
			b = canon.AppendFloat(b, m.A)
			b = canon.AppendFloat(b, m.B)
			b = canon.AppendFloat(b, m.C)
			b = canon.AppendFloat(b, m.D)
		case Above:
			b = append(b, 'A')
			b = canon.AppendFloat(b, m.Lo)
			b = canon.AppendFloat(b, m.Hi)
		case Below:
			b = append(b, 'B')
			b = canon.AppendFloat(b, m.Lo)
			b = canon.AppendFloat(b, m.Hi)
		default:
			return b, false
		}
	}
	return b, true
}
