// Package bayes implements the paper's knowledge models (Section 2.3):
// Bayesian networks ("a graphical model for probabilistic relationships
// among a set of variables … a popular representation for encoding expert
// knowledge"), exact inference, CPT learning from data ("recently, methods
// have been developed to learn Bayesian networks from data"), noisy-OR
// expert elicitation, fuzzy rule predicates for knowledge models, the HPS
// high-risk-house network of Fig. 3, and the Gaussian naive-Bayes
// classifier behind progressive classification [13].
package bayes

import (
	"errors"
	"fmt"
	"math"
)

// Network is a discrete Bayesian network: a DAG of categorical variables,
// each with a conditional probability table (CPT) over its parents.
// Construct with NewBuilder; networks are immutable after Build.
type Network struct {
	names   []string
	arity   []int
	parents [][]int
	// cpt[v] has one row per parent configuration (row-major in parent
	// order, first parent varies slowest), each row of length arity[v]
	// summing to 1.
	cpt [][]float64
	// topo is a topological order of the variables.
	topo []int
}

// Builder accumulates a network definition.
type Builder struct {
	names   []string
	arity   []int
	parents [][]int
	cpt     [][]float64
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return &Builder{} }

// Variable adds a categorical variable with the given number of states
// (>= 2) and returns its index.
func (b *Builder) Variable(name string, states int) (int, error) {
	if states < 2 {
		return 0, fmt.Errorf("bayes: variable %q needs >= 2 states", name)
	}
	b.names = append(b.names, name)
	b.arity = append(b.arity, states)
	b.parents = append(b.parents, nil)
	b.cpt = append(b.cpt, nil)
	return len(b.names) - 1, nil
}

// Bool adds a binary variable (states: false=0, true=1).
func (b *Builder) Bool(name string) int {
	id, err := b.Variable(name, 2)
	if err != nil {
		// Cannot happen: 2 >= 2.
		panic(err)
	}
	return id
}

// CPT sets the conditional distribution of v given parents. table is
// row-major over parent configurations (first parent varies slowest); each
// row lists P(v = state | config) and must sum to 1 (±1e-9).
func (b *Builder) CPT(v int, parents []int, table [][]float64) error {
	if v < 0 || v >= len(b.names) {
		return fmt.Errorf("bayes: variable %d out of range", v)
	}
	rows := 1
	for _, p := range parents {
		if p < 0 || p >= len(b.names) {
			return fmt.Errorf("bayes: parent %d out of range", p)
		}
		if p == v {
			return fmt.Errorf("bayes: variable %q cannot be its own parent", b.names[v])
		}
		rows *= b.arity[p]
	}
	if len(table) != rows {
		return fmt.Errorf("bayes: CPT for %q has %d rows, want %d", b.names[v], len(table), rows)
	}
	flat := make([]float64, 0, rows*b.arity[v])
	for r, row := range table {
		if len(row) != b.arity[v] {
			return fmt.Errorf("bayes: CPT row %d for %q has %d entries, want %d",
				r, b.names[v], len(row), b.arity[v])
		}
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("bayes: CPT entry %v for %q outside [0,1]", p, b.names[v])
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("bayes: CPT row %d for %q sums to %v", r, b.names[v], sum)
		}
		flat = append(flat, row...)
	}
	ps := make([]int, len(parents))
	copy(ps, parents)
	b.parents[v] = ps
	b.cpt[v] = flat
	return nil
}

// Prior sets a parentless distribution for v.
func (b *Builder) Prior(v int, dist []float64) error {
	return b.CPT(v, nil, [][]float64{dist})
}

// Build validates acyclicity and completeness and returns the network.
func (b *Builder) Build() (*Network, error) {
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("bayes: empty network")
	}
	for v := 0; v < n; v++ {
		if b.cpt[v] == nil {
			return nil, fmt.Errorf("bayes: variable %q has no CPT", b.names[v])
		}
	}
	topo, err := topoSort(n, b.parents)
	if err != nil {
		return nil, err
	}
	return &Network{
		names:   append([]string(nil), b.names...),
		arity:   append([]int(nil), b.arity...),
		parents: b.parents,
		cpt:     b.cpt,
		topo:    topo,
	}, nil
}

func topoSort(n int, parents [][]int) ([]int, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	order := make([]int, 0, n)
	var visit func(v int) error
	visit = func(v int) error {
		switch color[v] {
		case gray:
			return errors.New("bayes: network contains a cycle")
		case black:
			return nil
		}
		color[v] = gray
		for _, p := range parents[v] {
			if err := visit(p); err != nil {
				return err
			}
		}
		color[v] = black
		order = append(order, v)
		return nil
	}
	for v := 0; v < n; v++ {
		if err := visit(v); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// NumVars returns the variable count.
func (nw *Network) NumVars() int { return len(nw.names) }

// Name returns variable v's name.
func (nw *Network) Name(v int) string { return nw.names[v] }

// Arity returns variable v's state count.
func (nw *Network) Arity(v int) int { return nw.arity[v] }

// Parents returns a copy of v's parent list.
func (nw *Network) Parents(v int) []int {
	return append([]int(nil), nw.parents[v]...)
}

// rowIndex computes the CPT row for v given a full assignment.
func (nw *Network) rowIndex(v int, assign []int) int {
	idx := 0
	for _, p := range nw.parents[v] {
		idx = idx*nw.arity[p] + assign[p]
	}
	return idx
}

// JointProb returns P(assignment) for a complete assignment (one state
// index per variable).
func (nw *Network) JointProb(assign []int) (float64, error) {
	if len(assign) != len(nw.names) {
		return 0, errors.New("bayes: assignment length mismatch")
	}
	for v, s := range assign {
		if s < 0 || s >= nw.arity[v] {
			return 0, fmt.Errorf("bayes: state %d invalid for %q", s, nw.names[v])
		}
	}
	p := 1.0
	for v := range nw.names {
		row := nw.rowIndex(v, assign)
		p *= nw.cpt[v][row*nw.arity[v]+assign[v]]
	}
	return p, nil
}

// Posterior computes P(query | evidence) exactly by enumeration over the
// unobserved variables, suitable for the expert-scale networks of the
// paper (tens of variables with sparse structure would want variable
// elimination; the Fig. 3 / Fig. 4 networks have < 10).
// evidence maps variable index -> observed state.
func (nw *Network) Posterior(query int, evidence map[int]int) ([]float64, error) {
	if query < 0 || query >= len(nw.names) {
		return nil, fmt.Errorf("bayes: query variable %d out of range", query)
	}
	for v, s := range evidence {
		if v < 0 || v >= len(nw.names) {
			return nil, fmt.Errorf("bayes: evidence variable %d out of range", v)
		}
		if s < 0 || s >= nw.arity[v] {
			return nil, fmt.Errorf("bayes: evidence state %d invalid for %q", s, nw.names[v])
		}
	}
	dist := make([]float64, nw.arity[query])
	assign := make([]int, len(nw.names))
	for v, s := range evidence {
		assign[v] = s
	}

	// Enumerate free variables (including query).
	free := make([]int, 0, len(nw.names))
	for v := range nw.names {
		if _, fixed := evidence[v]; !fixed {
			free = append(free, v)
		}
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(free) {
			p := 1.0
			for v := range nw.names {
				row := nw.rowIndex(v, assign)
				p *= nw.cpt[v][row*nw.arity[v]+assign[v]]
				if p == 0 {
					return
				}
			}
			dist[assign[query]] += p
			return
		}
		v := free[i]
		for s := 0; s < nw.arity[v]; s++ {
			assign[v] = s
			rec(i + 1)
		}
	}
	if _, fixed := evidence[query]; fixed {
		// Query is observed: degenerate posterior.
		dist[evidence[query]] = 1
		return dist, nil
	}
	rec(0)
	total := 0.0
	for _, p := range dist {
		total += p
	}
	if total == 0 {
		return nil, errors.New("bayes: evidence has zero probability")
	}
	for i := range dist {
		dist[i] /= total
	}
	return dist, nil
}

// ProbTrue is a convenience for binary variables: P(v = 1 | evidence).
func (nw *Network) ProbTrue(v int, evidence map[int]int) (float64, error) {
	if v < 0 || v >= len(nw.names) {
		return 0, fmt.Errorf("bayes: variable %d out of range", v)
	}
	if nw.arity[v] != 2 {
		return 0, fmt.Errorf("bayes: %q is not binary", nw.names[v])
	}
	d, err := nw.Posterior(v, evidence)
	if err != nil {
		return 0, err
	}
	return d[1], nil
}

// NoisyOR builds the CPT rows for a binary child with n binary parents
// under the noisy-OR model: the child fires unless every active parent's
// cause is independently inhibited. inhibit[i] is the probability parent
// i's influence is suppressed; leak is the probability the child fires
// with no active parent. Rows are ordered row-major with the first parent
// varying slowest, matching Builder.CPT.
func NoisyOR(inhibit []float64, leak float64) ([][]float64, error) {
	if len(inhibit) == 0 {
		return nil, errors.New("bayes: noisy-OR needs at least one parent")
	}
	for i, q := range inhibit {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("bayes: inhibitor %d = %v outside [0,1]", i, q)
		}
	}
	if leak < 0 || leak > 1 {
		return nil, fmt.Errorf("bayes: leak %v outside [0,1]", leak)
	}
	n := len(inhibit)
	rows := 1 << uint(n)
	out := make([][]float64, rows)
	for r := 0; r < rows; r++ {
		pOff := 1 - leak
		for i := 0; i < n; i++ {
			// Parent i is "true" when its bit (first parent = highest
			// position) is set.
			bit := (r >> uint(n-1-i)) & 1
			if bit == 1 {
				pOff *= inhibit[i]
			}
		}
		out[r] = []float64{pOff, 1 - pOff}
	}
	return out, nil
}

// FitCPT estimates the CPT of variable v from complete data samples
// (each sample assigns every variable) by maximum likelihood with
// Laplace smoothing alpha. The network's structure (parents) is kept;
// only v's table is re-estimated. Returns a new table suitable for
// Builder.CPT.
func (nw *Network) FitCPT(v int, samples [][]int, alpha float64) ([][]float64, error) {
	if v < 0 || v >= len(nw.names) {
		return nil, fmt.Errorf("bayes: variable %d out of range", v)
	}
	if alpha < 0 {
		return nil, errors.New("bayes: negative smoothing")
	}
	rows := 1
	for _, p := range nw.parents[v] {
		rows *= nw.arity[p]
	}
	counts := make([][]float64, rows)
	for r := range counts {
		counts[r] = make([]float64, nw.arity[v])
		for s := range counts[r] {
			counts[r][s] = alpha
		}
	}
	for i, smp := range samples {
		if len(smp) != len(nw.names) {
			return nil, fmt.Errorf("bayes: sample %d has %d values, want %d", i, len(smp), len(nw.names))
		}
		for vv, s := range smp {
			if s < 0 || s >= nw.arity[vv] {
				return nil, fmt.Errorf("bayes: sample %d state %d invalid for %q", i, s, nw.names[vv])
			}
		}
		counts[nw.rowIndex(v, smp)][smp[v]]++
	}
	for r := range counts {
		sum := 0.0
		for _, c := range counts[r] {
			sum += c
		}
		if sum == 0 {
			// No data and no smoothing: uniform.
			for s := range counts[r] {
				counts[r][s] = 1 / float64(nw.arity[v])
			}
			continue
		}
		for s := range counts[r] {
			counts[r][s] /= sum
		}
	}
	return counts, nil
}
