package bayes

import (
	"errors"
	"fmt"
)

// Fuzzy predicates for knowledge models (Section 3: "the Bayesian network
// and knowledge models are used to locate the top-K data patterns that
// satisfy the fuzzy and/or probabilistic rules specified within the
// model"). A Membership maps a scalar observation to a degree of truth
// in [0, 1]; rule sets combine memberships with min/max semantics.

// Membership is a fuzzy membership function.
type Membership interface {
	// Grade returns the degree of membership of v, in [0, 1].
	Grade(v float64) float64
}

// Trapezoid is the classic trapezoidal membership function: 0 below a,
// rising on [a,b], 1 on [b,c], falling on [c,d], 0 above d. Set a==b for
// a left shoulder, c==d for a right shoulder.
type Trapezoid struct {
	A, B, C, D float64
}

// NewTrapezoid validates a <= b <= c <= d.
func NewTrapezoid(a, b, c, d float64) (Trapezoid, error) {
	if !(a <= b && b <= c && c <= d) {
		return Trapezoid{}, fmt.Errorf("bayes: trapezoid %v,%v,%v,%v not ordered", a, b, c, d)
	}
	return Trapezoid{A: a, B: b, C: c, D: d}, nil
}

// Grade implements Membership.
func (t Trapezoid) Grade(v float64) float64 {
	switch {
	case v < t.A || v > t.D:
		return 0
	case v >= t.B && v <= t.C:
		return 1
	case v < t.B:
		if t.B == t.A {
			return 1
		}
		return (v - t.A) / (t.B - t.A)
	default:
		if t.D == t.C {
			return 1
		}
		return (t.D - v) / (t.D - t.C)
	}
}

var _ Membership = Trapezoid{}

// Above is a smooth step: 0 below lo, 1 above hi, linear in between —
// "gamma ray higher than 45" becomes Above{40, 50} to grade near-misses.
type Above struct {
	Lo, Hi float64
}

// Grade implements Membership.
func (a Above) Grade(v float64) float64 {
	if a.Hi <= a.Lo {
		// Crisp threshold.
		if v >= a.Lo {
			return 1
		}
		return 0
	}
	switch {
	case v <= a.Lo:
		return 0
	case v >= a.Hi:
		return 1
	default:
		return (v - a.Lo) / (a.Hi - a.Lo)
	}
}

var _ Membership = Above{}

// Below mirrors Above: 1 below lo, 0 above hi.
type Below struct {
	Lo, Hi float64
}

// Grade implements Membership.
func (b Below) Grade(v float64) float64 {
	if b.Hi <= b.Lo {
		if v <= b.Lo {
			return 1
		}
		return 0
	}
	switch {
	case v <= b.Lo:
		return 1
	case v >= b.Hi:
		return 0
	default:
		return (b.Hi - v) / (b.Hi - b.Lo)
	}
}

var _ Membership = Below{}

// Clause is one fuzzy condition: a named feature graded by a membership.
type Clause struct {
	Feature string
	Member  Membership
}

// RuleSet conjoins clauses (fuzzy AND = min) into a knowledge-model score.
// Weights allow soft clauses: a clause's grade g becomes 1-w+w·g, so w=1
// is a hard conjunct and w→0 makes it advisory.
type RuleSet struct {
	clauses []Clause
	weights []float64
}

// NewRuleSet starts an empty rule set.
func NewRuleSet() *RuleSet { return &RuleSet{} }

// Require adds a hard clause (weight 1).
func (r *RuleSet) Require(feature string, m Membership) *RuleSet {
	return r.Add(feature, m, 1)
}

// Add appends a clause with the given weight in (0, 1].
func (r *RuleSet) Add(feature string, m Membership, weight float64) *RuleSet {
	r.clauses = append(r.clauses, Clause{Feature: feature, Member: m})
	r.weights = append(r.weights, weight)
	return r
}

// Len returns the number of clauses.
func (r *RuleSet) Len() int { return len(r.clauses) }

// CompiledRuleSet is a RuleSet bound to a fixed feature-column order:
// every clause's feature name is resolved to a column index once, so
// scoring a candidate is a pass over a flat []float64 row — no map
// construction, no string hashing per candidate. This is the knowledge
// family's columnar scan kernel: the engine lays tile features out as
// one flat matrix at ingest and compiles the query's rule set against
// the matrix's column names at plan time.
type CompiledRuleSet struct {
	cols    []int // column index per clause; -1 = unknown feature
	members []Membership
	weights []float64
}

// Compile resolves the rule set against a column-name table. Unknown
// feature names compile to the missing-feature grade (0), exactly as
// Score treats features absent from its map. Weight validation happens
// here once instead of on every Score call; the errors match.
func (r *RuleSet) Compile(columns []string) (*CompiledRuleSet, error) {
	if len(r.clauses) == 0 {
		return nil, errors.New("bayes: empty rule set")
	}
	idx := make(map[string]int, len(columns))
	for i, n := range columns {
		idx[n] = i
	}
	c := &CompiledRuleSet{
		cols:    make([]int, len(r.clauses)),
		members: make([]Membership, len(r.clauses)),
		weights: make([]float64, len(r.clauses)),
	}
	for i, cl := range r.clauses {
		w := r.weights[i]
		if w <= 0 || w > 1 {
			return nil, fmt.Errorf("bayes: clause %d weight %v outside (0,1]", i, w)
		}
		col, ok := idx[cl.Feature]
		if !ok {
			col = -1
		}
		c.cols[i] = col
		c.members[i] = cl.Member
		c.weights[i] = w
	}
	return c, nil
}

// Len returns the number of compiled clauses.
func (c *CompiledRuleSet) Len() int { return len(c.cols) }

// ScoreRow grades one feature row (indexed by the column order Compile
// was given). The arithmetic is identical to RuleSet.Score — min over
// clauses of the weighted grade, missing features grading 0 — so
// compiled and map-based scoring are bit-identical.
func (c *CompiledRuleSet) ScoreRow(row []float64) float64 {
	score := 1.0
	for i, col := range c.cols {
		g := 0.0
		if col >= 0 {
			g = c.members[i].Grade(row[col])
		}
		w := c.weights[i]
		soft := 1 - w + w*g
		if soft < score {
			score = soft
		}
	}
	return score
}

// Score grades a feature map: min over clauses of the weighted grade.
// Missing features score 0 (a hard clause then zeroes the result).
func (r *RuleSet) Score(featureValues map[string]float64) (float64, error) {
	if len(r.clauses) == 0 {
		return 0, errors.New("bayes: empty rule set")
	}
	score := 1.0
	for i, c := range r.clauses {
		w := r.weights[i]
		if w <= 0 || w > 1 {
			return 0, fmt.Errorf("bayes: clause %d weight %v outside (0,1]", i, w)
		}
		g := 0.0
		if v, ok := featureValues[c.Feature]; ok {
			g = c.Member.Grade(v)
		}
		soft := 1 - w + w*g
		if soft < score {
			score = soft
		}
	}
	return score, nil
}
