package bayes

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTrapezoid(t *testing.T) {
	tr, err := NewTrapezoid(0, 10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v, want float64
	}{
		{-5, 0}, {0, 0}, {5, 0.5}, {10, 1}, {15, 1}, {20, 1}, {25, 0.5}, {30, 0}, {40, 0},
	}
	for _, c := range cases {
		if got := tr.Grade(c.v); got != c.want {
			t.Errorf("Grade(%v)=%v want %v", c.v, got, c.want)
		}
	}
	if _, err := NewTrapezoid(5, 4, 6, 7); err == nil {
		t.Fatal("want ordering error")
	}
	// Shoulders: a==b gives grade 1 at the left edge.
	sh, _ := NewTrapezoid(5, 5, 10, 12)
	if sh.Grade(5) != 1 {
		t.Fatal("left shoulder broken")
	}
	sh2, _ := NewTrapezoid(0, 2, 10, 10)
	if sh2.Grade(10) != 1 {
		t.Fatal("right shoulder broken")
	}
}

func TestAboveBelow(t *testing.T) {
	a := Above{Lo: 40, Hi: 50}
	if a.Grade(40) != 0 || a.Grade(50) != 1 || a.Grade(45) != 0.5 {
		t.Fatal("Above ramp wrong")
	}
	crisp := Above{Lo: 45, Hi: 45}
	if crisp.Grade(44.9) != 0 || crisp.Grade(45) != 1 {
		t.Fatal("crisp Above wrong")
	}
	b := Below{Lo: 10, Hi: 20}
	if b.Grade(10) != 1 || b.Grade(20) != 0 || b.Grade(15) != 0.5 {
		t.Fatal("Below ramp wrong")
	}
	crispB := Below{Lo: 10, Hi: 10}
	if crispB.Grade(10) != 1 || crispB.Grade(10.1) != 0 {
		t.Fatal("crisp Below wrong")
	}
}

// Property: all membership grades stay in [0,1] for finite, sanely-scaled
// breakpoints (extreme magnitudes that overflow float64 subtraction are
// outside the membership-function contract).
func TestMembershipRangeProperty(t *testing.T) {
	f := func(v float64, raw [4]float64) bool {
		pts := make([]float64, 4)
		for i, r := range raw {
			if r != r { // NaN out of contract
				r = 0
			}
			pts[i] = math.Mod(r, 1e6)
		}
		sort.Float64s(pts)
		tr, err := NewTrapezoid(pts[0], pts[1], pts[2], pts[3])
		if err != nil {
			return false // sorted finite inputs must be accepted
		}
		if v != v {
			v = 0
		}
		g := tr.Grade(math.Mod(v, 1e6))
		return g >= 0 && g <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRuleSetScore(t *testing.T) {
	rs := NewRuleSet().
		Require("gamma", Above{Lo: 40, Hi: 50}).
		Require("thickness", Trapezoid{A: 0, B: 5, C: 40, D: 60})
	if rs.Len() != 2 {
		t.Fatalf("len=%d", rs.Len())
	}
	s, err := rs.Score(map[string]float64{"gamma": 55, "thickness": 20})
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("perfect match scores %v", s)
	}
	// gamma=45 grades 0.5; min semantics.
	s, _ = rs.Score(map[string]float64{"gamma": 45, "thickness": 20})
	if s != 0.5 {
		t.Fatalf("partial match scores %v want 0.5", s)
	}
	// Missing feature zeroes a hard clause.
	s, _ = rs.Score(map[string]float64{"gamma": 55})
	if s != 0 {
		t.Fatalf("missing feature scores %v want 0", s)
	}
}

func TestRuleSetSoftClause(t *testing.T) {
	rs := NewRuleSet().
		Require("gamma", Above{Lo: 40, Hi: 50}).
		Add("bonus", Above{Lo: 0, Hi: 1}, 0.2) // advisory
	// Bonus feature absent: soft clause floor is 1-0.2 = 0.8.
	s, err := rs.Score(map[string]float64{"gamma": 60})
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.8 {
		t.Fatalf("soft clause floor %v want 0.8", s)
	}
}

func TestRuleSetValidation(t *testing.T) {
	if _, err := NewRuleSet().Score(nil); err == nil {
		t.Fatal("want error for empty rule set")
	}
	bad := NewRuleSet().Add("x", Above{}, 2)
	if _, err := bad.Score(map[string]float64{"x": 1}); err == nil {
		t.Fatal("want error for bad weight")
	}
}
