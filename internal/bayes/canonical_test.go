package bayes

import (
	"bytes"
	"errors"
	"testing"

	"modelir/internal/canon"
)

func testRuleSet(t *testing.T) *RuleSet {
	t.Helper()
	trap, err := NewTrapezoid(1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return NewRuleSet().
		Require("gamma", trap).
		Add("depth", Above{Lo: 100, Hi: 200}, 0.75).
		Add("porosity", Below{Lo: 0.1, Hi: 0.3}, 0.5)
}

func TestRuleSetCanonicalRoundTrip(t *testing.T) {
	rs := testRuleSet(t)
	enc, ok := rs.AppendCanonical(nil)
	if !ok {
		t.Fatal("AppendCanonical: not serializable")
	}
	r := canon.NewReader(enc)
	got, err := DecodeRuleSet(r)
	if err != nil {
		t.Fatalf("DecodeRuleSet: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode left %d bytes", r.Remaining())
	}
	re, ok := got.AppendCanonical(nil)
	if !ok || !bytes.Equal(re, enc) {
		t.Fatal("re-encoded rule set differs from original encoding")
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeRuleSet(canon.NewReader(enc[:n])); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecodeRuleSetRejectsCorrupt(t *testing.T) {
	// Unknown membership tag.
	b := []byte{'R', 'S'}
	b = canon.AppendUint(b, 1)
	b = canon.AppendString(b, "f")
	b = canon.AppendFloat(b, 1)
	b = append(b, 'Z')
	b = canon.AppendFloat(b, 0)
	b = canon.AppendFloat(b, 1)
	if _, err := DecodeRuleSet(canon.NewReader(b)); !errors.Is(err, canon.ErrCorrupt) {
		t.Fatalf("unknown tag: err = %v, want ErrCorrupt", err)
	}

	// Trapezoid with out-of-order knees must be rejected by NewTrapezoid.
	b = []byte{'R', 'S'}
	b = canon.AppendUint(b, 1)
	b = canon.AppendString(b, "f")
	b = canon.AppendFloat(b, 1)
	b = append(b, 'T')
	for _, v := range []float64{4, 3, 2, 1} {
		b = canon.AppendFloat(b, v)
	}
	if _, err := DecodeRuleSet(canon.NewReader(b)); !errors.Is(err, canon.ErrCorrupt) {
		t.Fatalf("bad trapezoid: err = %v, want ErrCorrupt", err)
	}
}
