package bayes

// HPSNetwork builds the Fig. 3 Bayesian network for Hantavirus Pulmonary
// Syndrome high-risk houses:
//
//	house ─┐                         unusual raining season ─┐
//	       ├─> house surrounded      dry season ─────────────┼─> wet season
//	bushes ┘    by bushes                                    ┘   followed by dry
//	              └──────────────┬───────────────┘
//	                             v
//	                       High Risk House
//
// The network is multi-modal by construction: "house" and "bushes" come
// from the imagery modality (high-resolution satellite), the season nodes
// from the weather modality. Variables and their indices are exposed as
// HPSVars for evidence binding.
type HPSVars struct {
	House, Bushes, Surrounded    int
	WetSeason, DrySeason, WetDry int
	HighRisk                     int
}

// HPSNetwork returns the network and its variable handle. CPT numbers are
// expert-elicited (the paper gives structure, not parameters): detection
// noise on the image-derived nodes and a noisy-OR combination at the root.
func HPSNetwork() (*Network, HPSVars, error) {
	b := NewBuilder()
	var vars HPSVars
	vars.House = b.Bool("house")
	vars.Bushes = b.Bool("bushes")
	vars.Surrounded = b.Bool("house_surrounded_by_bushes")
	vars.WetSeason = b.Bool("unusual_raining_season")
	vars.DrySeason = b.Bool("dry_season")
	vars.WetDry = b.Bool("wet_season_followed_by_dry")
	vars.HighRisk = b.Bool("high_risk_house")

	// Priors reflect area base rates.
	if err := b.Prior(vars.House, []float64{0.7, 0.3}); err != nil {
		return nil, vars, err
	}
	if err := b.Prior(vars.Bushes, []float64{0.6, 0.4}); err != nil {
		return nil, vars, err
	}
	if err := b.Prior(vars.WetSeason, []float64{0.75, 0.25}); err != nil {
		return nil, vars, err
	}
	if err := b.Prior(vars.DrySeason, []float64{0.5, 0.5}); err != nil {
		return nil, vars, err
	}

	// Surrounded ~= house AND bushes, with 5% detection noise.
	// Rows: (house,bushes) = (0,0),(0,1),(1,0),(1,1).
	if err := b.CPT(vars.Surrounded, []int{vars.House, vars.Bushes}, [][]float64{
		{0.99, 0.01},
		{0.97, 0.03},
		{0.95, 0.05},
		{0.10, 0.90},
	}); err != nil {
		return nil, vars, err
	}
	// WetDry ~= wet AND dry (the characteristic HPS weather pattern).
	if err := b.CPT(vars.WetDry, []int{vars.WetSeason, vars.DrySeason}, [][]float64{
		{0.98, 0.02},
		{0.90, 0.10},
		{0.85, 0.15},
		{0.05, 0.95},
	}); err != nil {
		return nil, vars, err
	}
	// HighRisk: noisy-OR of the two mid-level causes; the weather pattern
	// is the stronger driver (rodent population booms), vegetation cover
	// the secondary one.
	rows, err := NoisyOR([]float64{0.35, 0.25}, 0.02)
	if err != nil {
		return nil, vars, err
	}
	if err := b.CPT(vars.HighRisk, []int{vars.Surrounded, vars.WetDry}, rows); err != nil {
		return nil, vars, err
	}
	nw, err := b.Build()
	return nw, vars, err
}
