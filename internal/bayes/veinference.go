package bayes

import (
	"errors"
	"fmt"
	"sort"
)

// Variable-elimination inference. The enumeration in Posterior is
// exponential in the number of free variables; PosteriorVE exploits the
// network's factorization, multiplying only the factors that mention
// each eliminated variable — polynomial for the tree-like expert
// networks of Section 2.3 and never worse than enumeration. Both
// engines return identical distributions (property-tested), so
// PosteriorVE is a drop-in replacement where networks grow beyond a
// dozen variables.

// factor is a table over a sorted set of variables.
type factor struct {
	vars  []int // ascending network variable indices
	arity []int // arity per var, aligned with vars
	data  []float64
}

func (f *factor) index(assign map[int]int) int {
	idx := 0
	for i, v := range f.vars {
		idx = idx*f.arity[i] + assign[v]
	}
	return idx
}

// PosteriorVE computes P(query | evidence) by variable elimination with
// a min-width greedy ordering.
func (nw *Network) PosteriorVE(query int, evidence map[int]int) ([]float64, error) {
	if query < 0 || query >= len(nw.names) {
		return nil, fmt.Errorf("bayes: query variable %d out of range", query)
	}
	for v, s := range evidence {
		if v < 0 || v >= len(nw.names) {
			return nil, fmt.Errorf("bayes: evidence variable %d out of range", v)
		}
		if s < 0 || s >= nw.arity[v] {
			return nil, fmt.Errorf("bayes: evidence state %d invalid for %q", s, nw.names[v])
		}
	}
	if s, fixed := evidence[query]; fixed {
		out := make([]float64, nw.arity[query])
		out[s] = 1
		return out, nil
	}

	// Build one factor per CPT, restricted by evidence.
	factors := make([]*factor, 0, len(nw.names))
	for v := range nw.names {
		factors = append(factors, nw.cptFactor(v, evidence))
	}

	// Eliminate every free variable except the query, smallest
	// intermediate-factor width first (greedy).
	free := make([]int, 0, len(nw.names))
	for v := range nw.names {
		if v == query {
			continue
		}
		if _, fixed := evidence[v]; fixed {
			continue
		}
		free = append(free, v)
	}
	for len(free) > 0 {
		// Pick the variable whose elimination creates the smallest factor.
		bestI, bestW := 0, 1<<62
		for i, v := range free {
			w := eliminationWidth(factors, v, nw.arity)
			if w < bestW {
				bestI, bestW = i, w
			}
		}
		v := free[bestI]
		free = append(free[:bestI], free[bestI+1:]...)

		var touching []*factor
		var rest []*factor
		for _, f := range factors {
			if containsVar(f.vars, v) {
				touching = append(touching, f)
			} else {
				rest = append(rest, f)
			}
		}
		product := multiplyAll(touching, nw.arity)
		summed := sumOut(product, v)
		factors = append(rest, summed)
	}

	result := multiplyAll(factors, nw.arity)
	// result is over {query} (or empty if query was disconnected).
	out := make([]float64, nw.arity[query])
	if len(result.vars) == 0 {
		return nil, errors.New("bayes: query eliminated unexpectedly")
	}
	if len(result.vars) != 1 || result.vars[0] != query {
		return nil, fmt.Errorf("bayes: internal elimination error, remaining vars %v", result.vars)
	}
	copy(out, result.data)
	total := 0.0
	for _, p := range out {
		total += p
	}
	if total == 0 {
		return nil, errors.New("bayes: evidence has zero probability")
	}
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// ProbTrueVE is the binary-variable convenience over PosteriorVE.
func (nw *Network) ProbTrueVE(v int, evidence map[int]int) (float64, error) {
	if v < 0 || v >= len(nw.names) {
		return 0, fmt.Errorf("bayes: variable %d out of range", v)
	}
	if nw.arity[v] != 2 {
		return 0, fmt.Errorf("bayes: %q is not binary", nw.names[v])
	}
	d, err := nw.PosteriorVE(v, evidence)
	if err != nil {
		return 0, err
	}
	return d[1], nil
}

// cptFactor materializes variable v's CPT as a factor over
// {parents(v), v} with evidence variables fixed (dropped from scope).
func (nw *Network) cptFactor(v int, evidence map[int]int) *factor {
	scope := append(append([]int(nil), nw.parents[v]...), v)
	sort.Ints(scope)
	var freeScope []int
	for _, sv := range scope {
		if _, fixed := evidence[sv]; !fixed {
			freeScope = append(freeScope, sv)
		}
	}
	f := &factor{vars: freeScope, arity: make([]int, len(freeScope))}
	size := 1
	for i, sv := range freeScope {
		f.arity[i] = nw.arity[sv]
		size *= nw.arity[sv]
	}
	f.data = make([]float64, size)

	assign := make(map[int]int, len(scope))
	for ev, s := range evidence {
		assign[ev] = s
	}
	var rec func(i int)
	rec = func(i int) {
		if i == len(freeScope) {
			// Full assignment over the factor scope: read the CPT.
			full := make([]int, len(nw.names))
			for sv, s := range assign {
				full[sv] = s
			}
			row := nw.rowIndex(v, full)
			f.data[f.index(assign)] = nw.cpt[v][row*nw.arity[v]+full[v]]
			return
		}
		sv := freeScope[i]
		for s := 0; s < nw.arity[sv]; s++ {
			assign[sv] = s
			rec(i + 1)
		}
		delete(assign, sv)
	}
	rec(0)
	return f
}

func containsVar(vars []int, v int) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// eliminationWidth returns the size of the factor produced by
// eliminating v (product of arities of the union scope minus v).
func eliminationWidth(factors []*factor, v int, arity []int) int {
	scope := map[int]bool{}
	for _, f := range factors {
		if containsVar(f.vars, v) {
			for _, x := range f.vars {
				scope[x] = true
			}
		}
	}
	delete(scope, v)
	w := 1
	for x := range scope {
		w *= arity[x]
	}
	return w
}

// multiplyAll multiplies factors into one over the union scope.
func multiplyAll(fs []*factor, arity []int) *factor {
	if len(fs) == 0 {
		return &factor{data: []float64{1}}
	}
	scopeSet := map[int]bool{}
	for _, f := range fs {
		for _, v := range f.vars {
			scopeSet[v] = true
		}
	}
	scope := make([]int, 0, len(scopeSet))
	for v := range scopeSet {
		scope = append(scope, v)
	}
	sort.Ints(scope)
	out := &factor{vars: scope, arity: make([]int, len(scope))}
	size := 1
	for i, v := range scope {
		out.arity[i] = arity[v]
		size *= arity[v]
	}
	out.data = make([]float64, size)

	assign := make(map[int]int, len(scope))
	var rec func(i int)
	rec = func(i int) {
		if i == len(scope) {
			p := 1.0
			for _, f := range fs {
				p *= f.data[f.index(assign)]
			}
			out.data[out.index(assign)] = p
			return
		}
		v := scope[i]
		for s := 0; s < arity[v]; s++ {
			assign[v] = s
			rec(i + 1)
		}
		delete(assign, v)
	}
	rec(0)
	return out
}

// sumOut marginalizes v from f.
func sumOut(f *factor, v int) *factor {
	vi := -1
	for i, x := range f.vars {
		if x == v {
			vi = i
			break
		}
	}
	if vi < 0 {
		return f
	}
	outVars := append(append([]int(nil), f.vars[:vi]...), f.vars[vi+1:]...)
	outArity := append(append([]int(nil), f.arity[:vi]...), f.arity[vi+1:]...)
	size := 1
	for _, a := range outArity {
		size *= a
	}
	out := &factor{vars: outVars, arity: outArity, data: make([]float64, size)}

	assign := make(map[int]int, len(f.vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(outVars) {
			sum := 0.0
			for s := 0; s < f.arity[vi]; s++ {
				assign[v] = s
				sum += f.data[f.index(assign)]
			}
			delete(assign, v)
			out.data[out.index(assign)] = sum
			return
		}
		x := outVars[i]
		for s := 0; s < out.arity[i]; s++ {
			assign[x] = s
			rec(i + 1)
		}
		delete(assign, x)
	}
	rec(0)
	return out
}
