// Canonical request fingerprinting. A cache key must satisfy two
// properties the tests pin:
//
//  1. no collisions between semantically different requests — two
//     requests that could return different results must never share a
//     key;
//  2. stability — the key is a pure function of the request's semantic
//     field values, independent of construction order, map iteration,
//     or process lifetime.
//
// Both come from framing: every write is tagged with its type and
// length-prefixed before entering a SHA-256, so adjacent fields can
// never re-associate (("ab","c") vs ("a","bc")), a missing optional
// field is distinguishable from a zero value, and numeric types with
// identical bit patterns but different meanings stay distinct. SHA-256
// makes engineered collisions infeasible and accidental ones
// negligible (2^-128 birthday bound dwarfs any fleet's query volume).

package qcache

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// KeySize is the fingerprint digest width in bytes.
const KeySize = sha256.Size

// Type tags. Each framed write starts with one, so values of different
// types never collide even when their payload bytes match.
const (
	tagString byte = iota + 1
	tagBytes
	tagInt
	tagUint
	tagFloat
	tagBool
	tagNil
	tagList
	tagField
)

// Fingerprint accumulates a canonical encoding of one request and
// digests it into a Key. The zero value is ready to use.
type Fingerprint struct {
	buf []byte
}

// NewFingerprint returns an empty fingerprint builder.
func NewFingerprint() *Fingerprint { return &Fingerprint{} }

func (f *Fingerprint) frame(tag byte, payload int) {
	f.buf = append(f.buf, tag)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(payload))
	f.buf = append(f.buf, n[:]...)
}

// Field marks the start of a named field. Writing the field name as its
// own framed token keeps reordered or renamed fields from colliding
// with value bytes.
func (f *Fingerprint) Field(name string) *Fingerprint {
	f.frame(tagField, len(name))
	f.buf = append(f.buf, name...)
	return f
}

// String appends a framed string value.
func (f *Fingerprint) String(s string) *Fingerprint {
	f.frame(tagString, len(s))
	f.buf = append(f.buf, s...)
	return f
}

// Bytes appends a framed byte-slice value.
func (f *Fingerprint) Bytes(b []byte) *Fingerprint {
	f.frame(tagBytes, len(b))
	f.buf = append(f.buf, b...)
	return f
}

// Int appends a framed signed integer.
func (f *Fingerprint) Int(v int64) *Fingerprint {
	f.frame(tagInt, 8)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(v))
	f.buf = append(f.buf, n[:]...)
	return f
}

// Uint appends a framed unsigned integer.
func (f *Fingerprint) Uint(v uint64) *Fingerprint {
	f.frame(tagUint, 8)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], v)
	f.buf = append(f.buf, n[:]...)
	return f
}

// Float appends a framed float64 by IEEE-754 bit pattern. Distinct bit
// patterns (including ±0) fingerprint distinctly; callers that treat
// them as equal must normalize first.
func (f *Fingerprint) Float(v float64) *Fingerprint {
	f.frame(tagFloat, 8)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], math.Float64bits(v))
	f.buf = append(f.buf, n[:]...)
	return f
}

// Bool appends a framed boolean.
func (f *Fingerprint) Bool(v bool) *Fingerprint {
	b := byte(0)
	if v {
		b = 1
	}
	f.frame(tagBool, 1)
	f.buf = append(f.buf, b)
	return f
}

// Nil appends an explicit absent-value marker, distinguishing "field
// not set" from any set value (e.g. a nil MinScore vs a zero floor).
func (f *Fingerprint) Nil() *Fingerprint {
	f.frame(tagNil, 0)
	return f
}

// Floats appends a framed float64 list: the element count is part of
// the frame, so [1,2]+[3] never collides with [1]+[2,3].
func (f *Fingerprint) Floats(vs []float64) *Fingerprint {
	f.frame(tagList, len(vs))
	for _, v := range vs {
		f.Float(v)
	}
	return f
}

// Strings appends a framed string list.
func (f *Fingerprint) Strings(vs []string) *Fingerprint {
	f.frame(tagList, len(vs))
	for _, v := range vs {
		f.String(v)
	}
	return f
}

// Ints appends a framed int list.
func (f *Fingerprint) Ints(vs []int) *Fingerprint {
	f.frame(tagList, len(vs))
	for _, v := range vs {
		f.Int(int64(v))
	}
	return f
}

// Key digests everything written so far. The builder may keep
// accumulating afterwards (later Keys cover the longer prefix).
func (f *Fingerprint) Key() Key {
	return Key(sha256.Sum256(f.buf))
}
