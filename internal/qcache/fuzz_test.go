package qcache

import (
	"encoding/binary"
	"math"
	"testing"
)

// fingerprintRecord encodes a Request-shaped record the way the engine
// does (dataset, options, query kind, model parameters): one framed
// field at a time, in a fixed canonical order. The fuzz target below
// pins the two cache-key properties on it: determinism (same record,
// same key — regardless of how the record was assembled) and
// distinctness (semantically different records never collide).
func fingerprintRecord(dataset, kind string, k int64, hasMin bool, minScore float64, coeffs []float64, intercept float64) Key {
	f := NewFingerprint()
	f.Field("dataset").String(dataset)
	f.Field("k").Int(k)
	f.Field("minscore")
	if hasMin {
		f.Float(minScore)
	} else {
		f.Nil()
	}
	f.Field("query").String(kind)
	f.Field("coeffs").Floats(coeffs)
	f.Field("intercept").Float(intercept)
	return f.Key()
}

func coeffsFrom(b []byte) []float64 {
	out := make([]float64, 0, len(b)/8)
	for len(b) >= 8 {
		out = append(out, math.Float64frombits(binary.BigEndian.Uint64(b[:8])))
		b = b[8:]
	}
	return out
}

// FuzzRequestFingerprint drives the record fingerprint with arbitrary
// field values and checks that the key is a pure function of the
// record's semantic content: rebuilding the identical record from
// copied fields reproduces the key bit for bit, while perturbing any
// single field — dataset, K, the optional MinScore (including merely
// toggling its presence against an identical value), query kind, any
// coefficient, the coefficient count, or the intercept — always
// changes it.
func FuzzRequestFingerprint(f *testing.F) {
	f.Add("gauss", "linear", int64(10), false, 0.0, []byte("\x3f\xf0\x00\x00\x00\x00\x00\x00"), 3.0)
	f.Add("", "", int64(0), true, 0.0, []byte{}, 0.0)
	f.Add("weather", "fsm", int64(1), true, -1.5, []byte("abcdefghABCDEFGH"), -0.0)
	// Re-association bait: dataset/kind boundary and coefficient
	// framing are exactly what these seeds probe.
	f.Add("ab", "c", int64(7), false, 0.0, []byte("\x00\x00\x00\x00\x00\x00\x00\x00"), 0.0)
	f.Add("a", "bc", int64(7), false, 0.0, []byte{}, 0.0)

	f.Fuzz(func(t *testing.T, dataset, kind string, k int64, hasMin bool, minScore float64, coeffBytes []byte, intercept float64) {
		coeffs := coeffsFrom(coeffBytes)
		key := fingerprintRecord(dataset, kind, k, hasMin, minScore, coeffs, intercept)

		// Determinism: rebuilding from copied fields reproduces the key.
		coeffs2 := append([]float64(nil), coeffs...)
		if again := fingerprintRecord(dataset, kind, k, hasMin, minScore, coeffs2, intercept); again != key {
			t.Fatalf("fingerprint not deterministic: %x vs %x", key, again)
		}

		// Distinctness: every single-field perturbation moves the key.
		type variant struct {
			name string
			key  Key
		}
		variants := []variant{
			{"dataset", fingerprintRecord(dataset+"x", kind, k, hasMin, minScore, coeffs, intercept)},
			{"kind", fingerprintRecord(dataset, kind+"x", k, hasMin, minScore, coeffs, intercept)},
			{"k", fingerprintRecord(dataset, kind, k+1, hasMin, minScore, coeffs, intercept)},
			{"minscore-presence", fingerprintRecord(dataset, kind, k, !hasMin, minScore, coeffs, intercept)},
			{"coeff-count", fingerprintRecord(dataset, kind, k, hasMin, minScore, append(coeffs2, 1), intercept)},
		}
		if hasMin {
			flipped := math.Float64frombits(math.Float64bits(minScore) ^ 1)
			variants = append(variants,
				variant{"minscore", fingerprintRecord(dataset, kind, k, hasMin, flipped, coeffs, intercept)})
		}
		if len(coeffs) > 0 {
			mut := append([]float64(nil), coeffs...)
			mut[0] = math.Float64frombits(math.Float64bits(mut[0]) ^ 1)
			variants = append(variants,
				variant{"coeff-bits", fingerprintRecord(dataset, kind, k, hasMin, minScore, mut, intercept)})
		}
		flippedIc := math.Float64frombits(math.Float64bits(intercept) ^ 1)
		variants = append(variants,
			variant{"intercept", fingerprintRecord(dataset, kind, k, hasMin, minScore, coeffs, flippedIc)})
		for _, v := range variants {
			if v.key == key {
				t.Fatalf("perturbing %s did not change the fingerprint", v.name)
			}
		}
	})
}
