// Package qcache is the engine's query-result cache: a sharded LRU
// keyed by a canonical Request fingerprint (see Fingerprint) and
// invalidated by a generation counter the caller supplies — the engine
// passes the target dataset's own generation, bumped on every append
// to that dataset, so writes to one dataset never evict another's
// entries. The paper's screening/pruning structure makes repeated
// and near-duplicate queries highly cacheable — a model re-run against
// an unchanged archive is, by the engine's determinism guarantee,
// guaranteed to produce the same answer, so serving it from memory is
// exact, not approximate.
//
// Concurrency: the cache is sharded by key prefix, each shard guarded
// by its own mutex, so concurrent hits on different shards never
// contend. Counters are engine-wide atomics.
//
// Invalidation: every entry records the generation it was computed
// under. Get compares the entry's generation against the caller's
// current one and treats any mismatch as a miss, deleting the stale
// entry — so after an append bumps the dataset's generation, no
// pre-append result is ever served again. (The cache itself is
// agnostic to what the counter means; the parameter is still named
// epoch below.)
package qcache

import (
	"sync"
	"sync/atomic"
)

// Key is a canonical request fingerprint (see Fingerprint.Key).
type Key [KeySize]byte

// Options tunes cache construction.
type Options struct {
	// Entries caps the total cached results across all shards; 0 means
	// DefaultEntries.
	Entries int
	// Shards is the number of independently locked partitions; 0 means
	// DefaultShards. Rounded up to a power of two.
	Shards int
}

// Default sizing: a serving deployment tunes these via Options.
const (
	DefaultEntries = 1024
	DefaultShards  = 16
)

// Stats is a point-in-time sample of the cache counters.
type Stats struct {
	// Hits counts Gets that returned a live entry.
	Hits uint64
	// Misses counts Gets that found nothing (including epoch
	// invalidations, which are also counted separately).
	Misses uint64
	// Stores counts Puts (inserts and replacements both).
	Stores uint64
	// Evictions counts entries dropped by LRU capacity pressure.
	Evictions uint64
	// Invalidations counts entries dropped because their epoch was
	// stale at lookup.
	Invalidations uint64
	// Entries is the number of currently cached results.
	Entries int
}

// Cache is a sharded, epoch-checked LRU. The zero value is not usable;
// construct with New.
type Cache struct {
	shards []*cacheShard
	mask   uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	stores        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// New builds a cache. Entries is split evenly across shards (each shard
// holds at least one entry, so tiny Entries with many shards rounds the
// effective capacity up).
func New(opt Options) *Cache {
	entries := opt.Entries
	if entries <= 0 {
		entries = DefaultEntries
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	// Round shards up to a power of two so key-prefix masking is a
	// single AND.
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (entries + n - 1) / n
	c := &Cache{shards: make([]*cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = newCacheShard(perShard)
	}
	return c
}

func (c *Cache) shardFor(key Key) *cacheShard {
	// The key is a cryptographic hash: any 8 bytes are uniformly
	// distributed, so the low word picks shards evenly.
	v := uint64(key[0]) | uint64(key[1])<<8 | uint64(key[2])<<16 | uint64(key[3])<<24 |
		uint64(key[4])<<32 | uint64(key[5])<<40 | uint64(key[6])<<48 | uint64(key[7])<<56
	return c.shards[v&c.mask]
}

// Get returns the value cached under key if it is live at the given
// epoch. A stale entry (any epoch mismatch) is deleted and reported as
// a miss.
func (c *Cache) Get(key Key, epoch uint64) (any, bool) {
	v, ok, stale := c.shardFor(key).get(key, epoch)
	if stale {
		c.invalidations.Add(1)
	}
	if ok {
		c.hits.Add(1)
		return v, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put caches value under key at the given epoch, replacing any previous
// entry for the key and evicting the least-recently-used entry when the
// shard is full.
func (c *Cache) Put(key Key, epoch uint64, value any) {
	c.stores.Add(1)
	if c.shardFor(key).put(key, epoch, value) {
		c.evictions.Add(1)
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}

// Stats samples the counters including the entry count. Counting
// entries locks every shard in turn; hot paths that only need the
// atomic counters should use Counters.
func (c *Cache) Stats() Stats {
	s := c.Counters()
	s.Entries = c.Len()
	return s
}

// Counters samples only the lock-free atomic counters (Entries stays
// zero). This is the per-request sampling path: it takes no locks and
// never contends with cache traffic on other shards.
func (c *Cache) Counters() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stores:        c.stores.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}

// entry is one cached result on a shard's intrusive LRU list.
type entry struct {
	key        Key
	epoch      uint64
	value      any
	prev, next *entry
}

// cacheShard is one locked partition: a map for lookup plus a doubly
// linked list in recency order (head = most recent).
type cacheShard struct {
	mu         sync.Mutex
	capacity   int
	table      map[Key]*entry
	head, tail *entry
}

func newCacheShard(capacity int) *cacheShard {
	if capacity < 1 {
		capacity = 1
	}
	return &cacheShard{capacity: capacity, table: make(map[Key]*entry, capacity)}
}

func (s *cacheShard) get(key Key, epoch uint64) (v any, ok, stale bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, found := s.table[key]
	if !found {
		return nil, false, false
	}
	if e.epoch != epoch {
		s.unlink(e)
		delete(s.table, key)
		return nil, false, true
	}
	s.moveToFront(e)
	return e.value, true, false
}

func (s *cacheShard) put(key Key, epoch uint64, value any) (evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, found := s.table[key]; found {
		e.epoch = epoch
		e.value = value
		s.moveToFront(e)
		return false
	}
	if len(s.table) >= s.capacity {
		lru := s.tail
		s.unlink(lru)
		delete(s.table, lru.key)
		evicted = true
	}
	e := &entry{key: key, epoch: epoch, value: value}
	s.table[key] = e
	s.pushFront(e)
	return evicted
}

func (s *cacheShard) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.table)
}

func (s *cacheShard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
