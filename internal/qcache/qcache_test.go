package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func keyOf(s string) Key {
	return NewFingerprint().String(s).Key()
}

func TestGetPutBasics(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 2})
	k := keyOf("a")
	if _, ok := c.Get(k, 0); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, 0, "va")
	v, ok := c.Get(k, 0)
	if !ok || v.(string) != "va" {
		t.Fatalf("got %v/%v, want va", v, ok)
	}
	// Replacement updates in place.
	c.Put(k, 0, "vb")
	if v, _ := c.Get(k, 0); v.(string) != "vb" {
		t.Fatalf("replace: got %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	k := keyOf("a")
	c.Put(k, 1, "old")
	// Stale lookups miss, delete the entry, and count an invalidation.
	if _, ok := c.Get(k, 2); ok {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats after invalidation: %+v", st)
	}
	// Even a LOWER epoch invalidates: any mismatch is stale.
	c.Put(k, 5, "new")
	if _, ok := c.Get(k, 4); ok {
		t.Fatal("mismatched-epoch entry served")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard, capacity 3: inserting a 4th entry evicts the least
	// recently used.
	c := New(Options{Entries: 3, Shards: 1})
	ka, kb, kc, kd := keyOf("a"), keyOf("b"), keyOf("c"), keyOf("d")
	c.Put(ka, 0, "a")
	c.Put(kb, 0, "b")
	c.Put(kc, 0, "c")
	// Touch a and c so b is the LRU.
	c.Get(ka, 0)
	c.Get(kc, 0)
	c.Put(kd, 0, "d")
	if _, ok := c.Get(kb, 0); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []Key{ka, kc, kd} {
		if _, ok := c.Get(k, 0); !ok {
			t.Fatalf("recently used entry evicted")
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShardRoundingAndDefaults(t *testing.T) {
	c := New(Options{})
	if len(c.shards) != DefaultShards {
		t.Fatalf("default shards %d, want %d", len(c.shards), DefaultShards)
	}
	// Shards round up to a power of two.
	c = New(Options{Entries: 10, Shards: 5})
	if len(c.shards) != 8 {
		t.Fatalf("shards %d, want 8", len(c.shards))
	}
	// Every shard holds at least one entry.
	c = New(Options{Entries: 1, Shards: 4})
	for i := 0; i < 64; i++ {
		c.Put(keyOf(fmt.Sprint(i)), 0, i)
	}
	if c.Len() < 1 {
		t.Fatal("cache lost everything")
	}
}

// TestConcurrentMixedTraffic hammers all operations from many
// goroutines; run with -race. Correctness invariant: a hit must return
// the value put under that key and epoch.
func TestConcurrentMixedTraffic(t *testing.T) {
	c := New(Options{Entries: 64, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := (g*31 + i) % 40
				k := keyOf(fmt.Sprint("key", id))
				epoch := uint64(i % 3)
				if i%2 == 0 {
					c.Put(k, epoch, id)
				} else if v, ok := c.Get(k, epoch); ok && v.(int) != id {
					t.Errorf("key %d returned %v", id, v)
				}
			}
		}(g)
	}
	wg.Wait()
	c.Stats() // must not race
}

func TestFingerprintFraming(t *testing.T) {
	// Adjacent strings must not re-associate.
	a := NewFingerprint().String("ab").String("c").Key()
	b := NewFingerprint().String("a").String("bc").Key()
	if a == b {
		t.Fatal("string framing collision")
	}
	// List boundaries are part of the frame.
	a = NewFingerprint().Floats([]float64{1, 2}).Floats([]float64{3}).Key()
	b = NewFingerprint().Floats([]float64{1}).Floats([]float64{2, 3}).Key()
	if a == b {
		t.Fatal("list framing collision")
	}
	// Types with identical payload bytes stay distinct.
	a = NewFingerprint().Int(0).Key()
	b = NewFingerprint().Uint(0).Key()
	if a == b {
		t.Fatal("int/uint collision")
	}
	// Absent is not zero.
	a = NewFingerprint().Nil().Key()
	b = NewFingerprint().Float(0).Key()
	if a == b {
		t.Fatal("nil/zero collision")
	}
	// Field names bind to their values.
	a = NewFingerprint().Field("k").Int(3).Key()
	b = NewFingerprint().Field("budget").Int(3).Key()
	if a == b {
		t.Fatal("field-name collision")
	}
	// Pure function of content: rebuilt fingerprints agree.
	a = NewFingerprint().Field("q").Strings([]string{"x", "y"}).Bool(true).Key()
	b = NewFingerprint().Field("q").Strings([]string{"x", "y"}).Bool(true).Key()
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
}
