// Node durability: a shard server's snapshot is its engine's snapshot
// (the built partitions, named dataset#part engine-locally) plus a
// NODE.json placement record — which global partitions this node
// holds, their engine-local names, and the tuple ID offsets. Placement
// is a pure function of the topology, so RestoreNode validates the
// recorded topology against the one the cluster is booting with and
// refuses a stale snapshot instead of serving partitions the ring no
// longer assigns here.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"

	"modelir/internal/core"
	"modelir/internal/segment"
)

// nodeMetaName is the placement record written next to the engine
// snapshot's MANIFEST.json.
const nodeMetaName = "NODE.json"

// nodeMeta is the NODE.json schema.
type nodeMeta struct {
	Self        string     `json:"self"`
	Nodes       []string   `json:"nodes"`
	Replication int        `json:"replication"`
	Parts       []nodePart `json:"parts"`
}

// nodePart records one (dataset, partition) this node holds. Local is
// the engine-level dataset name serving it ("" for an assigned-but-
// empty partition); Offset lifts tuple result IDs to global row
// indices.
type nodePart struct {
	Dataset string `json:"dataset"`
	Part    int    `json:"part"`
	Local   string `json:"local,omitempty"`
	Offset  int64  `json:"offset,omitempty"`
}

// Snapshot persists the node's engine state and placement record to b.
// Restore with RestoreNode under the same self and topology.
func (n *Node) Snapshot(ctx context.Context, b segment.Backend) error {
	if err := n.eng.Snapshot(ctx, b); err != nil {
		return err
	}
	meta := nodeMeta{
		Self:        n.self,
		Nodes:       append([]string(nil), n.topo.Nodes...),
		Replication: n.topo.Replication,
	}
	n.mu.Lock()
	for dataset, parts := range n.parts {
		for part, e := range parts {
			meta.Parts = append(meta.Parts, nodePart{
				Dataset: dataset, Part: part, Local: e.local, Offset: e.offset,
			})
		}
	}
	n.mu.Unlock()
	sort.Slice(meta.Parts, func(i, j int) bool {
		if meta.Parts[i].Dataset != meta.Parts[j].Dataset {
			return meta.Parts[i].Dataset < meta.Parts[j].Dataset
		}
		return meta.Parts[i].Part < meta.Parts[j].Part
	})
	data, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	return b.WriteFile(nodeMetaName, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// RestoreNode restores a shard server from a snapshot written by
// Node.Snapshot: the engine partitions come back serving-ready (in
// Copy or Map mode) and the placement record is validated against
// self and topo — a topology that no longer matches the snapshot's is
// refused, because the ring would route this node partitions it does
// not hold. The restored node only needs Serve; Close releases any
// mappings.
func RestoreNode(self string, topo Topology, opt NodeOptions, b segment.Backend, mode segment.RestoreMode) (*Node, error) {
	eng, err := core.OpenSnapshot(b, core.RestoreOptions{
		Mode:    mode,
		Options: core.Options{CacheEntries: opt.CacheEntries},
	})
	if err != nil {
		return nil, err
	}
	meta, err := readNodeMeta(b)
	if err != nil {
		eng.Close()
		return nil, err
	}
	if meta.Self != self {
		eng.Close()
		return nil, fmt.Errorf("%w: snapshot belongs to node %q, not %q", segment.ErrCorrupt, meta.Self, self)
	}
	if len(meta.Nodes) != len(topo.Nodes) || meta.Replication != topo.Replication {
		eng.Close()
		return nil, fmt.Errorf("%w: snapshot topology (%d nodes, replication %d) differs from boot topology (%d nodes, replication %d)",
			segment.ErrCorrupt, len(meta.Nodes), meta.Replication, len(topo.Nodes), topo.Replication)
	}
	for i := range meta.Nodes {
		if meta.Nodes[i] != topo.Nodes[i] {
			eng.Close()
			return nil, fmt.Errorf("%w: snapshot node list differs from boot topology at %d (%q vs %q)",
				segment.ErrCorrupt, i, meta.Nodes[i], topo.Nodes[i])
		}
	}

	// Every non-empty partition must be backed by a restored dataset.
	restored := make(map[string]bool)
	for _, ds := range eng.Datasets() {
		restored[ds.Name] = true
	}
	n := &Node{
		self:     self,
		topo:     topo,
		opt:      opt,
		eng:      eng,
		appender: core.NewAppender(eng, core.AppenderOptions{}),
		conns:    make(map[net.Conn]struct{}),
		parts:    make(map[string]map[int]partEntry),
		ingests:  make(map[string]map[int]*partIngest),
	}
	for _, p := range meta.Parts {
		if p.Local != "" && !restored[p.Local] {
			eng.Close()
			return nil, fmt.Errorf("%w: placement references dataset %q missing from the snapshot", segment.ErrCorrupt, p.Local)
		}
		if err := n.register(p.Dataset, p.Part, partEntry{local: p.Local, offset: p.Offset}); err != nil {
			eng.Close()
			return nil, err
		}
	}
	return n, nil
}

// readNodeMeta reads and strictly decodes NODE.json. An engine
// snapshot without a placement record is a corrupt node snapshot (the
// engine manifest's presence already ruled out ErrNoSnapshot).
func readNodeMeta(b segment.Backend) (*nodeMeta, error) {
	blob, err := b.Open(nodeMetaName)
	if err != nil {
		return nil, fmt.Errorf("%w: %s missing or unreadable: %v", segment.ErrCorrupt, nodeMetaName, err)
	}
	defer blob.Close()
	raw := make([]byte, blob.Size())
	if _, err := io.ReadFull(io.NewSectionReader(blob, 0, blob.Size()), raw); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: %s read: %v", segment.ErrCorrupt, nodeMetaName, err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var meta nodeMeta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", segment.ErrCorrupt, nodeMetaName, err)
	}
	return &meta, nil
}
