// The shard-server role: a Node owns a private engine holding its
// assigned partitions of each dataset and serves one query per inbound
// connection. While a query runs, the node and router exchange floor
// raises ('F' frames) both ways: remote floors feed the query's
// SharedBound and prune the local scan mid-flight, and local raises are
// published back so the router can gossip them to the other nodes.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modelir/internal/archive"
	"modelir/internal/core"
	"modelir/internal/synth"
)

// floorPollInterval is how often the node checks whether its local
// floor rose enough to publish. Floor frames are an optimization — the
// result is bit-identical with or without them — so a coarse interval
// costs only pruning opportunity, never correctness.
const floorPollInterval = 200 * time.Microsecond

// NodeOptions configures a shard server.
type NodeOptions struct {
	// Shards is the engine fan-out within this node (0 = default).
	Shards int
	// CacheEntries sizes the node engine's result cache (0 = default,
	// negative = disabled), passed through to core.Options.
	CacheEntries int
	// BeforeExec, when set, runs after a query is decoded and resolved
	// but before execution starts — a test hook for deterministic
	// fault injection (kill or block the node mid-query).
	BeforeExec func(dataset string, part int)
	// BeforeAppend is BeforeExec's ingest twin: it runs after an append
	// batch is decoded but before it is applied or acked, so a test can
	// kill the node mid-append deterministically (the batch is lost, the
	// router quarantines the replica).
	BeforeAppend func(dataset string, part int, seq uint64)
}

type partEntry struct {
	local  string // engine-local dataset name, "" for an empty partition
	offset int64  // added to result IDs (tuples only; 0 elsewhere)
}

// Node is one shard server: a listener plus the engine serving its
// partitions.
type Node struct {
	self string
	topo Topology
	opt  NodeOptions
	eng  *core.Engine

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
	parts map[string]map[int]partEntry
	// ingests carries each partition's append cursor (last applied
	// sequence number); entries are created on first append.
	ingests map[string]map[int]*partIngest

	// appender coalesces concurrent series/well appends from multiple
	// router connections into fewer delta segments (tuple batches land
	// directly: their explicit global bases cannot be merged).
	appender *core.Appender

	served    atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
	appended  atomic.Int64

	wg sync.WaitGroup
}

// NewNode creates a node for `self` (its dial address in the topology).
// Datasets must be added before Serve makes the node reachable.
func NewNode(self string, topo Topology, opt NodeOptions) *Node {
	eng := core.NewEngineWith(core.Options{Shards: opt.Shards, CacheEntries: opt.CacheEntries})
	return &Node{
		self:     self,
		topo:     topo,
		opt:      opt,
		eng:      eng,
		appender: core.NewAppender(eng, core.AppenderOptions{}),
		conns:    make(map[net.Conn]struct{}),
		parts:    make(map[string]map[int]partEntry),
		ingests:  make(map[string]map[int]*partIngest),
	}
}

func (n *Node) localName(dataset string, part int) string {
	return dataset + "#" + strconv.Itoa(part)
}

func (n *Node) register(dataset string, part int, e partEntry) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.parts[dataset][part]; dup {
		return fmt.Errorf("%w: %q part %d", core.ErrDuplicateDataset, dataset, part)
	}
	if n.parts[dataset] == nil {
		n.parts[dataset] = make(map[int]partEntry)
	}
	n.parts[dataset][part] = e
	return nil
}

// AddTuples ingests this node's partitions of a tuple dataset. Every
// node receives the full point set and keeps only its assigned ranges;
// result IDs are lifted by the range offset so they match the global
// row indices a single-node engine would return.
func (n *Node) AddTuples(dataset string, points [][]float64) error {
	for _, a := range n.topo.Assignments(n.self, dataset, KindTuples, len(points)) {
		e := partEntry{offset: int64(a.Lo)}
		if a.Lo < a.Hi {
			e.local = n.localName(dataset, a.Part)
			if err := n.eng.AddTuples(e.local, points[a.Lo:a.Hi]); err != nil {
				return err
			}
		}
		if err := n.register(dataset, a.Part, e); err != nil {
			return err
		}
	}
	return nil
}

// AddSeries ingests this node's partitions of a weather-series archive.
// Region IDs are intrinsic to the records, so no offset lift is needed.
func (n *Node) AddSeries(dataset string, rs []synth.RegionSeries) error {
	for _, a := range n.topo.Assignments(n.self, dataset, KindSeries, len(rs)) {
		var e partEntry
		if a.Lo < a.Hi {
			e.local = n.localName(dataset, a.Part)
			if err := n.eng.AddSeries(e.local, rs[a.Lo:a.Hi]); err != nil {
				return err
			}
		}
		if err := n.register(dataset, a.Part, e); err != nil {
			return err
		}
	}
	return nil
}

// AddWells ingests this node's partitions of a well-log archive. Well
// IDs are intrinsic to the records, so no offset lift is needed.
func (n *Node) AddWells(dataset string, ws []synth.WellLog) error {
	for _, a := range n.topo.Assignments(n.self, dataset, KindWells, len(ws)) {
		var e partEntry
		if a.Lo < a.Hi {
			e.local = n.localName(dataset, a.Part)
			if err := n.eng.AddWells(e.local, ws[a.Lo:a.Hi]); err != nil {
				return err
			}
		}
		if err := n.register(dataset, a.Part, e); err != nil {
			return err
		}
	}
	return nil
}

// AddScene ingests a scene if this node is among its replicas. Scenes
// are not partitioned (raster geometry is scene-global); the whole
// scene lives on Replication nodes.
func (n *Node) AddScene(dataset string, sc *archive.Scene) error {
	for _, a := range n.topo.Assignments(n.self, dataset, KindScene, 1) {
		e := partEntry{local: n.localName(dataset, a.Part)}
		if err := n.eng.AddScene(e.local, sc); err != nil {
			return err
		}
		if err := n.register(dataset, a.Part, e); err != nil {
			return err
		}
	}
	return nil
}

// Serve starts accepting queries on bind (use "127.0.0.1:0" in tests
// and read Addr for the bound address). It returns once the listener
// is live; connections are served on background goroutines.
func (n *Node) Serve(bind string) error {
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return err
	}
	n.ServeListener(ln)
	return nil
}

// ServeListener is Serve over a listener the caller already bound —
// the harness reserves every node's port first so the topology can be
// built from real addresses before any node starts.
func (n *Node) ServeListener(ln net.Listener) {
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n.track(c, true)
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				defer n.track(c, false)
				defer c.Close()
				n.handle(c)
			}()
		}
	}()
}

// Addr returns the listener's address, or "" before Serve.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) track(c net.Conn, add bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if add {
		n.conns[c] = struct{}{}
	} else {
		delete(n.conns, c)
	}
}

// Close stops accepting and severs live connections, waits for
// handler goroutines to drain, then closes the engine — which, for a
// node restored in Map mode, releases the snapshot mappings. In-flight
// queries observe the severed connection as a cancellation.
func (n *Node) Close() {
	n.Kill()
	n.wg.Wait()
	n.appender.Close()
	_ = n.eng.Close() // best-effort; nothing actionable at teardown
}

// Kill force-closes the listener and every live connection without
// waiting — the fault-injection primitive: from the router's view the
// node drops mid-query exactly like a crashed process.
func (n *Node) Kill() {
	n.mu.Lock()
	ln := n.ln
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// Stats samples the node's lifetime counters.
func (n *Node) Stats() (served, cancelled, failed int64) {
	return n.served.Load(), n.cancelled.Load(), n.failed.Load()
}

// errorCode maps an execution error to the wire code the router uses to
// reconstruct a typed error on its side.
func errorCode(err error) string {
	switch {
	case errors.Is(err, core.ErrUnknownDataset):
		return "unknown-dataset"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "exec"
	}
}

// handle dispatches one connection on its first frame: a 'Q' starts a
// query session (one query per connection), while 'A'/'H'/'U'/'S'/'I'
// start an ingest session (a loop of appends, probes, seq-state
// exchanges, and snapshot-resync transfers — the router's append,
// catch-up, and resync paths reuse one connection for many frames).
func (n *Node) handle(c net.Conn) {
	typ, payload, err := readFrame(c)
	if err != nil {
		n.failed.Add(1)
		return
	}
	switch typ {
	case frameQuery:
		n.handleQuery(c, payload)
	case frameAppend, frameHealth, frameSeqState, frameResyncReq, frameInstall:
		n.handleIngest(c, typ, payload)
	default:
		n.failed.Add(1)
	}
}

// handleQuery serves one query on one connection.
func (n *Node) handleQuery(c net.Conn, payload []byte) {
	q, err := decodeQuery(payload)
	if err != nil {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("bad-query", err.Error()))
		return
	}

	n.mu.Lock()
	entry, ok := n.parts[q.Dataset][q.Part]
	n.mu.Unlock()
	if !ok {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("unknown-dataset",
			fmt.Sprintf("dataset %q part %d not on this node", q.Dataset, q.Part)))
		return
	}
	if entry.local == "" {
		// Empty partition: nothing to scan, empty exact partial.
		n.served.Add(1)
		writeFrame(c, frameResult, encodePartial(Partial{Floor: q.Floor}))
		return
	}

	sb := core.NewSharedBound()
	sb.Raise(q.Floor)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Writes to c interleave from the floor publisher and the final
	// result; serialize them.
	var wmu sync.Mutex
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(c, typ, payload)
	}

	// Connection reader: remote floor raises feed the shared bound; a
	// cancel frame, EOF, or severed connection aborts the query.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			typ, payload, err := readFrame(c)
			if err != nil {
				cancel()
				return
			}
			switch typ {
			case frameFloor:
				if f, err := decodeFloor(payload); err == nil {
					sb.Raise(f)
				}
			case frameCancel:
				cancel()
				return
			}
		}
	}()

	// The fault-injection hook runs with the connection reader already
	// live: a cancel or kill arriving while the hook blocks is observed
	// before execution starts, which is what makes the fault tests
	// deterministic.
	if n.opt.BeforeExec != nil {
		n.opt.BeforeExec(q.Dataset, q.Part)
	}

	// Floor publisher: piggyback local raises back to the router.
	pubDone := make(chan struct{})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		last := q.Floor
		tick := time.NewTicker(floorPollInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-pubDone:
				return
			case <-tick.C:
				if f := sb.Floor(); f > last {
					last = f
					if send(frameFloor, encodeFloor(f)) != nil {
						return
					}
				}
			}
		}
	}()

	req := q.Req
	req.Dataset = entry.local
	res, err := n.eng.RunShared(ctx, req, sb)
	close(pubDone)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			n.cancelled.Add(1)
		} else {
			n.failed.Add(1)
		}
		send(frameError, encodeError(errorCode(err), err.Error()))
		return
	}
	if entry.offset != 0 {
		for i := range res.Items {
			res.Items[i].ID += entry.offset
		}
	}
	n.served.Add(1)
	send(frameResult, encodePartial(Partial{
		Floor: sb.Floor(),
		Items: res.Items,
		Stats: PartialStats{
			Evaluations: res.Stats.Evaluations,
			Examined:    res.Stats.Examined,
			Pruned:      res.Stats.Pruned,
			Shards:      res.Stats.Shards,
			Truncated:   res.Stats.Truncated,
			Wall:        res.Stats.Wall,
		},
	}))
}
