// The replicated write path. Router.Append routes each batch to one
// owning partition (whole batches round-robin across partitions so
// every delta segment stays a contiguous global ID range; the replica
// set per partition comes from the consistent-hash placement), assigns
// it the partition's next monotone sequence number, and fans it out to
// every replica, requiring an ack from each. A replica that fails its
// ack after bounded retries with exponential backoff + jitter — or that
// was already unreachable when the batch landed — is quarantined as
// stale: it is missing the batch, so it must not serve reads until the
// catch-up exchange (catchup.go) replays its misses from the per-
// partition append log kept here. The log is pruned to the lowest
// sequence number every replica has acked, so a quarantined replica
// pins exactly the batches it still needs.
//
// Write-all rather than quorum: reads are served by a single replica
// of each partition (scatter-gather picks one), so correctness needs
// every *servable* replica to hold every batch. Instead of read-time
// quorum reconciliation, a replica is either fully caught up or not
// servable at all — the append succeeds once any replica acked, and
// the others are quarantined until catch-up proves them whole.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"modelir/internal/synth"
)

// ErrNotAppendable reports an append to a dataset kind that cannot
// grow (scenes are raster-global).
var ErrNotAppendable = errors.New("cluster: dataset kind not appendable")

// maxAppendTokens bounds the client-token dedup table (FIFO eviction).
const maxAppendTokens = 4096

// AppendRequest is one router-level append: a dataset plus exactly one
// non-empty payload. Token, when non-empty, makes the append
// idempotent at this router: a retry carrying the same token returns
// the recorded outcome instead of appending twice.
type AppendRequest struct {
	Dataset string
	Tuples  [][]float64
	Series  []synth.RegionSeries
	Wells   []synth.WellLog
	Token   string
}

// AppendResult reports one append's outcome.
type AppendResult struct {
	// Rows is the batch's row count.
	Rows int
	// Part is the owning partition and Seq the batch's sequence number
	// within it.
	Part int
	Seq  uint64
	// Gen is the highest dataset generation any replica reported after
	// applying the batch.
	Gen uint64
	// Duplicate reports a Token replay: the recorded outcome was
	// returned and nothing was appended.
	Duplicate bool
	// Quarantined lists replicas this append newly marked stale.
	Quarantined []string
}

// routerIngest is the router's append-side state.
type routerIngest struct {
	mu     sync.Mutex
	sets   map[string]*dsIngest
	tokens map[string]*tokenEntry
	order  []string // token FIFO for eviction
}

type tokenEntry struct {
	done chan struct{}
	res  AppendResult
	err  error
}

// dsIngest is one dataset's write-side cursor: the global tuple row
// watermark IDs are assigned from, the round-robin batch counter, and
// the per-partition sequencing state. It is built lazily on the first
// append by syncing seq state from the partitions' replicas, so a
// restarted router resumes exactly where the cluster left off.
type dsIngest struct {
	kind DataKind

	mu     sync.Mutex
	synced bool
	rows   int64 // next free global tuple row ID
	rr     uint64
	parts  []*partIngestState
}

// partIngestState sequences one partition's appends. Its lock is held
// across the whole assign-log-fanout-ack cycle, so batches reach every
// replica in sequence order; different partitions append in parallel.
type partIngestState struct {
	part  int
	nodes []string

	mu      sync.Mutex
	nextSeq uint64
	log     []appendRecord
	acked   map[string]uint64
}

// appendRecord retains one batch's encoded 'A' payload for catch-up
// replay until every replica has acked it.
type appendRecord struct {
	seq     uint64
	rows    int
	payload []byte
}

// appendKindOf classifies the request payload.
func appendKindOf(req AppendRequest) (DataKind, int, error) {
	kinds := 0
	for _, nonEmpty := range []bool{len(req.Tuples) > 0, len(req.Series) > 0, len(req.Wells) > 0} {
		if nonEmpty {
			kinds++
		}
	}
	if kinds != 1 {
		return 0, 0, fmt.Errorf("cluster: append needs exactly one non-empty payload, have %d", kinds)
	}
	switch {
	case len(req.Tuples) > 0:
		return KindTuples, len(req.Tuples), nil
	case len(req.Series) > 0:
		return KindSeries, len(req.Series), nil
	default:
		return KindWells, len(req.Wells), nil
	}
}

// Append routes one batch to its owning partition and replicates it to
// every replica. It returns once at least one replica acked; replicas
// that failed are quarantined (see package comment). If no replica
// acks, the error wraps ErrPartitionUnavailable — the batch stays in
// the append log, so it may still apply later through catch-up; a
// caller retrying should carry a Token to stay idempotent.
func (r *Router) Append(ctx context.Context, req AppendRequest) (AppendResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	kind, rows, err := appendKindOf(req)
	if err != nil {
		return AppendResult{}, err
	}

	if req.Token != "" {
		te, replay := r.claimToken(req.Token)
		if replay {
			select {
			case <-te.done:
			case <-ctx.Done():
				return AppendResult{}, ctx.Err()
			}
			res := te.res
			res.Duplicate = true
			return res, te.err
		}
		defer close(te.done)
		res, err := r.appendOnceRouted(ctx, req, kind, rows)
		te.res, te.err = res, err
		return res, err
	}
	return r.appendOnceRouted(ctx, req, kind, rows)
}

// claimToken returns the dedup entry for token and whether it already
// existed (replay). A fresh claim must be completed by the caller
// (fill res/err, close done).
func (r *Router) claimToken(token string) (*tokenEntry, bool) {
	r.ing.mu.Lock()
	defer r.ing.mu.Unlock()
	if te, ok := r.ing.tokens[token]; ok {
		return te, true
	}
	te := &tokenEntry{done: make(chan struct{})}
	r.ing.tokens[token] = te
	r.ing.order = append(r.ing.order, token)
	for len(r.ing.order) > maxAppendTokens {
		delete(r.ing.tokens, r.ing.order[0])
		r.ing.order = r.ing.order[1:]
	}
	return te, false
}

func (r *Router) appendOnceRouted(ctx context.Context, req AppendRequest, kind DataKind, rows int) (AppendResult, error) {
	ds, err := r.ensureIngest(ctx, req.Dataset, kind)
	if err != nil {
		return AppendResult{}, err
	}

	// Assign the batch's owning partition and (for tuples) its global
	// ID base. The IDs are consumed even if the fan-out fails: the
	// batch stays in the log and may still apply through catch-up.
	ds.mu.Lock()
	pa := ds.parts[ds.rr%uint64(len(ds.parts))]
	ds.rr++
	base := ds.rows
	if kind == KindTuples {
		ds.rows += int64(rows)
	}
	ds.mu.Unlock()

	batch := AppendBatch{
		Dataset: req.Dataset, Part: pa.part, Base: base,
		Tuples: req.Tuples, Series: req.Series, Wells: req.Wells,
	}
	return r.replicate(ctx, pa, batch)
}

// replicate assigns the batch its sequence number, logs it, and fans
// it out to the partition's replicas, all under the partition lock.
func (r *Router) replicate(ctx context.Context, pa *partIngestState, batch AppendBatch) (AppendResult, error) {
	pa.mu.Lock()
	defer pa.mu.Unlock()

	batch.Seq = pa.nextSeq
	payload, err := encodeAppend(batch)
	if err != nil {
		return AppendResult{}, err
	}
	pa.nextSeq++
	rec := appendRecord{seq: batch.Seq, rows: batch.Rows(), payload: payload}
	pa.log = append(pa.log, rec)

	res := AppendResult{Rows: rec.rows, Part: pa.part, Seq: rec.seq}
	type outcome struct {
		addr string
		ack  appendAck
		err  error
	}
	outcomes := make([]outcome, 0, len(pa.nodes))
	targets := make([]string, 0, len(pa.nodes))
	for _, addr := range pa.nodes {
		if r.health.appendable(addr) {
			targets = append(targets, addr)
		} else {
			// Unreachable or already-stale replicas miss this batch by
			// construction; (re)quarantine so catch-up replays it.
			r.health.missedAppend(addr)
			res.Quarantined = append(res.Quarantined, addr)
		}
	}
	results := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, addr := range targets {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			ack, err := r.sendAppend(ctx, addr, rec.seq, payload)
			results[i] = outcome{addr: addr, ack: ack, err: err}
		}(i, addr)
	}
	wg.Wait()
	outcomes = append(outcomes, results...)

	acks := 0
	for _, o := range outcomes {
		if o.err == nil {
			acks++
			pa.acked[o.addr] = rec.seq
			if o.ack.Gen > res.Gen {
				res.Gen = o.ack.Gen
			}
		} else {
			r.health.missedAppend(o.addr)
			res.Quarantined = append(res.Quarantined, o.addr)
		}
	}
	pa.prune()
	if dropped := pa.enforceCap(r.opt.MaxLogBytes); dropped > 0 {
		r.stats.forcedPrunes.Add(int64(dropped))
	}
	if acks == 0 {
		return res, fmt.Errorf("%w: append %q part %d seq %d: no replica acked",
			ErrPartitionUnavailable, batch.Dataset, pa.part, rec.seq)
	}
	return res, nil
}

// prune drops log records every replica has acked. A replica with no
// acked entry (unreachable at sync, health unresolved) reads as floor
// 0, so nothing it might still need is pruned. Must hold pa.mu.
func (pa *partIngestState) prune() {
	floor := pa.nextSeq - 1
	for _, addr := range pa.nodes {
		if a := pa.acked[addr]; a < floor {
			floor = a
		}
	}
	i := 0
	for i < len(pa.log) && pa.log[i].seq <= floor {
		i++
	}
	if i > 0 {
		pa.log = append([]appendRecord(nil), pa.log[i:]...)
	}
}

// enforceCap drops the oldest log records while the log holds more
// than limit bytes of encoded frames. Only records some replica has
// acked are droppable — an acked record's rows live in that replica's
// engine state, so a snapshot resync can still repair whoever missed
// it; a record no replica holds is never dropped, whatever the cap.
// Returns the number of records dropped (each one forces a lagging
// replica down the resync path instead of log replay). Must hold pa.mu.
func (pa *partIngestState) enforceCap(limit int64) int {
	if limit <= 0 || len(pa.log) == 0 {
		return 0
	}
	var total int64
	for _, rec := range pa.log {
		total += int64(len(rec.payload))
	}
	var ackedHigh uint64
	for _, a := range pa.acked {
		if a > ackedHigh {
			ackedHigh = a
		}
	}
	dropped := 0
	for total > limit && dropped < len(pa.log) && pa.log[dropped].seq <= ackedHigh {
		total -= int64(len(pa.log[dropped].payload))
		dropped++
	}
	if dropped > 0 {
		pa.log = append([]appendRecord(nil), pa.log[dropped:]...)
	}
	return dropped
}

// sendAppend delivers one sequenced batch to one replica with bounded
// retries: transport faults back off and retry, a node-reported error
// (sequence gap, refused batch) is final.
func (r *Router) sendAppend(ctx context.Context, addr string, seq uint64, payload []byte) (appendAck, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opt.AppendAttempts; attempt++ {
		if attempt > 1 {
			if err := r.backoff(ctx, attempt-1); err != nil {
				return appendAck{}, err
			}
		}
		if err := ctx.Err(); err != nil {
			return appendAck{}, err
		}
		ack, err, transport := r.appendOnce(ctx, addr, seq, payload)
		if err == nil {
			r.health.ok(addr)
			return ack, nil
		}
		if !transport {
			return appendAck{}, err
		}
		r.health.fault(addr)
		lastErr = err
	}
	return appendAck{}, fmt.Errorf("cluster: append to %s failed after %d attempts: %w",
		addr, r.opt.AppendAttempts, lastErr)
}

// appendOnce is one delivery attempt. transport reports whether the
// failure was connection-level (retryable) rather than node-reported.
func (r *Router) appendOnce(ctx context.Context, addr string, seq uint64, payload []byte) (_ appendAck, err error, transport bool) {
	d := net.Dialer{Timeout: r.opt.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return appendAck{}, ctx.Err(), false
		}
		return appendAck{}, err, true
	}
	defer conn.Close()
	_ = conn.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
	if err := writeFrame(conn, frameAppend, payload); err != nil {
		return appendAck{}, err, true
	}
	typ, reply, err := readFrame(conn)
	if err != nil {
		if ctx.Err() != nil {
			return appendAck{}, ctx.Err(), false
		}
		return appendAck{}, err, true
	}
	switch typ {
	case frameAppendAck:
		ack, err := decodeAppendAck(reply)
		if err != nil {
			return appendAck{}, err, false
		}
		if ack.Seq != seq {
			return appendAck{}, fmt.Errorf("%w: ack for seq %d, want %d", ErrFrame, ack.Seq, seq), false
		}
		return ack, nil, false
	case frameError:
		code, msg, derr := decodeError(reply)
		if derr != nil {
			return appendAck{}, derr, false
		}
		return appendAck{}, &RemoteError{Addr: addr, Code: code, Msg: msg}, false
	default:
		return appendAck{}, fmt.Errorf("%w: unexpected frame %q", ErrFrame, typ), false
	}
}

// ensureIngest returns the dataset's write-side state, syncing it from
// the cluster on first use: each partition's replicas report their
// append cursor and row watermark over 'U' frames, the highest cursor
// seeds the sequence counter, and the highest watermark across
// partitions seeds the global tuple row counter. Replicas already
// behind the highest cursor are quarantined immediately.
func (r *Router) ensureIngest(ctx context.Context, dataset string, kind DataKind) (*dsIngest, error) {
	if kind == KindScene {
		return nil, fmt.Errorf("%w: scenes", ErrNotAppendable)
	}
	r.ing.mu.Lock()
	ds, ok := r.ing.sets[dataset]
	if !ok {
		ds = &dsIngest{kind: kind}
		r.ing.sets[dataset] = ds
	}
	r.ing.mu.Unlock()
	if ds.kind != kind {
		return nil, fmt.Errorf("cluster: dataset %q is %v, append payload is %v", dataset, ds.kind, kind)
	}

	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.synced {
		return ds, nil
	}
	placements := r.topo.Layout(dataset, kind)
	if len(placements) == 0 {
		return nil, errors.New("cluster: empty topology")
	}
	parts := make([]*partIngestState, 0, len(placements))
	var rows int64
	for _, pl := range placements {
		pa := &partIngestState{part: pl.Part, nodes: pl.Nodes, acked: make(map[string]uint64)}
		type report struct {
			lastSeq   uint64
			watermark int64
		}
		reports := make(map[string]report, len(pl.Nodes))
		var best report
		for _, addr := range pl.Nodes {
			entries, err := r.seqStateOf(ctx, addr, dataset)
			if err != nil {
				r.health.fault(addr)
				continue
			}
			r.health.ok(addr)
			rep := report{}
			for _, e := range entries {
				if e.Dataset == dataset && e.Part == pl.Part {
					rep = report{lastSeq: e.LastSeq, watermark: e.Watermark}
					break
				}
			}
			reports[addr] = rep
			if rep.lastSeq > best.lastSeq {
				best.lastSeq = rep.lastSeq
			}
			if rep.watermark > best.watermark {
				best.watermark = rep.watermark
			}
		}
		if len(reports) == 0 {
			return nil, fmt.Errorf("%w: %q part %d: no replica reachable for ingest sync",
				ErrPartitionUnavailable, dataset, pl.Part)
		}
		pa.nextSeq = best.lastSeq + 1
		for _, addr := range pl.Nodes {
			rep, ok := reports[addr]
			if !ok {
				// Unreachable at sync: quarantine until catch-up proves it
				// current, and record no acked floor — a missing entry
				// reads as 0 in prune, so nothing this replica might still
				// need is dropped before its health resolves. (Assuming
				// currency here is exactly the restart bug: a router
				// rebooting mid-outage would prune batches the replica
				// still owes, then serve it as healthy.)
				r.health.missedAppend(addr)
				continue
			}
			pa.acked[addr] = rep.lastSeq
			if rep.lastSeq < best.lastSeq {
				// Provably behind this router's log start: quarantine.
				// Catch-up replays the gap if the log still covers it and
				// escalates to snapshot resync if not (see catchup.go).
				r.health.missedAppend(addr)
			}
		}
		if best.watermark > rows {
			rows = best.watermark
		}
		parts = append(parts, pa)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].part < parts[j].part })
	ds.parts = parts
	ds.rows = rows
	ds.synced = true
	return ds, nil
}

// SyncIngest discovers every appendable dataset the cluster already
// holds (a 'U' "" sweep of every topology node — SeqEntry.Kind carries
// each dataset's kind) and syncs its write-side state through
// ensureIngest. This is the router's crash-recovery boot step: a
// restarted router re-learns per-partition sequence cursors, per-
// replica acked floors, and the global tuple row watermark before it
// accepts new appends, so it never reuses a global ID range and never
// prunes a batch an unreachable replica still needs. Errors if no node
// is reachable; a partially-reachable cluster syncs what it can see
// and quarantines the rest.
func (r *Router) SyncIngest(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	kinds := make(map[string]DataKind)
	reached := 0
	for _, addr := range r.topo.Nodes {
		entries, err := r.seqStateOf(ctx, addr, "")
		if err != nil {
			r.health.fault(addr)
			continue
		}
		r.health.ok(addr)
		reached++
		for _, e := range entries {
			if e.Kind == 0 || e.Kind == KindScene {
				continue
			}
			kinds[e.Dataset] = e.Kind
		}
	}
	if reached == 0 {
		return fmt.Errorf("%w: no node reachable for ingest sync", ErrPartitionUnavailable)
	}
	names := make([]string, 0, len(kinds))
	for name := range kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := r.ensureIngest(ctx, name, kinds[name]); err != nil {
			return fmt.Errorf("cluster: ingest sync %q: %w", name, err)
		}
	}
	return nil
}

// AppendSeqs reports each dataset partition's last assigned sequence
// number, for /stats.
func (r *Router) AppendSeqs() map[string]map[int]uint64 {
	r.ing.mu.Lock()
	sets := make(map[string]*dsIngest, len(r.ing.sets))
	for name, ds := range r.ing.sets {
		sets[name] = ds
	}
	r.ing.mu.Unlock()
	out := make(map[string]map[int]uint64, len(sets))
	for name, ds := range sets {
		ds.mu.Lock()
		if !ds.synced {
			ds.mu.Unlock()
			continue
		}
		m := make(map[int]uint64, len(ds.parts))
		for _, pa := range ds.parts {
			pa.mu.Lock()
			m[pa.part] = pa.nextSeq - 1
			pa.mu.Unlock()
		}
		ds.mu.Unlock()
		out[name] = m
	}
	return out
}
