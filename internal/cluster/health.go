// Per-peer health tracking for the router: every node address carries
// a small state machine driven by read-path transport faults, append
// ack failures, and periodic health probes.
//
//	          read/probe fault        repeated faults
//	Healthy ──────────────────▶ Suspect ─────────────▶ Down
//	   ▲  ▲                       │  ▲                  │
//	   │  └───── read/probe ok ───┘  └── probe fault ───┘
//	   │                probe ok │
//	   │                         ▼
//	   └──── catch-up done ──── Stale ◀── missed/failed append (any state)
//
// Healthy and Suspect replicas serve reads and receive appends. Down
// replicas are skipped on both paths until a probe reaches them again.
// Stale is the quarantine state: the replica missed at least one
// append, so serving a read from it could return a wrong (partial)
// answer — it is excluded from read failover and from append fan-out
// (it would only see sequence gaps) until the catch-up exchange
// (catchup.go) replays its missed batches, which is the only edge back
// to Healthy. Stale wins over every reachability transition: a probe
// reaching a stale replica proves liveness, not consistency.

package cluster

import (
	"sync"
	"time"
)

// HealthState is one peer's position in the router's health machine.
type HealthState int

const (
	// Healthy peers serve reads and receive appends.
	Healthy HealthState = iota
	// Suspect peers faulted recently but still serve; repeated faults
	// demote them to Down.
	Suspect
	// Down peers are unreachable: skipped on reads and appends until a
	// probe succeeds. A Down peer that misses an append becomes Stale.
	Down
	// Stale peers missed an append and are quarantined from reads and
	// appends until catch-up replays their missed batches.
	Stale
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Stale:
		return "stale"
	default:
		return "unknown"
	}
}

// downAfterFaults demotes Suspect to Down at this many consecutive
// transport faults (the first fault makes the peer Suspect).
const downAfterFaults = 3

type peerHealth struct {
	state   HealthState
	faults  int // consecutive transport faults since the last success
	changed time.Time
}

// healthTracker is the router's per-peer state table. Unknown peers
// are Healthy: the tracker records evidence of trouble, not evidence
// of health, so a fresh router serves from everyone.
type healthTracker struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
}

func newHealthTracker() *healthTracker {
	return &healthTracker{peers: make(map[string]*peerHealth)}
}

func (h *healthTracker) peer(addr string) *peerHealth {
	p, ok := h.peers[addr]
	if !ok {
		p = &peerHealth{state: Healthy}
		h.peers[addr] = p
	}
	return p
}

// state reports addr's current state.
func (h *healthTracker) state(addr string) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peer(addr).state
}

// servable reports whether reads may be served from addr. Stale and
// Down peers are excluded: Stale could answer wrong, Down would only
// burn a dial timeout.
func (h *healthTracker) servable(addr string) bool {
	s := h.state(addr)
	return s == Healthy || s == Suspect
}

// appendable reports whether addr should receive append fan-out.
// Identical to servable by design: a peer that cannot be read from
// cannot usefully take writes either (Stale would see sequence gaps,
// Down is unreachable).
func (h *healthTracker) appendable(addr string) bool {
	return h.servable(addr)
}

func (p *peerHealth) set(s HealthState) {
	if p.state != s {
		p.state = s
		p.changed = time.Now()
	}
}

// fault records a transport-level failure on the read or probe path:
// Healthy demotes to Suspect, and downAfterFaults consecutive faults
// demote Suspect to Down. Stale is sticky — only catch-up clears it.
func (h *healthTracker) fault(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.faults++
	switch p.state {
	case Healthy:
		p.set(Suspect)
	case Suspect:
		if p.faults >= downAfterFaults {
			p.set(Down)
		}
	}
}

// ok records a successful read or probe: Suspect and Down recover to
// Healthy, Stale stays quarantined (reachability is not consistency).
func (h *healthTracker) ok(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.faults = 0
	if p.state == Suspect || p.state == Down {
		p.set(Healthy)
	}
}

// missedAppend quarantines addr: it failed an append ack after
// retries, or the fan-out skipped it while unreachable — either way it
// is now missing at least one batch and must not serve reads.
func (h *healthTracker) missedAppend(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peer(addr).set(Stale)
}

// caughtUp re-admits addr after a successful catch-up exchange.
func (h *healthTracker) caughtUp(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	if p.state == Stale {
		p.faults = 0
		p.set(Healthy)
	}
}

// snapshot reports every tracked peer's state, for /stats.
func (h *healthTracker) snapshot() map[string]HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]HealthState, len(h.peers))
	for addr, p := range h.peers {
		out[addr] = p.state
	}
	return out
}
