// Per-peer health tracking for the router: every node address carries
// a small state machine driven by read-path transport faults, append
// ack failures, and periodic health probes.
//
//	          read/probe fault        repeated faults
//	Healthy ──────────────────▶ Suspect ─────────────▶ Down
//	   ▲  ▲                       │  ▲                  │
//	   │  └───── read/probe ok ───┘  └── probe fault ───┘
//	   │                probe ok │
//	   │                         ▼
//	   ├──── catch-up done ──── Stale ◀── missed/failed append (any state)
//	   │                         │
//	   │                         │ missed batches pruned from the log
//	   │                         ▼
//	   └──── resync + replay ── Resyncing
//
// Healthy and Suspect replicas serve reads and receive appends. Down
// replicas are skipped on both paths until a probe reaches them again.
// Stale is the quarantine state: the replica missed at least one
// append, so serving a read from it could return a wrong (partial)
// answer — it is excluded from read failover and from append fan-out
// (it would only see sequence gaps) until the catch-up exchange
// (catchup.go) replays its missed batches. Resyncing is the deeper
// quarantine: the missed batches outlived the router's append log, so
// log replay alone cannot repair it and a snapshot transfer from a
// healthy donor (resync.go) is in flight or pending. Both quarantine
// states win over every reachability transition — a probe reaching a
// quarantined replica proves liveness, not consistency — and both are
// lifted only by caughtUp, which additionally checks the peer's
// quarantine generation: if the replica missed another batch after the
// verification pass started, the lift is refused and the next
// reconcile pass closes the new gap.

package cluster

import (
	"sync"
	"time"
)

// HealthState is one peer's position in the router's health machine.
type HealthState int

const (
	// Healthy peers serve reads and receive appends.
	Healthy HealthState = iota
	// Suspect peers faulted recently but still serve; repeated faults
	// demote them to Down.
	Suspect
	// Down peers are unreachable: skipped on reads and appends until a
	// probe succeeds. A Down peer that misses an append becomes Stale.
	Down
	// Stale peers missed an append and are quarantined from reads and
	// appends until catch-up replays their missed batches.
	Stale
	// Resyncing peers missed batches that were pruned from the append
	// log: log replay cannot repair them, so a snapshot resync from a
	// healthy donor is pending or in flight. Quarantined like Stale.
	Resyncing
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Stale:
		return "stale"
	case Resyncing:
		return "resyncing"
	default:
		return "unknown"
	}
}

// downAfterFaults demotes Suspect to Down at this many consecutive
// transport faults (the first fault makes the peer Suspect).
const downAfterFaults = 3

type peerHealth struct {
	state   HealthState
	faults  int // consecutive transport faults since the last success
	changed time.Time
	// gen counts missed appends: catch-up snapshots it before a
	// verification pass and refuses to lift quarantine if it moved —
	// a batch that lands between "partition verified current" and
	// "peer re-admitted" must keep the peer quarantined.
	gen uint64
	// note is the last catch-up or resync error, for /stats — a
	// permanently stuck replica is visible, not silent. Cleared when
	// the peer is re-admitted.
	note string
}

// healthTracker is the router's per-peer state table. Unknown peers
// are Healthy: the tracker records evidence of trouble, not evidence
// of health, so a fresh router serves from everyone.
type healthTracker struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
}

func newHealthTracker() *healthTracker {
	return &healthTracker{peers: make(map[string]*peerHealth)}
}

func (h *healthTracker) peer(addr string) *peerHealth {
	p, ok := h.peers[addr]
	if !ok {
		p = &peerHealth{state: Healthy}
		h.peers[addr] = p
	}
	return p
}

// state reports addr's current state.
func (h *healthTracker) state(addr string) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peer(addr).state
}

// servable reports whether reads may be served from addr. Stale,
// Resyncing, and Down peers are excluded: the quarantined states could
// answer wrong, Down would only burn a dial timeout.
func (h *healthTracker) servable(addr string) bool {
	s := h.state(addr)
	return s == Healthy || s == Suspect
}

// appendable reports whether addr should receive append fan-out.
// Identical to servable by design: a peer that cannot be read from
// cannot usefully take writes either (quarantined peers would see
// sequence gaps, Down is unreachable).
func (h *healthTracker) appendable(addr string) bool {
	return h.servable(addr)
}

func (p *peerHealth) set(s HealthState) {
	if p.state != s {
		p.state = s
		p.changed = time.Now()
	}
}

// fault records a transport-level failure on the read or probe path:
// Healthy demotes to Suspect, and downAfterFaults consecutive faults
// demote Suspect to Down. Quarantine is sticky — only catch-up clears
// it.
func (h *healthTracker) fault(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.faults++
	switch p.state {
	case Healthy:
		p.set(Suspect)
	case Suspect:
		if p.faults >= downAfterFaults {
			p.set(Down)
		}
	}
}

// ok records a successful read or probe: Suspect and Down recover to
// Healthy, quarantined peers stay quarantined (reachability is not
// consistency).
func (h *healthTracker) ok(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.faults = 0
	if p.state == Suspect || p.state == Down {
		p.set(Healthy)
	}
}

// missedAppend quarantines addr: it failed an append ack after
// retries, or the fan-out skipped it while unreachable — either way it
// is now missing at least one batch and must not serve reads. The
// quarantine generation advances so a catch-up pass racing this miss
// cannot lift the quarantine. A peer already in Resyncing stays there
// (resync ends with a log replay that covers batches missed meanwhile).
func (h *healthTracker) missedAppend(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	p.gen++
	if p.state != Resyncing {
		p.set(Stale)
	}
}

// startResync escalates addr's quarantine: its missed batches outlived
// the append log, so only a snapshot transfer can repair it.
func (h *healthTracker) startResync(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peer(addr).set(Resyncing)
}

// quarantineGen reads addr's missed-append counter; pair with caughtUp
// to make the quarantine lift race-free.
func (h *healthTracker) quarantineGen(addr string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peer(addr).gen
}

// caughtUp re-admits addr after a catch-up pass verified every owned
// partition current, provided no further append was missed since gen
// was sampled. It reports whether addr is (now) out of quarantine; a
// false return means another batch landed mid-verification and the
// caller should re-verify.
func (h *healthTracker) caughtUp(addr string, gen uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p := h.peer(addr)
	if p.state != Stale && p.state != Resyncing {
		return true
	}
	if p.gen != gen {
		return false
	}
	p.faults = 0
	p.note = ""
	p.set(Healthy)
	return true
}

// noteErr records addr's last catch-up/resync error for /stats.
func (h *healthTracker) noteErr(addr string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peer(addr).note = err.Error()
}

// snapshot reports every tracked peer's state, for /stats.
func (h *healthTracker) snapshot() map[string]HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]HealthState, len(h.peers))
	for addr, p := range h.peers {
		out[addr] = p.state
	}
	return out
}

// notes reports every peer's last recorded catch-up/resync error
// (peers with none are omitted), for /stats.
func (h *healthTracker) notes() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string)
	for addr, p := range h.peers {
		if p.note != "" {
			out[addr] = p.note
		}
	}
	return out
}
