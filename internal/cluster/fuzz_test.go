// Fuzzing for the partial-result wire codec, alongside the
// FuzzRequestFingerprint pattern in internal/qcache: round-trips must
// be exact, and malformed frames must be rejected with an error — never
// a panic, never an oversized allocation. The committed seed corpus in
// testdata/fuzz covers well-formed partials (empty, multi-item, geology
// payloads) plus truncation shapes.

package cluster

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"modelir/internal/topk"
)

// TestRegenerateFuzzCorpus rewrites the committed seed corpus from the
// current codec when REGEN_CORPUS is set; otherwise it verifies every
// committed well-formed seed still decodes. Run with
//
//	REGEN_CORPUS=1 go test ./internal/cluster/ -run TestRegenerateFuzzCorpus
//
// after a deliberate wire-format change.
func TestRegenerateFuzzCorpus(t *testing.T) {
	full := encodePartial(Partial{Items: []topk.Item{{ID: 1, Score: 2}}})
	seeds := map[string][]byte{
		"seed-empty": encodePartial(Partial{Floor: math.Inf(-1)}),
		"seed-items": encodePartial(Partial{
			Floor: 12.5,
			Items: []topk.Item{{ID: 3, Score: 9.25}, {ID: 7, Score: 9.25}, {ID: 9, Score: -1}},
			Stats: PartialStats{Evaluations: 100, Examined: 80, Pruned: 20, Shards: 4, Wall: time.Millisecond},
		}),
		"seed-geology-payload": encodePartial(Partial{
			Items: []topk.Item{{ID: 41, Score: 0.75, Payload: []int{2, 5, 9}}},
			Stats: PartialStats{Truncated: true},
		}),
		"seed-truncated":   full[:len(full)-5],
		"seed-bad-version": append([]byte{99}, full[1:]...),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzPartialCodec")
	if os.Getenv("REGEN_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range seeds {
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for _, name := range []string{"seed-empty", "seed-items", "seed-geology-payload"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing (run with REGEN_CORPUS=1): %v", name, err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a corpus file", name)
		}
		b, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := decodePartial([]byte(b)); err != nil {
			t.Fatalf("%s no longer decodes: %v", name, err)
		}
	}
}

func FuzzPartialCodec(f *testing.F) {
	f.Add(encodePartial(Partial{Floor: math.Inf(-1)}))
	f.Add(encodePartial(Partial{
		Floor: 12.5,
		Items: []topk.Item{{ID: 3, Score: 9.25}, {ID: 7, Score: 9.25}},
		Stats: PartialStats{Evaluations: 100, Examined: 80, Pruned: 20, Shards: 4, Wall: time.Millisecond},
	}))
	f.Add(encodePartial(Partial{
		Floor: 0,
		Items: []topk.Item{{ID: 41, Score: 0.75, Payload: []int{2, 5, 9}}},
		Stats: PartialStats{Truncated: true},
	}))
	f.Add([]byte{})
	f.Add([]byte{wireVersion})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePartial(data)
		if err != nil {
			return // malformed input rejected cleanly — the property under test
		}
		// Anything that decodes must re-encode to the identical bytes
		// (the canonical encoding is injective) and decode again to an
		// equal value.
		enc := encodePartial(p)
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", data, enc)
		}
		q, err := decodePartial(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q.Floor != p.Floor && !(math.IsNaN(q.Floor) && math.IsNaN(p.Floor)) {
			t.Fatalf("floor drifted: %v vs %v", q.Floor, p.Floor)
		}
		if len(q.Items) != len(p.Items) || q.Stats != p.Stats {
			t.Fatalf("partial drifted: %+v vs %+v", q, p)
		}
	})
}
