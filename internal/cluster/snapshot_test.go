package cluster

import (
	"context"
	"errors"
	"net"
	"testing"

	"modelir/internal/segment"
)

// TestNodeSnapshotRestoreServesIdentically pins node durability: a
// cluster whose every node was restored from its snapshot (never
// rebuilt from raw archives) answers all six query families
// bit-identically to the single-node reference, in both restore modes.
func TestNodeSnapshotRestoreServesIdentically(t *testing.T) {
	f := buildFixtures(t)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)

	for _, mode := range []segment.RestoreMode{segment.Copy, segment.Map} {
		// Bind first: placement keys on dial addresses, and the restored
		// nodes must come back under the same topology the snapshots
		// recorded.
		const count = 2
		lns := make([]net.Listener, count)
		addrs := make([]string, count)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
		topo := Topology{Nodes: addrs, Replication: 1}

		dirs := make([]*segment.Dir, count)
		for i := range dirs {
			b, err := segment.NewDir(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			dirs[i] = b
			builder := NewNode(addrs[i], topo, NodeOptions{Shards: 3})
			ingest(t, builder, f)
			if err := builder.Snapshot(context.Background(), b); err != nil {
				t.Fatalf("node %d snapshot: %v", i, err)
			}
			builder.Close()
		}

		nodes := make([]*Node, count)
		skip := false
		for i := range nodes {
			n, err := RestoreNode(addrs[i], topo, NodeOptions{}, dirs[i], mode)
			if err != nil {
				if mode == segment.Map && errors.Is(err, segment.ErrMapUnsupported) {
					skip = true
					break
				}
				t.Fatalf("restore node %d (%v): %v", i, mode, err)
			}
			nodes[i] = n
			n.ServeListener(lns[i])
		}
		if skip {
			for _, ln := range lns {
				ln.Close()
			}
			t.Logf("map restore unsupported on this host; skipping mode")
			continue
		}

		router := NewRouter(topo)
		for name, rq := range reqs {
			res, err := router.Run(context.Background(), rq)
			if err != nil {
				t.Fatalf("mode %v %s: %v", mode, name, err)
			}
			itemsEqual(t, "restored "+mode.String()+" "+name, res.Items, want[name].Items)
		}
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestRestoreNodeValidation pins the refusal paths: a snapshot from a
// different node identity or a drifted topology is ErrCorrupt, and an
// empty backend is ErrNoSnapshot.
func TestRestoreNodeValidation(t *testing.T) {
	f := buildFixtures(t)
	topo := Topology{Nodes: []string{"10.0.0.1:9001", "10.0.0.2:9001"}, Replication: 1}
	b, err := segment.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(topo.Nodes[0], topo, NodeOptions{Shards: 2})
	ingest(t, n, f)
	if err := n.Snapshot(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	n.Close()

	if _, err := RestoreNode(topo.Nodes[1], topo, NodeOptions{}, b, segment.Copy); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("wrong self: %v, want ErrCorrupt", err)
	}
	grown := Topology{Nodes: append(append([]string(nil), topo.Nodes...), "10.0.0.3:9001"), Replication: 1}
	if _, err := RestoreNode(topo.Nodes[0], grown, NodeOptions{}, b, segment.Copy); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("grown topology: %v, want ErrCorrupt", err)
	}
	renamed := Topology{Nodes: []string{topo.Nodes[0], "10.0.0.9:9001"}, Replication: 1}
	if _, err := RestoreNode(topo.Nodes[0], renamed, NodeOptions{}, b, segment.Copy); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("renamed peer: %v, want ErrCorrupt", err)
	}
	empty, err := segment.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreNode(topo.Nodes[0], topo, NodeOptions{}, empty, segment.Copy); !errors.Is(err, segment.ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}

	// Restored-then-resnapshotted state is closed under the round trip:
	// a second restore from the re-snapshot still validates.
	re, err := RestoreNode(topo.Nodes[0], topo, NodeOptions{}, b, segment.Copy)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := segment.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Snapshot(context.Background(), b2); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := RestoreNode(topo.Nodes[0], topo, NodeOptions{}, b2, segment.Copy)
	if err != nil {
		t.Fatalf("re-snapshot restore: %v", err)
	}
	re2.Close()
}
