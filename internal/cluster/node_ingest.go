// The node side of replicated ingest: an ingest session is a loop of
// 'A' (append), 'H' (probe), and 'U' (seq-state) frames on one
// connection. Every partition carries a monotone append cursor — the
// last sequence number it applied — which makes appends idempotent:
// a batch at or below the cursor acks as a duplicate without touching
// the engine (safe router retries and catch-up replays), a batch one
// above applies and advances it, and anything further ahead is a
// sequence gap the node refuses (the router quarantines the replica
// and closes the gap via catch-up).

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"modelir/internal/core"
)

// ErrSeqGap reports an append batch whose sequence number skips ahead
// of the partition's cursor: the node is missing earlier batches and
// must catch up before it can accept this one.
var ErrSeqGap = errors.New("cluster: append sequence gap")

// partIngest is one partition's append cursor. Its lock serializes
// appends to the partition (sequence order is the correctness
// invariant); different partitions apply in parallel.
type partIngest struct {
	mu      sync.Mutex
	lastSeq uint64
}

func (n *Node) partIngest(dataset string, part int) *partIngest {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ingests[dataset] == nil {
		n.ingests[dataset] = make(map[int]*partIngest)
	}
	pi := n.ingests[dataset][part]
	if pi == nil {
		pi = &partIngest{}
		n.ingests[dataset][part] = pi
	}
	return pi
}

// datasetGen reads one local dataset's cache generation.
func (n *Node) datasetGen(local string) uint64 {
	for _, ds := range n.eng.Datasets() {
		if ds.Name == local {
			return ds.Gen
		}
	}
	return 0
}

// AppendRows lands one routed delta batch in the node's engine — the
// cluster twin of Engine.Append*: rows enter the PR 8 delta-segment
// path (tuples at the batch's explicit global base so result IDs match
// a single-node build; series and wells through the node's batching
// appender) and the dataset's generation advances, invalidating stale
// cache entries. dup reports an idempotent no-op: the batch's sequence
// number was already applied.
func (n *Node) AppendRows(ctx context.Context, b AppendBatch) (dup bool, gen uint64, err error) {
	n.mu.Lock()
	entry, ok := n.parts[b.Dataset][b.Part]
	n.mu.Unlock()
	if !ok {
		return false, 0, fmt.Errorf("%w: %q part %d not on this node",
			core.ErrUnknownDataset, b.Dataset, b.Part)
	}

	pi := n.partIngest(b.Dataset, b.Part)
	pi.mu.Lock()
	defer pi.mu.Unlock()
	switch {
	case b.Seq <= pi.lastSeq:
		return true, n.datasetGen(entry.local), nil
	case b.Seq != pi.lastSeq+1:
		return false, 0, fmt.Errorf("%w: %q part %d seq %d after %d",
			ErrSeqGap, b.Dataset, b.Part, b.Seq, pi.lastSeq)
	}

	if entry.local == "" {
		// First rows to land on an empty partition: register the local
		// dataset from the batch. For tuples the batch's global base
		// becomes the partition's ID offset.
		local := n.localName(b.Dataset, b.Part)
		switch {
		case len(b.Tuples) > 0:
			err = n.eng.AddTuples(local, b.Tuples)
			entry = partEntry{local: local, offset: b.Base}
		case len(b.Series) > 0:
			err = n.eng.AddSeries(local, b.Series)
			entry = partEntry{local: local}
		default:
			err = n.eng.AddWells(local, b.Wells)
			entry = partEntry{local: local}
		}
		if err != nil {
			return false, 0, err
		}
		n.mu.Lock()
		n.parts[b.Dataset][b.Part] = entry
		n.mu.Unlock()
	} else {
		switch {
		case len(b.Tuples) > 0:
			localBase := b.Base - entry.offset
			if localBase < 0 {
				return false, 0, fmt.Errorf("cluster: append base %d below partition offset %d",
					b.Base, entry.offset)
			}
			err = n.eng.AppendTuplesAt(entry.local, localBase, b.Tuples)
		case len(b.Series) > 0:
			err = n.appender.AppendSeries(ctx, entry.local, b.Series)
		default:
			err = n.appender.AppendWells(ctx, entry.local, b.Wells)
		}
		if err != nil {
			return false, 0, err
		}
	}
	pi.lastSeq = b.Seq
	n.appended.Add(1)
	return false, n.datasetGen(entry.local), nil
}

// dataKindOfInfo maps an engine manifest kind tag to the cluster's
// DataKind (0 for an unknown tag).
func dataKindOfInfo(kind string) DataKind {
	switch kind {
	case "tuples":
		return KindTuples
	case "series":
		return KindSeries
	case "wells":
		return KindWells
	case "scenes":
		return KindScene
	default:
		return 0
	}
}

// seqState reports every partition's append cursor and row watermark
// (the 'U' reply). dataset filters to one dataset; "" reports all.
// Scene partitions are omitted: scenes are not appendable. Each entry
// carries the dataset's kind when any of its partitions here holds
// rows (0 otherwise), so a restarted router can rediscover datasets.
func (n *Node) seqState(dataset string) []SeqEntry {
	infos := make(map[string]core.DatasetInfo)
	for _, ds := range n.eng.Datasets() {
		infos[ds.Name] = ds
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []SeqEntry
	for ds, parts := range n.parts {
		if dataset != "" && ds != dataset {
			continue
		}
		// The dataset's kind is knowable iff some partition here is
		// non-empty; empty partitions report it too once found.
		var dsKind DataKind
		for _, entry := range parts {
			if entry.local == "" {
				continue
			}
			if info, ok := infos[entry.local]; ok {
				dsKind = dataKindOfInfo(info.Kind)
				break
			}
		}
		if dsKind == KindScene {
			continue
		}
		for part, entry := range parts {
			e := SeqEntry{Dataset: ds, Part: part, Kind: dsKind}
			if pi := n.ingests[ds][part]; pi != nil {
				e.LastSeq = pi.lastSeq
			}
			if entry.local != "" {
				info, ok := infos[entry.local]
				if !ok {
					continue
				}
				e.Watermark = entry.offset + int64(info.Rows)
			}
			out = append(out, e)
		}
	}
	return out
}

// appendErrorCode maps an append failure to its wire code.
func appendErrorCode(err error) string {
	switch {
	case errors.Is(err, ErrSeqGap):
		return "seq-gap"
	case errors.Is(err, core.ErrUnknownDataset):
		return "unknown-dataset"
	default:
		return "append"
	}
}

// handleIngest serves one ingest session: appends, probes, and
// seq-state exchanges until the peer hangs up. An append failure ends
// the session after the error frame — the router must re-establish
// sequencing state before sending more.
func (n *Node) handleIngest(c net.Conn, typ byte, payload []byte) {
	for {
		switch typ {
		case frameHealth:
			if writeFrame(c, frameHealth, nil) != nil {
				return
			}
		case frameSeqState:
			ds, err := decodeSeqStateReq(payload)
			if err != nil {
				n.failed.Add(1)
				writeFrame(c, frameError, encodeError("bad-seq-state", err.Error()))
				return
			}
			if writeFrame(c, frameSeqState, encodeSeqState(n.seqState(ds))) != nil {
				return
			}
		case frameAppend:
			b, err := decodeAppend(payload)
			if err != nil {
				n.failed.Add(1)
				writeFrame(c, frameError, encodeError("bad-append", err.Error()))
				return
			}
			// The fault-injection hook runs with the batch decoded but
			// nothing applied: a kill here loses the batch atomically.
			if n.opt.BeforeAppend != nil {
				n.opt.BeforeAppend(b.Dataset, b.Part, b.Seq)
			}
			dup, gen, err := n.AppendRows(context.Background(), b)
			if err != nil {
				n.failed.Add(1)
				writeFrame(c, frameError, encodeError(appendErrorCode(err), err.Error()))
				return
			}
			if writeFrame(c, frameAppendAck, encodeAppendAck(appendAck{Seq: b.Seq, Dup: dup, Gen: gen})) != nil {
				return
			}
		case frameResyncReq:
			// Donor role: stream a consistent snapshot of the requested
			// partitions and report their cursors. One transfer per
			// session; the router closes the connection after 'Y'.
			n.serveResync(c, payload)
			return
		case frameInstall:
			// Receiver role: accumulate 'D' chunks, install on 'J', ack
			// with 'Y'. The session then continues — the router replays
			// the remaining log tail as ordinary 'A' frames.
			if !n.handleInstall(c, payload) {
				return
			}
		default:
			n.failed.Add(1)
			writeFrame(c, frameError, encodeError("bad-frame",
				fmt.Sprintf("unexpected frame %q in ingest session", typ)))
			return
		}
		var err error
		if typ, payload, err = readFrame(c); err != nil {
			return
		}
	}
}
