// The cluster wire protocol: length-prefixed frames over TCP, with
// payloads in the canonical encoding (internal/canon) the cache
// fingerprints already use — big-endian fixed-width integers, IEEE-754
// float bits, length-prefixed strings. One connection carries one
// query: the router sends a 'Q' frame, floor raises flow both ways as
// 'F' frames while the node executes, and the exchange ends with one
// 'R' (partial result) or 'E' (typed error) frame. Decoding is
// bounds-checked end to end (canon.Reader), so a truncated or hostile
// frame fails with canon.ErrCorrupt instead of panicking — the property
// FuzzPartialCodec pins.

package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"modelir/internal/bayes"
	"modelir/internal/canon"
	"modelir/internal/core"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// Frame types.
const (
	frameQuery  = 'Q' // router → node: one encoded query
	frameFloor  = 'F' // both ways: 8-byte result-scale floor raise
	frameResult = 'R' // node → router: encoded partial result
	frameError  = 'E' // node → router: code + message strings
	frameCancel = 'C' // router → node: abort the in-flight query
)

// maxFrame bounds a frame payload; anything larger is corrupt by
// definition (partials carry at most K items).
const maxFrame = 64 << 20

// wireVersion guards against mixed-version clusters: both query and
// partial payloads lead with it and decoding rejects a mismatch.
const wireVersion = 1

// ErrFrame reports a malformed frame envelope (bad length or type).
var ErrFrame = errors.New("cluster: malformed frame")

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: length %d", ErrFrame, n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// Query kind tags inside a 'Q' payload.
const (
	qLinear      = 'L'
	qScene       = 'S'
	qFSM         = 'M'
	qFSMDistance = 'D'
	qGeology     = 'G'
	qKnowledge   = 'K'
)

// ErrUnencodableQuery reports a query the wire format cannot carry: an
// unknown core.Query implementation, or an FSM prefilter that is not in
// the named-prefilter registry.
var ErrUnencodableQuery = errors.New("cluster: query not encodable")

// prefilterName maps the known FSM metadata prefilters to wire names.
// Functions have no structural encoding, so only registered prefilters
// cross the wire; identity is by function pointer, which is stable for
// the package-level funcs the registry holds.
func prefilterName(f core.FSMPrefilter) (string, bool) {
	if f == nil {
		return "", true
	}
	if reflect.ValueOf(f).Pointer() == reflect.ValueOf(core.FireAntsPrefilter).Pointer() {
		return "fireants", true
	}
	return "", false
}

func prefilterByName(name string) (core.FSMPrefilter, error) {
	switch name {
	case "":
		return nil, nil
	case "fireants":
		return core.FireAntsPrefilter, nil
	default:
		return nil, fmt.Errorf("%w: unknown prefilter %q", canon.ErrCorrupt, name)
	}
}

// encodeQuery serializes one partition's slice of a request. floor is
// the router's current screening floor (result scale) at send time, so
// a node joining late starts pre-pruned.
func encodeQuery(req Request, part int, floor float64) ([]byte, error) {
	b := []byte{wireVersion}
	b = canon.AppendString(b, req.Dataset)
	b = canon.AppendUint(b, uint64(part))
	b = canon.AppendUint(b, uint64(req.K))
	b = canon.AppendUint(b, uint64(req.Workers))
	b = canon.AppendUint(b, uint64(req.Budget))
	if req.MinScore != nil {
		b = append(b, 1)
		b = canon.AppendFloat(b, *req.MinScore)
	} else {
		b = append(b, 0)
	}
	b = canon.AppendFloat(b, floor)
	switch q := req.Query.(type) {
	case core.LinearQuery:
		b = append(b, qLinear)
		if q.Model == nil {
			return nil, fmt.Errorf("%w: nil linear model", ErrUnencodableQuery)
		}
		b = q.Model.AppendCanonical(b)
	case core.SceneQuery:
		b = append(b, qScene)
		if q.Model == nil {
			return nil, fmt.Errorf("%w: nil progressive model", ErrUnencodableQuery)
		}
		b = q.Model.Spec().AppendCanonical(b)
	case core.FSMQuery:
		b = append(b, qFSM)
		if q.Machine == nil {
			return nil, fmt.Errorf("%w: nil machine", ErrUnencodableQuery)
		}
		name, ok := prefilterName(q.Prefilter)
		if !ok {
			return nil, fmt.Errorf("%w: unregistered FSM prefilter", ErrUnencodableQuery)
		}
		b = q.Machine.AppendCanonical(b)
		b = canon.AppendString(b, name)
	case core.FSMDistanceQuery:
		b = append(b, qFSMDistance)
		if q.Target == nil {
			return nil, fmt.Errorf("%w: nil target machine", ErrUnencodableQuery)
		}
		b = q.Target.AppendCanonical(b)
		b = canon.AppendUint(b, uint64(q.Horizon))
	case core.GeologyQuery:
		b = append(b, qGeology)
		b = canon.AppendUint(b, uint64(len(q.Sequence)))
		for _, l := range q.Sequence {
			b = canon.AppendUint(b, uint64(l))
		}
		b = canon.AppendFloat(b, q.MaxGapFt)
		b = canon.AppendFloat(b, q.MinGamma)
		b = canon.AppendFloat(b, q.GammaRampAPI)
		b = canon.AppendUint(b, uint64(q.Method))
	case core.KnowledgeQuery:
		b = append(b, qKnowledge)
		if q.Rules == nil {
			return nil, fmt.Errorf("%w: nil rule set", ErrUnencodableQuery)
		}
		enc, ok := q.Rules.AppendCanonical(b)
		if !ok {
			return nil, fmt.Errorf("%w: unserializable rule set membership", ErrUnencodableQuery)
		}
		b = enc
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnencodableQuery, req.Query)
	}
	return b, nil
}

// nodeQuery is a decoded 'Q' payload: the request slice a node executes.
type nodeQuery struct {
	Dataset string
	Part    int
	Req     core.Request // Dataset left empty; node fills its local name
	Floor   float64
}

func decodeQuery(payload []byte) (nodeQuery, error) {
	var q nodeQuery
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return q, err
	}
	if v != wireVersion {
		return q, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	if q.Dataset, err = r.String(); err != nil {
		return q, err
	}
	part, err := r.Uint()
	if err != nil {
		return q, err
	}
	if part > math.MaxInt32 {
		return q, canon.ErrCorrupt
	}
	q.Part = int(part)
	ks := [3]*int{&q.Req.K, &q.Req.Workers, &q.Req.Budget}
	for _, dst := range ks {
		u, err := r.Uint()
		if err != nil {
			return q, err
		}
		if u > math.MaxInt32 {
			return q, canon.ErrCorrupt
		}
		*dst = int(u)
	}
	hasMin, err := r.Byte()
	if err != nil {
		return q, err
	}
	switch hasMin {
	case 0:
	case 1:
		ms, err := r.Float()
		if err != nil {
			return q, err
		}
		q.Req.MinScore = &ms
	default:
		return q, canon.ErrCorrupt
	}
	if q.Floor, err = r.Float(); err != nil {
		return q, err
	}
	kind, err := r.Byte()
	if err != nil {
		return q, err
	}
	switch kind {
	case qLinear:
		m, err := linear.DecodeCanonical(r)
		if err != nil {
			return q, err
		}
		q.Req.Query = core.LinearQuery{Model: m}
	case qScene:
		spec, err := linear.DecodeDecomposeSpec(r)
		if err != nil {
			return q, err
		}
		pm, err := spec.Build()
		if err != nil {
			return q, fmt.Errorf("%w: %v", canon.ErrCorrupt, err)
		}
		q.Req.Query = core.SceneQuery{Model: pm}
	case qFSM:
		m, err := fsm.DecodeCanonical(r)
		if err != nil {
			return q, err
		}
		name, err := r.String()
		if err != nil {
			return q, err
		}
		pf, err := prefilterByName(name)
		if err != nil {
			return q, err
		}
		q.Req.Query = core.FSMQuery{Machine: m, Prefilter: pf}
	case qFSMDistance:
		m, err := fsm.DecodeCanonical(r)
		if err != nil {
			return q, err
		}
		h, err := r.Uint()
		if err != nil {
			return q, err
		}
		if h > math.MaxInt32 {
			return q, canon.ErrCorrupt
		}
		q.Req.Query = core.FSMDistanceQuery{Target: m, Horizon: int(h)}
	case qGeology:
		var gq core.GeologyQuery
		n, err := r.Count(8)
		if err != nil {
			return q, err
		}
		gq.Sequence = make([]synth.Lithology, n)
		for i := range gq.Sequence {
			u, err := r.Uint()
			if err != nil {
				return q, err
			}
			if u > math.MaxInt32 {
				return q, canon.ErrCorrupt
			}
			gq.Sequence[i] = synth.Lithology(u)
		}
		if gq.MaxGapFt, err = r.Float(); err != nil {
			return q, err
		}
		if gq.MinGamma, err = r.Float(); err != nil {
			return q, err
		}
		if gq.GammaRampAPI, err = r.Float(); err != nil {
			return q, err
		}
		u, err := r.Uint()
		if err != nil {
			return q, err
		}
		if u > math.MaxInt32 {
			return q, canon.ErrCorrupt
		}
		gq.Method = core.GeologyMethod(u)
		q.Req.Query = gq
	case qKnowledge:
		rs, err := bayes.DecodeRuleSet(r)
		if err != nil {
			return q, err
		}
		q.Req.Query = core.KnowledgeQuery{Rules: rs}
	default:
		return q, fmt.Errorf("%w: query kind %q", canon.ErrCorrupt, kind)
	}
	if r.Remaining() != 0 {
		return q, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return q, nil
}

// PartialStats is the node-side slice of QueryStats that survives the
// wire: the counters that sum across partitions.
type PartialStats struct {
	Evaluations int
	Examined    int
	Pruned      int
	Shards      int
	Truncated   bool
	Wall        time.Duration
}

// Partial is one node's contribution to a scatter-gathered query: its
// partition's exact top-K (IDs already lifted into the global space),
// the node's final screening floor, and the summable stats.
type Partial struct {
	Floor float64
	Items []topk.Item
	Stats PartialStats
}

// encodePartial serializes a partial result. Item payloads cross the
// wire only for the []int strata lists geology queries attach; other
// payload types are dropped (no current query family produces them).
func encodePartial(p Partial) []byte {
	b := []byte{wireVersion}
	b = canon.AppendFloat(b, p.Floor)
	b = canon.AppendUint(b, uint64(p.Stats.Evaluations))
	b = canon.AppendUint(b, uint64(p.Stats.Examined))
	b = canon.AppendUint(b, uint64(p.Stats.Pruned))
	b = canon.AppendUint(b, uint64(p.Stats.Shards))
	if p.Stats.Truncated {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = canon.AppendUint(b, uint64(p.Stats.Wall))
	b = canon.AppendUint(b, uint64(len(p.Items)))
	for _, it := range p.Items {
		b = canon.AppendUint(b, uint64(it.ID))
		b = canon.AppendFloat(b, it.Score)
		if strata, ok := it.Payload.([]int); ok {
			b = append(b, 1)
			b = canon.AppendUint(b, uint64(len(strata)))
			for _, s := range strata {
				b = canon.AppendUint(b, uint64(s))
			}
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func decodePartial(payload []byte) (Partial, error) {
	var p Partial
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return p, err
	}
	if v != wireVersion {
		return p, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	if p.Floor, err = r.Float(); err != nil {
		return p, err
	}
	counters := [4]*int{
		&p.Stats.Evaluations, &p.Stats.Examined, &p.Stats.Pruned, &p.Stats.Shards,
	}
	for _, dst := range counters {
		u, err := r.Uint()
		if err != nil {
			return p, err
		}
		if u > math.MaxInt64/2 {
			return p, canon.ErrCorrupt
		}
		*dst = int(u)
	}
	tr, err := r.Byte()
	if err != nil {
		return p, err
	}
	switch tr {
	case 0:
	case 1:
		p.Stats.Truncated = true
	default:
		return p, canon.ErrCorrupt
	}
	wall, err := r.Uint()
	if err != nil {
		return p, err
	}
	if wall > math.MaxInt64 {
		return p, canon.ErrCorrupt
	}
	p.Stats.Wall = time.Duration(wall)
	// An item is at least an ID, a score, and a payload flag.
	n, err := r.Count(17)
	if err != nil {
		return p, err
	}
	if n > 0 {
		p.Items = make([]topk.Item, n)
	}
	for i := range p.Items {
		id, err := r.Uint()
		if err != nil {
			return p, err
		}
		if id > math.MaxInt64 {
			return p, canon.ErrCorrupt
		}
		p.Items[i].ID = int64(id)
		if p.Items[i].Score, err = r.Float(); err != nil {
			return p, err
		}
		hasPayload, err := r.Byte()
		if err != nil {
			return p, err
		}
		switch hasPayload {
		case 0:
		case 1:
			m, err := r.Count(8)
			if err != nil {
				return p, err
			}
			strata := make([]int, m)
			for j := range strata {
				u, err := r.Uint()
				if err != nil {
					return p, err
				}
				if u > math.MaxInt32 {
					return p, canon.ErrCorrupt
				}
				strata[j] = int(u)
			}
			p.Items[i].Payload = strata
		default:
			return p, canon.ErrCorrupt
		}
	}
	if r.Remaining() != 0 {
		return p, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return p, nil
}

// encodeFloor serializes an 'F' payload: one result-scale floor value.
func encodeFloor(f float64) []byte { return canon.AppendFloat(nil, f) }

func decodeFloor(payload []byte) (float64, error) {
	return canon.NewReader(payload).Float()
}

// encodeError serializes an 'E' payload: a machine-readable code plus a
// human-readable message.
func encodeError(code, msg string) []byte {
	b := canon.AppendString(nil, code)
	return canon.AppendString(b, msg)
}

func decodeError(payload []byte) (code, msg string, err error) {
	r := canon.NewReader(payload)
	if code, err = r.String(); err != nil {
		return "", "", err
	}
	if msg, err = r.String(); err != nil {
		return "", "", err
	}
	return code, msg, nil
}
