// Snapshot anti-entropy: the escalation path when catch-up finds that
// a replica's missed batches were pruned from the append log. Log
// replay cannot repair such a replica, so the router streams it a full
// consistent snapshot of exactly the partitions it owes, taken from a
// healthy donor replica, then replays the remaining log tail — all
// under the partition locks, so the donor cut, the install, and the
// replay form one linearizable repair.
//
// Five frame types extend the ingest protocol:
//
//	'S' resync-request router → donor: the (dataset, part) list to
//	                   snapshot; the donor locks those partitions'
//	                   cursors and streams the snapshot
//	'D' chunk          donor → router → stale: one piece of one
//	                   snapshot file (name + bytes, ≤256 KiB); the
//	                   router forwards frames verbatim, never
//	                   materializing the snapshot
//	'Y' resync-state   donor → router: per-partition cursors captured
//	                   at the cut, after the last chunk; also the
//	                   stale replica's install ack (echoed cursors)
//	'I' install        router → stale: begin receiving a snapshot for
//	                   the listed partitions
//	'J' install-commit router → stale: all chunks forwarded; install
//	                   under these cursors
//
// Integrity: the chunks reassemble internal/segment's checksummed
// section format, and the receiver installs in Copy mode, which
// verifies every section's SHA-256 as it decodes — a corrupted or
// truncated transfer fails the install, the replica stays quarantined,
// and the next reconcile pass retries. Consistency: the router holds
// every owed partition's lock for the whole transfer (no new batch can
// be sequenced for them) and the donor holds its local cursor locks
// across the engine snapshot, so the streamed state corresponds
// exactly to the reported cursors. Donor selection is placement order:
// the first servable replica of each owed partition; partitions that
// share a donor transfer in one session.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync/atomic"

	"modelir/internal/canon"
	"modelir/internal/segment"
)

// Resync frame types (ingest frames are in ingestwire.go, query frames
// in wire.go).
const (
	frameResyncReq   = 'S' // router → donor: partitions to snapshot
	frameResyncChunk = 'D' // donor → router → stale: one snapshot-file chunk
	frameResyncState = 'Y' // donor → router: cursors at the cut; stale → router: install ack
	frameInstall     = 'I' // router → stale: begin snapshot install
	frameInstallDone = 'J' // router → stale: chunks done, commit under these cursors
)

// resyncChunkSize bounds one 'D' frame's data payload.
const resyncChunkSize = 256 << 10

// ErrLogPruned reports that a replica's missed batches are no longer
// in the append log — catch-up replay cannot repair it and the
// snapshot resync path must run instead.
var ErrLogPruned = errors.New("cluster: append log pruned past replica cursor")

// partRef names one partition in an 'S'/'I' request.
type partRef struct {
	Dataset string
	Part    int
}

func encodePartRefs(refs []partRef) []byte {
	b := []byte{wireVersion}
	b = canon.AppendUint(b, uint64(len(refs)))
	for _, ref := range refs {
		b = canon.AppendString(b, ref.Dataset)
		b = canon.AppendUint(b, uint64(ref.Part))
	}
	return b
}

func decodePartRefs(payload []byte) ([]partRef, error) {
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	// A ref is at least a name length plus a part number.
	n, err := r.Count(16)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: empty resync request", canon.ErrCorrupt)
	}
	out := make([]partRef, n)
	for i := range out {
		if out[i].Dataset, err = r.String(); err != nil {
			return nil, err
		}
		part, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if part > 1<<31 {
			return nil, canon.ErrCorrupt
		}
		out[i].Part = int(part)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return out, nil
}

// resyncEntry is one partition's cursor record in a 'Y'/'J' payload:
// the engine-local dataset backing it ("" for an empty partition), the
// tuple ID offset, and the last applied sequence number at the cut.
type resyncEntry struct {
	Dataset string
	Part    int
	Local   string
	Offset  int64
	LastSeq uint64
}

func encodeResyncEntries(entries []resyncEntry) []byte {
	b := []byte{wireVersion}
	b = canon.AppendUint(b, uint64(len(entries)))
	for _, e := range entries {
		b = canon.AppendString(b, e.Dataset)
		b = canon.AppendUint(b, uint64(e.Part))
		b = canon.AppendString(b, e.Local)
		b = canon.AppendUint(b, uint64(e.Offset))
		b = canon.AppendUint(b, e.LastSeq)
	}
	return b
}

func decodeResyncEntries(payload []byte) ([]resyncEntry, error) {
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	// An entry is at least two name lengths plus three fixed ints.
	n, err := r.Count(40)
	if err != nil {
		return nil, err
	}
	out := make([]resyncEntry, n)
	for i := range out {
		if out[i].Dataset, err = r.String(); err != nil {
			return nil, err
		}
		part, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if part > 1<<31 {
			return nil, canon.ErrCorrupt
		}
		out[i].Part = int(part)
		if out[i].Local, err = r.String(); err != nil {
			return nil, err
		}
		off, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if off > 1<<62 {
			return nil, canon.ErrCorrupt
		}
		out[i].Offset = int64(off)
		if out[i].LastSeq, err = r.Uint(); err != nil {
			return nil, err
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return out, nil
}

// encodeResyncChunk frames one piece of one snapshot file. The data
// bytes follow the name with no further framing: the decoder takes
// everything after the name, so chunks cost no per-byte overhead.
func encodeResyncChunk(name string, data []byte) []byte {
	b := []byte{wireVersion}
	b = canon.AppendString(b, name)
	return append(b, data...)
}

func decodeResyncChunk(payload []byte) (name string, data []byte, err error) {
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return "", nil, err
	}
	if v != wireVersion {
		return "", nil, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	if name, err = r.String(); err != nil {
		return "", nil, err
	}
	return name, payload[len(payload)-r.Remaining():], nil
}

// ---- donor side ----

// chunkWriter buffers one file's bytes into ≤resyncChunkSize frames.
type chunkWriter struct {
	c    net.Conn
	name string
	buf  []byte
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if len(w.buf) >= resyncChunkSize {
			if err := w.flush(); err != nil {
				return 0, err
			}
		}
		room := resyncChunkSize - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
	}
	return total, nil
}

func (w *chunkWriter) flush() error {
	err := writeFrame(w.c, frameResyncChunk, encodeResyncChunk(w.name, w.buf))
	w.buf = w.buf[:0]
	return err
}

// captureResync locks the requested partitions' cursors (sorted order,
// so concurrent transfers cannot deadlock) and records their entries.
// The returned unlock releases them; the caller holds the locks across
// the engine snapshot so the streamed state matches the cursors.
func (n *Node) captureResync(refs []partRef) (entries []resyncEntry, locals []string, unlock func(), err error) {
	sorted := append([]partRef(nil), refs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dataset != sorted[j].Dataset {
			return sorted[i].Dataset < sorted[j].Dataset
		}
		return sorted[i].Part < sorted[j].Part
	})
	var pis []*partIngest
	unlock = func() {
		for _, pi := range pis {
			pi.mu.Unlock()
		}
	}
	for _, ref := range sorted {
		n.mu.Lock()
		entry, ok := n.parts[ref.Dataset][ref.Part]
		n.mu.Unlock()
		if !ok {
			unlock()
			return nil, nil, nil, fmt.Errorf("cluster: resync: %q part %d not on this node", ref.Dataset, ref.Part)
		}
		pi := n.partIngest(ref.Dataset, ref.Part)
		pi.mu.Lock()
		pis = append(pis, pi)
		entries = append(entries, resyncEntry{
			Dataset: ref.Dataset, Part: ref.Part,
			Local: entry.local, Offset: entry.offset, LastSeq: pi.lastSeq,
		})
		if entry.local != "" {
			locals = append(locals, entry.local)
		}
	}
	return entries, locals, unlock, nil
}

// serveResync is the donor handler for one 'S' request: capture the
// partitions' cursors, stream their snapshot as 'D' chunks, finish
// with a 'Y' carrying the cursors.
func (n *Node) serveResync(c net.Conn, payload []byte) {
	refs, err := decodePartRefs(payload)
	if err != nil {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("bad-resync", err.Error()))
		return
	}
	entries, locals, unlock, err := n.captureResync(refs)
	if err != nil {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("resync", err.Error()))
		return
	}
	defer unlock()
	if len(locals) > 0 {
		if err := n.eng.SnapshotDatasets(context.Background(), donorBackend{c: c}, locals); err != nil {
			n.failed.Add(1)
			writeFrame(c, frameError, encodeError("resync", err.Error()))
			return
		}
	}
	writeFrame(c, frameResyncState, encodeResyncEntries(entries))
}

// donorBackend adapts the connection to segment.Backend for the donor
// snapshot: every file becomes a run of 'D' frames, and an empty file
// still emits one (empty) chunk so the receiver creates it. Open is
// unsupported — the stream is write-only.
type donorBackend struct {
	c net.Conn
}

func (db donorBackend) WriteFile(name string, write func(io.Writer) error) error {
	cw := &chunkWriter{c: db.c, name: name}
	if err := write(cw); err != nil {
		return err
	}
	return cw.flush()
}

func (db donorBackend) Open(string) (segment.Blob, error) {
	return nil, errors.New("cluster: donor stream is write-only")
}

// ---- receiver side ----

// handleInstall is the stale replica's receiver: accumulate the
// snapshot from 'D' chunks, install it when the 'J' commit arrives,
// and ack with 'Y'. Returns false when the session must end (error
// already reported); true leaves the session open for the router's
// log-tail replay.
func (n *Node) handleInstall(c net.Conn, payload []byte) bool {
	refs, err := decodePartRefs(payload)
	if err != nil {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("bad-resync", err.Error()))
		return false
	}
	files := make(map[string][]byte)
	var entries []resyncEntry
receive:
	for {
		typ, pl, err := readFrame(c)
		if err != nil {
			return false
		}
		switch typ {
		case frameResyncChunk:
			name, data, err := decodeResyncChunk(pl)
			if err != nil {
				n.failed.Add(1)
				writeFrame(c, frameError, encodeError("bad-resync", err.Error()))
				return false
			}
			files[name] = append(files[name], data...)
		case frameInstallDone:
			if entries, err = decodeResyncEntries(pl); err != nil {
				n.failed.Add(1)
				writeFrame(c, frameError, encodeError("bad-resync", err.Error()))
				return false
			}
			break receive
		default:
			n.failed.Add(1)
			writeFrame(c, frameError, encodeError("bad-frame",
				fmt.Sprintf("unexpected frame %q during resync install", typ)))
			return false
		}
	}
	mem := segment.NewMem()
	for name, data := range files {
		if err := mem.Put(name, data); err != nil {
			n.failed.Add(1)
			writeFrame(c, frameError, encodeError("bad-resync", err.Error()))
			return false
		}
	}
	if err := n.installResync(mem, refs, entries); err != nil {
		n.failed.Add(1)
		writeFrame(c, frameError, encodeError("resync", err.Error()))
		return false
	}
	return writeFrame(c, frameResyncState, encodeResyncEntries(entries)) == nil
}

// installResync swaps the received snapshot in. Validation follows
// RestoreNode's discipline: every entry must answer a requested
// partition this node actually holds under the boot topology, and
// local names must be the deterministic dataset#part form, so a donor
// cannot graft a foreign dataset in. The partition cursor locks are
// held across the engine swap, serializing against any in-flight
// append; the engine install verifies section checksums and bumps
// dataset generations (stale cache entries invalidate).
func (n *Node) installResync(b segment.Backend, refs []partRef, entries []resyncEntry) error {
	wanted := make(map[partRef]bool, len(refs))
	for _, ref := range refs {
		wanted[ref] = true
	}
	for _, e := range entries {
		ref := partRef{Dataset: e.Dataset, Part: e.Part}
		if !wanted[ref] {
			return fmt.Errorf("cluster: resync entry %q part %d was not requested", e.Dataset, e.Part)
		}
		delete(wanted, ref)
		if e.Local != "" && e.Local != n.localName(e.Dataset, e.Part) {
			return fmt.Errorf("cluster: resync entry %q part %d names local %q, want %q",
				e.Dataset, e.Part, e.Local, n.localName(e.Dataset, e.Part))
		}
		n.mu.Lock()
		_, ok := n.parts[e.Dataset][e.Part]
		n.mu.Unlock()
		if !ok {
			return fmt.Errorf("cluster: resync install: %q part %d not placed on this node", e.Dataset, e.Part)
		}
	}
	if len(wanted) > 0 {
		return fmt.Errorf("cluster: resync commit covers %d of %d requested partitions", len(entries), len(refs))
	}

	sorted := append([]resyncEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dataset != sorted[j].Dataset {
			return sorted[i].Dataset < sorted[j].Dataset
		}
		return sorted[i].Part < sorted[j].Part
	})
	pis := make([]*partIngest, len(sorted))
	for i, e := range sorted {
		pis[i] = n.partIngest(e.Dataset, e.Part)
		pis[i].mu.Lock()
	}
	defer func() {
		for _, pi := range pis {
			pi.mu.Unlock()
		}
	}()

	var locals []string
	for _, e := range sorted {
		if e.Local != "" {
			locals = append(locals, e.Local)
		}
	}
	if len(locals) > 0 {
		if err := n.eng.InstallDatasets(b, locals); err != nil {
			return err
		}
	}
	n.mu.Lock()
	for _, e := range sorted {
		n.parts[e.Dataset][e.Part] = partEntry{local: e.Local, offset: e.Offset}
	}
	n.mu.Unlock()
	for i, e := range sorted {
		pis[i].lastSeq = e.LastSeq
	}
	return nil
}

// ---- router side ----

// routerResyncStats is the router's lifetime resync/recovery counter
// block (ResyncStats is the exported snapshot).
type routerResyncStats struct {
	resyncs       atomic.Int64
	failures      atomic.Int64
	bytesStreamed atomic.Int64
	partitions    atomic.Int64
	replayed      atomic.Int64
	forcedPrunes  atomic.Int64
	catchUpErrors atomic.Int64
}

// ResyncStats is a point-in-time sample of the router's resync and
// recovery counters, surfaced through modelird's /stats.
type ResyncStats struct {
	// Resyncs counts completed donor→replica snapshot transfers (one
	// per donor session, possibly covering several partitions).
	Resyncs int64 `json:"resyncs"`
	// Failures counts resync attempts that errored; the replica stays
	// quarantined and the next reconcile pass retries.
	Failures int64 `json:"failures"`
	// BytesStreamed totals the snapshot chunk bytes forwarded
	// donor→replica.
	BytesStreamed int64 `json:"bytes_streamed"`
	// Partitions counts partitions repaired by snapshot install.
	Partitions int64 `json:"partitions"`
	// ReplayedBatches counts log-tail batches replayed after installs.
	ReplayedBatches int64 `json:"replayed_batches"`
	// ForcedPrunes counts append-log records dropped by the log cap
	// before every replica acked them (each forces the lagging replica
	// through resync instead of replay).
	ForcedPrunes int64 `json:"forced_prunes"`
	// CatchUpErrors counts reconcile passes whose catch-up failed; the
	// per-peer error text is in PeerErrors.
	CatchUpErrors int64 `json:"catchup_errors"`
}

// ResyncStats samples the router's resync/recovery counters.
func (r *Router) ResyncStats() ResyncStats {
	return ResyncStats{
		Resyncs:         r.stats.resyncs.Load(),
		Failures:        r.stats.failures.Load(),
		BytesStreamed:   r.stats.bytesStreamed.Load(),
		Partitions:      r.stats.partitions.Load(),
		ReplayedBatches: r.stats.replayed.Load(),
		ForcedPrunes:    r.stats.forcedPrunes.Load(),
		CatchUpErrors:   r.stats.catchUpErrors.Load(),
	}
}

// PeerErrors reports each peer's last catch-up/resync error, if any —
// a permanently stuck replica is visible here instead of silent.
func (r *Router) PeerErrors() map[string]string {
	return r.health.notes()
}

// Degraded reports whether any topology peer is currently not Healthy —
// i.e. some partition is serving with less than its full replica set.
// The cluster still answers (reads need one replica), but fault
// tolerance is reduced; modelird's router /healthz surfaces this as
// "degraded" with a 200 status.
func (r *Router) Degraded() bool {
	for _, st := range r.PeerHealth() {
		if st != Healthy {
			return true
		}
	}
	return false
}

// owedPart is one partition whose log no longer covers a stale
// replica's gap.
type owedPart struct {
	dataset string
	pa      *partIngestState
}

// resyncPeer repairs addr's owed partitions by snapshot transfer,
// grouping them by donor (the first servable replica of each, in
// placement order) so partitions sharing a donor move in one session.
func (r *Router) resyncPeer(ctx context.Context, addr string, owed []owedPart) error {
	groups := make(map[string][]owedPart)
	for _, op := range owed {
		donor := ""
		for _, cand := range op.pa.nodes {
			if cand != addr && r.health.servable(cand) {
				donor = cand
				break
			}
		}
		if donor == "" {
			return fmt.Errorf("%w: %q part %d: no healthy donor for resync",
				ErrPartitionUnavailable, op.dataset, op.pa.part)
		}
		groups[donor] = append(groups[donor], op)
	}
	donors := make([]string, 0, len(groups))
	for donor := range groups {
		donors = append(donors, donor)
	}
	sort.Strings(donors)
	for _, donor := range donors {
		if err := r.resyncFromDonor(ctx, addr, donor, groups[donor]); err != nil {
			r.stats.failures.Add(1)
			return fmt.Errorf("cluster: resync %s from %s: %w", addr, donor, err)
		}
	}
	return nil
}

// resyncFromDonor runs one donor session: lock the owed partitions
// (sorted — concurrent resyncs cannot deadlock), request the donor
// snapshot, forward its chunks to the stale replica, commit the
// install, then replay each partition's remaining log tail on the same
// connection and mark the replica acked through the latest batch.
func (r *Router) resyncFromDonor(ctx context.Context, addr, donor string, owed []owedPart) error {
	sort.Slice(owed, func(i, j int) bool {
		if owed[i].dataset != owed[j].dataset {
			return owed[i].dataset < owed[j].dataset
		}
		return owed[i].pa.part < owed[j].pa.part
	})
	for _, op := range owed {
		op.pa.mu.Lock()
	}
	defer func() {
		for _, op := range owed {
			op.pa.mu.Unlock()
		}
	}()

	refs := make([]partRef, len(owed))
	for i, op := range owed {
		refs[i] = partRef{Dataset: op.dataset, Part: op.pa.part}
	}
	dc, err := r.dialIngest(ctx, donor)
	if err != nil {
		r.health.fault(donor)
		return err
	}
	defer dc.Close()
	sc, err := r.dialIngest(ctx, addr)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	defer sc.Close()
	if err := writeFrame(dc, frameResyncReq, encodePartRefs(refs)); err != nil {
		r.health.fault(donor)
		return err
	}
	if err := writeFrame(sc, frameInstall, encodePartRefs(refs)); err != nil {
		r.health.fault(addr)
		return err
	}

	// Pump: donor chunks forward verbatim until the donor's 'Y'.
	var entries []resyncEntry
	var streamed int64
	for entries == nil {
		_ = dc.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
		_ = sc.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
		typ, pl, err := readFrame(dc)
		if err != nil {
			r.health.fault(donor)
			return err
		}
		switch typ {
		case frameResyncChunk:
			streamed += int64(len(pl))
			if err := writeFrame(sc, frameResyncChunk, pl); err != nil {
				r.health.fault(addr)
				return err
			}
		case frameResyncState:
			if entries, err = decodeResyncEntries(pl); err != nil {
				return err
			}
		case frameError:
			code, msg, derr := decodeError(pl)
			if derr != nil {
				return derr
			}
			return &RemoteError{Addr: donor, Code: code, Msg: msg}
		default:
			return fmt.Errorf("%w: unexpected frame %q from resync donor", ErrFrame, typ)
		}
	}
	if err := writeFrame(sc, frameInstallDone, encodeResyncEntries(entries)); err != nil {
		r.health.fault(addr)
		return err
	}
	_ = sc.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
	typ, pl, err := readFrame(sc)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	switch typ {
	case frameResyncState:
		if _, err := decodeResyncEntries(pl); err != nil {
			return err
		}
	case frameError:
		code, msg, derr := decodeError(pl)
		if derr != nil {
			return derr
		}
		return &RemoteError{Addr: addr, Code: code, Msg: msg}
	default:
		return fmt.Errorf("%w: unexpected frame %q from resync install", ErrFrame, typ)
	}

	// Install done: the replica holds each partition exactly at the
	// donor's cut. Replay the log tail above each cut on the same
	// session, then the replica is current through nextSeq-1.
	for _, op := range owed {
		var cut *resyncEntry
		for i := range entries {
			if entries[i].Dataset == op.dataset && entries[i].Part == op.pa.part {
				cut = &entries[i]
				break
			}
		}
		if cut == nil {
			return fmt.Errorf("%w: donor reported no cursor for %q part %d", ErrFrame, op.dataset, op.pa.part)
		}
		op.pa.acked[addr] = cut.LastSeq
		replayed, err := r.replayLog(ctx, sc, addr, op.pa, cut.LastSeq)
		if err != nil {
			return err
		}
		r.stats.replayed.Add(int64(replayed))
		op.pa.acked[addr] = op.pa.nextSeq - 1
		op.pa.prune()
	}
	r.stats.resyncs.Add(1)
	r.stats.bytesStreamed.Add(streamed)
	r.stats.partitions.Add(int64(len(owed)))
	return nil
}
