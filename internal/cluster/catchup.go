// Catch-up: the only road out of quarantine. A stale replica missed
// one or more append batches; because every partition's appends carry
// monotone sequence numbers and the router keeps each unacked batch's
// encoded frame in its per-partition log, the repair is exact — ask the
// replica for its cursor ('U'), replay precisely the logged batches
// above it ('A', acked one by one), and the node's idempotent cursor
// makes re-replaying an already-applied batch a no-op. Only when every
// partition the replica owns is provably current does the health
// tracker re-admit it.
//
// If the log no longer covers the replica's gap (every other replica
// acked and the records were pruned before the replica was seen), the
// replica stays quarantined: a full-state resync is out of scope, and
// serving from a replica that might be missing rows would break the
// bit-identical read guarantee.

package cluster

import (
	"context"
	"fmt"
	"net"
	"time"
)

// ackDeadline converts the ack timeout into an absolute connection
// deadline, honoring an earlier ctx deadline.
func ackDeadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		return d
	}
	return dl
}

// dialIngest opens an ingest-session connection to addr.
func (r *Router) dialIngest(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: r.opt.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
	return conn, nil
}

// Probe checks liveness: one 'H' frame, echoed back. The result feeds
// the health tracker (ok can lift Down back to Healthy; it never lifts
// Stale — reachability is not consistency).
func (r *Router) Probe(ctx context.Context, addr string) error {
	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHealth, nil); err != nil {
		r.health.fault(addr)
		return err
	}
	typ, _, err := readFrame(conn)
	if err != nil || typ != frameHealth {
		r.health.fault(addr)
		if err == nil {
			err = fmt.Errorf("%w: probe answered %q", ErrFrame, typ)
		}
		return err
	}
	r.health.ok(addr)
	return nil
}

// seqStateOf asks addr for its append cursors ('U' exchange on a fresh
// connection). dataset filters to one dataset; "" asks for all.
func (r *Router) seqStateOf(ctx context.Context, addr, dataset string) ([]SeqEntry, error) {
	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return seqStateOn(conn, dataset)
}

// seqStateOn runs one 'U' exchange on an established connection.
func seqStateOn(conn net.Conn, dataset string) ([]SeqEntry, error) {
	if err := writeFrame(conn, frameSeqState, encodeSeqStateReq(dataset)); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	switch typ {
	case frameSeqState:
		return decodeSeqState(payload)
	case frameError:
		code, msg, derr := decodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, &RemoteError{Addr: conn.RemoteAddr().String(), Code: code, Msg: msg}
	default:
		return nil, fmt.Errorf("%w: unexpected frame %q", ErrFrame, typ)
	}
}

// CatchUp replays addr's missed append batches from the router's
// per-partition logs and, if every partition it owns comes back
// current, re-admits it. It is safe to call on a healthy replica (the
// replay set is empty) and idempotent on a stale one.
func (r *Router) CatchUp(ctx context.Context, addr string) error {
	r.ing.mu.Lock()
	sets := make(map[string]*dsIngest, len(r.ing.sets))
	for name, ds := range r.ing.sets {
		sets[name] = ds
	}
	r.ing.mu.Unlock()

	for name, ds := range sets {
		ds.mu.Lock()
		synced := ds.synced
		parts := ds.parts
		ds.mu.Unlock()
		if !synced {
			continue
		}
		for _, pa := range parts {
			owns := false
			for _, n := range pa.nodes {
				if n == addr {
					owns = true
					break
				}
			}
			if !owns {
				continue
			}
			if err := r.catchUpPart(ctx, addr, name, pa); err != nil {
				return err
			}
		}
	}
	// Every partition this router has sequenced is current on addr (a
	// router with no ingest state has nothing the replica could be
	// missing relative to it).
	r.health.caughtUp(addr)
	return nil
}

// catchUpPart brings addr current on one partition. It holds the
// partition lock across the replay so no new batch can interleave;
// appends to other partitions proceed.
func (r *Router) catchUpPart(ctx context.Context, addr, dataset string, pa *partIngestState) error {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	if pa.nextSeq == 1 {
		return nil // nothing ever appended
	}

	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	defer conn.Close()

	entries, err := seqStateOn(conn, dataset)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	var lastSeq uint64
	for _, e := range entries {
		if e.Dataset == dataset && e.Part == pa.part {
			lastSeq = e.LastSeq
			break
		}
	}
	want := pa.nextSeq - 1
	if lastSeq >= want {
		pa.acked[addr] = want
		pa.prune()
		return nil
	}
	if len(pa.log) == 0 || pa.log[0].seq > lastSeq+1 {
		first := pa.nextSeq
		if len(pa.log) > 0 {
			first = pa.log[0].seq
		}
		return fmt.Errorf("cluster: %s cannot catch up %q part %d: needs seq %d, log starts at %d (pruned)",
			addr, dataset, pa.part, lastSeq+1, first)
	}
	for _, rec := range pa.log {
		if rec.seq <= lastSeq {
			continue
		}
		// Reuse the session connection for the whole replay; refresh the
		// deadline per batch so a long replay doesn't trip the ack timeout.
		_ = conn.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
		if err := writeFrame(conn, frameAppend, rec.payload); err != nil {
			r.health.fault(addr)
			return err
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			r.health.fault(addr)
			return err
		}
		switch typ {
		case frameAppendAck:
			ack, err := decodeAppendAck(payload)
			if err != nil {
				return err
			}
			if ack.Seq != rec.seq {
				return fmt.Errorf("%w: replay ack for seq %d, want %d", ErrFrame, ack.Seq, rec.seq)
			}
		case frameError:
			code, msg, derr := decodeError(payload)
			if derr != nil {
				return derr
			}
			return &RemoteError{Addr: addr, Code: code, Msg: msg}
		default:
			return fmt.Errorf("%w: unexpected frame %q during replay", ErrFrame, typ)
		}
	}
	pa.acked[addr] = want
	pa.prune()
	return nil
}

// Reconcile runs one health pass over every topology peer: probe each,
// and walk any reachable stale replica through catch-up. It returns the
// post-pass health map.
func (r *Router) Reconcile(ctx context.Context) map[string]HealthState {
	for _, addr := range r.topo.Nodes {
		if err := r.Probe(ctx, addr); err != nil {
			continue
		}
		if r.health.state(addr) == Stale {
			_ = r.CatchUp(ctx, addr) // failure keeps it quarantined
		}
	}
	return r.PeerHealth()
}

// StartHealthLoop runs Reconcile every interval until Close. Starting
// an already-running loop is a no-op.
func (r *Router) StartHealthLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	if r.loopStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.loopStop, r.loopDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				r.Reconcile(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the health loop, if running.
func (r *Router) Close() error {
	r.loopMu.Lock()
	stop, done := r.loopStop, r.loopDone
	r.loopStop, r.loopDone = nil, nil
	r.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
