// Catch-up: the road out of quarantine. A stale replica missed one or
// more append batches; because every partition's appends carry
// monotone sequence numbers and the router keeps each unacked batch's
// encoded frame in its per-partition log, the repair is exact — ask the
// replica for its cursor ('U'), replay precisely the logged batches
// above it ('A', acked one by one), and the node's idempotent cursor
// makes re-replaying an already-applied batch a no-op. Only when every
// partition the replica owns is provably current — and no new batch was
// missed while verifying (the quarantine generation) — does the health
// tracker re-admit it.
//
// If the log no longer covers the replica's gap (the records were
// pruned, or the log cap forced them out), replay alone cannot repair
// it: CatchUp escalates to the snapshot resync path (resync.go), which
// streams the owed partitions whole from a healthy donor and then
// replays the remaining log tail. The replica always converges without
// operator action as long as one healthy donor replica exists.
//
// The same exchange doubles as the router's crash recovery: a replica
// whose cursor is *ahead* of the router's (the router restarted and
// re-learned state while this replica was unreachable) has its cursor
// and row watermark adopted, so a recovered router never reuses a
// sequence number or a global tuple ID range.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// catchUpPasses bounds CatchUp's verify loop: each pass replays or
// resyncs every owed partition, and a pass that ends with the
// quarantine generation unchanged lifts the quarantine. More passes
// are only needed when appends keep landing mid-verification.
const catchUpPasses = 5

// ackDeadline converts the ack timeout into an absolute connection
// deadline, honoring an earlier ctx deadline.
func ackDeadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		return d
	}
	return dl
}

// dialIngest opens an ingest-session connection to addr.
func (r *Router) dialIngest(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: r.opt.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
	return conn, nil
}

// Probe checks liveness: one 'H' frame, echoed back. The result feeds
// the health tracker (ok can lift Down back to Healthy; it never lifts
// Stale — reachability is not consistency).
func (r *Router) Probe(ctx context.Context, addr string) error {
	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		r.health.fault(addr)
		return err
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHealth, nil); err != nil {
		r.health.fault(addr)
		return err
	}
	typ, _, err := readFrame(conn)
	if err != nil || typ != frameHealth {
		r.health.fault(addr)
		if err == nil {
			err = fmt.Errorf("%w: probe answered %q", ErrFrame, typ)
		}
		return err
	}
	r.health.ok(addr)
	return nil
}

// seqStateOf asks addr for its append cursors ('U' exchange on a fresh
// connection). dataset filters to one dataset; "" asks for all.
func (r *Router) seqStateOf(ctx context.Context, addr, dataset string) ([]SeqEntry, error) {
	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return seqStateOn(conn, dataset)
}

// seqStateOn runs one 'U' exchange on an established connection.
func seqStateOn(conn net.Conn, dataset string) ([]SeqEntry, error) {
	if err := writeFrame(conn, frameSeqState, encodeSeqStateReq(dataset)); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	switch typ {
	case frameSeqState:
		return decodeSeqState(payload)
	case frameError:
		code, msg, derr := decodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, &RemoteError{Addr: conn.RemoteAddr().String(), Code: code, Msg: msg}
	default:
		return nil, fmt.Errorf("%w: unexpected frame %q", ErrFrame, typ)
	}
}

// CatchUp brings addr current on every partition it owns and, if the
// quarantine generation did not move while verifying, re-admits it.
// Partitions whose log no longer covers the replica's gap escalate to
// snapshot resync. Safe to call on a healthy replica (the replay set is
// empty) and idempotent on a stale one.
func (r *Router) CatchUp(ctx context.Context, addr string) error {
	for pass := 0; pass < catchUpPasses; pass++ {
		gen := r.health.quarantineGen(addr)
		r.ing.mu.Lock()
		sets := make(map[string]*dsIngest, len(r.ing.sets))
		for name, ds := range r.ing.sets {
			sets[name] = ds
		}
		r.ing.mu.Unlock()

		var owed []owedPart
		for name, ds := range sets {
			ds.mu.Lock()
			synced := ds.synced
			parts := ds.parts
			ds.mu.Unlock()
			if !synced {
				continue
			}
			var high int64
			for _, pa := range parts {
				owns := false
				for _, n := range pa.nodes {
					if n == addr {
						owns = true
						break
					}
				}
				if !owns {
					continue
				}
				res, err := r.catchUpPart(ctx, addr, name, pa)
				if errors.Is(err, ErrLogPruned) {
					owed = append(owed, owedPart{dataset: name, pa: pa})
					continue
				}
				if err != nil {
					return err
				}
				if res.watermark > high {
					high = res.watermark
				}
			}
			// Ratchet the global tuple row counter to the highest
			// watermark any owned partition reported: after a router
			// restart a re-appearing replica may know of rows this router
			// never sequenced, and a fresh append must not reuse their
			// IDs. (Outside pa.mu — AppendSeqs nests ds.mu→pa.mu, never
			// the reverse.)
			ds.mu.Lock()
			if high > ds.rows {
				ds.rows = high
			}
			ds.mu.Unlock()
		}

		if len(owed) > 0 {
			r.health.startResync(addr)
			if err := r.resyncPeer(ctx, addr, owed); err != nil {
				return err
			}
			continue // verify the repair with a fresh pass
		}
		if r.health.caughtUp(addr, gen) {
			return nil
		}
		// Another batch was missed mid-verification; close the new gap.
	}
	return fmt.Errorf("cluster: %s still behind after %d catch-up passes", addr, catchUpPasses)
}

// catchUpResult reports one partition's catch-up outcome.
type catchUpResult struct {
	replayed  int
	watermark int64
}

// catchUpPart brings addr current on one partition. It holds the
// partition lock across the replay so no new batch can interleave;
// appends to other partitions proceed. A pruned gap returns
// ErrLogPruned for the caller to escalate.
func (r *Router) catchUpPart(ctx context.Context, addr, dataset string, pa *partIngestState) (catchUpResult, error) {
	pa.mu.Lock()
	defer pa.mu.Unlock()

	conn, err := r.dialIngest(ctx, addr)
	if err != nil {
		r.health.fault(addr)
		return catchUpResult{}, err
	}
	defer conn.Close()

	entries, err := seqStateOn(conn, dataset)
	if err != nil {
		r.health.fault(addr)
		return catchUpResult{}, err
	}
	var lastSeq uint64
	var watermark int64
	for _, e := range entries {
		if e.Dataset == dataset && e.Part == pa.part {
			lastSeq, watermark = e.LastSeq, e.Watermark
			break
		}
	}
	want := pa.nextSeq - 1
	if lastSeq >= want {
		if lastSeq > want {
			// The replica is ahead of this router: batches sequenced by a
			// previous router incarnation landed here while this one was
			// syncing. Adopt its cursor so new appends continue above it.
			pa.nextSeq = lastSeq + 1
		}
		pa.acked[addr] = lastSeq
		pa.prune()
		return catchUpResult{watermark: watermark}, nil
	}
	if len(pa.log) == 0 || pa.log[0].seq > lastSeq+1 {
		first := pa.nextSeq
		if len(pa.log) > 0 {
			first = pa.log[0].seq
		}
		return catchUpResult{}, fmt.Errorf("%w: %s needs %q part %d seq %d, log starts at %d",
			ErrLogPruned, addr, dataset, pa.part, lastSeq+1, first)
	}
	replayed, err := r.replayLog(ctx, conn, addr, pa, lastSeq)
	if err != nil {
		return catchUpResult{}, err
	}
	pa.acked[addr] = want
	pa.prune()
	return catchUpResult{replayed: replayed, watermark: watermark}, nil
}

// replayLog replays every logged batch above fromSeq to addr on conn,
// acked one by one. Caller holds pa.mu. Shared by log catch-up and the
// post-install tail replay of a snapshot resync.
func (r *Router) replayLog(ctx context.Context, conn net.Conn, addr string, pa *partIngestState, fromSeq uint64) (int, error) {
	replayed := 0
	for _, rec := range pa.log {
		if rec.seq <= fromSeq {
			continue
		}
		// Refresh the deadline per batch so a long replay doesn't trip
		// the ack timeout.
		_ = conn.SetDeadline(ackDeadline(ctx, r.opt.AckTimeout))
		if err := writeFrame(conn, frameAppend, rec.payload); err != nil {
			r.health.fault(addr)
			return replayed, err
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			r.health.fault(addr)
			return replayed, err
		}
		switch typ {
		case frameAppendAck:
			ack, err := decodeAppendAck(payload)
			if err != nil {
				return replayed, err
			}
			if ack.Seq != rec.seq {
				return replayed, fmt.Errorf("%w: replay ack for seq %d, want %d", ErrFrame, ack.Seq, rec.seq)
			}
		case frameError:
			code, msg, derr := decodeError(payload)
			if derr != nil {
				return replayed, derr
			}
			return replayed, &RemoteError{Addr: addr, Code: code, Msg: msg}
		default:
			return replayed, fmt.Errorf("%w: unexpected frame %q during replay", ErrFrame, typ)
		}
		replayed++
	}
	return replayed, nil
}

// Reconcile runs one health pass over every topology peer: probe each,
// and walk any reachable quarantined replica through catch-up (which
// escalates to snapshot resync when the log no longer covers its gap).
// A catch-up failure keeps the replica quarantined, counts in
// ResyncStats, and records the error against the peer for /stats. It
// returns the post-pass health map.
func (r *Router) Reconcile(ctx context.Context) map[string]HealthState {
	for _, addr := range r.topo.Nodes {
		if err := r.Probe(ctx, addr); err != nil {
			continue
		}
		if st := r.health.state(addr); st == Stale || st == Resyncing {
			if err := r.CatchUp(ctx, addr); err != nil {
				r.stats.catchUpErrors.Add(1)
				r.health.noteErr(addr, err)
			}
		}
	}
	return r.PeerHealth()
}

// StartHealthLoop runs Reconcile every interval until Close. Starting
// an already-running loop is a no-op.
func (r *Router) StartHealthLoop(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	r.loopMu.Lock()
	defer r.loopMu.Unlock()
	if r.loopStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.loopStop, r.loopDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				r.Reconcile(ctx)
				cancel()
			}
		}
	}()
}

// Close stops the health loop, if running.
func (r *Router) Close() error {
	r.loopMu.Lock()
	stop, done := r.loopStop, r.loopDone
	r.loopStop, r.loopDone = nil, nil
	r.loopMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return nil
}
