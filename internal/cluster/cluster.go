// Package cluster scales the engine past one machine: a router
// consistent-hashes each dataset's partitions across shard-server
// nodes, fans a compiled request out over length-prefixed frames on
// TCP, and merges the per-node top-K partials with the exact
// (score desc, ID asc) rule pinned by internal/topk — so node count,
// like shard count one layer down, changes wall-clock time only, never
// answers. The screening floor (topk.Bound) is piggybacked both ways on
// the partial-result streams: a hot node's floor prunes cold nodes'
// Onion layers and pyramid descents mid-flight (see DESIGN.md §9).
//
// This file is placement: a consistent-hash ring with virtual nodes
// mapping (dataset, partition) to a replica preference list. Placement
// is a pure function of the topology, so the router and every node
// compute identical layouts without coordination.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DataKind is the archive family a dataset belongs to; it decides both
// the partitioning strategy and which engine table serves it.
type DataKind int

// Archive families. Tuples, series and wells partition by contiguous
// index ranges (their per-item scores are independent, so partition
// top-Ks merge exactly). Scenes do not partition: raster queries are
// scene-global (pyramid descent, tile geometry), so a scene is homed
// whole on its first-preference node and replicated.
const (
	KindTuples DataKind = iota + 1
	KindSeries
	KindWells
	KindScene
)

// Partitioned reports whether datasets of this kind split across nodes.
func (k DataKind) Partitioned() bool { return k != KindScene }

// Topology is the cluster shape both router and nodes agree on. Nodes
// are dial addresses; order matters only for tie-free determinism of
// the ring, not for placement quality.
type Topology struct {
	Nodes []string
	// Replication is the number of nodes holding each partition
	// (primary + failover replicas). Values < 1 mean 1; values above
	// the node count are capped.
	Replication int
}

func (t Topology) replicas() int {
	r := t.Replication
	if r < 1 {
		r = 1
	}
	if r > len(t.Nodes) {
		r = len(t.Nodes)
	}
	return r
}

// Placement is one partition's home: the nodes holding it, primary
// first. The router tries them in order; a node ingests the partition
// if it appears anywhere in the list.
type Placement struct {
	Part  int
	Nodes []string
}

// vnodes is the virtual-node multiplier smoothing the ring. 64 keeps
// the max/min load ratio close to 1 for small clusters without making
// ring construction noticeable.
const vnodes = 64

type ringEntry struct {
	hash uint64
	node int // index into Topology.Nodes
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func (t Topology) ring() []ringEntry {
	ring := make([]ringEntry, 0, len(t.Nodes)*vnodes)
	for i, n := range t.Nodes {
		for v := 0; v < vnodes; v++ {
			ring = append(ring, ringEntry{hash64(n + "@" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		return ring[a].node < ring[b].node
	})
	return ring
}

// prefer walks the ring clockwise from key and returns the first r
// distinct nodes.
func prefer(ring []ringEntry, nodes []string, key string, r int) []string {
	out := make([]string, 0, r)
	seen := make(map[int]bool, r)
	h := hash64(key)
	start := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	for i := 0; i < len(ring) && len(out) < r; i++ {
		e := ring[(start+i)%len(ring)]
		if !seen[e.node] {
			seen[e.node] = true
			out = append(out, nodes[e.node])
		}
	}
	return out
}

// Layout maps a dataset to its partition placements: one partition per
// node for partitioned kinds (the fan-out width that keeps every
// machine busy), a single whole-dataset placement for scenes. The same
// function runs on the router (to route) and on every node (to decide
// what to ingest), so agreement is structural.
func (t Topology) Layout(dataset string, kind DataKind) []Placement {
	if len(t.Nodes) == 0 {
		return nil
	}
	parts := 1
	if kind.Partitioned() {
		parts = len(t.Nodes)
	}
	ring := t.ring()
	r := t.replicas()
	out := make([]Placement, parts)
	for p := range out {
		key := dataset + "#" + strconv.Itoa(p)
		out[p] = Placement{Part: p, Nodes: prefer(ring, t.Nodes, key, r)}
	}
	return out
}

// partRange returns partition p's half-open index range when n items
// split into `parts` contiguous ranges with sizes differing by at most
// one — the same rule core uses for shards, one level down.
func partRange(n, parts, p int) (lo, hi int) {
	base, rem := n/parts, n%parts
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// Assignment is one partition a specific node must ingest: the
// partition index plus the half-open item range it covers (Lo == Hi
// for kinds that do not partition, where the node takes the whole
// dataset).
type Assignment struct {
	Part   int
	Lo, Hi int
}

// Assignments lists the partitions of an n-item dataset that `self`
// holds under this topology.
func (t Topology) Assignments(self, dataset string, kind DataKind, n int) []Assignment {
	var out []Assignment
	for _, pl := range t.Layout(dataset, kind) {
		for _, node := range pl.Nodes {
			if node != self {
				continue
			}
			a := Assignment{Part: pl.Part}
			if kind.Partitioned() {
				a.Lo, a.Hi = partRange(n, len(t.Nodes), pl.Part)
			} else {
				a.Hi = n
			}
			out = append(out, a)
			break
		}
	}
	return out
}
