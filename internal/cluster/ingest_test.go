// Replicated-ingest pins: a cluster that grew its datasets through
// Router.Append — including one replica killed and recovered mid-stream
// — answers every query family bit-identically to a single-node engine
// that registered the full archives up front. Plus the fault matrix:
// quarantine on missed appends, catch-up re-admission, duplicate-append
// dedup (sequence cursor and client token), and read-path retry over a
// flaky transport.

package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelir/internal/core"
	"modelir/internal/synth"
)

// testRouterOptions shrinks the retry schedule so fault paths resolve
// in milliseconds.
func testRouterOptions() RouterOptions {
	return RouterOptions{
		DialTimeout:    2 * time.Second,
		AckTimeout:     5 * time.Second,
		ReadAttempts:   2,
		AppendAttempts: 2,
		RetryBase:      time.Millisecond,
		RetryMax:       8 * time.Millisecond,
	}
}

// tails is the last 20% of each appendable archive, fed through
// Router.Append after the cluster boots on the prefix.
type tails struct {
	tuples [][]float64
	series []synth.RegionSeries
	wells  []synth.WellLog
}

// splitFixtures cuts the fixtures at 80%: the prefix boots the nodes,
// the tails arrive live. Scenes are not appendable and stay whole.
func splitFixtures(f fixtures) (fixtures, tails) {
	tc, sc, wc := len(f.pts)*4/5, len(f.arch)*4/5, len(f.wells)*4/5
	pre := f
	pre.pts = f.pts[:tc]
	pre.arch = f.arch[:sc]
	pre.wells = f.wells[:wc]
	return pre, tails{tuples: f.pts[tc:], series: f.arch[sc:], wells: f.wells[wc:]}
}

// startIngestCluster is startCluster with a configurable router and the
// node list returned alongside the addresses, for kill/recover tests.
func startIngestCluster(t *testing.T, count, shards, replication int, f fixtures, opt NodeOptions, ropt RouterOptions) (*Router, []*Node, []string) {
	t.Helper()
	opt.Shards = shards
	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: replication}
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = NewNode(addrs[i], topo, opt)
		ingest(t, nodes[i], f)
		nodes[i].ServeListener(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	r := NewRouterWith(topo, ropt)
	t.Cleanup(func() { r.Close() })
	return r, nodes, addrs
}

// appendTails streams every tail through the router in small batches,
// the way live clients would.
func appendTails(t *testing.T, r *Router, tl tails) {
	t.Helper()
	ctx := context.Background()
	for lo := 0; lo < len(tl.tuples); lo += 400 {
		hi := min(lo+400, len(tl.tuples))
		if _, err := r.Append(ctx, AppendRequest{Dataset: "gauss", Tuples: tl.tuples[lo:hi]}); err != nil {
			t.Fatalf("append tuples [%d:%d): %v", lo, hi, err)
		}
	}
	for lo := 0; lo < len(tl.series); lo += 4 {
		hi := min(lo+4, len(tl.series))
		if _, err := r.Append(ctx, AppendRequest{Dataset: "weather", Series: tl.series[lo:hi]}); err != nil {
			t.Fatalf("append series [%d:%d): %v", lo, hi, err)
		}
	}
	for lo := 0; lo < len(tl.wells); lo += 3 {
		hi := min(lo+3, len(tl.wells))
		if _, err := r.Append(ctx, AppendRequest{Dataset: "basin", Wells: tl.wells[lo:hi]}); err != nil {
			t.Fatalf("append wells [%d:%d): %v", lo, hi, err)
		}
	}
}

// runSix runs the family matrix against the router and compares every
// family bit-for-bit to the reference.
func runSix(t *testing.T, label string, r *Router, reqs map[string]Request, want map[string]core.Result) {
	t.Helper()
	for name, rq := range reqs {
		res, err := r.Run(context.Background(), rq)
		if err != nil {
			t.Fatalf("%s %s: %v", label, name, err)
		}
		itemsEqual(t, label+" "+name, res.Items, want[name].Items)
	}
}

// TestClusterIngestEquivalence is the tentpole pin: clusters that boot
// on an 80% prefix and receive the remaining 20% through replicated
// Router.Append answer every family bit-identically to a single-node
// engine built from the full archives — across node counts 1/2/3 and
// per-node shard counts 1/4/7.
func TestClusterIngestEquivalence(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)

	for _, nodes := range []int{1, 2, 3} {
		for _, shards := range []int{1, 4, 7} {
			rep := 1
			if nodes > 1 {
				rep = 2
			}
			router, _, _ := startIngestCluster(t, nodes, shards, rep, pre, NodeOptions{}, testRouterOptions())
			appendTails(t, router, tl)
			runSix(t, "ingest", router, reqs, want)
		}
	}
}

// TestClusterIngestKillRecover is the mid-stream fault cycle: one
// replica killed under live ingest is quarantined while reads keep
// serving bit-identical answers from the survivor; after the process
// recovers, catch-up replays its missed batches and the cluster answers
// bit-identically FROM THE RECOVERED REPLICA (the survivor is killed to
// prove it).
func TestClusterIngestKillRecover(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	ctx := context.Background()

	// Replication 2 over 2 nodes: every partition lives on both, so
	// either node alone can answer everything.
	router, nodes, addrs := startIngestCluster(t, 2, 4, 2, pre, NodeOptions{}, testRouterOptions())

	// Some appends land while both replicas are up...
	half := tails{tuples: tl.tuples[:len(tl.tuples)/2], series: tl.series[:len(tl.series)/2], wells: tl.wells[:len(tl.wells)/2]}
	rest := tails{tuples: tl.tuples[len(tl.tuples)/2:], series: tl.series[len(tl.series)/2:], wells: tl.wells[len(tl.wells)/2:]}
	appendTails(t, router, half)

	// ...then a replica dies and the rest arrive. Appends must succeed
	// (the survivor acks) and the victim must be quarantined.
	nodes[1].Kill()
	res, err := router.Append(ctx, AppendRequest{Dataset: "gauss", Tuples: rest.tuples[:100]})
	if err != nil {
		t.Fatalf("append with one replica down: %v", err)
	}
	quarantined := false
	for _, a := range res.Quarantined {
		if a == addrs[1] {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("killed replica %s not quarantined (got %v)", addrs[1], res.Quarantined)
	}
	if st := router.PeerHealth()[addrs[1]]; st != Stale {
		t.Fatalf("killed replica health = %v, want stale", st)
	}
	appendTails(t, router, tails{tuples: rest.tuples[100:], series: rest.series, wells: rest.wells})

	// Reads during the outage: bit-identical from the survivor, and the
	// quarantined replica is never consulted (it could not be — its
	// listener is closed — but health must not even try).
	runSix(t, "outage", router, reqs, want)
	if st := router.PeerHealth()[addrs[1]]; st != Stale {
		t.Fatalf("replica health after outage reads = %v, want stale (reads must not touch it)", st)
	}

	// Recovery: the node comes back on its address, a reconcile pass
	// probes it and replays its missed batches, and it rejoins healthy.
	if err := nodes[1].Serve(addrs[1]); err != nil {
		t.Fatalf("recover node: %v", err)
	}
	health := router.Reconcile(ctx)
	if health[addrs[1]] != Healthy {
		t.Fatalf("recovered replica health = %v, want healthy", health[addrs[1]])
	}

	// Kill the survivor: every partition must now be served by the
	// recovered replica, and the answers must still be bit-identical —
	// the catch-up replay was exact.
	nodes[0].Kill()
	runSix(t, "recovered", router, reqs, want)
}

// TestClusterIngestKillMidAppend drives the sharpest fault: the replica
// dies between decoding an append and acking it. The router cannot know
// whether the batch applied; quarantine plus idempotent catch-up replay
// must reconcile either way.
func TestClusterIngestKillMidAppend(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	ctx := context.Background()

	// Only the victim carries the hook, and it arms after boot: the
	// first append the victim decodes kills it — its connections sever
	// after the batch is in hand but before the ack can be written, the
	// exact window where the router cannot know whether it applied.
	var victim atomic.Pointer[Node]
	var once sync.Once
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: 2}
	opts := []NodeOptions{
		{Shards: 4},
		{Shards: 4, BeforeAppend: func(string, int, uint64) {
			if v := victim.Load(); v != nil {
				once.Do(v.Kill)
			}
		}},
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i] = NewNode(addrs[i], topo, opts[i])
		ingest(t, nodes[i], pre)
		nodes[i].ServeListener(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	router := NewRouterWith(topo, testRouterOptions())
	t.Cleanup(func() { router.Close() })
	victim.Store(nodes[1])

	res, err := router.Append(ctx, AppendRequest{Dataset: "gauss", Tuples: tl.tuples[:200]})
	if err != nil {
		t.Fatalf("append through mid-append kill: %v", err)
	}
	found := false
	for _, a := range res.Quarantined {
		if a == addrs[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid-append victim %s not quarantined (got %v)", addrs[1], res.Quarantined)
	}
	victim.Store(nil)
	appendTails(t, router, tails{tuples: tl.tuples[200:], series: tl.series, wells: tl.wells})
	runSix(t, "mid-append outage", router, reqs, want)

	if err := nodes[1].Serve(addrs[1]); err != nil {
		t.Fatalf("recover node: %v", err)
	}
	if health := router.Reconcile(ctx); health[addrs[1]] != Healthy {
		t.Fatalf("recovered replica health = %v, want healthy", health[addrs[1]])
	}
	nodes[0].Kill()
	runSix(t, "mid-append recovered", router, reqs, want)
}

// TestClusterIngestAllReplicasDown pins the typed error: when every
// replica of the owning partition is gone, Append fails with
// ErrPartitionUnavailable (and the batch stays logged for catch-up).
func TestClusterIngestAllReplicasDown(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	router, nodes, _ := startIngestCluster(t, 1, 2, 1, pre, NodeOptions{}, testRouterOptions())

	// Sync ingest state while the node is alive, then kill it.
	if _, err := router.Append(context.Background(), AppendRequest{Dataset: "gauss", Tuples: tl.tuples[:10]}); err != nil {
		t.Fatal(err)
	}
	nodes[0].Kill()
	_, err := router.Append(context.Background(), AppendRequest{Dataset: "gauss", Tuples: tl.tuples[10:20]})
	if !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("err = %v, want ErrPartitionUnavailable", err)
	}
}

// TestClusterIngestTokenDedup pins client-retry idempotency: a retried
// append carrying the same token returns the recorded outcome and adds
// no rows.
func TestClusterIngestTokenDedup(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	ctx := context.Background()

	router, _, _ := startIngestCluster(t, 2, 4, 2, pre, NodeOptions{}, testRouterOptions())
	req := AppendRequest{Dataset: "gauss", Tuples: tl.tuples[:150], Token: "client-retry-1"}
	first, err := router.Append(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Duplicate {
		t.Fatal("first append reported Duplicate")
	}
	retry, err := router.Append(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !retry.Duplicate || retry.Seq != first.Seq || retry.Part != first.Part {
		t.Fatalf("retry = %+v, want duplicate of %+v", retry, first)
	}

	// The remaining rows complete the archives; if the token replay had
	// appended twice, the extra rows would shift every family's answers.
	appendTails(t, router, tails{tuples: tl.tuples[150:], series: tl.series, wells: tl.wells})
	runSix(t, "token-dedup", router, reqs, want)
}

// TestNodeAppendSeqDedup pins the node-side cursor: re-delivering an
// applied sequence number is a duplicate no-op, and skipping ahead is a
// refused gap.
func TestNodeAppendSeqDedup(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	_, nodes, _ := startIngestCluster(t, 1, 1, 1, pre, NodeOptions{}, testRouterOptions())
	n := nodes[0]
	ctx := context.Background()
	base := int64(len(pre.pts))

	batch := AppendBatch{Dataset: "gauss", Part: 0, Seq: 1, Base: base, Tuples: tl.tuples[:50]}
	if dup, _, err := n.AppendRows(ctx, batch); err != nil || dup {
		t.Fatalf("first delivery: dup=%v err=%v", dup, err)
	}
	if dup, _, err := n.AppendRows(ctx, batch); err != nil || !dup {
		t.Fatalf("re-delivery: dup=%v err=%v, want dup", dup, err)
	}
	gap := AppendBatch{Dataset: "gauss", Part: 0, Seq: 5, Base: base + 50, Tuples: tl.tuples[50:60]}
	if _, _, err := n.AppendRows(ctx, gap); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap err = %v, want ErrSeqGap", err)
	}

	// The duplicate added nothing: the dataset holds exactly base+50
	// logical rows.
	for _, ds := range n.eng.Datasets() {
		if ds.Kind == "tuples" && int64(ds.Rows) != base+50 {
			t.Fatalf("rows = %d, want %d", ds.Rows, base+50)
		}
	}
}

// flakyProxy fronts a node and drops the first `drops` connections cold
// — the shape of a flaky network path — then pipes transparently.
func flakyProxy(t *testing.T, backend string, drops int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var remaining atomic.Int32
	remaining.Store(drops)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if remaining.Add(-1) >= 0 {
				c.Close()
				continue
			}
			go func(c net.Conn) {
				b, err := net.Dial("tcp", backend)
				if err != nil {
					c.Close()
					return
				}
				go func() {
					_, _ = io.Copy(b, c)
					b.Close()
				}()
				_, _ = io.Copy(c, b)
				c.Close()
				b.Close()
			}(c)
		}
	}()
	return ln.Addr().String()
}

// TestClusterReadRetryFlakyTransport pins the read-path retry: a
// replica whose first connection attempts fail cold is retried with
// backoff within ReadAttempts and still answers; a replica that never
// accepts exhausts the attempts into ErrPartitionUnavailable.
func TestClusterReadRetryFlakyTransport(t *testing.T) {
	pts, err := synth.GaussianTuples(51, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	realLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxyAddr := flakyProxy(t, realLn.Addr().String(), 2)

	topo := Topology{Nodes: []string{proxyAddr}, Replication: 1}
	n := NewNode(proxyAddr, topo, NodeOptions{Shards: 2})
	if err := n.AddTuples("gauss", pts); err != nil {
		t.Fatal(err)
	}
	n.ServeListener(realLn)
	t.Cleanup(n.Close)

	rq := familyRequests(t, fixtures{pts: pts})["linear"]
	ropt := testRouterOptions()
	ropt.ReadAttempts = 3 // two drops, third connection lands
	r := NewRouterWith(topo, ropt)
	res, err := r.Run(context.Background(), rq)
	if err != nil {
		t.Fatalf("read through flaky transport: %v", err)
	}

	e := core.NewEngineWith(core.Options{Shards: 1})
	if err := e.AddTuples("gauss", pts); err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(context.Background(), core.Request{Dataset: "gauss", Query: rq.Query, K: rq.K})
	if err != nil {
		t.Fatal(err)
	}
	itemsEqual(t, "flaky-read", res.Items, want.Items)

	// A path that drops everything exhausts ReadAttempts and fails typed.
	deadAddr := flakyProxy(t, realLn.Addr().String(), 1<<30)
	deadTopo := Topology{Nodes: []string{deadAddr}, Replication: 1}
	dr := NewRouterWith(deadTopo, ropt)
	if _, err := dr.Run(context.Background(), Request{Dataset: "gauss", Query: rq.Query, K: rq.K}); !errors.Is(err, ErrPartitionUnavailable) {
		t.Fatalf("err = %v, want ErrPartitionUnavailable", err)
	}
}
