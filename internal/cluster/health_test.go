// Unit pins for the per-peer health state machine: escalation from
// transport faults, recovery on success, the stickiness of quarantine,
// and the single road out of it.

package cluster

import "testing"

func TestHealthFaultEscalation(t *testing.T) {
	h := newHealthTracker()
	const addr = "peer:1"

	if got := h.state(addr); got != Healthy {
		t.Fatalf("unknown peer = %v, want healthy", got)
	}
	h.fault(addr)
	if got := h.state(addr); got != Suspect {
		t.Fatalf("after 1 fault = %v, want suspect", got)
	}
	if !h.servable(addr) {
		t.Fatal("suspect peer must stay servable")
	}
	h.fault(addr)
	if got := h.state(addr); got != Suspect {
		t.Fatalf("after 2 faults = %v, want suspect", got)
	}
	h.fault(addr)
	if got := h.state(addr); got != Down {
		t.Fatalf("after %d faults = %v, want down", downAfterFaults, got)
	}
	if h.servable(addr) || h.appendable(addr) {
		t.Fatal("down peer must be skipped on both paths")
	}
	h.ok(addr)
	if got := h.state(addr); got != Healthy {
		t.Fatalf("after recovery = %v, want healthy", got)
	}

	// The fault counter resets on success: one new fault is Suspect
	// again, not Down.
	h.fault(addr)
	if got := h.state(addr); got != Suspect {
		t.Fatalf("fresh fault after recovery = %v, want suspect", got)
	}
}

func TestHealthQuarantineIsSticky(t *testing.T) {
	h := newHealthTracker()
	const addr = "peer:1"

	for _, from := range []HealthState{Healthy, Suspect, Down} {
		h2 := newHealthTracker()
		switch from {
		case Suspect:
			h2.fault(addr)
		case Down:
			for i := 0; i < downAfterFaults; i++ {
				h2.fault(addr)
			}
		}
		h2.missedAppend(addr)
		if got := h2.state(addr); got != Stale {
			t.Fatalf("missedAppend from %v = %v, want stale", from, got)
		}
	}

	h.missedAppend(addr)
	// Reachability proofs must not clear quarantine...
	h.ok(addr)
	if got := h.state(addr); got != Stale {
		t.Fatalf("ok on stale = %v, want stale (reachability is not consistency)", got)
	}
	h.fault(addr)
	if got := h.state(addr); got != Stale {
		t.Fatalf("fault on stale = %v, want stale", got)
	}
	if h.servable(addr) || h.appendable(addr) {
		t.Fatal("stale peer must be excluded from reads and appends")
	}
	// ...only catch-up does, and only at an unmoved quarantine
	// generation: a lift with a gen sampled before another miss is
	// refused (the lost-update race between verify and re-admission).
	staleGen := h.quarantineGen(addr)
	h.missedAppend(addr)
	if h.caughtUp(addr, staleGen) {
		t.Fatal("caughtUp with a stale generation must refuse the lift")
	}
	if got := h.state(addr); got != Stale {
		t.Fatalf("after refused lift = %v, want stale", got)
	}
	if !h.caughtUp(addr, h.quarantineGen(addr)) {
		t.Fatal("caughtUp with the current generation must lift")
	}
	if got := h.state(addr); got != Healthy {
		t.Fatalf("after catch-up = %v, want healthy", got)
	}
}

func TestHealthCaughtUpOnlyLiftsStale(t *testing.T) {
	h := newHealthTracker()
	const addr = "peer:1"
	for i := 0; i < downAfterFaults; i++ {
		h.fault(addr)
	}
	h.caughtUp(addr, h.quarantineGen(addr))
	if got := h.state(addr); got != Down {
		t.Fatalf("caughtUp on down peer = %v, want down (it proved nothing)", got)
	}
}

func TestHealthSnapshotAndStrings(t *testing.T) {
	h := newHealthTracker()
	h.fault("a")
	h.missedAppend("b")
	snap := h.snapshot()
	if snap["a"] != Suspect || snap["b"] != Stale {
		t.Fatalf("snapshot = %v", snap)
	}
	want := map[HealthState]string{Healthy: "healthy", Suspect: "suspect", Down: "down", Stale: "stale", Resyncing: "resyncing"}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}
