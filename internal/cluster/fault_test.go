// Fault injection: nodes killed mid-query and clients disconnecting
// mid-fan-out. The BeforeExec hook fires with the query decoded and the
// connection reader live, so faults triggered inside it land at a
// deterministic point of the exchange.

package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"modelir/internal/core"
	"modelir/internal/linear"
)

func linearRequest(t *testing.T) Request {
	t.Helper()
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Dataset: "gauss", Query: core.LinearQuery{Model: lm}, K: 12}
}

// holders returns the nodes holding a non-empty partition of dataset.
func holders(nodes []*Node, dataset string) []*Node {
	var out []*Node
	for _, n := range nodes {
		n.mu.Lock()
		for _, e := range n.parts[dataset] {
			if e.local != "" {
				out = append(out, n)
				break
			}
		}
		n.mu.Unlock()
	}
	return out
}

// TestNodeKillNoReplica pins the failure mode: a node dying mid-query
// with no replica yields a clean typed error, not a hang and not a
// silent partial answer.
func TestNodeKillNoReplica(t *testing.T) {
	f := buildFixtures(t)
	router, nodes := startCluster(t, 2, 2, 1, f, NodeOptions{})
	victims := holders(nodes, "gauss")
	if len(victims) == 0 {
		t.Fatal("no node holds gauss")
	}
	victim := victims[0]
	var once sync.Once
	victim.opt.BeforeExec = func(dataset string, part int) {
		once.Do(victim.Kill)
	}

	done := make(chan error, 1)
	go func() {
		_, err := router.Run(context.Background(), linearRequest(t))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPartitionUnavailable) {
			t.Fatalf("err = %v, want ErrPartitionUnavailable", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("query hung after node kill")
	}
}

// TestNodeKillFailover pins the replicated path: the primary dying
// mid-query fails over to the replica and the merged result stays
// bit-identical to the single-node reference.
func TestNodeKillFailover(t *testing.T) {
	f := buildFixtures(t)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)

	router, nodes := startCluster(t, 2, 2, 2, f, NodeOptions{})
	victims := holders(nodes, "gauss")
	if len(victims) < 2 {
		t.Fatalf("replication 2 should put gauss on both nodes, got %d", len(victims))
	}
	victim := victims[0]
	var once sync.Once
	victim.opt.BeforeExec = func(dataset string, part int) {
		once.Do(victim.Kill)
	}

	res, err := router.Run(context.Background(), reqs["linear"])
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	itemsEqual(t, "failover result", res.Items, want["linear"].Items)
}

// TestCancelAbortsRemoteFanout proves a client disconnect propagates
// over the wire: the router's context cancellation reaches the node as
// a cancel frame (or severed connection) and aborts remote execution.
// The BeforeExec gate blocks the node mid-query until the cancellation
// has been delivered, so the node observes it deterministically.
func TestCancelAbortsRemoteFanout(t *testing.T) {
	f := buildFixtures(t)
	router, nodes := startCluster(t, 2, 2, 1, f, NodeOptions{})
	victims := holders(nodes, "gauss")
	if len(victims) == 0 {
		t.Fatal("no node holds gauss")
	}
	victim := victims[0]

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	victim.opt.BeforeExec = func(dataset string, part int) {
		started <- struct{}{}
		<-release
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := router.Run(ctx, linearRequest(t))
		done <- err
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("node never started executing")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not observe cancellation")
	}
	close(release)

	// The node's handler, released, starts RunShared with its context
	// already cancelled and counts the query as cancelled.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, cancelled, _ := victim.Stats(); cancelled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node never counted the cancelled query")
		}
		time.Sleep(time.Millisecond)
	}
}
