// Robustness pins for snapshot resync and router crash recovery:
// (1) a replica whose missed batches were force-pruned from the append
// log is repaired by a donor snapshot transfer with no operator action,
// (2) a router restart mid-ingest re-learns cursors, acked floors, and
// the global row watermark — never reusing a global ID range and never
// assuming an unreachable replica current — and (3) a seeded chaos
// matrix interleaving kills, recoveries, appends, queries, and router
// restarts always converges to all-healthy, bit-identical answers.

package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelir/internal/core"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

// TestClusterResyncAfterLogPruned is the tentpole pin: with a tiny log
// cap, every batch appended during a replica's outage is force-pruned
// the moment the survivor acks it, so log replay cannot repair the
// replica — a reconcile pass must walk it through the snapshot resync
// path and lift the quarantine without any operator action, and the
// repaired replica must then answer every family bit-identically on
// its own.
func TestClusterResyncAfterLogPruned(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	ctx := context.Background()

	ropt := testRouterOptions()
	ropt.MaxLogBytes = 2048 // any real batch outlives the cap once acked
	router, nodes, addrs := startIngestCluster(t, 2, 4, 2, pre, NodeOptions{}, ropt)

	half := tails{tuples: tl.tuples[:len(tl.tuples)/2], series: tl.series[:len(tl.series)/2], wells: tl.wells[:len(tl.wells)/2]}
	rest := tails{tuples: tl.tuples[len(tl.tuples)/2:], series: tl.series[len(tl.series)/2:], wells: tl.wells[len(tl.wells)/2:]}
	appendTails(t, router, half)

	nodes[1].Kill()
	appendTails(t, router, rest)
	if st := router.PeerHealth()[addrs[1]]; st != Stale {
		t.Fatalf("killed replica health = %v, want stale", st)
	}
	if fp := router.ResyncStats().ForcedPrunes; fp == 0 {
		t.Fatal("tiny log cap produced no forced prunes — the scenario is not exercising resync")
	}

	// Recovery: one reconcile pass must escalate through resync and
	// re-admit the replica — no manual snapshot copy, no operator step.
	if err := nodes[1].Serve(addrs[1]); err != nil {
		t.Fatalf("recover node: %v", err)
	}
	health := router.Reconcile(ctx)
	if health[addrs[1]] != Healthy {
		t.Fatalf("recovered replica health = %v, want healthy (errors: %v)",
			health[addrs[1]], router.PeerErrors())
	}
	st := router.ResyncStats()
	if st.Resyncs == 0 || st.BytesStreamed == 0 || st.Partitions == 0 {
		t.Fatalf("resync stats = %+v, want nonzero resyncs/bytes/partitions", st)
	}

	// The survivor dies: every answer must now come from the resynced
	// replica, bit-identical — the snapshot install plus tail replay
	// reconstructed its state exactly.
	nodes[0].Kill()
	runSix(t, "post-resync", router, reqs, want)
}

// TestRouterRestartMidIngest pins crash recovery: the router dies
// between a batch's surviving-replica ack and the missed replica's
// repair. A fresh router must re-learn the sequence floors and global
// watermark from the reachable replica, quarantine the unreachable one
// rather than assume it current, keep appending without reusing a
// global ID range, and repair the replica once it returns — ending
// bit-identical.
func TestRouterRestartMidIngest(t *testing.T) {
	f := buildFixtures(t)
	pre, tl := splitFixtures(f)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	ctx := context.Background()

	// The victim dies mid-append once armed: batch decoded, no ack —
	// the window where only the survivor holds the batch.
	var victim atomic.Pointer[Node]
	var once sync.Once
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: 2}
	opts := []NodeOptions{
		{Shards: 4},
		{Shards: 4, BeforeAppend: func(string, int, uint64) {
			if v := victim.Load(); v != nil {
				once.Do(v.Kill)
			}
		}},
	}
	nodes := make([]*Node, 2)
	for i := range nodes {
		nodes[i] = NewNode(addrs[i], topo, opts[i])
		ingest(t, nodes[i], pre)
		nodes[i].ServeListener(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})

	router1 := NewRouterWith(topo, testRouterOptions())
	half := tails{tuples: tl.tuples[:len(tl.tuples)/2], series: tl.series[:len(tl.series)/2], wells: tl.wells[:len(tl.wells)/2]}
	rest := tails{tuples: tl.tuples[len(tl.tuples)/2:], series: tl.series[len(tl.series)/2:], wells: tl.wells[len(tl.wells)/2:]}
	appendTails(t, router1, half)

	// Arm the kill; this batch lands on the survivor only.
	victim.Store(nodes[1])
	if _, err := router1.Append(ctx, AppendRequest{Dataset: "gauss", Tuples: rest.tuples[:100]}); err != nil {
		t.Fatalf("append through mid-append kill: %v", err)
	}
	victim.Store(nil)
	seqsBefore := router1.AppendSeqs()

	// The router crashes here: its append log — which held the batch the
	// victim missed — is gone with it.
	router1.Close()

	router2 := NewRouterWith(topo, testRouterOptions())
	t.Cleanup(func() { router2.Close() })
	if err := router2.SyncIngest(ctx); err != nil {
		t.Fatalf("ingest sync on restarted router: %v", err)
	}
	// The unreachable replica must be quarantined, not assumed current:
	// serving it would return answers missing the in-flight batch, and
	// pruning ahead of it would strand it forever.
	if st := router2.PeerHealth()[addrs[1]]; st != Stale {
		t.Fatalf("unreachable replica after router restart = %v, want stale", st)
	}
	// Sequence floors re-learned from the survivor match the old
	// router's last assignments exactly.
	seqsAfter := router2.AppendSeqs()
	for ds, parts := range seqsBefore {
		for part, seq := range parts {
			if got := seqsAfter[ds][part]; got != seq {
				t.Fatalf("re-learned %q part %d seq = %d, want %d", ds, part, got, seq)
			}
		}
	}

	// New appends through the restarted router: the re-derived global
	// watermark means no tuple ID range is reused — proven bit-for-bit
	// by the final comparison.
	appendTails(t, router2, tails{tuples: rest.tuples[100:], series: rest.series, wells: rest.wells})

	// The victim returns; reconcile must repair it (the missed batch is
	// not in router2's log, so this exercises resync) and re-admit it.
	if err := nodes[1].Serve(addrs[1]); err != nil {
		t.Fatalf("recover node: %v", err)
	}
	healthy := false
	for i := 0; i < 100 && !healthy; i++ {
		healthy = router2.Reconcile(ctx)[addrs[1]] == Healthy
		if !healthy {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !healthy {
		t.Fatalf("victim never re-admitted after router restart (errors: %v)", router2.PeerErrors())
	}

	// Answers from the repaired replica alone are bit-identical: no ID
	// was reused, no batch lost, across the router generations.
	nodes[0].Kill()
	runSix(t, "router-restart", router2, reqs, want)
}

// ---- chaos matrix ----

// chaosFixtures is a smaller archive set than the harness fixtures —
// the chaos matrix boots dozens of clusters, so per-boot cost matters.
// Scenes are omitted: they are not appendable and static reads are
// covered elsewhere.
type chaosFixtures struct {
	pts   [][]float64
	arch  []synth.RegionSeries
	wells []synth.WellLog
}

func buildChaosFixtures(t *testing.T) chaosFixtures {
	t.Helper()
	var f chaosFixtures
	var err error
	if f.pts, err = synth.GaussianTuples(61, 1600, 3); err != nil {
		t.Fatal(err)
	}
	if f.arch, err = synth.WeatherArchive(synth.WeatherConfig{Seed: 62, Regions: 18, Days: 120}); err != nil {
		t.Fatal(err)
	}
	if f.wells, _, err = synth.WellArchive(synth.WellConfig{Seed: 63, Wells: 12}); err != nil {
		t.Fatal(err)
	}
	return f
}

func chaosRequests(t *testing.T) map[string]Request {
	t.Helper()
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Request{
		"linear": {Dataset: "gauss", Query: core.LinearQuery{Model: lm}, K: 10},
		"fsm": {Dataset: "weather", Query: core.FSMQuery{
			Machine: fsm.FireAnts(), Prefilter: core.FireAntsPrefilter}, K: 10},
		"fsm-dist": {Dataset: "weather", Query: core.FSMDistanceQuery{
			Target: fsm.FireAnts(), Horizon: 6}, K: 10},
		"geology": {Dataset: "basin", Query: core.GeologyQuery{
			Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
			MaxGapFt: 10,
			MinGamma: 45,
		}, K: 10},
	}
}

// chaosWorld is one seed's cluster plus the single-role reference
// engine that mirrors every successful append — queries must match it
// bit-for-bit at any quiet point.
type chaosWorld struct {
	t      *testing.T
	rng    *rand.Rand
	f      chaosFixtures
	topo   Topology
	ropt   RouterOptions
	nodes  []*Node
	addrs  []string
	router *Router
	ref    *core.Engine
	reqs   map[string]Request
	// pool cursors wrap: both sides append the same rows, so content
	// equality holds regardless of repetition.
	ptPos, arPos, wlPos int
	dead                int // index of the one allowed dead node, -1 if none
}

// chaosBoot starts 3 nodes at replication 2 with a deliberately tiny
// append-log cap, so outage-time appends are force-pruned and recovery
// must take the snapshot-resync path.
func chaosBoot(t *testing.T, rng *rand.Rand, f chaosFixtures) *chaosWorld {
	t.Helper()
	const count = 3
	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: 2}
	boot := chaosFixtures{
		pts:   f.pts[:len(f.pts)/2],
		arch:  f.arch[:len(f.arch)/2],
		wells: f.wells[:len(f.wells)/2],
	}
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = NewNode(addrs[i], topo, NodeOptions{Shards: 2})
		if err := nodes[i].AddTuples("gauss", boot.pts); err != nil {
			t.Fatal(err)
		}
		if err := nodes[i].AddSeries("weather", boot.arch); err != nil {
			t.Fatal(err)
		}
		if err := nodes[i].AddWells("basin", boot.wells); err != nil {
			t.Fatal(err)
		}
		nodes[i].ServeListener(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})

	ref := core.NewEngineWith(core.Options{Shards: 1})
	if err := ref.AddTuples("gauss", boot.pts); err != nil {
		t.Fatal(err)
	}
	if err := ref.AddSeries("weather", boot.arch); err != nil {
		t.Fatal(err)
	}
	if err := ref.AddWells("basin", boot.wells); err != nil {
		t.Fatal(err)
	}

	ropt := testRouterOptions()
	ropt.MaxLogBytes = 2048
	w := &chaosWorld{
		t: t, rng: rng, f: f, topo: topo, ropt: ropt,
		nodes: nodes, addrs: addrs, ref: ref, reqs: chaosRequests(t),
		dead: -1,
	}
	w.router = NewRouterWith(topo, ropt)
	t.Cleanup(func() { w.router.Close() })
	return w
}

// appendRandom pushes one small batch of a random kind through the
// router and mirrors it into the reference engine. Appends must always
// succeed: at most one node is dead and every partition has two
// replicas.
func (w *chaosWorld) appendRandom() {
	w.t.Helper()
	ctx := context.Background()
	switch w.rng.Intn(3) {
	case 0:
		rows := make([][]float64, 0, 40)
		for i := 0; i < 40; i++ {
			rows = append(rows, w.f.pts[w.ptPos])
			w.ptPos = (w.ptPos + 1) % len(w.f.pts)
		}
		if _, err := w.router.Append(ctx, AppendRequest{Dataset: "gauss", Tuples: rows}); err != nil {
			w.t.Fatalf("chaos append tuples: %v", err)
		}
		if err := w.ref.AppendTuples("gauss", rows); err != nil {
			w.t.Fatal(err)
		}
	case 1:
		rs := make([]synth.RegionSeries, 0, 2)
		for i := 0; i < 2; i++ {
			rs = append(rs, w.f.arch[w.arPos])
			w.arPos = (w.arPos + 1) % len(w.f.arch)
		}
		if _, err := w.router.Append(ctx, AppendRequest{Dataset: "weather", Series: rs}); err != nil {
			w.t.Fatalf("chaos append series: %v", err)
		}
		if err := w.ref.AppendSeries("weather", rs); err != nil {
			w.t.Fatal(err)
		}
	default:
		ws := make([]synth.WellLog, 0, 2)
		for i := 0; i < 2; i++ {
			ws = append(ws, w.f.wells[w.wlPos])
			w.wlPos = (w.wlPos + 1) % len(w.f.wells)
		}
		if _, err := w.router.Append(ctx, AppendRequest{Dataset: "basin", Wells: ws}); err != nil {
			w.t.Fatalf("chaos append wells: %v", err)
		}
		if err := w.ref.AppendWells("basin", ws); err != nil {
			w.t.Fatal(err)
		}
	}
}

// compare runs the named families against the cluster and the reference
// and requires bit-identical items.
func (w *chaosWorld) compare(label string, names ...string) {
	w.t.Helper()
	for _, name := range names {
		rq := w.reqs[name]
		got, err := w.router.Run(context.Background(), rq)
		if err != nil {
			w.t.Fatalf("%s %s: %v", label, name, err)
		}
		want, err := w.ref.Run(context.Background(), core.Request{Dataset: rq.Dataset, Query: rq.Query, K: rq.K})
		if err != nil {
			w.t.Fatalf("%s %s reference: %v", label, name, err)
		}
		itemsEqual(w.t, label+" "+name, got.Items, want.Items)
	}
}

// reconcileAllHealthy drives Reconcile until every peer is Healthy,
// bounded. This is the convergence claim under test: from any reachable
// state the cluster must return to all-healthy without operator action.
func (w *chaosWorld) reconcileAllHealthy(label string) {
	w.t.Helper()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		all := true
		for _, st := range w.router.Reconcile(ctx) {
			if st != Healthy {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.t.Fatalf("%s: cluster never converged to all-healthy: %v (errors: %v)",
		label, w.router.PeerHealth(), w.router.PeerErrors())
}

// familyNames returns all chaos families in deterministic order.
func (w *chaosWorld) familyNames() []string {
	return []string{"linear", "fsm", "fsm-dist", "geology"}
}

// runChaosSeed plays one seeded interleaving of appends, queries,
// kills, recoveries, and router restarts, then proves convergence: the
// cluster returns to all-healthy and every node alone answers every
// family bit-identically to the reference.
func runChaosSeed(t *testing.T, seed int64, f chaosFixtures, ops int) {
	rng := rand.New(rand.NewSource(seed))
	w := chaosBoot(t, rng, f)
	ctx := context.Background()

	for op := 0; op < ops; op++ {
		switch pick := rng.Intn(100); {
		case pick < 40:
			w.appendRandom()
		case pick < 60:
			names := w.familyNames()
			w.compare(fmt.Sprintf("op%d", op), names[rng.Intn(len(names))])
		case pick < 72:
			// Kill — only from an all-healthy converged state, so every
			// partition keeps a current replica and appends never fail.
			if w.dead != -1 {
				continue
			}
			w.reconcileAllHealthy(fmt.Sprintf("op%d pre-kill", op))
			w.dead = rng.Intn(len(w.nodes))
			w.nodes[w.dead].Kill()
		case pick < 86:
			if w.dead == -1 {
				continue
			}
			if err := w.nodes[w.dead].Serve(w.addrs[w.dead]); err != nil {
				t.Fatalf("op%d recover: %v", op, err)
			}
			w.dead = -1
			w.reconcileAllHealthy(fmt.Sprintf("op%d post-recover", op))
		default:
			// Router restart: the append log and all health knowledge die
			// with the old instance; the new one must resync its world
			// view before accepting traffic.
			w.router.Close()
			w.router = NewRouterWith(w.topo, w.ropt)
			if err := w.router.SyncIngest(ctx); err != nil {
				t.Fatalf("op%d router restart sync: %v", op, err)
			}
		}
	}

	// Terminal convergence: recover anything dead, reconcile to
	// all-healthy, then prove every node independently serves the exact
	// reference answers (kill the other two one at a time is redundant
	// at replication 2 over 3 nodes — killing each node in turn already
	// forces every partition onto each surviving replica set).
	if w.dead != -1 {
		if err := w.nodes[w.dead].Serve(w.addrs[w.dead]); err != nil {
			t.Fatal(err)
		}
		w.dead = -1
	}
	w.reconcileAllHealthy("terminal")
	w.compare("terminal", w.familyNames()...)
	for i := range w.nodes {
		w.nodes[i].Kill()
		w.compare(fmt.Sprintf("terminal kill-%d", i), w.familyNames()...)
		if err := w.nodes[i].Serve(w.addrs[i]); err != nil {
			t.Fatal(err)
		}
		w.reconcileAllHealthy(fmt.Sprintf("terminal recover-%d", i))
	}
}

// TestClusterChaosMatrix is the randomized soak: seeded interleavings
// of kill/recover/append/query/router-restart against a 3-node
// replication-2 cluster with a tiny log cap (so recoveries exercise
// snapshot resync, not just log replay). Every seed must converge to
// all-healthy with bit-identical answers from every node. Seed count:
// CHAOS_SEEDS env (CI soak runs ≥50), default 12, -short 4.
func TestClusterChaosMatrix(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	if env := os.Getenv("CHAOS_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SEEDS %q", env)
		}
		seeds = n
	}
	f := buildChaosFixtures(t)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			runChaosSeed(t, seed, f, 16)
		})
	}
}
