// The in-process cluster harness: N real node servers over loopback
// TCP plus a router, compared bit-for-bit against a single-node
// Engine.Run over the same archives. This extends the single-process
// shard-equivalence pin (core's TestShardEquivalenceAllFamilies) one
// layer up: node count, like shard count, must never change answers.

package cluster

import (
	"context"
	"errors"
	"net"
	"testing"

	"modelir/internal/archive"
	"modelir/internal/core"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// fixtures mirror core's equivalence-test archives: one dataset per
// family, sized so 3 nodes × 7 shards still leaves non-trivial slices.
type fixtures struct {
	pts   [][]float64
	scene *archive.Scene
	pm    *linear.ProgressiveModel
	arch  []synth.RegionSeries
	wells []synth.WellLog
}

func buildFixtures(t *testing.T) fixtures {
	t.Helper()
	var f fixtures
	var err error
	if f.pts, err = synth.GaussianTuples(51, 8000, 3); err != nil {
		t.Fatal(err)
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 52, W: 96, H: 96})
	if err != nil {
		t.Fatal(err)
	}
	if f.scene, err = archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 4}); err != nil {
		t.Fatal(err)
	}
	if f.pm, err = linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4); err != nil {
		t.Fatal(err)
	}
	if f.arch, err = synth.WeatherArchive(synth.WeatherConfig{Seed: 53, Regions: 60, Days: 365}); err != nil {
		t.Fatal(err)
	}
	if f.wells, _, err = synth.WellArchive(synth.WellConfig{Seed: 54, Wells: 45}); err != nil {
		t.Fatal(err)
	}
	return f
}

func ingest(t *testing.T, n *Node, f fixtures) {
	t.Helper()
	if err := n.AddTuples("gauss", f.pts); err != nil {
		t.Fatal(err)
	}
	if err := n.AddScene("hps", f.scene); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSeries("weather", f.arch); err != nil {
		t.Fatal(err)
	}
	if err := n.AddWells("basin", f.wells); err != nil {
		t.Fatal(err)
	}
}

// startCluster boots `count` nodes over loopback, ingests the fixtures
// per the topology's placement, and returns a router over them. The
// listeners bind first so the topology can use real dial addresses.
func startCluster(t *testing.T, count, shards, replication int, f fixtures, opt NodeOptions) (*Router, []*Node) {
	t.Helper()
	opt.Shards = shards
	// Placement keys on dial addresses, which only exist once the
	// kernel assigns ports — so bind every listener first, build the
	// topology from the real addresses, then start the nodes on the
	// listeners they already own.
	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: replication}
	nodes := make([]*Node, count)
	for i := range nodes {
		nodes[i] = NewNode(addrs[i], topo, opt)
		ingest(t, nodes[i], f)
		nodes[i].ServeListener(lns[i])
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return NewRouter(topo), nodes
}

// familyRequests is the six-family query matrix, identical to what the
// single-node reference runs.
func familyRequests(t *testing.T, f fixtures) map[string]Request {
	t.Helper()
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Request{
		"linear": {Dataset: "gauss", Query: core.LinearQuery{Model: lm}, K: 12},
		"scene":  {Dataset: "hps", Query: core.SceneQuery{Model: f.pm}, K: 12},
		"fsm": {Dataset: "weather", Query: core.FSMQuery{
			Machine: fsm.FireAnts(), Prefilter: core.FireAntsPrefilter}, K: 12},
		"fsm-dist": {Dataset: "weather", Query: core.FSMDistanceQuery{
			Target: fsm.FireAnts(), Horizon: 6}, K: 12},
		"geology": {Dataset: "basin", Query: core.GeologyQuery{
			Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
			MaxGapFt: 10,
			MinGamma: 45,
		}, K: 12},
		"knowledge": {Dataset: "hps", Query: core.KnowledgeQuery{
			Rules: core.HPSTileRules()}, K: 12},
	}
}

// reference runs the same requests on a plain single-process engine.
func reference(t *testing.T, f fixtures, reqs map[string]Request) map[string]core.Result {
	t.Helper()
	e := core.NewEngineWith(core.Options{Shards: 1})
	if err := e.AddTuples("gauss", f.pts); err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("hps", f.scene); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", f.arch); err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("basin", f.wells); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]core.Result, len(reqs))
	for name, rq := range reqs {
		res, err := e.Run(context.Background(), core.Request{
			Dataset: rq.Dataset, Query: rq.Query, K: rq.K,
			Workers: rq.Workers, Budget: rq.Budget, MinScore: rq.MinScore,
		})
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		out[name] = res
	}
	return out
}

func itemsEqual(t *testing.T, label string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d items", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s pos %d: got %d/%v want %d/%v",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestClusterEquivalenceAllFamilies is the tentpole pin: node counts
// 1/2/3 × per-node shard counts 1/4/7 × all six query families return
// bit-identical IDs and scores to the single-node serial reference.
func TestClusterEquivalenceAllFamilies(t *testing.T) {
	f := buildFixtures(t)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)

	for _, nodes := range []int{1, 2, 3} {
		for _, shards := range []int{1, 4, 7} {
			router, _ := startCluster(t, nodes, shards, 1, f, NodeOptions{})
			for name, rq := range reqs {
				res, err := router.Run(context.Background(), rq)
				if err != nil {
					t.Fatalf("nodes=%d shards=%d %s: %v", nodes, shards, name, err)
				}
				label := name
				itemsEqual(t, label, res.Items, want[name].Items)
			}
		}
	}
}

// TestClusterMinScoreAndBudget checks the request knobs survive the
// wire: MinScore filters identically, and the merged Truncated bit
// reflects budget exhaustion somewhere in the fan-out.
func TestClusterMinScoreAndBudget(t *testing.T) {
	f := buildFixtures(t)
	reqs := familyRequests(t, f)
	router, _ := startCluster(t, 2, 4, 1, f, NodeOptions{})

	min := 10.0
	rq := reqs["linear"]
	rq.MinScore = &min
	res, err := router.Run(context.Background(), rq)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Items {
		if it.Score < min {
			t.Fatalf("item %d score %v below MinScore", it.ID, it.Score)
		}
	}

	rq = reqs["linear"]
	rq.Budget = 10 // far below the dataset size: must truncate
	res, err = router.Run(context.Background(), rq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated {
		t.Fatal("Truncated not set under a starvation budget")
	}
}

// TestClusterReplicatedEquivalence runs the matrix's corner with
// replication > 1: placement changes, answers must not.
func TestClusterReplicatedEquivalence(t *testing.T) {
	f := buildFixtures(t)
	reqs := familyRequests(t, f)
	want := reference(t, f, reqs)
	router, _ := startCluster(t, 3, 4, 2, f, NodeOptions{})
	for name, rq := range reqs {
		res, err := router.Run(context.Background(), rq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		itemsEqual(t, name, res.Items, want[name].Items)
	}
}

// TestClusterUnknownDataset pins the typed error across the wire.
func TestClusterUnknownDataset(t *testing.T) {
	f := buildFixtures(t)
	router, _ := startCluster(t, 2, 1, 1, f, NodeOptions{})
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = router.Run(context.Background(),
		Request{Dataset: "no-such", Query: core.LinearQuery{Model: lm}})
	if !errors.Is(err, core.ErrUnknownDataset) {
		t.Fatalf("err = %v, want ErrUnknownDataset", err)
	}
}
