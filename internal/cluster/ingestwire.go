// Wire codecs for the replicated ingest protocol. Four frame types
// extend the query protocol from wire.go:
//
//	'A' append    router → node: one sequenced delta batch for one
//	              partition (dataset, part, seq, global ID base for
//	              tuples, and the rows themselves)
//	'K' append-ack node → router: the seq echoed back plus whether the
//	              batch applied or was a sequence duplicate, and the
//	              dataset's generation after it
//	'H' health    both ways: an empty probe/echo pair
//	'U' seq-state router → node: a dataset filter ("" = all); node →
//	              router: one (dataset, part, lastSeq, watermark) entry
//	              per partition the node holds
//
// Like the query payloads, everything rides the canonical encoding and
// decodes through the bounds-checked canon.Reader, so a truncated or
// hostile frame fails with canon.ErrCorrupt instead of panicking.

package cluster

import (
	"fmt"
	"math"

	"modelir/internal/canon"
	"modelir/internal/synth"
)

// Ingest frame types (query frames are in wire.go).
const (
	frameAppend    = 'A' // router → node: one sequenced append batch
	frameAppendAck = 'K' // node → router: applied/duplicate ack
	frameHealth    = 'H' // both ways: probe and echo
	frameSeqState  = 'U' // both ways: seq-state request and report
)

// Append payload kinds inside an 'A' frame.
const (
	appendTuples = 't'
	appendSeries = 's'
	appendWells  = 'w'
)

// AppendBatch is one sequenced delta batch for one partition — the
// decoded form of an 'A' frame. Exactly one of Tuples/Series/Wells is
// non-empty. Base is the global tuple row base the batch lands at
// (unused for series and wells, whose IDs are intrinsic to the rows).
type AppendBatch struct {
	Dataset string
	Part    int
	Seq     uint64
	Base    int64
	Tuples  [][]float64
	Series  []synth.RegionSeries
	Wells   []synth.WellLog
}

// Rows counts the batch's rows regardless of kind.
func (b AppendBatch) Rows() int {
	return len(b.Tuples) + len(b.Series) + len(b.Wells)
}

// encodeAppend serializes an 'A' payload.
func encodeAppend(b AppendBatch) ([]byte, error) {
	out := []byte{wireVersion}
	out = canon.AppendString(out, b.Dataset)
	out = canon.AppendUint(out, uint64(b.Part))
	out = canon.AppendUint(out, b.Seq)
	out = canon.AppendUint(out, uint64(b.Base))
	kinds := 0
	for _, nonEmpty := range []bool{len(b.Tuples) > 0, len(b.Series) > 0, len(b.Wells) > 0} {
		if nonEmpty {
			kinds++
		}
	}
	if kinds != 1 {
		return nil, fmt.Errorf("cluster: append batch needs exactly one non-empty payload, have %d", kinds)
	}
	switch {
	case len(b.Tuples) > 0:
		out = append(out, appendTuples)
		out = canon.AppendUint(out, uint64(len(b.Tuples)))
		for _, row := range b.Tuples {
			out = canon.AppendFloats(out, row)
		}
	case len(b.Series) > 0:
		out = append(out, appendSeries)
		out = canon.AppendUint(out, uint64(len(b.Series)))
		for _, rs := range b.Series {
			out = canon.AppendUint(out, uint64(int64(rs.Region)))
			out = canon.AppendUint(out, uint64(len(rs.Days)))
			for _, d := range rs.Days {
				if d.Rain {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
				out = canon.AppendFloat(out, d.RainMM)
				out = canon.AppendFloat(out, d.TempC)
			}
		}
	default:
		out = append(out, appendWells)
		out = canon.AppendUint(out, uint64(len(b.Wells)))
		for _, w := range b.Wells {
			out = canon.AppendUint(out, uint64(int64(w.Well)))
			out = canon.AppendUint(out, uint64(len(w.Strata)))
			for _, s := range w.Strata {
				out = canon.AppendUint(out, uint64(s.Lith))
				out = canon.AppendFloat(out, s.TopFt)
				out = canon.AppendFloat(out, s.ThickFt)
				out = canon.AppendFloat(out, s.GammaAPI)
			}
			out = canon.AppendFloats(out, w.Gamma)
		}
	}
	return out, nil
}

func decodeAppend(payload []byte) (AppendBatch, error) {
	var b AppendBatch
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return b, err
	}
	if v != wireVersion {
		return b, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	if b.Dataset, err = r.String(); err != nil {
		return b, err
	}
	part, err := r.Uint()
	if err != nil {
		return b, err
	}
	if part > math.MaxInt32 {
		return b, canon.ErrCorrupt
	}
	b.Part = int(part)
	if b.Seq, err = r.Uint(); err != nil {
		return b, err
	}
	base, err := r.Uint()
	if err != nil {
		return b, err
	}
	if base > math.MaxInt64 {
		return b, canon.ErrCorrupt
	}
	b.Base = int64(base)
	kind, err := r.Byte()
	if err != nil {
		return b, err
	}
	switch kind {
	case appendTuples:
		// A row is at least a count prefix.
		n, err := r.Count(8)
		if err != nil {
			return b, err
		}
		b.Tuples = make([][]float64, n)
		for i := range b.Tuples {
			if b.Tuples[i], err = r.Floats(); err != nil {
				return b, err
			}
		}
	case appendSeries:
		// A region is at least an ID and a day count.
		n, err := r.Count(16)
		if err != nil {
			return b, err
		}
		b.Series = make([]synth.RegionSeries, n)
		for i := range b.Series {
			id, err := r.Uint()
			if err != nil {
				return b, err
			}
			b.Series[i].Region = int(int64(id))
			// A day is a rain flag plus two floats.
			days, err := r.Count(17)
			if err != nil {
				return b, err
			}
			b.Series[i].Days = make([]synth.DayWeather, days)
			for j := range b.Series[i].Days {
				rain, err := r.Byte()
				if err != nil {
					return b, err
				}
				switch rain {
				case 0:
				case 1:
					b.Series[i].Days[j].Rain = true
				default:
					return b, canon.ErrCorrupt
				}
				if b.Series[i].Days[j].RainMM, err = r.Float(); err != nil {
					return b, err
				}
				if b.Series[i].Days[j].TempC, err = r.Float(); err != nil {
					return b, err
				}
			}
		}
	case appendWells:
		// A well is at least an ID, a strata count, and a trace count.
		n, err := r.Count(24)
		if err != nil {
			return b, err
		}
		b.Wells = make([]synth.WellLog, n)
		for i := range b.Wells {
			id, err := r.Uint()
			if err != nil {
				return b, err
			}
			b.Wells[i].Well = int(int64(id))
			// A stratum is a lithology plus three floats.
			strata, err := r.Count(32)
			if err != nil {
				return b, err
			}
			b.Wells[i].Strata = make([]synth.Stratum, strata)
			for j := range b.Wells[i].Strata {
				lith, err := r.Uint()
				if err != nil {
					return b, err
				}
				if lith > math.MaxInt32 {
					return b, canon.ErrCorrupt
				}
				b.Wells[i].Strata[j].Lith = synth.Lithology(lith)
				if b.Wells[i].Strata[j].TopFt, err = r.Float(); err != nil {
					return b, err
				}
				if b.Wells[i].Strata[j].ThickFt, err = r.Float(); err != nil {
					return b, err
				}
				if b.Wells[i].Strata[j].GammaAPI, err = r.Float(); err != nil {
					return b, err
				}
			}
			if b.Wells[i].Gamma, err = r.Floats(); err != nil {
				return b, err
			}
		}
	default:
		return b, fmt.Errorf("%w: append kind %q", canon.ErrCorrupt, kind)
	}
	if r.Remaining() != 0 {
		return b, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	if b.Rows() == 0 {
		return b, fmt.Errorf("%w: empty append batch", canon.ErrCorrupt)
	}
	return b, nil
}

// appendAck is the decoded 'K' payload.
type appendAck struct {
	Seq uint64
	Dup bool   // the batch's seq was already applied; nothing changed
	Gen uint64 // the dataset's generation after the batch
}

func encodeAppendAck(a appendAck) []byte {
	b := []byte{wireVersion}
	b = canon.AppendUint(b, a.Seq)
	if a.Dup {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return canon.AppendUint(b, a.Gen)
}

func decodeAppendAck(payload []byte) (appendAck, error) {
	var a appendAck
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return a, err
	}
	if v != wireVersion {
		return a, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	if a.Seq, err = r.Uint(); err != nil {
		return a, err
	}
	dup, err := r.Byte()
	if err != nil {
		return a, err
	}
	switch dup {
	case 0:
	case 1:
		a.Dup = true
	default:
		return a, canon.ErrCorrupt
	}
	if a.Gen, err = r.Uint(); err != nil {
		return a, err
	}
	if r.Remaining() != 0 {
		return a, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return a, nil
}

// SeqEntry is one partition's append cursor in a 'U' report: the last
// applied sequence number and the partition's global row watermark
// (offset + local logical rows; for tuples the max over partitions is
// the next free global row ID, for other kinds it is informational).
// Kind is the dataset's data kind where the node can tell (some
// partition of the dataset holds rows locally) and 0 where it cannot —
// a restarted router unions reports across replicas to rediscover
// every dataset's kind without any local state.
type SeqEntry struct {
	Dataset   string
	Part      int
	LastSeq   uint64
	Watermark int64
	Kind      DataKind
}

// encodeSeqStateReq serializes the router's 'U' request: a dataset
// filter, "" for every partition the node holds.
func encodeSeqStateReq(dataset string) []byte {
	b := []byte{wireVersion}
	return canon.AppendString(b, dataset)
}

func decodeSeqStateReq(payload []byte) (string, error) {
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return "", err
	}
	if v != wireVersion {
		return "", fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	ds, err := r.String()
	if err != nil {
		return "", err
	}
	if r.Remaining() != 0 {
		return "", fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return ds, nil
}

func encodeSeqState(entries []SeqEntry) []byte {
	b := []byte{wireVersion}
	b = canon.AppendUint(b, uint64(len(entries)))
	for _, e := range entries {
		b = canon.AppendString(b, e.Dataset)
		b = canon.AppendUint(b, uint64(e.Part))
		b = canon.AppendUint(b, e.LastSeq)
		b = canon.AppendUint(b, uint64(e.Watermark))
		b = canon.AppendUint(b, uint64(e.Kind))
	}
	return b
}

func decodeSeqState(payload []byte) ([]SeqEntry, error) {
	r := canon.NewReader(payload)
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("%w: wire version %d", canon.ErrCorrupt, v)
	}
	// An entry is at least a name length plus four fixed ints.
	n, err := r.Count(40)
	if err != nil {
		return nil, err
	}
	out := make([]SeqEntry, n)
	for i := range out {
		if out[i].Dataset, err = r.String(); err != nil {
			return nil, err
		}
		part, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if part > math.MaxInt32 {
			return nil, canon.ErrCorrupt
		}
		out[i].Part = int(part)
		if out[i].LastSeq, err = r.Uint(); err != nil {
			return nil, err
		}
		wm, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if wm > math.MaxInt64 {
			return nil, canon.ErrCorrupt
		}
		out[i].Watermark = int64(wm)
		kind, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if kind > uint64(KindScene) {
			return nil, fmt.Errorf("%w: seq-state kind %d", canon.ErrCorrupt, kind)
		}
		out[i].Kind = DataKind(kind)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", canon.ErrCorrupt, r.Remaining())
	}
	return out, nil
}
