// The router role: fan a request out to every partition's node, gossip
// screening-floor raises among the in-flight partitions, fail over to
// replicas on transport errors, and merge the partial top-Ks with the
// exact (score, ID) rule — bit-identical to a single-node run.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"modelir/internal/core"
	"modelir/internal/topk"
)

// Request is the router-level query: a core request plus the dataset's
// cluster-wide name. All six core query families are supported; the
// query must be wire-encodable (see ErrUnencodableQuery).
type Request struct {
	Dataset  string
	Query    core.Query
	K        int
	Workers  int
	Budget   int
	MinScore *float64
}

// ErrPartitionUnavailable reports that a partition's every replica
// failed at the transport level — the cluster cannot currently give an
// exact answer, and a partial one is never returned instead.
var ErrPartitionUnavailable = errors.New("cluster: partition unavailable")

// RemoteError is a typed error a node reported for its slice of the
// query. Remote errors are deterministic (bad query, unknown dataset,
// execution failure), so the router does not fail over on them — a
// replica would fail identically.
type RemoteError struct {
	Addr string
	Code string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %s: %s: %s", e.Addr, e.Code, e.Msg)
}

// Unwrap maps wire codes back to the sentinel errors callers test with
// errors.Is, so a cluster run fails the same way a local run would.
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case "unknown-dataset":
		return core.ErrUnknownDataset
	case "cancelled":
		return context.Canceled
	default:
		return nil
	}
}

// Router scatter-gathers requests across a topology. The zero value is
// not usable; construct with NewRouter.
type Router struct {
	topo Topology
	// dialTimeout bounds each replica connection attempt.
	dialTimeout time.Duration
}

// NewRouter returns a router over the topology.
func NewRouter(topo Topology) *Router {
	return &Router{topo: topo, dialTimeout: 5 * time.Second}
}

// dataKindOf maps a query family to the archive family it scans,
// mirroring the engine's dataset tables.
func dataKindOf(q core.Query) (DataKind, error) {
	switch q.(type) {
	case core.LinearQuery:
		return KindTuples, nil
	case core.SceneQuery, core.KnowledgeQuery:
		return KindScene, nil
	case core.FSMQuery, core.FSMDistanceQuery:
		return KindSeries, nil
	case core.GeologyQuery:
		return KindWells, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnencodableQuery, q)
	}
}

// floorGossip is the router-side hub for one query's screening floor:
// the running maximum over every node's published raises, with a
// broadcast channel the per-node senders wait on.
type floorGossip struct {
	mu    sync.Mutex
	floor float64
	ch    chan struct{}
}

func newFloorGossip(seed float64) *floorGossip {
	return &floorGossip{floor: seed, ch: make(chan struct{})}
}

// Raise lifts the gossiped floor and wakes every waiting sender.
func (g *floorGossip) Raise(v float64) {
	if math.IsNaN(v) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v <= g.floor {
		return
	}
	g.floor = v
	close(g.ch)
	g.ch = make(chan struct{})
}

// Get returns the current floor and a channel closed at the next raise.
func (g *floorGossip) Get() (float64, <-chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.floor, g.ch
}

// Run executes one request across the cluster and returns a result
// bit-identical (IDs and scores) to a single-node Engine.Run over the
// union of the partitions. On a node error the affected partition fails
// over to its replicas for transport faults; deterministic remote
// errors surface as typed errors. ctx cancellation aborts the whole
// fan-out, including remote execution.
func (r *Router) Run(ctx context.Context, req Request) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if req.Query == nil {
		return core.Result{}, errors.New("cluster: request needs a Query")
	}
	if req.K == 0 {
		req.K = core.DefaultK
	}
	if req.K < 1 {
		return core.Result{}, fmt.Errorf("cluster: request K %d: %w", req.K, topk.ErrBadCapacity)
	}
	if req.MinScore != nil && math.IsNaN(*req.MinScore) {
		return core.Result{}, errors.New("cluster: NaN request MinScore")
	}
	kind, err := dataKindOf(req.Query)
	if err != nil {
		return core.Result{}, err
	}
	placements := r.topo.Layout(req.Dataset, kind)
	if len(placements) == 0 {
		return core.Result{}, errors.New("cluster: empty topology")
	}

	seed := math.Inf(-1)
	if req.MinScore != nil {
		seed = *req.MinScore
	}
	gossip := newFloorGossip(seed)

	partials := make([]Partial, len(placements))
	errs := make([]error, len(placements))
	var wg sync.WaitGroup
	for i, pl := range placements {
		wg.Add(1)
		go func(i int, pl Placement) {
			defer wg.Done()
			partials[i], errs[i] = r.runPart(ctx, req, pl, gossip)
		}(i, pl)
	}
	wg.Wait()

	// Deterministic error selection: context first (it is what the
	// caller acted on), then the lowest-partition error.
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	for _, err := range errs {
		if err != nil {
			return core.Result{}, err
		}
	}

	h, err := topk.NewHeap(req.K)
	if err != nil {
		return core.Result{}, fmt.Errorf("cluster: %w", err)
	}
	var st core.QueryStats
	st.Kind = req.Query.Kind()
	for _, p := range partials {
		topk.MergeItems(h, p.Items)
		st.Evaluations += p.Stats.Evaluations
		st.Examined += p.Stats.Examined
		st.Pruned += p.Stats.Pruned
		st.Shards += p.Stats.Shards
		st.Truncated = st.Truncated || p.Stats.Truncated
	}
	st.Wall = time.Since(start)
	return core.Result{Items: h.Results(), Stats: st}, nil
}

// RunBatch executes the requests concurrently, one scatter-gather per
// slot. Results and errors are positional.
func (r *Router) RunBatch(ctx context.Context, reqs []Request) []core.BatchResult {
	out := make([]core.BatchResult, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Result, out[i].Err = r.Run(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// runPart executes one partition, trying its replicas in placement
// order. Transport faults (dial failure, severed connection) move on to
// the next replica; a typed error from a live node is final.
func (r *Router) runPart(ctx context.Context, req Request, pl Placement, gossip *floorGossip) (Partial, error) {
	var lastErr error
	for _, addr := range pl.Nodes {
		if err := ctx.Err(); err != nil {
			return Partial{}, err
		}
		p, err, transport := r.attempt(ctx, req, pl.Part, addr, gossip)
		if err == nil {
			return p, nil
		}
		if !transport {
			return Partial{}, err
		}
		lastErr = err
	}
	return Partial{}, fmt.Errorf("%w: %q part %d: %v",
		ErrPartitionUnavailable, req.Dataset, pl.Part, lastErr)
}

// attempt runs one partition on one node. transport reports whether the
// failure was a connection-level fault (eligible for failover) rather
// than a node-reported error or a local cancellation.
func (r *Router) attempt(ctx context.Context, req Request, part int, addr string, gossip *floorGossip) (_ Partial, err error, transport bool) {
	floor, _ := gossip.Get()
	payload, err := encodeQuery(req, part, floor)
	if err != nil {
		return Partial{}, err, false
	}
	d := net.Dialer{Timeout: r.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return Partial{}, ctx.Err(), false
		}
		return Partial{}, err, true
	}
	defer conn.Close()
	if err := writeFrame(conn, frameQuery, payload); err != nil {
		return Partial{}, err, true
	}

	// Sender: forward gossip raises as floor frames; on cancellation,
	// send a best-effort cancel and sever the connection so the reader
	// unblocks. The sender is the connection's only writer from here.
	senderDone := make(chan struct{})
	defer close(senderDone)
	go func() {
		last := floor
		for {
			f, raised := gossip.Get()
			if f > last {
				last = f
				if writeFrame(conn, frameFloor, encodeFloor(f)) != nil {
					return
				}
			}
			select {
			case <-raised:
			case <-ctx.Done():
				writeFrame(conn, frameCancel, nil)
				conn.Close()
				return
			case <-senderDone:
				return
			}
		}
	}()

	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return Partial{}, ctx.Err(), false
			}
			return Partial{}, err, true
		}
		switch typ {
		case frameFloor:
			if f, err := decodeFloor(payload); err == nil {
				gossip.Raise(f)
			}
		case frameResult:
			p, err := decodePartial(payload)
			if err != nil {
				return Partial{}, err, false
			}
			gossip.Raise(p.Floor)
			return p, nil, false
		case frameError:
			code, msg, derr := decodeError(payload)
			if derr != nil {
				return Partial{}, derr, false
			}
			if ctx.Err() != nil && code == "cancelled" {
				return Partial{}, ctx.Err(), false
			}
			return Partial{}, &RemoteError{Addr: addr, Code: code, Msg: msg}, false
		default:
			return Partial{}, fmt.Errorf("%w: unexpected frame %q", ErrFrame, typ), false
		}
	}
}
