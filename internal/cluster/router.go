// The router role: fan a request out to every partition's node, gossip
// screening-floor raises among the in-flight partitions, fail over to
// replicas on transport errors, and merge the partial top-Ks with the
// exact (score, ID) rule — bit-identical to a single-node run.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"modelir/internal/core"
	"modelir/internal/topk"
)

// Request is the router-level query: a core request plus the dataset's
// cluster-wide name. All six core query families are supported; the
// query must be wire-encodable (see ErrUnencodableQuery).
type Request struct {
	Dataset  string
	Query    core.Query
	K        int
	Workers  int
	Budget   int
	MinScore *float64
}

// ErrPartitionUnavailable reports that a partition's every replica
// failed at the transport level — the cluster cannot currently give an
// exact answer, and a partial one is never returned instead.
var ErrPartitionUnavailable = errors.New("cluster: partition unavailable")

// RemoteError is a typed error a node reported for its slice of the
// query. Remote errors are deterministic (bad query, unknown dataset,
// execution failure), so the router does not fail over on them — a
// replica would fail identically.
type RemoteError struct {
	Addr string
	Code string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %s: %s: %s", e.Addr, e.Code, e.Msg)
}

// Unwrap maps wire codes back to the sentinel errors callers test with
// errors.Is, so a cluster run fails the same way a local run would.
func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case "unknown-dataset":
		return core.ErrUnknownDataset
	case "cancelled":
		return context.Canceled
	default:
		return nil
	}
}

// RouterOptions tunes the router's fault handling. The zero value
// selects production defaults; tests shrink the retry timings so fault
// matrices run in milliseconds.
type RouterOptions struct {
	// DialTimeout bounds each replica connection attempt (default 5s).
	DialTimeout time.Duration
	// AckTimeout bounds waiting for an append ack, probe echo, or
	// seq-state reply on an established connection (default 10s).
	AckTimeout time.Duration
	// ReadAttempts is how many times one replica is tried on the read
	// path before failing over to the next (default 2): transient
	// transport faults should not burn a replica.
	ReadAttempts int
	// AppendAttempts is how many times one replica is tried per append
	// batch before it is quarantined as stale (default 3).
	AppendAttempts int
	// RetryBase is the first retry's backoff; each further attempt
	// doubles it up to RetryMax, and every sleep is jittered to half
	// its nominal value plus a uniform random half (defaults 5ms/250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxLogBytes caps each partition's append log (the encoded frames
	// retained for catch-up replay). When a quarantined replica pins
	// more than this many bytes, the oldest fully-acked-elsewhere
	// records are dropped and the replica is repaired by snapshot
	// resync instead of replay. 0 selects the 64 MiB default; negative
	// disables the cap (the log then grows until every replica acks).
	MaxLogBytes int64
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 10 * time.Second
	}
	if o.ReadAttempts <= 0 {
		o.ReadAttempts = 2
	}
	if o.AppendAttempts <= 0 {
		o.AppendAttempts = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 5 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 250 * time.Millisecond
	}
	if o.MaxLogBytes == 0 {
		o.MaxLogBytes = 64 << 20
	}
	return o
}

// Router scatter-gathers requests across a topology, tracks every
// peer's health, and owns the replicated write path (append.go) plus
// the catch-up protocol that re-admits quarantined replicas
// (catchup.go). The zero value is not usable; construct with NewRouter
// or NewRouterWith.
type Router struct {
	topo   Topology
	opt    RouterOptions
	health *healthTracker

	// ing is the append-side state: per-dataset ingest cursors and the
	// client-token dedup table (append.go).
	ing routerIngest

	// stats counts resync and recovery events (resync.go).
	stats routerResyncStats

	loopMu   sync.Mutex
	loopStop chan struct{}
	loopDone chan struct{}
}

// NewRouter returns a router over the topology with default options.
func NewRouter(topo Topology) *Router {
	return NewRouterWith(topo, RouterOptions{})
}

// NewRouterWith returns a router with explicit fault-handling options.
func NewRouterWith(topo Topology, opt RouterOptions) *Router {
	r := &Router{topo: topo, opt: opt.withDefaults(), health: newHealthTracker()}
	r.ing.sets = make(map[string]*dsIngest)
	r.ing.tokens = make(map[string]*tokenEntry)
	return r
}

// PeerHealth reports every topology peer's health state (peers with no
// recorded evidence are healthy).
func (r *Router) PeerHealth() map[string]HealthState {
	out := r.health.snapshot()
	for _, addr := range r.topo.Nodes {
		if _, ok := out[addr]; !ok {
			out[addr] = Healthy
		}
	}
	return out
}

// backoff sleeps the jittered exponential delay for the given retry
// attempt (1-based), honoring ctx.
func (r *Router) backoff(ctx context.Context, attempt int) error {
	d := r.opt.RetryBase << (attempt - 1)
	if d > r.opt.RetryMax {
		d = r.opt.RetryMax
	}
	// Jitter to [d/2, d): concurrent retries against a recovering node
	// must not arrive in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// dataKindOf maps a query family to the archive family it scans,
// mirroring the engine's dataset tables.
func dataKindOf(q core.Query) (DataKind, error) {
	switch q.(type) {
	case core.LinearQuery:
		return KindTuples, nil
	case core.SceneQuery, core.KnowledgeQuery:
		return KindScene, nil
	case core.FSMQuery, core.FSMDistanceQuery:
		return KindSeries, nil
	case core.GeologyQuery:
		return KindWells, nil
	default:
		return 0, fmt.Errorf("%w: %T", ErrUnencodableQuery, q)
	}
}

// floorGossip is the router-side hub for one query's screening floor:
// the running maximum over every node's published raises, with a
// broadcast channel the per-node senders wait on.
type floorGossip struct {
	mu    sync.Mutex
	floor float64
	ch    chan struct{}
}

func newFloorGossip(seed float64) *floorGossip {
	return &floorGossip{floor: seed, ch: make(chan struct{})}
}

// Raise lifts the gossiped floor and wakes every waiting sender.
func (g *floorGossip) Raise(v float64) {
	if math.IsNaN(v) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v <= g.floor {
		return
	}
	g.floor = v
	close(g.ch)
	g.ch = make(chan struct{})
}

// Get returns the current floor and a channel closed at the next raise.
func (g *floorGossip) Get() (float64, <-chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.floor, g.ch
}

// Run executes one request across the cluster and returns a result
// bit-identical (IDs and scores) to a single-node Engine.Run over the
// union of the partitions. On a node error the affected partition fails
// over to its replicas for transport faults; deterministic remote
// errors surface as typed errors. ctx cancellation aborts the whole
// fan-out, including remote execution.
func (r *Router) Run(ctx context.Context, req Request) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if req.Query == nil {
		return core.Result{}, errors.New("cluster: request needs a Query")
	}
	if req.K == 0 {
		req.K = core.DefaultK
	}
	if req.K < 1 {
		return core.Result{}, fmt.Errorf("cluster: request K %d: %w", req.K, topk.ErrBadCapacity)
	}
	if req.MinScore != nil && math.IsNaN(*req.MinScore) {
		return core.Result{}, errors.New("cluster: NaN request MinScore")
	}
	kind, err := dataKindOf(req.Query)
	if err != nil {
		return core.Result{}, err
	}
	placements := r.topo.Layout(req.Dataset, kind)
	if len(placements) == 0 {
		return core.Result{}, errors.New("cluster: empty topology")
	}

	seed := math.Inf(-1)
	if req.MinScore != nil {
		seed = *req.MinScore
	}
	gossip := newFloorGossip(seed)

	partials := make([]Partial, len(placements))
	errs := make([]error, len(placements))
	var wg sync.WaitGroup
	for i, pl := range placements {
		wg.Add(1)
		go func(i int, pl Placement) {
			defer wg.Done()
			partials[i], errs[i] = r.runPart(ctx, req, pl, gossip)
		}(i, pl)
	}
	wg.Wait()

	// Deterministic error selection: context first (it is what the
	// caller acted on), then the lowest-partition error.
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	for _, err := range errs {
		if err != nil {
			return core.Result{}, err
		}
	}

	h, err := topk.NewHeap(req.K)
	if err != nil {
		return core.Result{}, fmt.Errorf("cluster: %w", err)
	}
	var st core.QueryStats
	st.Kind = req.Query.Kind()
	for _, p := range partials {
		topk.MergeItems(h, p.Items)
		st.Evaluations += p.Stats.Evaluations
		st.Examined += p.Stats.Examined
		st.Pruned += p.Stats.Pruned
		st.Shards += p.Stats.Shards
		st.Truncated = st.Truncated || p.Stats.Truncated
	}
	st.Wall = time.Since(start)
	return core.Result{Items: h.Results(), Stats: st}, nil
}

// RunBatch executes the requests concurrently, one scatter-gather per
// slot. Results and errors are positional.
func (r *Router) RunBatch(ctx context.Context, reqs []Request) []core.BatchResult {
	out := make([]core.BatchResult, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Result, out[i].Err = r.Run(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// runPart executes one partition, trying its replicas in placement
// order. Quarantined (stale) and down replicas are skipped outright —
// a stale replica could answer from missing rows, so it is never
// served from. Each eligible replica gets ReadAttempts tries with
// jittered exponential backoff (transient faults should not burn a
// replica); transport faults then move on to the next replica and feed
// the health tracker. A typed error from a live node is final.
func (r *Router) runPart(ctx context.Context, req Request, pl Placement, gossip *floorGossip) (Partial, error) {
	var lastErr error
	eligible := 0
	for _, addr := range pl.Nodes {
		if !r.health.servable(addr) {
			continue
		}
		eligible++
		for attempt := 1; attempt <= r.opt.ReadAttempts; attempt++ {
			if err := ctx.Err(); err != nil {
				return Partial{}, err
			}
			if attempt > 1 {
				if err := r.backoff(ctx, attempt-1); err != nil {
					return Partial{}, err
				}
			}
			p, err, transport := r.attempt(ctx, req, pl.Part, addr, gossip)
			if err == nil {
				r.health.ok(addr)
				return p, nil
			}
			if !transport {
				return Partial{}, err
			}
			r.health.fault(addr)
			lastErr = err
		}
	}
	if eligible == 0 {
		return Partial{}, fmt.Errorf("%w: %q part %d: every replica quarantined or down",
			ErrPartitionUnavailable, req.Dataset, pl.Part)
	}
	return Partial{}, fmt.Errorf("%w: %q part %d: %v",
		ErrPartitionUnavailable, req.Dataset, pl.Part, lastErr)
}

// attempt runs one partition on one node. transport reports whether the
// failure was a connection-level fault (eligible for failover) rather
// than a node-reported error or a local cancellation.
func (r *Router) attempt(ctx context.Context, req Request, part int, addr string, gossip *floorGossip) (_ Partial, err error, transport bool) {
	floor, _ := gossip.Get()
	payload, err := encodeQuery(req, part, floor)
	if err != nil {
		return Partial{}, err, false
	}
	d := net.Dialer{Timeout: r.opt.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctx.Err() != nil {
			return Partial{}, ctx.Err(), false
		}
		return Partial{}, err, true
	}
	defer conn.Close()
	if err := writeFrame(conn, frameQuery, payload); err != nil {
		return Partial{}, err, true
	}

	// Sender: forward gossip raises as floor frames; on cancellation,
	// send a best-effort cancel and sever the connection so the reader
	// unblocks. The sender is the connection's only writer from here.
	senderDone := make(chan struct{})
	defer close(senderDone)
	go func() {
		last := floor
		for {
			f, raised := gossip.Get()
			if f > last {
				last = f
				if writeFrame(conn, frameFloor, encodeFloor(f)) != nil {
					return
				}
			}
			select {
			case <-raised:
			case <-ctx.Done():
				writeFrame(conn, frameCancel, nil)
				conn.Close()
				return
			case <-senderDone:
				return
			}
		}
	}()

	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			if ctx.Err() != nil {
				return Partial{}, ctx.Err(), false
			}
			return Partial{}, err, true
		}
		switch typ {
		case frameFloor:
			if f, err := decodeFloor(payload); err == nil {
				gossip.Raise(f)
			}
		case frameResult:
			p, err := decodePartial(payload)
			if err != nil {
				return Partial{}, err, false
			}
			gossip.Raise(p.Floor)
			return p, nil, false
		case frameError:
			code, msg, derr := decodeError(payload)
			if derr != nil {
				return Partial{}, derr, false
			}
			if ctx.Err() != nil && code == "cancelled" {
				return Partial{}, ctx.Err(), false
			}
			return Partial{}, &RemoteError{Addr: addr, Code: code, Msg: msg}, false
		default:
			return Partial{}, fmt.Errorf("%w: unexpected frame %q", ErrFrame, typ), false
		}
	}
}
