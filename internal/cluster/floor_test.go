// Cross-node floor propagation, pinned deterministically: a hand-built
// skewed archive where one partition (hot) scores far above the other
// (cold). The hot node's published floor, delivered to the cold node in
// the query frame, must let the cold node's Onion index prune whole
// layers it would otherwise scan — observable in QueryStats.Pruned.
// The test drives the wire protocol directly (a raw client instead of
// the router) so the floor's arrival is ordered, not raced.

package cluster

import (
	"math"
	"net"
	"testing"

	"modelir/internal/core"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

// queryNode runs one partition query over a raw connection, exactly as
// the router would, with a fixed initial floor.
func queryNode(t *testing.T, addr string, req Request, part int, floor float64) Partial {
	t.Helper()
	payload, err := encodeQuery(req, part, floor)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameQuery, payload); err != nil {
		t.Fatal(err)
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case frameFloor:
			// Mid-flight floor raises; the test reads the final floor
			// off the result frame instead.
		case frameResult:
			p, err := decodePartial(payload)
			if err != nil {
				t.Fatal(err)
			}
			return p
		case frameError:
			code, msg, _ := decodeError(payload)
			t.Fatalf("node error %s: %s", code, msg)
		default:
			t.Fatalf("unexpected frame %q", typ)
		}
	}
}

func TestCrossNodeFloorPrunesColdOnionLayers(t *testing.T) {
	// First half of the rows: hot, scores around 3×100. Second half:
	// cold, Gaussian scores within a few units of zero. With two
	// nodes, partition 0 is exactly the hot rows and partition 1 the
	// cold rows.
	const half = 1024
	cold, err := synth.GaussianTuples(77, half, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([][]float64, 0, 2*half)
	for i := 0; i < half; i++ {
		v := 100 + float64(i)*0.001
		pts = append(pts, []float64{v, v, v})
	}
	pts = append(pts, cold...)

	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addrs[i] = lns[i].Addr().String()
	}
	topo := Topology{Nodes: addrs, Replication: 1}
	// Caching is disabled so the floored and unfloored cold queries
	// both execute (they share a fingerprint; a cache hit would replay
	// the first run's stats and mask the pruning difference).
	opt := NodeOptions{Shards: 2, CacheEntries: -1}
	byPart := make(map[int]string) // partition → node address
	for i := range lns {
		n := NewNode(addrs[i], topo, opt)
		if err := n.AddTuples("skew", pts); err != nil {
			t.Fatal(err)
		}
		n.mu.Lock()
		for part, e := range n.parts["skew"] {
			if e.local != "" {
				byPart[part] = addrs[i]
			}
		}
		n.mu.Unlock()
		n.ServeListener(lns[i])
		t.Cleanup(n.Close)
	}
	if len(byPart) != 2 {
		t.Fatalf("expected 2 partitions placed, got %v", byPart)
	}

	lm, err := linear.New([]string{"x", "y", "z"}, []float64{1, 1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Dataset: "skew", Query: core.LinearQuery{Model: lm}, K: 8}

	// The hot partition runs first and publishes its floor: the 8th
	// best hot score, far above anything in the cold partition.
	hot := queryNode(t, byPart[0], req, 0, math.Inf(-1))
	if hot.Floor < 300 {
		t.Fatalf("hot floor = %v, want around 3x100", hot.Floor)
	}

	// Cold partition without the foreign floor: the baseline scan.
	base := queryNode(t, byPart[1], req, 1, math.Inf(-1))
	// Cold partition with the hot node's floor piggybacked in the
	// query frame: whole Onion layers fall below the floor's upper
	// bound and are pruned without evaluation.
	pruned := queryNode(t, byPart[1], req, 1, hot.Floor)

	if pruned.Stats.Pruned <= base.Stats.Pruned {
		t.Fatalf("foreign floor did not increase pruning: %d vs %d",
			pruned.Stats.Pruned, base.Stats.Pruned)
	}
	// "≥ 1 Onion layer" at this scale: a substantial slice of the cold
	// partition, not a rounding artifact.
	if gain := pruned.Stats.Pruned - base.Stats.Pruned; gain < half/8 {
		t.Fatalf("pruning gain %d too small for a layer of %d points", gain, half)
	}
	if pruned.Stats.Evaluations >= base.Stats.Evaluations {
		t.Fatalf("foreign floor did not reduce evaluations: %d vs %d",
			pruned.Stats.Evaluations, base.Stats.Evaluations)
	}
}
