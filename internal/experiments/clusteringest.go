// Cluster-ingest baseline: the machine-readable artifact CI archives as
// BENCH_clusteringest.json, tracking mixed append+query throughput
// through the replicated write path and pinning fault-cycle
// equivalence. Each point boots a real in-process cluster on an 80%
// prefix of the E9 workload, streams the remaining rows through
// Router.Append interleaved with queries, and — with two or more nodes
// — runs a full kill → quarantined-appends → recover → catch-up cycle
// before checking that the answers are bit-identical to a single-node
// engine built from the complete archive (including when the surviving
// node is then killed, so the recovered replica itself must answer).
// Throughput numbers are informational on shared CI hosts; the
// results_identical bit is the acceptance-pinned part.

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"modelir/internal/cluster"
	"modelir/internal/core"
)

// ClusterIngestPoint is one node-count measurement.
type ClusterIngestPoint struct {
	Nodes       int `json:"nodes"`
	Replication int `json:"replication"`
	// Mixed-phase throughput: appends and queries interleaved through
	// the router, ops = appended batches + queries.
	Appends      int     `json:"appends"`
	Queries      int     `json:"queries"`
	MixedOpsPerS float64 `json:"mixed_ops_per_s"`
	AppendedRows int     `json:"appended_rows"`
	// KillRecoverNs times the fault cycle: kill a replica, append under
	// quarantine, restart it, reconcile until catch-up re-admits it.
	// Zero for single-node points (there is no replica to lose).
	KillRecoverNs int64 `json:"kill_recover_ns"`
	// Identical records whether every equivalence query — under
	// quarantine, after recovery, and from the recovered replica alone —
	// matched the full single-node reference exactly.
	Identical bool `json:"identical"`
}

// ClusterIngestBaseline is the BENCH_clusteringest.json artifact.
type ClusterIngestBaseline struct {
	Tuples     int `json:"tuples"`
	Dims       int `json:"dims"`
	K          int `json:"k"`
	ShardsPer  int `json:"shards_per_node"`
	GOMAXPROCS int `json:"gomaxprocs"`

	Points []ClusterIngestPoint `json:"points"`
	// ResultsIdentical is the CI gate: true iff every point's every
	// equivalence check stayed bit-identical to the reference.
	ResultsIdentical bool `json:"results_identical"`
}

// clusterIngestSweep measures the replicated-ingest baseline at node
// counts 1, 2, 3 (replication 2 where the topology allows it).
func clusterIngestSweep(cfg Config) (ClusterIngestBaseline, error) {
	n, k := ShardWorkloadSize, 10
	if cfg.Quick {
		n = 5_000
	}
	base := ClusterIngestBaseline{
		Tuples: n, K: k, ShardsPer: 2,
		GOMAXPROCS: runtime.GOMAXPROCS(0), ResultsIdentical: true,
	}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	ctx := cfg.ctx()

	// Full single-node reference: the answer every cluster state must
	// reproduce bit-for-bit.
	eng := core.NewEngineWith(core.Options{Shards: base.ShardsPer, CacheEntries: -1})
	if err := eng.AddTuples("t", pts); err != nil {
		return base, err
	}
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
	want, err := eng.Run(ctx, req)
	if err != nil {
		return base, err
	}

	for _, count := range []int{1, 2, 3} {
		p, err := clusterIngestPoint(ctx, count, base, pts, req, want)
		if err != nil {
			return base, err
		}
		base.Points = append(base.Points, p)
		base.ResultsIdentical = base.ResultsIdentical && p.Identical
	}
	return base, nil
}

// clusterIngestPoint boots `count` nodes on the 80% prefix, streams the
// tail through the replicated append path under query traffic, runs the
// kill→recover cycle where a replica exists to lose, and verifies
// equivalence at every stage.
func clusterIngestPoint(ctx context.Context, count int, base ClusterIngestBaseline, pts [][]float64, req core.Request, want core.Result) (point ClusterIngestPoint, err error) {
	rep := 1
	if count > 1 {
		rep = 2
	}
	point = ClusterIngestPoint{Nodes: count, Replication: rep, Identical: true}

	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return point, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := cluster.Topology{Nodes: addrs, Replication: rep}
	opt := cluster.NodeOptions{Shards: base.ShardsPer, CacheEntries: -1}
	prefix := pts[:len(pts)*4/5]
	tail := pts[len(pts)*4/5:]
	nodes := make([]*cluster.Node, count)
	defer func() {
		for i, n := range nodes {
			if n != nil {
				n.Close()
			} else {
				lns[i].Close()
			}
		}
	}()
	for i := range lns {
		node := cluster.NewNode(addrs[i], topo, opt)
		if err := node.AddTuples("t", prefix); err != nil {
			return point, err
		}
		node.ServeListener(lns[i])
		nodes[i] = node
	}
	router := cluster.NewRouterWith(topo, cluster.RouterOptions{
		RetryBase: time.Millisecond, RetryMax: 16 * time.Millisecond, AppendAttempts: 2,
	})
	defer router.Close()
	creq := cluster.Request{Dataset: "t", Query: req.Query, K: req.K}

	check := func(stage string) error {
		res, err := router.Run(ctx, creq)
		if err != nil {
			return fmt.Errorf("%s: %w", stage, err)
		}
		point.Identical = point.Identical && itemsMatch(res.Items, want.Items)
		return nil
	}
	appendBatch := func(rows [][]float64) error {
		_, err := router.Append(ctx, cluster.AppendRequest{Dataset: "t", Tuples: rows})
		if err == nil {
			point.Appends++
			point.AppendedRows += len(rows)
		}
		return err
	}

	// Mixed phase: stream the first half of the tail in 256-row batches
	// with a query after every batch — appends and reads sharing the
	// cluster, which is the serving condition the paper's live-ingest
	// story requires.
	mixed := tail[:len(tail)/2]
	if count == 1 {
		mixed = tail // no fault cycle: everything streams here
	}
	start := time.Now()
	for lo := 0; lo < len(mixed); lo += 256 {
		hi := lo + 256
		if hi > len(mixed) {
			hi = len(mixed)
		}
		if err := appendBatch(mixed[lo:hi]); err != nil {
			return point, err
		}
		if _, err := router.Run(ctx, creq); err != nil {
			return point, err
		}
		point.Queries++
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		point.MixedOpsPerS = float64(point.Appends+point.Queries) / wall
	}

	if count == 1 {
		return point, check("single-node final")
	}

	// Fault cycle: kill one replica, land the rest of the tail while it
	// is quarantined, bring it back, and reconcile until catch-up
	// re-admits it.
	rest := tail[len(tail)/2:]
	cycleStart := time.Now()
	nodes[1].Kill()
	for lo := 0; lo < len(rest); lo += 256 {
		hi := lo + 256
		if hi > len(rest) {
			hi = len(rest)
		}
		if err := appendBatch(rest[lo:hi]); err != nil {
			return point, err
		}
	}
	if err := check("under quarantine"); err != nil {
		return point, err
	}
	if err := nodes[1].Serve(addrs[1]); err != nil {
		return point, err
	}
	for i := 0; ; i++ {
		if health := router.Reconcile(ctx); health[addrs[1]] == cluster.Healthy {
			break
		}
		if i >= 100 {
			return point, fmt.Errorf("replica %s not healthy after %d reconcile passes", addrs[1], i)
		}
		time.Sleep(10 * time.Millisecond)
	}
	point.KillRecoverNs = time.Since(cycleStart).Nanoseconds()
	if err := check("after recovery"); err != nil {
		return point, err
	}

	// Kill the survivor that carried the quarantine-era appends: the
	// recovered replica must now answer, proving the catch-up replay
	// was exact.
	nodes[0].Kill()
	return point, check("recovered replica serving")
}

// WriteClusterIngestBaseline runs the cluster-ingest sweep and writes
// the JSON baseline (the BENCH_clusteringest.json artifact produced by
// `benchtab -clusteringestjson`).
func WriteClusterIngestBaseline(cfg Config, path string) error {
	base, err := clusterIngestSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
