package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationsWellFormed(t *testing.T) {
	tables, err := Ablations(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d ablation tables, want 4", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", tbl.ID)
		}
		for ri, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Fatalf("%s row %d: %d cells for %d columns", tbl.ID, ri, len(row), len(tbl.Columns))
			}
		}
	}
}

// A1 shape: exactness in every cell; deeper layer caps never touch more
// points within the same variant.
func TestA1Shape(t *testing.T) {
	tbl, err := A1(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var prevKey string
	prevTouched := -1
	for _, row := range tbl.Rows {
		if row[6] != "true" {
			t.Fatalf("inexact result at %v", row)
		}
		key := row[0] + "/" + row[1]
		touched := parseInt(t, row[4])
		if key == prevKey && row[3] == "-" && touched > prevTouched && prevTouched >= 0 {
			t.Fatalf("deeper cap touched more points: %v", row)
		}
		prevKey, prevTouched = key, touched
	}
}

// A2 shape: purity gating recovers agreement that margin-only loses.
func TestA2Shape(t *testing.T) {
	tbl, err := A2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	agreeOf := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	var marginOnly, withPurity float64
	for _, row := range tbl.Rows {
		if row[0] == "10" && row[1] == "0" {
			marginOnly = agreeOf(row)
		}
		if row[0] == "10" && row[1] == "80" {
			withPurity = agreeOf(row)
		}
	}
	if withPurity <= marginOnly {
		t.Fatalf("purity gate did not raise agreement: %v vs %v", withPurity, marginOnly)
	}
	if withPurity < 95 {
		t.Fatalf("default configuration agreement %v%% < 95%%", withPurity)
	}
}

// A3 shape: speedup falls monotonically as keep fraction rises; target
// stays rank 1 in this synthetic setting.
func TestA3Shape(t *testing.T) {
	tbl, err := A3(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	for _, row := range tbl.Rows {
		s := parseSpeedup(t, row[3])
		if s > prev+1e-9 {
			t.Fatalf("speedup rose with keep fraction: %v", row)
		}
		prev = s
		if row[4] != "1" {
			t.Fatalf("target lost at keep=%s", row[0])
		}
	}
}

// A4 shape: recall is non-decreasing in retained dims at fixed clusters,
// and full dims reach (near-)perfect recall.
func TestA4Shape(t *testing.T) {
	tbl, err := A4(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	recalls := map[string]map[int]float64{}
	for _, row := range tbl.Rows {
		c := row[0]
		dims := parseInt(t, row[1])
		r, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if recalls[c] == nil {
			recalls[c] = map[int]float64{}
		}
		recalls[c][dims] = r
	}
	for c, byDims := range recalls {
		if byDims[8] > 0 && byDims[8] < 0.95 {
			t.Fatalf("clusters=%s full-dim recall %v < 0.95", c, byDims[8])
		}
		if byDims[2] > 0 && byDims[4] > 0 && byDims[4] < byDims[2]-0.05 {
			t.Fatalf("clusters=%s recall fell with more dims", c)
		}
	}
}
