package experiments

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
)

// parseSpeedup reads "37.8x" -> 37.8.
func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", s, err)
	}
	return v
}

func parseInt(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("bad int cell %q: %v", s, err)
	}
	return v
}

// Every experiment must produce a non-empty, rectangular table.
func TestAllTablesWellFormed(t *testing.T) {
	tables, err := All(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("got %d tables, want 9", len(tables))
	}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" {
			t.Fatalf("table missing identity: %+v", tbl)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", tbl.ID)
		}
		for ri, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Fatalf("%s row %d: %d cells for %d columns", tbl.ID, ri, len(row), len(tbl.Columns))
			}
		}
	}
}

// E1 shape: Onion must beat the scan by far more for K=1 than K=100, and
// the R-tree must touch more points than Onion.
func TestE1Shape(t *testing.T) {
	tbl, err := E1(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Columns: N, K, scan pts, onion pts, pts speedup, time speedup,
	// rtree pts, onion layers.
	var k1, k100 float64
	for _, row := range tbl.Rows {
		speedup := parseSpeedup(t, row[4])
		if speedup <= 1 {
			t.Fatalf("onion speedup %v <= 1 at N=%s K=%s", speedup, row[0], row[1])
		}
		onionPts := parseInt(t, row[3])
		rtreePts := parseInt(t, row[6])
		if row[1] == "1" && rtreePts < onionPts/4 {
			// The R-tree should not dramatically beat Onion anywhere;
			// at K=1 they may be comparable, deeper K favors Onion.
			t.Logf("note: rtree %d vs onion %d at %s", rtreePts, onionPts, row[0])
		}
		if row[1] == "1" {
			k1 = speedup
		}
		if row[1] == "100" {
			k100 = speedup
		}
	}
	if k1 <= k100 {
		t.Fatalf("top-1 speedup %v must exceed top-100 %v", k1, k100)
	}
}

// E2 shape: order-of-magnitude eval reduction with >= 95% agreement.
func TestE2Shape(t *testing.T) {
	tbl, err := E2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if s := parseSpeedup(t, row[3]); s < 3 {
			t.Fatalf("eval speedup %v < 3", s)
		}
		agree, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if agree < 95 {
			t.Fatalf("agreement %v%% < 95%%", agree)
		}
	}
}

// E3 shape: speedup in (or near) the paper's 4-8x band with the target
// still found.
func TestE3Shape(t *testing.T) {
	tbl, err := E3(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if s := parseSpeedup(t, row[4]); s < 2 {
			t.Fatalf("GLCM speedup %v < 2", s)
		}
		if row[6] != "true" {
			t.Fatal("planted texture not found")
		}
	}
}

// E4 shape: every configuration agrees and pruned does no more pair work
// than DP.
func TestE4Shape(t *testing.T) {
	tbl, err := E4(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[7] != "true" {
			t.Fatalf("evaluators disagree at L=%s M=%s", row[0], row[1])
		}
		if parseInt(t, row[4]) > parseInt(t, row[3]) {
			t.Fatalf("pruned pair evals exceed DP at L=%s M=%s", row[0], row[1])
		}
	}
}

// E5 shape: combined speedup >= both single-axis speedups, and the
// dominant-coefficients model achieves higher pm than HPS.
func TestE5Shape(t *testing.T) {
	tbl, err := E5(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var pmHPS, pmDom float64
	for _, row := range tbl.Rows {
		pm := parseSpeedup(t, row[4])
		pd := parseSpeedup(t, row[5])
		combined := parseSpeedup(t, row[6])
		if combined+1e-9 < pm || combined+1e-9 < pd {
			t.Fatalf("combined %v below pm %v or pd %v", combined, pm, pd)
		}
		switch row[1] {
		case "hps":
			pmHPS = pm
		case "dominant":
			pmDom = pm
		}
	}
	if pmDom <= pmHPS {
		t.Fatalf("dominant-model pm %v must exceed hps pm %v", pmDom, pmHPS)
	}
}

// E6 shape: Pm non-decreasing, Pf non-increasing in T.
func TestE6Shape(t *testing.T) {
	tbl, err := E6(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var prevPm, prevPf float64
	prevPf = 2
	for i, row := range tbl.Rows {
		pm, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && (pm < prevPm-1e-9 || pf > prevPf+1e-9) {
			t.Fatalf("monotonicity broken at row %d", i)
		}
		prevPm, prevPf = pm, pf
	}
}

// E7 shape: pruning preserves the result set and reduces scan work.
func TestE7Shape(t *testing.T) {
	tbl, err := E7(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[6] != "true" {
			t.Fatal("pruned top-10 diverged")
		}
		if parseInt(t, row[3]) > parseInt(t, row[2]) {
			t.Fatal("pruning increased scan work")
		}
	}
}

// E8 shape: all methods agree, full planted recall, pruned <= DP work.
func TestE8Shape(t *testing.T) {
	tbl, err := E8(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var dpEvals, prunedEvals int
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Fatalf("method %s diverged", row[1])
		}
		parts := strings.Split(row[4], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("method %s planted recall %s not full", row[1], row[4])
		}
		switch row[1] {
		case "dp":
			dpEvals = parseInt(t, row[2])
		case "pruned":
			prunedEvals = parseInt(t, row[2])
		}
	}
	if prunedEvals > dpEvals {
		t.Fatalf("pruned pair evals %d exceed DP %d", prunedEvals, dpEvals)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "E1", "e8", "e9", "E9"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("e99"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestWriteShardBaseline(t *testing.T) {
	path := t.TempDir() + "/BENCH_shards.json"
	if err := WriteShardBaseline(Config{Quick: true}, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base ShardBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Tuples == 0 || len(base.Points) != 4 {
		t.Fatalf("malformed baseline: %+v", base)
	}
	if base.Points[0].Shards != 1 || base.Points[0].Speedup != 1 {
		t.Fatalf("first point must be the 1-shard reference: %+v", base.Points[0])
	}
	for _, p := range base.Points {
		if p.QueriesPerSec <= 0 || p.NsPerQuery <= 0 {
			t.Fatalf("non-positive timing in %+v", p)
		}
	}
}

func TestWriteIngestBaseline(t *testing.T) {
	path := t.TempDir() + "/BENCH_ingest.json"
	if err := WriteIngestBaseline(Config{Quick: true}, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base IngestBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Tuples == 0 || base.AppendRows == 0 || base.AppendCalls == 0 || base.QueryCalls == 0 {
		t.Fatalf("malformed baseline: %+v", base)
	}
	if base.AppendNs <= 0 {
		t.Fatalf("non-positive append wall time: %+v", base)
	}
	// The CI gate: growing a dataset through appends never changes
	// answers relative to registering it whole.
	if !base.ResultsIdentical {
		t.Fatal("base+delta answers diverged from the rebuilt-from-scratch engine")
	}
	// Batching quality: the appender must coalesce, not flush per call.
	if base.FlushGenerations == 0 || base.FlushGenerations >= uint64(base.AppendCalls) {
		t.Fatalf("appender did not coalesce: %d flushes for %d calls", base.FlushGenerations, base.AppendCalls)
	}
}

func TestWriteClusterBaseline(t *testing.T) {
	path := t.TempDir() + "/BENCH_cluster.json"
	if err := WriteClusterBaseline(Config{Quick: true}, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base ClusterBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Tuples == 0 || base.SingleNsPerReq <= 0 || len(base.Points) != 3 {
		t.Fatalf("malformed baseline: %+v", base)
	}
	// The CI gate: multi-node serving never changes answers.
	if !base.AllEquivalent {
		t.Fatalf("cluster results diverged from the single-node reference: %+v", base.Points)
	}
	for i, p := range base.Points {
		if p.Nodes != i+1 || p.NsPerReq <= 0 || p.QPS <= 0 || !p.Equivalent {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
	}
}
