// Durability baseline: the machine-readable artifact CI archives as
// BENCH_persist.json, tracking snapshot write time, cold-start restore
// time in Copy vs Map mode, and — the acceptance gate — the
// restore-equivalence bit: a restored engine must answer all six query
// families bit-identically to the engine that wrote the snapshot.
// Timings are informational on shared CI cores; the bit is the gate.

package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"modelir/internal/archive"
	"modelir/internal/core"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/segment"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// PersistBaseline is the BENCH_persist.json artifact.
type PersistBaseline struct {
	Tuples     int `json:"tuples"`
	SceneWH    int `json:"scene_wh"`
	Regions    int `json:"regions"`
	Wells      int `json:"wells"`
	Shards     int `json:"shards"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// BuildNs is the fresh path a snapshot replaces: archive ingest
	// plus the index builds forced by one pass over all six families.
	BuildNs int64 `json:"build_ns"`
	// SnapshotWriteNs / SnapshotBytes measure Engine.Snapshot to a
	// local directory backend.
	SnapshotWriteNs int64 `json:"snapshot_write_ns"`
	SnapshotBytes   int64 `json:"snapshot_bytes"`
	// RestoreCopyNs / RestoreMapNs are cold-start OpenSnapshot wall
	// times. RestoreMapNs is zero when the host cannot mmap.
	RestoreCopyNs int64 `json:"restore_copy_ns"`
	RestoreMapNs  int64 `json:"restore_map_ns"`
	MapSupported  bool  `json:"map_supported"`

	// ResultsIdentical is the acceptance bit: every family's top-K
	// from every restore mode matched the builder's bit for bit.
	ResultsIdentical bool `json:"results_identical"`
}

// persistFamilies runs the six-family matrix and returns the ranked
// items per family, in a fixed order.
func persistFamilies(ctx context.Context, e *core.Engine, pm *linear.ProgressiveModel) ([][]topk.Item, error) {
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		return nil, err
	}
	reqs := []core.Request{
		{Dataset: "gauss", Query: core.LinearQuery{Model: lm}, K: 10},
		{Dataset: "hps", Query: core.SceneQuery{Model: pm}, K: 10},
		{Dataset: "weather", Query: core.FSMQuery{Machine: fsm.FireAnts(), Prefilter: core.FireAntsPrefilter}, K: 10},
		{Dataset: "weather", Query: core.FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 6}, K: 10},
		{Dataset: "basin", Query: core.GeologyQuery{
			Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
			MaxGapFt: 10, MinGamma: 45,
		}, K: 10},
		{Dataset: "hps", Query: core.KnowledgeQuery{Rules: core.HPSTileRules()}, K: 10},
	}
	out := make([][]topk.Item, len(reqs))
	for i, rq := range reqs {
		res, err := e.Run(ctx, rq)
		if err != nil {
			return nil, fmt.Errorf("family %d: %w", i, err)
		}
		out[i] = res.Items
	}
	return out, nil
}

// persistSweep builds the four-family engine, snapshots it, restores
// it cold in both modes, and verifies equivalence.
func persistSweep(cfg Config) (PersistBaseline, error) {
	base := PersistBaseline{
		Tuples: 20_000, SceneWH: 96, Regions: 120, Wells: 100,
		Shards: 4, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if cfg.Quick {
		base.Tuples, base.SceneWH, base.Regions, base.Wells = 5_000, 32, 40, 30
	}
	ctx := cfg.ctx()

	start := time.Now()
	e := core.NewEngineWith(core.Options{Shards: base.Shards, CacheEntries: -1})
	pts, err := synth.GaussianTuples(51, base.Tuples, 3)
	if err != nil {
		return base, err
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 52, W: base.SceneWH, H: base.SceneWH})
	if err != nil {
		return base, err
	}
	scene, err := archive.BuildScene("hps", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 4})
	if err != nil {
		return base, err
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return base, err
	}
	weather, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 53, Regions: base.Regions, Days: 365})
	if err != nil {
		return base, err
	}
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 54, Wells: base.Wells})
	if err != nil {
		return base, err
	}
	for _, step := range []error{
		e.AddTuples("gauss", pts),
		e.AddScene("hps", scene),
		e.AddSeries("weather", weather),
		e.AddWells("basin", wells),
	} {
		if step != nil {
			return base, step
		}
	}
	want, err := persistFamilies(ctx, e, pm)
	if err != nil {
		return base, err
	}
	base.BuildNs = time.Since(start).Nanoseconds()

	dir, err := os.MkdirTemp("", "modelir-persist-*")
	if err != nil {
		return base, err
	}
	defer os.RemoveAll(dir)
	b, err := segment.NewDir(dir)
	if err != nil {
		return base, err
	}
	start = time.Now()
	if err := e.Snapshot(ctx, b); err != nil {
		return base, err
	}
	base.SnapshotWriteNs = time.Since(start).Nanoseconds()
	ents, err := os.ReadDir(dir)
	if err != nil {
		return base, err
	}
	for _, ent := range ents {
		st, err := os.Stat(filepath.Join(dir, ent.Name()))
		if err != nil {
			return base, err
		}
		base.SnapshotBytes += st.Size()
	}

	identical := true
	check := func(mode segment.RestoreMode) (int64, error) {
		start := time.Now()
		re, err := core.OpenSnapshot(b, core.RestoreOptions{Mode: mode})
		if err != nil {
			return 0, err
		}
		wall := time.Since(start).Nanoseconds()
		defer re.Close()
		got, err := persistFamilies(ctx, re, pm)
		if err != nil {
			return wall, err
		}
		for i := range want {
			if !itemsMatch(got[i], want[i]) {
				identical = false
			}
		}
		return wall, nil
	}
	if base.RestoreCopyNs, err = check(segment.Copy); err != nil {
		return base, err
	}
	mapNs, err := check(segment.Map)
	switch {
	case err == nil:
		base.RestoreMapNs, base.MapSupported = mapNs, true
	case errors.Is(err, segment.ErrMapUnsupported):
		base.MapSupported = false
	default:
		return base, err
	}
	base.ResultsIdentical = identical
	return base, nil
}

// WritePersistBaseline runs the durability sweep and writes the JSON
// baseline (the BENCH_persist.json artifact produced by `benchtab
// -persistjson`).
func WritePersistBaseline(cfg Config, path string) error {
	base, err := persistSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
