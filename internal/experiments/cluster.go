// Cluster-serving baseline: the machine-readable artifact CI archives
// as BENCH_cluster.json, tracking scatter-gather overhead and pinning
// multi-node equivalence across commits. Each point boots a real
// in-process cluster (loopback TCP nodes plus a router) over the E9
// linear workload and compares its answers bit-for-bit against a
// single-node engine. On single-core CI hosts the ns_per_req numbers
// are informational (every node shares one CPU); the equivalence bits
// are the acceptance-pinned part.

package experiments

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"runtime"
	"time"

	"modelir/internal/cluster"
	"modelir/internal/core"
)

// ClusterPoint is one node-count measurement.
type ClusterPoint struct {
	Nodes int `json:"nodes"`
	// NsPerReq / QPS time Router.Run end to end: encode, scatter over
	// TCP, remote scans, merge.
	NsPerReq float64 `json:"ns_per_req"`
	QPS      float64 `json:"qps"`
	// Equivalent records whether every run's items matched the
	// single-node reference exactly (IDs and scores).
	Equivalent bool `json:"equivalent"`
}

// ClusterBaseline is the BENCH_cluster.json artifact.
type ClusterBaseline struct {
	Tuples      int `json:"tuples"`
	Dims        int `json:"dims"`
	K           int `json:"k"`
	ShardsPer   int `json:"shards_per_node"`
	Replication int `json:"replication"`
	GOMAXPROCS  int `json:"gomaxprocs"`

	// SingleNsPerReq is the same request on an in-process engine — the
	// zero-network floor the scatter-gather overhead is measured from.
	SingleNsPerReq float64        `json:"single_ns_per_req"`
	Points         []ClusterPoint `json:"points"`
	// AllEquivalent is the CI gate: true iff every point stayed
	// bit-identical to the single-node reference.
	AllEquivalent bool `json:"all_equivalent"`
}

// clusterSweep measures the cluster baseline on the E9 linear workload
// (shrunk under Quick) at node counts 1, 2, 3.
func clusterSweep(cfg Config) (ClusterBaseline, error) {
	n, k, reps := ShardWorkloadSize, 10, 20
	if cfg.Quick {
		n, reps = 5_000, 5
	}
	base := ClusterBaseline{
		Tuples: n, K: k, ShardsPer: 2, Replication: 1,
		GOMAXPROCS: runtime.GOMAXPROCS(0), AllEquivalent: true,
	}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	ctx := cfg.ctx()

	// Single-node reference: the exact answer and the timing floor.
	// Caching is disabled on both sides so every rep pays the scan.
	eng := core.NewEngineWith(core.Options{Shards: base.ShardsPer, CacheEntries: -1})
	if err := eng.AddTuples("t", pts); err != nil {
		return base, err
	}
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
	want, err := eng.Run(ctx, req) // index build untimed
	if err != nil {
		return base, err
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := eng.Run(ctx, req); err != nil {
			return base, err
		}
	}
	base.SingleNsPerReq = float64(time.Since(start).Nanoseconds()) / float64(reps)

	creq := cluster.Request{Dataset: "t", Query: req.Query, K: req.K}
	for _, count := range []int{1, 2, 3} {
		p, err := clusterPoint(ctx, count, base, reps, pts, creq, want)
		if err != nil {
			return base, err
		}
		base.Points = append(base.Points, p)
		base.AllEquivalent = base.AllEquivalent && p.Equivalent
	}
	return base, nil
}

// clusterPoint boots a cluster of count nodes over loopback, times the
// request through the router, and checks every run's equivalence
// against the single-node reference result.
func clusterPoint(ctx context.Context, count int, base ClusterBaseline, reps int, pts [][]float64, req cluster.Request, want core.Result) (point ClusterPoint, err error) {
	point = ClusterPoint{Nodes: count, Equivalent: true}
	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return point, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := cluster.Topology{Nodes: addrs, Replication: base.Replication}
	opt := cluster.NodeOptions{Shards: base.ShardsPer, CacheEntries: -1}
	nodes := make([]*cluster.Node, count)
	defer func() {
		for i, n := range nodes {
			if n != nil {
				n.Close() // also closes its listener
			} else {
				lns[i].Close()
			}
		}
	}()
	for i := range lns {
		node := cluster.NewNode(addrs[i], topo, opt)
		if err := node.AddTuples("t", pts); err != nil {
			return point, err
		}
		node.ServeListener(lns[i])
		nodes[i] = node
	}
	router := cluster.NewRouter(topo)

	check := func() error {
		res, err := router.Run(ctx, req)
		if err != nil {
			return err
		}
		point.Equivalent = point.Equivalent && itemsMatch(res.Items, want.Items)
		return nil
	}
	if err := check(); err != nil { // per-node index builds untimed
		return point, err
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err := check(); err != nil {
			return point, err
		}
	}
	point.NsPerReq = float64(time.Since(start).Nanoseconds()) / float64(reps)
	if point.NsPerReq > 0 {
		point.QPS = 1e9 / point.NsPerReq
	}
	return point, nil
}

// WriteClusterBaseline runs the cluster sweep and writes the JSON
// baseline (the BENCH_cluster.json artifact produced by `benchtab
// -clusterjson`).
func WriteClusterBaseline(cfg Config, path string) error {
	base, err := clusterSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
