package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"modelir/internal/colstore"
	"modelir/internal/core"
	"modelir/internal/onion"
	"modelir/internal/topk"
)

// MemBaseline is the machine-readable memory/layout artifact CI
// archives as BENCH_mem.json: the scan-bound regime's ns/op, B/op and
// allocs/op on the columnar blocked-scan hot path, against the
// row-layout ([][]float64) sequential scan it replaced. CI fails the
// build when the steady-state columnar scan allocates at all, and the
// speedup_vs_row field records the layout win in the perf trajectory.
type MemBaseline struct {
	Tuples     int `json:"tuples"`
	Dims       int `json:"dims"`
	K          int `json:"k"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// RowScanNsPerOp times the row-layout sequential scan (one pointer
	// chase per row) over the whole archive.
	RowScanNsPerOp float64 `json:"row_scan_ns_per_op"`
	// ColScanNsPerOp times the columnar blocked scan with zone-map
	// pruning over the same rows, steady state (pooled heap and
	// scratch, reused result buffer).
	ColScanNsPerOp float64 `json:"col_scan_ns_per_op"`
	// ColScanAllocsPerOp / ColScanBytesPerOp are the steady-state
	// allocation counters; the CI gate requires exactly zero allocs.
	ColScanAllocsPerOp float64 `json:"col_scan_allocs_per_op"`
	ColScanBytesPerOp  float64 `json:"col_scan_bytes_per_op"`
	// SpeedupVsRow = RowScanNsPerOp / ColScanNsPerOp.
	SpeedupVsRow float64 `json:"speedup_vs_row"`

	// EngineNsPerQuery times the full Engine.Run tuple path (1 shard,
	// cache disabled) on the same workload, for the end-to-end view.
	EngineNsPerQuery float64 `json:"engine_ns_per_query"`
	// PointsTouched / PointsZonePruned sample the engine query's
	// pruning profile (1 shard, so the split is deterministic).
	PointsTouched    int `json:"points_touched"`
	PointsZonePruned int `json:"points_zone_pruned"`
}

// memBaseline measures the scan-bound regime on the E9 workload.
func memBaseline(cfg Config) (MemBaseline, error) {
	n, k, reps := ShardWorkloadSize, 10, 30
	if cfg.Quick {
		n, reps = 20_000, 10
	}
	base := MemBaseline{K: k, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Tuples, base.Dims = n, len(pts[0])

	// Row-layout baseline: the pre-columnar sequential scan.
	if _, _, err := onion.ScanTopK(pts, m.Coeffs, k); err != nil { // warm-up
		return base, err
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, _, err := onion.ScanTopK(pts, m.Coeffs, k); err != nil {
			return base, err
		}
	}
	base.RowScanNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(reps)

	// Columnar steady state: pooled heap, reused buffer, zone maps on.
	store, err := colstore.Build(pts, colstore.Options{NormOrder: true})
	if err != nil {
		return base, err
	}
	wNorm := colstore.WeightNorm(m.Coeffs)
	h := topk.MustHeap(k)
	buf := make([]topk.Item, 0, k)
	var cst colstore.Stats
	scan := func() {
		h.Reset()
		store.Scan(m.Coeffs, wNorm, h, nil, nil, nil, &cst)
		buf = h.AppendResults(buf[:0])
	}
	// Allocation counting mirrors testing.AllocsPerRun: GC off so the
	// Mallocs delta counts only the scan's own allocations, not
	// background collector bookkeeping. The warm-up scan runs after the
	// explicit GC because collections empty sync.Pools — steady state
	// starts once the scratch pool is primed.
	var m0, m1 runtime.MemStats
	prevGC := debug.SetGCPercent(-1)
	runtime.GC()
	scan() // prime the scratch pool post-GC
	runtime.ReadMemStats(&m0)
	start = time.Now()
	for r := 0; r < reps; r++ {
		scan()
	}
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	debug.SetGCPercent(prevGC)
	base.ColScanNsPerOp = float64(el.Nanoseconds()) / float64(reps)
	base.ColScanAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(reps)
	base.ColScanBytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(reps)
	if base.ColScanNsPerOp > 0 {
		base.SpeedupVsRow = base.RowScanNsPerOp / base.ColScanNsPerOp
	}

	// End-to-end engine view: 1 shard, cache disabled so the sweep
	// times execution, not cache serving.
	e := core.NewEngineWith(core.Options{Shards: 1, CacheEntries: -1})
	if err := e.AddTuples("t", pts); err != nil {
		return base, err
	}
	ctx := cfg.ctx()
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
	if _, err := e.Run(ctx, req); err != nil { // index build untimed
		return base, err
	}
	start = time.Now()
	var res core.Result
	for r := 0; r < reps; r++ {
		if res, err = e.Run(ctx, req); err != nil {
			return base, err
		}
	}
	base.EngineNsPerQuery = float64(time.Since(start).Nanoseconds()) / float64(reps)
	if det, ok := res.Stats.Detail.(core.LinearTupleStats); ok {
		base.PointsTouched = det.Indexed.PointsTouched
		base.PointsZonePruned = det.Indexed.PointsZonePruned
	}
	return base, nil
}

// WriteMemBaseline measures the memory baseline and writes the JSON
// artifact (the BENCH_mem.json file produced by `benchtab -memjson`).
func WriteMemBaseline(cfg Config, path string) error {
	base, err := memBaseline(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
