package experiments

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"modelir/internal/archive"
	"modelir/internal/bayes"
	"modelir/internal/colstore"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/parallel"
	"modelir/internal/progressive"
	"modelir/internal/pyramid"
	"modelir/internal/sproc"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// KernelFamily is one query family's steady-state scan measurement in
// the BENCH_kernels.json artifact: the columnar kernel (ns/op,
// allocs/op) against the PR 4-era reference implementation of the same
// scan, plus the equality bit proving the two return identical
// results.
type KernelFamily struct {
	Family string `json:"family"`
	// Kernel labels the columnar path (colstore kernel name, "flat-descent", ...).
	Kernel string `json:"kernel"`
	// RefNsPerOp times the reference (pre-columnar) implementation.
	RefNsPerOp float64 `json:"ref_ns_per_op"`
	// NsPerOp / AllocsPerOp / BytesPerOp are the columnar scan's
	// steady-state numbers; CI gates AllocsPerOp == 0 for every family.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Speedup = RefNsPerOp / NsPerOp.
	Speedup float64 `json:"speedup_vs_ref"`
	// Identical reports the columnar scan returned exactly the
	// reference's results.
	Identical bool `json:"results_identical"`
}

// KernelBaseline is the whole artifact: per-family scan kernels plus
// the work-stealing scheduler's skewed-batch wall-clock ratios
// (steal/static at each pool width; > 1 means stealing wins).
type KernelBaseline struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Quick      bool           `json:"quick"`
	Families   []KernelFamily `json:"families"`
	// StealSpeedupNW = static wall-clock / stealing wall-clock on the
	// 16-cell skewed batch at N workers. Expect ~1 at one worker (same
	// work, same order) and > 1 at two or more on multi-core hosts.
	StealSpeedup1W float64 `json:"steal_speedup_1w"`
	StealSpeedup2W float64 `json:"steal_speedup_2w"`
	StealSpeedup4W float64 `json:"steal_speedup_4w"`
}

// measure times fn over reps with the collector parked, mirroring
// testing.AllocsPerRun: one warm-up call primes the sync.Pools after
// the explicit GC (collections empty pools), then the Mallocs delta
// counts only fn's own allocations.
func measure(reps int, fn func()) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	var m0, m1 runtime.MemStats
	prevGC := debug.SetGCPercent(-1)
	runtime.GC()
	fn()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < reps; r++ {
		fn()
	}
	el := time.Since(start)
	runtime.ReadMemStats(&m1)
	debug.SetGCPercent(prevGC)
	return float64(el.Nanoseconds()) / float64(reps),
		float64(m1.Mallocs-m0.Mallocs) / float64(reps),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(reps)
}

func itemsEqual(a, b []topk.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// ---- Reference implementations (the PR 4 shapes) ----

// gridCellPQ is the container/heap frontier the descent used before
// the columnar rewrite — interface boxing per push and all.
type gridCellEntry struct {
	level, x, y int
	upper       float64
}
type gridCellPQ []gridCellEntry

func (q gridCellPQ) Len() int           { return len(q) }
func (q gridCellPQ) Less(i, j int) bool { return q[i].upper > q[j].upper }
func (q gridCellPQ) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *gridCellPQ) Push(v any)        { *q = append(*q, v.(gridCellEntry)) }
func (q *gridCellPQ) Pop() (v any)      { old := *q; n := len(old); v = old[n-1]; *q = old[:n-1]; return }

// gridDescendRef is a faithful copy of the pre-columnar Combined
// descent: map-based binding, per-band Grid pointer chases for every
// envelope and pixel read, fresh frontier/heap/buffers per call. It is
// the reference the scene family's speedup and equality are measured
// against.
func gridDescendRef(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int) ([]topk.Item, error) {
	m := pm.Full()
	bind, err := progressive.Bind(m, mp)
	if err != nil {
		return nil, err
	}
	h := topk.MustHeap(k)
	nTerms := m.NumTerms()
	lo := make([]float64, nTerms)
	hi := make([]float64, nTerms)
	x := make([]float64, nTerms)
	w := mp.Band(0).Level(0).Mean.Width()

	bound := func(level, cx, cy int) (float64, error) {
		for i, b := range bind.Bands {
			l := mp.Band(b).Level(level)
			lo[i] = l.Min.At(cx, cy)
			hi[i] = l.Max.At(cx, cy)
		}
		_, ub, err := m.Interval(lo, hi)
		return ub, err
	}
	pq := &gridCellPQ{}
	heap.Init(pq)
	for _, c := range progressive.Roots(mp) {
		ub, err := bound(c.Level, c.X, c.Y)
		if err != nil {
			return nil, err
		}
		heap.Push(pq, gridCellEntry{level: c.Level, x: c.X, y: c.Y, upper: ub})
	}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(gridCellEntry)
		if f, ok := h.Threshold(); ok && e.upper < f {
			break
		}
		if e.level == 0 {
			for i, b := range bind.Bands {
				x[i] = mp.Band(b).Level(0).Mean.At(e.x, e.y)
			}
			c := pm.EvalLevelUnchecked(0, x)
			if f, ok := h.Threshold(); ok && c+pm.Resid(0) < f {
				continue
			}
			h.OfferScore(int64(e.y*w+e.x), m.EvalUnchecked(x))
			continue
		}
		fine := mp.Band(0).Level(e.level - 1).Mean
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				nx, ny := 2*e.x+dx, 2*e.y+dy
				if nx >= fine.Width() || ny >= fine.Height() {
					continue
				}
				ub, err := bound(e.level-1, nx, ny)
				if err != nil {
					return nil, err
				}
				heap.Push(pq, gridCellEntry{level: e.level - 1, x: nx, y: ny, upper: ub})
			}
		}
	}
	return h.Results(), nil
}

// geoQueryRef reproduces core's row-shaped Fig. 4 SPROC query over one
// well — the per-well closure-pair shape the columnar scanner replaced.
func geoQueryRef(w synth.WellLog, seq []synth.Lithology, maxGapFt, minGamma float64) sproc.Query {
	strata := w.Strata
	return sproc.Query{
		M: len(seq),
		Unary: func(m, item int) float64 {
			s := strata[item]
			if s.Lith != seq[m] {
				return 0
			}
			if s.GammaAPI > minGamma {
				return 1
			}
			return 0
		},
		Pair: func(m, prev, cur int) float64 {
			a, b := strata[prev], strata[cur]
			if b.TopFt <= a.TopFt {
				return 0
			}
			gap := b.TopFt - (a.TopFt + a.ThickFt)
			if gap < 0 {
				gap = 0
			}
			if gap > maxGapFt {
				return 0
			}
			return 1
		},
	}
}

// kernelBaseline measures every family's steady-state scan kernel.
func kernelBaseline(cfg Config) (KernelBaseline, error) {
	base := KernelBaseline{GOMAXPROCS: runtime.GOMAXPROCS(0), Quick: cfg.Quick}

	// ---- linear: specialized colstore kernel vs generic fallback ----
	n, reps := ShardWorkloadSize, 30
	if cfg.Quick {
		n, reps = 20_000, 10
	}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	// No norm ordering here: the zone maps would prune most blocks and
	// the measurement would time the (kernel-invariant) pruning rather
	// than the dot-product body the kernels differ in. BENCH_mem.json
	// still records the pruned configuration.
	spec, err := colstore.Build(pts, colstore.Options{})
	if err != nil {
		return base, err
	}
	gen, err := colstore.Build(pts, colstore.Options{ForceGenericKernel: true})
	if err != nil {
		return base, err
	}
	wNorm := colstore.WeightNorm(m.Coeffs)
	{
		h := topk.MustHeap(10)
		buf := make([]topk.Item, 0, 10)
		var cst colstore.Stats
		scan := func(st *colstore.Store) []topk.Item {
			h.Reset()
			st.Scan(m.Coeffs, wNorm, h, nil, nil, nil, &cst)
			buf = h.AppendResults(buf[:0])
			return buf
		}
		refItems := append([]topk.Item(nil), scan(gen)...)
		newItems := append([]topk.Item(nil), scan(spec)...)
		refNs, _, _ := measure(reps, func() { scan(gen) })
		ns, allocs, bytes := measure(reps, func() { scan(spec) })
		base.Families = append(base.Families, family("linear", spec.KernelName(), refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- scene: flat-pyramid descent vs Grid descent ----
	side, sceneReps := 256, 20
	if cfg.Quick {
		side, sceneReps = 96, 10
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 55, W: side, H: side})
	if err != nil {
		return base, err
	}
	mp, err := pyramid.BuildMultiband(sc.Bands, 6)
	if err != nil {
		return base, err
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return base, err
	}
	{
		roots := progressive.Roots(mp)
		buf := make([]topk.Item, 0, 10)
		scan := func() []topk.Item {
			var err error
			buf, _, err = progressive.CombinedShardAppend(pm, mp, 10, roots, progressive.DescendOpts{}, buf[:0])
			if err != nil {
				panic(err)
			}
			return buf
		}
		refItems, err := gridDescendRef(pm, mp, 10)
		if err != nil {
			return base, err
		}
		newItems := append([]topk.Item(nil), scan()...)
		refNs, _, _ := measure(sceneReps, func() {
			if _, err := gridDescendRef(pm, mp, 10); err != nil {
				panic(err)
			}
		})
		ns, allocs, bytes := measure(sceneReps, func() { scan() })
		base.Families = append(base.Families, family("scene", "flat-descent", refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- fsm: precomputed event plane vs per-query classification ----
	regions, fsmReps := 400, 30
	if cfg.Quick {
		regions, fsmReps = 100, 10
	}
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 71, Regions: regions, Days: 365, MeanTempC: 16})
	if err != nil {
		return base, err
	}
	machine := fsm.FireAnts()
	// Ingest-shaped event plane: one flat allocation plus offsets.
	var events []fsm.Event
	evOff := []int{0}
	for _, reg := range arch {
		for _, d := range reg.Days {
			events = append(events, fsm.ClassifyDay(d))
		}
		evOff = append(evOff, len(events))
	}
	{
		h := topk.MustHeap(10)
		buf := make([]topk.Item, 0, 10)
		refScan := func() []topk.Item {
			h.Reset()
			for _, reg := range arch {
				ev := fsm.ClassifySeries(reg.Days)
				score, err := fsm.FlyScore(machine, ev)
				if err != nil {
					panic(err)
				}
				if score > 0 {
					h.OfferScore(int64(reg.Region), score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		newScan := func() []topk.Item {
			h.Reset()
			for i, reg := range arch {
				score, err := fsm.FlyScore(machine, events[evOff[i]:evOff[i+1]])
				if err != nil {
					panic(err)
				}
				if score > 0 {
					h.OfferScore(int64(reg.Region), score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		refItems := append([]topk.Item(nil), refScan()...)
		newItems := append([]topk.Item(nil), newScan()...)
		refNs, _, _ := measure(fsmReps, func() { refScan() })
		ns, allocs, bytes := measure(fsmReps, func() { newScan() })
		base.Families = append(base.Families, family("fsm", "event-plane", refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- fsm-distance: scratch extract+distance vs fresh ----
	distRegions, distReps := 60, 10
	if cfg.Quick {
		distRegions, distReps = 20, 5
	}
	{
		const horizon = 6
		h := topk.MustHeap(10)
		buf := make([]topk.Item, 0, 10)
		sub := arch[:distRegions]
		sc := fsm.NewScratch()
		refScan := func() []topk.Item {
			h.Reset()
			for _, reg := range sub {
				ev := fsm.ClassifySeries(reg.Days)
				ext, err := fsm.Extract(machine, [][]fsm.Event{ev})
				if err != nil {
					panic(err)
				}
				d, err := fsm.Distance(machine, ext, horizon)
				if err != nil {
					panic(err)
				}
				h.OfferScore(int64(reg.Region), 1-d)
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		newScan := func() []topk.Item {
			h.Reset()
			for i := range sub {
				ext, err := fsm.ExtractWith(machine, events[evOff[i]:evOff[i+1]], sc)
				if err != nil {
					panic(err)
				}
				d, err := fsm.DistanceWith(machine, ext, horizon, sc)
				if err != nil {
					panic(err)
				}
				h.OfferScore(int64(sub[i].Region), 1-d)
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		refItems := append([]topk.Item(nil), refScan()...)
		newItems := append([]topk.Item(nil), newScan()...)
		refNs, _, _ := measure(distReps, func() { refScan() })
		ns, allocs, bytes := measure(distReps, func() { newScan() })
		base.Families = append(base.Families, family("fsm-distance", "scratch-extract", refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- geology: columnar strata planes + top-1 DP vs row DP ----
	wellCount, geoReps := 200, 10
	if cfg.Quick {
		wellCount, geoReps = 60, 5
	}
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 81, Wells: wellCount})
	if err != nil {
		return base, err
	}
	seq := []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone}
	const maxGapFt, minGamma = 10.0, 45.0
	{
		// Columnar strata planes (the wellShard shape).
		var lith []synth.Lithology
		var topFt, thickFt, gamma []float64
		off := []int{0}
		for _, w := range wells {
			for _, st := range w.Strata {
				lith = append(lith, st.Lith)
				topFt = append(topFt, st.TopFt)
				thickFt = append(thickFt, st.ThickFt)
				gamma = append(gamma, st.GammaAPI)
			}
			off = append(off, len(lith))
		}
		baseOff := 0
		colQuery := sproc.Query{
			M: len(seq),
			Unary: func(m, item int) float64 {
				s := baseOff + item
				if lith[s] != seq[m] {
					return 0
				}
				if gamma[s] > minGamma {
					return 1
				}
				return 0
			},
			Pair: func(m, prev, cur int) float64 {
				a, b := baseOff+prev, baseOff+cur
				if topFt[b] <= topFt[a] {
					return 0
				}
				gap := topFt[b] - (topFt[a] + thickFt[a])
				if gap < 0 {
					gap = 0
				}
				if gap > maxGapFt {
					return 0
				}
				return 1
			},
		}
		ctx := context.Background()
		h := topk.MustHeap(10)
		buf := make([]topk.Item, 0, 10)
		sc := sproc.NewScratch()
		refScan := func() []topk.Item {
			h.Reset()
			for _, w := range wells {
				q := geoQueryRef(w, seq, maxGapFt, minGamma)
				matches, _, err := sproc.DPCtx(ctx, len(w.Strata), q, 1)
				if err != nil {
					panic(err)
				}
				if len(matches) > 0 && matches[0].Score > 0 {
					h.OfferScore(int64(w.Well), matches[0].Score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		newScan := func() []topk.Item {
			h.Reset()
			for i, w := range wells {
				baseOff = off[i]
				match, _, err := sproc.DP1Ctx(ctx, len(w.Strata), colQuery, sc)
				if err != nil {
					panic(err)
				}
				if match.Score > 0 {
					h.OfferScore(int64(w.Well), match.Score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		refItems := append([]topk.Item(nil), refScan()...)
		newItems := append([]topk.Item(nil), newScan()...)
		refNs, _, _ := measure(geoReps, func() { refScan() })
		ns, allocs, bytes := measure(geoReps, func() { newScan() })
		base.Families = append(base.Families, family("geology", "soa-dp1", refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- knowledge: compiled rules over flat features vs map path ----
	kSide, kReps := 256, 50
	if cfg.Quick {
		kSide, kReps = 96, 20
	}
	ksc, err := synth.LandsatScene(synth.SceneConfig{Seed: 9, W: kSide, H: kSide})
	if err != nil {
		return base, err
	}
	karch, err := archive.BuildScene("k", ksc.Bands, archive.Options{TileSize: 16, PyramidLevels: 3})
	if err != nil {
		return base, err
	}
	{
		rules := bayes.NewRuleSet().
			Require("b4.mean", bayes.Above{Lo: 120, Hi: 160}).
			Require("b5.mean", bayes.Above{Lo: 80, Hi: 120}).
			Add("elev.mean", bayes.Below{Lo: 800, Hi: 1200}, 0.5)
		// Flat feature matrix (the sceneSet shape).
		cols := make([]string, 0, karch.NumBands()*4)
		for _, name := range karch.BandNames {
			cols = append(cols, name+".mean", name+".std", name+".min", name+".max")
		}
		feat := make([]float64, len(karch.Tiles)*len(cols))
		for b := 0; b < karch.NumBands(); b++ {
			for ti := range karch.Tiles {
				st := karch.TileFeatures[b][ti].Stats
				row := feat[ti*len(cols):]
				row[b*4], row[b*4+1], row[b*4+2], row[b*4+3] = st.Mean, st.Std, st.Min, st.Max
			}
		}
		comp, err := rules.Compile(cols)
		if err != nil {
			return base, err
		}
		h := topk.MustHeap(10)
		buf := make([]topk.Item, 0, 10)
		vals := make(map[string]float64, len(cols))
		refScan := func() []topk.Item {
			h.Reset()
			for ti := range karch.Tiles {
				for b, name := range karch.BandNames {
					st := karch.TileFeatures[b][ti].Stats
					vals[name+".mean"] = st.Mean
					vals[name+".std"] = st.Std
					vals[name+".min"] = st.Min
					vals[name+".max"] = st.Max
				}
				score, err := rules.Score(vals)
				if err != nil {
					panic(err)
				}
				if score > 0 {
					h.OfferScore(int64(ti), score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		stride := len(cols)
		newScan := func() []topk.Item {
			h.Reset()
			for ti := range karch.Tiles {
				score := comp.ScoreRow(feat[ti*stride : (ti+1)*stride])
				if score > 0 {
					h.OfferScore(int64(ti), score)
				}
			}
			buf = h.AppendResults(buf[:0])
			return buf
		}
		refItems := append([]topk.Item(nil), refScan()...)
		newItems := append([]topk.Item(nil), newScan()...)
		refNs, _, _ := measure(kReps, func() { refScan() })
		ns, allocs, bytes := measure(kReps, func() { newScan() })
		base.Families = append(base.Families, family("knowledge", "compiled-rules", refNs, ns, allocs, bytes, itemsEqual(refItems, newItems)))
	}

	// ---- work-stealing: skewed 16-cell batch, static vs stealing ----
	stealUnits := 60
	if cfg.Quick {
		stealUnits = 20
	}
	base.StealSpeedup1W = stealRatio(1, stealUnits)
	base.StealSpeedup2W = stealRatio(2, stealUnits)
	base.StealSpeedup4W = stealRatio(4, stealUnits)
	return base, nil
}

func family(name, kernel string, refNs, ns, allocs, bytes float64, identical bool) KernelFamily {
	f := KernelFamily{
		Family: name, Kernel: kernel,
		RefNsPerOp: refNs, NsPerOp: ns,
		AllocsPerOp: allocs, BytesPerOp: bytes,
		Identical: identical,
	}
	if ns > 0 {
		f.Speedup = refNs / ns
	}
	return f
}

// stealSpin burns deterministic CPU work.
func stealSpin(units int) uint64 {
	x := uint64(88172645463325252)
	for i := 0; i < units*400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

var stealSink atomic.Uint64

// stealRatio times the skewed batch (cell 0 carries 8x the work) under
// the pre-rewrite static partitioner and under parallel.ForEachCtx's
// work-stealing scheduler, returning static/steal (higher = stealing
// wins). Median of 5 runs each to damp scheduler noise.
func stealRatio(workers, units int) float64 {
	const cells = 16
	work := func(i int) error {
		u := units
		if i == 0 {
			u *= 8
		}
		stealSink.Add(stealSpin(u))
		return nil
	}
	static := func() {
		var wg sync.WaitGroup
		chunk := (cells + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > cells {
				hi = cells
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					work(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	steal := func() {
		if err := parallel.ForEachCtx(context.Background(), cells, workers, work); err != nil {
			panic(err)
		}
	}
	med := func(fn func()) float64 {
		fn() // warm-up
		var runs []float64
		for r := 0; r < 5; r++ {
			start := time.Now()
			fn()
			runs = append(runs, float64(time.Since(start).Nanoseconds()))
		}
		for i := range runs {
			for j := i + 1; j < len(runs); j++ {
				if runs[j] < runs[i] {
					runs[i], runs[j] = runs[j], runs[i]
				}
			}
		}
		return runs[len(runs)/2]
	}
	s := med(static)
	st := med(steal)
	if st <= 0 {
		return 0
	}
	return s / st
}

// WriteKernelBaseline measures the kernel baseline and writes the JSON
// artifact (the BENCH_kernels.json file produced by
// `benchtab -kerneljson`).
func WriteKernelBaseline(cfg Config, path string) error {
	base, err := kernelBaseline(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	// A human-readable echo so local runs don't need jq to read the
	// artifact.
	for _, f := range base.Families {
		fmt.Printf("  %-13s %-16s %9.0f ns/op  ref %9.0f ns/op  %5.2fx  allocs/op %g  identical=%v\n",
			f.Family, f.Kernel, f.NsPerOp, f.RefNsPerOp, f.Speedup, f.AllocsPerOp, f.Identical)
	}
	fmt.Printf("  steal speedup: 1w %.2fx  2w %.2fx  4w %.2fx\n",
		base.StealSpeedup1W, base.StealSpeedup2W, base.StealSpeedup4W)
	return nil
}
