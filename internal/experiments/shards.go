package experiments

import (
	"encoding/json"
	"errors"
	"os"
	"runtime"
	"sync"
	"time"

	"modelir/internal/core"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

// ShardPoint is one row of the shard-scaling sweep: query throughput of
// the sharded tuple engine at a given shard count, on one fixed
// archive and model.
type ShardPoint struct {
	Shards        int     `json:"shards"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	NsPerQuery    float64 `json:"ns_per_query"`
	// PointsTouched samples the last query's pruning stats. For
	// shards >= 2 it is scheduling-dependent (how far a shard scans
	// before the shared bound prunes it varies with interleaving), so
	// diff the 1-shard row, not this, when tracking pruning across
	// commits.
	PointsTouched int `json:"points_touched_sample"`
	// Speedup is throughput relative to the 1-shard row.
	Speedup float64 `json:"speedup"`
}

// ShardBaseline is the machine-readable artifact CI archives as
// BENCH_shards.json so the speedup curve is visible in the perf
// trajectory across commits. Cancellation behavior is part of the
// record: when benchtab's -timeout expires mid-sweep, the sweep stops
// at the query that observed ctx.Err(), Cancelled is set, CancelError
// names the context error, and Points holds only the shard counts that
// completed — a timed-out run still produces a valid, honest artifact.
type ShardBaseline struct {
	Tuples      int          `json:"tuples"`
	Dims        int          `json:"dims"`
	K           int          `json:"k"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	TimeoutMS   int64        `json:"timeout_ms,omitempty"`
	Cancelled   bool         `json:"cancelled"`
	CancelError string       `json:"cancel_error,omitempty"`
	Points      []ShardPoint `json:"points"`
}

// shardSweep times Engine.Run (LinearQuery) over ShardWorkload at each
// shard count, memoized per Quick flag so `benchtab -shardjson` and a
// selected E9 share one run instead of repeating a multi-minute
// benchmark. Cancelled (timeout-truncated) and failed sweeps are NOT
// memoized: a later caller in the same process — benchtab's test
// binary runs several invocations — gets a real sweep, not a stale
// partial one.
func shardSweep(cfg Config) (ShardBaseline, error) {
	i := 0
	if cfg.Quick {
		i = 1
	}
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if c := sweepCache[i]; c != nil {
		return *c, nil
	}
	base, err := runShardSweep(cfg)
	if err == nil && !base.Cancelled {
		sweepCache[i] = &base
	}
	return base, err
}

var (
	sweepMu    sync.Mutex
	sweepCache [2]*ShardBaseline
)

// ShardWorkloadSize is the full-scale E9 archive size (quick mode
// shrinks it); bench_test.go's BenchmarkLinearTopKSharded uses the
// same constant so the benchmark and BENCH_shards.json stay on one
// workload.
const ShardWorkloadSize = 100_000

// ShardWorkload is the canonical E9 fixture — `BenchmarkLinearTopKSharded`
// and the CI-archived BENCH_shards.json must measure the same archive
// and model, so both build it here. 8 dimensions put the Onion index in
// its weak-pruning regime (direction-sampled layers bound loosely and
// queries reach the core bucket), making the query scan-bound — the
// workload shard fan-out exists for.
func ShardWorkload(n int) ([][]float64, *linear.Model, error) {
	pts, err := synth.GaussianTuples(91, n, 8)
	if err != nil {
		return nil, nil, err
	}
	m, err := linear.New(
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"},
		[]float64{1, -0.5, 2, 0.25, -1.5, 0.75, -0.25, 1.25}, 0)
	if err != nil {
		return nil, nil, err
	}
	return pts, m, nil
}

func runShardSweep(cfg Config) (ShardBaseline, error) {
	n, k, reps := ShardWorkloadSize, 10, 20
	if cfg.Quick {
		n, reps = 20_000, 5
	}
	ctx := cfg.ctx()
	base := ShardBaseline{
		Tuples:     n,
		K:          k,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TimeoutMS:  cfg.Timeout.Milliseconds(),
	}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	// recordCancel converts a context error into sweep metadata: the
	// artifact records that (and why) the sweep was cut short instead
	// of failing the whole run.
	recordCancel := func(err error) bool {
		if ce := ctx.Err(); ce != nil && errors.Is(err, ce) {
			base.Cancelled = true
			base.CancelError = ce.Error()
			return true
		}
		return false
	}
	for _, shards := range []int{1, 2, 4, 8} {
		// Cache disabled: the sweep times execution, not cache serving.
		e := core.NewEngineWith(core.Options{Shards: shards, CacheEntries: -1})
		if err := e.AddTuples("t", pts); err != nil {
			return base, err
		}
		req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
		// Build indexes outside the timed region.
		if _, err := e.Run(ctx, req); err != nil {
			if recordCancel(err) {
				return base, nil
			}
			return base, err
		}
		var touched int
		start := time.Now()
		cancelled := false
		for r := 0; r < reps; r++ {
			res, err := e.Run(ctx, req)
			if err != nil {
				if recordCancel(err) {
					cancelled = true
					break
				}
				return base, err
			}
			st, _ := res.Stats.Detail.(core.LinearTupleStats)
			touched = st.Indexed.PointsTouched
		}
		if cancelled {
			return base, nil
		}
		el := time.Since(start)
		p := ShardPoint{
			Shards:        shards,
			NsPerQuery:    float64(el.Nanoseconds()) / float64(reps),
			QueriesPerSec: float64(reps) / el.Seconds(),
			PointsTouched: touched,
		}
		if len(base.Points) > 0 {
			p.Speedup = p.QueriesPerSec / base.Points[0].QueriesPerSec
		} else {
			p.Speedup = 1
		}
		base.Points = append(base.Points, p)
	}
	return base, nil
}

// E9 measures shard scaling of parallel top-K query execution over the
// tuple engine (the sharded-engine refactor; not part of the paper's
// original E1-E8 suite).
func E9(cfg Config) (Table, error) {
	t := Table{
		ID:    "E9",
		Title: "Shard scaling of LinearTopKTuples (8-attr Gaussian tuples, scan-bound regime)",
		Columns: []string{
			"shards", "queries/s", "ns/query", "pts touched", "speedup vs 1 shard",
		},
	}
	base, err := shardSweep(cfg)
	if err != nil {
		return t, err
	}
	for _, p := range base.Points {
		t.Rows = append(t.Rows, []string{
			f("%d", p.Shards),
			f("%.1f", p.QueriesPerSec),
			f("%.0f", p.NsPerQuery),
			f("%d", p.PointsTouched),
			f("%.2fx", p.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		f("GOMAXPROCS=%d; shard fan-out buys wall-clock only with multiple cores", base.GOMAXPROCS),
		"results are shard-count invariant (see core's TestShardEquivalenceAllFamilies)")
	if base.Cancelled {
		t.Notes = append(t.Notes,
			f("sweep cancelled by -timeout (%s); rows above are the shard counts that completed", base.CancelError))
	}
	return t, nil
}

// WriteShardBaseline runs the shard sweep and writes the JSON baseline
// (the BENCH_shards.json artifact produced by `benchtab -shardjson`).
func WriteShardBaseline(cfg Config, path string) error {
	base, err := shardSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
