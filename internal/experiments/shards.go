package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"

	"modelir/internal/core"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

// ShardPoint is one row of the shard-scaling sweep: query throughput of
// the sharded tuple engine at a given shard count, on one fixed
// archive and model.
type ShardPoint struct {
	Shards        int     `json:"shards"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	NsPerQuery    float64 `json:"ns_per_query"`
	// PointsTouched samples the last query's pruning stats. For
	// shards >= 2 it is scheduling-dependent (how far a shard scans
	// before the shared bound prunes it varies with interleaving), so
	// diff the 1-shard row, not this, when tracking pruning across
	// commits.
	PointsTouched int `json:"points_touched_sample"`
	// Speedup is throughput relative to the 1-shard row.
	Speedup float64 `json:"speedup"`
}

// ShardBaseline is the machine-readable artifact CI archives as
// BENCH_shards.json so the speedup curve is visible in the perf
// trajectory across commits.
type ShardBaseline struct {
	Tuples     int          `json:"tuples"`
	Dims       int          `json:"dims"`
	K          int          `json:"k"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ShardPoint `json:"points"`
}

// shardSweep times LinearTopKTuples over ShardWorkload at each shard
// count, memoized per Config so `benchtab -shardjson` and a selected
// E9 share one run instead of repeating a multi-minute benchmark.
func shardSweep(cfg Config) (ShardBaseline, error) {
	c := &sweepCache[0]
	if cfg.Quick {
		c = &sweepCache[1]
	}
	c.once.Do(func() { c.base, c.err = runShardSweep(cfg) })
	return c.base, c.err
}

var sweepCache [2]struct {
	once sync.Once
	base ShardBaseline
	err  error
}

// ShardWorkloadSize is the full-scale E9 archive size (quick mode
// shrinks it); bench_test.go's BenchmarkLinearTopKSharded uses the
// same constant so the benchmark and BENCH_shards.json stay on one
// workload.
const ShardWorkloadSize = 100_000

// ShardWorkload is the canonical E9 fixture — `BenchmarkLinearTopKSharded`
// and the CI-archived BENCH_shards.json must measure the same archive
// and model, so both build it here. 8 dimensions put the Onion index in
// its weak-pruning regime (direction-sampled layers bound loosely and
// queries reach the core bucket), making the query scan-bound — the
// workload shard fan-out exists for.
func ShardWorkload(n int) ([][]float64, *linear.Model, error) {
	pts, err := synth.GaussianTuples(91, n, 8)
	if err != nil {
		return nil, nil, err
	}
	m, err := linear.New(
		[]string{"a", "b", "c", "d", "e", "f", "g", "h"},
		[]float64{1, -0.5, 2, 0.25, -1.5, 0.75, -0.25, 1.25}, 0)
	if err != nil {
		return nil, nil, err
	}
	return pts, m, nil
}

func runShardSweep(cfg Config) (ShardBaseline, error) {
	n, k, reps := ShardWorkloadSize, 10, 20
	if cfg.Quick {
		n, reps = 20_000, 5
	}
	base := ShardBaseline{Tuples: n, K: k, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	for _, shards := range []int{1, 2, 4, 8} {
		e := core.NewEngineWith(core.Options{Shards: shards})
		if err := e.AddTuples("t", pts); err != nil {
			return base, err
		}
		// Build indexes outside the timed region.
		if _, _, err := e.LinearTopKTuples("t", m, k); err != nil {
			return base, err
		}
		var touched int
		start := time.Now()
		for r := 0; r < reps; r++ {
			_, st, err := e.LinearTopKTuples("t", m, k)
			if err != nil {
				return base, err
			}
			touched = st.Indexed.PointsTouched
		}
		el := time.Since(start)
		p := ShardPoint{
			Shards:        shards,
			NsPerQuery:    float64(el.Nanoseconds()) / float64(reps),
			QueriesPerSec: float64(reps) / el.Seconds(),
			PointsTouched: touched,
		}
		if len(base.Points) > 0 {
			p.Speedup = p.QueriesPerSec / base.Points[0].QueriesPerSec
		} else {
			p.Speedup = 1
		}
		base.Points = append(base.Points, p)
	}
	return base, nil
}

// E9 measures shard scaling of parallel top-K query execution over the
// tuple engine (the sharded-engine refactor; not part of the paper's
// original E1-E8 suite).
func E9(cfg Config) (Table, error) {
	t := Table{
		ID:    "E9",
		Title: "Shard scaling of LinearTopKTuples (8-attr Gaussian tuples, scan-bound regime)",
		Columns: []string{
			"shards", "queries/s", "ns/query", "pts touched", "speedup vs 1 shard",
		},
	}
	base, err := shardSweep(cfg)
	if err != nil {
		return t, err
	}
	for _, p := range base.Points {
		t.Rows = append(t.Rows, []string{
			f("%d", p.Shards),
			f("%.1f", p.QueriesPerSec),
			f("%.0f", p.NsPerQuery),
			f("%d", p.PointsTouched),
			f("%.2fx", p.Speedup),
		})
	}
	t.Notes = append(t.Notes,
		f("GOMAXPROCS=%d; shard fan-out buys wall-clock only with multiple cores", base.GOMAXPROCS),
		"results are shard-count invariant (see core's TestShardEquivalenceAllFamilies)")
	return t, nil
}

// WriteShardBaseline runs the shard sweep and writes the JSON baseline
// (the BENCH_shards.json artifact produced by `benchtab -shardjson`).
func WriteShardBaseline(cfg Config, path string) error {
	base, err := shardSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
