package experiments

import (
	"math/rand"
	"time"

	"modelir/internal/bayes"
	"modelir/internal/features"
	"modelir/internal/onion"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
	"modelir/internal/svd"
	"modelir/internal/synth"
)

// Ablations for the design choices DESIGN.md calls out: the Onion layer
// cap and direction count (the d >= 4 substitution), the progressive
// classifier's two gates, the texture prefilter's keep fraction, and
// the [14] clustering+SVD baseline's cluster/dimension trade-off.

// A1 ablates the Onion index: layer cap, peel-direction count (for the
// d >= 4 direction-sampled construction) and data correlation.
func A1(cfg Config) (Table, error) {
	t := Table{
		ID:    "A1",
		Title: "Ablation: Onion layer cap / directions / data distribution (top-10 queries)",
		Columns: []string{
			"dist", "d", "max layers", "dirs", "pts touched", "layers scanned", "exact",
		},
	}
	n := 50_000
	queries := 10
	if cfg.Quick {
		n = 10_000
		queries = 3
	}
	type variant struct {
		dist string
		d    int
		gen  func() ([][]float64, error)
	}
	variants := []variant{
		{"iid", 3, func() ([][]float64, error) { return synth.GaussianTuples(201, n, 3) }},
		{"corr0.8", 3, func() ([][]float64, error) { return synth.CorrelatedTuples(202, n, 3, 0.8) }},
		{"iid", 6, func() ([][]float64, error) { return synth.GaussianTuples(203, n, 6) }},
	}
	for _, v := range variants {
		pts, err := v.gen()
		if err != nil {
			return t, err
		}
		type cfgRow struct {
			layers, dirs int
		}
		rows := []cfgRow{{8, 16}, {48, 16}, {48, 64}}
		if v.d == 3 {
			// Exact hull peeling ignores direction count.
			rows = []cfgRow{{4, 0}, {16, 0}, {48, 0}}
		}
		for _, r := range rows {
			ix, err := onion.Build(pts, onion.Options{MaxLayers: r.layers, Directions: r.dirs})
			if err != nil {
				return t, err
			}
			rng := rand.New(rand.NewSource(9))
			touched, layers := 0, 0
			exact := true
			for q := 0; q < queries; q++ {
				w := make([]float64, v.d)
				for i := range w {
					w[i] = rng.NormFloat64()
				}
				got, st, err := ix.TopK(w, 10)
				if err != nil {
					return t, err
				}
				want, _, err := onion.ScanTopK(pts, w, 10)
				if err != nil {
					return t, err
				}
				for i := range want {
					if got[i].ID != want[i].ID {
						exact = false
					}
				}
				touched += st.PointsTouched
				layers += st.LayersScanned
			}
			dirsCell := f("%d", r.dirs)
			if v.d == 3 {
				dirsCell = "-"
			}
			t.Rows = append(t.Rows, []string{
				v.dist, f("%d", v.d), f("%d", r.layers), dirsCell,
				f("%d", touched/queries), f("%d", layers/queries), f("%v", exact),
			})
		}
	}
	t.Notes = append(t.Notes,
		"exactness must hold in every cell (the bound check guarantees it; layering",
		"quality only moves work); deeper layer caps cut the core-bucket fallback and",
		"correlated clouds have thinner hulls. Honest negative result: at d=6 the",
		"direction-sampled substitution cannot prune i.i.d. Gaussian data — both the",
		"box and Cauchy-Schwarz suffix bounds exceed the attainable top-K floor, so",
		"every point is touched. Exact high-dimensional convex layering (which the",
		"Onion paper also does not attempt; its evaluation is 3-attribute) would be",
		"required; results remain exact either way.")
	return t, nil
}

// A2 ablates the progressive classifier's two gates: posterior-margin
// threshold and block-purity (max-min envelope) bound.
func A2(cfg Config) (Table, error) {
	t := Table{
		ID:    "A2",
		Title: "Ablation: progressive classification gates (margin x purity)",
		Columns: []string{
			"margin", "max range", "evals", "speedup", "agreement",
		},
	}
	size := 256
	if cfg.Quick {
		size = 128
	}
	mb, g, err := classScene(31, size, size)
	if err != nil {
		return t, err
	}
	flat, flatEvals, err := g.ClassifyScene(mb)
	if err != nil {
		return t, err
	}
	mp, err := pyramid.BuildMultiband(mb, 6)
	if err != nil {
		return t, err
	}
	for _, opt := range []bayes.ProgressiveOptions{
		{MarginThreshold: 10, MaxRange: 0},   // margin only
		{MarginThreshold: 10, MaxRange: 40},  // strict purity
		{MarginThreshold: 10, MaxRange: 80},  // the default
		{MarginThreshold: 10, MaxRange: 150}, // loose purity
		{MarginThreshold: 100, MaxRange: 0},  // very strict margin only
	} {
		prog, st, err := g.ClassifyProgressiveOpts(mp, opt)
		if err != nil {
			return t, err
		}
		agree := 0
		for i, v := range flat.Data() {
			if prog.Data()[i] == v {
				agree++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%.0f", opt.MarginThreshold), f("%.0f", opt.MaxRange),
			f("%d", st.TotalEvals()),
			f("%.1fx", float64(flatEvals)/float64(st.TotalEvals())),
			f("%.2f%%", 100*float64(agree)/float64(len(flat.Data()))),
		})
	}
	t.Notes = append(t.Notes,
		"margin alone over-commits on mixed blocks (fast but low agreement);",
		"purity alone controls agreement; the pair trades speed for fidelity",
		"smoothly — the shipped default (10, 80) sits at the knee.")
	return t, nil
}

// A3 ablates the texture prefilter's keep fraction.
func A3(cfg Config) (Table, error) {
	t := Table{
		ID:    "A3",
		Title: "Ablation: progressive texture prefilter keep-fraction",
		Columns: []string{
			"keep", "flat GLCMs", "prog GLCMs", "speedup", "target rank",
		},
	}
	size := 256
	if cfg.Quick {
		size = 128
	}
	const tile = 32
	rng := rand.New(rand.NewSource(77))
	g := raster.MustGrid(size, size)
	for i := range g.Data() {
		g.Data()[i] = 95 + rng.Float64()*10
	}
	tx, ty := (size/tile/2)*tile, (size/tile/2)*tile
	for y := 0; y < tile; y++ {
		for x := 0; x < tile; x++ {
			v := 50.0
			if ((x/4)+(y/4))%2 == 0 {
				v = 200
			}
			g.Set(tx+x, ty+y, v)
		}
	}
	tiles := g.Tiles(tile)
	target := raster.Rect{X0: tx, Y0: ty, X1: tx + tile, Y1: ty + tile}
	p, err := pyramid.Build(g, 4)
	if err != nil {
		return t, err
	}
	const coarseLevel = 2
	coarse := p.Level(coarseLevel)
	cRect := raster.Rect{
		X0: target.X0 / coarse.Scale, Y0: target.Y0 / coarse.Scale,
		X1: target.X1 / coarse.Scale, Y1: target.Y1 / coarse.Scale,
	}
	base := features.TextureQuery{Bins: 8, Levels: 8, Lo: 0, Hi: 255}
	base.TargetHist, err = features.NewHistogram(coarse.Mean, cRect, base.Bins, base.Lo, base.Hi)
	if err != nil {
		return t, err
	}
	base.TargetTexture, err = features.GLCM(g, target, base.Levels, base.Lo, base.Hi)
	if err != nil {
		return t, err
	}
	_, fst, err := features.MatchFlat(g, tiles, base)
	if err != nil {
		return t, err
	}
	for _, keep := range []float64{0.05, 0.15, 0.3, 0.6, 1.0} {
		q := base
		q.PrefilterKeep = keep
		prog, pst, err := features.MatchProgressive(p, tiles, q, coarseLevel)
		if err != nil {
			return t, err
		}
		rank := "-"
		for i, m := range prog {
			if m.Tile == target {
				rank = f("%d", i+1)
				break
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%.2f", keep), f("%d", fst.FullGLCMs), f("%d", pst.FullGLCMs),
			f("%.1fx", float64(fst.FullGLCMs)/float64(pst.FullGLCMs)),
			rank,
		})
	}
	t.Notes = append(t.Notes,
		"smaller keep fractions trade recall risk for speed; the planted target",
		"survives even the tightest prefilter here because its coarse histogram is",
		"maximally distinctive — natural textures need the 0.15-0.3 middle ground.")
	return t, nil
}

// A4 ablates the [14] clustering+SVD baseline: clusters x retained dims
// vs k-NN recall and points compared.
func A4(cfg Config) (Table, error) {
	t := Table{
		ID:    "A4",
		Title: "Ablation: clustering+SVD approximate index [14] (10-NN, 8-dim clustered data)",
		Columns: []string{
			"clusters", "dims", "avg recall", "pts compared", "build time",
		},
	}
	n := 20_000
	queries := 15
	if cfg.Quick {
		n = 4_000
		queries = 5
	}
	// Clustered data: the regime [14] targets.
	rng := rand.New(rand.NewSource(301))
	const d, blobs = 8, 10
	centers := make([][]float64, blobs)
	for i := range centers {
		centers[i] = make([]float64, d)
		for j := range centers[i] {
			centers[i][j] = rng.NormFloat64() * 15
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%blobs]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()
		}
		pts[i] = p
	}
	for _, row := range []struct{ clusters, dims int }{
		{10, 2}, {10, 4}, {10, 8}, {40, 2}, {40, 4},
	} {
		start := time.Now()
		ix, err := svd.Build(pts, svd.Options{Clusters: row.clusters, Dims: row.dims, Seed: 5})
		if err != nil {
			return t, err
		}
		buildDur := time.Since(start)
		var recallSum float64
		compared := 0
		qrng := rand.New(rand.NewSource(6))
		for q := 0; q < queries; q++ {
			target := pts[qrng.Intn(n)]
			approx, st, err := ix.NearestK(target, 10)
			if err != nil {
				return t, err
			}
			exact, err := svd.ExactNearestK(pts, target, 10)
			if err != nil {
				return t, err
			}
			recallSum += svd.Recall(approx, exact)
			compared += st.PointsCompared
		}
		t.Rows = append(t.Rows, []string{
			f("%d", row.clusters), f("%d", row.dims),
			f("%.2f", recallSum/float64(queries)),
			f("%d", compared/queries),
			buildDur.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"recall rises with retained dimensions (full dims = near-exact) and the",
		"points compared fall with cluster count — the approximate-index trade-off",
		"the paper contrasts with Onion's exact model-specific retrieval.")
	return t, nil
}

// Ablations runs A1-A4.
func Ablations(cfg Config) ([]Table, error) {
	runs := []func(Config) (Table, error){A1, A2, A3, A4}
	out := make([]Table, 0, len(runs))
	for _, r := range runs {
		if err := cfg.ctx().Err(); err != nil {
			return out, err
		}
		tbl, err := r(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
