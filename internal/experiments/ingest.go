// Live-ingest baseline: the machine-readable artifact CI archives as
// BENCH_ingest.json, tracking mixed append+query throughput through
// the batching appender and — the acceptance gate — the
// delta-equivalence bit: an engine that grew its datasets through
// appends (base + delta segments) must answer all six query families
// bit-identically to an engine that registered the full archives up
// front, both while the deltas are live and after compaction. Timings
// are informational on shared CI cores; the bit is the gate.

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"modelir/internal/archive"
	"modelir/internal/core"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

// IngestBaseline is the BENCH_ingest.json artifact.
type IngestBaseline struct {
	Tuples     int `json:"tuples"`
	SceneWH    int `json:"scene_wh"`
	Regions    int `json:"regions"`
	Wells      int `json:"wells"`
	Shards     int `json:"shards"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// AppendRows / AppendCalls / AppendNs measure the mixed-traffic
	// phase: AppendCalls concurrent appender calls carrying AppendRows
	// tuple rows total, racing QueryCalls queries, wall-clocked end to
	// end.
	AppendRows  int   `json:"append_rows"`
	AppendCalls int   `json:"append_calls"`
	QueryCalls  int   `json:"query_calls"`
	AppendNs    int64 `json:"append_ns"`
	// FlushGenerations counts how many delta segments (generation
	// bumps) the appender produced for AppendCalls calls — batching
	// quality: far fewer flushes than calls.
	FlushGenerations uint64 `json:"flush_generations"`
	// CompactNs wall-clocks the synchronous Compact() that folds the
	// surviving deltas into base shards.
	CompactNs int64 `json:"compact_ns"`

	// ResultsIdentical is the acceptance bit: all six families matched
	// the rebuilt-from-scratch engine bit for bit, both with live
	// deltas and after compaction.
	ResultsIdentical bool `json:"results_identical"`
}

// ingestSweep grows an engine under mixed traffic, then verifies
// base+deltas ≡ rebuilt-from-scratch across all six families.
func ingestSweep(cfg Config) (IngestBaseline, error) {
	base := IngestBaseline{
		Tuples: 20_000, SceneWH: 96, Regions: 120, Wells: 100,
		Shards: 4, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if cfg.Quick {
		base.Tuples, base.SceneWH, base.Regions, base.Wells = 5_000, 32, 40, 30
	}
	ctx := cfg.ctx()

	pts, err := synth.GaussianTuples(51, base.Tuples, 3)
	if err != nil {
		return base, err
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 52, W: base.SceneWH, H: base.SceneWH})
	if err != nil {
		return base, err
	}
	scene, err := archive.BuildScene("hps", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 4})
	if err != nil {
		return base, err
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return base, err
	}
	weather, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 53, Regions: base.Regions, Days: 365})
	if err != nil {
		return base, err
	}
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 54, Wells: base.Wells})
	if err != nil {
		return base, err
	}

	// The grown engine registers only a prefix of each appendable
	// archive; the rest arrives through the appender under query
	// traffic. Scenes are registered whole (not appendable).
	grown := core.NewEngineWith(core.Options{Shards: base.Shards})
	basePts, baseRegions, baseWells := len(pts)*4/5, len(weather)*4/5, len(wells)*4/5
	for _, step := range []error{
		grown.AddTuples("gauss", pts[:basePts]),
		grown.AddScene("hps", scene),
		grown.AddSeries("weather", weather[:baseRegions]),
		grown.AddWells("basin", wells[:baseWells]),
	} {
		if step != nil {
			return base, step
		}
	}

	// Mixed traffic: concurrent small tuple appends through the
	// batching appender racing repeated queries against another
	// dataset, plus one writer each for the series and well tails.
	ap := core.NewAppender(grown, core.AppenderOptions{})
	genBefore := datasetGen(grown, "gauss")
	const writers = 4
	chunk := 16
	tail := pts[basePts:]
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	calls := 0
	for lo := 0; lo < len(tail); lo += chunk {
		hi := lo + chunk
		if hi > len(tail) {
			hi = len(tail)
		}
		calls++
		wg.Add(1)
		go func(rows [][]float64, w int) {
			defer wg.Done()
			if err := ap.AppendTuples(ctx, "gauss", rows); err != nil {
				fail(fmt.Errorf("append writer %d: %w", w, err))
			}
		}(tail[lo:hi], calls)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ap.AppendSeries(ctx, "weather", weather[baseRegions:]); err != nil {
			fail(fmt.Errorf("series append: %w", err))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ap.AppendWells(ctx, "basin", wells[baseWells:]); err != nil {
			fail(fmt.Errorf("wells append: %w", err))
		}
	}()
	queries := 0
	for q := 0; q < writers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := grown.Run(ctx, core.Request{
					Dataset: "hps", Query: core.KnowledgeQuery{Rules: core.HPSTileRules()}, K: 10,
				}); err != nil {
					fail(fmt.Errorf("query under traffic: %w", err))
					return
				}
			}
		}()
		queries += 8
	}
	wg.Wait()
	ap.Close()
	base.AppendNs = time.Since(start).Nanoseconds()
	base.AppendRows = len(tail)
	base.AppendCalls = calls + 2
	base.QueryCalls = queries
	base.FlushGenerations = datasetGen(grown, "gauss") - genBefore
	if firstErr != nil {
		return base, firstErr
	}

	// The reference: everything registered up front.
	full := core.NewEngineWith(core.Options{Shards: base.Shards})
	for _, step := range []error{
		full.AddTuples("gauss", pts),
		full.AddScene("hps", scene),
		full.AddSeries("weather", weather),
		full.AddWells("basin", wells),
	} {
		if step != nil {
			return base, step
		}
	}
	want, err := persistFamilies(ctx, full, pm)
	if err != nil {
		return base, err
	}

	identical := true
	check := func(label string) error {
		got, err := persistFamilies(ctx, grown, pm)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		for i := range want {
			if !itemsMatch(got[i], want[i]) {
				identical = false
			}
		}
		return nil
	}
	if err := check("live deltas"); err != nil {
		return base, err
	}
	start = time.Now()
	grown.Compact()
	base.CompactNs = time.Since(start).Nanoseconds()
	if err := check("compacted"); err != nil {
		return base, err
	}
	base.ResultsIdentical = identical
	return base, grown.Close()
}

// datasetGen reads one dataset's cache generation from the engine's
// dataset listing.
func datasetGen(e *core.Engine, name string) uint64 {
	for _, ds := range e.Datasets() {
		if ds.Name == name {
			return ds.Gen
		}
	}
	return 0
}

// WriteIngestBaseline runs the live-ingest sweep and writes the JSON
// baseline (the BENCH_ingest.json artifact produced by `benchtab
// -ingestjson`).
func WriteIngestBaseline(cfg Config, path string) error {
	base, err := ingestSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
