// Snapshot-resync baseline: the machine-readable artifact CI archives
// as BENCH_resync.json, pinning the anti-entropy path end to end. The
// sweep boots a two-node replication-2 cluster with a deliberately
// tiny per-partition append-log cap, kills one replica, and streams
// enough rows that the router must prune the log past the dead
// replica's cursor — so plain catch-up replay is off the table. The
// artifact then measures the full recovery: restart the replica,
// reconcile until the router's donor-snapshot resync plus tail replay
// re-admits it, and record bytes streamed, wall time, and whether the
// recovered replica ALONE still answers bit-identically to a
// single-node reference (the survivor is killed for the final check).
// Throughput numbers are informational on shared CI hosts; the
// results_identical bit is the acceptance-pinned part.

package experiments

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"modelir/internal/cluster"
	"modelir/internal/core"
)

// ResyncBaseline is the BENCH_resync.json artifact.
type ResyncBaseline struct {
	Tuples      int   `json:"tuples"`
	Dims        int   `json:"dims"`
	K           int   `json:"k"`
	ShardsPer   int   `json:"shards_per_node"`
	LogCapBytes int64 `json:"log_cap_bytes"`
	GOMAXPROCS  int   `json:"gomaxprocs"`

	// ForcedPrunes counts append-log records dropped by the cap while
	// the replica was quarantined — nonzero proves replay alone could
	// not have recovered it.
	ForcedPrunes int64 `json:"forced_prunes"`
	// Resyncs / BytesStreamed / ReplayedBatches describe the recovery:
	// donor snapshots run, snapshot bytes streamed donor → router →
	// stale replica, and log-tail batches replayed after the install.
	Resyncs         int64 `json:"resyncs"`
	BytesStreamed   int64 `json:"bytes_streamed"`
	ReplayedBatches int64 `json:"replayed_batches"`
	// RecoverNs times restart → reconcile → healthy (the resync itself
	// plus health-machine convergence).
	RecoverNs int64 `json:"recover_ns"`
	// ResultsIdentical is the CI gate: quarantine-era, post-recovery,
	// and recovered-replica-only answers all matched the single-node
	// reference exactly.
	ResultsIdentical bool `json:"results_identical"`
}

// resyncSweep runs the log-pruned fault cycle once and fills the
// baseline.
func resyncSweep(cfg Config) (ResyncBaseline, error) {
	n, k := ShardWorkloadSize, 10
	if cfg.Quick {
		n = 5_000
	}
	base := ResyncBaseline{
		Tuples: n, K: k, ShardsPer: 2, LogCapBytes: 2048,
		GOMAXPROCS: runtime.GOMAXPROCS(0), ResultsIdentical: true,
	}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	ctx := cfg.ctx()

	// Full single-node reference: the answer every recovery state must
	// reproduce bit-for-bit.
	eng := core.NewEngineWith(core.Options{Shards: base.ShardsPer, CacheEntries: -1})
	if err := eng.AddTuples("t", pts); err != nil {
		return base, err
	}
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
	want, err := eng.Run(ctx, req)
	if err != nil {
		return base, err
	}

	const count = 2
	lns := make([]net.Listener, count)
	addrs := make([]string, count)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return base, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	topo := cluster.Topology{Nodes: addrs, Replication: 2}
	opt := cluster.NodeOptions{Shards: base.ShardsPer, CacheEntries: -1}
	prefix := pts[:len(pts)*4/5]
	tail := pts[len(pts)*4/5:]
	nodes := make([]*cluster.Node, count)
	defer func() {
		for i, nd := range nodes {
			if nd != nil {
				nd.Close()
			} else {
				lns[i].Close()
			}
		}
	}()
	for i := range lns {
		node := cluster.NewNode(addrs[i], topo, opt)
		if err := node.AddTuples("t", prefix); err != nil {
			return base, err
		}
		node.ServeListener(lns[i])
		nodes[i] = node
	}
	router := cluster.NewRouterWith(topo, cluster.RouterOptions{
		RetryBase: time.Millisecond, RetryMax: 16 * time.Millisecond,
		AppendAttempts: 2, MaxLogBytes: base.LogCapBytes,
	})
	defer router.Close()
	creq := cluster.Request{Dataset: "t", Query: req.Query, K: req.K}

	check := func(stage string) error {
		res, err := router.Run(ctx, creq)
		if err != nil {
			return fmt.Errorf("%s: %w", stage, err)
		}
		base.ResultsIdentical = base.ResultsIdentical && itemsMatch(res.Items, want.Items)
		return nil
	}

	// Kill one replica, then land the whole tail. With the tiny cap the
	// router prunes acked records past the dead replica's cursor, so
	// the coming recovery is forced through the snapshot path.
	nodes[1].Kill()
	for lo := 0; lo < len(tail); lo += 256 {
		hi := lo + 256
		if hi > len(tail) {
			hi = len(tail)
		}
		if _, err := router.Append(ctx, cluster.AppendRequest{Dataset: "t", Tuples: tail[lo:hi]}); err != nil {
			return base, err
		}
	}
	if err := check("under quarantine"); err != nil {
		return base, err
	}
	if base.ForcedPrunes = router.ResyncStats().ForcedPrunes; base.ForcedPrunes == 0 {
		return base, fmt.Errorf("log cap %d never forced a prune; the sweep is not exercising resync", base.LogCapBytes)
	}

	// Recovery: restart the replica and reconcile until the router's
	// snapshot resync + tail replay lifts the quarantine.
	recoverStart := time.Now()
	if err := nodes[1].Serve(addrs[1]); err != nil {
		return base, err
	}
	for i := 0; ; i++ {
		if health := router.Reconcile(ctx); health[addrs[1]] == cluster.Healthy {
			break
		}
		if i >= 100 {
			return base, fmt.Errorf("replica %s not healthy after %d reconcile passes (errors: %v)",
				addrs[1], i, router.PeerErrors())
		}
		time.Sleep(10 * time.Millisecond)
	}
	base.RecoverNs = time.Since(recoverStart).Nanoseconds()
	rs := router.ResyncStats()
	base.Resyncs = rs.Resyncs
	base.BytesStreamed = rs.BytesStreamed
	base.ReplayedBatches = rs.ReplayedBatches
	if rs.Resyncs == 0 {
		return base, fmt.Errorf("replica recovered without a snapshot resync; the sweep is not exercising the anti-entropy path")
	}
	if err := check("after resync"); err != nil {
		return base, err
	}

	// Kill the survivor that held the full history: the resynced
	// replica must now answer alone, proving install + replay was exact.
	nodes[0].Kill()
	return base, check("resynced replica serving")
}

// WriteResyncBaseline runs the log-pruned recovery sweep and writes the
// JSON baseline (the BENCH_resync.json artifact produced by
// `benchtab -resyncjson`).
func WriteResyncBaseline(cfg Config, path string) error {
	base, err := resyncSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
