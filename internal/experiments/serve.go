// Serving-layer baseline: the machine-readable artifact CI archives as
// BENCH_serve.json, tracking the result cache's hit-vs-cold ratio and
// RunBatch's amortization against solo Runs across commits. The
// cache-hit speedup is an acceptance-pinned number (>= 10x on the
// linear family); the batch ratio is informational on single-core
// hosts and becomes a win under multi-core contention.

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"modelir/internal/core"
	"modelir/internal/linear"
	"modelir/internal/topk"
)

// ServeBaseline is the BENCH_serve.json artifact.
type ServeBaseline struct {
	Tuples     int `json:"tuples"`
	Dims       int `json:"dims"`
	K          int `json:"k"`
	BatchWidth int `json:"batch_width"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// ColdNsPerOp / HitNsPerOp time the same linear request executed
	// against the archive vs served from the result cache.
	ColdNsPerOp float64 `json:"cold_ns_per_op"`
	HitNsPerOp  float64 `json:"hit_ns_per_op"`
	// CacheSpeedup = cold / hit; the acceptance floor is 10.
	CacheSpeedup float64 `json:"cache_speedup"`

	// BatchNsPerReq / SoloNsPerReq time BatchWidth distinct requests
	// through one RunBatch vs individual Runs (caches disabled).
	BatchNsPerReq float64 `json:"batch_ns_per_req"`
	SoloNsPerReq  float64 `json:"solo_ns_per_req"`
	BatchSpeedup  float64 `json:"batch_speedup"`

	// CacheHitStatsIdentical records the serve-path sanity check: the
	// hit's items and stats matched the cold run bit for bit.
	CacheHitStatsIdentical bool `json:"cache_hit_stats_identical"`
}

// serveSweep measures the serving baseline on the E9 workload (shrunk
// under Quick).
func serveSweep(cfg Config) (ServeBaseline, error) {
	n, k, width := ShardWorkloadSize, 10, 8
	reps := 30
	if cfg.Quick {
		n, reps = 5_000, 10
	}
	base := ServeBaseline{Tuples: n, K: k, BatchWidth: width, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	pts, m, err := ShardWorkload(n)
	if err != nil {
		return base, err
	}
	base.Dims = len(pts[0])
	ctx := cfg.ctx()

	// Cold vs hit on one cached engine plus one cache-disabled engine.
	cold := core.NewEngineWith(core.Options{Shards: 4, CacheEntries: -1})
	warm := core.NewEngineWith(core.Options{Shards: 4})
	if err := cold.AddTuples("t", pts); err != nil {
		return base, err
	}
	if err := warm.AddTuples("t", pts); err != nil {
		return base, err
	}
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: k}
	coldRes, err := cold.Run(ctx, req) // index build untimed
	if err != nil {
		return base, err
	}
	warmRes, err := warm.Run(ctx, req) // warm the cache
	if err != nil {
		return base, err
	}

	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := cold.Run(ctx, req); err != nil {
			return base, err
		}
	}
	base.ColdNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(reps)

	hitReps := reps * 100 // hits are microseconds; sample enough of them
	var hit core.Result
	start = time.Now()
	for r := 0; r < hitReps; r++ {
		res, err := warm.Run(ctx, req)
		if err != nil {
			return base, err
		}
		hit = res
	}
	base.HitNsPerOp = float64(time.Since(start).Nanoseconds()) / float64(hitReps)
	if base.HitNsPerOp > 0 {
		base.CacheSpeedup = base.ColdNsPerOp / base.HitNsPerOp
	}
	base.CacheHitStatsIdentical = hit.Stats.Cache.Hit &&
		itemsMatch(hit.Items, coldRes.Items) && itemsMatch(hit.Items, warmRes.Items)

	// Batch vs solo on a cache-disabled engine with distinct models.
	be := core.NewEngineWith(core.Options{Shards: 4, CacheEntries: -1})
	if err := be.AddTuples("t", pts); err != nil {
		return base, err
	}
	reqs := make([]core.Request, width)
	for i := range reqs {
		attrs := make([]string, base.Dims)
		coeffs := make([]float64, base.Dims)
		for j := range coeffs {
			attrs[j] = fmt.Sprintf("x%d", j)
			coeffs[j] = m.Coeffs[j] + float64(i)*0.01*float64(j+1)
		}
		mi, err := linear.New(attrs, coeffs, 0)
		if err != nil {
			return base, err
		}
		reqs[i] = core.Request{Dataset: "t", Query: core.LinearQuery{Model: mi}, K: k}
	}
	if _, err := be.Run(ctx, reqs[0]); err != nil { // index build untimed
		return base, err
	}
	start = time.Now()
	for r := 0; r < reps; r++ {
		batch, err := be.RunBatch(ctx, reqs)
		if err != nil {
			return base, err
		}
		for _, br := range batch {
			if br.Err != nil {
				return base, br.Err
			}
		}
	}
	base.BatchNsPerReq = float64(time.Since(start).Nanoseconds()) / float64(reps*width)
	start = time.Now()
	for r := 0; r < reps; r++ {
		for _, rq := range reqs {
			if _, err := be.Run(ctx, rq); err != nil {
				return base, err
			}
		}
	}
	base.SoloNsPerReq = float64(time.Since(start).Nanoseconds()) / float64(reps*width)
	if base.BatchNsPerReq > 0 {
		base.BatchSpeedup = base.SoloNsPerReq / base.BatchNsPerReq
	}
	return base, nil
}

func itemsMatch(a, b []topk.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// WriteServeBaseline runs the serving sweep and writes the JSON
// baseline (the BENCH_serve.json artifact produced by `benchtab
// -servejson`).
func WriteServeBaseline(cfg Config, path string) error {
	base, err := serveSweep(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
