// Package experiments regenerates every quantitative claim of the paper
// (DESIGN.md §1, C1–C8) as a table. Each experiment returns rows of
// plain columns so cmd/benchtab can print them and the root benchmarks
// can assert on their shape.
//
// Absolute numbers depend on the host; what must reproduce is the shape:
// who wins, by roughly what factor, and where the crossovers are.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"modelir/internal/bayes"
	"modelir/internal/core"
	"modelir/internal/features"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/metrics"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
	"modelir/internal/rtree"
	"modelir/internal/sproc"
	"modelir/internal/synth"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Config scales the experiments. Quick mode shrinks data sizes so the
// full suite runs in seconds (used by tests); full mode matches the
// sizes quoted in EXPERIMENTS.md.
type Config struct {
	Quick bool
	// Ctx bounds experiment execution (benchtab's -timeout flag); nil
	// means context.Background(). The shard sweep honors it per query
	// and records cancellation in its JSON baseline; the experiment
	// driver checks it between experiments.
	Ctx context.Context
	// Timeout is the deadline Ctx was built with, recorded in the
	// shard-sweep JSON artifact for provenance; zero means none.
	Timeout time.Duration
}

// ctx returns the configured context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// E1 reproduces claim C1: Onion vs sequential scan (and the R-tree
// baseline of Section 3.2) on 3-attribute Gaussian data.
func E1(cfg Config) (Table, error) {
	t := Table{
		ID:    "E1",
		Title: "Onion index vs sequential scan (3-attr Gaussian tuples), and R-tree baseline",
		Columns: []string{
			"N", "K", "scan pts", "onion pts", "pts speedup",
			"time speedup", "rtree pts", "onion layers",
		},
	}
	sizes := []int{10_000, 50_000, 200_000}
	queries := 20
	if cfg.Quick {
		sizes = []int{5_000, 20_000}
		queries = 5
	}
	for _, n := range sizes {
		pts, err := synth.GaussianTuples(101, n, 3)
		if err != nil {
			return t, err
		}
		ix, err := onion.Build(pts, onion.Options{})
		if err != nil {
			return t, err
		}
		rt, err := rtree.Build(pts, rtree.Options{})
		if err != nil {
			return t, err
		}
		rng := rand.New(rand.NewSource(7))
		for _, k := range []int{1, 10, 100} {
			var onionPts, scanPts, rtreePts, layers int
			var onionNS, scanNS int64
			for q := 0; q < queries; q++ {
				w := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}

				start := time.Now()
				got, ost, err := ix.TopK(w, k)
				if err != nil {
					return t, err
				}
				onionNS += time.Since(start).Nanoseconds()

				start = time.Now()
				want, sst, err := onion.ScanTopK(pts, w, k)
				if err != nil {
					return t, err
				}
				scanNS += time.Since(start).Nanoseconds()

				for i := range want {
					if got[i].ID != want[i].ID {
						return t, fmt.Errorf("E1: onion diverged from scan at N=%d K=%d", n, k)
					}
				}
				_, rst, err := rt.LinearTopK(w, k)
				if err != nil {
					return t, err
				}
				onionPts += ost.PointsTouched
				layers += ost.LayersScanned
				scanPts += sst.PointsTouched
				rtreePts += rst.PointsTouched
			}
			t.Rows = append(t.Rows, []string{
				f("%d", n), f("%d", k),
				f("%d", scanPts/queries), f("%d", onionPts/queries),
				f("%.0fx", float64(scanPts)/float64(onionPts)),
				f("%.0fx", float64(scanNS)/float64(onionNS)),
				f("%d", rtreePts/queries), f("%d", layers/queries),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper claim C1: 13,000x (top-1) and 1,400x (top-10) vs scan on the authors' testbed;",
		"shape to reproduce: orders-of-magnitude point reduction, larger for smaller K,",
		"and the R-tree (Section 3.2's incumbent) touching far more points than Onion.")
	return t, nil
}

// classScene builds the [13]-style land-cover classification workload:
// a smooth latent field is quantized into discrete cover classes, each
// class renders a distinct 3-band spectral signature plus sensor noise,
// and a Gaussian naive-Bayes classifier is trained on a sparse sample.
// Class regions are spatially coherent, so most pyramid blocks are pure —
// the regime in which progressive classification pays off.
func classScene(seed int64, w, h int) (*raster.Multiband, *bayes.GNB, error) {
	field, err := synth.SmoothField(seed, w, h, 4)
	if err != nil {
		return nil, nil, err
	}
	// Signatures: water, forest, cropland, built-up (digital numbers).
	sigs := [4][3]float64{
		{20, 15, 10},
		{60, 140, 40},
		{120, 180, 90},
		{180, 90, 170},
	}
	const noise = 6.0
	rng := rand.New(rand.NewSource(seed + 1))
	bands := [3]*raster.Grid{
		raster.MustGrid(w, h), raster.MustGrid(w, h), raster.MustGrid(w, h),
	}
	labelOf := func(x, y int) int {
		c := int(field.At(x, y) * 4)
		if c > 3 {
			c = 3
		}
		return c
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := labelOf(x, y)
			for b := 0; b < 3; b++ {
				bands[b].Set(x, y, sigs[c][b]+rng.NormFloat64()*noise)
			}
		}
	}
	mb, err := raster.Stack([]string{"b1", "b2", "b3"}, bands[0], bands[1], bands[2])
	if err != nil {
		return nil, nil, err
	}
	var xs [][]float64
	var labels []int
	for y := 0; y < h; y += 3 {
		for x := 0; x < w; x += 3 {
			xs = append(xs, mb.Pixel(x, y, nil))
			labels = append(labels, labelOf(x, y))
		}
	}
	g, err := bayes.TrainGNB(4, xs, labels)
	if err != nil {
		return nil, nil, err
	}
	return mb, g, nil
}

// E2 reproduces claim C2: progressive classification speedup [13].
func E2(cfg Config) (Table, error) {
	t := Table{
		ID:    "E2",
		Title: "Progressive classification on the pyramid vs flat per-pixel classification",
		Columns: []string{
			"scene", "flat evals", "prog evals", "eval speedup",
			"time speedup", "agreement",
		},
	}
	sizes := [][2]int{{256, 256}, {512, 512}}
	if cfg.Quick {
		sizes = [][2]int{{128, 128}}
	}
	for _, wh := range sizes {
		mb, g, err := classScene(31, wh[0], wh[1])
		if err != nil {
			return t, err
		}
		start := time.Now()
		flat, flatEvals, err := g.ClassifyScene(mb)
		if err != nil {
			return t, err
		}
		flatNS := time.Since(start).Nanoseconds()

		mp, err := pyramid.BuildMultiband(mb, 6)
		if err != nil {
			return t, err
		}
		start = time.Now()
		prog, st, err := g.ClassifyProgressiveOpts(mp, bayes.ProgressiveOptions{
			MarginThreshold: 10,
			MaxRange:        80,
		})
		if err != nil {
			return t, err
		}
		progNS := time.Since(start).Nanoseconds()

		agree := 0
		for i, v := range flat.Data() {
			if prog.Data()[i] == v {
				agree++
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%dx%d", wh[0], wh[1]),
			f("%d", flatEvals), f("%d", st.TotalEvals()),
			f("%.1fx", float64(flatEvals)/float64(st.TotalEvals())),
			f("%.1fx", float64(flatNS)/float64(progNS)),
			f("%.1f%%", 100*float64(agree)/float64(len(flat.Data()))),
		})
	}
	t.Notes = append(t.Notes,
		"paper claim C2 ([13]): ~30x speedup from progressive classification in the",
		"compressed domain; shape: order-tens eval reduction with >95% label agreement.")
	return t, nil
}

// E3 reproduces claim C3: progressive texture matching speedup [12].
func E3(cfg Config) (Table, error) {
	t := Table{
		ID:    "E3",
		Title: "Progressive texture matching (coarse histogram prefilter + GLCM refine) vs flat",
		Columns: []string{
			"scene", "tiles", "flat GLCMs", "prog GLCMs",
			"GLCM speedup", "time speedup", "target found",
		},
	}
	sizes := [][2]int{{256, 256}, {512, 512}}
	keep := 0.15
	if cfg.Quick {
		sizes = [][2]int{{128, 128}}
		keep = 0.3
	}
	const tile = 32
	for _, wh := range sizes {
		w, h := wh[0], wh[1]
		rng := rand.New(rand.NewSource(77))
		g := raster.MustGrid(w, h)
		for i := range g.Data() {
			g.Data()[i] = 95 + rng.Float64()*10
		}
		// Plant a periodic texture tile.
		tx, ty := (w/tile/2)*tile, (h/tile/2)*tile
		for y := 0; y < tile; y++ {
			for x := 0; x < tile; x++ {
				v := 50.0
				if ((x/4)+(y/4))%2 == 0 {
					v = 200
				}
				g.Set(tx+x, ty+y, v)
			}
		}
		tiles := g.Tiles(tile)
		target := raster.Rect{X0: tx, Y0: ty, X1: tx + tile, Y1: ty + tile}
		p, err := pyramid.Build(g, 4)
		if err != nil {
			return t, err
		}
		const coarseLevel = 2
		coarse := p.Level(coarseLevel)
		cRect := raster.Rect{
			X0: target.X0 / coarse.Scale, Y0: target.Y0 / coarse.Scale,
			X1: target.X1 / coarse.Scale, Y1: target.Y1 / coarse.Scale,
		}
		q := features.TextureQuery{Bins: 8, Levels: 8, Lo: 0, Hi: 255, PrefilterKeep: keep}
		q.TargetHist, err = features.NewHistogram(coarse.Mean, cRect, q.Bins, q.Lo, q.Hi)
		if err != nil {
			return t, err
		}
		q.TargetTexture, err = features.GLCM(g, target, q.Levels, q.Lo, q.Hi)
		if err != nil {
			return t, err
		}

		start := time.Now()
		flat, fst, err := features.MatchFlat(g, tiles, q)
		if err != nil {
			return t, err
		}
		flatNS := time.Since(start).Nanoseconds()
		start = time.Now()
		prog, pst, err := features.MatchProgressive(p, tiles, q, coarseLevel)
		if err != nil {
			return t, err
		}
		progNS := time.Since(start).Nanoseconds()

		found := flat[0].Tile == target && prog[0].Tile == target
		t.Rows = append(t.Rows, []string{
			f("%dx%d", w, h), f("%d", len(tiles)),
			f("%d", fst.FullGLCMs), f("%d", pst.FullGLCMs),
			f("%.1fx", float64(fst.FullGLCMs)/float64(pst.FullGLCMs)),
			f("%.1fx", float64(flatNS)/float64(progNS)),
			f("%v", found),
		})
	}
	t.Notes = append(t.Notes,
		"paper claim C3 ([12]): 4-8x speedup from progressive feature extraction;",
		"shape: single-digit-multiple speedup with the planted target still ranked first.")
	return t, nil
}

// E4 reproduces claim C4: SPROC complexity vs brute force.
func E4(cfg Config) (Table, error) {
	t := Table{
		ID:    "E4",
		Title: "SPROC fuzzy Cartesian queries: brute force O(L^M) vs DP O(MKL^2) vs sorted-pruned",
		Columns: []string{
			"L", "M", "brute tuples", "dp pair evals", "pruned pair evals",
			"dp time", "pruned time", "agree",
		},
	}
	ls := []int{50, 100, 200, 400}
	ms := []int{2, 3}
	const k = 10
	if cfg.Quick {
		ls = []int{30, 60}
		ms = []int{2}
	}
	for _, m := range ms {
		for _, l := range ls {
			q := randomSprocQuery(int64(l*10+m), l, m)

			bruteCount := "-"
			total := 1
			overflow := false
			for i := 0; i < m; i++ {
				total *= l
				if total > sproc.MaxBruteForceTuples {
					overflow = true
					break
				}
			}
			var bf []sproc.Match
			if !overflow {
				var bst sproc.Stats
				var err error
				bf, bst, err = sproc.BruteForce(l, q, k)
				if err != nil {
					return t, err
				}
				bruteCount = f("%d", bst.TuplesConsidered)
			}

			start := time.Now()
			dp, dst, err := sproc.DP(l, q, k)
			if err != nil {
				return t, err
			}
			dpDur := time.Since(start)
			start = time.Now()
			pr, pst, err := sproc.Pruned(l, q, k)
			if err != nil {
				return t, err
			}
			prDur := time.Since(start)

			agree := true
			for i := range dp {
				if math.Abs(dp[i].Score-pr[i].Score) > 1e-12 {
					agree = false
				}
				if bf != nil && math.Abs(dp[i].Score-bf[i].Score) > 1e-12 {
					agree = false
				}
			}
			t.Rows = append(t.Rows, []string{
				f("%d", l), f("%d", m), bruteCount,
				f("%d", dst.PairEvals), f("%d", pst.PairEvals),
				dpDur.Round(time.Microsecond).String(),
				prDur.Round(time.Microsecond).String(),
				f("%v", agree),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper claim C4: O(L^M) -> O(MKL^2) [15] -> O(ML log L + ...) [16];",
		"shape: brute tuples explode exponentially in M while DP grows ~L^2 and the",
		"pruned variant stays below DP; all three agree exactly on top-K scores.")
	return t, nil
}

func randomSprocQuery(seed int64, l, m int) sproc.Query {
	rng := rand.New(rand.NewSource(seed))
	unary := make([][]float64, m)
	for mi := range unary {
		unary[mi] = make([]float64, l)
		for j := range unary[mi] {
			// Sparse high grades: realistic selective rules.
			if rng.Float64() < 0.1 {
				unary[mi][j] = 0.5 + 0.5*rng.Float64()
			} else {
				unary[mi][j] = 0.4 * rng.Float64()
			}
		}
	}
	pair := make([]float64, l*l)
	for i := range pair {
		pair[i] = rng.Float64()
	}
	return sproc.Query{
		M:     m,
		Unary: func(mi, item int) float64 { return unary[mi][item] },
		Pair:  func(mi, a, b int) float64 { return pair[a*l+b] },
	}
}

// E5 reproduces claim C5: combined progressive model × data speedup.
func E5(cfg Config) (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "Progressive model x progressive data: work reduction vs flat execution",
		Columns: []string{
			"scene", "model", "K", "flat work", "pm (model)", "pd (data)", "combined",
		},
	}
	sizes := []int{256, 512}
	ks := []int{10, 100}
	if cfg.Quick {
		sizes = []int{128}
		ks = []int{10}
	}
	lo := []float64{0, 0, 0, 0}
	hi := []float64{255, 255, 255, 1500}
	// The published HPS coefficients only mildly favor the leading terms;
	// the "dominant" variant realizes the paper's |a1,a2| >> |a3,a4|
	// premise, isolating what pm contributes when the premise holds.
	domModel, err := linear.New(
		[]string{"b4", "b5", "b7", "elev"},
		[]float64{0.9, 0.02, 0.01, 0.15}, 0)
	if err != nil {
		return t, err
	}
	models := []struct {
		name   string
		m      *linear.Model
		levels []int
	}{
		{"hps", linear.HPSRisk(), []int{2, 4}},
		{"dominant", domModel, []int{2, 4}},
	}
	for _, size := range sizes {
		sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 55, W: size, H: size})
		if err != nil {
			return t, err
		}
		mp, err := pyramid.BuildMultiband(sc.Bands, 6)
		if err != nil {
			return t, err
		}
		for _, mv := range models {
			pm, err := linear.Decompose(mv.m, lo, hi, mv.levels...)
			if err != nil {
				return t, err
			}
			for _, k := range ks {
				sp, _, err := progressive.Compare(pm, mp, k)
				if err != nil {
					return t, err
				}
				t.Rows = append(t.Rows, []string{
					f("%dx%d", size, size), mv.name, f("%d", k),
					f("%d", sp.FlatWork),
					f("%.1fx", sp.Pm()), f("%.1fx", sp.Pd()), f("%.1fx", sp.PmPd()),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper claim C5: O(nN) -> O(nN/(pm*pd));",
		"shape: combined >= max(pm, pd); pm is material only when the term-dominance",
		"premise holds (the published HPS weights are close to uniform after span",
		"weighting, so pm is small there); all four strategies return identical",
		"result sets (verified internally).")
	return t, nil
}

// E6 reproduces claim C6: the Section 4.1 accuracy metrics.
func E6(cfg Config) (Table, error) {
	t := Table{
		ID:    "E6",
		Title: "Model accuracy (Section 4.1): threshold sweep, cost trade-off, precision/recall@K",
		Columns: []string{
			"T", "Pm", "Pf", "CT(cm=1,cf=1)", "CT(cm=10,cf=1)", "CT(cm=1,cf=10)",
		},
	}
	size := 256
	steps := 9
	if cfg.Quick {
		size = 96
		steps = 5
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 66, W: size, H: size})
	if err != nil {
		return t, err
	}
	mp, err := pyramid.BuildMultiband(sc.Bands, 4)
	if err != nil {
		return t, err
	}
	surface, err := progressive.RiskSurface(linear.HPSRisk(), mp)
	if err != nil {
		return t, err
	}
	norm := surface.Clone()
	lo, hi := norm.MinMax()
	norm.Apply(func(v float64) float64 { return (v - lo) / (hi - lo) })
	occ, err := synth.Outbreak(synth.OutbreakConfig{Seed: 67, BaseRate: -3}, norm)
	if err != nil {
		return t, err
	}
	weights, err := synth.PopulationWeights(68, size, size)
	if err != nil {
		return t, err
	}
	balanced, err := metrics.Sweep(surface, occ, weights, metrics.Costs{Miss: 1, FalseAlarm: 1}, steps)
	if err != nil {
		return t, err
	}
	missHeavy, err := metrics.Sweep(surface, occ, weights, metrics.Costs{Miss: 10, FalseAlarm: 1}, steps)
	if err != nil {
		return t, err
	}
	faHeavy, err := metrics.Sweep(surface, occ, weights, metrics.Costs{Miss: 1, FalseAlarm: 10}, steps)
	if err != nil {
		return t, err
	}
	for i := range balanced {
		t.Rows = append(t.Rows, []string{
			f("%.1f", balanced[i].Threshold),
			f("%.3f", balanced[i].Pm), f("%.3f", balanced[i].Pf),
			f("%.0f", balanced[i].Cost), f("%.0f", missHeavy[i].Cost), f("%.0f", faHeavy[i].Cost),
		})
	}
	bm, err := metrics.BestThreshold(missHeavy)
	if err != nil {
		return t, err
	}
	bf, err := metrics.BestThreshold(faHeavy)
	if err != nil {
		return t, err
	}
	pr, err := metrics.PRAtK(surface, occ, []int{10, 50, 100})
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		f("optimal T shifts with costs: %.1f (miss-heavy) < %.1f (false-alarm-heavy)",
			bm.Threshold, bf.Threshold),
		f("precision@10/50/100 = %.2f/%.2f/%.2f, recall = %.4f/%.4f/%.4f",
			pr[10][0], pr[50][0], pr[100][0], pr[10][1], pr[50][1], pr[100][1]),
		"shape: Pm rises and Pf falls monotonically in T; CT is U-shaped; the optimum",
		"moves left when misses are expensive and right when false alarms are.")
	return t, nil
}

// E7 reproduces claim C7: fire-ants finite-state retrieval (Fig. 1).
func E7(cfg Config) (Table, error) {
	t := Table{
		ID:    "E7",
		Title: "Fire-ants FSM retrieval over the weather archive: flat scan vs metadata pruning",
		Columns: []string{
			"regions", "days", "flat days", "pruned days", "regions skipped",
			"scan speedup", "top-10 agree",
		},
	}
	configs := []synth.WeatherConfig{
		{Seed: 71, Regions: 500, Days: 730, MeanTempC: 16},
		{Seed: 72, Regions: 2000, Days: 730, MeanTempC: 16},
	}
	if cfg.Quick {
		configs = []synth.WeatherConfig{{Seed: 71, Regions: 200, Days: 365, MeanTempC: 16}}
	}
	for _, wc := range configs {
		arch, err := synth.WeatherArchive(wc)
		if err != nil {
			return t, err
		}
		e := core.NewEngineWith(core.Options{CacheEntries: -1})
		if err := e.AddSeries("w", arch); err != nil {
			return t, err
		}
		m := fsm.FireAnts()
		flat, fst, err := e.FSMTopK("w", m, 10, nil)
		if err != nil {
			return t, err
		}
		pruned, pst, err := e.FSMTopK("w", m, 10, core.FireAntsPrefilter)
		if err != nil {
			return t, err
		}
		agree := len(flat) == len(pruned)
		for i := range flat {
			if !agree || flat[i].ID != pruned[i].ID {
				agree = false
				break
			}
		}
		speedup := "-"
		if pst.DaysScanned > 0 {
			speedup = f("%.1fx", float64(fst.DaysScanned)/float64(pst.DaysScanned))
		}
		t.Rows = append(t.Rows, []string{
			f("%d", wc.Regions), f("%d", wc.Days),
			f("%d", fst.DaysScanned), f("%d", pst.DaysScanned),
			f("%d/%d", pst.RegionsPruned, pst.RegionsTotal),
			speedup, f("%v", agree),
		})
	}
	t.Notes = append(t.Notes,
		"claim C7 (Fig. 1): the finite-state model retrieves fly-risk regions; the",
		"metadata abstraction level (dry-spell summaries) soundly skips regions whose",
		"summaries prove a zero score, without changing the result set.")
	return t, nil
}

// E8 reproduces claim C8: the geology knowledge model (Fig. 4).
func E8(cfg Config) (Table, error) {
	t := Table{
		ID:    "E8",
		Title: "Geology knowledge model (Fig. 4): riverbed retrieval from well logs via SPROC",
		Columns: []string{
			"wells", "method", "pair evals", "time", "planted recall", "top-K agree",
		},
	}
	nWells := 300
	if cfg.Quick {
		nWells = 60
	}
	wells, planted, err := synth.WellArchive(synth.WellConfig{Seed: 81, Wells: nWells})
	if err != nil {
		return t, err
	}
	e := core.NewEngineWith(core.Options{CacheEntries: -1})
	if err := e.AddWells("basin", wells); err != nil {
		return t, err
	}
	q := core.GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	type res struct {
		matches []core.WellMatch
		stats   sproc.Stats
		dur     time.Duration
	}
	methods := []struct {
		name string
		m    core.GeologyMethod
	}{
		{"brute", core.GeoBruteForce}, {"dp", core.GeoDP}, {"pruned", core.GeoPruned},
	}
	results := make(map[string]res, len(methods))
	for _, mm := range methods {
		start := time.Now()
		matches, st, err := e.GeologyTopK("basin", q, nWells, mm.m)
		if err != nil {
			return t, err
		}
		results[mm.name] = res{matches: matches, stats: st, dur: time.Since(start)}
	}
	recallOf := func(r res) string {
		got := make(map[int]bool)
		for _, m := range r.matches {
			if m.Score >= 0.999 {
				got[m.Well] = true
			}
		}
		hits := 0
		for _, w := range planted {
			if got[w] {
				hits++
			}
		}
		return f("%d/%d", hits, len(planted))
	}
	ref := results["dp"]
	for _, mm := range methods {
		r := results[mm.name]
		agree := len(r.matches) == len(ref.matches)
		for i := range r.matches {
			if !agree || r.matches[i].Well != ref.matches[i].Well ||
				math.Abs(r.matches[i].Score-ref.matches[i].Score) > 1e-12 {
				agree = false
				break
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%d", nWells), mm.name,
			f("%d", r.stats.PairEvals),
			r.dur.Round(time.Microsecond).String(),
			recallOf(r), f("%v", agree),
		})
	}
	t.Notes = append(t.Notes,
		"claim C8 (Fig. 4): shale-on-sandstone-on-siltstone with gamma > 45;",
		"shape: all methods retrieve every planted riverbed; pruned does least work.")
	return t, nil
}

// All runs every experiment in order.
func All(cfg Config) ([]Table, error) {
	runs := []func(Config) (Table, error){E1, E2, E3, E4, E5, E6, E7, E8, E9}
	out := make([]Table, 0, len(runs))
	for _, r := range runs {
		if err := cfg.ctx().Err(); err != nil {
			return out, err
		}
		tbl, err := r(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// ByID returns the experiment runner for an id like "e3".
func ByID(id string) (func(Config) (Table, error), bool) {
	switch id {
	case "e1", "E1":
		return E1, true
	case "e2", "E2":
		return E2, true
	case "e3", "E3":
		return E3, true
	case "e4", "E4":
		return E4, true
	case "e5", "E5":
		return E5, true
	case "e6", "E6":
		return E6, true
	case "e7", "E7":
		return E7, true
	case "e8", "E8":
		return E8, true
	case "e9", "E9":
		return E9, true
	case "a1", "A1":
		return A1, true
	case "a2", "A2":
		return A2, true
	case "a3", "A3":
		return A3, true
	case "a4", "A4":
		return A4, true
	default:
		return nil, false
	}
}
