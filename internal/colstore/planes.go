// Plane export/import: the snapshot subsystem (internal/segment)
// serializes a Store as its backing arrays and reconstructs it without
// re-running Build — restoring a store is a handful of slice headers
// plus invariant checks, never a re-sort or zone-map recomputation.

package colstore

import (
	"fmt"
)

// Planes is the complete serializable state of a Store: every backing
// array plus the two scalars (dim, rows) the views derive from. The
// slices alias the store's internals — treat them as read-only.
type Planes struct {
	Dim  int
	Rows int

	IDs  []int64
	Flat []float64 // column-major: column d is Flat[d*Rows:(d+1)*Rows]

	BlockStart []int // len nBlocks+1
	ZoneLo     []float64
	ZoneHi     []float64
	ZoneNorm   []float64

	SegStart []int // len nSegs+1
	SegBlock []int // len nSegs+1
}

// Planes returns the store's backing arrays for serialization. The
// returned slices alias the store; callers must not mutate them.
func (s *Store) Planes() Planes {
	return Planes{
		Dim:        s.dim,
		Rows:       s.rows,
		IDs:        s.ids,
		Flat:       s.flat,
		BlockStart: s.blockStart,
		ZoneLo:     s.zoneLo,
		ZoneHi:     s.zoneHi,
		ZoneNorm:   s.zoneNorm,
		SegStart:   s.segStart,
		SegBlock:   s.segBlock,
	}
}

// FromPlanes reconstructs a Store around previously exported planes.
// The slices are adopted, not copied (they may be mmap-backed and
// read-only), so every structural invariant a scan relies on is
// validated here: a corrupted-but-well-framed snapshot must fail
// loudly, never index out of bounds mid-query.
func FromPlanes(p Planes) (*Store, error) {
	if p.Dim < 1 {
		return nil, fmt.Errorf("colstore: planes: dim %d", p.Dim)
	}
	if p.Rows < 1 {
		return nil, fmt.Errorf("colstore: planes: rows %d", p.Rows)
	}
	if len(p.IDs) != p.Rows {
		return nil, fmt.Errorf("colstore: planes: %d ids for %d rows", len(p.IDs), p.Rows)
	}
	if len(p.Flat) != p.Dim*p.Rows {
		return nil, fmt.Errorf("colstore: planes: flat len %d, want %d", len(p.Flat), p.Dim*p.Rows)
	}
	if len(p.BlockStart) < 2 || p.BlockStart[0] != 0 || p.BlockStart[len(p.BlockStart)-1] != p.Rows {
		return nil, fmt.Errorf("colstore: planes: malformed block starts")
	}
	nb := len(p.BlockStart) - 1
	for b := 0; b < nb; b++ {
		if p.BlockStart[b] >= p.BlockStart[b+1] {
			return nil, fmt.Errorf("colstore: planes: block %d empty or decreasing", b)
		}
	}
	if len(p.ZoneLo) != nb*p.Dim || len(p.ZoneHi) != nb*p.Dim || len(p.ZoneNorm) != nb {
		return nil, fmt.Errorf("colstore: planes: zone-map sizes do not match %d blocks × dim %d", nb, p.Dim)
	}
	if len(p.SegStart) < 2 || len(p.SegBlock) != len(p.SegStart) {
		return nil, fmt.Errorf("colstore: planes: malformed segment table")
	}
	ns := len(p.SegStart) - 1
	if p.SegStart[0] != 0 || p.SegStart[ns] != p.Rows || p.SegBlock[0] != 0 || p.SegBlock[ns] != nb {
		return nil, fmt.Errorf("colstore: planes: segment table does not cover the store")
	}
	for si := 0; si < ns; si++ {
		if p.SegStart[si] >= p.SegStart[si+1] || p.SegBlock[si] >= p.SegBlock[si+1] {
			return nil, fmt.Errorf("colstore: planes: segment %d empty or decreasing", si)
		}
		// Blocks must not span segment boundaries: the block that the
		// segment's block range starts at must start at the segment's
		// first row.
		if p.BlockStart[p.SegBlock[si]] != p.SegStart[si] {
			return nil, fmt.Errorf("colstore: planes: segment %d blocks misaligned", si)
		}
	}

	s := &Store{
		dim:        p.Dim,
		rows:       p.Rows,
		ids:        p.IDs,
		flat:       p.Flat,
		blockStart: p.BlockStart,
		zoneLo:     p.ZoneLo,
		zoneHi:     p.ZoneHi,
		zoneNorm:   p.ZoneNorm,
		segStart:   p.SegStart,
		segBlock:   p.SegBlock,
	}
	s.kern, s.kernName = kernelFor(p.Dim, false)
	s.cols = make([][]float64, p.Dim)
	for d := 0; d < p.Dim; d++ {
		s.cols[d] = p.Flat[d*p.Rows : (d+1)*p.Rows]
	}
	for b := 0; b < nb; b++ {
		if r := p.BlockStart[b+1] - p.BlockStart[b]; r > s.maxBlock {
			s.maxBlock = r
		}
	}
	return s, nil
}
