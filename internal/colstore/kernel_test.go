package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"modelir/internal/topk"
)

// refDot is the naive row-major reference: the same ascending-column
// multiply-add sequence every kernel must reproduce bit for bit.
func refDot(p, w []float64) float64 {
	s := 0.0
	for d, c := range w {
		s += c * p[d]
	}
	return s
}

// TestKernelSelection pins which dimensions get unrolled bodies.
func TestKernelSelection(t *testing.T) {
	want := map[int]string{
		1: "generic4", 2: "dim2", 3: "generic4", 4: "dim4", 5: "generic4",
		7: "generic4", 8: "dim8", 9: "generic4", 15: "generic4", 16: "dim16",
		17: "generic4",
	}
	rng := rand.New(rand.NewSource(11))
	for dim, name := range want {
		st, err := Build(randomPoints(rng, 8, dim), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.KernelName() != name {
			t.Fatalf("dim %d: kernel %q, want %q", dim, st.KernelName(), name)
		}
		st, err = Build(randomPoints(rng, 8, dim), Options{ForceGenericKernel: true})
		if err != nil {
			t.Fatal(err)
		}
		if st.KernelName() != "generic4" {
			t.Fatalf("dim %d forced: kernel %q, want generic4", dim, st.KernelName())
		}
	}
}

// TestKernelsBitIdentical scores every dimension 1..20 through the
// selected kernel, the forced-generic kernel, and the naive row dot,
// and requires exact score equality — including weight vectors with
// zero, negative and tiny coefficients.
func TestKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for dim := 1; dim <= 20; dim++ {
		n := 700 // multiple blocks at BlockRows 256
		pts := randomPoints(rng, n, dim)
		w := make([]float64, dim)
		for d := range w {
			switch d % 4 {
			case 0:
				w[d] = rng.NormFloat64()
			case 1:
				w[d] = 0
			case 2:
				w[d] = -rng.Float64() * 3
			default:
				w[d] = rng.NormFloat64() * 1e-9
			}
		}
		spec, err := Build(pts, Options{BlockRows: 256})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := Build(pts, Options{BlockRows: 256, ForceGenericKernel: true})
		if err != nil {
			t.Fatal(err)
		}
		scoresSpec := make([]float64, n)
		scoresGen := make([]float64, n)
		scoresScan := make([]float64, n)
		for b := 0; b < spec.NumBlocks(); b++ {
			lo, hi := spec.blockStart[b], spec.blockStart[b+1]
			spec.kern(spec.cols, lo, hi, w, scoresSpec[lo:hi])
			gen.kern(gen.cols, lo, hi, w, scoresGen[lo:hi])
			// The per-scan selection (sparse body here — w has zeros).
			spec.scanKernel(w)(spec.cols, lo, hi, w, scoresScan[lo:hi])
		}
		for i := 0; i < n; i++ {
			want := refDot(pts[spec.ids[i]], w)
			if scoresSpec[i] != want {
				t.Fatalf("dim %d row %d: %s kernel %v, naive %v", dim, i, spec.kernName, scoresSpec[i], want)
			}
			if scoresGen[i] != want {
				t.Fatalf("dim %d row %d: generic kernel %v, naive %v", dim, i, scoresGen[i], want)
			}
			if scoresScan[i] != want {
				t.Fatalf("dim %d row %d: scan-selected kernel %v, naive %v", dim, i, scoresScan[i], want)
			}
		}
	}
}

// TestScanKernelSelection pins the per-scan sparse fallback: any zero
// coefficient routes the scan to the column-skipping body, dense
// weights keep the store's dimension-selected kernel.
func TestScanKernelSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st, err := Build(randomPoints(rng, 16, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sparse := []float64{1, 0, 3, 4, 5, 6, 7, 8}
	denseK := st.scanKernel(dense)
	sparseK := st.scanKernel(sparse)
	// Function identity: compare observable behavior on a block where
	// the skipped column would matter if mishandled.
	s1 := make([]float64, 16)
	s2 := make([]float64, 16)
	denseK(st.cols, 0, 16, dense, s1)
	sparseK(st.cols, 0, 16, sparse, s2)
	for i := 0; i < 16; i++ {
		if want := refDot(randomPointsRow(st, i), dense); s1[i] != want {
			t.Fatalf("dense row %d: %v vs %v", i, s1[i], want)
		}
		if want := refDot(randomPointsRow(st, i), sparse); s2[i] != want {
			t.Fatalf("sparse row %d: %v vs %v", i, s2[i], want)
		}
	}
}

// randomPointsRow reads storage row r back out of the store.
func randomPointsRow(st *Store, r int) []float64 {
	p := make([]float64, st.Dim())
	for d := range p {
		p[d] = st.At(r, d)
	}
	return p
}

// TestKernelScanEquivalence runs whole top-K scans through specialized
// and generic stores and requires identical item sets — the end-to-end
// form of the bit-identity contract.
func TestKernelScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range []int{2, 4, 6, 8, 16} {
		pts := randomPoints(rng, 3000, dim)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.NormFloat64()
		}
		wNorm := WeightNorm(w)
		for _, norm := range []bool{false, true} {
			spec, err := Build(pts, Options{BlockRows: 128, NormOrder: norm})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := Build(pts, Options{BlockRows: 128, NormOrder: norm, ForceGenericKernel: true})
			if err != nil {
				t.Fatal(err)
			}
			hs, hg := topk.MustHeap(17), topk.MustHeap(17)
			var sts, stg Stats
			spec.Scan(w, wNorm, hs, nil, nil, nil, &sts)
			gen.Scan(w, wNorm, hg, nil, nil, nil, &stg)
			rs, rg := hs.Results(), hg.Results()
			if len(rs) != len(rg) {
				t.Fatalf("dim %d: %d vs %d items", dim, len(rs), len(rg))
			}
			for i := range rs {
				if rs[i].ID != rg[i].ID || rs[i].Score != rg[i].Score {
					t.Fatalf("dim %d pos %d: %+v vs %+v", dim, i, rs[i], rg[i])
				}
			}
		}
	}
}

// BenchmarkKernel compares the specialized kernels against the generic
// fallback on the dimensions that have unrolled bodies — the artifact
// speedup benchtab's -kerneljson records at the store level.
func BenchmarkKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	for _, dim := range []int{2, 4, 8, 16} {
		pts := randomPoints(rng, 100_000, dim)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.NormFloat64()
		}
		wNorm := WeightNorm(w)
		for _, generic := range []bool{false, true} {
			st, err := Build(pts, Options{ForceGenericKernel: generic})
			if err != nil {
				b.Fatal(err)
			}
			h := topk.MustHeap(10)
			var cst Stats
			name := fmt.Sprintf("dim=%d/kernel=%s", dim, st.KernelName())
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					h.Reset()
					st.Scan(w, wNorm, h, nil, nil, nil, &cst)
				}
			})
		}
	}
}
