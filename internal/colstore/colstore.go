// Package colstore provides the columnar (struct-of-arrays) tuple
// storage behind the engine's linear-scan hot path. Rows are stored as
// one flat []float64 per attribute — no per-row allocation, no pointer
// chase — partitioned into fixed-size blocks that carry zone maps:
// per-block min/max per attribute plus the block's largest Euclidean
// norm. A linear top-K scan walks blocks, upper-bounds each block from
// its zone map against the model's signed coefficients (box bound) and
// the weight norm (Cauchy-Schwarz bound), and skips the whole block
// when the bound falls strictly below the current screening floor —
// the same strict-inequality rule the cross-shard bound uses, so
// blocked and unblocked scans return bit-identical top-K sets.
//
// Stores are segmented: a segment is a row range blocks never span
// (the Onion index stores one segment per layer). Within a segment,
// rows may be reordered by descending norm (Options.NormOrder), which
// clusters strong candidates into early blocks so the norm bound
// prunes late blocks wholesale — scan order never changes a top-K
// result, only how early the floor rises.
//
// The scan kernel is allocation-free in steady state: block scores
// land in a pooled scratch buffer, and cancellation/budget charges are
// per block, not per row.
package colstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"modelir/internal/topk"
)

// DefaultBlockRows is the block size used when Options.BlockRows is 0.
// 1024 rows × 8 bytes keeps one column's block inside L1 while giving
// zone maps enough granularity to prune.
const DefaultBlockRows = 1024

// Options tunes store construction.
type Options struct {
	// BlockRows is the zone-map block size; 0 means DefaultBlockRows.
	BlockRows int
	// NormOrder reorders rows within each segment by descending
	// Euclidean norm (ties: ascending id). Top-K results are order
	// invariant, so this is purely a pruning optimization: high-norm
	// rows fill the heap early and the per-block norm bound then
	// eliminates the low-norm tail block by block.
	NormOrder bool
	// ForceGenericKernel disables dimension-specialized scan kernels
	// and scans with the generic 4-wide fallback regardless of
	// dimension — a benchmarking hook (kernels are bit-identical, so
	// this changes speed only).
	ForceGenericKernel bool
}

func (o *Options) applyDefaults() {
	if o.BlockRows < 1 {
		o.BlockRows = DefaultBlockRows
	}
}

// Store is an immutable columnar point set. Construct with Build or
// BuildSegmented.
type Store struct {
	dim  int
	rows int

	// ids maps a storage row to the caller's id for that point (the
	// original slice index in Build; whatever the segment lists carried
	// in BuildSegmented).
	ids []int64
	// flat backs every column in one allocation; cols[d] is the
	// column view flat[d*rows : (d+1)*rows].
	flat []float64
	cols [][]float64

	// Blocks are contiguous row ranges; blockStart has one extra entry
	// so block b spans rows [blockStart[b], blockStart[b+1]).
	blockStart []int
	// zoneLo/zoneHi are the per-block per-dimension bounds, stride dim.
	zoneLo, zoneHi []float64
	// zoneNorm[b] is the largest Euclidean norm among block b's rows.
	zoneNorm []float64

	// Segments: segStart row offsets (len nSegs+1) and segBlock block
	// offsets (len nSegs+1); blocks never span segment boundaries.
	segStart []int
	segBlock []int

	// maxBlock is the largest block's row count — the scratch size one
	// scan needs, fixed at build time.
	maxBlock int

	// kern is the dot-product kernel every scan of this store uses,
	// selected once at build time from the (fixed) dimension; kernName
	// labels it for benchmark artifacts.
	kern     kernelFunc
	kernName string
}

// Build constructs a single-segment store over the given rows with ids
// 0..n-1. Rows are copied into the columnar layout; the input is not
// retained. All coordinates must be finite (zone maps are meaningless
// otherwise); callers that validated already pay nothing extra because
// the check rides the copy loop.
func Build(points [][]float64, opt Options) (*Store, error) {
	if len(points) == 0 {
		return nil, errors.New("colstore: empty point set")
	}
	seg := make([]int, len(points))
	for i := range seg {
		seg[i] = i
	}
	return BuildSegmented(points, [][]int{seg}, opt)
}

// BuildSegmented constructs a store whose segments list rows by their
// index into points (the listed index becomes the row's id). Every
// point index must appear at most once across all segments; segments
// must be non-empty.
func BuildSegmented(points [][]float64, segments [][]int, opt Options) (*Store, error) {
	opt.applyDefaults()
	if len(points) == 0 {
		return nil, errors.New("colstore: empty point set")
	}
	if len(segments) == 0 {
		return nil, errors.New("colstore: no segments")
	}
	dim := len(points[0])
	if dim < 1 {
		return nil, errors.New("colstore: zero-dimensional points")
	}
	total := 0
	for si, seg := range segments {
		if len(seg) == 0 {
			return nil, fmt.Errorf("colstore: segment %d is empty", si)
		}
		total += len(seg)
	}

	s := &Store{
		dim:      dim,
		rows:     total,
		ids:      make([]int64, 0, total),
		flat:     make([]float64, dim*total),
		segStart: make([]int, 1, len(segments)+1),
		segBlock: make([]int, 1, len(segments)+1),
	}
	s.kern, s.kernName = kernelFor(dim, opt.ForceGenericKernel)
	s.cols = make([][]float64, dim)
	for d := 0; d < dim; d++ {
		s.cols[d] = s.flat[d*total : (d+1)*total]
	}

	// Row order within a segment: as listed, or by descending norm.
	var ptNorm []float64
	if opt.NormOrder {
		ptNorm = make([]float64, len(points))
		for i, p := range points {
			ptNorm[i] = normOf(p)
		}
	}
	norms := make([]float64, total)
	order := make([]int, 0, total)
	for _, seg := range segments {
		start := len(order)
		order = append(order, seg...)
		if opt.NormOrder {
			part := order[start:]
			for _, pi := range part {
				if pi < 0 || pi >= len(points) {
					return nil, fmt.Errorf("colstore: segment row %d out of range", pi)
				}
			}
			sort.Slice(part, func(a, b int) bool {
				na, nb := ptNorm[part[a]], ptNorm[part[b]]
				if na != nb {
					return na > nb
				}
				return part[a] < part[b]
			})
		}
		s.segStart = append(s.segStart, len(order))
	}

	for r, pi := range order {
		if pi < 0 || pi >= len(points) {
			return nil, fmt.Errorf("colstore: segment row %d out of range", pi)
		}
		p := points[pi]
		if len(p) != dim {
			return nil, fmt.Errorf("colstore: point %d has dim %d, want %d", pi, len(p), dim)
		}
		sq := 0.0
		for d, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("colstore: point %d has non-finite coordinate", pi)
			}
			s.cols[d][r] = v
			sq += v * v
		}
		norms[r] = math.Sqrt(sq)
		s.ids = append(s.ids, int64(pi))
	}

	// Blocks: fixed-size runs that restart at every segment boundary.
	for si := 0; si < len(segments); si++ {
		lo, hi := s.segStart[si], s.segStart[si+1]
		for b := lo; b < hi; b += opt.BlockRows {
			s.blockStart = append(s.blockStart, b)
		}
		s.segBlock = append(s.segBlock, len(s.blockStart))
	}
	s.blockStart = append(s.blockStart, total)

	nb := len(s.blockStart) - 1
	s.zoneLo = make([]float64, nb*dim)
	s.zoneHi = make([]float64, nb*dim)
	s.zoneNorm = make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo, hi := s.blockStart[b], s.blockStart[b+1]
		zl, zh := s.zoneLo[b*dim:(b+1)*dim], s.zoneHi[b*dim:(b+1)*dim]
		for d := 0; d < dim; d++ {
			zl[d] = math.Inf(1)
			zh[d] = math.Inf(-1)
		}
		maxNorm := 0.0
		for r := lo; r < hi; r++ {
			for d := 0; d < dim; d++ {
				v := s.cols[d][r]
				if v < zl[d] {
					zl[d] = v
				}
				if v > zh[d] {
					zh[d] = v
				}
			}
			if norms[r] > maxNorm {
				maxNorm = norms[r]
			}
		}
		s.zoneNorm[b] = maxNorm
		if rows := hi - lo; rows > s.maxBlock {
			s.maxBlock = rows
		}
	}
	return s, nil
}

func normOf(p []float64) float64 {
	sq := 0.0
	for _, v := range p {
		sq += v * v
	}
	return math.Sqrt(sq)
}

// Dim returns the attribute count.
func (s *Store) Dim() int { return s.dim }

// NumRows returns the stored row count.
func (s *Store) NumRows() int { return s.rows }

// NumSegments returns the segment count.
func (s *Store) NumSegments() int { return len(s.segStart) - 1 }

// SegmentLen returns the number of rows in segment si.
func (s *Store) SegmentLen(si int) int { return s.segStart[si+1] - s.segStart[si] }

// NumBlocks returns the zone-map block count.
func (s *Store) NumBlocks() int { return len(s.blockStart) - 1 }

// ID returns the caller id of storage row r.
func (s *Store) ID(r int) int64 { return s.ids[r] }

// At returns the value of attribute d at storage row r.
func (s *Store) At(r, d int) float64 { return s.cols[d][r] }

// KernelName reports which scan kernel the store selected at build
// time ("dim2", "dim4", "dim8", "dim16" or "generic4") — surfaced in
// benchmark artifacts.
func (s *Store) KernelName() string { return s.kernName }

// WeightNorm returns the Euclidean norm of w — the scan's
// Cauchy-Schwarz factor, computed once per query.
func WeightNorm(w []float64) float64 {
	sq := 0.0
	for _, v := range w {
		sq += v * v
	}
	return math.Sqrt(sq)
}

// Stats counts one scan's work at row and block granularity.
type Stats struct {
	// RowsScored counts rows whose score was actually computed.
	RowsScored int
	// RowsZonePruned counts rows skipped because their whole block's
	// zone-map bound fell strictly below the screening floor.
	RowsZonePruned int
	// BlocksZonePruned counts the skipped blocks themselves.
	BlocksZonePruned int
	// RowsSkippedByBudget counts rows left unscanned because the work
	// meter ran out mid-scan.
	RowsSkippedByBudget int
}

// scratch is the pooled per-scan block score buffer.
type scratch struct {
	scores []float64
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// blockBound upper-bounds w·x over block b: the tighter of the zone
// box bound (signed coefficient against the matching extreme) and the
// Cauchy-Schwarz norm bound |w|·max|x|.
func (s *Store) blockBound(b int, w []float64, wNorm float64) float64 {
	zl, zh := s.zoneLo[b*s.dim:], s.zoneHi[b*s.dim:]
	box := 0.0
	for d, wd := range w {
		if wd >= 0 {
			box += wd * zh[d]
		} else {
			box += wd * zl[d]
		}
	}
	if nb := wNorm * s.zoneNorm[b]; nb < box {
		return nb
	}
	return box
}

// ScanSegment scores segment si's rows into h, block by block. Before
// each block it reads the screening floor — the local heap's threshold
// once the heap is full, lifted to the cross-shard bound sb when that
// is higher — and skips the block when its zone-map bound is strictly
// below the floor (a tied bound still scans: the tied row can win the
// smaller-id tie-break). After each scored block the heap threshold is
// re-published to sb, the meter is charged the block's rows, and the
// next block gates on Meter exhaustion, attributing the unscanned
// remainder of the segment to the budget.
//
// The returned segMax upper-bounds the segment's true maximum score:
// it is exact when every block was scored, and stands in the skipped
// blocks' zone bounds otherwise — callers using it as a deeper-layer
// bound (the Onion convex rule) stay sound either way. exhausted
// reports a mid-segment budget stop.
func (s *Store) ScanSegment(si int, w []float64, wNorm float64, h *topk.Heap, sb *topk.Bound, meter *topk.Meter, st *Stats) (segMax float64, exhausted bool) {
	sc := getScratch(s.maxBlock)
	kern := s.scanKernel(w)
	segMax = math.Inf(-1)
	for b := s.segBlock[si]; b < s.segBlock[si+1]; b++ {
		lo, hi := s.blockStart[b], s.blockStart[b+1]
		if meter.Exhausted() {
			st.RowsSkippedByBudget += s.segStart[si+1] - lo
			putScratch(sc)
			return segMax, true
		}
		floor := sb.Get()
		if t, ok := h.Threshold(); ok && t > floor {
			floor = t
		}
		if bound := s.blockBound(b, w, wNorm); bound < floor {
			// Strictly below the floor: no row here can enter the
			// merged top-K, but the bound still owes segMax its vote.
			if bound > segMax {
				segMax = bound
			}
			st.BlocksZonePruned++
			st.RowsZonePruned += hi - lo
			continue
		}
		if m := s.scoreBlock(kern, lo, hi, w, h, sc.scores[:hi-lo]); m > segMax {
			segMax = m
		}
		st.RowsScored += hi - lo
		meter.Charge(hi - lo)
		if t, ok := h.Threshold(); ok {
			sb.Raise(t)
		}
	}
	putScratch(sc)
	return segMax, false
}

// Scan scores every segment in order — the whole-store scan behind the
// sequential-scan regime and the steady-state benchmark. done, when
// non-nil, is polled once per block; a fired done stops the scan and
// reports cancelled (the caller maps it back to its context error).
func (s *Store) Scan(w []float64, wNorm float64, h *topk.Heap, sb *topk.Bound, meter *topk.Meter, done <-chan struct{}, st *Stats) (cancelled, exhausted bool) {
	sc := getScratch(s.maxBlock)
	defer putScratch(sc)
	kern := s.scanKernel(w)
	nb := s.NumBlocks()
	for b := 0; b < nb; b++ {
		if done != nil {
			select {
			case <-done:
				return true, false
			default:
			}
		}
		lo, hi := s.blockStart[b], s.blockStart[b+1]
		if meter.Exhausted() {
			st.RowsSkippedByBudget += s.rows - lo
			return false, true
		}
		floor := sb.Get()
		if t, ok := h.Threshold(); ok && t > floor {
			floor = t
		}
		if s.blockBound(b, w, wNorm) < floor {
			st.BlocksZonePruned++
			st.RowsZonePruned += hi - lo
			continue
		}
		s.scoreBlock(kern, lo, hi, w, h, sc.scores[:hi-lo])
		st.RowsScored += hi - lo
		meter.Charge(hi - lo)
		if t, ok := h.Threshold(); ok {
			sb.Raise(t)
		}
	}
	return false, false
}

// scoreBlock runs the scan's selected dot-product kernel over the
// block (see kernel.go) and offers each score. The running heap
// threshold screens offers so the common case — a full heap rejecting
// a weak row — is one comparison, not a method call.
func (s *Store) scoreBlock(kern kernelFunc, lo, hi int, w []float64, h *topk.Heap, scores []float64) float64 {
	kern(s.cols, lo, hi, w, scores)
	blockMax := math.Inf(-1)
	thr, full := h.Threshold()
	for i, v := range scores {
		if v > blockMax {
			blockMax = v
		}
		// v < thr on a full heap loses to every retained item (ties
		// keep going — the smaller id can still win), so the offer
		// would be rejected; skip the call.
		if full && v < thr {
			continue
		}
		h.OfferScore(s.ids[lo+i], v)
		thr, full = h.Threshold()
	}
	return blockMax
}
