//go:build !race

package colstore

const raceEnabled = false
