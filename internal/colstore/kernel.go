// Dimension-specialized scan kernels. The blocked scan spends almost
// all of its time in the dot-product body (w·x accumulated column by
// column into the block's score buffer), and the generic kernel pays a
// loop over columns with one full pass over the score buffer per
// column. For the dimensions the archives actually use (2, 4, 8, 16) a
// fully unrolled single-pass body keeps the accumulator in a register
// and touches each score element exactly once; every other dimension
// falls back to a 4-wide-unrolled body that processes columns in
// groups of four.
//
// Bit-identity contract: every kernel performs, per row, the exact
// same sequence of rounded operations as the generic reference —
// multiply by the column-d coefficient, then add, in ascending column
// order. Each term appears as the same `acc + c*v` shape in every
// kernel, so a compiler that contracts multiply-adds (arm64) contracts
// all kernels identically and blocked results stay bit-identical to
// the naive row scan on every architecture. The kernel is selected
// once per store (the dimension is fixed at build time), never per
// block.
package colstore

// kernelFunc scores rows [lo, hi) of cols into scores[0:hi-lo]:
// scores[i] = Σ_d w[d]·cols[d][lo+i].
type kernelFunc func(cols [][]float64, lo, hi int, w []float64, scores []float64)

// scanKernel picks the kernel ONE scan runs with: the store's
// dimension-selected body for dense weight vectors, or the sparse
// column-skipping body when any coefficient is zero — an unrolled
// kernel would pay a full multiply-add pass per zero column that the
// sparse body skips outright. Zero-coefficient terms contribute ±0,
// which never changes a score under ==, so both bodies return equal
// results (the pre-rewrite kernel was exactly the sparse shape).
func (s *Store) scanKernel(w []float64) kernelFunc {
	for _, c := range w {
		if c == 0 {
			return kernelSparse
		}
	}
	return s.kern
}

// kernelFor selects the scan kernel for a dimension. generic forces
// the pre-specialization fallback (Options.ForceGenericKernel).
func kernelFor(dim int, generic bool) (kernelFunc, string) {
	if generic {
		return kernelGeneric, "generic4"
	}
	switch dim {
	case 2:
		return kernelDim2, "dim2"
	case 4:
		return kernelDim4, "dim4"
	case 8:
		return kernelDim8, "dim8"
	case 16:
		return kernelDim16, "dim16"
	default:
		return kernelGeneric, "generic4"
	}
}

func kernelDim2(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	n := hi - lo
	a := cols[0][lo:hi:hi]
	b := cols[1][lo:hi:hi]
	c0, c1 := w[0], w[1]
	for i := 0; i < n; i++ {
		s := c0 * a[i]
		s += c1 * b[i]
		scores[i] = s
	}
}

func kernelDim4(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	n := hi - lo
	a := cols[0][lo:hi:hi]
	b := cols[1][lo:hi:hi]
	c := cols[2][lo:hi:hi]
	d := cols[3][lo:hi:hi]
	c0, c1, c2, c3 := w[0], w[1], w[2], w[3]
	for i := 0; i < n; i++ {
		s := c0 * a[i]
		s += c1 * b[i]
		s += c2 * c[i]
		s += c3 * d[i]
		scores[i] = s
	}
}

func kernelDim8(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	n := hi - lo
	a := cols[0][lo:hi:hi]
	b := cols[1][lo:hi:hi]
	c := cols[2][lo:hi:hi]
	d := cols[3][lo:hi:hi]
	e := cols[4][lo:hi:hi]
	f := cols[5][lo:hi:hi]
	g := cols[6][lo:hi:hi]
	h := cols[7][lo:hi:hi]
	c0, c1, c2, c3 := w[0], w[1], w[2], w[3]
	c4, c5, c6, c7 := w[4], w[5], w[6], w[7]
	for i := 0; i < n; i++ {
		s := c0 * a[i]
		s += c1 * b[i]
		s += c2 * c[i]
		s += c3 * d[i]
		s += c4 * e[i]
		s += c5 * f[i]
		s += c6 * g[i]
		s += c7 * h[i]
		scores[i] = s
	}
}

func kernelDim16(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	// Two unrolled 8-column halves; the second half re-loads the score
	// accumulator, which is exact (float64 stores do not round).
	kernelDim8(cols, lo, hi, w, scores)
	n := hi - lo
	a := cols[8][lo:hi:hi]
	b := cols[9][lo:hi:hi]
	c := cols[10][lo:hi:hi]
	d := cols[11][lo:hi:hi]
	e := cols[12][lo:hi:hi]
	f := cols[13][lo:hi:hi]
	g := cols[14][lo:hi:hi]
	h := cols[15][lo:hi:hi]
	c8, c9, c10, c11 := w[8], w[9], w[10], w[11]
	c12, c13, c14, c15 := w[12], w[13], w[14], w[15]
	for i := 0; i < n; i++ {
		s := scores[i]
		s += c8 * a[i]
		s += c9 * b[i]
		s += c10 * c[i]
		s += c11 * d[i]
		s += c12 * e[i]
		s += c13 * f[i]
		s += c14 * g[i]
		s += c15 * h[i]
		scores[i] = s
	}
}

// kernelGeneric is the fallback for dimensions without an unrolled
// body: the first group of up to four columns initializes the score
// buffer, then further columns accumulate in groups of four (one score
// pass per group instead of one per column), with a tail of single
// columns. Term order is ascending column order throughout.
func kernelGeneric(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	n := hi - lo
	dim := len(w)
	// Initialize from the first 1..4 columns.
	switch {
	case dim >= 4:
		a := cols[0][lo:hi:hi]
		b := cols[1][lo:hi:hi]
		c := cols[2][lo:hi:hi]
		d := cols[3][lo:hi:hi]
		c0, c1, c2, c3 := w[0], w[1], w[2], w[3]
		for i := 0; i < n; i++ {
			s := c0 * a[i]
			s += c1 * b[i]
			s += c2 * c[i]
			s += c3 * d[i]
			scores[i] = s
		}
	case dim == 3:
		a := cols[0][lo:hi:hi]
		b := cols[1][lo:hi:hi]
		c := cols[2][lo:hi:hi]
		c0, c1, c2 := w[0], w[1], w[2]
		for i := 0; i < n; i++ {
			s := c0 * a[i]
			s += c1 * b[i]
			s += c2 * c[i]
			scores[i] = s
		}
	case dim == 2:
		kernelDim2(cols, lo, hi, w, scores)
		return
	default: // dim == 1
		a := cols[0][lo:hi:hi]
		c0 := w[0]
		for i := 0; i < n; i++ {
			scores[i] = c0 * a[i]
		}
		return
	}
	// Accumulate remaining columns four at a time.
	d4 := 4
	for ; d4+4 <= dim; d4 += 4 {
		a := cols[d4][lo:hi:hi]
		b := cols[d4+1][lo:hi:hi]
		c := cols[d4+2][lo:hi:hi]
		d := cols[d4+3][lo:hi:hi]
		c0, c1, c2, c3 := w[d4], w[d4+1], w[d4+2], w[d4+3]
		for i := 0; i < n; i++ {
			s := scores[i]
			s += c0 * a[i]
			s += c1 * b[i]
			s += c2 * c[i]
			s += c3 * d[i]
			scores[i] = s
		}
	}
	// Tail: remaining 1..3 columns, one pass each.
	for ; d4 < dim; d4++ {
		col := cols[d4][lo:hi:hi]
		c := w[d4]
		for i := 0; i < n; i++ {
			scores[i] += c * col[i]
		}
	}
}

// kernelSparse is the zero-skipping per-column body (the pre-rewrite
// kernel): one pass per NON-ZERO column. It wins whenever the weight
// vector has zero coefficients — a sparse model over a wide store
// pays only for its live columns.
func kernelSparse(cols [][]float64, lo, hi int, w []float64, scores []float64) {
	n := hi - lo
	c0 := w[0]
	col := cols[0][lo:hi:hi]
	for i := 0; i < n; i++ {
		scores[i] = c0 * col[i]
	}
	for d := 1; d < len(w); d++ {
		c := w[d]
		if c == 0 {
			continue
		}
		col := cols[d][lo:hi:hi]
		for i := 0; i < n; i++ {
			scores[i] += c * col[i]
		}
	}
}
