package colstore

import (
	"math"
	"math/rand"
	"testing"

	"modelir/internal/topk"
)

// randomPoints draws n dim-dimensional Gaussian rows with occasional
// exact duplicates and ties, the cases zone-map strictness must handle.
func randomPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		if i > 0 && rng.Float64() < 0.05 {
			// Duplicate an earlier row: score ties across rows.
			pts[i] = pts[rng.Intn(i)]
			continue
		}
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 3
			if rng.Float64() < 0.1 {
				p[d] = math.Round(p[d]) // exact-value collisions
			}
		}
		pts[i] = p
	}
	return pts
}

// naiveTopK is the reference: score every row, keep the heap's top-K.
func naiveTopK(pts [][]float64, w []float64, k int) []topk.Item {
	h := topk.MustHeap(k)
	for i, p := range pts {
		s := 0.0
		for d, v := range w {
			s += v * p[d]
		}
		h.OfferScore(int64(i), s)
	}
	return h.Results()
}

func filterAtLeast(items []topk.Item, floor float64) []topk.Item {
	if math.IsInf(floor, -1) {
		return items
	}
	out := items[:0:0]
	for _, it := range items {
		if it.Score >= floor {
			out = append(out, it)
		}
	}
	return out
}

func itemsEqual(t *testing.T, label string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s: pos %d: got (%d, %v), want (%d, %v)",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// scanAll runs the blocked scan over the whole store into a fresh heap.
func scanAll(s *Store, w []float64, k int, floor float64, meter *topk.Meter, st *Stats) []topk.Item {
	h := topk.MustHeap(k)
	var sb *topk.Bound
	if !math.IsInf(floor, -1) {
		sb = topk.NewBound()
		sb.Raise(floor)
	}
	s.Scan(w, WeightNorm(w), h, sb, meter, nil, st)
	return h.Results()
}

// TestBuildValidation pins the constructor's error contract.
func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := Build([][]float64{{}}, Options{}); err == nil {
		t.Fatal("want error for zero-dim points")
	}
	if _, err := Build([][]float64{{1, 2}, {1}}, Options{}); err == nil {
		t.Fatal("want error for ragged points")
	}
	if _, err := Build([][]float64{{1, math.NaN()}}, Options{}); err == nil {
		t.Fatal("want error for NaN coordinate")
	}
	if _, err := Build([][]float64{{1, math.Inf(1)}}, Options{}); err == nil {
		t.Fatal("want error for infinite coordinate")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := BuildSegmented(pts, nil, Options{}); err == nil {
		t.Fatal("want error for no segments")
	}
	// Non-positive block sizes fall back to the default instead of
	// wedging the block-partition loop.
	s, err := Build(pts, Options{BlockRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() != 1 || s.maxBlock != 2 {
		t.Fatalf("negative BlockRows: %d blocks, maxBlock %d", s.NumBlocks(), s.maxBlock)
	}
	if _, err := BuildSegmented(pts, [][]int{{}}, Options{}); err == nil {
		t.Fatal("want error for empty segment")
	}
	if _, err := BuildSegmented(pts, [][]int{{0, 7}}, Options{}); err == nil {
		t.Fatal("want error for out-of-range segment row")
	}
}

// TestLayoutRoundTrip: every row id appears once and carries its source
// values, under both row orders and across segment shapes.
func TestLayoutRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 300, 3)
	segs := [][]int{}
	for lo := 0; lo < len(pts); lo += 70 {
		hi := lo + 70
		if hi > len(pts) {
			hi = len(pts)
		}
		seg := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			seg = append(seg, i)
		}
		segs = append(segs, seg)
	}
	for _, normOrder := range []bool{false, true} {
		s, err := BuildSegmented(pts, segs, Options{BlockRows: 32, NormOrder: normOrder})
		if err != nil {
			t.Fatal(err)
		}
		if s.NumRows() != len(pts) || s.NumSegments() != len(segs) {
			t.Fatalf("store %dx%d segments, want %dx%d", s.NumRows(), s.NumSegments(), len(pts), len(segs))
		}
		seen := make(map[int64]bool, len(pts))
		for r := 0; r < s.NumRows(); r++ {
			id := s.ID(r)
			if seen[id] {
				t.Fatalf("normOrder=%v: id %d stored twice", normOrder, id)
			}
			seen[id] = true
			for d := 0; d < s.Dim(); d++ {
				if s.At(r, d) != pts[id][d] {
					t.Fatalf("normOrder=%v: row %d dim %d mismatch", normOrder, r, d)
				}
			}
		}
	}
}

// TestBlockedScanMatchesNaive is the zone-map soundness property: the
// blocked, zone-pruned scan returns bit-identical top-K (IDs and
// scores) to a scan that looks at every row, across random data,
// models, K, score floors, block sizes, and both row orders.
func TestBlockedScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(2000)
		dim := 1 + rng.Intn(8)
		pts := randomPoints(rng, n, dim)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.NormFloat64()
			if rng.Float64() < 0.2 {
				w[d] = 0 // exercise the zero-coefficient skip
			}
		}
		k := 1 + rng.Intn(40)
		blockRows := 1 + rng.Intn(200)
		floor := math.Inf(-1)
		if rng.Float64() < 0.5 {
			// A floor near the score distribution so pruning really fires.
			floor = rng.NormFloat64() * 2
		}
		s, err := Build(pts, Options{BlockRows: blockRows, NormOrder: rng.Float64() < 0.5})
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		got := filterAtLeast(scanAll(s, w, k, floor, nil, &st), floor)
		want := filterAtLeast(naiveTopK(pts, w, k), floor)
		itemsEqual(t, "blocked vs naive", got, want)
		if st.RowsScored+st.RowsZonePruned != n {
			t.Fatalf("rows scored %d + pruned %d != %d", st.RowsScored, st.RowsZonePruned, n)
		}
	}
}

// TestNormOrderInvariance: reordering rows inside segments must not
// change any result, only the work profile.
func TestNormOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 4096, 5)
	w := []float64{1, -0.5, 2, 0.25, -1.5}
	plain, err := Build(pts, Options{BlockRows: 128, NormOrder: false})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := Build(pts, Options{BlockRows: 128, NormOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 10, 100} {
		var stP, stS Stats
		a := scanAll(plain, w, k, math.Inf(-1), nil, &stP)
		b := scanAll(sorted, w, k, math.Inf(-1), nil, &stS)
		itemsEqual(t, "norm-order invariance", a, b)
		if stS.RowsScored > stP.RowsScored {
			t.Logf("k=%d: norm order scored %d rows vs %d unsorted (informational)",
				k, stS.RowsScored, stP.RowsScored)
		}
	}
}

// TestScanBudget: the meter gates block by block; scored, zone-pruned
// and budget-skipped rows partition the store exactly, and the meter
// charge equals the rows actually scored.
func TestScanBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 1000, 4)
	s, err := Build(pts, Options{BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1, -1, 0.5}
	meter := topk.NewMeter(100)
	var st Stats
	scanAll(s, w, 10, math.Inf(-1), meter, &st)
	if !meter.Exhausted() {
		t.Fatal("meter not exhausted")
	}
	// The gate is pre-block, the charge post-block: two 64-row blocks
	// cross the 100-unit budget.
	if st.RowsScored != 128 {
		t.Fatalf("scored %d rows, want 128", st.RowsScored)
	}
	if int(meter.Used()) != st.RowsScored {
		t.Fatalf("meter charged %d for %d rows", meter.Used(), st.RowsScored)
	}
	if st.RowsScored+st.RowsZonePruned+st.RowsSkippedByBudget != s.NumRows() {
		t.Fatalf("scored %d + pruned %d + skipped %d != %d",
			st.RowsScored, st.RowsZonePruned, st.RowsSkippedByBudget, s.NumRows())
	}
}

// TestScanCancel: a fired done channel stops the scan at the next
// block boundary.
func TestScanCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(rng, 500, 3)
	s, err := Build(pts, Options{BlockRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	h := topk.MustHeap(5)
	var st Stats
	cancelled, _ := s.Scan([]float64{1, 1, 1}, WeightNorm([]float64{1, 1, 1}), h, nil, nil, done, &st)
	if !cancelled {
		t.Fatal("scan ignored fired done channel")
	}
	if st.RowsScored != 0 {
		t.Fatalf("cancelled scan scored %d rows", st.RowsScored)
	}
}

// TestSteadyStateScanZeroAllocs pins the zero-allocation hot path: a
// warmed-up blocked scan with a pooled heap and reused result buffer
// must not allocate at all.
func TestSteadyStateScanZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector; allocation counts are only meaningful without it")
	}
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 20_000, 8)
	s, err := Build(pts, Options{NormOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, -0.5, 2, 0.25, -1.5, 0.75, -0.25, 1.25}
	wNorm := WeightNorm(w)
	h := topk.MustHeap(10)
	buf := make([]topk.Item, 0, 10)
	var st Stats
	scan := func() {
		h.Reset()
		s.Scan(w, wNorm, h, nil, nil, nil, &st)
		buf = h.AppendResults(buf[:0])
	}
	scan() // warm the scratch pool
	if allocs := testing.AllocsPerRun(20, scan); allocs != 0 {
		t.Fatalf("steady-state scan allocates %.1f allocs/op, want 0", allocs)
	}
	if len(buf) != 10 {
		t.Fatalf("scan returned %d items", len(buf))
	}
}

// FuzzBlockedScanEquivalence drives the soundness property from fuzzed
// shape parameters: whatever the data, weights, block size, floor, and
// K, the blocked scan equals the row-by-row reference.
func FuzzBlockedScanEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(3), uint8(5), uint16(32), false, 0.0)
	f.Add(int64(2), uint16(1), uint8(1), uint8(1), uint16(1), true, -1.5)
	f.Add(int64(3), uint16(2000), uint8(8), uint8(40), uint16(1000), true, 2.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, dimRaw, kRaw uint8, blockRaw uint16, normOrder bool, floor float64) {
		n := int(nRaw)%3000 + 1
		dim := int(dimRaw)%8 + 1
		k := int(kRaw)%50 + 1
		blockRows := int(blockRaw)%500 + 1
		if math.IsNaN(floor) {
			floor = math.Inf(-1)
		}
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, n, dim)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.NormFloat64()
		}
		s, err := Build(pts, Options{BlockRows: blockRows, NormOrder: normOrder})
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		got := filterAtLeast(scanAll(s, w, k, floor, nil, &st), floor)
		want := filterAtLeast(naiveTopK(pts, w, k), floor)
		if len(got) != len(want) {
			t.Fatalf("blocked %d items, naive %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("pos %d: blocked (%d, %v), naive (%d, %v)",
					i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	})
}
