package pyramid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelir/internal/raster"
	"modelir/internal/synth"
)

func randomGrid(seed int64, w, h int) *raster.Grid {
	rng := rand.New(rand.NewSource(seed))
	g := raster.MustGrid(w, h)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64() * 100
	}
	return g
}

func TestBuildLevels(t *testing.T) {
	g := randomGrid(1, 64, 32)
	p, err := Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLevels() != 4 {
		t.Fatalf("levels=%d", p.NumLevels())
	}
	wantW := []int{64, 32, 16, 8}
	for i := 0; i < 4; i++ {
		if p.Level(i).Mean.Width() != wantW[i] {
			t.Fatalf("level %d width %d want %d", i, p.Level(i).Mean.Width(), wantW[i])
		}
		if p.Level(i).Scale != 1<<uint(i) {
			t.Fatalf("level %d scale %d", i, p.Level(i).Scale)
		}
	}
	if _, err := Build(g, 0); err == nil {
		t.Fatal("want error for zero levels")
	}
	if _, err := Build(nil, 2); err == nil {
		t.Fatal("want error for nil grid")
	}
}

func TestBuildStopsAt1x1(t *testing.T) {
	g := randomGrid(2, 4, 4)
	p, err := Build(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	last := p.Coarsest()
	if last.Mean.Width() != 1 || last.Mean.Height() != 1 {
		t.Fatalf("coarsest %dx%d", last.Mean.Width(), last.Mean.Height())
	}
	if p.NumLevels() != 3 {
		t.Fatalf("levels=%d want 3 (4->2->1)", p.NumLevels())
	}
}

// Soundness: every coarse cell's [Min,Max] envelope brackets every level-0
// sample it covers, at every level. This is the invariant that makes
// progressive pruning exact.
func TestEnvelopeSoundness(t *testing.T) {
	g := randomGrid(3, 37, 29) // deliberately non-dyadic
	p, err := Build(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 1; lvl < p.NumLevels(); lvl++ {
		L := p.Level(lvl)
		for cy := 0; cy < L.Mean.Height(); cy++ {
			for cx := 0; cx < L.Mean.Width(); cx++ {
				r := p.CellRect(lvl, cx, cy)
				lo, hi := g.SubMinMax(r)
				if L.Min.At(cx, cy) > lo+1e-12 {
					t.Fatalf("lvl %d cell (%d,%d): envelope min %v > actual %v",
						lvl, cx, cy, L.Min.At(cx, cy), lo)
				}
				if L.Max.At(cx, cy) < hi-1e-12 {
					t.Fatalf("lvl %d cell (%d,%d): envelope max %v < actual %v",
						lvl, cx, cy, L.Max.At(cx, cy), hi)
				}
			}
		}
	}
}

func TestEnvelopeSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		w := 8 + int(uint(seed)%23)
		h := 8 + int(uint(seed/7)%17)
		g := randomGrid(seed, w, h)
		p, err := Build(g, 4)
		if err != nil {
			return false
		}
		for lvl := 1; lvl < p.NumLevels(); lvl++ {
			L := p.Level(lvl)
			for cy := 0; cy < L.Mean.Height(); cy++ {
				for cx := 0; cx < L.Mean.Width(); cx++ {
					r := p.CellRect(lvl, cx, cy)
					lo, hi := g.SubMinMax(r)
					if L.Min.At(cx, cy) > lo+1e-12 || L.Max.At(cx, cy) < hi-1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarRoundTrip(t *testing.T) {
	g := randomGrid(5, 32, 16)
	h, err := HaarDecompose(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := h.Reconstruct()
	if r.Width() != 32 || r.Height() != 16 {
		t.Fatalf("reconstructed dims %dx%d", r.Width(), r.Height())
	}
	for i, v := range g.Data() {
		if math.Abs(v-r.Data()[i]) > 1e-9 {
			t.Fatalf("sample %d: %v vs %v", i, v, r.Data()[i])
		}
	}
}

func TestHaarRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGrid(seed, 16, 16)
		h, err := HaarDecompose(g, 2)
		if err != nil {
			return false
		}
		r := h.Reconstruct()
		for i, v := range g.Data() {
			if math.Abs(v-r.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarValidation(t *testing.T) {
	g := randomGrid(1, 30, 30)
	if _, err := HaarDecompose(g, 2); err == nil {
		t.Fatal("30x30 with 2 levels should fail (not dyadic)")
	}
	if _, err := HaarDecompose(g, 0); err == nil {
		t.Fatal("zero levels should fail")
	}
}

func TestHaarApproxIsBlockMean(t *testing.T) {
	g := randomGrid(9, 8, 8)
	h, err := HaarDecompose(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Approx.Width() != 1 || h.Approx.Height() != 1 {
		t.Fatalf("approx dims %dx%d", h.Approx.Width(), h.Approx.Height())
	}
	if math.Abs(h.Approx.At(0, 0)-g.Mean()) > 1e-9 {
		t.Fatalf("approx %v != mean %v", h.Approx.At(0, 0), g.Mean())
	}
}

func TestReconstructToIntermediate(t *testing.T) {
	g := randomGrid(11, 16, 16)
	h, err := HaarDecompose(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	mid := h.ReconstructTo(1)
	if mid.Width() != 8 || mid.Height() != 8 {
		t.Fatalf("intermediate dims %dx%d", mid.Width(), mid.Height())
	}
	// Intermediate approximation equals 2x2 block means of the original.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := g.SubMean(raster.Rect{X0: 2 * x, Y0: 2 * y, X1: 2*x + 2, Y1: 2*y + 2})
			if math.Abs(mid.At(x, y)-want) > 1e-9 {
				t.Fatalf("(%d,%d)=%v want %v", x, y, mid.At(x, y), want)
			}
		}
	}
}

func TestDetailEnergyFlatImage(t *testing.T) {
	g := raster.MustGrid(16, 16)
	g.Fill(7)
	h, err := HaarDecompose(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range h.DetailEnergy() {
		if e != 0 {
			t.Fatalf("flat image has detail energy %v at level %d", e, i)
		}
	}
}

func TestPadToDyadic(t *testing.T) {
	g := randomGrid(13, 30, 17)
	p, ow, oh := PadToDyadic(g, 3)
	if ow != 30 || oh != 17 {
		t.Fatalf("original dims %dx%d", ow, oh)
	}
	if p.Width()%8 != 0 || p.Height()%8 != 0 {
		t.Fatalf("padded dims %dx%d not divisible by 8", p.Width(), p.Height())
	}
	// Interior preserved.
	for y := 0; y < 17; y++ {
		for x := 0; x < 30; x++ {
			if p.At(x, y) != g.At(x, y) {
				t.Fatal("padding changed interior")
			}
		}
	}
	// Edge replication.
	if p.At(p.Width()-1, 0) != g.At(29, 0) {
		t.Fatal("right edge not replicated")
	}
	// Already-dyadic input: exact copy.
	d := randomGrid(14, 32, 32)
	p2, _, _ := PadToDyadic(d, 3)
	if !p2.Equal(d) {
		t.Fatal("dyadic input should round-trip unchanged")
	}
}

func TestBuildMultiband(t *testing.T) {
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 20, W: 64, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := BuildMultiband(sc.Bands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumBands() != 4 || mp.NumLevels() != 4 {
		t.Fatalf("bands=%d levels=%d", mp.NumBands(), mp.NumLevels())
	}
	if len(mp.BandNames()) != 4 {
		t.Fatal("band names lost")
	}
	if _, err := BuildMultiband(nil, 2); err == nil {
		t.Fatal("want error for nil multiband")
	}
}
