package pyramid

import (
	"math/rand"
	"testing"

	"modelir/internal/raster"
)

func randomMultiband(t *testing.T, seed int64, w, h, nb int) *raster.Multiband {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grids := make([]*raster.Grid, nb)
	names := make([]string, nb)
	for b := range grids {
		g := raster.MustGrid(w, h)
		for i := range g.Data() {
			g.Data()[i] = rng.NormFloat64() * 50
		}
		grids[b] = g
		names[b] = string(rune('a' + b))
	}
	mb, err := raster.Stack(names, grids...)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

// TestFlatMatchesGrids: every flat-plane value must equal the Grid
// pyramid value it was copied from, at every level, band and cell —
// the bit-identity foundation of the columnar descent.
func TestFlatMatchesGrids(t *testing.T) {
	for _, dims := range [][2]int{{16, 16}, {13, 9}, {1, 7}} {
		mb := randomMultiband(t, int64(dims[0]*100+dims[1]), dims[0], dims[1], 3)
		mp, err := BuildMultiband(mb, 4)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < mp.NumLevels(); l++ {
			fl := mp.Flat(l)
			for b := 0; b < mp.NumBands(); b++ {
				lvl := mp.Band(b).Level(l)
				if fl.W != lvl.Mean.Width() || fl.H != lvl.Mean.Height() || fl.Scale != lvl.Scale {
					t.Fatalf("level %d shape: flat %dx%d scale %d vs grid %dx%d scale %d",
						l, fl.W, fl.H, fl.Scale, lvl.Mean.Width(), lvl.Mean.Height(), lvl.Scale)
				}
				for y := 0; y < fl.H; y++ {
					for x := 0; x < fl.W; x++ {
						if fl.At(x, y, b, 0) != lvl.Mean.At(x, y) ||
							fl.At(x, y, b, 1) != lvl.Min.At(x, y) ||
							fl.At(x, y, b, 2) != lvl.Max.At(x, y) {
							t.Fatalf("level %d band %d cell (%d,%d): flat (%v,%v,%v) vs grid (%v,%v,%v)",
								l, b, x, y,
								fl.At(x, y, b, 0), fl.At(x, y, b, 1), fl.At(x, y, b, 2),
								lvl.Mean.At(x, y), lvl.Min.At(x, y), lvl.Max.At(x, y))
						}
					}
				}
			}
		}
	}
}

// TestFlatEnvelopeAndMeans exercises the vector accessors the descent
// uses, including band bindings that reorder and repeat bands.
func TestFlatEnvelopeAndMeans(t *testing.T) {
	mb := randomMultiband(t, 5, 8, 8, 4)
	mp, err := BuildMultiband(mb, 3)
	if err != nil {
		t.Fatal(err)
	}
	bind := []int{2, 0, 3, 2}
	lo := make([]float64, len(bind))
	hi := make([]float64, len(bind))
	xs := make([]float64, len(bind))
	for l := 0; l < mp.NumLevels(); l++ {
		fl := mp.Flat(l)
		for y := 0; y < fl.H; y++ {
			for x := 0; x < fl.W; x++ {
				fl.Envelope(x, y, bind, lo, hi)
				fl.Means(x, y, bind, xs)
				for i, b := range bind {
					lvl := mp.Band(b).Level(l)
					if lo[i] != lvl.Min.At(x, y) || hi[i] != lvl.Max.At(x, y) || xs[i] != lvl.Mean.At(x, y) {
						t.Fatalf("level %d cell (%d,%d) attr %d (band %d): envelope (%v,%v) mean %v vs grid (%v,%v) %v",
							l, x, y, i, b, lo[i], hi[i], xs[i],
							lvl.Min.At(x, y), lvl.Max.At(x, y), lvl.Mean.At(x, y))
					}
				}
			}
		}
	}
}
