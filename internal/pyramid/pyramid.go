// Package pyramid implements the multi-resolution axis of the paper's
// progressive data representation (Section 3.1): "Multi-resolution
// representations, such as wavelets, can be used to provide rough
// approximations of information at low resolutions (low data volumes), with
// more detailed views at higher resolutions."
//
// Two structures are provided:
//
//   - Pyramid: a mean pyramid (levels of Downsample2 averages) with exact
//     per-cell min/max envelopes. The envelopes are what makes progressive
//     pruning *sound*: a coarse cell's [min,max] brackets every fine sample
//     beneath it, so a linear model's value over the block can be bounded
//     without touching the fine data.
//
//   - Haar: a standard 2-D Haar wavelet decomposition (approximation +
//     detail subbands per level) with exact reconstruction, modelling the
//     compressed-domain storage of [3,13].
package pyramid

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"modelir/internal/raster"
)

// ErrNoLevels is returned when a pyramid would have no levels.
var ErrNoLevels = errors.New("pyramid: need at least one level")

// Level is one resolution of a mean pyramid: the mean surface plus min/max
// envelopes over the original cells each coarse cell covers.
type Level struct {
	Mean *raster.Grid
	Min  *raster.Grid
	Max  *raster.Grid
	// Scale is the linear downsampling factor relative to level 0 (1, 2,
	// 4, ...).
	Scale int
}

// Pyramid is a mean/min/max image pyramid. Level 0 is full resolution;
// each subsequent level halves both dimensions.
type Pyramid struct {
	levels []Level
}

// Build constructs a pyramid over g with the requested number of levels
// (including level 0). Levels stop early if the surface shrinks to 1×1.
func Build(g *raster.Grid, levels int) (*Pyramid, error) {
	if levels < 1 {
		return nil, ErrNoLevels
	}
	if g == nil {
		return nil, errors.New("pyramid: nil grid")
	}
	p := &Pyramid{levels: make([]Level, 0, levels)}
	cur := Level{Mean: g.Clone(), Min: g.Clone(), Max: g.Clone(), Scale: 1}
	p.levels = append(p.levels, cur)
	for len(p.levels) < levels && (cur.Mean.Width() > 1 || cur.Mean.Height() > 1) {
		next := Level{
			Mean:  cur.Mean.Downsample2(),
			Min:   downMin(cur.Min),
			Max:   downMax(cur.Max),
			Scale: cur.Scale * 2,
		}
		p.levels = append(p.levels, next)
		cur = next
	}
	return p, nil
}

// NumLevels returns the number of resolutions (level 0 = finest).
func (p *Pyramid) NumLevels() int { return len(p.levels) }

// Level returns the i-th level (0 = full resolution).
func (p *Pyramid) Level(i int) Level { return p.levels[i] }

// Coarsest returns the last (smallest) level.
func (p *Pyramid) Coarsest() Level { return p.levels[len(p.levels)-1] }

// CellRect maps a coarse cell at level lvl to the rectangle of level-0
// cells it covers (clipped to the base bounds).
func (p *Pyramid) CellRect(lvl, x, y int) raster.Rect {
	s := p.levels[lvl].Scale
	base := p.levels[0].Mean.Bounds()
	return raster.Rect{X0: x * s, Y0: y * s, X1: (x + 1) * s, Y1: (y + 1) * s}.Intersect(base)
}

func downMin(g *raster.Grid) *raster.Grid {
	nw, nh := (g.Width()+1)/2, (g.Height()+1)/2
	out := raster.MustGrid(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			lo := math.Inf(1)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < g.Width() && sy < g.Height() {
						if v := g.At(sx, sy); v < lo {
							lo = v
						}
					}
				}
			}
			out.Set(x, y, lo)
		}
	}
	return out
}

func downMax(g *raster.Grid) *raster.Grid {
	nw, nh := (g.Width()+1)/2, (g.Height()+1)/2
	out := raster.MustGrid(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			hi := math.Inf(-1)
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					sx, sy := 2*x+dx, 2*y+dy
					if sx < g.Width() && sy < g.Height() {
						if v := g.At(sx, sy); v > hi {
							hi = v
						}
					}
				}
			}
			out.Set(x, y, hi)
		}
	}
	return out
}

// MultibandPyramid carries one Pyramid per band of a scene, aligned by
// level, so progressive model execution can bound multi-band linear models
// per coarse cell.
type MultibandPyramid struct {
	names []string
	// bands holds the per-band Grid pyramids. BuildMultiband populates
	// it eagerly; a pyramid restored from flat planes (FromFlat) leaves
	// it nil and materializes lazily on first Band call — the serving
	// descent reads only the flat view, so a restored archive never
	// pays for Grid materialization unless an off-engine path asks.
	bands    []*Pyramid
	bandOnce sync.Once
	// flat is the columnar per-level view (flat.go): one allocation per
	// level holding every band's mean/min/max, cell-major.
	flat []FlatLevel
}

// BuildMultiband builds aligned pyramids for every band of m.
func BuildMultiband(m *raster.Multiband, levels int) (*MultibandPyramid, error) {
	if m == nil {
		return nil, errors.New("pyramid: nil multiband")
	}
	out := &MultibandPyramid{names: m.BandNames(), bands: make([]*Pyramid, m.NumBands())}
	for i := 0; i < m.NumBands(); i++ {
		p, err := Build(m.Band(i), levels)
		if err != nil {
			return nil, fmt.Errorf("band %d: %w", i, err)
		}
		out.bands[i] = p
	}
	out.flat = buildFlatLevels(out.bands)
	return out, nil
}

// NumBands returns the band count.
func (mp *MultibandPyramid) NumBands() int { return len(mp.names) }

// NumLevels returns the common level count (minimum across bands).
// The flat view is built over exactly that minimum, so its length IS
// the answer on both the built and the restored path.
func (mp *MultibandPyramid) NumLevels() int { return len(mp.flat) }

// Band returns the pyramid for band i, materializing Grid pyramids
// from the flat planes first if this pyramid was restored planes-only.
func (mp *MultibandPyramid) Band(i int) *Pyramid {
	mp.bandOnce.Do(mp.materializeBands)
	return mp.bands[i]
}

// materializeBands rebuilds the per-band Grid pyramids from the flat
// cell-major planes. The flat values were copied verbatim from the
// grids at build time (or restored bit-identical from a snapshot), so
// the reverse copy reproduces the Grid path exactly.
func (mp *MultibandPyramid) materializeBands() {
	if mp.bands != nil {
		return
	}
	nb := len(mp.names)
	bands := make([]*Pyramid, nb)
	for b := 0; b < nb; b++ {
		p := &Pyramid{levels: make([]Level, len(mp.flat))}
		for l := range mp.flat {
			fl := &mp.flat[l]
			mean := raster.MustGrid(fl.W, fl.H)
			lo := raster.MustGrid(fl.W, fl.H)
			hi := raster.MustGrid(fl.W, fl.H)
			stride := fl.Bands * 3
			for y := 0; y < fl.H; y++ {
				mr, nr, xr := mean.Row(y), lo.Row(y), hi.Row(y)
				rowBase := y * fl.W * stride
				for x := 0; x < fl.W; x++ {
					o := rowBase + x*stride + b*3
					mr[x] = fl.vals[o]
					nr[x] = fl.vals[o+1]
					xr[x] = fl.vals[o+2]
				}
			}
			p.levels[l] = Level{Mean: mean, Min: lo, Max: hi, Scale: fl.Scale}
		}
		bands[b] = p
	}
	mp.bands = bands
}

// BandNames returns the band names in order.
func (mp *MultibandPyramid) BandNames() []string {
	out := make([]string, len(mp.names))
	copy(out, mp.names)
	return out
}

// BandName returns the name of band i without copying the name table —
// the allocation-free accessor hot binding paths use.
func (mp *MultibandPyramid) BandName(i int) string { return mp.names[i] }
