// Plane export/import for the snapshot subsystem: a MultibandPyramid's
// serving state is exactly its flat cell-major levels (the descent
// reads nothing else), so a snapshot stores one plane per level and a
// restore rebuilds the pyramid planes-only — Grid bands materialize
// lazily only if an off-engine path asks for them.

package pyramid

import "fmt"

// Vals returns the level's backing plane for serialization. The slice
// aliases the level — treat it as read-only.
func (fl *FlatLevel) Vals() []float64 { return fl.vals }

// FlatFromVals reconstructs a FlatLevel around a restored plane,
// validating the geometry the hot accessors index by. vals is adopted,
// not copied (it may be mmap-backed).
func FlatFromVals(w, h, scale, bands int, vals []float64) (FlatLevel, error) {
	if w < 1 || h < 1 || bands < 1 || scale < 1 {
		return FlatLevel{}, fmt.Errorf("pyramid: flat level geometry %dx%d bands %d scale %d", w, h, bands, scale)
	}
	if len(vals) != w*h*bands*3 {
		return FlatLevel{}, fmt.Errorf("pyramid: flat level plane len %d, want %d", len(vals), w*h*bands*3)
	}
	return FlatLevel{W: w, H: h, Scale: scale, Bands: bands, vals: vals}, nil
}

// FromFlat reconstructs a MultibandPyramid from restored flat levels.
// Every level must carry len(names) bands; levels must run fine to
// coarse (level 0 first). Grid bands are left unmaterialized.
func FromFlat(names []string, levels []FlatLevel) (*MultibandPyramid, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("pyramid: no bands")
	}
	if len(levels) == 0 {
		return nil, ErrNoLevels
	}
	for l := range levels {
		if levels[l].Bands != len(names) {
			return nil, fmt.Errorf("pyramid: level %d has %d bands, want %d", l, levels[l].Bands, len(names))
		}
		if len(levels[l].vals) != levels[l].W*levels[l].H*levels[l].Bands*3 {
			return nil, fmt.Errorf("pyramid: level %d plane size mismatch", l)
		}
	}
	return &MultibandPyramid{names: append([]string(nil), names...), flat: levels}, nil
}
