package pyramid

import (
	"errors"
	"fmt"

	"modelir/internal/raster"
)

// HaarLevel holds the three detail subbands produced by one 2-D Haar
// analysis step. The approximation is carried forward to the next level
// (or stored in Haar.Approx for the last level).
type HaarLevel struct {
	// LH, HL, HH are horizontal-, vertical- and diagonal-detail subbands.
	LH, HL, HH *raster.Grid
}

// Haar is a multi-level 2-D Haar wavelet decomposition. Dimensions must be
// divisible by 2^levels so the transform is exactly invertible (the archive
// pads scenes to this shape before decomposing).
type Haar struct {
	levels []HaarLevel
	// Approx is the coarsest approximation subband.
	Approx *raster.Grid
	w, h   int
}

// ErrNotDyadic is returned when dimensions don't support the requested
// number of exact Haar levels.
var ErrNotDyadic = errors.New("pyramid: dimensions not divisible by 2^levels")

// HaarDecompose runs `levels` analysis steps on g.
func HaarDecompose(g *raster.Grid, levels int) (*Haar, error) {
	if levels < 1 {
		return nil, ErrNoLevels
	}
	div := 1 << uint(levels)
	if g.Width()%div != 0 || g.Height()%div != 0 {
		return nil, fmt.Errorf("%w: %dx%d with %d levels", ErrNotDyadic, g.Width(), g.Height(), levels)
	}
	h := &Haar{w: g.Width(), h: g.Height(), levels: make([]HaarLevel, 0, levels)}
	approx := g.Clone()
	for l := 0; l < levels; l++ {
		a, lh, hl, hh := haarStep(approx)
		h.levels = append(h.levels, HaarLevel{LH: lh, HL: hl, HH: hh})
		approx = a
	}
	h.Approx = approx
	return h, nil
}

// haarStep performs one normalized 2-D Haar analysis step (averages with
// 1/2 weights so the approximation subband is the block mean, and details
// reconstruct exactly).
func haarStep(g *raster.Grid) (approx, lh, hl, hh *raster.Grid) {
	nw, nh := g.Width()/2, g.Height()/2
	approx = raster.MustGrid(nw, nh)
	lh = raster.MustGrid(nw, nh)
	hl = raster.MustGrid(nw, nh)
	hh = raster.MustGrid(nw, nh)
	for y := 0; y < nh; y++ {
		for x := 0; x < nw; x++ {
			a := g.At(2*x, 2*y)
			b := g.At(2*x+1, 2*y)
			c := g.At(2*x, 2*y+1)
			d := g.At(2*x+1, 2*y+1)
			approx.Set(x, y, (a+b+c+d)/4)
			lh.Set(x, y, (a-b+c-d)/4)
			hl.Set(x, y, (a+b-c-d)/4)
			hh.Set(x, y, (a-b-c+d)/4)
		}
	}
	return approx, lh, hl, hh
}

// NumLevels returns the number of decomposition levels.
func (h *Haar) NumLevels() int { return len(h.levels) }

// Level returns the detail subbands at level i (0 = finest details).
func (h *Haar) Level(i int) HaarLevel { return h.levels[i] }

// Reconstruct inverts the full decomposition, returning a grid equal to the
// original input (up to floating-point rounding).
func (h *Haar) Reconstruct() *raster.Grid {
	return h.ReconstructTo(0)
}

// ReconstructTo inverts synthesis down to the given level: level 0 yields
// the full-resolution image; level k>0 yields the approximation surface at
// that level (dimensions divided by 2^k). This is the progressive-decoding
// path: coarse previews stream first, details refine them.
func (h *Haar) ReconstructTo(level int) *raster.Grid {
	cur := h.Approx.Clone()
	for l := len(h.levels) - 1; l >= level; l-- {
		cur = haarInverse(cur, h.levels[l])
	}
	return cur
}

func haarInverse(approx *raster.Grid, d HaarLevel) *raster.Grid {
	nw, nh := approx.Width()*2, approx.Height()*2
	out := raster.MustGrid(nw, nh)
	for y := 0; y < approx.Height(); y++ {
		for x := 0; x < approx.Width(); x++ {
			av := approx.At(x, y)
			lh := d.LH.At(x, y)
			hl := d.HL.At(x, y)
			hh := d.HH.At(x, y)
			out.Set(2*x, 2*y, av+lh+hl+hh)
			out.Set(2*x+1, 2*y, av-lh+hl-hh)
			out.Set(2*x, 2*y+1, av+lh-hl-hh)
			out.Set(2*x+1, 2*y+1, av-lh-hl+hh)
		}
	}
	return out
}

// DetailEnergy returns the sum of squared detail coefficients at each
// level, finest first. Progressive decoders use it to decide whether a
// region is "flat enough" to stop refining: near-zero energy means the
// coarse approximation already equals the fine data.
func (h *Haar) DetailEnergy() []float64 {
	out := make([]float64, len(h.levels))
	for i, l := range h.levels {
		var e float64
		for _, g := range []*raster.Grid{l.LH, l.HL, l.HH} {
			for _, v := range g.Data() {
				e += v * v
			}
		}
		out[i] = e
	}
	return out
}

// PadToDyadic returns a copy of g padded (edge-replicated) so both
// dimensions are divisible by 2^levels. Returns the padded grid and the
// original dimensions.
func PadToDyadic(g *raster.Grid, levels int) (*raster.Grid, int, int) {
	div := 1 << uint(levels)
	nw := ((g.Width() + div - 1) / div) * div
	nh := ((g.Height() + div - 1) / div) * div
	if nw == g.Width() && nh == g.Height() {
		return g.Clone(), g.Width(), g.Height()
	}
	out := raster.MustGrid(nw, nh)
	for y := 0; y < nh; y++ {
		sy := y
		if sy >= g.Height() {
			sy = g.Height() - 1
		}
		for x := 0; x < nw; x++ {
			sx := x
			if sx >= g.Width() {
				sx = g.Width() - 1
			}
			out.Set(x, y, g.At(sx, sy))
		}
	}
	return out, g.Width(), g.Height()
}
