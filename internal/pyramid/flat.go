// Columnar pyramid storage. The per-band Grid pyramids (pyramid.go)
// keep mean, min and max in six-plus separate allocations per level,
// so one branch-and-bound cell bound pays a pointer chase per band per
// plane. FlatLevel rebuilds each level as ONE allocation holding every
// band's mean/min/max triples in cell-major order:
//
//	vals[((y*W+x)*Bands + b)*3 + plane]   plane: 0=mean 1=min 2=max
//
// so the whole envelope of a cell — all bands, both bounds — sits in
// one or two cache lines, read with a single base computation. Cells
// are row-major blocks of the level below: each level-l cell IS the
// zone map (min/max box) of the 2×2 block of level-(l-1) cells it
// covers, which is exactly what the descent's interval bound consumes
// to prune a whole tile block before touching its pixels.
//
// Values are copied verbatim from the Grid pyramids, so every bound
// and every pixel score computed through the flat view is bit-identical
// to the Grid path.
package pyramid

import "modelir/internal/raster"

// FlatLevel is one pyramid level across all bands in a single
// cell-major allocation. See the package comment in flat.go for the
// layout.
type FlatLevel struct {
	// W, H are the level's cell grid dimensions; Scale is the linear
	// downsampling factor relative to level 0.
	W, H, Scale int
	// Bands is the band count (the stride multiplier).
	Bands int
	// vals holds W*H*Bands*3 float64s, cell-major then band then
	// mean/min/max.
	vals []float64
}

// Envelope fills lo[i], hi[i] with the min/max envelope of model
// attribute i (bound to band bands[i]) at cell (x, y). Callers must
// pass in-bounds coordinates; this is the descent's hot bound path.
func (fl *FlatLevel) Envelope(x, y int, bands []int, lo, hi []float64) {
	base := (y*fl.W + x) * fl.Bands * 3
	v := fl.vals[base : base+fl.Bands*3 : base+fl.Bands*3]
	for i, b := range bands {
		lo[i] = v[b*3+1]
		hi[i] = v[b*3+2]
	}
}

// Means fills dst[i] with the mean value of band bands[i] at cell
// (x, y) — the pixel-evaluation read at level 0.
func (fl *FlatLevel) Means(x, y int, bands []int, dst []float64) {
	base := (y*fl.W + x) * fl.Bands * 3
	v := fl.vals[base : base+fl.Bands*3 : base+fl.Bands*3]
	for i, b := range bands {
		dst[i] = v[b*3]
	}
}

// At returns one plane value (0=mean, 1=min, 2=max) of band b at cell
// (x, y) — the single-value accessor tests and tools use.
func (fl *FlatLevel) At(x, y, b, plane int) float64 {
	return fl.vals[((y*fl.W+x)*fl.Bands+b)*3+plane]
}

// buildFlatLevels constructs the cell-major flat view of every level
// shared by all bands (the minimum level count across bands).
func buildFlatLevels(bands []*Pyramid) []FlatLevel {
	if len(bands) == 0 {
		return nil
	}
	nLevels := bands[0].NumLevels()
	for _, p := range bands[1:] {
		if p.NumLevels() < nLevels {
			nLevels = p.NumLevels()
		}
	}
	nb := len(bands)
	out := make([]FlatLevel, nLevels)
	for l := 0; l < nLevels; l++ {
		lvl := bands[0].Level(l)
		w, h := lvl.Mean.Width(), lvl.Mean.Height()
		fl := FlatLevel{W: w, H: h, Scale: lvl.Scale, Bands: nb,
			vals: make([]float64, w*h*nb*3)}
		for b, p := range bands {
			bl := p.Level(l)
			mean, min, max := bl.Mean, bl.Min, bl.Max
			fillFlatBand(&fl, b, mean, min, max)
		}
		out[l] = fl
	}
	return out
}

func fillFlatBand(fl *FlatLevel, b int, mean, min, max *raster.Grid) {
	stride := fl.Bands * 3
	for y := 0; y < fl.H; y++ {
		mr, nr, xr := mean.Row(y), min.Row(y), max.Row(y)
		rowBase := y * fl.W * stride
		for x := 0; x < fl.W; x++ {
			o := rowBase + x*stride + b*3
			fl.vals[o] = mr[x]
			fl.vals[o+1] = nr[x]
			fl.vals[o+2] = xr[x]
		}
	}
}

// Flat returns the columnar view of level l. The flat planes are built
// once at BuildMultiband time and shared read-only by every query.
func (mp *MultibandPyramid) Flat(l int) *FlatLevel { return &mp.flat[l] }
