package canon

import (
	"errors"
	"math"
	"testing"
)

func TestReaderRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUint(b, 0)
	b = AppendUint(b, math.MaxUint64)
	b = AppendFloat(b, math.Inf(-1))
	b = AppendFloat(b, -0.0)
	b = AppendString(b, "")
	b = AppendString(b, "hanta pulmonary syndrome")
	b = AppendFloats(b, nil)
	b = AppendFloats(b, []float64{1.5, -2.25, math.NaN()})

	r := NewReader(b)
	if v, err := r.Uint(); err != nil || v != 0 {
		t.Fatalf("Uint = %d, %v", v, err)
	}
	if v, err := r.Uint(); err != nil || v != math.MaxUint64 {
		t.Fatalf("Uint = %d, %v", v, err)
	}
	if v, err := r.Float(); err != nil || !math.IsInf(v, -1) {
		t.Fatalf("Float = %v, %v", v, err)
	}
	if v, err := r.Float(); err != nil || math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Fatalf("Float -0 = %v, %v", v, err)
	}
	if s, err := r.String(); err != nil || s != "" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if s, err := r.String(); err != nil || s != "hanta pulmonary syndrome" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if fs, err := r.Floats(); err != nil || len(fs) != 0 {
		t.Fatalf("Floats = %v, %v", fs, err)
	}
	fs, err := r.Floats()
	if err != nil || len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.25 || !math.IsNaN(fs[2]) {
		t.Fatalf("Floats = %v, %v", fs, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full decode", r.Remaining())
	}
}

func TestReaderExpect(t *testing.T) {
	r := NewReader([]byte("LMxx"))
	if err := r.Expect("LM"); err != nil {
		t.Fatalf("Expect(LM) = %v", err)
	}
	if err := r.Expect("FS"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Expect(FS) over %q = %v, want ErrCorrupt", "xx", err)
	}
}

// A length prefix claiming more elements than the remaining input could
// hold must be rejected before any allocation happens.
func TestReaderCountGuardsAllocation(t *testing.T) {
	b := AppendUint(nil, math.MaxUint64)
	if _, err := NewReader(b).Floats(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Floats with absurd count = %v, want ErrCorrupt", err)
	}
	if _, err := NewReader(b).String(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("String with absurd length = %v, want ErrCorrupt", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	full := AppendFloats(AppendString(nil, "abc"), []float64{1, 2})
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		if _, err := r.String(); err == nil {
			if _, err = r.Floats(); err == nil {
				t.Fatalf("decode of %d-byte prefix succeeded", n)
			}
		}
	}
	var zero Reader
	if _, err := zero.Byte(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero Reader Byte = %v, want ErrCorrupt", err)
	}
}
