// Package canon holds the shared primitives for canonical byte
// encodings used in cache fingerprinting (the AppendCanonical methods
// in internal/{linear,fsm,bayes}) and, since the cluster layer, as the
// model wire format between router and shard-server nodes. The cache
// key's collision-freedom depends on every encoder framing fields the
// same way, so the framing lives in exactly one place: lengths and
// integers are fixed-width big-endian, floats are IEEE-754 bit
// patterns, and variable-size values are length-prefixed so adjacent
// fields can never re-associate.
//
// Reader is the decoding counterpart: a bounds-checked cursor over a
// canonical byte stream. Every read validates against the remaining
// input before allocating, so a truncated or hostile frame fails with
// ErrCorrupt instead of panicking or ballooning memory — the property
// the cluster wire-codec fuzz tests pin.
package canon

import (
	"encoding/binary"
	"errors"
	"math"
)

// AppendUint appends v as 8 big-endian bytes.
func AppendUint(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendFloat appends v's IEEE-754 bit pattern as 8 big-endian bytes.
// Distinct bit patterns (including ±0 and NaN payloads) encode
// distinctly; callers that treat them as equal must normalize first.
func AppendFloat(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = AppendUint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloats appends vs count-prefixed, element by element.
func AppendFloats(b []byte, vs []float64) []byte {
	b = AppendUint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendFloat(b, v)
	}
	return b
}

// ErrCorrupt reports a canonical stream that cannot be decoded: it is
// truncated, a length prefix exceeds the remaining input, or a value
// violates the decoder's validity contract.
var ErrCorrupt = errors.New("canon: corrupt canonical encoding")

// Reader decodes a canonical byte stream produced by the Append
// functions. It never reads past the input and never allocates more
// than the remaining input could justify; all failures surface as
// errors wrapping ErrCorrupt.
type Reader struct {
	b []byte
}

// NewReader returns a reader over b. The reader aliases b; the caller
// must not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining reports how many bytes are left to decode.
func (r *Reader) Remaining() int { return len(r.b) }

// Byte consumes one byte.
func (r *Reader) Byte() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrCorrupt
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// Uint consumes an 8-byte big-endian unsigned integer.
func (r *Reader) Uint() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

// Float consumes an 8-byte IEEE-754 bit pattern.
func (r *Reader) Float() (float64, error) {
	v, err := r.Uint()
	return math.Float64frombits(v), err
}

// Count consumes a count prefix and validates it against the remaining
// input: a count of n is accepted only when n*per bytes could still
// follow, so a corrupt length can never drive an oversized allocation.
// per must be the minimum encoded size of one element (>= 1).
func (r *Reader) Count(per int) (int, error) {
	v, err := r.Uint()
	if err != nil {
		return 0, err
	}
	if per < 1 {
		per = 1
	}
	if v > uint64(len(r.b)/per) {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

// String consumes a length-prefixed string.
func (r *Reader) String() (string, error) {
	n, err := r.Count(1)
	if err != nil {
		return "", err
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// Floats consumes a count-prefixed float64 list.
func (r *Reader) Floats() ([]float64, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.Float(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Expect consumes len(tag) bytes and verifies they equal tag (the
// two-byte type markers the model encoders emit, e.g. "LM", "FS").
func (r *Reader) Expect(tag string) error {
	if len(r.b) < len(tag) || string(r.b[:len(tag)]) != tag {
		return ErrCorrupt
	}
	r.b = r.b[len(tag):]
	return nil
}
