// Package canon holds the shared primitives for canonical byte
// encodings used in cache fingerprinting (the AppendCanonical methods
// in internal/{linear,fsm,bayes}). The cache key's collision-freedom
// depends on every encoder framing fields the same way, so the framing
// lives in exactly one place: lengths and integers are fixed-width
// big-endian, floats are IEEE-754 bit patterns, and variable-size
// values are length-prefixed so adjacent fields can never
// re-associate.
package canon

import (
	"encoding/binary"
	"math"
)

// AppendUint appends v as 8 big-endian bytes.
func AppendUint(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// AppendFloat appends v's IEEE-754 bit pattern as 8 big-endian bytes.
// Distinct bit patterns (including ±0 and NaN payloads) encode
// distinctly; callers that treat them as equal must normalize first.
func AppendFloat(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends s length-prefixed.
func AppendString(b []byte, s string) []byte {
	b = AppendUint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloats appends vs count-prefixed, element by element.
func AppendFloats(b []byte, vs []float64) []byte {
	b = AppendUint(b, uint64(len(vs)))
	for _, v := range vs {
		b = AppendFloat(b, v)
	}
	return b
}
