package onion

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"modelir/internal/synth"
	"modelir/internal/topk"
)

func randomWeights(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("want error for empty set")
	}
	if _, err := Build([][]float64{{}}, Options{}); err == nil {
		t.Fatal("want error for zero-dim points")
	}
	if _, err := Build([][]float64{{1, 2}, {1}}, Options{}); err == nil {
		t.Fatal("want error for ragged points")
	}
	nan := [][]float64{{1, 0. / 1}, {1, 2}}
	nan[0][1] = nan[0][1] / 0 // NaN is rejected
	if _, err := Build(nan, Options{}); err == nil {
		t.Fatal("want error for non-finite coordinates")
	}
}

func TestTopKMatchesScan2D(t *testing.T) {
	pts, err := synth.GaussianTuples(3, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		w := randomWeights(rng, 2)
		for _, k := range []int{1, 5, 25} {
			got, _, err := ix.TopK(w, k)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := ScanTopK(pts, w, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d len %d vs %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("trial %d k=%d pos %d: onion %d scan %d",
						trial, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestTopKMatchesScan3D(t *testing.T) {
	pts, err := synth.GaussianTuples(7, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		w := randomWeights(rng, 3)
		for _, k := range []int{1, 10} {
			got, _, err := ix.TopK(w, k)
			if err != nil {
				t.Fatal(err)
			}
			want, _, _ := ScanTopK(pts, w, k)
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("trial %d k=%d pos %d: onion %d scan %d",
						trial, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestMinimizationViaNegation(t *testing.T) {
	pts, _ := synth.GaussianTuples(9, 2000, 3)
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 2, -1}
	neg := []float64{-1, -2, 1}
	got, _, err := ix.TopK(neg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Verify it's the true minimizer of w·x.
	best, bestV := -1, 0.0
	for i, p := range pts {
		v := w[0]*p[0] + w[1]*p[1] + w[2]*p[2]
		if best < 0 || v < bestV {
			best, bestV = i, v
		}
	}
	if got[0].ID != int64(best) {
		t.Fatalf("minimizer %d want %d", got[0].ID, best)
	}
}

func TestOnionTouchesFarFewerPoints(t *testing.T) {
	pts, _ := synth.GaussianTuples(11, 50000, 3)
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.5, 1.5, -0.7}
	_, st, err := ix.TopK(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, scanSt, _ := ScanTopK(pts, w, 1)
	if st.PointsTouched*20 > scanSt.PointsTouched {
		t.Fatalf("onion touched %d of %d points: speedup < 20x",
			st.PointsTouched, scanSt.PointsTouched)
	}
	// Top-10 touches more than top-1 but still prunes hard.
	_, st10, _ := ix.TopK(w, 10)
	if st10.PointsTouched < st.PointsTouched {
		t.Fatal("top-10 cannot touch fewer points than top-1")
	}
	if st10.PointsTouched*5 > scanSt.PointsTouched {
		t.Fatalf("top-10 touched %d of %d", st10.PointsTouched, scanSt.PointsTouched)
	}
}

func TestCoreBucketCorrectness(t *testing.T) {
	// Tiny layer cap forces most points into the core; results must stay
	// exact because the suffix-box bound falls back to scanning the core.
	pts, _ := synth.GaussianTuples(13, 3000, 3)
	ix, err := Build(pts, Options{MaxLayers: 2, Directions: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		w := randomWeights(rng, 3)
		got, _, err := ix.TopK(w, 7)
		if err != nil {
			t.Fatal(err)
		}
		want, _, _ := ScanTopK(pts, w, 7)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("core-bucket mismatch at %d", i)
			}
		}
	}
}

func TestLayersPartitionPoints(t *testing.T) {
	pts, _ := synth.GaussianTuples(15, 4000, 3)
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	total := 0
	for li := 0; li < ix.NumLayers(); li++ {
		total += ix.LayerSize(li)
	}
	if total != ix.NumPoints() {
		t.Fatalf("layers hold %d points, want %d", total, ix.NumPoints())
	}
	// Every original point id appears exactly once across the columnar
	// rows, and each row's values match the source point — the layout
	// change must lose or duplicate nothing.
	st := ix.Store()
	for r := 0; r < st.NumRows(); r++ {
		pi := int(st.ID(r))
		if seen[pi] {
			t.Fatalf("point %d stored twice", pi)
		}
		seen[pi] = true
		for d := 0; d < st.Dim(); d++ {
			if st.At(r, d) != pts[pi][d] {
				t.Fatalf("row %d (point %d) dim %d: stored %v, want %v",
					r, pi, d, st.At(r, d), pts[pi][d])
			}
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("store holds %d distinct points, want %d", len(seen), len(pts))
	}
}

func TestQueryValidation(t *testing.T) {
	pts, _ := synth.GaussianTuples(1, 100, 2)
	ix, _ := Build(pts, Options{})
	if _, _, err := ix.TopK([]float64{1}, 1); err == nil {
		t.Fatal("want dim error")
	}
	if _, _, err := ix.TopK([]float64{1, 2}, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, _, err := ScanTopK(nil, nil, 1); err == nil {
		t.Fatal("want empty scan error")
	}
	if _, _, err := ScanTopK(pts, []float64{1}, 1); err == nil {
		t.Fatal("want scan dim error")
	}
	if _, _, err := ScanTopK(pts, []float64{1, 2}, 0); err == nil {
		t.Fatal("want scan k error")
	}
}

func TestKLargerThanN(t *testing.T) {
	pts, _ := synth.GaussianTuples(2, 10, 2)
	ix, _ := Build(pts, Options{})
	got, _, err := ix.TopK([]float64{1, 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len=%d want all 10 points", len(got))
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {0, 0}, {2, 2}, {2, 2}}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.TopK([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := ScanTopK(pts, []float64{1, 1}, 3)
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("dup mismatch %+v vs %+v", got, want)
		}
	}
}

// Property: for random small point sets and random weights, Onion == scan.
func TestExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(300)
		d := 2 + rng.Intn(3)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randomWeights(rng, d)
		}
		ix, err := Build(pts, Options{MaxLayers: 1 + rng.Intn(20), Directions: 4 + rng.Intn(30)})
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(12)
		w := randomWeights(rng, d)
		got, _, err := ix.TopK(w, k)
		if err != nil {
			return false
		}
		want, _, _ := ScanTopK(pts, w, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSharedPartitionsEqualWhole(t *testing.T) {
	// The sharded dataflow: split the points into P contiguous
	// partitions, index each, scan them with a shared bound, merge.
	// The merged top-K must equal the single-index top-K for every
	// partition count and every query direction.
	for _, d := range []int{2, 3, 6} {
		pts, err := synth.GaussianTuples(19, 3000, d)
		if err != nil {
			t.Fatal(err)
		}
		whole, err := Build(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for _, parts := range []int{2, 5} {
			chunk := (len(pts) + parts - 1) / parts
			var ixs []*Index
			var offs []int
			for lo := 0; lo < len(pts); lo += chunk {
				hi := lo + chunk
				if hi > len(pts) {
					hi = len(pts)
				}
				ix, err := Build(pts[lo:hi], Options{})
				if err != nil {
					t.Fatal(err)
				}
				ixs = append(ixs, ix)
				offs = append(offs, lo)
			}
			for q := 0; q < 10; q++ {
				w := randomWeights(rng, d)
				const k = 12
				want, _, err := whole.TopK(w, k)
				if err != nil {
					t.Fatal(err)
				}
				sb := topk.NewBound()
				merged := topk.MustHeap(k)
				for pi, ix := range ixs {
					items, _, err := ix.TopKShared(w, k, sb)
					if err != nil {
						t.Fatal(err)
					}
					for i := range items {
						items[i].ID += int64(offs[pi])
					}
					topk.MergeItems(merged, items)
				}
				got := merged.Results()
				if len(got) != len(want) {
					t.Fatalf("d=%d parts=%d q=%d: %d vs %d items", d, parts, q, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
						t.Fatalf("d=%d parts=%d q=%d pos %d: %+v vs %+v",
							d, parts, q, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestTopKSharedBoundPrunesColdShard(t *testing.T) {
	// A floor raised above a shard's reachable scores must let its scan
	// stop before touching deep layers.
	pts, err := synth.GaussianTuples(29, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1, 1}
	_, cold, err := ix.TopKShared(w, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb := topk.NewBound()
	sb.Raise(1e9) // unreachably high cross-shard floor
	items, hot, err := ix.TopKShared(w, 10, sb)
	if err != nil {
		t.Fatal(err)
	}
	if hot.PointsTouched >= cold.PointsTouched {
		t.Fatalf("shared floor did not prune: %d vs %d points", hot.PointsTouched, cold.PointsTouched)
	}
	// Pruned-away items are below the floor by construction, so an
	// empty or truncated partial result is legitimate here.
	for _, it := range items {
		if it.Score >= 1e9 {
			t.Fatalf("impossible score %v", it.Score)
		}
	}
}

// A context cancelled mid-scan (here: from the per-layer progressive
// hook) aborts the scan at the next layer boundary with ctx.Err().
func TestScanCancelMidLayers(t *testing.T) {
	pts, err := synth.GaussianTuples(31, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumLayers() < 3 {
		t.Fatalf("fixture too shallow: %d layers", ix.NumLayers())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	layers := 0
	_, st, err := ix.Scan([]float64{1, 1, 1}, len(pts), ScanOpts{
		Ctx: ctx,
		OnLayer: func(layer int, sofar []topk.Item) error {
			layers++
			cancel()
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if layers != 1 || st.LayersScanned != 1 {
		t.Fatalf("scanned %d layers (%d hooks) after cancel", st.LayersScanned, layers)
	}
}

// A shared meter stops the scan once the point budget is spent; the
// partial heap is the exact top-K of the layers that were scanned.
func TestScanBudgetTruncates(t *testing.T) {
	pts, err := synth.GaussianTuples(32, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, -0.5, 2}
	full, fullSt, err := ix.Scan(w, 10, ScanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// A 1-unit budget admits exactly the first layer (the gate is
	// checked before a layer, the charge lands after it).
	meter := topk.NewMeter(1)
	part, partSt, err := ix.Scan(w, 10, ScanOpts{Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if !meter.Exhausted() {
		t.Fatal("meter not exhausted")
	}
	if partSt.PointsTouched != ix.LayerSize(0) {
		t.Fatalf("budgeted scan touched %d points, want first layer (%d)",
			partSt.PointsTouched, ix.LayerSize(0))
	}
	if partSt.PointsTouched >= fullSt.PointsTouched {
		t.Fatalf("budget did not reduce work: %d vs %d", partSt.PointsTouched, fullSt.PointsTouched)
	}
	// The meter only counts work actually performed; the unscanned
	// remainder is attributed to the budget, not to screening.
	if got := int(meter.Used()); got != partSt.PointsTouched {
		t.Fatalf("meter charged %d for %d points scored", got, partSt.PointsTouched)
	}
	if partSt.PointsTouched+partSt.PointsSkippedByBudget != ix.NumPoints() {
		t.Fatalf("touched %d + budget-skipped %d != %d points",
			partSt.PointsTouched, partSt.PointsSkippedByBudget, ix.NumPoints())
	}
	if fullSt.PointsSkippedByBudget != 0 {
		t.Fatalf("unbudgeted scan reported %d budget skips", fullSt.PointsSkippedByBudget)
	}
	if len(part) == 0 {
		t.Fatal("budgeted scan returned nothing")
	}
	// The outermost layer holds the max for any positive weighting of
	// hull-peeled Gaussian data, so the budgeted top-1 is still exact.
	if part[0] != full[0] {
		t.Fatalf("budgeted top-1 %+v vs %+v", part[0], full[0])
	}
}
