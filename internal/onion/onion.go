// Package onion implements the Onion index of reference [11] ("The Onion
// Technique: Indexing for Linear Optimization Queries", SIGMOD 2000), the
// model-specific index the paper credits with 13,000× (top-1) and 1,400×
// (top-10) speedups over sequential scan on 3-attribute Gaussian data
// (Section 3.2).
//
// The idea: points that maximize any linear function lie on the convex
// hull of the data set. Peeling hulls repeatedly yields concentric layers
// ("onion rings"); a linear top-K query scans layers outward-in and stops
// as soon as no deeper layer can beat the current K-th best.
//
// Substitution note (documented in DESIGN.md): exact convex-hull peeling
// in arbitrary dimension is replaced by two sound constructions —
//
//   - d == 2: exact convex layers via repeated monotone-chain hulls;
//   - d >= 3: direction-sampled extreme-point peeling (each layer is the
//     set of points extremal in one of D fixed directions among the
//     points remaining).
//
// Either way, every layer stores its bounding box and the index stores
// suffix boxes over "this layer and everything deeper". A query prunes on
// the suffix box's linear upper bound, so results are exact regardless of
// how well the layering approximates true convex layers — layering
// quality affects only how early the scan stops.
package onion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"modelir/internal/topk"
)

// Options tunes index construction.
type Options struct {
	// MaxLayers caps the number of peeled layers; points remaining after
	// the cap form a final "core" bucket. Default 48.
	MaxLayers int
	// Directions is the number of peel directions used when d >= 3
	// (ignored for exact 2-D peeling). Default 32.
	Directions int
	// Seed makes direction sampling deterministic. Default 1.
	Seed int64
}

func (o *Options) applyDefaults() {
	if o.MaxLayers == 0 {
		o.MaxLayers = 48
	}
	if o.Directions == 0 {
		o.Directions = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Index is an immutable Onion index over a fixed point set.
type Index struct {
	dim    int
	points [][]float64
	// layers[i] lists point indices in layer i (outermost first); the
	// final layer is the core bucket if MaxLayers was hit.
	layers [][]int
	// exact reports whether layers are true convex layers (d <= 3). When
	// true, every point in layers > i lies inside the convex hull of
	// layer i, so layer i's maximum bounds everything deeper — the
	// original Onion stopping rule. The core bucket (if present) is not
	// covered by this property and is guarded by the box bound instead.
	exact bool
	// coreIsBucket reports whether the last layer is an un-peeled core.
	coreIsBucket bool
	// suffixLo/suffixHi[i] bound all points in layers i..end, per dim.
	suffixLo [][]float64
	suffixHi [][]float64
	// suffixNorm[i] is the largest Euclidean norm among points in layers
	// i..end. For any weight vector w, Cauchy-Schwarz gives
	// w·x <= |w|₂·|x|₂ <= |w|₂·suffixNorm[i] — an L2 bound that beats
	// the box (L1-shaped) bound on isotropic high-dimensional clouds.
	suffixNorm []float64
}

// Build constructs the index. Points must share dimension >= 2 and are
// NOT copied (the caller must not mutate them afterwards).
func Build(points [][]float64, opt Options) (*Index, error) {
	opt.applyDefaults()
	if len(points) == 0 {
		return nil, errors.New("onion: empty point set")
	}
	d := len(points[0])
	if d < 1 {
		return nil, errors.New("onion: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("onion: point %d has dim %d, want %d", i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("onion: point %d has non-finite coordinate", i)
			}
		}
	}

	idx := &Index{dim: d, points: points}
	remaining := make([]int, len(points))
	for i := range remaining {
		remaining[i] = i
	}

	idx.exact = d <= 3
	var dirs [][]float64
	if d > 3 {
		dirs = peelDirections(d, opt.Directions, opt.Seed)
	}
	for layer := 0; layer < opt.MaxLayers && len(remaining) > 0; layer++ {
		var ring []int
		switch d {
		case 2:
			ring = hull2D(points, remaining)
		case 3:
			ring = hull3D(points, remaining)
		default:
			ring = extremePeel(points, remaining, dirs)
		}
		if len(ring) == 0 {
			break
		}
		idx.layers = append(idx.layers, ring)
		remaining = subtract(remaining, ring)
	}
	if len(remaining) > 0 {
		core := make([]int, len(remaining))
		copy(core, remaining)
		sort.Ints(core)
		idx.layers = append(idx.layers, core)
		idx.coreIsBucket = true
	}
	idx.buildSuffixBoxes()
	return idx, nil
}

// NumLayers returns the layer count (including the core bucket, if any).
func (ix *Index) NumLayers() int { return len(ix.layers) }

// NumPoints returns the indexed point count.
func (ix *Index) NumPoints() int { return len(ix.points) }

// LayerSize returns the number of points in layer i.
func (ix *Index) LayerSize(i int) int { return len(ix.layers[i]) }

// Stats reports the work one query did.
type Stats struct {
	LayersScanned int
	PointsTouched int
	// PointsSkippedByBudget counts indexed points left unscanned
	// because the scan's work budget ran out — distinct from points the
	// layer bounds screened out, which the caller derives as
	// total - touched - skipped.
	PointsSkippedByBudget int
}

// TopK returns the k points maximizing w·x, best first, with exact
// results and the work statistics. To minimize the model, negate w.
func (ix *Index) TopK(w []float64, k int) ([]topk.Item, Stats, error) {
	return ix.Scan(w, k, ScanOpts{})
}

// TopKShared is TopK for an index that covers one shard of a larger
// logical dataset: sb carries the progressive-screening floor shared
// with the scans of the sibling shards. Whenever the local heap fills,
// its threshold is published; layers whose upper bound falls strictly
// below the shared floor are skipped even if the local heap could still
// absorb them — those points cannot reach the merged global top-K. A
// nil bound degrades to the plain single-index scan.
func (ix *Index) TopKShared(w []float64, k int, sb *topk.Bound) ([]topk.Item, Stats, error) {
	return ix.Scan(w, k, ScanOpts{Bound: sb})
}

// ScanOpts tunes one index scan. The zero value reproduces TopK.
type ScanOpts struct {
	// Ctx cancels the scan cooperatively: it is checked once per layer,
	// and a cancelled scan returns ctx.Err(). Nil means no cancellation.
	Ctx context.Context
	// Bound is the cross-shard screening floor (see TopKShared).
	Bound *topk.Bound
	// Meter is a shared work budget charged one unit per point scored.
	// The scan checks it before each layer and charges after scanning,
	// so it overshoots by at most one layer; once exhausted the scan
	// stops and returns its partial (best-effort) heap with no error,
	// recording the unscanned remainder in Stats.PointsSkippedByBudget.
	// The caller reads Meter.Exhausted to learn the result was
	// truncated.
	Meter *topk.Meter
	// OnLayer, when non-nil, is invoked after each layer is scanned with
	// the layer index and the heap's current best-first contents — the
	// progressive-delivery hook. A non-nil error aborts the scan.
	OnLayer func(layer int, sofar []topk.Item) error
}

// Scan is the full-control scan behind TopK and TopKShared: exact
// results, plus cooperative cancellation, work budgeting, and per-layer
// progressive delivery via opts.
func (ix *Index) Scan(w []float64, k int, opt ScanOpts) ([]topk.Item, Stats, error) {
	var st Stats
	if len(w) != ix.dim {
		return nil, st, fmt.Errorf("onion: weight dim %d, want %d", len(w), ix.dim)
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, st, err
	}
	sb := opt.Bound
	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	prevMax := math.Inf(1)
	for li, layer := range ix.layers {
		if done != nil {
			select {
			case <-done:
				return nil, st, opt.Ctx.Err()
			default:
			}
		}
		// Bounds are only worth computing once a break is possible:
		// the local heap is full, or a sibling shard has published a
		// real floor (Get is nil-safe and -Inf when unshared).
		gf := sb.Get()
		if h.Full() || !math.IsInf(gf, -1) {
			// Box bound: sound for any layering.
			bound := ix.suffixBound(li, w)
			// Convex-layer bound: with true convex layers, everything
			// deeper than layer li-1 (the core bucket included) lies
			// inside the hull of layer li-1, so that layer's maximum
			// bounds all of it. A tiny slack absorbs epsilon-interior
			// classifications in hull peeling.
			if ix.exact && li > 0 {
				cb := prevMax + 1e-9*(1+math.Abs(prevMax))
				if cb < bound {
					bound = cb
				}
			}
			if h.Full() {
				floor, _ := h.Threshold()
				// Strictly below the floor only: a deeper point tied
				// with the floor can still win the smaller-ID
				// tie-break, and which layers hold the tied points
				// depends on shard boundaries — a non-strict break
				// would make results shard-dependent on ties.
				if floor > bound {
					break // nothing deeper can beat the current top K
				}
			}
			// Strictly below the cross-shard floor: nothing deeper can
			// enter the *merged* top-K, even though the local heap may
			// still have room (ties keep scanning — they can win the
			// smaller-ID tie-break at merge).
			if bound < gf {
				break
			}
		}
		if opt.Meter.Exhausted() {
			// Budget ran out: the remaining layers are unpaid work, not
			// screening wins. Return the best-effort partial heap.
			for j := li; j < len(ix.layers); j++ {
				st.PointsSkippedByBudget += len(ix.layers[j])
			}
			break
		}
		st.LayersScanned++
		layerMax := math.Inf(-1)
		for _, pi := range layer {
			st.PointsTouched++
			s := dot(w, ix.points[pi])
			if s > layerMax {
				layerMax = s
			}
			h.OfferScore(int64(pi), s)
		}
		opt.Meter.Charge(len(layer))
		prevMax = layerMax
		if t, ok := h.Threshold(); ok {
			sb.Raise(t)
		}
		if opt.OnLayer != nil {
			if err := opt.OnLayer(li, h.Results()); err != nil {
				return nil, st, err
			}
		}
	}
	return h.Results(), st, nil
}

// ScanTopK is the sequential-scan baseline the paper measures against:
// evaluate the model on every point.
func ScanTopK(points [][]float64, w []float64, k int) ([]topk.Item, Stats, error) {
	var st Stats
	if len(points) == 0 {
		return nil, st, errors.New("onion: empty point set")
	}
	if len(w) != len(points[0]) {
		return nil, st, fmt.Errorf("onion: weight dim %d, want %d", len(w), len(points[0]))
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, st, err
	}
	for i, p := range points {
		st.PointsTouched++
		h.OfferScore(int64(i), dot(w, p))
	}
	st.LayersScanned = 1
	return h.Results(), st, nil
}

// suffixBound returns an upper bound on w·x over layers li..end: the
// minimum of the box bound and the Cauchy-Schwarz norm bound (both
// sound; whichever is tighter wins).
func (ix *Index) suffixBound(li int, w []float64) float64 {
	lo, hi := ix.suffixLo[li], ix.suffixHi[li]
	box := 0.0
	wNorm := 0.0
	for i, wi := range w {
		if wi >= 0 {
			box += wi * hi[i]
		} else {
			box += wi * lo[i]
		}
		wNorm += wi * wi
	}
	norm := math.Sqrt(wNorm) * ix.suffixNorm[li]
	if norm < box {
		return norm
	}
	return box
}

func (ix *Index) buildSuffixBoxes() {
	n := len(ix.layers)
	ix.suffixLo = make([][]float64, n)
	ix.suffixHi = make([][]float64, n)
	ix.suffixNorm = make([]float64, n)
	curLo := make([]float64, ix.dim)
	curHi := make([]float64, ix.dim)
	for i := range curLo {
		curLo[i] = math.Inf(1)
		curHi[i] = math.Inf(-1)
	}
	curNorm := 0.0
	for li := n - 1; li >= 0; li-- {
		for _, pi := range ix.layers[li] {
			sq := 0.0
			for dimI, v := range ix.points[pi] {
				if v < curLo[dimI] {
					curLo[dimI] = v
				}
				if v > curHi[dimI] {
					curHi[dimI] = v
				}
				sq += v * v
			}
			if norm := math.Sqrt(sq); norm > curNorm {
				curNorm = norm
			}
		}
		ix.suffixLo[li] = append([]float64(nil), curLo...)
		ix.suffixHi[li] = append([]float64(nil), curHi...)
		ix.suffixNorm[li] = curNorm
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// hull2D returns the indices (drawn from `remaining`) on the 2-D convex
// hull of the remaining points, via Andrew's monotone chain. Collinear
// boundary points are included so peeling always terminates.
func hull2D(points [][]float64, remaining []int) []int {
	if len(remaining) <= 2 {
		out := make([]int, len(remaining))
		copy(out, remaining)
		return out
	}
	srt := make([]int, len(remaining))
	copy(srt, remaining)
	sort.Slice(srt, func(i, j int) bool {
		a, b := points[srt[i]], points[srt[j]]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	cross := func(o, a, b []float64) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var lower []int
	for _, pi := range srt {
		for len(lower) >= 2 &&
			cross(points[lower[len(lower)-2]], points[lower[len(lower)-1]], points[pi]) < 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, pi)
	}
	var upper []int
	for i := len(srt) - 1; i >= 0; i-- {
		pi := srt[i]
		for len(upper) >= 2 &&
			cross(points[upper[len(upper)-2]], points[upper[len(upper)-1]], points[pi]) < 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, pi)
	}
	seen := make(map[int]bool, len(lower)+len(upper))
	var out []int
	for _, pi := range append(lower, upper...) {
		if !seen[pi] {
			seen[pi] = true
			out = append(out, pi)
		}
	}
	sort.Ints(out)
	return out
}

// extremePeel returns the remaining points extremal in at least one of the
// fixed directions.
func extremePeel(points [][]float64, remaining []int, dirs [][]float64) []int {
	best := make([]int, len(dirs))
	bestV := make([]float64, len(dirs))
	for di := range dirs {
		best[di] = -1
		bestV[di] = math.Inf(-1)
	}
	for _, pi := range remaining {
		p := points[pi]
		for di, dir := range dirs {
			v := dot(dir, p)
			if v > bestV[di] || (v == bestV[di] && best[di] >= 0 && pi < best[di]) {
				bestV[di] = v
				best[di] = pi
			}
		}
	}
	seen := make(map[int]bool, len(dirs))
	var out []int
	for _, pi := range best {
		if pi >= 0 && !seen[pi] {
			seen[pi] = true
			out = append(out, pi)
		}
	}
	sort.Ints(out)
	return out
}

// peelDirections returns n unit directions in dimension d: the 2d signed
// axis directions first (so axis-aligned queries resolve in one layer),
// then deterministic random unit vectors.
func peelDirections(d, n int, seed int64) [][]float64 {
	dirs := make([][]float64, 0, n+2*d)
	for i := 0; i < d; i++ {
		plus := make([]float64, d)
		minus := make([]float64, d)
		plus[i] = 1
		minus[i] = -1
		dirs = append(dirs, plus, minus)
	}
	rng := rand.New(rand.NewSource(seed))
	for len(dirs) < n+2*d {
		v := make([]float64, d)
		norm := 0.0
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for i := range v {
			v[i] /= norm
		}
		dirs = append(dirs, v)
	}
	return dirs
}

// subtract removes members of ring (sorted) from remaining, preserving
// order.
func subtract(remaining, ring []int) []int {
	inRing := make(map[int]bool, len(ring))
	for _, pi := range ring {
		inRing[pi] = true
	}
	out := remaining[:0]
	for _, pi := range remaining {
		if !inRing[pi] {
			out = append(out, pi)
		}
	}
	return out
}
