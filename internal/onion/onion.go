// Package onion implements the Onion index of reference [11] ("The Onion
// Technique: Indexing for Linear Optimization Queries", SIGMOD 2000), the
// model-specific index the paper credits with 13,000× (top-1) and 1,400×
// (top-10) speedups over sequential scan on 3-attribute Gaussian data
// (Section 3.2).
//
// The idea: points that maximize any linear function lie on the convex
// hull of the data set. Peeling hulls repeatedly yields concentric layers
// ("onion rings"); a linear top-K query scans layers outward-in and stops
// as soon as no deeper layer can beat the current K-th best.
//
// Substitution note (documented in DESIGN.md): exact convex-hull peeling
// in arbitrary dimension is replaced by two sound constructions —
//
//   - d == 2: exact convex layers via repeated monotone-chain hulls;
//   - d >= 3: direction-sampled extreme-point peeling (each layer is the
//     set of points extremal in one of D fixed directions among the
//     points remaining).
//
// Either way, every layer stores its bounding box and the index stores
// suffix boxes over "this layer and everything deeper". A query prunes on
// the suffix box's linear upper bound, so results are exact regardless of
// how well the layering approximates true convex layers — layering
// quality affects only how early the scan stops.
//
// Storage is columnar (DESIGN.md §7): the peeled layers are laid out
// layer-by-layer in a colstore.Store — one flat column per attribute,
// fixed-size blocks with min/max/norm zone maps, rows norm-ordered
// within each layer — so the scan-bound regime (weak layering, most
// points in the core bucket) prunes block by block and streams the
// survivors through a cache-friendly columnar kernel instead of chasing
// one pointer per row.
package onion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"modelir/internal/colstore"
	"modelir/internal/topk"
)

// Options tunes index construction.
type Options struct {
	// MaxLayers caps the number of peeled layers; points remaining after
	// the cap form a final "core" bucket. Default 48.
	MaxLayers int
	// Directions is the number of peel directions used when d >= 3
	// (ignored for exact 2-D peeling). Default 32.
	Directions int
	// Seed makes direction sampling deterministic. Default 1.
	Seed int64
	// BlockRows overrides the columnar zone-map block size (0 = the
	// colstore default). Exposed for tests; queries are block-size
	// invariant.
	BlockRows int
}

func (o *Options) applyDefaults() {
	if o.MaxLayers == 0 {
		o.MaxLayers = 48
	}
	if o.Directions == 0 {
		o.Directions = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Index is an immutable Onion index over a fixed point set.
type Index struct {
	dim int
	// store holds the peeled layers as columnar segments (layer i =
	// segment i, outermost first; the final segment is the core bucket
	// if MaxLayers was hit). Row ids are the original point indices.
	store *colstore.Store
	// exact reports whether layers are true convex layers (d <= 3). When
	// true, every point in layers > i lies inside the convex hull of
	// layer i, so layer i's maximum bounds everything deeper — the
	// original Onion stopping rule. The core bucket (if present) is not
	// covered by this property and is guarded by the box bound instead.
	exact bool
	// coreIsBucket reports whether the last layer is an un-peeled core.
	coreIsBucket bool
	// suffixLo/suffixHi bound all points in layers i..end per dimension,
	// flattened with stride dim (suffixLo[i*dim+d]).
	suffixLo []float64
	suffixHi []float64
	// suffixNorm[i] is the largest Euclidean norm among points in layers
	// i..end. For any weight vector w, Cauchy-Schwarz gives
	// w·x <= |w|₂·|x|₂ <= |w|₂·suffixNorm[i] — an L2 bound that beats
	// the box (L1-shaped) bound on isotropic high-dimensional clouds.
	suffixNorm []float64
}

// Build constructs the index. Points must share dimension >= 1; they
// are copied into the index's columnar layout and not retained.
func Build(points [][]float64, opt Options) (*Index, error) {
	opt.applyDefaults()
	if len(points) == 0 {
		return nil, errors.New("onion: empty point set")
	}
	d := len(points[0])
	if d < 1 {
		return nil, errors.New("onion: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("onion: point %d has dim %d, want %d", i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("onion: point %d has non-finite coordinate", i)
			}
		}
	}

	idx := &Index{dim: d, exact: d <= 3}
	remaining := make([]int, len(points))
	for i := range remaining {
		remaining[i] = i
	}

	var dirs [][]float64
	if d > 3 {
		dirs = peelDirections(d, opt.Directions, opt.Seed)
	}
	// One scratch set serves every peel iteration: the marks array
	// backs ring-membership tests (subtract) and hull dedup, the int
	// buffers back the 2-D chains and the per-direction argmax table —
	// first-query index builds sit on the serving path, so Build
	// allocates once, not once per layer.
	scratch := newBuildScratch(len(points), len(dirs))
	var layers [][]int
	for layer := 0; layer < opt.MaxLayers && len(remaining) > 0; layer++ {
		var ring []int
		switch d {
		case 2:
			ring = hull2D(points, remaining, scratch)
		case 3:
			ring = hull3D(points, remaining)
		default:
			ring = extremePeel(points, remaining, dirs, scratch)
		}
		if len(ring) == 0 {
			break
		}
		layers = append(layers, ring)
		remaining = subtract(remaining, ring, scratch)
	}
	if len(remaining) > 0 {
		core := make([]int, len(remaining))
		copy(core, remaining)
		sort.Ints(core)
		layers = append(layers, core)
		idx.coreIsBucket = true
	}
	store, err := colstore.BuildSegmented(points, layers, colstore.Options{
		BlockRows: opt.BlockRows,
		NormOrder: true,
	})
	if err != nil {
		return nil, fmt.Errorf("onion: %w", err)
	}
	idx.store = store
	idx.buildSuffixBoxes()
	return idx, nil
}

// NumLayers returns the layer count (including the core bucket, if any).
func (ix *Index) NumLayers() int { return ix.store.NumSegments() }

// NumPoints returns the indexed point count.
func (ix *Index) NumPoints() int { return ix.store.NumRows() }

// LayerSize returns the number of points in layer i.
func (ix *Index) LayerSize(i int) int { return ix.store.SegmentLen(i) }

// Store exposes the index's columnar storage (read-only) for
// benchmarks and layout-level tests.
func (ix *Index) Store() *colstore.Store { return ix.store }

// Stats reports the work one query did.
type Stats struct {
	LayersScanned int
	PointsTouched int
	// PointsZonePruned counts points inside scanned layers that were
	// skipped wholesale because their block's zone-map bound fell
	// strictly below the screening floor (columnar pruning; points in
	// layers the suffix bound cut off entirely are not counted here).
	PointsZonePruned int
	// BlocksZonePruned counts the zone-map-skipped blocks themselves.
	BlocksZonePruned int
	// PointsSkippedByBudget counts indexed points left unscanned
	// because the scan's work budget ran out — distinct from points the
	// layer or zone bounds screened out, which the caller derives as
	// total - touched - skipped.
	PointsSkippedByBudget int
}

// TopK returns the k points maximizing w·x, best first, with exact
// results and the work statistics. To minimize the model, negate w.
func (ix *Index) TopK(w []float64, k int) ([]topk.Item, Stats, error) {
	return ix.Scan(w, k, ScanOpts{})
}

// TopKShared is TopK for an index that covers one shard of a larger
// logical dataset: sb carries the progressive-screening floor shared
// with the scans of the sibling shards. Whenever the local heap fills,
// its threshold is published; layers and blocks whose upper bound falls
// strictly below the shared floor are skipped even if the local heap
// could still absorb them — those points cannot reach the merged global
// top-K. A nil bound degrades to the plain single-index scan.
func (ix *Index) TopKShared(w []float64, k int, sb *topk.Bound) ([]topk.Item, Stats, error) {
	return ix.Scan(w, k, ScanOpts{Bound: sb})
}

// ScanOpts tunes one index scan. The zero value reproduces TopK.
type ScanOpts struct {
	// Ctx cancels the scan cooperatively: it is checked once per layer,
	// and a cancelled scan returns ctx.Err(). Nil means no cancellation.
	Ctx context.Context
	// Bound is the cross-shard screening floor (see TopKShared).
	Bound *topk.Bound
	// Meter is a shared work budget charged one unit per point scored.
	// The scan gates on it block by block and charges after each scored
	// block, so it overshoots by at most one block; once exhausted the
	// scan stops and returns its partial (best-effort) heap with no
	// error, recording the unscanned remainder in
	// Stats.PointsSkippedByBudget. The caller reads Meter.Exhausted to
	// learn the result was truncated.
	Meter *topk.Meter
	// OnLayer, when non-nil, is invoked after each layer is scanned with
	// the layer index and the heap's current best-first contents — the
	// progressive-delivery hook. A non-nil error aborts the scan.
	OnLayer func(layer int, sofar []topk.Item) error
}

// Scan is the full-control scan behind TopK and TopKShared: exact
// results, plus cooperative cancellation, work budgeting, and per-layer
// progressive delivery via opts.
func (ix *Index) Scan(w []float64, k int, opt ScanOpts) ([]topk.Item, Stats, error) {
	var st Stats
	if len(w) != ix.dim {
		return nil, st, fmt.Errorf("onion: weight dim %d, want %d", len(w), ix.dim)
	}
	h, err := topk.GetHeap(k)
	if err != nil {
		return nil, st, err
	}
	defer topk.PutHeap(h)
	sb := opt.Bound
	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	wNorm := colstore.WeightNorm(w)
	var cst colstore.Stats
	prevMax := math.Inf(1)
	nLayers := ix.NumLayers()
	for li := 0; li < nLayers; li++ {
		if done != nil {
			select {
			case <-done:
				return nil, st, opt.Ctx.Err()
			default:
			}
		}
		// Bounds are only worth computing once a break is possible:
		// the local heap is full, or a sibling shard has published a
		// real floor (Get is nil-safe and -Inf when unshared).
		gf := sb.Get()
		if h.Full() || !math.IsInf(gf, -1) {
			// Box/norm suffix bound: sound for any layering.
			bound := ix.suffixBound(li, w, wNorm)
			// Convex-layer bound: with true convex layers, everything
			// deeper than layer li-1 (the core bucket included) lies
			// inside the hull of layer li-1, so that layer's maximum
			// bounds all of it. A tiny slack absorbs epsilon-interior
			// classifications in hull peeling. (With zone-map-skipped
			// blocks prevMax is the max of scored rows and skipped
			// blocks' zone bounds — still an upper bound on the layer's
			// true maximum, so the rule stays sound.)
			if ix.exact && li > 0 {
				cb := prevMax + 1e-9*(1+math.Abs(prevMax))
				if cb < bound {
					bound = cb
				}
			}
			if h.Full() {
				floor, _ := h.Threshold()
				// Strictly below the floor only: a deeper point tied
				// with the floor can still win the smaller-ID
				// tie-break, and which layers hold the tied points
				// depends on shard boundaries — a non-strict break
				// would make results shard-dependent on ties.
				if floor > bound {
					break // nothing deeper can beat the current top K
				}
			}
			// Strictly below the cross-shard floor: nothing deeper can
			// enter the *merged* top-K, even though the local heap may
			// still have room (ties keep scanning — they can win the
			// smaller-ID tie-break at merge).
			if bound < gf {
				break
			}
		}
		if opt.Meter.Exhausted() {
			// Budget ran out: the remaining layers are unpaid work, not
			// screening wins. Return the best-effort partial heap.
			for j := li; j < nLayers; j++ {
				st.PointsSkippedByBudget += ix.LayerSize(j)
			}
			break
		}
		st.LayersScanned++
		layerMax, exhausted := ix.store.ScanSegment(li, w, wNorm, h, sb, opt.Meter, &cst)
		prevMax = layerMax
		if exhausted {
			for j := li + 1; j < nLayers; j++ {
				st.PointsSkippedByBudget += ix.LayerSize(j)
			}
			break
		}
		if opt.OnLayer != nil {
			if err := opt.OnLayer(li, h.Results()); err != nil {
				return nil, st, err
			}
		}
	}
	st.PointsTouched = cst.RowsScored
	st.PointsZonePruned = cst.RowsZonePruned
	st.BlocksZonePruned = cst.BlocksZonePruned
	st.PointsSkippedByBudget += cst.RowsSkippedByBudget
	return h.Results(), st, nil
}

// ScanTopK is the sequential-scan baseline the paper measures against:
// evaluate the model on every point of the row-major archive. It is
// deliberately kept on the row layout ([][]float64) — benchtab's
// memory baseline compares it against the columnar kernel.
func ScanTopK(points [][]float64, w []float64, k int) ([]topk.Item, Stats, error) {
	var st Stats
	if len(points) == 0 {
		return nil, st, errors.New("onion: empty point set")
	}
	if len(w) != len(points[0]) {
		return nil, st, fmt.Errorf("onion: weight dim %d, want %d", len(w), len(points[0]))
	}
	h, err := topk.GetHeap(k)
	if err != nil {
		return nil, st, err
	}
	defer topk.PutHeap(h)
	for i, p := range points {
		st.PointsTouched++
		h.OfferScore(int64(i), dot(w, p))
	}
	st.LayersScanned = 1
	return h.Results(), st, nil
}

// suffixBound returns an upper bound on w·x over layers li..end: the
// minimum of the box bound and the Cauchy-Schwarz norm bound (both
// sound; whichever is tighter wins).
func (ix *Index) suffixBound(li int, w []float64, wNorm float64) float64 {
	lo, hi := ix.suffixLo[li*ix.dim:], ix.suffixHi[li*ix.dim:]
	box := 0.0
	for i, wi := range w {
		if wi >= 0 {
			box += wi * hi[i]
		} else {
			box += wi * lo[i]
		}
	}
	norm := wNorm * ix.suffixNorm[li]
	if norm < box {
		return norm
	}
	return box
}

func (ix *Index) buildSuffixBoxes() {
	n := ix.store.NumSegments()
	d := ix.dim
	ix.suffixLo = make([]float64, n*d)
	ix.suffixHi = make([]float64, n*d)
	ix.suffixNorm = make([]float64, n)
	curLo := make([]float64, d)
	curHi := make([]float64, d)
	for i := range curLo {
		curLo[i] = math.Inf(1)
		curHi[i] = math.Inf(-1)
	}
	curNorm := 0.0
	row := ix.store.NumRows()
	for li := n - 1; li >= 0; li-- {
		for r := 0; r < ix.store.SegmentLen(li); r++ {
			row--
			sq := 0.0
			for dimI := 0; dimI < d; dimI++ {
				v := ix.store.At(row, dimI)
				if v < curLo[dimI] {
					curLo[dimI] = v
				}
				if v > curHi[dimI] {
					curHi[dimI] = v
				}
				sq += v * v
			}
			if norm := math.Sqrt(sq); norm > curNorm {
				curNorm = norm
			}
		}
		copy(ix.suffixLo[li*d:(li+1)*d], curLo)
		copy(ix.suffixHi[li*d:(li+1)*d], curHi)
		ix.suffixNorm[li] = curNorm
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// buildScratch is the shared allocation Build's peel loop draws from:
// one marks array over the full point set plus reusable int buffers.
type buildScratch struct {
	// marks flags point indices; users must unmark what they marked.
	marks []bool
	// idx, chainA, chainB back hull2D's sorted order and its two
	// monotone chains.
	idx, chainA, chainB []int
	// best/bestV back extremePeel's per-direction argmax table.
	best  []int
	bestV []float64
}

func newBuildScratch(n, dirs int) *buildScratch {
	return &buildScratch{
		marks: make([]bool, n),
		best:  make([]int, dirs),
		bestV: make([]float64, dirs),
	}
}

// hull2D returns the indices (drawn from `remaining`) on the 2-D convex
// hull of the remaining points, via Andrew's monotone chain. Collinear
// boundary points are included so peeling always terminates.
func hull2D(points [][]float64, remaining []int, sc *buildScratch) []int {
	if len(remaining) <= 2 {
		out := make([]int, len(remaining))
		copy(out, remaining)
		return out
	}
	srt := append(sc.idx[:0], remaining...)
	sc.idx = srt
	sort.Slice(srt, func(i, j int) bool {
		a, b := points[srt[i]], points[srt[j]]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	cross := func(o, a, b []float64) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	lower := sc.chainA[:0]
	for _, pi := range srt {
		for len(lower) >= 2 &&
			cross(points[lower[len(lower)-2]], points[lower[len(lower)-1]], points[pi]) < 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, pi)
	}
	sc.chainA = lower
	upper := sc.chainB[:0]
	for i := len(srt) - 1; i >= 0; i-- {
		pi := srt[i]
		for len(upper) >= 2 &&
			cross(points[upper[len(upper)-2]], points[upper[len(upper)-1]], points[pi]) < 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, pi)
	}
	sc.chainB = upper
	var out []int
	for _, chain := range [2][]int{lower, upper} {
		for _, pi := range chain {
			if !sc.marks[pi] {
				sc.marks[pi] = true
				out = append(out, pi)
			}
		}
	}
	for _, pi := range out {
		sc.marks[pi] = false
	}
	sort.Ints(out)
	return out
}

// extremePeel returns the remaining points extremal in at least one of the
// fixed directions.
func extremePeel(points [][]float64, remaining []int, dirs [][]float64, sc *buildScratch) []int {
	best, bestV := sc.best[:len(dirs)], sc.bestV[:len(dirs)]
	for di := range dirs {
		best[di] = -1
		bestV[di] = math.Inf(-1)
	}
	for _, pi := range remaining {
		p := points[pi]
		for di, dir := range dirs {
			v := dot(dir, p)
			if v > bestV[di] || (v == bestV[di] && best[di] >= 0 && pi < best[di]) {
				bestV[di] = v
				best[di] = pi
			}
		}
	}
	var out []int
	for _, pi := range best {
		if pi >= 0 && !sc.marks[pi] {
			sc.marks[pi] = true
			out = append(out, pi)
		}
	}
	for _, pi := range out {
		sc.marks[pi] = false
	}
	sort.Ints(out)
	return out
}

// peelDirections returns n unit directions in dimension d: the 2d signed
// axis directions first (so axis-aligned queries resolve in one layer),
// then deterministic random unit vectors. All vectors are sliced from
// one backing allocation.
func peelDirections(d, n int, seed int64) [][]float64 {
	total := n + 2*d
	backing := make([]float64, total*d)
	dirs := make([][]float64, 0, total)
	next := func() []float64 {
		v := backing[len(dirs)*d : (len(dirs)+1)*d : (len(dirs)+1)*d]
		return v
	}
	for i := 0; i < d; i++ {
		plus := next()
		plus[i] = 1
		dirs = append(dirs, plus)
		minus := next()
		minus[i] = -1
		dirs = append(dirs, minus)
	}
	rng := rand.New(rand.NewSource(seed))
	for len(dirs) < total {
		v := next()
		norm := 0.0
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for i := range v {
			v[i] /= norm
		}
		dirs = append(dirs, v)
	}
	return dirs
}

// subtract removes members of ring from remaining, preserving order.
func subtract(remaining, ring []int, sc *buildScratch) []int {
	for _, pi := range ring {
		sc.marks[pi] = true
	}
	out := remaining[:0]
	for _, pi := range remaining {
		if !sc.marks[pi] {
			out = append(out, pi)
		}
	}
	for _, pi := range ring {
		sc.marks[pi] = false
	}
	return out
}
