// Plane export/import for the snapshot subsystem: an Index is its
// columnar store plus three suffix-bound planes and two flags, so a
// restored index needs no hull peeling — the layer ordering is already
// baked into the store's segments.

package onion

import (
	"fmt"

	"modelir/internal/colstore"
)

// Planes is the Index state beyond its colstore.Store: the suffix
// bounds and the two layering flags. Slices alias the index — treat as
// read-only.
type Planes struct {
	Dim          int
	Exact        bool
	CoreIsBucket bool
	SuffixLo     []float64
	SuffixHi     []float64
	SuffixNorm   []float64
}

// Planes exports the index's non-store state for serialization.
func (ix *Index) Planes() Planes {
	return Planes{
		Dim:          ix.dim,
		Exact:        ix.exact,
		CoreIsBucket: ix.coreIsBucket,
		SuffixLo:     ix.suffixLo,
		SuffixHi:     ix.suffixHi,
		SuffixNorm:   ix.suffixNorm,
	}
}

// FromParts reconstructs an Index around a restored store and its
// suffix planes, validating the cross-array invariants a scan indexes
// by (one suffix box per store segment, stride dim).
func FromParts(p Planes, store *colstore.Store) (*Index, error) {
	if store == nil {
		return nil, fmt.Errorf("onion: parts: nil store")
	}
	if p.Dim != store.Dim() {
		return nil, fmt.Errorf("onion: parts: dim %d, store dim %d", p.Dim, store.Dim())
	}
	n := store.NumSegments()
	if len(p.SuffixNorm) != n || len(p.SuffixLo) != n*p.Dim || len(p.SuffixHi) != n*p.Dim {
		return nil, fmt.Errorf("onion: parts: suffix planes do not match %d layers × dim %d", n, p.Dim)
	}
	return &Index{
		dim:          p.Dim,
		store:        store,
		exact:        p.Exact,
		coreIsBucket: p.CoreIsBucket,
		suffixLo:     p.SuffixLo,
		suffixHi:     p.SuffixHi,
		suffixNorm:   p.SuffixNorm,
	}, nil
}
