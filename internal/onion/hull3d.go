package onion

import "sort"

// Exact 3-D convex hull via the classical incremental algorithm with
// conflict lists and horizon walking. Used by Build to peel true convex
// layers in three dimensions — the configuration the paper's Onion
// speedups (3-attribute Gaussian data) were measured on. Returns the
// indices (drawn from subset) of the hull's vertices, sorted.
//
// Degenerate inputs (all points collinear/coplanar within eps) fall back
// to returning the whole subset as one layer, which keeps peeling sound:
// the "layer" then trivially contains the hull of the remaining set.

const hullEps = 1e-9

type hullFace struct {
	v    [3]int // vertex point-indices, counter-clockwise seen from outside
	pts  []int  // conflict list: unassigned points that see this face
	dead bool
}

// orient3d returns (b-a)×(c-a)·(d-a): positive when d is on the normal
// side of triangle (a,b,c).
func orient3d(a, b, c, d []float64) float64 {
	abx, aby, abz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	acx, acy, acz := c[0]-a[0], c[1]-a[1], c[2]-a[2]
	adx, ady, adz := d[0]-a[0], d[1]-a[1], d[2]-a[2]
	return adx*(aby*acz-abz*acy) + ady*(abz*acx-abx*acz) + adz*(abx*acy-aby*acx)
}

func hull3D(points [][]float64, subset []int) []int {
	if len(subset) <= 4 {
		out := make([]int, len(subset))
		copy(out, subset)
		sort.Ints(out)
		return out
	}
	tet, ok := initialTetrahedron(points, subset)
	if !ok {
		// Degenerate (collinear/coplanar) set: whole subset is one layer.
		out := make([]int, len(subset))
		copy(out, subset)
		sort.Ints(out)
		return out
	}

	// Build the 4 faces of the tetrahedron, each oriented so the opposite
	// vertex is below (not visible).
	faces := make([]*hullFace, 0, 128)
	edges := make(map[[2]int]*hullFace, 256) // directed edge -> face
	addFace := func(a, b, c int) *hullFace {
		f := &hullFace{v: [3]int{a, b, c}}
		faces = append(faces, f)
		edges[[2]int{a, b}] = f
		edges[[2]int{b, c}] = f
		edges[[2]int{c, a}] = f
		return f
	}
	combos := [4][4]int{
		{tet[0], tet[1], tet[2], tet[3]},
		{tet[0], tet[3], tet[1], tet[2]},
		{tet[0], tet[2], tet[3], tet[1]},
		{tet[1], tet[3], tet[2], tet[0]},
	}
	for _, cb := range combos {
		a, b, c, opp := cb[0], cb[1], cb[2], cb[3]
		if orient3d(points[a], points[b], points[c], points[opp]) > 0 {
			a, b = b, a
		}
		addFace(a, b, c)
	}

	inTet := map[int]bool{tet[0]: true, tet[1]: true, tet[2]: true, tet[3]: true}
	// Assign every other point to the conflict list of one visible face.
	for _, pi := range subset {
		if inTet[pi] {
			continue
		}
		for _, f := range faces {
			if orient3d(points[f.v[0]], points[f.v[1]], points[f.v[2]], points[pi]) > hullEps {
				f.pts = append(f.pts, pi)
				break
			}
		}
		// Points seeing no face are inside the tetrahedron: dropped.
	}

	// Process conflict points until none remain.
	for cursor := 0; cursor < len(faces); cursor++ {
		f := faces[cursor]
		if f.dead || len(f.pts) == 0 {
			continue
		}
		// Take the farthest conflict point of this face (better numerics
		// than arbitrary order).
		bestI, bestV := 0, 0.0
		for i, pi := range f.pts {
			v := orient3d(points[f.v[0]], points[f.v[1]], points[f.v[2]], points[pi])
			if v > bestV {
				bestI, bestV = i, v
			}
		}
		p := f.pts[bestI]
		f.pts[bestI] = f.pts[len(f.pts)-1]
		f.pts = f.pts[:len(f.pts)-1]

		// BFS the region of faces visible from p.
		visible := []*hullFace{f}
		f.dead = true
		var orphans []int
		orphans = append(orphans, f.pts...)
		f.pts = nil
		var horizon [][2]int
		for qi := 0; qi < len(visible); qi++ {
			vf := visible[qi]
			for e := 0; e < 3; e++ {
				a, b := vf.v[e], vf.v[(e+1)%3]
				twin := edges[[2]int{b, a}]
				if twin == nil || twin.dead {
					continue
				}
				if orient3d(points[twin.v[0]], points[twin.v[1]], points[twin.v[2]], points[p]) > hullEps {
					twin.dead = true
					orphans = append(orphans, twin.pts...)
					twin.pts = nil
					visible = append(visible, twin)
				} else {
					horizon = append(horizon, [2]int{a, b})
				}
			}
		}
		// Create the cone of new faces from the horizon to p.
		newFaces := make([]*hullFace, 0, len(horizon))
		for _, e := range horizon {
			nf := addFace(e[0], e[1], p)
			newFaces = append(newFaces, nf)
		}
		// Reassign orphaned conflict points.
		for _, pi := range orphans {
			if pi == p {
				continue
			}
			for _, nf := range newFaces {
				if orient3d(points[nf.v[0]], points[nf.v[1]], points[nf.v[2]], points[pi]) > hullEps {
					nf.pts = append(nf.pts, pi)
					break
				}
			}
		}
		// Revisit from the earliest new face (cursor continues forward;
		// new faces were appended, so they will be processed).
	}

	// Collect vertices of alive faces.
	seen := make(map[int]bool)
	var out []int
	for _, f := range faces {
		if f.dead {
			continue
		}
		for _, v := range f.v {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}

// initialTetrahedron finds four points in general position.
func initialTetrahedron(points [][]float64, subset []int) ([4]int, bool) {
	var tet [4]int
	p0 := subset[0]
	// Farthest from p0.
	best, bestD := -1, 0.0
	for _, pi := range subset[1:] {
		d := dist2(points[p0], points[pi])
		if d > bestD {
			best, bestD = pi, d
		}
	}
	if best < 0 || bestD < hullEps {
		return tet, false
	}
	p1 := best
	// Farthest from line p0-p1.
	best, bestD = -1, 0.0
	for _, pi := range subset {
		if pi == p0 || pi == p1 {
			continue
		}
		d := distToLine2(points[p0], points[p1], points[pi])
		if d > bestD {
			best, bestD = pi, d
		}
	}
	if best < 0 || bestD < hullEps {
		return tet, false
	}
	p2 := best
	// Farthest from plane p0-p1-p2.
	best, bestD = -1, 0.0
	for _, pi := range subset {
		if pi == p0 || pi == p1 || pi == p2 {
			continue
		}
		d := orient3d(points[p0], points[p1], points[p2], points[pi])
		if d < 0 {
			d = -d
		}
		if d > bestD {
			best, bestD = pi, d
		}
	}
	if best < 0 || bestD < hullEps {
		return tet, false
	}
	tet = [4]int{p0, p1, p2, best}
	return tet, true
}

func dist2(a, b []float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return dx*dx + dy*dy + dz*dz
}

// distToLine2 returns the squared cross-product magnitude |(b-a)×(p-a)|²,
// proportional to the squared distance from p to line ab.
func distToLine2(a, b, p []float64) float64 {
	ux, uy, uz := b[0]-a[0], b[1]-a[1], b[2]-a[2]
	vx, vy, vz := p[0]-a[0], p[1]-a[1], p[2]-a[2]
	cx := uy*vz - uz*vy
	cy := uz*vx - ux*vz
	cz := ux*vy - uy*vx
	return cx*cx + cy*cy + cz*cz
}
