//go:build race

package progressive

// raceEnabled reports the race detector is on: sync.Pool deliberately
// drops a fraction of Puts under the detector to shake out
// interleavings, so zero-allocation assertions are skipped.
const raceEnabled = true
