package progressive

import (
	"context"
	"errors"
	"math"
	"testing"

	"modelir/internal/linear"
	"modelir/internal/pyramid"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

func hpsSetup(t *testing.T, seed int64, w, h int) (*linear.ProgressiveModel, *pyramid.MultibandPyramid) {
	t.Helper()
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: seed, W: w, H: h})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := pyramid.BuildMultiband(sc.Bands, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := linear.HPSRisk()
	pm, err := linear.Decompose(m,
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return pm, mp
}

func TestBind(t *testing.T) {
	pm, mp := hpsSetup(t, 1, 32, 32)
	b, err := Bind(pm.Full(), mp)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 4 {
		t.Fatalf("binding %v", b)
	}
	bad, _ := linear.New([]string{"nonexistent"}, []float64{1}, 0)
	if _, err := Bind(bad, mp); err == nil {
		t.Fatal("want missing band error")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	for _, seed := range []int64{2, 7, 19} {
		pm, mp := hpsSetup(t, seed, 96, 96)
		for _, k := range []int{1, 10, 50} {
			sp, items, err := Compare(pm, mp, k)
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			if len(items) != k {
				t.Fatalf("got %d items want %d", len(items), k)
			}
			if sp.FlatWork <= 0 {
				t.Fatal("flat work not measured")
			}
		}
	}
}

func TestResultsMatchBruteForce(t *testing.T) {
	pm, mp := hpsSetup(t, 3, 64, 64)
	m := pm.Full()
	// Brute-force reference over raw pixels.
	base := mp.Band(0).Level(0)
	type scored struct {
		id int64
		s  float64
	}
	var best scored
	best.s = math.Inf(-1)
	x := make([]float64, 4)
	bind, _ := Bind(m, mp)
	for y := 0; y < base.Mean.Height(); y++ {
		for xx := 0; xx < base.Mean.Width(); xx++ {
			for i, b := range bind.Bands {
				x[i] = mp.Band(b).Level(0).Mean.At(xx, y)
			}
			s := m.EvalUnchecked(x)
			if s > best.s {
				best = scored{id: int64(y*base.Mean.Width() + xx), s: s}
			}
		}
	}
	res, err := Combined(pm, mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[0].ID != best.id {
		t.Fatalf("combined top-1 %d want %d", res.Items[0].ID, best.id)
	}
	if math.Abs(res.Items[0].Score-best.s) > 1e-12 {
		t.Fatalf("score %v want %v", res.Items[0].Score, best.s)
	}
}

func TestSpeedupStructure(t *testing.T) {
	pm, mp := hpsSetup(t, 5, 128, 128)
	sp, _, err := Compare(pm, mp, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Pm() <= 1 {
		t.Fatalf("progressive model speedup %v <= 1", sp.Pm())
	}
	if sp.Pd() <= 1 {
		t.Fatalf("progressive data speedup %v <= 1", sp.Pd())
	}
	if sp.PmPd() <= sp.Pm() && sp.PmPd() <= sp.Pd() {
		t.Fatalf("combined %v not above max(pm=%v, pd=%v)", sp.PmPd(), sp.Pm(), sp.Pd())
	}
}

func TestProgDataPrunesCells(t *testing.T) {
	pm, mp := hpsSetup(t, 8, 128, 128)
	flat, err := Flat(pm.Full(), mp, 5)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ProgData(pm.Full(), mp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Stats.PixelsVisited*2 > flat.Stats.PixelsVisited {
		t.Fatalf("prog-data visited %d of %d pixels: no pruning",
			prog.Stats.PixelsVisited, flat.Stats.PixelsVisited)
	}
}

func TestValidation(t *testing.T) {
	pm, mp := hpsSetup(t, 9, 32, 32)
	if _, err := Flat(pm.Full(), mp, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := ProgModel(pm, mp, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := ProgData(pm.Full(), mp, 0); err == nil {
		t.Fatal("want k error")
	}
}

func TestRiskSurface(t *testing.T) {
	pm, mp := hpsSetup(t, 11, 48, 48)
	surf, err := RiskSurface(pm.Full(), mp)
	if err != nil {
		t.Fatal(err)
	}
	if surf.Width() != 48 || surf.Height() != 48 {
		t.Fatalf("surface dims %dx%d", surf.Width(), surf.Height())
	}
	// Spot check against direct evaluation.
	bind, _ := Bind(pm.Full(), mp)
	x := make([]float64, 4)
	for i, b := range bind.Bands {
		x[i] = mp.Band(b).Level(0).Mean.At(7, 13)
	}
	want := pm.Full().EvalUnchecked(x)
	if math.Abs(surf.At(7, 13)-want) > 1e-12 {
		t.Fatalf("surface value %v want %v", surf.At(7, 13), want)
	}
	bad, _ := linear.New([]string{"zzz"}, []float64{1}, 0)
	if _, err := RiskSurface(bad, mp); err == nil {
		t.Fatal("want bind error")
	}
}

// The flat surface's top-K must match Flat retrieval — ties included.
func TestFlatConsistentWithSurface(t *testing.T) {
	pm, mp := hpsSetup(t, 13, 64, 48)
	res, err := Flat(pm.Full(), mp, 20)
	if err != nil {
		t.Fatal(err)
	}
	surf, err := RiskSurface(pm.Full(), mp)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Items {
		x, y := int(it.ID)%64, int(it.ID)/64
		if math.Abs(surf.At(x, y)-it.Score) > 1e-12 {
			t.Fatalf("item %d score %v surface %v", it.ID, it.Score, surf.At(x, y))
		}
	}
}

func TestCombinedShardPartitionsEqualWhole(t *testing.T) {
	pm, mp := hpsSetup(t, 91, 96, 80)
	const k = 15
	want, err := Combined(pm, mp, k)
	if err != nil {
		t.Fatal(err)
	}
	roots := Roots(mp)
	if len(roots) < 2 {
		t.Fatalf("scene too small to shard: %d roots", len(roots))
	}
	for _, parts := range []int{1, 2, 3, len(roots)} {
		chunk := (len(roots) + parts - 1) / parts
		sb := topk.NewBound()
		merged := topk.MustHeap(k)
		for lo := 0; lo < len(roots); lo += chunk {
			hi := lo + chunk
			if hi > len(roots) {
				hi = len(roots)
			}
			res, err := CombinedShard(pm, mp, k, roots[lo:hi], sb)
			if err != nil {
				t.Fatal(err)
			}
			topk.MergeItems(merged, res.Items)
		}
		got := merged.Results()
		if len(got) != len(want.Items) {
			t.Fatalf("parts=%d: %d vs %d items", parts, len(got), len(want.Items))
		}
		for i := range want.Items {
			if got[i].ID != want.Items[i].ID || got[i].Score != want.Items[i].Score {
				t.Fatalf("parts=%d pos %d: %+v vs %+v", parts, i, got[i], want.Items[i])
			}
		}
	}
}

func TestRootsCoverCoarsestLevel(t *testing.T) {
	_, mp := hpsSetup(t, 92, 64, 64)
	roots := Roots(mp)
	top := mp.NumLevels() - 1
	coarse := mp.Band(0).Level(top).Mean
	if len(roots) != coarse.Width()*coarse.Height() {
		t.Fatalf("%d roots for %dx%d coarsest level",
			len(roots), coarse.Width(), coarse.Height())
	}
	seen := make(map[Cell]bool, len(roots))
	for _, c := range roots {
		if c.Level != top {
			t.Fatalf("root %+v not at top level %d", c, top)
		}
		if seen[c] {
			t.Fatalf("duplicate root %+v", c)
		}
		seen[c] = true
	}
}

// A context cancelled mid-descent (here: from the first OnLevel event)
// aborts the branch-and-bound loop with ctx.Err().
func TestDescendCancelMidLevels(t *testing.T) {
	pm, mp := hpsSetup(t, 9, 64, 64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	_, err := CombinedShardOpts(pm, mp, 5, Roots(mp), DescendOpts{
		Ctx: ctx,
		OnLevel: func(level int, sofar []topk.Item) error {
			events++
			cancel()
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if events != 1 {
		t.Fatalf("%d level events after cancel", events)
	}
}

// OnLevel streams the earliest result, the heap fill, and each drained
// pyramid level, with levels never coarsening.
func TestDescendOnLevelMonotone(t *testing.T) {
	pm, mp := hpsSetup(t, 9, 64, 64)
	want, err := Combined(pm, mp, 5)
	if err != nil {
		t.Fatal(err)
	}
	var levels []int
	res, err := CombinedShardOpts(pm, mp, 5, Roots(mp), DescendOpts{
		OnLevel: func(level int, sofar []topk.Item) error {
			levels = append(levels, level)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 2 {
		t.Fatalf("only %d level events", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] > levels[i-1] {
			t.Fatalf("levels coarsened: %v", levels)
		}
	}
	if len(res.Items) != len(want.Items) {
		t.Fatalf("hooked descent changed results: %d vs %d", len(res.Items), len(want.Items))
	}
	for i := range want.Items {
		if res.Items[i] != want.Items[i] {
			t.Fatalf("hooked descent diverged at %d", i)
		}
	}
}

// A meter budget truncates the descent without error.
func TestDescendBudgetTruncates(t *testing.T) {
	pm, mp := hpsSetup(t, 9, 64, 64)
	full, err := Combined(pm, mp, 5)
	if err != nil {
		t.Fatal(err)
	}
	meter := topk.NewMeter(pm.Full().NumTerms() * 8)
	part, err := CombinedShardOpts(pm, mp, 5, Roots(mp), DescendOpts{Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if !meter.Exhausted() {
		t.Fatal("meter not exhausted")
	}
	if part.Stats.Work() >= full.Stats.Work() {
		t.Fatalf("budget did not reduce work: %d vs %d", part.Stats.Work(), full.Stats.Work())
	}
}
