package progressive

import (
	"context"
	"errors"
	"testing"

	"modelir/internal/topk"
)

// The columnar-descent pins: the flat-pyramid branch-and-bound must
// behave exactly like its Grid-based predecessor under budgets that
// truncate it at every pyramid-level boundary, under cancellation
// fired at every level boundary, and — steady state — without
// allocating.

// boundaryK is large enough relative to the 16×16 boundary scene that
// every pyramid level drains (and so emits a boundary event) before
// the floor prunes the frontier.
const boundaryK = 64

// levelBoundaryBudgets runs one unbudgeted descent and records the
// meter reading at every OnLevel event — the exact work totals at
// which a screening level completed.
func levelBoundaryBudgets(t *testing.T) (budgets []int, full Result) {
	t.Helper()
	pm, mp := hpsSetup(t, 21, 16, 16)
	meter := topk.NewMeter(1 << 40) // effectively unlimited, but readable
	res, err := CombinedShardOpts(pm, mp, boundaryK, Roots(mp), DescendOpts{
		Meter: meter,
		OnLevel: func(level int, sofar []topk.Item) error {
			budgets = append(budgets, int(meter.Used()))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) < 3 {
		t.Fatalf("only %d level boundaries observed", len(budgets))
	}
	return budgets, res
}

// TestDescendBudgetEveryLevelBoundary mirrors onion's
// TestScanBudgetTruncates at each pyramid-level boundary: with the
// budget set exactly to the work recorded at a boundary, the descent
// must stop within one frontier step of it (the gate runs before each
// pop, and one pop charges at most the full-model pixel cost or four
// child bounds), never error, and report work consistent with the
// meter. A budget covering the whole descent must reproduce the
// unbudgeted result exactly.
func TestDescendBudgetEveryLevelBoundary(t *testing.T) {
	budgets, full := levelBoundaryBudgets(t)
	pm, mp := hpsSetup(t, 21, 16, 16)
	nTerms := pm.Full().NumTerms()
	// One frontier pop charges at most max(4 child bounds, one full
	// pixel) = 8*nTerms term evaluations.
	maxStep := 8 * nTerms
	for _, b := range budgets {
		meter := topk.NewMeter(b)
		part, err := CombinedShardOpts(pm, mp, boundaryK, Roots(mp), DescendOpts{Meter: meter})
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		if got := part.Stats.Work(); got > b+maxStep {
			t.Fatalf("budget %d: descent spent %d (> budget + one step %d)", b, got, b+maxStep)
		}
		if int(meter.Used()) != part.Stats.Work() {
			t.Fatalf("budget %d: meter %d != stats work %d", b, meter.Used(), part.Stats.Work())
		}
		// Every item a truncated descent returns must carry its true
		// model score — truncation may drop winners, never corrupt
		// scores.
		bind, err := Bind(pm.Full(), mp)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, nTerms)
		for _, it := range part.Items {
			x, y := int(it.ID)%16, int(it.ID)/16
			mp.Flat(0).Means(x, y, bind.Bands, xs)
			if want := pm.Full().EvalUnchecked(xs); it.Score != want {
				t.Fatalf("budget %d: item %d score %v, true %v", b, it.ID, it.Score, want)
			}
		}
	}
	// Budget == total work: the meter is never exceeded, so the result
	// must equal the unbudgeted run bit for bit.
	total := full.Stats.Work()
	meter := topk.NewMeter(total)
	res, err := CombinedShardOpts(pm, mp, boundaryK, Roots(mp), DescendOpts{Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	if meter.Exhausted() {
		t.Fatal("exact-budget run reported exhaustion")
	}
	if len(res.Items) != len(full.Items) {
		t.Fatalf("exact budget changed result size: %d vs %d", len(res.Items), len(full.Items))
	}
	for i := range full.Items {
		if res.Items[i] != full.Items[i] {
			t.Fatalf("exact budget diverged at %d: %+v vs %+v", i, res.Items[i], full.Items[i])
		}
	}
}

// TestDescendCancelEveryLevelBoundary fires cancellation at each
// successive level boundary (the N-th OnLevel event) and requires the
// descent to return ctx.Err() promptly — a cancelled descent never
// yields a normal result.
func TestDescendCancelEveryLevelBoundary(t *testing.T) {
	budgets, _ := levelBoundaryBudgets(t)
	pm, mp := hpsSetup(t, 21, 16, 16)
	for at := 1; at <= len(budgets); at++ {
		ctx, cancel := context.WithCancel(context.Background())
		events := 0
		_, err := CombinedShardOpts(pm, mp, boundaryK, Roots(mp), DescendOpts{
			Ctx: ctx,
			OnLevel: func(level int, sofar []topk.Item) error {
				events++
				if events == at {
					cancel()
				}
				return nil
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at boundary %d: got %v, want context.Canceled", at, err)
		}
		if events > at {
			t.Fatalf("cancel at boundary %d: %d further level events fired", at, events-at)
		}
	}
}

// TestCombinedShardAppendMatchesOpts pins the zero-alloc entry point
// against the allocating one, and — without the race detector — that a
// warmed-up append-mode descent performs zero allocations.
func TestCombinedShardAppendMatchesOpts(t *testing.T) {
	pm, mp := hpsSetup(t, 22, 64, 64)
	want, err := CombinedShardOpts(pm, mp, 7, Roots(mp), DescendOpts{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]topk.Item, 0, 7)
	buf, st, err := CombinedShardAppend(pm, mp, 7, Roots(mp), DescendOpts{}, buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != len(want.Items) {
		t.Fatalf("append returned %d items, want %d", len(buf), len(want.Items))
	}
	for i := range want.Items {
		if buf[i] != want.Items[i] {
			t.Fatalf("append diverged at %d: %+v vs %+v", i, buf[i], want.Items[i])
		}
	}
	if st != want.Stats {
		t.Fatalf("append stats %+v, want %+v", st, want.Stats)
	}
}

// TestDescendSteadyStateZeroAllocs is the pyramid-family analogue of
// colstore's zero-allocation pin: a warmed-up append-mode descent with
// pooled heap and scratch must not allocate.
func TestDescendSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector; allocation counts are only meaningful without it")
	}
	pm, mp := hpsSetup(t, 23, 64, 64)
	roots := Roots(mp)
	buf := make([]topk.Item, 0, 10)
	scan := func() {
		var err error
		buf, _, err = CombinedShardAppend(pm, mp, 10, roots, DescendOpts{}, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	scan() // warm the pools
	if allocs := testing.AllocsPerRun(10, scan); allocs != 0 {
		t.Fatalf("steady-state descent allocates %.1f allocs/op, want 0", allocs)
	}
	if len(buf) != 10 {
		t.Fatalf("descent kept %d items", len(buf))
	}
}
