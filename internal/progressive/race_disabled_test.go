//go:build !race

package progressive

const raceEnabled = false
