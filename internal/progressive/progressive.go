// Package progressive implements the paper's central mechanism
// (Section 3.1): progressive model execution over progressively
// represented data. It retrieves the exact top-K locations of a linear
// risk model over a multiband scene four ways —
//
//	Flat          — full model on every full-resolution pixel (the
//	                baseline whose cost is the paper's O(nN));
//	ProgModel     — progressive model only: a cheap sub-model screens
//	                every pixel, the full model runs on survivors
//	                (complexity reduction ratio pm);
//	ProgData      — progressive data only: branch-and-bound descent of
//	                the mean/min/max pyramid with full-model interval
//	                bounds (ratio pd);
//	Combined      — both: pyramid descent with sub-model bounds at
//	                coarse levels and progressive refinement at pixels,
//	                realizing the paper's O(nN/(pm·pd)).
//
// All four return identical result sets; they differ only in Work (the
// number of term evaluations, the paper's unit of model complexity n).
package progressive

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"modelir/internal/linear"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
	"modelir/internal/topk"
)

// Binding maps a model's attributes onto scene bands by index: band[i]
// supplies the value of model attribute i.
type Binding struct {
	Bands []int
}

// Bind resolves a model's attribute names against a pyramid's band names.
func Bind(m *linear.Model, mp *pyramid.MultibandPyramid) (Binding, error) {
	out := Binding{Bands: make([]int, len(m.Attrs))}
	if err := bindAttrs(m.Attrs, mp, out.Bands); err != nil {
		return Binding{}, err
	}
	return out, nil
}

// bindAttrs resolves attribute names into dst without allocating
// (duplicate band names resolve to the last occurrence, matching the
// map-based resolution this replaced).
func bindAttrs(attrs []string, mp *pyramid.MultibandPyramid, dst []int) error {
	nb := mp.NumBands()
	for i, a := range attrs {
		found := -1
		for b := 0; b < nb; b++ {
			if mp.BandName(b) == a {
				found = b
			}
		}
		if found < 0 {
			return fmt.Errorf("progressive: no band %q for model attribute %d", a, i)
		}
		dst[i] = found
	}
	return nil
}

// Stats measures the work of one retrieval in term evaluations: each
// multiply-add against one attribute counts 1, whether it touched a pixel
// or a coarse cell envelope.
type Stats struct {
	// PixelTermEvals counts term evaluations on full-resolution pixels.
	PixelTermEvals int
	// CellTermEvals counts term evaluations on coarse pyramid cells
	// (interval bounds cost 2 evaluations per term: lo and hi).
	CellTermEvals int
	// PixelsVisited counts distinct full-resolution pixels examined.
	PixelsVisited int
	// CellsVisited counts coarse cells examined.
	CellsVisited int
}

// Work returns total term evaluations (the paper's n×N numerator).
func (s Stats) Work() int { return s.PixelTermEvals + s.CellTermEvals }

// Result is a retrieval outcome: items rank locations best-first with
// ID = y*W + x.
type Result struct {
	Items []topk.Item
	Stats Stats
}

// Flat evaluates the full model at every pixel.
func Flat(m *linear.Model, mp *pyramid.MultibandPyramid, k int) (Result, error) {
	var res Result
	bind, err := Bind(m, mp)
	if err != nil {
		return res, err
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return res, err
	}
	base := mp.Band(0).Level(0).Mean
	w, hgt := base.Width(), base.Height()
	nTerms := m.NumTerms()
	x := make([]float64, nTerms)
	for y := 0; y < hgt; y++ {
		for xx := 0; xx < w; xx++ {
			for i, b := range bind.Bands {
				x[i] = mp.Band(b).Level(0).Mean.At(xx, y)
			}
			res.Stats.PixelTermEvals += nTerms
			res.Stats.PixelsVisited++
			h.OfferScore(int64(y*w+xx), m.EvalUnchecked(x))
		}
	}
	res.Items = h.Results()
	return res, nil
}

// ProgModel screens every pixel with the progressive model's coarsest
// level, then runs the remaining levels only on candidates whose
// optimistic bound can still reach the top K. Exact.
func ProgModel(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int) (Result, error) {
	var res Result
	m := pm.Full()
	bind, err := Bind(m, mp)
	if err != nil {
		return res, err
	}
	if k < 1 {
		return res, errors.New("progressive: k must be >= 1")
	}
	base := mp.Band(0).Level(0).Mean
	w, hgt := base.Width(), base.Height()
	n := w * hgt

	// Pass 1: coarse sub-model everywhere.
	coarse := make([]float64, n)
	x := make([]float64, m.NumTerms())
	c0 := pm.CostAt(0)
	for y := 0; y < hgt; y++ {
		for xx := 0; xx < w; xx++ {
			for i, b := range bind.Bands {
				x[i] = mp.Band(b).Level(0).Mean.At(xx, y)
			}
			coarse[y*w+xx] = pm.EvalLevelUnchecked(0, x)
			res.Stats.PixelTermEvals += c0
			res.Stats.PixelsVisited++
		}
	}
	// The K-th largest pessimistic value (coarse − resid) is a sound
	// floor; only pixels whose optimistic value (coarse + resid) reaches
	// it need refinement.
	r0 := pm.Resid(0)
	floorHeap := topk.MustHeap(k)
	for id, c := range coarse {
		floorHeap.OfferScore(int64(id), c-r0)
	}
	floorItems := floorHeap.Results()
	floor := floorItems[len(floorItems)-1].Score

	h := topk.MustHeap(k)
	fullCost := m.NumTerms()
	for id, c := range coarse {
		if c+r0 < floor {
			continue
		}
		y, xx := id/w, id%w
		for i, b := range bind.Bands {
			x[i] = mp.Band(b).Level(0).Mean.At(xx, y)
		}
		// Charge only the terms the coarse level did not evaluate.
		res.Stats.PixelTermEvals += fullCost - c0
		h.OfferScore(int64(id), m.EvalUnchecked(x))
	}
	res.Items = h.Results()
	return res, nil
}

// cellEntry is a branch-and-bound frontier node.
type cellEntry struct {
	level, x, y int
	upper       float64
}

// ProgData runs best-first branch-and-bound on the pyramid: coarse cells
// are bounded with the full model's interval arithmetic over their
// min/max envelopes; cells that cannot reach the current K-th best are
// pruned without visiting their pixels. Exact.
func ProgData(m *linear.Model, mp *pyramid.MultibandPyramid, k int) (Result, error) {
	return descend(m, nil, mp, k, Roots(mp), DescendOpts{})
}

// Combined is ProgData with a progressive model refinement at the pixel
// level: pixels are first scored by the coarse sub-model and only
// promising ones pay for the remaining terms. Exact.
func Combined(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int) (Result, error) {
	return descend(pm.Full(), pm, mp, k, Roots(mp), DescendOpts{})
}

// Cell identifies one pyramid cell by level and cell coordinates.
type Cell struct {
	Level, X, Y int
}

// Roots lists the coarsest-level cells of a pyramid in row-major order —
// the starting frontier of a full descent, and the unit a sharded scene
// scan partitions among workers.
func Roots(mp *pyramid.MultibandPyramid) []Cell {
	top := mp.NumLevels() - 1
	// Read the coarsest geometry off the flat view, not the Grid bands,
	// so a pyramid restored planes-only from a snapshot never
	// materializes grids just to enumerate roots.
	coarse := mp.Flat(top)
	out := make([]Cell, 0, coarse.W*coarse.H)
	for cy := 0; cy < coarse.H; cy++ {
		for cx := 0; cx < coarse.W; cx++ {
			out = append(out, Cell{Level: top, X: cx, Y: cy})
		}
	}
	return out
}

// CombinedShard runs Combined's branch-and-bound over only the given
// root cells — one shard of the scene — publishing and consulting the
// shared cross-shard floor sb (nil = unshared). A shard's partial
// result may be truncated when sb rises above its territory's scores,
// but everything pruned is strictly below the floor and the floor
// never exceeds the global K-th best, so merging shard results by the
// usual (score, ID) order still reproduces the whole-scene top-K
// exactly. Item IDs stay global (y*W + x of the base level).
func CombinedShard(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int, roots []Cell, sb *topk.Bound) (Result, error) {
	return descend(pm.Full(), pm, mp, k, roots, DescendOpts{Bound: sb})
}

// DescendOpts tunes one branch-and-bound descent. The zero value
// reproduces Combined on the given roots.
type DescendOpts struct {
	// Ctx cancels the descent cooperatively: it is checked once per
	// frontier pop, and a cancelled descent returns ctx.Err(). Nil
	// means no cancellation.
	Ctx context.Context
	// Bound is the cross-shard screening floor (see CombinedShard).
	Bound *topk.Bound
	// Meter is a shared work budget charged in term evaluations (the
	// same unit Stats counts). When it runs out the descent stops and
	// returns its partial (best-effort) result with no error; the
	// caller reads Meter.Exhausted to learn the result was truncated.
	Meter *topk.Meter
	// OnLevel, when non-nil, is invoked with the heap's current
	// best-first contents when the first result lands, when the top-K
	// first fills, and whenever a pyramid level drains from the
	// frontier (level = the coarsest level still outstanding) — the
	// progressive-delivery hook. A non-nil error aborts the descent.
	OnLevel func(level int, sofar []topk.Item) error
}

// CombinedShardOpts is CombinedShard with cancellation, budgeting and
// progressive delivery via opts.
func CombinedShardOpts(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int, roots []Cell, opt DescendOpts) (Result, error) {
	return descend(pm.Full(), pm, mp, k, roots, opt)
}

// CombinedShardAppend is CombinedShardOpts for allocation-free serving
// loops: the merged top-K is appended to dst (pass a reused dst[:0]),
// the selection heap comes from the shared pool, and every scratch
// structure of the descent — frontier queue, interval buffers, level
// accounting — is drawn from a pooled arena. A warmed-up call performs
// zero allocations. Results and stats are bit-identical to
// CombinedShardOpts.
func CombinedShardAppend(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int, roots []Cell, opt DescendOpts, dst []topk.Item) ([]topk.Item, Stats, error) {
	return descendInto(pm.Full(), pm, mp, k, roots, opt, dst)
}

func descend(m *linear.Model, pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int, roots []Cell, opt DescendOpts) (Result, error) {
	items, st, err := descendInto(m, pm, mp, k, roots, opt, nil)
	return Result{Items: items, Stats: st}, err
}

// descentScratch is the pooled per-descent working set: the frontier
// priority queue, the per-level outstanding counters, and the interval
// and pixel buffers sized to the model's term count.
type descentScratch struct {
	pq          []cellEntry
	outstanding []int
	bind        []int
	lo, hi, x   []float64
	// st is the descent's stats accumulator; it lives in the pooled
	// scratch so taking its address does not force a heap allocation
	// per descent.
	st Stats
}

var descentScratchPool = sync.Pool{New: func() any { return new(descentScratch) }}

func (sc *descentScratch) reset(nTerms, nLevels int) {
	if cap(sc.pq) == 0 {
		sc.pq = make([]cellEntry, 0, 64)
	}
	sc.pq = sc.pq[:0]
	if cap(sc.outstanding) < nLevels {
		sc.outstanding = make([]int, nLevels)
	}
	sc.outstanding = sc.outstanding[:nLevels]
	for i := range sc.outstanding {
		sc.outstanding[i] = 0
	}
	if cap(sc.bind) < nTerms {
		sc.bind = make([]int, nTerms)
		sc.lo = make([]float64, nTerms)
		sc.hi = make([]float64, nTerms)
		sc.x = make([]float64, nTerms)
	}
	sc.bind = sc.bind[:nTerms]
	sc.lo, sc.hi, sc.x = sc.lo[:nTerms], sc.hi[:nTerms], sc.x[:nTerms]
}

// descender carries one branch-and-bound descent. It replaces the
// closure-per-call structure this file used before the columnar
// rewrite: methods on one stack value allocate nothing, the frontier
// is a concrete max-heap (no container/heap interface boxing), and
// every envelope read goes through the pyramid's flat cell-major
// planes instead of chasing one Grid pointer per band per plane.
type descender struct {
	m      *linear.Model
	pm     *linear.ProgressiveModel
	mp     *pyramid.MultibandPyramid
	h      *topk.Heap
	sb     *topk.Bound
	meter  *topk.Meter
	ctx    context.Context
	done   <-chan struct{}
	onLvl  func(level int, sofar []topk.Item) error
	st     *Stats
	sc     *descentScratch
	base   *pyramid.FlatLevel
	nTerms int
	w      int

	coarsest        int
	started, filled bool
}

// pqPush inserts a frontier entry (max-heap on upper bound).
func (d *descender) pqPush(e cellEntry) {
	pq := append(d.sc.pq, e)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pq[parent].upper >= pq[i].upper {
			break
		}
		pq[i], pq[parent] = pq[parent], pq[i]
		i = parent
	}
	d.sc.pq = pq
}

// pqPop removes and returns the highest-bound entry.
func (d *descender) pqPop() cellEntry {
	pq := d.sc.pq
	top := pq[0]
	n := len(pq) - 1
	pq[0] = pq[n]
	pq = pq[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && pq[l].upper > pq[largest].upper {
			largest = l
		}
		if r < n && pq[r].upper > pq[largest].upper {
			largest = r
		}
		if largest == i {
			break
		}
		pq[i], pq[largest] = pq[largest], pq[i]
		i = largest
	}
	d.sc.pq = pq
	return top
}

// bound upper-bounds the model over cell (cx, cy) of `level` from the
// flat min/max envelope, charging the meter in term evaluations.
func (d *descender) bound(level, cx, cy int) (float64, error) {
	d.mp.Flat(level).Envelope(cx, cy, d.sc.bind, d.sc.lo, d.sc.hi)
	d.st.CellTermEvals += 2 * d.nTerms
	d.st.CellsVisited++
	d.meter.Charge(2 * d.nTerms)
	_, ub, err := d.m.Interval(d.sc.lo, d.sc.hi)
	return ub, err
}

// floor is the score a candidate must beat to matter: the local heap's
// threshold or the cross-shard bound, whichever is higher. Both are
// lower bounds on the (merged) K-th best, so pruning strictly below
// the floor never drops a global winner.
func (d *descender) floor() (float64, bool) {
	f, ok := d.h.Threshold()
	if g := d.sb.Get(); !math.IsInf(g, -1) && (!ok || g > f) {
		f, ok = g, true
	}
	return f, ok
}

// emit fires the OnLevel hook when the first result lands, when the
// top-K first fills, and whenever the coarsest still-outstanding level
// drains from the frontier.
func (d *descender) emit() error {
	if d.onLvl == nil {
		return nil
	}
	if !d.started && d.h.Len() > 0 {
		d.started = true
		if err := d.onLvl(d.coarsest, d.h.Results()); err != nil {
			return err
		}
	}
	if !d.filled && d.h.Full() {
		d.filled = true
		if err := d.onLvl(d.coarsest, d.h.Results()); err != nil {
			return err
		}
	}
	for d.coarsest > 0 && d.sc.outstanding[d.coarsest] == 0 {
		d.coarsest--
		if err := d.onLvl(d.coarsest, d.h.Results()); err != nil {
			return err
		}
	}
	return nil
}

// evalPixel scores the base-level cell (px, py), with progressive
// sub-model screening when a progressive model is present.
func (d *descender) evalPixel(px, py int) {
	id := int64(py*d.w + px)
	d.st.PixelsVisited++
	d.base.Means(px, py, d.sc.bind, d.sc.x)
	if d.pm == nil {
		d.st.PixelTermEvals += d.nTerms
		d.meter.Charge(d.nTerms)
		d.h.OfferScore(id, d.m.EvalUnchecked(d.sc.x))
		return
	}
	// Progressive pixel refinement: coarse sub-model first.
	c := d.pm.EvalLevelUnchecked(0, d.sc.x)
	d.st.PixelTermEvals += d.pm.CostAt(0)
	d.meter.Charge(d.pm.CostAt(0))
	if f, ok := d.floor(); ok && c+d.pm.Resid(0) < f {
		return // even the optimistic completion cannot enter
	}
	d.st.PixelTermEvals += d.nTerms - d.pm.CostAt(0)
	d.meter.Charge(d.nTerms - d.pm.CostAt(0))
	d.h.OfferScore(id, d.m.EvalUnchecked(d.sc.x))
}

func descendInto(m *linear.Model, pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int, roots []Cell, opt DescendOpts, dst []topk.Item) ([]topk.Item, Stats, error) {
	h, err := topk.GetHeap(k)
	if err != nil {
		return dst, Stats{}, err
	}
	defer topk.PutHeap(h)
	sc := descentScratchPool.Get().(*descentScratch)
	defer descentScratchPool.Put(sc)
	nTerms := m.NumTerms()
	sc.reset(nTerms, mp.NumLevels())
	st := &sc.st
	*st = Stats{}
	if err := bindAttrs(m.Attrs, mp, sc.bind); err != nil {
		return dst, *st, err
	}

	d := descender{
		m: m, pm: pm, mp: mp, h: h, sb: opt.Bound, meter: opt.Meter,
		ctx: opt.Ctx, onLvl: opt.OnLevel, st: st, sc: sc,
		base: mp.Flat(0), nTerms: nTerms,
	}
	d.w = d.base.W
	if opt.Ctx != nil {
		d.done = opt.Ctx.Done()
	}

	for _, c := range roots {
		ub, err := d.bound(c.Level, c.X, c.Y)
		if err != nil {
			return dst, *st, err
		}
		d.pqPush(cellEntry{level: c.Level, x: c.X, y: c.Y, upper: ub})
		sc.outstanding[c.Level]++
		if c.Level > d.coarsest {
			d.coarsest = c.Level
		}
	}

	for len(sc.pq) > 0 {
		if d.done != nil {
			select {
			case <-d.done:
				return dst, *st, d.ctx.Err()
			default:
			}
		}
		if d.meter.Exhausted() {
			break // budget exhausted: return the best-effort partial heap
		}
		e := d.pqPop()
		sc.outstanding[e.level]--
		// Strict comparison: a cell whose bound equals the floor may
		// still hold an equal-scoring pixel with a smaller ID, which
		// wins the deterministic tie-break.
		if f, ok := d.floor(); ok && e.upper < f {
			break // best-first: nothing left can improve the result
		}
		if e.level == 0 {
			d.evalPixel(e.x, e.y)
			if t, ok := h.Threshold(); ok {
				d.sb.Raise(t) // publish the local floor to sibling shards
			}
			if err := d.emit(); err != nil {
				return dst, *st, err
			}
			continue
		}
		fine := mp.Flat(e.level - 1)
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				nx, ny := 2*e.x+dx, 2*e.y+dy
				if nx >= fine.W || ny >= fine.H {
					continue
				}
				ub, err := d.bound(e.level-1, nx, ny)
				if err != nil {
					return dst, *st, err
				}
				d.pqPush(cellEntry{level: e.level - 1, x: nx, y: ny, upper: ub})
				sc.outstanding[e.level-1]++
			}
		}
		if err := d.emit(); err != nil {
			return dst, *st, err
		}
	}
	return h.AppendResults(dst), *st, nil
}

// Speedups summarizes an E5-style four-cell comparison.
type Speedups struct {
	FlatWork     int
	ModelWork    int
	DataWork     int
	CombinedWork int
}

// Pm returns the progressive-model complexity reduction ratio.
func (s Speedups) Pm() float64 { return float64(s.FlatWork) / float64(s.ModelWork) }

// Pd returns the progressive-data complexity reduction ratio.
func (s Speedups) Pd() float64 { return float64(s.FlatWork) / float64(s.DataWork) }

// PmPd returns the combined speedup (the paper's nN/(pm·pd) denominator).
func (s Speedups) PmPd() float64 { return float64(s.FlatWork) / float64(s.CombinedWork) }

// Compare runs all four strategies, checks that the result sets agree
// exactly, and returns the speedup table.
func Compare(pm *linear.ProgressiveModel, mp *pyramid.MultibandPyramid, k int) (Speedups, []topk.Item, error) {
	var sp Speedups
	flat, err := Flat(pm.Full(), mp, k)
	if err != nil {
		return sp, nil, err
	}
	mres, err := ProgModel(pm, mp, k)
	if err != nil {
		return sp, nil, err
	}
	dres, err := ProgData(pm.Full(), mp, k)
	if err != nil {
		return sp, nil, err
	}
	cres, err := Combined(pm, mp, k)
	if err != nil {
		return sp, nil, err
	}
	for name, other := range map[string][]topk.Item{
		"prog-model": mres.Items, "prog-data": dres.Items, "combined": cres.Items,
	} {
		if err := sameItems(flat.Items, other); err != nil {
			return sp, nil, fmt.Errorf("progressive: %s diverged from flat: %w", name, err)
		}
	}
	sp = Speedups{
		FlatWork:     flat.Stats.Work(),
		ModelWork:    mres.Stats.Work(),
		DataWork:     dres.Stats.Work(),
		CombinedWork: cres.Stats.Work(),
	}
	return sp, flat.Items, nil
}

func sameItems(a, b []topk.Item) error {
	if len(a) != len(b) {
		return fmt.Errorf("result sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return fmt.Errorf("position %d: id %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
	return nil
}

// RiskSurface materializes the model over the whole scene as a grid —
// used by accuracy experiments (E6) and examples that want to visualize
// or threshold the full surface rather than retrieve top-K.
func RiskSurface(m *linear.Model, mp *pyramid.MultibandPyramid) (*raster.Grid, error) {
	bind, err := Bind(m, mp)
	if err != nil {
		return nil, err
	}
	base := mp.Band(0).Level(0).Mean
	out := raster.MustGrid(base.Width(), base.Height())
	x := make([]float64, m.NumTerms())
	for y := 0; y < base.Height(); y++ {
		for xx := 0; xx < base.Width(); xx++ {
			for i, b := range bind.Bands {
				x[i] = mp.Band(b).Level(0).Mean.At(xx, y)
			}
			out.Set(xx, y, m.EvalUnchecked(x))
		}
	}
	return out, nil
}
