// Heap pooling: every query allocates per-shard and merge heaps, and a
// serving engine runs the same K over and over. The pool recycles the
// heap structs (and their item backing arrays) across requests so the
// steady-state hot path allocates nothing for selection state.

package topk

import "sync"

var heapPool = sync.Pool{New: func() any { return &Heap{} }}

// GetHeap returns a pooled empty heap reinitialized to capacity k.
// Return it with PutHeap once its results have been extracted (Results
// copies, so the heap can be released before the copy is used).
func GetHeap(k int) (*Heap, error) {
	if k < 1 {
		return nil, ErrBadCapacity
	}
	h := heapPool.Get().(*Heap)
	h.k = k
	if cap(h.items) < k {
		h.items = make([]Item, 0, k)
	} else {
		h.items = h.items[:0]
	}
	return h, nil
}

// MustGetHeap is GetHeap for statically valid capacities.
func MustGetHeap(k int) *Heap {
	h, err := GetHeap(k)
	if err != nil {
		panic(err)
	}
	return h
}

// PutHeap returns a heap to the pool. The items are cleared first so a
// pooled heap never pins caller payloads across requests.
func PutHeap(h *Heap) {
	if h == nil {
		return
	}
	full := h.items[:cap(h.items)]
	for i := range full {
		full[i] = Item{}
	}
	h.items = h.items[:0]
	heapPool.Put(h)
}
