package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHeapRejectsBadCapacity(t *testing.T) {
	for _, k := range []int{0, -1, -100} {
		if _, err := NewHeap(k); err == nil {
			t.Errorf("NewHeap(%d): want error, got nil", k)
		}
	}
	if _, err := NewHeap(1); err != nil {
		t.Fatalf("NewHeap(1): unexpected error %v", err)
	}
}

func TestHeapKeepsLargest(t *testing.T) {
	h := MustHeap(3)
	for i, s := range []float64{5, 1, 9, 3, 7, 2, 8} {
		h.OfferScore(int64(i), s)
	}
	got := h.Results()
	wantScores := []float64{9, 8, 7}
	if len(got) != 3 {
		t.Fatalf("len=%d want 3", len(got))
	}
	for i, it := range got {
		if it.Score != wantScores[i] {
			t.Errorf("result[%d].Score=%v want %v", i, it.Score, wantScores[i])
		}
	}
}

func TestHeapFewerThanK(t *testing.T) {
	h := MustHeap(10)
	h.OfferScore(1, 2.0)
	h.OfferScore(2, 1.0)
	got := h.Results()
	if len(got) != 2 || got[0].Score != 2.0 || got[1].Score != 1.0 {
		t.Fatalf("unexpected results %+v", got)
	}
}

func TestHeapTieBreakByID(t *testing.T) {
	h := MustHeap(2)
	h.OfferScore(7, 1.0)
	h.OfferScore(3, 1.0)
	h.OfferScore(5, 1.0)
	got := h.Results()
	if got[0].ID != 3 || got[1].ID != 5 {
		t.Fatalf("tie break wrong: %+v", got)
	}
}

func TestThreshold(t *testing.T) {
	h := MustHeap(2)
	if _, ok := h.Threshold(); ok {
		t.Fatal("empty heap should have no threshold")
	}
	h.OfferScore(1, 5)
	h.OfferScore(2, 3)
	th, ok := h.Threshold()
	if !ok || th != 3 {
		t.Fatalf("threshold=%v ok=%v want 3,true", th, ok)
	}
}

func TestWouldAccept(t *testing.T) {
	h := MustHeap(1)
	if !h.WouldAccept(-1e18) {
		t.Fatal("non-full heap must accept anything")
	}
	h.OfferScore(1, 10)
	if h.WouldAccept(9.999) {
		t.Fatal("should reject score below floor")
	}
	if !h.WouldAccept(10.001) {
		t.Fatal("should accept score above floor")
	}
}

func TestReset(t *testing.T) {
	h := MustHeap(2)
	h.OfferScore(1, 1)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("len after reset = %d", h.Len())
	}
	h.OfferScore(2, 2)
	if got := h.Results(); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("heap unusable after reset: %+v", got)
	}
}

func TestMerge(t *testing.T) {
	a := MustHeap(3)
	b := MustHeap(3)
	a.OfferScore(1, 10)
	a.OfferScore(2, 20)
	b.OfferScore(3, 15)
	b.OfferScore(4, 25)
	got := Merge(a, b).Results()
	want := []int64{4, 2, 3}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("merged order %+v, want IDs %v", got, want)
		}
	}
}

func TestSelectTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(50)) // force ties
		}
		got := SelectTopK(scores, k)

		type pair struct {
			id int64
			s  float64
		}
		ref := make([]pair, n)
		for i, s := range scores {
			ref[i] = pair{int64(i), s}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].s != ref[j].s {
				return ref[i].s > ref[j].s
			}
			return ref[i].id < ref[j].id
		})
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), wantLen)
		}
		for i := 0; i < wantLen; i++ {
			if got[i].ID != ref[i].id || got[i].Score != ref[i].s {
				t.Fatalf("trial %d pos %d: got %+v want %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// Property: the heap's result set is exactly the K largest elements of the
// offered multiset, best-first.
func TestHeapPropertyQuick(t *testing.T) {
	f := func(raw []float64, kSeed uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kSeed)%10 + 1
		h := MustHeap(k)
		for i, s := range raw {
			// Avoid NaN: quick can generate them and NaN ordering is
			// undefined for retrieval scores by contract.
			if s != s {
				s = 0
			}
			h.OfferScore(int64(i), s)
			raw[i] = s
		}
		got := h.Results()
		sorted := append([]float64(nil), raw...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		wantLen := k
		if len(raw) < k {
			wantLen = len(raw)
		}
		if len(got) != wantLen {
			return false
		}
		for i := 0; i < wantLen; i++ {
			if got[i].Score != sorted[i] {
				return false
			}
		}
		// best-first ordering within the result
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferReportsRetention(t *testing.T) {
	h := MustHeap(1)
	if !h.OfferScore(1, 5) {
		t.Fatal("first offer must be retained")
	}
	if h.OfferScore(2, 4) {
		t.Fatal("worse offer must be rejected")
	}
	if !h.OfferScore(3, 6) {
		t.Fatal("better offer must be retained")
	}
}

func BenchmarkHeapOffer(b *testing.B) {
	b.ReportAllocs()
	h := MustHeap(100)
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.OfferScore(int64(i), scores[i&4095])
	}
}
