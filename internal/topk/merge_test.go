package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refTopK is the oracle: sort the full item set by (score desc, ID asc)
// and truncate to k.
func refTopK(items []Item, k int) []Item {
	all := append([]Item(nil), items...)
	sort.Slice(all, func(i, j int) bool { return worse(all[j], all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameItems(t *testing.T, got, want []Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("pos %d: got %v/%v want %v/%v",
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// shardAndMerge partitions items into `shards` contiguous heaps of
// capacity k and merges them — the exact dataflow of a sharded query.
func shardAndMerge(items []Item, shards, k int) []Item {
	if shards < 1 {
		shards = 1
	}
	merged := MustHeap(k)
	chunk := (len(items) + shards - 1) / shards
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		local := MustHeap(k)
		for _, it := range items[lo:hi] {
			local.Offer(it)
		}
		Merge(merged, local)
	}
	return merged.Results()
}

func TestMergeShardedEqualsConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(20)
		shards := 1 + rng.Intn(9)
		items := make([]Item, n)
		for i := range items {
			// Coarse quantization forces plenty of score ties.
			items[i] = Item{ID: int64(i), Score: float64(rng.Intn(12))}
		}
		want := refTopK(items, k)
		got := shardAndMerge(items, shards, k)
		sameItems(t, got, want)
	}
}

func TestMergeItemsMatchesMerge(t *testing.T) {
	src := MustHeap(4)
	for i := 0; i < 10; i++ {
		src.OfferScore(int64(i), float64(i%5))
	}
	viaHeap := Merge(MustHeap(3), src).Results()
	viaItems := MergeItems(MustHeap(3), src.Results()).Results()
	sameItems(t, viaItems, viaHeap)
}

func TestMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]Item, 120)
	for i := range items {
		items[i] = Item{ID: int64(i), Score: float64(rng.Intn(6))}
	}
	// Merge the same three partitions in every order; result must not move.
	parts := [][]Item{items[:40], items[40:80], items[80:]}
	var first []Item
	for _, order := range [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}} {
		h := MustHeap(7)
		for _, pi := range order {
			MergeItems(h, parts[pi])
		}
		got := h.Results()
		if first == nil {
			first = got
			sameItems(t, got, refTopK(items, 7))
			continue
		}
		sameItems(t, got, first)
	}
}

func TestBoundMonotoneAndNilSafe(t *testing.T) {
	var nilB *Bound
	if !math.IsInf(nilB.Get(), -1) {
		t.Fatalf("nil bound Get = %v, want -Inf", nilB.Get())
	}
	nilB.Raise(5) // must not panic

	b := NewBound()
	if !math.IsInf(b.Get(), -1) {
		t.Fatalf("fresh bound Get = %v, want -Inf", b.Get())
	}
	b.Raise(1.5)
	if b.Get() != 1.5 {
		t.Fatalf("Get = %v, want 1.5", b.Get())
	}
	b.Raise(0.5) // lower: ignored
	if b.Get() != 1.5 {
		t.Fatalf("Get after lower Raise = %v, want 1.5", b.Get())
	}
	b.Raise(math.NaN()) // NaN: ignored
	if b.Get() != 1.5 {
		t.Fatalf("Get after NaN Raise = %v, want 1.5", b.Get())
	}
	b.Raise(-2) // negative but lower than current: ignored
	if b.Get() != 1.5 {
		t.Fatalf("Get = %v, want 1.5", b.Get())
	}
	b.Raise(3)
	if b.Get() != 3 {
		t.Fatalf("Get = %v, want 3", b.Get())
	}
}

func TestBoundNegativeRange(t *testing.T) {
	// Float bit patterns of negatives are not order-preserving as
	// integers; Raise must still compare as floats.
	b := NewBound()
	b.Raise(-10)
	if b.Get() != -10 {
		t.Fatalf("Get = %v, want -10", b.Get())
	}
	b.Raise(-3)
	if b.Get() != -3 {
		t.Fatalf("Get = %v, want -3", b.Get())
	}
	b.Raise(-7)
	if b.Get() != -3 {
		t.Fatalf("Get = %v, want -3", b.Get())
	}
}

// FuzzHeapMerge asserts the sharded-merge invariant the engine relies
// on: for any scores (ties included), any k and any shard count, the
// merged top-K of per-shard heaps equals the top-K of the concatenated
// input.
func FuzzHeapMerge(f *testing.F) {
	f.Add(int64(1), 10, 3, 2, false)
	f.Add(int64(2), 100, 1, 7, true)
	f.Add(int64(3), 1, 5, 5, false)
	f.Add(int64(4), 257, 16, 4, true)
	f.Fuzz(func(t *testing.T, seed int64, n, k, shards int, quantize bool) {
		if n < 1 || n > 2000 || k < 1 || k > 64 || shards < 1 || shards > 32 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		items := make([]Item, n)
		for i := range items {
			s := rng.NormFloat64()
			if quantize {
				// Few distinct values: dense ties exercise the ID
				// tie-break across shard boundaries.
				s = float64(int(s * 2))
			}
			items[i] = Item{ID: int64(i), Score: s}
		}
		want := refTopK(items, k)
		got := shardAndMerge(items, shards, k)
		if len(got) != len(want) {
			t.Fatalf("got %d items, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("pos %d: got %v/%v want %v/%v",
					i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	})
}
