package topk

import (
	"math"
	"sync/atomic"
)

// Bound is a monotonically increasing score floor shared by concurrent
// workers assembling one logical top-K result from disjoint partitions.
// Any worker whose local K-capacity heap fills publishes its heap
// threshold: the existence of K items scoring >= t anywhere proves the
// global K-th best is >= t, so every other worker may prune candidates
// whose upper bound is *strictly* below the floor. Strictness matters —
// a candidate tied with the floor can still win the deterministic
// (score, ID) tie-break — and keeps sharded results bit-identical to a
// serial scan no matter how raises interleave.
//
// The zero value is not usable; construct with NewBound. A nil *Bound
// is a valid "no sharing" bound: Get reports -Inf and Raise is a no-op.
type Bound struct {
	bits atomic.Uint64
}

// NewBound returns a bound starting at negative infinity.
func NewBound() *Bound {
	b := &Bound{}
	b.bits.Store(math.Float64bits(math.Inf(-1)))
	return b
}

// Get returns the current floor.
func (b *Bound) Get() float64 {
	if b == nil {
		return math.Inf(-1)
	}
	return math.Float64frombits(b.bits.Load())
}

// Raise lifts the floor to v if v is higher. Lower or NaN values are
// ignored, so the floor only tightens.
func (b *Bound) Raise(v float64) {
	if b == nil || math.IsNaN(v) {
		return
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
