// Package topk provides bounded top-K selection machinery used by every
// retrieval path in the library: a fixed-capacity min-heap that keeps the K
// largest-scoring items seen so far, stable ordering helpers, and utilities
// for merging partial result sets produced by progressive execution levels.
//
// The paper frames every model-based query as a top-K retrieval ("the top-K
// choices based on the ranking evaluated by the model is usually desired",
// Section 3), so this package is the common result plane for the linear,
// finite-state and knowledge model engines.
package topk

import (
	"errors"
	"slices"
	"sort"
)

// Item is a scored retrieval candidate. ID identifies the underlying datum
// (tuple index, tile coordinate hash, region id...); Payload optionally
// carries a caller-defined value through the selection.
type Item struct {
	ID      int64
	Score   float64
	Payload any
}

// ErrBadCapacity is returned by NewHeap when k < 1.
var ErrBadCapacity = errors.New("topk: capacity must be >= 1")

// Heap is a bounded min-heap over Item scores. It retains the K items with
// the largest scores among all offered items. Ties on score are broken by
// smaller ID winning, which makes retrieval results deterministic across
// runs and platforms.
//
// The zero value is not usable; construct with NewHeap.
type Heap struct {
	k     int
	items []Item
}

// NewHeap returns a Heap that keeps the k highest-scoring items.
func NewHeap(k int) (*Heap, error) {
	if k < 1 {
		return nil, ErrBadCapacity
	}
	return &Heap{k: k, items: make([]Item, 0, k)}, nil
}

// MustHeap is NewHeap for statically known valid capacities.
// It panics only on programmer error (k < 1).
func MustHeap(k int) *Heap {
	h, err := NewHeap(k)
	if err != nil {
		panic(err)
	}
	return h
}

// K returns the heap's capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of items currently retained.
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether the heap holds K items.
func (h *Heap) Full() bool { return len(h.items) == h.k }

// Threshold returns the score an item must exceed to enter a full heap.
// For a non-full heap it returns negative infinity semantics via ok=false.
func (h *Heap) Threshold() (score float64, ok bool) {
	if !h.Full() {
		return 0, false
	}
	return h.items[0].Score, true
}

// worse reports whether item a ranks strictly worse than b
// (lower score, or equal score with larger ID).
func worse(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Offer inserts the item if it ranks among the current top K.
// It reports whether the item was retained.
func (h *Heap) Offer(it Item) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !worse(h.items[0], it) {
		return false
	}
	h.items[0] = it
	h.siftDown(0)
	return true
}

// OfferScore is a convenience wrapper around Offer without payload.
func (h *Heap) OfferScore(id int64, score float64) bool {
	return h.Offer(Item{ID: id, Score: score})
}

// WouldAccept reports whether an item with the given score could enter the
// heap right now. Progressive executors use this with upper bounds: if even
// the most optimistic score would be rejected, a whole candidate region can
// be pruned without refinement.
func (h *Heap) WouldAccept(score float64) bool {
	if len(h.items) < h.k {
		return true
	}
	floor := h.items[0]
	return floor.Score < score || (floor.Score == score && floor.ID > 0)
}

// Results returns the retained items ordered best-first (descending score,
// ascending ID on ties). The heap is unchanged; the returned slice is fresh.
func (h *Heap) Results() []Item {
	out := make([]Item, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}

// AppendResults appends the retained items to dst ordered best-first
// (descending score, ascending ID on ties) and returns the extended
// slice. It is Results for allocation-free steady-state callers: pass
// a reused dst[:0] and no garbage is produced.
func (h *Heap) AppendResults(dst []Item) []Item {
	start := len(dst)
	dst = append(dst, h.items...)
	out := dst[start:]
	slices.SortFunc(out, func(a, b Item) int {
		switch {
		case worse(b, a):
			return -1
		case worse(a, b):
			return 1
		default:
			return 0
		}
	})
	return dst
}

// Reset empties the heap, retaining capacity.
func (h *Heap) Reset() { h.items = h.items[:0] }

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && worse(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && worse(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Merge folds every item of src into dst and returns dst. It is used to
// combine per-shard heaps produced by parallel scans.
func Merge(dst, src *Heap) *Heap {
	return MergeItems(dst, src.items)
}

// MergeItems offers every item to dst and returns dst. It merges the
// partial result lists (each already best-first or not — order is
// irrelevant) that shard workers hand back.
func MergeItems(dst *Heap, items []Item) *Heap {
	for _, it := range items {
		dst.Offer(it)
	}
	return dst
}

// SelectTopK returns the k best items from a full slice of scores, using the
// same ordering rules as Heap. IDs are the slice indices. It is the
// reference sequential-scan implementation that indexed retrieval is
// benchmarked against.
func SelectTopK(scores []float64, k int) []Item {
	h := MustHeap(k)
	for i, s := range scores {
		h.OfferScore(int64(i), s)
	}
	return h.Results()
}
