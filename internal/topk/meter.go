package topk

import "sync/atomic"

// Meter is a work budget shared by concurrent workers assembling one
// logical query result: each worker charges the evaluations it is about
// to perform and stops scanning once the pooled total crosses the
// limit. Budgeted queries trade exactness for a hard cap on work — the
// result is the exact top-K of everything evaluated before the budget
// ran out, which is a best-effort answer, not the true top-K.
//
// A nil *Meter is a valid "unlimited" meter: Charge always reports
// true and Exhausted reports false, so unbudgeted queries pay no
// atomic traffic beyond a nil check.
type Meter struct {
	limit int64
	used  atomic.Int64
}

// NewMeter returns a meter allowing `limit` units of work, or nil (the
// unlimited meter) when limit <= 0.
func NewMeter(limit int) *Meter {
	if limit <= 0 {
		return nil
	}
	return &Meter{limit: int64(limit)}
}

// Charge records n units of work and reports whether the budget still
// holds. Scanners gate on Exhausted before starting an item and Charge
// its actual cost after performing it, so the meter only ever counts
// work that was really done and a budgeted query overshoots by at most
// one item (layer, region, well, tile) per worker.
func (m *Meter) Charge(n int) bool {
	if m == nil {
		return true
	}
	return m.used.Add(int64(n)) <= m.limit
}

// Exhausted reports whether the budget has been crossed.
func (m *Meter) Exhausted() bool {
	return m != nil && m.used.Load() > m.limit
}

// Used returns the total work charged so far.
func (m *Meter) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}
