// Package svd implements the clustering + singular value decomposition
// approximate high-dimensional index of reference [14] (Thomasian,
// Castelli & Li, "Clustering and Singular Value Decomposition for
// Approximate Indexing in High Dimensional Spaces", CIKM 1998) — the
// similarity-search incumbent the paper contrasts with model-specific
// indexing in Section 3.2.
//
// The construction: k-means-cluster the point set, compute each
// cluster's principal subspace from the covariance eigendecomposition
// (equivalently the SVD of the centered cluster matrix), and store
// points as low-dimensional projections. Nearest-neighbor queries scan
// clusters in order of centroid distance, compare in the reduced space,
// and terminate early; accuracy degrades gracefully with the retained
// dimension count — approximate by design, which is exactly why the
// paper argues such indexes are the wrong tool for *model* queries that
// need exact optima.
package svd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"modelir/internal/topk"
)

// Options tunes Build.
type Options struct {
	// Clusters is the k-means cluster count. Default max(1, n/256).
	Clusters int
	// Dims is the number of principal dimensions retained per cluster.
	// Default: enough to capture 90% of variance, at least 1.
	Dims int
	// Iterations bounds k-means rounds. Default 20.
	Iterations int
	// Seed fixes centroid initialization.
	Seed int64
}

// Index is an immutable clustered-SVD index.
type Index struct {
	dim    int
	points [][]float64
	// per cluster:
	centroids [][]float64
	basis     [][][]float64 // [cluster][retainedDim][dim]
	members   [][]int
	proj      [][][]float64 // [cluster][member][retainedDim]
	// radius[c] bounds the distance from centroid c to its farthest
	// member, for cluster pruning.
	radius []float64
}

// Build constructs the index. Points are not copied.
func Build(points [][]float64, opt Options) (*Index, error) {
	n := len(points)
	if n == 0 {
		return nil, errors.New("svd: empty point set")
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("svd: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("svd: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	k := opt.Clusters
	if k == 0 {
		k = n / 256
		if k < 1 {
			k = 1
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("svd: cluster count %d out of [1,%d]", k, n)
	}
	iters := opt.Iterations
	if iters == 0 {
		iters = 20
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}

	centroids, members := kmeans(points, k, iters, seed)
	ix := &Index{
		dim:       d,
		points:    points,
		centroids: centroids,
		members:   members,
		basis:     make([][][]float64, len(members)),
		proj:      make([][][]float64, len(members)),
		radius:    make([]float64, len(members)),
	}
	for c, mem := range members {
		cov := covariance(points, mem, centroids[c])
		evals, evecs := jacobiEigen(cov)
		dims := opt.Dims
		if dims == 0 {
			dims = dimsFor90(evals)
		}
		if dims < 1 {
			dims = 1
		}
		if dims > d {
			dims = d
		}
		// Retain the top-dims eigenvectors (jacobiEigen returns them
		// sorted by descending eigenvalue).
		ix.basis[c] = evecs[:dims]
		ix.proj[c] = make([][]float64, len(mem))
		for mi, pi := range mem {
			ix.proj[c][mi] = project(points[pi], centroids[c], ix.basis[c])
			dist := math.Sqrt(dist2(points[pi], centroids[c]))
			if dist > ix.radius[c] {
				ix.radius[c] = dist
			}
		}
	}
	return ix, nil
}

// NumClusters returns the cluster count.
func (ix *Index) NumClusters() int { return len(ix.centroids) }

// RetainedDims returns the retained dimensionality of cluster c.
func (ix *Index) RetainedDims(c int) int { return len(ix.basis[c]) }

// Stats counts query work.
type Stats struct {
	ClustersScanned int
	PointsCompared  int
}

// NearestK returns approximately the k nearest points to target.
// Clusters are visited in order of centroid distance and pruned when
// the centroid distance minus cluster radius already exceeds the
// current k-th best; comparisons inside a cluster use the reduced
// space, which is where the (bounded) approximation error comes from.
func (ix *Index) NearestK(target []float64, k int) ([]topk.Item, Stats, error) {
	var st Stats
	if len(target) != ix.dim {
		return nil, st, fmt.Errorf("svd: target dim %d, want %d", len(target), ix.dim)
	}
	if k < 1 {
		return nil, st, errors.New("svd: k must be >= 1")
	}
	type cd struct {
		c    int
		dist float64
	}
	order := make([]cd, len(ix.centroids))
	for c := range ix.centroids {
		order[c] = cd{c: c, dist: math.Sqrt(dist2(target, ix.centroids[c]))}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].dist != order[j].dist {
			return order[i].dist < order[j].dist
		}
		return order[i].c < order[j].c
	})
	// Max-heap on negative distance via topk (which keeps largest):
	// score = -distance, so the retained k have the smallest distances.
	h := topk.MustHeap(k)
	for _, o := range order {
		if h.Full() {
			if floor, ok := h.Threshold(); ok {
				// floor = -(current k-th smallest distance). Prune when
				// even the closest possible member (centroid dist -
				// radius) is farther.
				if o.dist-ix.radius[o.c] > -floor {
					continue
				}
			}
		}
		st.ClustersScanned++
		tproj := project(target, ix.centroids[o.c], ix.basis[o.c])
		for mi, pi := range ix.members[o.c] {
			st.PointsCompared++
			dd := 0.0
			for j := range tproj {
				diff := tproj[j] - ix.proj[o.c][mi][j]
				dd += diff * diff
			}
			h.OfferScore(int64(pi), -math.Sqrt(dd))
		}
	}
	items := h.Results()
	// Replace reduced-space scores with true distances for the caller
	// (ranking stays as the index determined it — approximate).
	for i := range items {
		items[i].Score = math.Sqrt(dist2(target, ix.points[items[i].ID]))
	}
	return items, st, nil
}

// ExactNearestK is the exact full-dimensional baseline.
func ExactNearestK(points [][]float64, target []float64, k int) ([]topk.Item, error) {
	if len(points) == 0 {
		return nil, errors.New("svd: empty point set")
	}
	if len(target) != len(points[0]) {
		return nil, errors.New("svd: target dimension mismatch")
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		h.OfferScore(int64(i), -math.Sqrt(dist2(target, p)))
	}
	items := h.Results()
	for i := range items {
		items[i].Score = -items[i].Score
	}
	return items, nil
}

// Recall measures the fraction of the exact k-NN set the approximate
// result recovered.
func Recall(approx, exact []topk.Item) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int64]bool, len(exact))
	for _, it := range exact {
		in[it.ID] = true
	}
	hits := 0
	for _, it := range approx {
		if in[it.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// ---- internals ----

func kmeans(points [][]float64, k, iters int, seed int64) ([][]float64, [][]int) {
	n, d := len(points), len(points[0])
	rng := rand.New(rand.NewSource(seed))
	// k-means++ style seeding: first uniform, rest distance-weighted.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(points[i], centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, dd := range minD {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, dd := range minD {
				acc += dd
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centroids = append(centroids, c)
		for i := range minD {
			if dd := dist2(points[i], c); dd < minD[i] {
				minD[i] = dd
			}
		}
	}

	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if dd := dist2(p, centroids[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		count := make([]int, len(centroids))
		sums := make([][]float64, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			count[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if count[c] == 0 {
				continue // keep old centroid for empty clusters
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(count[c])
			}
		}
		if !changed {
			break
		}
	}
	members := make([][]int, len(centroids))
	for i := range points {
		members[assign[i]] = append(members[assign[i]], i)
	}
	// Drop empty clusters.
	var outC [][]float64
	var outM [][]int
	for c := range members {
		if len(members[c]) > 0 {
			outC = append(outC, centroids[c])
			outM = append(outM, members[c])
		}
	}
	return outC, outM
}

func covariance(points [][]float64, members []int, mean []float64) [][]float64 {
	d := len(mean)
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	if len(members) < 2 {
		for i := 0; i < d; i++ {
			cov[i][i] = 1e-9
		}
		return cov
	}
	for _, pi := range members {
		p := points[pi]
		for i := 0; i < d; i++ {
			di := p[i] - mean[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (p[j] - mean[j])
			}
		}
	}
	norm := 1 / float64(len(members)-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= norm
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

// jacobiEigen computes eigenvalues and eigenvectors of a symmetric
// matrix via cyclic Jacobi rotations, returning them sorted by
// descending eigenvalue. Eigenvectors are returned as rows.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 50; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for j := 0; j < n; j++ {
					mpj, mqj := m[p][j], m[q][j]
					m[p][j] = c*mpj - s*mqj
					m[q][j] = s*mpj + c*mqj
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	evals := make([]float64, n)
	for i := range evals {
		evals[i] = m[i][i]
	}
	// Sort descending, carrying eigenvectors (columns of v -> rows out).
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return evals[idx[a]] > evals[idx[b]] })
	outVals := make([]float64, n)
	outVecs := make([][]float64, n)
	for r, id := range idx {
		outVals[r] = evals[id]
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = v[i][id]
		}
		outVecs[r] = vec
	}
	return outVals, outVecs
}

func dimsFor90(evals []float64) int {
	total := 0.0
	for _, e := range evals {
		if e > 0 {
			total += e
		}
	}
	if total == 0 {
		return 1
	}
	acc := 0.0
	for i, e := range evals {
		if e > 0 {
			acc += e
		}
		if acc/total >= 0.9 {
			return i + 1
		}
	}
	return len(evals)
}

func project(p, center []float64, basis [][]float64) []float64 {
	out := make([]float64, len(basis))
	for bi, b := range basis {
		s := 0.0
		for j := range p {
			s += (p[j] - center[j]) * b[j]
		}
		out[bi] = s
	}
	return out
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
