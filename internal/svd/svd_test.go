package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelir/internal/synth"
	"modelir/internal/topk"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := Build([][]float64{{}}, Options{}); err == nil {
		t.Fatal("want zero-dim error")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, Options{}); err == nil {
		t.Fatal("want ragged error")
	}
	pts, _ := synth.GaussianTuples(1, 10, 2)
	if _, err := Build(pts, Options{Clusters: 99}); err == nil {
		t.Fatal("want cluster count error")
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
	// (1,1)/√2 and (1,-1)/√2.
	evals, evecs := jacobiEigen([][]float64{{2, 1}, {1, 2}})
	if math.Abs(evals[0]-3) > 1e-9 || math.Abs(evals[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues %v", evals)
	}
	// First eigenvector parallel to (1,1).
	if math.Abs(math.Abs(evecs[0][0])-math.Abs(evecs[0][1])) > 1e-9 {
		t.Fatalf("first eigenvector %v", evecs[0])
	}
	// Orthonormality.
	dot := evecs[0][0]*evecs[1][0] + evecs[0][1]*evecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Fatalf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// For random symmetric A: A = V^T diag(evals) V must hold.
	rng := rand.New(rand.NewSource(3))
	const n = 5
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	evals, evecs := jacobiEigen(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			recon := 0.0
			for r := 0; r < n; r++ {
				recon += evals[r] * evecs[r][i] * evecs[r][j]
			}
			if math.Abs(recon-a[i][j]) > 1e-8 {
				t.Fatalf("A[%d][%d]: recon %v want %v", i, j, recon, a[i][j])
			}
		}
	}
	// Sorted descending.
	for i := 1; i < n; i++ {
		if evals[i] > evals[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

// clusteredPoints plants c well-separated Gaussian blobs.
func clusteredPoints(seed int64, n, d, c int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, c)
	for i := range centers {
		centers[i] = make([]float64, d)
		for j := range centers[i] {
			centers[i][j] = rng.NormFloat64() * 20
		}
	}
	out := make([][]float64, n)
	for i := range out {
		ctr := centers[i%c]
		p := make([]float64, d)
		for j := range p {
			p[j] = ctr[j] + rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func TestNearestKHighRecallOnClusteredData(t *testing.T) {
	pts := clusteredPoints(5, 4000, 8, 6)
	ix, err := Build(pts, Options{Clusters: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var recallSum float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		target := pts[rng.Intn(len(pts))]
		approx, st, err := ix.NearestK(target, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactNearestK(pts, target, 10)
		if err != nil {
			t.Fatal(err)
		}
		recallSum += Recall(approx, exact)
		if st.PointsCompared > len(pts) {
			t.Fatal("compared more points than exist")
		}
	}
	if avg := recallSum / trials; avg < 0.85 {
		t.Fatalf("average recall %v < 0.85 on well-clustered data", avg)
	}
}

func TestNearestKPrunesClusters(t *testing.T) {
	pts := clusteredPoints(7, 6000, 6, 12)
	ix, err := Build(pts, Options{Clusters: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ix.NearestK(pts[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.ClustersScanned >= ix.NumClusters() {
		t.Fatalf("no cluster pruning: scanned %d of %d", st.ClustersScanned, ix.NumClusters())
	}
	if st.PointsCompared*2 > len(pts) {
		t.Fatalf("compared %d of %d points", st.PointsCompared, len(pts))
	}
}

func TestDimensionReductionHappens(t *testing.T) {
	// Points on a 2-D plane embedded in 10-D: retained dims should be ~2.
	rng := rand.New(rand.NewSource(9))
	const n, d = 500, 10
	pts := make([][]float64, n)
	for i := range pts {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			p[j] = a*float64(j%3) + b*float64((j+1)%2) + rng.NormFloat64()*0.001
		}
		pts[i] = p
	}
	ix, err := Build(pts, Options{Clusters: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.RetainedDims(0) > 3 {
		t.Fatalf("retained %d dims for planar data", ix.RetainedDims(0))
	}
}

func TestQueryValidation(t *testing.T) {
	pts, _ := synth.GaussianTuples(1, 100, 3)
	ix, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.NearestK([]float64{1}, 1); err == nil {
		t.Fatal("want dim error")
	}
	if _, _, err := ix.NearestK([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := ExactNearestK(nil, nil, 1); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := ExactNearestK(pts, []float64{1}, 1); err == nil {
		t.Fatal("want target dim error")
	}
}

func TestRecallMetric(t *testing.T) {
	itemsOf := func(ids ...int64) []topk.Item {
		out := make([]topk.Item, len(ids))
		for i, id := range ids {
			out[i] = topk.Item{ID: id}
		}
		return out
	}
	approx := itemsOf(1, 2, 3)
	exact := itemsOf(2, 3, 4)
	if r := Recall(approx, exact); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall %v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty recall %v", r)
	}
}

// Property: with full dimensionality retained and one cluster, the
// approximate index is exact.
func TestFullDimsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		d := 2 + rng.Intn(4)
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			pts[i] = p
		}
		ix, err := Build(pts, Options{Clusters: 1, Dims: d, Seed: seed | 1})
		if err != nil {
			return false
		}
		target := make([]float64, d)
		for j := range target {
			target[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(8)
		approx, _, err := ix.NearestK(target, k)
		if err != nil {
			return false
		}
		exact, err := ExactNearestK(pts, target, k)
		if err != nil {
			return false
		}
		if len(approx) != len(exact) {
			return false
		}
		for i := range exact {
			if approx[i].ID != exact[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
