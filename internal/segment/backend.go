// Backend abstracts where a snapshot lives. The interface is
// deliberately tiny — write a whole file through a callback, open a
// file for random-access reads — so a remote object store can slot in
// behind the same Writer/Loader later. Dir is the local-directory
// implementation: every write goes to a temp file, is fsync'd, and is
// renamed into place, and the manifest is written last, so readers
// never observe a torn snapshot.

package segment

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Backend is a flat namespace of snapshot files.
type Backend interface {
	// WriteFile atomically creates or replaces name with the bytes
	// write produces. The file must not become visible under name
	// until write has returned successfully and the data is durable.
	WriteFile(name string, write func(io.Writer) error) error
	// Open opens name for reading. A missing file surfaces an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Open(name string) (Blob, error)
}

// Blob is an open snapshot file.
type Blob interface {
	io.ReaderAt
	io.Closer
	Size() int64
}

// mappable is the optional fast path a Blob can offer: expose the
// whole file as one read-only byte slice. The returned release func
// must be called exactly once when the mapping is no longer referenced.
type mappable interface {
	Map() (data []byte, release func() error, err error)
}

// Dir is a Backend rooted at a local directory.
type Dir struct {
	path string
}

// NewDir opens (creating if needed) a directory backend.
func NewDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("segment: data dir: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the backing directory.
func (d *Dir) Path() string { return d.path }

// WriteFile streams write into name.tmp (1 MiB buffered), fsyncs,
// renames over name, and fsyncs the directory so the rename itself is
// durable before WriteFile returns.
func (d *Dir) WriteFile(name string, write func(io.Writer) error) error {
	if err := validateFileName(name); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	tmp := filepath.Join(d.path, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("segment: create %s: %w", tmp, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: flush %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: close %s: %w", tmp, err)
	}
	final := filepath.Join(d.path, name)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: rename %s: %w", final, err)
	}
	return syncDir(d.path)
}

// syncDir fsyncs the directory entry table; best effort on platforms
// where directories cannot be fsync'd.
func syncDir(path string) error {
	df, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer df.Close()
	// Some filesystems return EINVAL for directory fsync; the rename
	// already ordered data before metadata, so ignore the error.
	_ = df.Sync()
	return nil
}

// Open opens a snapshot file for reading.
func (d *Dir) Open(name string) (Blob, error) {
	if err := validateFileName(name); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	f, err := os.Open(filepath.Join(d.path, name))
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: stat %s: %w", name, err)
	}
	return &fileBlob{f: f, size: st.Size()}, nil
}

// fileBlob is Dir's Blob. Its Map method (mmap_unix.go) satisfies
// mappable on platforms with mmap.
type fileBlob struct {
	f    *os.File
	size int64
}

func (b *fileBlob) ReadAt(p []byte, off int64) (int, error) { return b.f.ReadAt(p, off) }
func (b *fileBlob) Close() error                            { return b.f.Close() }
func (b *fileBlob) Size() int64                             { return b.size }
