// Fuzzing for the two snapshot decode surfaces an attacker-controlled
// file reaches first: the JSON manifest and the canon-framed section
// header. Properties: malformed input is rejected with an error (never
// a panic, never an oversized allocation), and anything that decodes
// re-encodes canonically — byte-identical for section headers, and
// fixed-point after one round trip for manifests (arbitrary JSON
// formatting normalizes on the first re-encode, then must be stable).

package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusManifest is the well-formed seed both fuzz corpora derive
// from: two datasets, all three section types, a non-trivial shard
// count.
func corpusManifest() *Manifest {
	return &Manifest{
		FormatVersion: FormatVersion,
		Shards:        4,
		Datasets: []Dataset{
			{
				Name: "gauss", Kind: "tuples", Rows: 8000, File: "ds-0000.seg",
				Sections: []Section{
					{Name: "meta", Type: TypeRaw, Count: 34, Offset: 4096, Len: 34,
						SHA256: strings.Repeat("ab", 32)},
					{Name: "s0.flat", Type: TypeF64, Count: 24000, Offset: 12288, Len: 192000,
						SHA256: strings.Repeat("cd", 32)},
				},
			},
			{
				Name: "weather", Kind: "series", Rows: 60, File: "ds-0001.seg",
				Sections: []Section{
					{Name: "events", Type: TypeI64, Count: 21900, Offset: 4096, Len: 175200,
						SHA256: strings.Repeat("0f", 32)},
				},
			},
		},
	}
}

func corpusHeader() sectionHeader {
	return sectionHeader{Name: "s0.flat", Type: TypeF64, Count: 24000, PayloadLen: 192000}
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpora from
// the current codecs when REGEN_CORPUS is set; otherwise it verifies
// every committed well-formed seed still decodes. Run with
//
//	REGEN_CORPUS=1 go test ./internal/segment/ -run TestRegenerateFuzzCorpus
//
// after a deliberate format change.
func TestRegenerateFuzzCorpus(t *testing.T) {
	manEnc, err := EncodeManifest(corpusManifest())
	if err != nil {
		t.Fatal(err)
	}
	hdrEnc := corpusHeader().encode()
	corpora := map[string]map[string][]byte{
		"FuzzManifestDecode": {
			"seed-full":        manEnc,
			"seed-truncated":   manEnc[:len(manEnc)/2],
			"seed-not-json":    []byte("{not json"),
			"seed-bad-version": bytes.Replace(manEnc, []byte(`"format_version": 1`), []byte(`"format_version": 99`), 1),
		},
		"FuzzSectionHeaderDecode": {
			"seed-full":      hdrEnc,
			"seed-truncated": hdrEnc[:len(hdrEnc)-3],
			"seed-bad-tag":   append([]byte("XX"), hdrEnc[2:]...),
		},
	}
	if os.Getenv("REGEN_CORPUS") != "" {
		for fuzzName, seeds := range corpora {
			dir := filepath.Join("testdata", "fuzz", fuzzName)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, b := range seeds {
				content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
				if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		return
	}
	decode := map[string]func([]byte) error{
		"FuzzManifestDecode": func(b []byte) error {
			_, err := DecodeManifest(b)
			return err
		},
		"FuzzSectionHeaderDecode": func(b []byte) error {
			_, err := decodeSectionHeader(b)
			return err
		},
	}
	for fuzzName := range corpora {
		raw, err := os.ReadFile(filepath.Join("testdata", "fuzz", fuzzName, "seed-full"))
		if err != nil {
			t.Fatalf("%s/seed-full missing (run with REGEN_CORPUS=1): %v", fuzzName, err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a corpus file", fuzzName)
		}
		b, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")"))
		if err != nil {
			t.Fatalf("%s: %v", fuzzName, err)
		}
		if err := decode[fuzzName]([]byte(b)); err != nil {
			t.Fatalf("%s seed-full no longer decodes: %v", fuzzName, err)
		}
	}
}

func FuzzManifestDecode(f *testing.F) {
	manEnc, err := EncodeManifest(corpusManifest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(manEnc)
	f.Add(manEnc[:len(manEnc)/2])
	f.Add([]byte("{not json"))
	f.Add([]byte("{}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return // malformed input rejected cleanly
		}
		// First re-encode normalizes arbitrary JSON formatting; from
		// there the encoding must be a fixed point.
		enc1, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("decoded manifest fails to encode: %v", err)
		}
		m2, err := DecodeManifest(enc1)
		if err != nil {
			t.Fatalf("canonical encoding fails to decode: %v", err)
		}
		enc2, err := EncodeManifest(m2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}

func FuzzSectionHeaderDecode(f *testing.F) {
	hdrEnc := corpusHeader().encode()
	f.Add(hdrEnc)
	f.Add(hdrEnc[:len(hdrEnc)-3])
	f.Add([]byte("MS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeSectionHeader(data)
		if err != nil {
			return
		}
		// The canonical encoding is injective and decode consumes the
		// whole input, so re-encoding must reproduce it exactly.
		enc := h.encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("re-encode differs:\n in: %x\nout: %x", data, enc)
		}
		h2, err := decodeSectionHeader(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("header drifted: %+v vs %+v", h2, h)
		}
	})
}
