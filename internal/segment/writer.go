// Writer serializes one snapshot. Section payloads are referenced,
// not buffered: a DatasetWriter records slice views of the engine's
// live columnar state and streams them through a chunked little-endian
// converter when the dataset file is written, computing each payload's
// SHA-256 in the same pass. Peak extra memory is one 32 KiB chunk
// buffer regardless of dataset size.

package segment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
)

// Writer accumulates datasets and finishes with an atomic manifest
// write.
type Writer struct {
	b        Backend
	man      Manifest
	open     bool // a DatasetWriter is outstanding
	finished bool
}

// NewWriter starts a snapshot onto b. shards records the engine's
// shard count for the manifest.
func NewWriter(b Backend, shards int) (*Writer, error) {
	if b == nil {
		return nil, fmt.Errorf("segment: nil backend")
	}
	if shards < 1 {
		return nil, fmt.Errorf("segment: shards %d", shards)
	}
	return &Writer{b: b, man: Manifest{FormatVersion: FormatVersion, Shards: shards}}, nil
}

// Dataset starts the next dataset. The previous DatasetWriter must be
// Closed first; datasets should be added in sorted name order so equal
// engines snapshot byte-identically.
func (w *Writer) Dataset(name, kind string, rows int) (*DatasetWriter, error) {
	if w.finished {
		return nil, fmt.Errorf("segment: writer finished")
	}
	if w.open {
		return nil, fmt.Errorf("segment: previous dataset still open")
	}
	if name == "" || kind == "" || rows < 0 {
		return nil, fmt.Errorf("segment: bad dataset %q kind %q rows %d", name, kind, rows)
	}
	for _, ds := range w.man.Datasets {
		if ds.Name == name && ds.Kind == kind {
			return nil, fmt.Errorf("segment: duplicate dataset %s %q", kind, name)
		}
	}
	w.open = true
	return &DatasetWriter{
		w: w,
		ds: Dataset{
			Name: name,
			Kind: kind,
			Rows: rows,
			File: fmt.Sprintf("ds-%04d.seg", len(w.man.Datasets)),
		},
	}, nil
}

// Finish writes the manifest. Call after every dataset is closed; the
// snapshot is not visible to loaders until Finish returns.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("segment: writer finished twice")
	}
	if w.open {
		return fmt.Errorf("segment: dataset still open at finish")
	}
	w.finished = true
	sort.Slice(w.man.Datasets, func(i, j int) bool {
		a, b := &w.man.Datasets[i], &w.man.Datasets[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Kind < b.Kind
	})
	enc, err := EncodeManifest(&w.man)
	if err != nil {
		return err
	}
	return w.b.WriteFile(ManifestName, func(out io.Writer) error {
		_, err := out.Write(enc)
		return err
	})
}

// secSpec is one staged section: exactly one of raw/f64/i64 is set.
type secSpec struct {
	name string
	typ  string
	raw  []byte
	f64  []float64
	i64  []int64
}

// DatasetWriter stages sections for one dataset and writes the
// segment file on Close.
type DatasetWriter struct {
	w    *Writer
	ds   Dataset
	secs []secSpec
	done bool
}

func (dw *DatasetWriter) add(s secSpec) error {
	if dw.done {
		return fmt.Errorf("segment: dataset %q already closed", dw.ds.Name)
	}
	if s.name == "" {
		return fmt.Errorf("segment: dataset %q: empty section name", dw.ds.Name)
	}
	for _, have := range dw.secs {
		if have.name == s.name {
			return fmt.Errorf("segment: dataset %q: duplicate section %q", dw.ds.Name, s.name)
		}
	}
	dw.secs = append(dw.secs, s)
	return nil
}

// Floats stages a float64 column. vals is aliased until Close returns.
func (dw *DatasetWriter) Floats(name string, vals []float64) error {
	return dw.add(secSpec{name: name, typ: TypeF64, f64: vals})
}

// Ints stages an int64 column. vals is aliased until Close returns.
func (dw *DatasetWriter) Ints(name string, vals []int64) error {
	return dw.add(secSpec{name: name, typ: TypeI64, i64: vals})
}

// Raw stages opaque bytes (e.g. a gob-encoded metadata block).
func (dw *DatasetWriter) Raw(name string, data []byte) error {
	return dw.add(secSpec{name: name, typ: TypeRaw, raw: data})
}

// Close writes the segment file: for each staged section a header
// page, the little-endian payload, and zero padding to the next page
// boundary, hashing the payload as it streams. The dataset joins the
// manifest only if the whole file lands.
func (dw *DatasetWriter) Close() error {
	if dw.done {
		return fmt.Errorf("segment: dataset %q closed twice", dw.ds.Name)
	}
	dw.done = true
	dw.w.open = false
	err := dw.w.b.WriteFile(dw.ds.File, func(out io.Writer) error {
		cw := &countingWriter{w: out}
		for _, s := range dw.secs {
			sec, err := writeSection(cw, s)
			if err != nil {
				return fmt.Errorf("segment: dataset %q section %q: %w", dw.ds.Name, s.name, err)
			}
			dw.ds.Sections = append(dw.ds.Sections, sec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	dw.w.man.Datasets = append(dw.w.man.Datasets, dw.ds)
	return nil
}

// writeSection emits one framed section at the writer's current
// (page-aligned) offset and returns its manifest entry.
func writeSection(cw *countingWriter, s secSpec) (Section, error) {
	var count int
	var payloadLen int64
	switch s.typ {
	case TypeRaw:
		count, payloadLen = len(s.raw), int64(len(s.raw))
	case TypeF64:
		count, payloadLen = len(s.f64), int64(len(s.f64))*8
	case TypeI64:
		count, payloadLen = len(s.i64), int64(len(s.i64))*8
	}
	hdr, err := framedHeader(sectionHeader{
		Name:       s.name,
		Type:       s.typ,
		Count:      uint64(count),
		PayloadLen: uint64(payloadLen),
	})
	if err != nil {
		return Section{}, err
	}
	if _, err := cw.Write(hdr); err != nil {
		return Section{}, err
	}
	if err := cw.padToPage(); err != nil {
		return Section{}, err
	}
	off := cw.n

	h := sha256.New()
	tee := io.MultiWriter(cw, h)
	switch s.typ {
	case TypeRaw:
		if _, err := tee.Write(s.raw); err != nil {
			return Section{}, err
		}
	case TypeF64:
		if err := writeF64LE(tee, s.f64); err != nil {
			return Section{}, err
		}
	case TypeI64:
		if err := writeI64LE(tee, s.i64); err != nil {
			return Section{}, err
		}
	}
	if err := cw.padToPage(); err != nil {
		return Section{}, err
	}
	return Section{
		Name:   s.name,
		Type:   s.typ,
		Count:  count,
		Offset: off,
		Len:    payloadLen,
		SHA256: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// chunkVals is the little-endian conversion chunk size in 8-byte
// elements (32 KiB buffer).
const chunkVals = 4096

func writeF64LE(w io.Writer, vals []float64) error {
	buf := make([]byte, chunkVals*8)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunkVals {
			n = chunkVals
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vals[i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeI64LE(w io.Writer, vals []int64) error {
	buf := make([]byte, chunkVals*8)
	for len(vals) > 0 {
		n := len(vals)
		if n > chunkVals {
			n = chunkVals
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(vals[i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// countingWriter tracks the file offset for page-boundary padding.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

var zeroPage [pageSize]byte

func (cw *countingWriter) padToPage() error {
	pad := (pageSize - cw.n%pageSize) % pageSize
	if pad == 0 {
		return nil
	}
	_, err := cw.Write(zeroPage[:pad])
	return err
}
