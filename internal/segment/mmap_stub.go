//go:build !unix

// On platforms without mmap the Map restore mode degrades to a typed
// error; callers fall back to Copy.

package segment

func (b *fileBlob) Map() ([]byte, func() error, error) {
	return nil, nil, ErrMapUnsupported
}
