// Package segment implements durable columnar segments: the snapshot
// format that persists an engine's *built* serving state — colstore
// blocks and zone maps, Onion layer ordering and suffix bounds, flat
// pyramid planes, FSM event planes, well strata columns, scene tile
// matrices — so a process can restore to serving-ready without
// re-running any index build.
//
// A snapshot is a set of segment files plus one JSON manifest, all
// living behind a narrow Backend interface (a local directory first;
// the interface is small enough that an object store fits later).
// Each dataset gets one segment file holding its sections back to
// back. Every section is page-aligned:
//
//	offset O (page-aligned): uint64 LE header length, then a
//	    canon-framed section header (name, type, count, payload len);
//	    the header must fit in one page
//	offset O+4096:           the payload, little-endian fixed-width
//	    (f64 = IEEE-754 bit patterns, i64 = two's complement, raw =
//	    verbatim bytes), zero-padded to the next page boundary
//
// Page alignment plus fixed little-endian width is what makes the Map
// restore mode possible: on a little-endian host a mapped payload can
// be aliased directly as []float64 / []int64 with zero copies, and the
// engine serves straight out of the page cache. The Copy mode decodes
// the same bytes portably on any host.
//
// Integrity is layered: the manifest records a SHA-256 per section
// payload (verified on every read, in both modes), and the in-file
// header duplicates the manifest's name/type/count/len so a manifest
// pointing into the wrong file region is caught even when the bytes
// there happen to be well-formed. Corruption always surfaces as a
// typed error — never a wrong answer.
package segment

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// FormatVersion is the current snapshot format version. A manifest or
// section header carrying any other version is refused with ErrVersion.
const FormatVersion = 1

// ManifestName is the backend file name of the snapshot manifest. It
// is written last, atomically, so a directory either has a complete
// snapshot or none.
const ManifestName = "MANIFEST.json"

// pageSize is the section alignment. 4096 matches the page size of
// every platform the Map mode supports, and guarantees the 8-byte
// alignment the float64/int64 alias casts need.
const pageSize = 4096

// Section payload types.
const (
	// TypeRaw is an opaque byte payload (count = byte length).
	TypeRaw = "raw"
	// TypeF64 is a little-endian float64 column (count = elements).
	TypeF64 = "f64"
	// TypeI64 is a little-endian int64 column (count = elements).
	TypeI64 = "i64"
)

// Typed errors. Every decode failure wraps exactly one of these so
// callers can distinguish "no snapshot yet" from "snapshot damaged".
var (
	// ErrNoSnapshot reports a backend with no manifest.
	ErrNoSnapshot = errors.New("segment: no snapshot")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("segment: unsupported snapshot format version")
	// ErrCorrupt reports a structurally invalid manifest, header, or
	// section layout.
	ErrCorrupt = errors.New("segment: corrupt snapshot")
	// ErrChecksum reports a section whose payload bytes do not match
	// the manifest's SHA-256.
	ErrChecksum = errors.New("segment: section checksum mismatch")
	// ErrMapUnsupported reports that RestoreMode Map cannot work here:
	// the platform has no mmap support or the host is not
	// little-endian.
	ErrMapUnsupported = errors.New("segment: map restore unsupported on this host")
)

// Manifest is the snapshot's table of contents.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	Shards        int       `json:"shards"`
	Datasets      []Dataset `json:"datasets"`
}

// Dataset records one dataset's segment file and its sections.
type Dataset struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Rows     int       `json:"rows"`
	File     string    `json:"file"`
	Sections []Section `json:"sections"`
}

// Section records one page-aligned payload inside a segment file.
// Offset and Len describe the payload only; the framing header sits in
// the page immediately before Offset.
type Section struct {
	Name   string `json:"name"`
	Type   string `json:"type"`
	Count  int    `json:"count"`
	Offset int64  `json:"offset"`
	Len    int64  `json:"len"`
	SHA256 string `json:"sha256"`
}

// EncodeManifest serializes m as indented JSON with a trailing
// newline. The writer sorts datasets by name before calling this, so
// equal snapshots produce byte-identical manifests.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := validateManifest(m); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("segment: encode manifest: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeManifest parses and validates a manifest. Unknown JSON fields
// are rejected so a manifest from a future minor revision fails loudly
// rather than half-loading.
func DecodeManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: manifest: trailing data", ErrCorrupt)
	}
	if err := validateManifest(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// validateManifest enforces every structural invariant the loader
// indexes by, so a corrupt-but-parseable manifest can never drive an
// out-of-range read or an oversized allocation downstream.
func validateManifest(m *Manifest) error {
	if m == nil {
		return fmt.Errorf("%w: nil manifest", ErrCorrupt)
	}
	if m.FormatVersion != FormatVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, m.FormatVersion, FormatVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("%w: manifest shards %d", ErrCorrupt, m.Shards)
	}
	seenDS := make(map[string]bool, len(m.Datasets))
	for di := range m.Datasets {
		ds := &m.Datasets[di]
		if ds.Name == "" {
			return fmt.Errorf("%w: dataset %d: empty name", ErrCorrupt, di)
		}
		if ds.Kind == "" {
			return fmt.Errorf("%w: dataset %q: empty kind", ErrCorrupt, ds.Name)
		}
		// Dataset names are scoped per kind (the engine allows the same
		// name for a tuple set and a scene), so uniqueness is on the
		// (kind, name) pair.
		dsKey := ds.Kind + "\x00" + ds.Name
		if seenDS[dsKey] {
			return fmt.Errorf("%w: duplicate dataset %s %q", ErrCorrupt, ds.Kind, ds.Name)
		}
		seenDS[dsKey] = true
		if ds.Rows < 0 {
			return fmt.Errorf("%w: dataset %q: rows %d", ErrCorrupt, ds.Name, ds.Rows)
		}
		if err := validateFileName(ds.File); err != nil {
			return fmt.Errorf("%w: dataset %q: %v", ErrCorrupt, ds.Name, err)
		}
		seenSec := make(map[string]bool, len(ds.Sections))
		for si := range ds.Sections {
			s := &ds.Sections[si]
			if s.Name == "" {
				return fmt.Errorf("%w: dataset %q: section %d: empty name", ErrCorrupt, ds.Name, si)
			}
			if seenSec[s.Name] {
				return fmt.Errorf("%w: dataset %q: duplicate section %q", ErrCorrupt, ds.Name, s.Name)
			}
			seenSec[s.Name] = true
			if s.Count < 0 || s.Len < 0 {
				return fmt.Errorf("%w: section %q: negative size", ErrCorrupt, s.Name)
			}
			switch s.Type {
			case TypeRaw:
				if int64(s.Count) != s.Len {
					return fmt.Errorf("%w: raw section %q: count %d != len %d", ErrCorrupt, s.Name, s.Count, s.Len)
				}
			case TypeF64, TypeI64:
				if int64(s.Count)*8 != s.Len {
					return fmt.Errorf("%w: %s section %q: count %d, len %d", ErrCorrupt, s.Type, s.Name, s.Count, s.Len)
				}
			default:
				return fmt.Errorf("%w: section %q: unknown type %q", ErrCorrupt, s.Name, s.Type)
			}
			// The framing header occupies the page before the payload,
			// so a payload can never start before offset pageSize.
			if s.Offset < pageSize || s.Offset%pageSize != 0 {
				return fmt.Errorf("%w: section %q: offset %d not page-aligned", ErrCorrupt, s.Name, s.Offset)
			}
			if len(s.SHA256) != 64 {
				return fmt.Errorf("%w: section %q: bad sha256 %q", ErrCorrupt, s.Name, s.SHA256)
			}
			for _, c := range s.SHA256 {
				if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
					return fmt.Errorf("%w: section %q: bad sha256 %q", ErrCorrupt, s.Name, s.SHA256)
				}
			}
		}
	}
	return nil
}

// validateFileName rejects names that could escape the backend's
// namespace: path separators, "..", empty names. Segment files are
// generated (ds-0000.seg), so anything fancier is corruption.
func validateFileName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("bad file name %q", name)
	}
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("bad file name %q", name)
	}
	return nil
}
