// In-file section framing. Each section's payload page is preceded by
// one header page carrying a canon-framed copy of the manifest entry's
// identity fields (name, type, count, payload length). The loader
// cross-checks the two on every read, so a manifest whose offsets
// point at the wrong region of a segment file — bytes that may well be
// checksummable garbage from another section — is caught structurally
// without any hash in the header itself. Keeping the hash out of the
// header is what lets the writer stream: the payload SHA-256 is
// computed while the payload is written and lands only in the
// manifest, which is written last.

package segment

import (
	"encoding/binary"
	"fmt"

	"modelir/internal/canon"
)

// headerTag marks a canon-framed section header.
const headerTag = "MS"

// sectionHeader is the decoded in-file framing record.
type sectionHeader struct {
	Name       string
	Type       string
	Count      uint64
	PayloadLen uint64
}

// encode appends the canonical header bytes (no length prefix).
func (h sectionHeader) encode() []byte {
	b := make([]byte, 0, 2+8+8+len(h.Name)+8+len(h.Type)+8+8)
	b = append(b, headerTag...)
	b = canon.AppendUint(b, FormatVersion)
	b = canon.AppendString(b, h.Name)
	b = canon.AppendString(b, h.Type)
	b = canon.AppendUint(b, h.Count)
	b = canon.AppendUint(b, h.PayloadLen)
	return b
}

// decodeSectionHeader parses header bytes produced by encode. The
// whole input must be consumed — trailing bytes are corruption, which
// makes decode→re-encode byte-identity a fuzzable invariant.
func decodeSectionHeader(b []byte) (sectionHeader, error) {
	r := canon.NewReader(b)
	if err := r.Expect(headerTag); err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header tag", ErrCorrupt)
	}
	ver, err := r.Uint()
	if err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header version", ErrCorrupt)
	}
	if ver != FormatVersion {
		return sectionHeader{}, fmt.Errorf("%w: section header version %d", ErrVersion, ver)
	}
	var h sectionHeader
	if h.Name, err = r.String(); err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header name", ErrCorrupt)
	}
	if h.Name == "" {
		return sectionHeader{}, fmt.Errorf("%w: empty section name", ErrCorrupt)
	}
	if h.Type, err = r.String(); err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header type", ErrCorrupt)
	}
	switch h.Type {
	case TypeRaw, TypeF64, TypeI64:
	default:
		return sectionHeader{}, fmt.Errorf("%w: section header type %q", ErrCorrupt, h.Type)
	}
	if h.Count, err = r.Uint(); err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header count", ErrCorrupt)
	}
	if h.PayloadLen, err = r.Uint(); err != nil {
		return sectionHeader{}, fmt.Errorf("%w: section header payload len", ErrCorrupt)
	}
	if r.Remaining() != 0 {
		return sectionHeader{}, fmt.Errorf("%w: %d trailing bytes after section header", ErrCorrupt, r.Remaining())
	}
	return h, nil
}

// framedHeader returns the full header page prefix: an 8-byte
// little-endian length followed by the canonical header bytes. The
// result must fit in one page so the payload can start exactly one
// page after the header.
func framedHeader(h sectionHeader) ([]byte, error) {
	enc := h.encode()
	if 8+len(enc) > pageSize {
		return nil, fmt.Errorf("segment: section header for %q exceeds one page", h.Name)
	}
	out := make([]byte, 8, 8+len(enc))
	binary.LittleEndian.PutUint64(out, uint64(len(enc)))
	return append(out, enc...), nil
}

// parseFramedHeader decodes a header page (length prefix + canonical
// bytes, zero padding after).
func parseFramedHeader(page []byte) (sectionHeader, error) {
	if len(page) < 8 {
		return sectionHeader{}, fmt.Errorf("%w: truncated section header page", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(page)
	if n == 0 || n > uint64(len(page)-8) {
		return sectionHeader{}, fmt.Errorf("%w: section header length %d", ErrCorrupt, n)
	}
	return decodeSectionHeader(page[8 : 8+n])
}
