//go:build unix

// Map support for Dir blobs on unix: a read-only shared mapping of the
// whole segment file. Page-aligned section offsets inside the mapping
// then give the 8-byte alignment the []float64 / []int64 alias casts
// in the loader require.

package segment

import (
	"fmt"
	"syscall"
)

// Map maps the whole file read-only. Closing the returned release func
// unmaps; the blob's own Close remains the caller's job.
func (b *fileBlob) Map() ([]byte, func() error, error) {
	if b.size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(b.f.Fd()), 0, int(b.size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: mmap: %v", ErrMapUnsupported, err)
	}
	release := func() error { return syscall.Munmap(data) }
	return data, release, nil
}
