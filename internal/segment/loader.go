// Loader restores a snapshot. Two modes:
//
//   - Copy: every section payload is read, checksum-verified, and
//     decoded into freshly allocated slices. Works on any host.
//   - Map: each segment file is mmap'd read-only once and payloads are
//     aliased in place as []float64 / []int64 — zero copies, restore
//     cost is page faults on first touch. Requires a little-endian
//     host and a mappable backend; checksums are still verified (one
//     streaming read over the mapped bytes, no copy).
//
// Every read cross-checks the in-file section header against the
// manifest entry before trusting the payload, so offset corruption is
// caught structurally and payload corruption cryptographically.

package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"sync"
	"unsafe"
)

// RestoreMode selects how section payloads reach memory.
type RestoreMode int

const (
	// Copy decodes payloads into fresh slices (portable).
	Copy RestoreMode = iota
	// Map aliases payloads inside read-only mmap'd segment files.
	Map
)

func (m RestoreMode) String() string {
	if m == Map {
		return "map"
	}
	return "copy"
}

// hostLittleEndian reports whether in-memory []float64 layout matches
// the on-disk little-endian payload encoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Snapshot is an open snapshot ready for dataset restores. Close it
// when the restored engine is torn down; in Map mode the engine's
// planes alias the mappings, so Close must outlive them.
type Snapshot struct {
	man  *Manifest
	mode RestoreMode
	b    Backend

	mu    sync.Mutex
	files map[string]*openFile
}

type openFile struct {
	blob    Blob
	data    []byte // Map mode only
	release func() error
}

// Open reads and validates the manifest on b. A backend with no
// manifest returns ErrNoSnapshot; Map mode on a big-endian host
// returns ErrMapUnsupported immediately.
func Open(b Backend, mode RestoreMode) (*Snapshot, error) {
	if b == nil {
		return nil, fmt.Errorf("segment: nil backend")
	}
	if mode == Map && !hostLittleEndian {
		return nil, fmt.Errorf("%w: big-endian host", ErrMapUnsupported)
	}
	blob, err := b.Open(ManifestName)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNoSnapshot
		}
		return nil, fmt.Errorf("segment: open manifest: %w", err)
	}
	defer blob.Close()
	raw := make([]byte, blob.Size())
	if _, err := readFullAt(blob, raw, 0); err != nil {
		return nil, fmt.Errorf("%w: manifest read: %v", ErrCorrupt, err)
	}
	man, err := DecodeManifest(raw)
	if err != nil {
		return nil, err
	}
	return &Snapshot{man: man, mode: mode, b: b, files: make(map[string]*openFile)}, nil
}

// Manifest returns the validated manifest (read-only).
func (s *Snapshot) Manifest() *Manifest { return s.man }

// Mode returns the restore mode the snapshot was opened with.
func (s *Snapshot) Mode() RestoreMode { return s.mode }

// Close releases every mapping and file handle. Idempotent. In Map
// mode nothing restored from this snapshot may be touched afterwards.
func (s *Snapshot) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, of := range s.files {
		if of.release != nil {
			if err := of.release(); err != nil && first == nil {
				first = err
			}
		}
		if err := of.blob.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, name)
	}
	return first
}

// Dataset opens a reader over one dataset's sections. Names are
// scoped per kind, so the lookup key is the pair.
func (s *Snapshot) Dataset(kind, name string) (*DatasetReader, error) {
	for i := range s.man.Datasets {
		if s.man.Datasets[i].Name == name && s.man.Datasets[i].Kind == kind {
			return &DatasetReader{s: s, ds: &s.man.Datasets[i]}, nil
		}
	}
	return nil, fmt.Errorf("%w: dataset %s %q not in manifest", ErrCorrupt, kind, name)
}

// file opens (and in Map mode, maps) a segment file once.
func (s *Snapshot) file(name string) (*openFile, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if of, ok := s.files[name]; ok {
		return of, nil
	}
	blob, err := s.b.Open(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: segment file %q missing", ErrCorrupt, name)
		}
		return nil, fmt.Errorf("segment: open %s: %w", name, err)
	}
	of := &openFile{blob: blob}
	if s.mode == Map {
		mb, ok := blob.(mappable)
		if !ok {
			blob.Close()
			return nil, fmt.Errorf("%w: backend cannot map", ErrMapUnsupported)
		}
		data, release, err := mb.Map()
		if err != nil {
			blob.Close()
			return nil, err
		}
		of.data, of.release = data, release
	}
	s.files[name] = of
	return of, nil
}

// DatasetReader reads one dataset's sections.
type DatasetReader struct {
	s  *Snapshot
	ds *Dataset
}

// Kind returns the dataset's kind tag.
func (dr *DatasetReader) Kind() string { return dr.ds.Kind }

// Rows returns the dataset's logical row count.
func (dr *DatasetReader) Rows() int { return dr.ds.Rows }

// section verifies framing and checksum, returning the payload bytes:
// an alias into the mapping in Map mode, a fresh buffer in Copy mode.
func (dr *DatasetReader) section(name, wantType string) ([]byte, *Section, error) {
	var sec *Section
	for i := range dr.ds.Sections {
		if dr.ds.Sections[i].Name == name {
			sec = &dr.ds.Sections[i]
			break
		}
	}
	if sec == nil {
		return nil, nil, fmt.Errorf("%w: dataset %q: section %q missing", ErrCorrupt, dr.ds.Name, name)
	}
	if sec.Type != wantType {
		return nil, nil, fmt.Errorf("%w: dataset %q: section %q is %s, want %s", ErrCorrupt, dr.ds.Name, name, sec.Type, wantType)
	}
	of, err := dr.s.file(dr.ds.File)
	if err != nil {
		return nil, nil, err
	}
	if sec.Offset+sec.Len > of.blob.Size() {
		return nil, nil, fmt.Errorf("%w: dataset %q: section %q extends past file end", ErrCorrupt, dr.ds.Name, name)
	}

	// Framing header lives in the page before the payload; cross-check
	// it against the manifest entry before trusting payload bytes.
	var hdrPage []byte
	if dr.s.mode == Map {
		hdrPage = of.data[sec.Offset-pageSize : sec.Offset]
	} else {
		hdrPage = make([]byte, pageSize)
		if _, err := readFullAt(of.blob, hdrPage, sec.Offset-pageSize); err != nil {
			return nil, nil, fmt.Errorf("%w: dataset %q: section %q header read: %v", ErrCorrupt, dr.ds.Name, name, err)
		}
	}
	hdr, err := parseFramedHeader(hdrPage)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset %q section %q: %w", dr.ds.Name, name, err)
	}
	if hdr.Name != sec.Name || hdr.Type != sec.Type ||
		hdr.Count != uint64(sec.Count) || hdr.PayloadLen != uint64(sec.Len) {
		return nil, nil, fmt.Errorf("%w: dataset %q: section %q header disagrees with manifest", ErrCorrupt, dr.ds.Name, name)
	}

	var payload []byte
	if dr.s.mode == Map {
		payload = of.data[sec.Offset : sec.Offset+sec.Len]
	} else {
		payload = make([]byte, sec.Len)
		if _, err := readFullAt(of.blob, payload, sec.Offset); err != nil {
			return nil, nil, fmt.Errorf("%w: dataset %q: section %q payload read: %v", ErrCorrupt, dr.ds.Name, name, err)
		}
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sec.SHA256 {
		return nil, nil, fmt.Errorf("%w: dataset %q: section %q", ErrChecksum, dr.ds.Name, name)
	}
	return payload, sec, nil
}

// Raw returns an opaque section's bytes (aliased in Map mode).
func (dr *DatasetReader) Raw(name string) ([]byte, error) {
	payload, _, err := dr.section(name, TypeRaw)
	return payload, err
}

// Floats returns a float64 column: decoded in Copy mode, aliased
// zero-copy in Map mode.
func (dr *DatasetReader) Floats(name string) ([]float64, error) {
	payload, sec, err := dr.section(name, TypeF64)
	if err != nil {
		return nil, err
	}
	if sec.Count == 0 {
		return nil, nil
	}
	if dr.s.mode == Map {
		// Page-aligned offset in a page-aligned mapping → 8-byte
		// aligned base; safe to reinterpret on a little-endian host.
		return unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), sec.Count), nil
	}
	out := make([]float64, sec.Count)
	for i := range out {
		out[i] = math.Float64frombits(leUint64(payload[i*8:]))
	}
	return out, nil
}

// Ints returns an int64 column: decoded in Copy mode, aliased
// zero-copy in Map mode.
func (dr *DatasetReader) Ints(name string) ([]int64, error) {
	payload, sec, err := dr.section(name, TypeI64)
	if err != nil {
		return nil, err
	}
	if sec.Count == 0 {
		return nil, nil
	}
	if dr.s.mode == Map {
		return unsafe.Slice((*int64)(unsafe.Pointer(&payload[0])), sec.Count), nil
	}
	out := make([]int64, sec.Count)
	for i := range out {
		out[i] = int64(leUint64(payload[i*8:]))
	}
	return out, nil
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// readFullAt reads exactly len(p) bytes at off.
func readFullAt(r io.ReaderAt, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := r.ReadAt(p, off)
	if n == len(p) {
		return n, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
