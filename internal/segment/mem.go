// Mem is an in-memory Backend: a flat map of file name → bytes. It is
// the transfer staging area for cluster resync — a donor streams
// snapshot sections over the wire and the receiver accumulates them
// here before installing — and a convenient backend for tests. Files
// are write-once-replace: WriteFile and Put swap the whole value under
// the lock, so a Blob handed out by Open keeps reading the bytes it
// was opened on even if the name is later replaced.

package segment

import (
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"sync"
)

// Mem is an in-memory Backend.
type Mem struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{files: make(map[string][]byte)} }

// WriteFile buffers write's output and installs it under name.
func (m *Mem) WriteFile(name string, write func(io.Writer) error) error {
	if err := validateFileName(name); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	m.mu.Lock()
	m.files[name] = buf.Bytes()
	m.mu.Unlock()
	return nil
}

// Put installs data under name verbatim (the slice is retained, not
// copied — the wire-transfer path hands over ownership of received
// chunks).
func (m *Mem) Put(name string, data []byte) error {
	if err := validateFileName(name); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	m.mu.Lock()
	m.files[name] = data
	m.mu.Unlock()
	return nil
}

// Open opens name for reading at its current content.
func (m *Mem) Open(name string) (Blob, error) {
	if err := validateFileName(name); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	m.mu.Lock()
	data, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("segment: %s: %w", name, fs.ErrNotExist)
	}
	return &memBlob{r: bytes.NewReader(data), size: int64(len(data))}, nil
}

// Size reports the backend's total byte count across files.
func (m *Mem) Size() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, data := range m.files {
		total += int64(len(data))
	}
	return total
}

type memBlob struct {
	r    *bytes.Reader
	size int64
}

func (b *memBlob) ReadAt(p []byte, off int64) (int, error) { return b.r.ReadAt(p, off) }
func (b *memBlob) Close() error                            { return nil }
func (b *memBlob) Size() int64                             { return b.size }
