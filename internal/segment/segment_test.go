package segment

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture writes a two-dataset snapshot covering all three
// section types, including empty and page-boundary-sized payloads.
func writeFixture(t *testing.T, dir string) (*Dir, []float64, []int64, []byte) {
	t.Helper()
	b, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	floats := make([]float64, 512) // exactly one page of f64
	for i := range floats {
		floats[i] = float64(i) * 1.5
	}
	floats[0] = math.Inf(-1)
	floats[1] = math.NaN()
	ints := []int64{-1, 0, 1, 1 << 62, -(1 << 62)}
	raw := []byte("gob-ish opaque metadata")

	w, err := NewWriter(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := w.Dataset("alpha", "tuples", 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := errors.Join(
		dw.Raw("meta", raw),
		dw.Floats("flat", floats),
		dw.Ints("ids", ints),
		dw.Floats("empty", nil),
	); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	dw2, err := w.Dataset("beta", "series", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw2.Ints("events", ints); err != nil {
		t.Fatal(err)
	}
	if err := dw2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return b, floats, ints, raw
}

func TestRoundTripCopyAndMap(t *testing.T) {
	dir := t.TempDir()
	b, floats, ints, raw := writeFixture(t, dir)

	for _, mode := range []RestoreMode{Copy, Map} {
		snap, err := Open(b, mode)
		if err != nil {
			if mode == Map && errors.Is(err, ErrMapUnsupported) {
				t.Skipf("map unsupported: %v", err)
			}
			t.Fatalf("open (%v): %v", mode, err)
		}
		if snap.Manifest().Shards != 3 {
			t.Fatalf("shards = %d", snap.Manifest().Shards)
		}
		dr, err := snap.Dataset("tuples", "alpha")
		if err != nil {
			t.Fatal(err)
		}
		if dr.Kind() != "tuples" || dr.Rows() != 512 {
			t.Fatalf("kind/rows = %s/%d", dr.Kind(), dr.Rows())
		}
		gotRaw, err := dr.Raw("meta")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotRaw, raw) {
			t.Fatalf("mode %v: raw mismatch", mode)
		}
		gotF, err := dr.Floats("flat")
		if err != nil {
			t.Fatal(err)
		}
		if len(gotF) != len(floats) {
			t.Fatalf("mode %v: %d floats", mode, len(gotF))
		}
		for i := range floats {
			if math.Float64bits(gotF[i]) != math.Float64bits(floats[i]) {
				t.Fatalf("mode %v: float %d: %x vs %x", mode, i,
					math.Float64bits(gotF[i]), math.Float64bits(floats[i]))
			}
		}
		gotI, err := dr.Ints("ids")
		if err != nil {
			t.Fatal(err)
		}
		for i := range ints {
			if gotI[i] != ints[i] {
				t.Fatalf("mode %v: int %d: %d vs %d", mode, i, gotI[i], ints[i])
			}
		}
		gotE, err := dr.Floats("empty")
		if err != nil || len(gotE) != 0 {
			t.Fatalf("mode %v: empty section: %v len %d", mode, err, len(gotE))
		}
		// Type confusion is corruption, not coercion.
		if _, err := dr.Floats("ids"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mode %v: float read of i64 section: %v", mode, err)
		}
		if _, err := dr.Raw("nope"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("mode %v: missing section: %v", mode, err)
		}
		if err := snap.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSectionsArePageAligned(t *testing.T) {
	dir := t.TempDir()
	b, _, _, _ := writeFixture(t, dir)
	snap, err := Open(b, Copy)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for _, ds := range snap.Manifest().Datasets {
		st, err := os.Stat(filepath.Join(dir, ds.File))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size()%pageSize != 0 {
			t.Fatalf("%s: size %d not page-padded", ds.File, st.Size())
		}
		for _, sec := range ds.Sections {
			if sec.Offset%pageSize != 0 || sec.Offset < pageSize {
				t.Fatalf("%s/%s: offset %d", ds.Name, sec.Name, sec.Offset)
			}
		}
	}
}

func TestChecksumAndHeaderMismatch(t *testing.T) {
	dir := t.TempDir()
	b, _, _, _ := writeFixture(t, dir)
	snap, err := Open(b, Copy)
	if err != nil {
		t.Fatal(err)
	}
	ds := snap.Manifest().Datasets[0]
	sec := ds.Sections[0]
	snap.Close()
	path := filepath.Join(dir, ds.File)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte → checksum error.
	mut := append([]byte(nil), orig...)
	mut[sec.Offset] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = Open(b, Copy)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := snap.Dataset(ds.Kind, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dr.Raw(sec.Name); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: %v, want ErrChecksum", err)
	}
	snap.Close()

	// Flip a header byte → structural corruption (header disagrees
	// with manifest or fails to parse), caught before the checksum.
	mut = append([]byte(nil), orig...)
	mut[sec.Offset-pageSize+8] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = Open(b, Copy)
	if err != nil {
		t.Fatal(err)
	}
	dr, err = snap.Dataset(ds.Kind, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dr.Raw(sec.Name); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
		t.Fatalf("header flip: %v, want ErrCorrupt/ErrVersion", err)
	}
	snap.Close()
}

func TestManifestValidation(t *testing.T) {
	good := corpusManifest()
	enc, err := EncodeManifest(good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(enc); err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		label string
		mut   func(*Manifest)
		want  error
	}{
		{"future version", func(m *Manifest) { m.FormatVersion = 2 }, ErrVersion},
		{"zero shards", func(m *Manifest) { m.Shards = 0 }, ErrCorrupt},
		{"dup dataset", func(m *Manifest) { m.Datasets[1] = m.Datasets[0] }, ErrCorrupt},
		{"path traversal", func(m *Manifest) { m.Datasets[0].File = "../evil" }, ErrCorrupt},
		{"separator in file", func(m *Manifest) { m.Datasets[0].File = "a/b" }, ErrCorrupt},
		{"bad type", func(m *Manifest) { m.Datasets[0].Sections[0].Type = "f32" }, ErrCorrupt},
		{"len/count mismatch", func(m *Manifest) { m.Datasets[0].Sections[1].Len++ }, ErrCorrupt},
		{"unaligned offset", func(m *Manifest) { m.Datasets[0].Sections[1].Offset += 8 }, ErrCorrupt},
		{"zero offset", func(m *Manifest) { m.Datasets[0].Sections[0].Offset = 0 }, ErrCorrupt},
		{"short sha", func(m *Manifest) { m.Datasets[0].Sections[0].SHA256 = "abcd" }, ErrCorrupt},
		{"non-hex sha", func(m *Manifest) {
			m.Datasets[0].Sections[0].SHA256 = strings.Repeat("zz", 32)
		}, ErrCorrupt},
	}
	for _, tc := range mutate {
		m := corpusManifest()
		tc.mut(m)
		enc, jerr := EncodeManifest(m)
		if jerr == nil {
			_, jerr = DecodeManifest(enc)
		}
		if !errors.Is(jerr, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.label, jerr, tc.want)
		}
	}
	// Unknown fields are refused.
	withExtra := bytes.Replace(enc, []byte(`"shards"`), []byte(`"surprise": 1, "shards"`), 1)
	if _, err := DecodeManifest(withExtra); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown field: %v", err)
	}
}

func TestDirAtomicity(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A failed write leaves nothing behind — no final file, no temp.
	boom := errors.New("boom")
	err = b.WriteFile("x.seg", func(w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("write error not propagated: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed write left %d files behind", len(ents))
	}
	// A successful write is visible and readable.
	if err := b.WriteFile("x.seg", func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	blob, err := b.Open("x.seg")
	if err != nil {
		t.Fatal(err)
	}
	if blob.Size() != 5 {
		t.Fatalf("size = %d", blob.Size())
	}
	blob.Close()
	// Missing files surface fs.ErrNotExist (the loader's ErrNoSnapshot
	// probe depends on it); hostile names are refused.
	if _, err := b.Open("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	for _, bad := range []string{"../evil", "a/b", "", ".."} {
		if err := b.WriteFile(bad, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
		if _, err := b.Open(bad); err == nil {
			t.Fatalf("open %q accepted", bad)
		}
	}
}
