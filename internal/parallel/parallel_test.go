package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"modelir/internal/topk"
)

func TestTopKValidation(t *testing.T) {
	if _, err := TopK(-1, 1, 1, func(int) (float64, bool, error) { return 0, true, nil }); err == nil {
		t.Fatal("want negative count error")
	}
	if _, err := TopK(5, 1, 1, nil); err == nil {
		t.Fatal("want nil scorer error")
	}
	if _, err := TopK(5, 0, 1, func(int) (float64, bool, error) { return 0, true, nil }); err == nil {
		t.Fatal("want k error")
	}
}

func TestTopKMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10_000)
	for i := range scores {
		scores[i] = float64(rng.Intn(100)) // deliberate ties
	}
	scorer := func(i int) (float64, bool, error) { return scores[i], true, nil }
	want, err := TopK(len(scores), 25, 1, scorer)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 24, 1000} {
		got, err := TopK(len(scores), 25, workers, scorer)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d pos %d: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestTopKSkip(t *testing.T) {
	got, err := TopK(10, 5, 4, func(i int) (float64, bool, error) {
		return float64(i), i%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("len=%d", len(got))
	}
	for _, it := range got {
		if it.ID%2 != 0 {
			t.Fatalf("skipped item %d retained", it.ID)
		}
	}
}

func TestTopKErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := TopK(1000, 5, 8, func(i int) (float64, bool, error) {
		if i == 777 {
			return 0, false, boom
		}
		return float64(i), true, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestTopKZeroItems(t *testing.T) {
	got, err := TopK(0, 5, 4, func(int) (float64, bool, error) { return 0, true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len=%d", len(got))
	}
}

// Property: any worker count yields the exact serial result.
func TestTopKDeterminismProperty(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		workers := int(workersRaw)%32 + 1
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(40))
		}
		scorer := func(i int) (float64, bool, error) { return scores[i], true, nil }
		want := topk.SelectTopK(scores, k)
		got, err := TopK(n, k, workers, scorer)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(1000, 8, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1000 {
		t.Fatalf("ran %d of 1000", count.Load())
	}
	boom := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := ForEach(5, 2, nil); err == nil {
		t.Fatal("want nil fn error")
	}
	if err := ForEach(-1, 2, func(int) error { return nil }); err == nil {
		t.Fatal("want negative count error")
	}
	if err := ForEach(0, 2, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero items must be a no-op")
	}
}

func TestShardTopKValidation(t *testing.T) {
	run := func(s int, sb *topk.Bound) ([]topk.Item, error) { return nil, nil }
	if _, err := ShardTopK(-1, 1, 0, run); err == nil {
		t.Fatal("want negative shards error")
	}
	if _, err := ShardTopK(1, 1, 0, nil); err == nil {
		t.Fatal("want nil runner error")
	}
	if _, err := ShardTopK(1, 0, 0, run); err == nil {
		t.Fatal("want bad capacity error")
	}
	items, err := ShardTopK(0, 3, 0, run)
	if err != nil || len(items) != 0 {
		t.Fatalf("zero shards: items=%v err=%v", items, err)
	}
}

func TestShardTopKMergesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scores := make([]float64, 1000)
	for i := range scores {
		scores[i] = float64(rng.Intn(50)) // ties across shard boundaries
	}
	want := topk.SelectTopK(scores, 13)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		chunk := (len(scores) + shards - 1) / shards
		got, err := ShardTopK(shards, 13, 4, func(s int, sb *topk.Bound) ([]topk.Item, error) {
			lo := s * chunk
			hi := lo + chunk
			if hi > len(scores) {
				hi = len(scores)
			}
			h := topk.MustHeap(13)
			for i := lo; i < hi; i++ {
				h.OfferScore(int64(i), scores[i])
			}
			if tr, ok := h.Threshold(); ok {
				sb.Raise(tr)
			}
			return h.Results(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d items, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("shards=%d pos %d: %+v vs %+v", shards, i, got[i], want[i])
			}
		}
	}
}

func TestShardTopKBoundIsShared(t *testing.T) {
	// Every worker should observe raises published by earlier workers;
	// with 1 worker the shards run in order, so shard 1 must see the
	// floor shard 0 raised.
	sawFloor := false
	_, err := ShardTopK(2, 1, 1, func(s int, sb *topk.Bound) ([]topk.Item, error) {
		if s == 0 {
			sb.Raise(41)
			return []topk.Item{{ID: 0, Score: 41}}, nil
		}
		if sb.Get() == 41 {
			sawFloor = true
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawFloor {
		t.Fatal("shard 1 did not observe shard 0's raised floor")
	}
}

func TestShardTopKErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	if _, err := ShardTopK(4, 2, 2, func(s int, sb *topk.Bound) ([]topk.Item, error) {
		if s == 2 {
			return nil, boom
		}
		return nil, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// ForEachCtx aborts at the next item boundary once the context is
// cancelled, returning the bare ctx.Err().
func TestForEachCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForEachCtx(ctx, 10_000, workers, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 10_000 {
			t.Fatalf("workers=%d: all %d items ran despite cancel", workers, n)
		}
	}
}

// ShardTopKCtx returns ctx.Err() unwrapped when a shard aborts on
// cancellation, and pre-seeds the shared bound with the floor.
func TestShardTopKCtxFloorAndCancel(t *testing.T) {
	// Floor seeding: shards see the floor before any heap fills.
	items, err := ShardTopKCtx(context.Background(), 3, 5, 0, 41.5,
		func(s int, b *topk.Bound) ([]topk.Item, error) {
			if got := b.Get(); got != 41.5 {
				return nil, fmt.Errorf("shard %d saw floor %v", s, got)
			}
			return []topk.Item{{ID: int64(s), Score: 42}}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items", len(items))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancel()
	_, err = ShardTopKCtx(ctx, 4, 5, 0, math.Inf(-1),
		func(s int, b *topk.Bound) ([]topk.Item, error) {
			return nil, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if err != context.Canceled {
		t.Fatalf("context error arrived wrapped: %v", err)
	}
}
