package parallel

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"modelir/internal/topk"
)

func TestTopKValidation(t *testing.T) {
	if _, err := TopK(-1, 1, 1, func(int) (float64, bool, error) { return 0, true, nil }); err == nil {
		t.Fatal("want negative count error")
	}
	if _, err := TopK(5, 1, 1, nil); err == nil {
		t.Fatal("want nil scorer error")
	}
	if _, err := TopK(5, 0, 1, func(int) (float64, bool, error) { return 0, true, nil }); err == nil {
		t.Fatal("want k error")
	}
}

func TestTopKMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10_000)
	for i := range scores {
		scores[i] = float64(rng.Intn(100)) // deliberate ties
	}
	scorer := func(i int) (float64, bool, error) { return scores[i], true, nil }
	want, err := TopK(len(scores), 25, 1, scorer)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 24, 1000} {
		got, err := TopK(len(scores), 25, workers, scorer)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d pos %d: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestTopKSkip(t *testing.T) {
	got, err := TopK(10, 5, 4, func(i int) (float64, bool, error) {
		return float64(i), i%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("len=%d", len(got))
	}
	for _, it := range got {
		if it.ID%2 != 0 {
			t.Fatalf("skipped item %d retained", it.ID)
		}
	}
}

func TestTopKErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := TopK(1000, 5, 8, func(i int) (float64, bool, error) {
		if i == 777 {
			return 0, false, boom
		}
		return float64(i), true, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestTopKZeroItems(t *testing.T) {
	got, err := TopK(0, 5, 4, func(int) (float64, bool, error) { return 0, true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("len=%d", len(got))
	}
}

// Property: any worker count yields the exact serial result.
func TestTopKDeterminismProperty(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		workers := int(workersRaw)%32 + 1
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(40))
		}
		scorer := func(i int) (float64, bool, error) { return scores[i], true, nil }
		want := topk.SelectTopK(scores, k)
		got, err := TopK(n, k, workers, scorer)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	var count atomic.Int64
	if err := ForEach(1000, 8, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1000 {
		t.Fatalf("ran %d of 1000", count.Load())
	}
	boom := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := ForEach(5, 2, nil); err == nil {
		t.Fatal("want nil fn error")
	}
	if err := ForEach(-1, 2, func(int) error { return nil }); err == nil {
		t.Fatal("want negative count error")
	}
	if err := ForEach(0, 2, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero items must be a no-op")
	}
}
