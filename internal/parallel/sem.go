// Weighted admission semaphore for the serving layer: a fixed budget of
// worker units shared by every in-flight request. Callers ask for the
// fan-out width they would like and are granted what the budget can
// spare right now — degrading a request's parallelism instead of
// queueing it behind the full width it asked for. Because every query
// path returns identical results for any worker count (DESIGN.md §2),
// clamping a request's workers is always safe.
package parallel

import (
	"context"
	"errors"
	"sync"
)

// Weighted is a counting semaphore with partial acquisition: AcquireUpTo
// takes as many units as are free (at least one, at most the asked-for
// want), blocking only when the budget is fully committed. Waiters are
// woken FIFO so a steady stream of small requests cannot starve an
// early large one.
type Weighted struct {
	mu      sync.Mutex
	avail   int
	waiters []chan struct{}
}

// NewWeighted returns a semaphore holding `capacity` units.
func NewWeighted(capacity int) (*Weighted, error) {
	if capacity < 1 {
		return nil, errors.New("parallel: semaphore capacity must be >= 1")
	}
	return &Weighted{avail: capacity}, nil
}

// AcquireUpTo blocks until at least one unit is free (or ctx ends),
// then takes min(want, free) units and returns how many it took. A
// want below 1 is treated as 1. The caller must Release exactly the
// returned count.
//
// Fairness: a newcomer never barges past queued waiters (the fast path
// requires an empty queue), and a woken waiter that loses its units to
// scheduling re-queues at the FRONT, so its turn is never lost.
func (w *Weighted) AcquireUpTo(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	woken := false
	for {
		w.mu.Lock()
		if w.avail > 0 && (woken || len(w.waiters) == 0) {
			got := want
			if got > w.avail {
				got = w.avail
			}
			w.avail -= got
			// A multi-unit Release wakes only the head waiter; if units
			// remain after this grab, chain the wakeup onward.
			w.wakeLocked()
			w.mu.Unlock()
			return got, nil
		}
		ch := make(chan struct{})
		if woken {
			// Keep our turn: rejoin at the head, not behind arrivals
			// that queued while we were being scheduled.
			w.waiters = append([]chan struct{}{ch}, w.waiters...)
		} else {
			w.waiters = append(w.waiters, ch)
		}
		w.mu.Unlock()
		select {
		case <-ch:
			woken = true
		case <-ctx.Done():
			w.mu.Lock()
			removed := false
			for i, c := range w.waiters {
				if c == ch {
					w.waiters = append(w.waiters[:i], w.waiters[i+1:]...)
					removed = true
					break
				}
			}
			if !removed {
				// Our wakeup already fired; pass the baton so the
				// signal is not lost on an abandoned waiter.
				w.wakeLocked()
			}
			w.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}

// Release returns n units to the budget and wakes waiters.
func (w *Weighted) Release(n int) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.avail += n
	w.wakeLocked()
	w.mu.Unlock()
}

// wakeLocked signals the head waiter when units are free. Exactly one
// waiter is woken per call: the woken waiter re-checks availability
// itself, and if units remain after its grab, its release (or ours)
// wakes the next.
func (w *Weighted) wakeLocked() {
	if w.avail > 0 && len(w.waiters) > 0 {
		close(w.waiters[0])
		w.waiters = w.waiters[1:]
	}
}
