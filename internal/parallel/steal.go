// Work-stealing fan-out. ForEachCtx used to slice 0..n-1 into one
// static contiguous range per worker, which stranded the pool whenever
// work was skewed: one slow shard (or one heavy request's cells inside
// a batch) pinned its worker while the others idled. The multi-worker
// path now runs on bounded per-worker deques of item chunks: each
// worker drains its own deque front to back — visiting its items in
// ascending order, exactly like a LIFO stack seeded in reverse, which
// preserves the in-order guarantee single-worker callers rely on — and
// a worker whose deque empties steals from the BACK of a sibling's
// deque, i.e. the oldest-queued chunk, the one farthest from where the
// victim is currently working, which minimizes contention on the
// victim's hot end.
//
// The deques are bounded by construction and allocation-free on the
// chunk path: a deque is just a [front, back) window over the
// arithmetic chunk numbering (chunk c covers items [c·size,
// min(n, (c+1)·size))), seeded once from the static partition; owner
// pops and steals only shrink the window, and nothing is ever enqueued
// after seeding. Results remain bit-identical: every item still runs
// exactly once; only the assignment of items to workers changes.

package parallel

import "sync"

// stealDeque is one worker's bounded chunk queue: the window
// [front, back) of chunk indices still queued to it. A plain mutex is
// enough — operations move whole chunks, so the lock is taken once per
// chunk, not once per item.
type stealDeque struct {
	mu          sync.Mutex
	front, back int
}

// takeFront takes the owner's next chunk (ascending order).
func (d *stealDeque) takeFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.front >= d.back {
		return 0, false
	}
	c := d.front
	d.front++
	return c, true
}

// takeBack takes the victim's oldest-queued chunk (the back of the
// window, farthest from the owner's current position).
func (d *stealDeque) takeBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.front >= d.back {
		return 0, false
	}
	d.back--
	return d.back, true
}

// drain discards everything still queued — a failing worker's way of
// honoring the "remaining items in that worker's share are skipped"
// contract: chunks it still owns never run (chunks already stolen are
// another worker's share by then).
func (d *stealDeque) drain() {
	d.mu.Lock()
	d.front = d.back
	d.mu.Unlock()
}

// stealChunkSize picks the steal granularity: single items while the
// item count is small relative to the pool (shard fan-outs, batch
// cells), coarser chunks when a caller fans out over many items so the
// per-chunk locking stays amortized.
func stealChunkSize(n, workers int) int {
	if n <= workers*8 {
		return 1
	}
	return (n + workers*8 - 1) / (workers * 8)
}

// forEachSteal is the multi-worker body of ForEachCtx. Contract as
// documented there: fn runs exactly once per item unless an error or
// cancellation intervenes; the first error is reported per worker
// order with context errors preferred.
func forEachSteal(ctxErr func() error, n, workers int, fn func(i int) error, wrap func(i int, err error) error) []error {
	size := stealChunkSize(n, workers)
	nChunks := (n + size - 1) / size

	// Seed each worker's deque with its static share of the chunk
	// numbering.
	deques := make([]stealDeque, workers)
	per := (nChunks + workers - 1) / workers
	for w := 0; w < workers; w++ {
		front := w * per
		back := front + per
		if back > nChunks {
			back = nChunks
		}
		if front > back {
			front = back
		}
		deques[w].front, deques[w].back = front, back
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				chunk, ok := deques[w].takeFront()
				for v := 1; !ok && v < workers; v++ {
					chunk, ok = deques[(w+v)%workers].takeBack()
				}
				if !ok {
					return
				}
				lo := chunk * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if err := ctxErr(); err != nil {
						errs[w] = err
						deques[w].drain()
						return
					}
					if err := fn(i); err != nil {
						errs[w] = wrap(i, err)
						deques[w].drain()
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return errs
}
