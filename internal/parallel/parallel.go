// Package parallel provides deterministic multi-core fan-out for the
// library's scan-shaped workloads: score N items across W workers, merge
// per-shard top-K heaps. Because each shard's heap is deterministic and
// the merge uses the same (score, ID) ordering as a serial scan, the
// result set is bit-identical to the sequential baseline no matter how
// the scheduler interleaves workers — parallelism changes wall-clock
// time only, never answers.
//
// The paper's archives are large enough that even the *indexed* paths
// shard well (per-region FSM runs, per-well SPROC evaluations), and the
// sequential-scan baselines the evaluation compares against benefit
// symmetrically, keeping the reported speedup ratios honest.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"modelir/internal/topk"
)

// Scorer grades item i. Returning keep=false skips the item (it does
// not enter the top-K); returning an error aborts the whole run.
type Scorer func(i int) (score float64, keep bool, err error)

// TopK scores items 0..n-1 with `workers` goroutines (0 = GOMAXPROCS)
// and returns the merged top-K, best first. IDs are the item indices.
func TopK(n, k, workers int, score Scorer) ([]topk.Item, error) {
	if n < 0 {
		return nil, errors.New("parallel: negative item count")
	}
	if score == nil {
		return nil, errors.New("parallel: nil scorer")
	}
	if k < 1 {
		return nil, errors.New("parallel: k must be >= 1")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		h, err := topk.NewHeap(k)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s, keep, err := score(i)
			if err != nil {
				return nil, fmt.Errorf("parallel: item %d: %w", i, err)
			}
			if keep {
				h.OfferScore(int64(i), s)
			}
		}
		return h.Results(), nil
	}

	heaps := make([]*topk.Heap, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			heaps[w] = topk.MustHeap(k)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := topk.MustHeap(k)
			for i := lo; i < hi; i++ {
				s, keep, err := score(i)
				if err != nil {
					errs[w] = fmt.Errorf("parallel: item %d: %w", i, err)
					return
				}
				if keep {
					h.OfferScore(int64(i), s)
				}
			}
			heaps[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := topk.MustHeap(k)
	for _, h := range heaps {
		if h != nil {
			topk.Merge(merged, h)
		}
	}
	return merged.Results(), nil
}

// ShardRunner produces one shard's partial top-K. The shared bound
// carries the highest full-heap threshold published by any shard; a
// runner should Raise it whenever its local heap fills and may prune
// any candidate whose upper bound falls strictly below Get().
type ShardRunner func(shard int, bound *topk.Bound) ([]topk.Item, error)

// ShardTopK evaluates one runner per shard on a pool of `workers`
// goroutines (0 = GOMAXPROCS) and merges the partial top-Ks into the
// global top-K, best first. Shards exchange progressive-screening
// thresholds through a fresh atomic Bound, so a hot shard's results
// prune cold shards' scans mid-flight. Because pruning is strict
// (upper bound < floor), the merged result is exactly the top-K of the
// union no matter how the scheduler interleaves shards.
func ShardTopK(shards, k, workers int, run ShardRunner) ([]topk.Item, error) {
	return ShardTopKCtx(context.Background(), shards, k, workers, math.Inf(-1), run)
}

// ShardTopKCtx is ShardTopK with cooperative cancellation and a seeded
// screening floor. The context is checked between shard dispatches (and
// runners are expected to check it inside their scan loops); once
// ctx.Done() fires, no further shards start, in-flight runners abort at
// their next check, and the first context error is returned. `floor`
// pre-raises the shared bound — pass a minimum acceptable score to
// prune candidates that could never be returned, or -Inf for none.
func ShardTopKCtx(ctx context.Context, shards, k, workers int, floor float64, run ShardRunner) ([]topk.Item, error) {
	bound := topk.NewBound()
	bound.Raise(floor)
	return ShardTopKBoundCtx(ctx, shards, k, workers, bound, run)
}

// ShardTopKBoundCtx is ShardTopKCtx over a caller-supplied bound
// instead of a fresh one. The cluster layer uses it to splice one
// logical query's screening floor across processes: raises published by
// remote shards flow in through the shared bound, and local raises are
// observable to whoever else holds it. The caller owns seeding (a
// MinScore floor, a remote floor already in flight) and must not lower
// or reuse the bound across queries. Determinism is unaffected — the
// bound only ever tightens, and pruning against it stays strict.
func ShardTopKBoundCtx(ctx context.Context, shards, k, workers int, bound *topk.Bound, run ShardRunner) ([]topk.Item, error) {
	if shards < 0 {
		return nil, errors.New("parallel: negative shard count")
	}
	if run == nil {
		return nil, errors.New("parallel: nil shard runner")
	}
	if bound == nil {
		bound = topk.NewBound()
	}
	merged, err := topk.GetHeap(k)
	if err != nil {
		return nil, fmt.Errorf("parallel: %w", err)
	}
	defer topk.PutHeap(merged)
	if shards == 0 {
		return merged.Results(), nil
	}
	partialsP := getPartials(shards)
	defer putPartials(partialsP)
	partials := *partialsP
	err = ForEachCtx(ctx, shards, workers, func(s int) error {
		items, err := run(s, bound)
		if err != nil {
			return err
		}
		partials[s] = items
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, items := range partials {
		topk.MergeItems(merged, items)
	}
	// Publish the merged heap's threshold: the global K-th best over all
	// shards, which can be tighter than any single shard's raise. The
	// local scan is already done, but a caller-held bound may be feeding
	// a concurrent consumer (the cluster layer piggybacks it to peers).
	if t, ok := merged.Threshold(); ok {
		bound.Raise(t)
	}
	return merged.Results(), nil
}

// partialsPool recycles the per-shard partial-result table across
// requests; entries are nilled on reuse so a recycled table never pins
// a previous request's items.
var partialsPool sync.Pool

func getPartials(n int) *[][]topk.Item {
	if v, ok := partialsPool.Get().(*[][]topk.Item); ok && cap(*v) >= n {
		s := (*v)[:n]
		for i := range s {
			s[i] = nil
		}
		*v = s
		return v
	}
	s := make([][]topk.Item, n)
	return &s
}

func putPartials(p *[][]topk.Item) {
	s := *p
	for i := range s {
		s[i] = nil
	}
	partialsPool.Put(p)
}

// ForEach runs fn over 0..n-1 with `workers` goroutines (0 = GOMAXPROCS)
// and returns the first error encountered. The failing worker stops
// and discards the chunks still queued to it; items another worker
// already stole or is running complete normally (work-stealing moves
// ownership, see steal.go).
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: the context is
// checked before every item, so a cancelled context stops each worker
// at its next item boundary. Context errors are returned unwrapped
// (ctx.Err() itself), so callers can compare with errors.Is without
// peeling the per-item annotation other failures carry.
//
// Scheduling is work-stealing (steal.go): items are partitioned into
// bounded per-worker chunk deques, and a worker that drains its own
// deque steals the oldest chunk from a sibling, so a skewed item (one
// slow shard, one heavy batch cell) no longer strands the rest of the
// pool. With one worker items run in ascending order, exactly as
// before; with many, only the item→worker assignment changes — results
// are scheduling-invariant by the package's determinism contract.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n < 0 {
		return errors.New("parallel: negative item count")
	}
	if fn == nil {
		return errors.New("parallel: nil function")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	wrap := func(i int, err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return ctxErr
		}
		return fmt.Errorf("parallel: item %d: %w", i, err)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return wrap(i, err)
			}
		}
		return nil
	}
	errs := forEachSteal(ctx.Err, n, workers, fn, wrap)
	// Prefer reporting the context error when cancellation is the cause:
	// several workers may fail at once, and the ctx error is the one the
	// caller acted on.
	if ctxErr := ctx.Err(); ctxErr != nil {
		for _, err := range errs {
			if err != nil && errors.Is(err, ctxErr) {
				return ctxErr
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
