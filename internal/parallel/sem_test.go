package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted(0); err == nil {
		t.Fatal("capacity 0: want error")
	}
	if _, err := NewWeighted(-3); err == nil {
		t.Fatal("negative capacity: want error")
	}
}

func TestWeightedPartialAcquisition(t *testing.T) {
	w, err := NewWeighted(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	got, err := w.AcquireUpTo(ctx, 3)
	if err != nil || got != 3 {
		t.Fatalf("first acquire: got %d, %v; want 3, nil", got, err)
	}
	// Only one unit left: a want of 8 degrades to 1 instead of blocking.
	got, err = w.AcquireUpTo(ctx, 8)
	if err != nil || got != 1 {
		t.Fatalf("degraded acquire: got %d, %v; want 1, nil", got, err)
	}
	// Want below 1 is treated as 1.
	w.Release(1)
	got, err = w.AcquireUpTo(ctx, 0)
	if err != nil || got != 1 {
		t.Fatalf("zero-want acquire: got %d, %v; want 1, nil", got, err)
	}
	w.Release(4)
}

func TestWeightedBlocksAtZeroAndWakes(t *testing.T) {
	w, err := NewWeighted(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got, _ := w.AcquireUpTo(ctx, 2); got != 2 {
		t.Fatalf("drain: got %d", got)
	}

	acquired := make(chan int, 1)
	go func() {
		got, err := w.AcquireUpTo(ctx, 2)
		if err != nil {
			acquired <- -1
			return
		}
		acquired <- got
	}()
	select {
	case got := <-acquired:
		t.Fatalf("acquire at zero returned %d before release", got)
	case <-time.After(50 * time.Millisecond):
	}
	w.Release(1)
	select {
	case got := <-acquired:
		if got != 1 {
			t.Fatalf("woken acquire got %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after release")
	}
	w.Release(1)
}

func TestWeightedAcquireCancelled(t *testing.T) {
	w, err := NewWeighted(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w.AcquireUpTo(context.Background(), 1); got != 1 {
		t.Fatal("drain failed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := w.AcquireUpTo(ctx, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The abandoned waiter must not eat the next wakeup.
	w.Release(1)
	if got, err := w.AcquireUpTo(context.Background(), 1); err != nil || got != 1 {
		t.Fatalf("post-cancel acquire: got %d, %v", got, err)
	}
	w.Release(1)
}

// TestWeightedStress hammers the semaphore from many goroutines and
// checks the invariant that grants in flight never exceed capacity.
func TestWeightedStress(t *testing.T) {
	const capacity = 7
	w, err := NewWeighted(capacity)
	if err != nil {
		t.Fatal(err)
	}
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := w.AcquireUpTo(ctx, 1+(g+i)%5)
				if err != nil {
					t.Error(err)
					return
				}
				cur := inFlight.Add(int64(got))
				for {
					m := maxSeen.Load()
					if cur <= m || maxSeen.CompareAndSwap(m, cur) {
						break
					}
				}
				inFlight.Add(int64(-got))
				w.Release(got)
			}
		}(g)
	}
	wg.Wait()
	if m := maxSeen.Load(); m > capacity {
		t.Fatalf("in-flight grants peaked at %d, capacity %d", m, capacity)
	}
	// All units must be back: a full acquire succeeds immediately.
	got, err := w.AcquireUpTo(ctx, capacity)
	if err != nil || got != capacity {
		t.Fatalf("final acquire: got %d, %v; want %d", got, err, capacity)
	}
}

// waitForWaiters spins until n waiters are queued (in-package peek).
func waitForWaiters(t *testing.T, w *Weighted, n int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		w.mu.Lock()
		q := len(w.waiters)
		w.mu.Unlock()
		if q >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d queued waiters", n)
}

// TestWeightedFIFOOrder pins the no-starvation contract: waiters are
// granted in arrival order, and a newcomer cannot barge past a queue.
func TestWeightedFIFOOrder(t *testing.T) {
	w, err := NewWeighted(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if got, _ := w.AcquireUpTo(ctx, 1); got != 1 {
		t.Fatal("drain failed")
	}
	order := make(chan string, 2)
	go func() {
		if _, err := w.AcquireUpTo(ctx, 1); err == nil {
			order <- "B"
			w.Release(1)
		}
	}()
	waitForWaiters(t, w, 1)
	go func() {
		if _, err := w.AcquireUpTo(ctx, 1); err == nil {
			order <- "C"
			w.Release(1)
		}
	}()
	waitForWaiters(t, w, 2)
	w.Release(1)
	if first := <-order; first != "B" {
		t.Fatalf("grant order started with %q, want B (FIFO)", first)
	}
	if second := <-order; second != "C" {
		t.Fatalf("second grant %q, want C", second)
	}
	// All units returned.
	if got, err := w.AcquireUpTo(ctx, 1); err != nil || got != 1 {
		t.Fatalf("final acquire: %d, %v", got, err)
	}
	w.Release(1)
}
