package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"modelir/internal/topk"
)

// scoreSpec builds a BatchSpec over a synthetic dataset: shard s yields
// items with IDs s*stride..s*stride+perShard-1 scored by score(id).
func scoreSpec(shards, k, perShard int, score func(id int64) float64) BatchSpec {
	return BatchSpec{
		Shards: shards,
		K:      k,
		Floor:  math.Inf(-1),
		Run: func(shard int, bound *topk.Bound) ([]topk.Item, error) {
			h := topk.MustHeap(k)
			for i := 0; i < perShard; i++ {
				id := int64(shard*perShard + i)
				h.OfferScore(id, score(id))
			}
			return h.Results(), nil
		},
	}
}

// TestBatchMatchesSolo pins that a batched spec returns exactly what
// its solo ShardTopKCtx run returns, across uneven shard counts and a
// shared pool far narrower than the cell count.
func TestBatchMatchesSolo(t *testing.T) {
	ctx := context.Background()
	score1 := func(id int64) float64 { return math.Sin(float64(id)) * 100 }
	score2 := func(id int64) float64 { return float64(id % 97) }
	score3 := func(id int64) float64 { return -float64(id) }
	specs := []BatchSpec{
		scoreSpec(1, 5, 40, score1),
		scoreSpec(4, 3, 25, score2),
		scoreSpec(7, 10, 13, score3),
	}
	for _, workers := range []int{1, 2, 8} {
		got, errs := BatchShardTopKCtx(ctx, workers, specs)
		for i, sp := range specs {
			if errs[i] != nil {
				t.Fatalf("workers=%d spec %d: %v", workers, i, errs[i])
			}
			want, err := ShardTopKCtx(ctx, sp.Shards, sp.K, workers, sp.Floor, sp.Run)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[i]) != len(want) {
				t.Fatalf("workers=%d spec %d: %d vs %d items", workers, i, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers=%d spec %d pos %d: %+v vs %+v", workers, i, j, got[i][j], want[j])
				}
			}
		}
	}
}

// TestBatchErrorIsolation pins that one spec's failure does not poison
// its batchmates.
func TestBatchErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	specs := []BatchSpec{
		scoreSpec(3, 4, 10, func(id int64) float64 { return float64(id) }),
		{
			Shards: 3, K: 4, Floor: math.Inf(-1),
			Run: func(shard int, _ *topk.Bound) ([]topk.Item, error) {
				if shard == 1 {
					return nil, boom
				}
				return nil, nil
			},
		},
		scoreSpec(2, 2, 6, func(id int64) float64 { return float64(-id) }),
	}
	results, errs := BatchShardTopKCtx(context.Background(), 2, specs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy specs errored: %v, %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], boom) {
		t.Fatalf("failing spec: got %v, want boom", errs[1])
	}
	if results[1] != nil {
		t.Fatalf("failing spec returned items: %v", results[1])
	}
	if len(results[0]) != 4 || len(results[2]) != 2 {
		t.Fatalf("healthy results truncated: %d, %d", len(results[0]), len(results[2]))
	}
}

// TestBatchSpecValidation pins per-spec construction errors.
func TestBatchSpecValidation(t *testing.T) {
	specs := []BatchSpec{
		{Shards: 1, K: 0, Run: func(int, *topk.Bound) ([]topk.Item, error) { return nil, nil }},
		{Shards: -1, K: 1, Run: func(int, *topk.Bound) ([]topk.Item, error) { return nil, nil }},
		{Shards: 1, K: 1, Run: nil},
		scoreSpec(2, 1, 3, func(id int64) float64 { return float64(id) }),
	}
	results, errs := BatchShardTopKCtx(context.Background(), 2, specs)
	for i := 0; i < 3; i++ {
		if errs[i] == nil {
			t.Fatalf("spec %d: want validation error", i)
		}
	}
	if errs[3] != nil || len(results[3]) != 1 {
		t.Fatalf("valid spec: %v, %v", errs[3], results[3])
	}
}

// TestBatchCancellation pins that a cancelled context poisons every
// spec with the context error.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	specs := []BatchSpec{
		{
			Shards: 4, K: 2, Floor: math.Inf(-1),
			Run: func(shard int, _ *topk.Bound) ([]topk.Item, error) {
				started <- struct{}{}
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
		scoreSpec(4, 2, 5, func(id int64) float64 { return float64(id) }),
	}
	done := make(chan struct{})
	var errs []error
	go func() {
		defer close(done)
		_, errs = BatchShardTopKCtx(ctx, 2, specs)
	}()
	<-started
	cancel()
	<-done
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("spec %d: got %v, want context.Canceled", i, err)
		}
	}
}

// TestBatchScreeningFloor pins that a spec's floor seeds its own bound
// without leaking into batchmates.
func TestBatchScreeningFloor(t *testing.T) {
	var lowFloorSaw, highFloorSaw float64
	mk := func(saw *float64, floor float64) BatchSpec {
		return BatchSpec{
			Shards: 1, K: 1, Floor: floor,
			Run: func(_ int, bound *topk.Bound) ([]topk.Item, error) {
				*saw = bound.Get()
				h := topk.MustHeap(1)
				h.OfferScore(1, 50)
				return h.Results(), nil
			},
		}
	}
	specs := []BatchSpec{mk(&lowFloorSaw, math.Inf(-1)), mk(&highFloorSaw, 42)}
	_, errs := BatchShardTopKCtx(context.Background(), 2, specs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
	if !math.IsInf(lowFloorSaw, -1) {
		t.Fatalf("low-floor spec saw bound %v, want -Inf", lowFloorSaw)
	}
	if highFloorSaw != 42 {
		t.Fatalf("high-floor spec saw bound %v, want 42", highFloorSaw)
	}
}

func ExampleBatchShardTopKCtx() {
	specs := []BatchSpec{
		scoreSpec(2, 2, 4, func(id int64) float64 { return float64(id) }),
		scoreSpec(2, 1, 4, func(id int64) float64 { return -float64(id) }),
	}
	results, _ := BatchShardTopKCtx(context.Background(), 2, specs)
	fmt.Println(results[0][0].ID, results[1][0].ID)
	// Output: 7 0
}
