package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// spin burns deterministic CPU work (no sleeping, no allocation) so
// scheduling tests and benchmarks measure wall-clock redistribution.
func spin(units int) uint64 {
	x := uint64(88172645463325252)
	for i := 0; i < units*400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

var spinSink atomic.Uint64

// TestStealRunsEveryItemExactlyOnce: the stealing scheduler must cover
// 0..n-1 with no duplicates and no gaps for every pool width and item
// count, including counts that exercise the chunked (coarse) path.
func TestStealRunsEveryItemExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 16} {
			counts := make([]atomic.Int32, n)
			if err := ForEachCtx(context.Background(), n, workers, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: item %d ran %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestStealSingleWorkerInOrder pins the in-order guarantee the shared
// screening bound relies on: with one worker, items run strictly
// ascending. ForEachCtx's sequential fast path covers the public
// surface; forEachSteal is also driven directly at workers=1 so the
// reverse-seeded LIFO deque ordering itself is pinned (a worker must
// ascend through its own share even when the scheduler is the steal
// pool).
func TestStealSingleWorkerInOrder(t *testing.T) {
	for _, n := range []int{5, 64, 300} {
		next := 0
		if err := ForEachCtx(context.Background(), n, 1, func(i int) error {
			if i != next {
				return fmt.Errorf("item %d ran out of order (want %d)", i, next)
			}
			next++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if next != n {
			t.Fatalf("ran %d of %d", next, n)
		}
		// Direct steal-pool path: one worker, no thieves — visits must
		// still ascend.
		next = 0
		errs := forEachSteal(func() error { return nil }, n, 1, func(i int) error {
			if i != next {
				return fmt.Errorf("steal pool: item %d ran out of order (want %d)", i, next)
			}
			next++
			return nil
		}, func(i int, err error) error { return err })
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if next != n {
			t.Fatalf("steal pool ran %d of %d", next, n)
		}
	}
}

// TestStealSkewedWorkIsRedistributed: with a pathologically heavy
// first item and idle siblings, every worker pool must still complete
// all items, and under >= 2 workers the light items must not all be
// executed by the heavy item's worker after it finishes — i.e. someone
// stole them while item 0 was running.
func TestStealSkewedWorkIsRedistributed(t *testing.T) {
	const n = 16
	var mu sync.Mutex
	doneLight := 0
	lightBeforeHeavyDone := 0
	heavyDone := false
	err := ForEachCtx(context.Background(), n, 2, func(i int) error {
		if i == 0 {
			// Heavy cell: wait until every light item has finished —
			// only possible if the other worker stole them all. The
			// iteration bound turns a broken scheduler into a test
			// failure instead of a hang.
			for iter := 0; ; iter++ {
				mu.Lock()
				d := doneLight
				mu.Unlock()
				if d == n-1 {
					break
				}
				if iter > 1_000_000_000 {
					return errors.New("light items never stolen")
				}
				spinSink.Add(spin(1))
			}
			mu.Lock()
			heavyDone = true
			mu.Unlock()
			return nil
		}
		mu.Lock()
		if !heavyDone {
			lightBeforeHeavyDone++
		}
		doneLight++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lightBeforeHeavyDone != n-1 {
		t.Fatalf("only %d of %d light items ran while the heavy cell was in flight", lightBeforeHeavyDone, n-1)
	}
}

// TestStealErrorAndCancelSemantics: the first error is propagated with
// its item annotation, and context cancellation surfaces as the bare
// ctx error exactly as with the static scheduler.
func TestStealErrorAndCancelSemantics(t *testing.T) {
	boom := errors.New("boom")
	err := ForEachCtx(context.Background(), 200, 4, func(i int) error {
		if i == 97 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}

	// A failing worker discards the chunks still queued to it: with one
	// worker (no thieves), nothing after the failing item runs.
	ran0 := 0
	err = ForEachCtx(context.Background(), 100, 1, func(i int) error {
		ran0++
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if ran0 != 11 {
		t.Fatalf("failing worker ran %d items, want 11 (its queued remainder must be dropped)", ran0)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err = ForEachCtx(ctx, 100_000, 4, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() >= 100_000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

// BenchmarkStealSkewedBatch is the scheduler acceptance benchmark: a
// 16-cell batch where cell 0 carries 8x the work of every other cell —
// the shape of a mixed batch with one slow shard. Static assignment
// pins the heavy cell plus half the light cells on one worker; the
// stealing scheduler lets the idle worker take the light cells. On a
// multi-core host the stealing pool wins wall-clock at >= 2 workers
// and matches at 1 (same total work, same order).
func BenchmarkStealSkewedBatch(b *testing.B) {
	const cells = 16
	const heavy = 8
	work := func(i int) error {
		units := 20
		if i == 0 {
			units *= heavy
		}
		spinSink.Add(spin(units))
		return nil
	}
	// staticForEach reproduces the pre-work-stealing scheduler: one
	// contiguous range per worker.
	staticForEach := func(n, workers int) {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					work(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("steal/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ForEachCtx(context.Background(), cells, workers, work); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("static/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				staticForEach(cells, workers)
			}
		})
	}
}
