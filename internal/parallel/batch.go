// Batched shard fan-out: the serving layer groups many compatible
// requests and executes all of their (request, shard) scan cells on one
// shared worker pool, instead of paying a goroutine pool per request.
// Each request keeps its own screening bound and merge heap, so every
// request's result is bit-identical to what its solo ShardTopKCtx run
// would have produced — batching, like sharding, changes wall-clock
// time only.

package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"modelir/internal/topk"
)

// BatchSpec describes one request's shard fan-out inside a batch: its
// shard count, result count, screening-floor seed, and per-shard
// runner. The runner sees the same Bound semantics as in ShardTopKCtx,
// scoped to this spec only — specs never share screening state.
type BatchSpec struct {
	Shards int
	K      int
	Floor  float64
	Run    ShardRunner
}

// BatchShardTopKCtx evaluates every spec's shards on one pool of
// `workers` goroutines (0 = GOMAXPROCS) and merges each spec's partial
// top-Ks independently. Error isolation is per spec: a failing runner
// poisons only its own spec (remaining cells of that spec are skipped,
// its error lands in the returned slice) while other specs run to
// completion. Context cancellation is global — once ctx ends, every
// unfinished spec reports the context error.
//
// The returned slices are parallel to specs: results[i] is spec i's
// merged top-K (nil when errs[i] != nil).
func BatchShardTopKCtx(ctx context.Context, workers int, specs []BatchSpec) ([][]topk.Item, []error) {
	results := make([][]topk.Item, len(specs))
	errs := make([]error, len(specs))

	type cell struct{ spec, shard int }
	var cells []cell
	bounds := make([]*topk.Bound, len(specs))
	partials := make([][][]topk.Item, len(specs))
	merged := make([]*topk.Heap, len(specs))
	failed := make([]atomic.Bool, len(specs))
	for i, sp := range specs {
		if sp.Run == nil {
			errs[i] = errors.New("parallel: nil shard runner")
			continue
		}
		if sp.Shards < 0 {
			errs[i] = errors.New("parallel: negative shard count")
			continue
		}
		h, err := topk.GetHeap(sp.K)
		if err != nil {
			errs[i] = err
			continue
		}
		merged[i] = h
		bounds[i] = topk.NewBound()
		bounds[i].Raise(sp.Floor)
		partials[i] = make([][]topk.Item, sp.Shards)
		for s := 0; s < sp.Shards; s++ {
			cells = append(cells, cell{spec: i, shard: s})
		}
	}

	var errMu sync.Mutex
	poolErr := ForEachCtx(ctx, len(cells), workers, func(ci int) error {
		c := cells[ci]
		if failed[c.spec].Load() {
			return nil
		}
		items, err := specs[c.spec].Run(c.shard, bounds[c.spec])
		if err != nil {
			// Cancellation aborts the whole batch; any other failure is
			// confined to its spec.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				return err
			}
			failed[c.spec].Store(true)
			errMu.Lock()
			if errs[c.spec] == nil {
				errs[c.spec] = err
			}
			errMu.Unlock()
			return nil
		}
		partials[c.spec][c.shard] = items
		return nil
	})

	for i := range specs {
		if merged[i] == nil {
			continue
		}
		if errs[i] == nil && poolErr != nil {
			errs[i] = poolErr
		}
		if errs[i] == nil {
			// Merge in shard order — the same order ShardTopKCtx uses —
			// so batched results match solo runs bit for bit.
			for _, items := range partials[i] {
				topk.MergeItems(merged[i], items)
			}
			results[i] = merged[i].Results()
		}
		topk.PutHeap(merged[i])
	}
	return results, errs
}
