package archive

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"modelir/internal/raster"
	"modelir/internal/synth"
)

func testScene(t *testing.T) *Scene {
	t.Helper()
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 5, W: 96, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildScene("test-scene", sc.Bands, Options{TileSize: 16, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildSceneValidation(t *testing.T) {
	if _, err := BuildScene("x", nil, Options{}); err == nil {
		t.Fatal("want nil scene error")
	}
	mb, _ := raster.Stack([]string{"a"}, raster.MustGrid(8, 8))
	if _, err := BuildScene("x", mb, Options{TileSize: 1}); err == nil {
		t.Fatal("want tile size error")
	}
	if _, err := BuildScene("x", mb, Options{PyramidLevels: -1}); err == nil {
		t.Fatal("want pyramid level error")
	}
	if _, err := BuildScene("x", mb, Options{HistogramBins: 1}); err == nil {
		t.Fatal("want histogram bins error")
	}
}

func TestSceneStructure(t *testing.T) {
	a := testScene(t)
	if a.W != 96 || a.H != 64 || a.NumBands() != 4 {
		t.Fatalf("dims %dx%d bands %d", a.W, a.H, a.NumBands())
	}
	if len(a.Tiles) != 6*4 {
		t.Fatalf("tiles=%d want 24", len(a.Tiles))
	}
	if a.Pyramid().NumLevels() != 3 {
		t.Fatalf("levels=%d", a.Pyramid().NumLevels())
	}
	if _, ok := a.BandIndex("b4"); !ok {
		t.Fatal("b4 missing")
	}
	if _, ok := a.BandIndex("nope"); ok {
		t.Fatal("phantom band")
	}
	f, err := a.Feature(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats.Max < f.Stats.Min {
		t.Fatal("tile stats corrupt")
	}
	if _, err := a.Feature(99, 0); err == nil {
		t.Fatal("want band range error")
	}
	if _, err := a.Feature(0, 999); err == nil {
		t.Fatal("want tile range error")
	}
}

func TestTileFeaturesConsistent(t *testing.T) {
	a := testScene(t)
	// Tile stats must agree with direct computation over the base band.
	g := a.Base().Band(0)
	for ti, tile := range a.Tiles {
		want := g.SubMean(tile)
		got := a.TileFeatures[0][ti].Stats.Mean
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("tile %d mean %v want %v", ti, got, want)
		}
		// Histogram is normalized.
		sum := 0.0
		for _, b := range a.TileFeatures[0][ti].Hist.Bins {
			sum += b
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("tile %d histogram sums to %v", ti, sum)
		}
	}
}

func TestSetTileLabels(t *testing.T) {
	a := testScene(t)
	if err := a.SetTileLabels([]int{1}); err == nil {
		t.Fatal("want length error")
	}
	labels := make([]int, len(a.Tiles))
	labels[3] = 7
	if err := a.SetTileLabels(labels); err != nil {
		t.Fatal(err)
	}
	if a.TileLabels[3] != 7 {
		t.Fatal("labels lost")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	a := testScene(t)
	labels := make([]int, len(a.Tiles))
	for i := range labels {
		labels[i] = i % 3
	}
	if err := a.SetTileLabels(labels); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadScene(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != a.Name || b.W != a.W || b.H != a.H {
		t.Fatal("metadata lost")
	}
	if len(b.Tiles) != len(a.Tiles) || len(b.TileLabels) != len(a.TileLabels) {
		t.Fatal("tiles/labels lost")
	}
	for bi := 0; bi < a.NumBands(); bi++ {
		if !a.Base().Band(bi).Equal(b.Base().Band(bi)) {
			t.Fatalf("band %d data corrupted", bi)
		}
		for ti := range a.Tiles {
			af := a.TileFeatures[bi][ti]
			bf := b.TileFeatures[bi][ti]
			if af.Stats != bf.Stats {
				t.Fatalf("band %d tile %d stats corrupted", bi, ti)
			}
		}
	}
	if b.Pyramid().NumLevels() != a.Pyramid().NumLevels() {
		t.Fatal("pyramid not rebuilt")
	}
}

func TestCorruptStream(t *testing.T) {
	if _, err := ReadScene(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("want decode error")
	}
}

func TestSaveLoad(t *testing.T) {
	a := testScene(t)
	path := filepath.Join(t.TempDir(), "scene.gob")
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != a.Name {
		t.Fatal("round trip via file failed")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("want open error")
	}
}
