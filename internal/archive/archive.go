// Package archive implements the paper's progressive data representation
// (Section 3): "decompose the data in the archive into a progressive data
// representation which consists of multiple abstraction levels (raw data,
// features, semantics and metadata) and multiple resolutions."
//
// A Scene archive stores, per multiband scene:
//
//   - metadata  — band names, dimensions, global per-band statistics;
//   - semantics — an optional per-tile label map (e.g. land-cover class);
//   - features  — per-tile, per-band statistics and histograms;
//   - raw       — the multiband mean/min/max pyramid (multi-resolution).
//
// Archives serialize to a self-describing binary stream (encoding/gob)
// so they can be staged on disk and memory-mapped per query session.
package archive

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"modelir/internal/features"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

// DefaultTileSize is used when Options.TileSize is zero.
const DefaultTileSize = 32

// DefaultPyramidLevels is used when Options.PyramidLevels is zero.
const DefaultPyramidLevels = 5

// DefaultHistogramBins is used when Options.HistogramBins is zero.
const DefaultHistogramBins = 16

// Options controls archive construction.
type Options struct {
	TileSize      int
	PyramidLevels int
	HistogramBins int
	// HistLo/HistHi fix the histogram value range per band; when both are
	// zero the band's own min/max are used.
	HistLo, HistHi float64
}

// TileFeature is the feature-level record for one (tile, band) pair.
type TileFeature struct {
	Stats features.BandStats
	Hist  features.Histogram
}

// Scene is a fully built progressive archive for one multiband scene.
type Scene struct {
	// Metadata level.
	Name      string
	W, H      int
	BandNames []string
	BandStats []features.BandStats // global, per band

	// Feature level: [band][tile].
	Tiles        []raster.Rect
	TileFeatures [][]TileFeature

	// Semantics level (optional): per-tile integer labels.
	TileLabels []int

	// Raw level: multiband pyramid (rebuilt on load; not serialized
	// directly — the base grids are).
	pyr *pyramid.MultibandPyramid

	// base keeps the level-0 bands for serialization. A scene restored
	// from a snapshot (SceneFromParts) leaves it nil and materializes
	// lazily from the pyramid's finest level on first Base call.
	base     *raster.Multiband
	baseOnce sync.Once

	opts Options
}

// BuildScene constructs the archive.
func BuildScene(name string, m *raster.Multiband, opt Options) (*Scene, error) {
	if m == nil {
		return nil, errors.New("archive: nil scene")
	}
	if opt.TileSize == 0 {
		opt.TileSize = DefaultTileSize
	}
	if opt.TileSize < 2 {
		return nil, fmt.Errorf("archive: tile size %d too small", opt.TileSize)
	}
	if opt.PyramidLevels == 0 {
		opt.PyramidLevels = DefaultPyramidLevels
	}
	if opt.PyramidLevels < 1 {
		return nil, errors.New("archive: need >= 1 pyramid level")
	}
	if opt.HistogramBins == 0 {
		opt.HistogramBins = DefaultHistogramBins
	}
	if opt.HistogramBins < 2 {
		return nil, errors.New("archive: need >= 2 histogram bins")
	}

	sc := &Scene{
		Name:      name,
		W:         m.Width(),
		H:         m.Height(),
		BandNames: m.BandNames(),
		base:      m,
		opts:      opt,
	}
	sc.Tiles = raster.TileRect(m.Bounds(), opt.TileSize)
	sc.BandStats = make([]features.BandStats, m.NumBands())
	sc.TileFeatures = make([][]TileFeature, m.NumBands())
	for b := 0; b < m.NumBands(); b++ {
		g := m.Band(b)
		sc.BandStats[b] = features.ComputeBandStats(g, g.Bounds())
		lo, hi := opt.HistLo, opt.HistHi
		if lo == 0 && hi == 0 {
			lo, hi = sc.BandStats[b].Min, sc.BandStats[b].Max
			if hi <= lo {
				hi = lo + 1
			}
		}
		sc.TileFeatures[b] = make([]TileFeature, len(sc.Tiles))
		for ti, tile := range sc.Tiles {
			h, err := features.NewHistogram(g, tile, opt.HistogramBins, lo, hi)
			if err != nil {
				return nil, fmt.Errorf("band %d tile %d: %w", b, ti, err)
			}
			sc.TileFeatures[b][ti] = TileFeature{
				Stats: features.ComputeBandStats(g, tile),
				Hist:  h,
			}
		}
	}
	pyr, err := pyramid.BuildMultiband(m, opt.PyramidLevels)
	if err != nil {
		return nil, err
	}
	sc.pyr = pyr
	return sc, nil
}

// SetTileLabels attaches a semantics-level label per tile.
func (sc *Scene) SetTileLabels(labels []int) error {
	if len(labels) != len(sc.Tiles) {
		return fmt.Errorf("archive: %d labels for %d tiles", len(labels), len(sc.Tiles))
	}
	sc.TileLabels = append([]int(nil), labels...)
	return nil
}

// Pyramid returns the raw-level multiband pyramid.
func (sc *Scene) Pyramid() *pyramid.MultibandPyramid { return sc.pyr }

// Base returns the level-0 multiband scene, materializing it from the
// pyramid's finest level if the scene was restored planes-only. Level
// 0 of a mean pyramid is a verbatim clone of the base bands, so the
// materialized multiband is bit-identical to the built one.
func (sc *Scene) Base() *raster.Multiband {
	sc.baseOnce.Do(func() {
		if sc.base != nil || sc.pyr == nil {
			return
		}
		grids := make([]*raster.Grid, sc.pyr.NumBands())
		for b := range grids {
			grids[b] = sc.pyr.Band(b).Level(0).Mean
		}
		mb, err := raster.Stack(sc.BandNames, grids...)
		if err != nil {
			// SceneFromParts validated band count and geometry, so a
			// failure here is a broken invariant, not bad input.
			panic(fmt.Sprintf("archive: base materialization: %v", err))
		}
		sc.base = mb
	})
	return sc.base
}

// NumBands returns the band count.
func (sc *Scene) NumBands() int { return len(sc.BandNames) }

// BandIndex resolves a band name.
func (sc *Scene) BandIndex(name string) (int, bool) {
	for i, n := range sc.BandNames {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Feature returns the feature record for (band, tile).
func (sc *Scene) Feature(band, tile int) (TileFeature, error) {
	if band < 0 || band >= len(sc.TileFeatures) {
		return TileFeature{}, fmt.Errorf("archive: band %d out of range", band)
	}
	if tile < 0 || tile >= len(sc.Tiles) {
		return TileFeature{}, fmt.Errorf("archive: tile %d out of range", tile)
	}
	return sc.TileFeatures[band][tile], nil
}

// sceneWire is the serialized form.
type sceneWire struct {
	Name      string
	W, H      int
	BandNames []string
	BandStats []features.BandStats
	Tiles     []raster.Rect
	Feats     [][]TileFeature
	Labels    []int
	BandData  [][]float64
	Opts      Options
}

// Encode serializes the archive (metadata, features, semantics and raw
// level-0 bands; pyramids are rebuilt on load, trading CPU for a 2× file
// size reduction).
func (sc *Scene) Encode(w io.Writer) error {
	wire := sceneWire{
		Name:      sc.Name,
		W:         sc.W,
		H:         sc.H,
		BandNames: sc.BandNames,
		BandStats: sc.BandStats,
		Tiles:     sc.Tiles,
		Feats:     sc.TileFeatures,
		Labels:    sc.TileLabels,
		Opts:      sc.opts,
	}
	base := sc.Base() // materializes if the scene was restored planes-only
	wire.BandData = make([][]float64, base.NumBands())
	for b := range wire.BandData {
		wire.BandData[b] = base.Band(b).Data()
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("archive: encode: %w", err)
	}
	return nil
}

// ReadScene deserializes an archive and rebuilds its pyramid.
func ReadScene(r io.Reader) (*Scene, error) {
	var wire sceneWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("archive: decode: %w", err)
	}
	if wire.W <= 0 || wire.H <= 0 || len(wire.BandNames) == 0 {
		return nil, errors.New("archive: corrupt header")
	}
	grids := make([]*raster.Grid, len(wire.BandNames))
	for b := range grids {
		if b >= len(wire.BandData) || len(wire.BandData[b]) != wire.W*wire.H {
			return nil, errors.New("archive: corrupt band data")
		}
		g, err := raster.FromData(wire.W, wire.H, wire.BandData[b])
		if err != nil {
			return nil, err
		}
		grids[b] = g
	}
	mb, err := raster.Stack(wire.BandNames, grids...)
	if err != nil {
		return nil, err
	}
	pyr, err := pyramid.BuildMultiband(mb, wire.Opts.PyramidLevels)
	if err != nil {
		return nil, err
	}
	return &Scene{
		Name:         wire.Name,
		W:            wire.W,
		H:            wire.H,
		BandNames:    wire.BandNames,
		BandStats:    wire.BandStats,
		Tiles:        wire.Tiles,
		TileFeatures: wire.Feats,
		TileLabels:   wire.Labels,
		pyr:          pyr,
		base:         mb,
		opts:         wire.Opts,
	}, nil
}

// Save writes the archive to a file.
func (sc *Scene) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: create %s: %w", path, err)
	}
	defer f.Close()
	if err := sc.Encode(f); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads an archive from a file.
func Load(path string) (*Scene, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archive: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadScene(f)
}
