package archive

import (
	"errors"
	"fmt"

	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

// Wavelet-domain storage, modelling reference [3] ("Adaptive storage and
// retrieval of large compressed images"): bands are kept as Haar
// decompositions so a client can stream a coarse preview first and
// refine it level by level, paying only for the subbands it consumes —
// the transmission-side counterpart of the pyramid's compute-side
// progressiveness.

// WaveletScene is the Haar-encoded form of a scene's bands.
type WaveletScene struct {
	names  []string
	haars  []*pyramid.Haar
	w, h   int // original (pre-padding) dimensions
	levels int
}

// EncodeWavelet Haar-encodes every band of the scene with the given
// number of levels, padding to dyadic dimensions as needed.
func EncodeWavelet(sc *Scene, levels int) (*WaveletScene, error) {
	if sc == nil {
		return nil, errors.New("archive: nil scene")
	}
	if levels < 1 {
		return nil, errors.New("archive: need >= 1 wavelet level")
	}
	out := &WaveletScene{
		names:  append([]string(nil), sc.BandNames...),
		haars:  make([]*pyramid.Haar, sc.NumBands()),
		w:      sc.W,
		h:      sc.H,
		levels: levels,
	}
	for b := 0; b < sc.NumBands(); b++ {
		padded, _, _ := pyramid.PadToDyadic(sc.Base().Band(b), levels)
		h, err := pyramid.HaarDecompose(padded, levels)
		if err != nil {
			return nil, fmt.Errorf("band %d: %w", b, err)
		}
		out.haars[b] = h
	}
	return out, nil
}

// NumLevels returns the decomposition depth.
func (ws *WaveletScene) NumLevels() int { return ws.levels }

// Preview reconstructs band b at the given level: level 0 is the exact
// full-resolution band (cropped back to the original dimensions); level
// k > 0 is the approximation at 1/2^k resolution.
func (ws *WaveletScene) Preview(band, level int) (*raster.Grid, error) {
	if band < 0 || band >= len(ws.haars) {
		return nil, fmt.Errorf("archive: band %d out of range", band)
	}
	if level < 0 || level > ws.levels {
		return nil, fmt.Errorf("archive: level %d out of [0,%d]", level, ws.levels)
	}
	g := ws.haars[band].ReconstructTo(level)
	// Crop padding back off at full resolution; coarse levels keep the
	// padded extent (the preview consumer scales anyway).
	if level == 0 && (g.Width() != ws.w || g.Height() != ws.h) {
		out := raster.MustGrid(ws.w, ws.h)
		for y := 0; y < ws.h; y++ {
			copy(out.Row(y), g.Row(y)[:ws.w])
		}
		return out, nil
	}
	return g, nil
}

// CoefficientsAtLevel returns how many coefficients a client must fetch
// to render the preview at `level` (approximation plus all detail
// subbands coarser than `level`), per band. Level ws.levels = just the
// approximation; level 0 = everything.
func (ws *WaveletScene) CoefficientsAtLevel(level int) (int, error) {
	if level < 0 || level > ws.levels {
		return 0, fmt.Errorf("archive: level %d out of [0,%d]", level, ws.levels)
	}
	h := ws.haars[0]
	n := h.Approx.Len()
	for l := ws.levels - 1; l >= level; l-- {
		d := h.Level(l)
		n += d.LH.Len() + d.HL.Len() + d.HH.Len()
	}
	return n, nil
}

// DetailEnergyProfile returns the per-level detail energy of band b
// (finest level first) — the signal a progressive decoder uses to stop
// refining visually flat regions.
func (ws *WaveletScene) DetailEnergyProfile(band int) ([]float64, error) {
	if band < 0 || band >= len(ws.haars) {
		return nil, fmt.Errorf("archive: band %d out of range", band)
	}
	return ws.haars[band].DetailEnergy(), nil
}
