// Snapshot support: a Scene's raw level (the pyramid planes) is
// serialized as float sections by internal/segment, so the snapshot
// stores only the metadata/feature/semantics levels here — the same
// gob wire shape Encode uses, minus BandData — and SceneFromParts
// marries decoded metadata to a restored planes-backed pyramid without
// re-running BuildScene (no stats, histograms, or pyramid rebuild).

package archive

import (
	"encoding/gob"
	"fmt"
	"io"

	"modelir/internal/pyramid"
)

// EncodeMeta serializes the archive's metadata, feature and semantics
// levels (everything except the raw bands and pyramid).
func (sc *Scene) EncodeMeta(w io.Writer) error {
	wire := sceneWire{
		Name:      sc.Name,
		W:         sc.W,
		H:         sc.H,
		BandNames: sc.BandNames,
		BandStats: sc.BandStats,
		Tiles:     sc.Tiles,
		Feats:     sc.TileFeatures,
		Labels:    sc.TileLabels,
		Opts:      sc.opts,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("archive: encode meta: %w", err)
	}
	return nil
}

// SceneFromParts decodes metadata written by EncodeMeta and attaches
// the restored pyramid. The base multiband is left unmaterialized (see
// Base); geometry and band count are cross-checked so a mismatched
// pyramid is refused here rather than failing mid-query.
func SceneFromParts(r io.Reader, pyr *pyramid.MultibandPyramid) (*Scene, error) {
	var wire sceneWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("archive: decode meta: %w", err)
	}
	if wire.W <= 0 || wire.H <= 0 || len(wire.BandNames) == 0 {
		return nil, fmt.Errorf("archive: corrupt meta header")
	}
	if pyr == nil {
		return nil, fmt.Errorf("archive: nil pyramid")
	}
	if pyr.NumBands() != len(wire.BandNames) {
		return nil, fmt.Errorf("archive: pyramid has %d bands, meta %d", pyr.NumBands(), len(wire.BandNames))
	}
	if fl := pyr.Flat(0); fl.W != wire.W || fl.H != wire.H {
		return nil, fmt.Errorf("archive: pyramid base %dx%d, meta %dx%d", fl.W, fl.H, wire.W, wire.H)
	}
	if len(wire.Feats) != len(wire.BandNames) {
		return nil, fmt.Errorf("archive: %d feature bands for %d bands", len(wire.Feats), len(wire.BandNames))
	}
	for b := range wire.Feats {
		if len(wire.Feats[b]) != len(wire.Tiles) {
			return nil, fmt.Errorf("archive: band %d has %d tile features for %d tiles", b, len(wire.Feats[b]), len(wire.Tiles))
		}
	}
	return &Scene{
		Name:         wire.Name,
		W:            wire.W,
		H:            wire.H,
		BandNames:    wire.BandNames,
		BandStats:    wire.BandStats,
		Tiles:        wire.Tiles,
		TileFeatures: wire.Feats,
		TileLabels:   wire.Labels,
		pyr:          pyr,
		opts:         wire.Opts,
	}, nil
}
