package archive

import (
	"math"
	"testing"

	"modelir/internal/synth"
)

func waveletScene(t *testing.T) (*Scene, *WaveletScene) {
	t.Helper()
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 15, W: 100, H: 60})
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildScene("w", sc.Bands, Options{TileSize: 16, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := EncodeWavelet(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	return a, ws
}

func TestEncodeWaveletValidation(t *testing.T) {
	if _, err := EncodeWavelet(nil, 2); err == nil {
		t.Fatal("want nil scene error")
	}
	a, _ := waveletScene(t)
	if _, err := EncodeWavelet(a, 0); err == nil {
		t.Fatal("want level error")
	}
}

func TestPreviewLevel0Exact(t *testing.T) {
	a, ws := waveletScene(t)
	if ws.NumLevels() != 3 {
		t.Fatalf("levels=%d", ws.NumLevels())
	}
	for b := 0; b < a.NumBands(); b++ {
		full, err := ws.Preview(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		orig := a.Base().Band(b)
		if full.Width() != orig.Width() || full.Height() != orig.Height() {
			t.Fatalf("band %d preview dims %dx%d", b, full.Width(), full.Height())
		}
		for i, v := range orig.Data() {
			if math.Abs(v-full.Data()[i]) > 1e-9 {
				t.Fatalf("band %d sample %d: %v vs %v", b, i, v, full.Data()[i])
			}
		}
	}
}

func TestPreviewCoarseLevels(t *testing.T) {
	_, ws := waveletScene(t)
	// Padded dims: 104x64 (divisible by 8). Level 2 preview: 26x16.
	p2, err := ws.Preview(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Width() != 26 || p2.Height() != 16 {
		t.Fatalf("level-2 preview %dx%d", p2.Width(), p2.Height())
	}
	if _, err := ws.Preview(99, 0); err == nil {
		t.Fatal("want band range error")
	}
	if _, err := ws.Preview(0, 9); err == nil {
		t.Fatal("want level range error")
	}
}

func TestCoefficientsAtLevelMonotone(t *testing.T) {
	_, ws := waveletScene(t)
	prev := -1
	for level := ws.NumLevels(); level >= 0; level-- {
		n, err := ws.CoefficientsAtLevel(level)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Fatalf("coefficient count not increasing toward finer levels: %d then %d", prev, n)
		}
		prev = n
	}
	// Full decode needs exactly the padded pixel count.
	full, _ := ws.CoefficientsAtLevel(0)
	if full != 104*64 {
		t.Fatalf("full coefficient count %d want %d", full, 104*64)
	}
	// Coarsest preview needs 64x fewer.
	coarse, _ := ws.CoefficientsAtLevel(ws.NumLevels())
	if coarse*64 != full {
		t.Fatalf("coarse count %d, full %d: want 64x reduction", coarse, full)
	}
	if _, err := ws.CoefficientsAtLevel(-1); err == nil {
		t.Fatal("want range error")
	}
}

func TestDetailEnergyProfile(t *testing.T) {
	_, ws := waveletScene(t)
	prof, err := ws.DetailEnergyProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 3 {
		t.Fatalf("profile length %d", len(prof))
	}
	for i, e := range prof {
		if e < 0 {
			t.Fatalf("negative energy at level %d", i)
		}
	}
	if _, err := ws.DetailEnergyProfile(99); err == nil {
		t.Fatal("want band range error")
	}
}
