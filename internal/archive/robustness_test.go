package archive

import (
	"bytes"
	"math/rand"
	"testing"
)

// Failure injection: a serialized archive corrupted at arbitrary byte
// positions must either fail to decode or decode into a structurally
// valid scene — never panic, never return an inconsistent object.
func TestDecodeCorruptedStreams(t *testing.T) {
	a := testScene(t)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		data := append([]byte(nil), pristine...)
		// Flip a handful of bytes at random positions.
		for i := 0; i < 1+rng.Intn(8); i++ {
			pos := rng.Intn(len(data))
			data[pos] ^= byte(1 + rng.Intn(255))
		}
		sc, err := ReadScene(bytes.NewReader(data))
		if err != nil {
			continue // rejection is the expected common case
		}
		// If it decoded, it must be self-consistent.
		if sc.W <= 0 || sc.H <= 0 {
			t.Fatalf("trial %d: decoded scene with dims %dx%d", trial, sc.W, sc.H)
		}
		if sc.Base() == nil || sc.Pyramid() == nil {
			t.Fatalf("trial %d: decoded scene missing raw level", trial)
		}
		if sc.Base().Width() != sc.W || sc.Base().Height() != sc.H {
			t.Fatalf("trial %d: decoded scene shape mismatch", trial)
		}
	}
}

// Truncated streams at every length must fail cleanly.
func TestDecodeTruncatedStreams(t *testing.T) {
	a := testScene(t)
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		n := int(float64(len(pristine)) * frac)
		if _, err := ReadScene(bytes.NewReader(pristine[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}
