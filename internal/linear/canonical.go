// Canonical byte encodings for cache fingerprinting and, since the
// cluster layer, for shipping models between router and shard-server
// nodes. The serving layer's result cache keys requests by content, so
// every model type a query can embed provides AppendCanonical: a
// deterministic, framed encoding (internal/canon) in which
// semantically different models never produce the same bytes.
// DecodeCanonical is the exact inverse over a bounds-checked
// canon.Reader, validating as strictly as New so a decoded model is
// indistinguishable from a locally constructed one.

package linear

import (
	"fmt"
	"math"

	"modelir/internal/canon"
)

// AppendCanonical appends the model's canonical encoding: attribute
// names, coefficients, and intercept.
func (m *Model) AppendCanonical(b []byte) []byte {
	b = append(b, 'L', 'M')
	b = canon.AppendUint(b, uint64(len(m.Attrs)))
	for _, a := range m.Attrs {
		b = canon.AppendString(b, a)
	}
	b = canon.AppendFloats(b, m.Coeffs)
	return canon.AppendFloat(b, m.Intercept)
}

// DecodeCanonical consumes one canonical model encoding from r and
// reconstructs the model through New, so every invariant a locally
// built model satisfies holds for a decoded one too. Finite-ness is
// not required (models with infinite or NaN coefficients were always
// constructible); only structural corruption is rejected.
func DecodeCanonical(r *canon.Reader) (*Model, error) {
	if err := r.Expect("LM"); err != nil {
		return nil, err
	}
	// Attribute names are at least a length prefix each.
	n, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, n)
	for i := range attrs {
		if attrs[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	coeffs, err := r.Floats()
	if err != nil {
		return nil, err
	}
	intercept, err := r.Float()
	if err != nil {
		return nil, err
	}
	m, err := New(attrs, coeffs, intercept)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", canon.ErrCorrupt, err)
	}
	return m, nil
}

// DecomposeSpec is the wire form of a progressive model: the inputs to
// Decompose rather than the decomposition itself. Shipping the inputs
// keeps a remote node from having to trust residual bounds computed
// elsewhere — it re-derives them locally, and Decompose is
// deterministic, so every node (and the single-node reference) builds
// the bit-identical ProgressiveModel.
type DecomposeSpec struct {
	Model      *Model
	AttrLo     []float64
	AttrHi     []float64
	LevelTerms []int
}

// Spec returns the decomposition inputs this model was built from, in
// wire-ready form.
func (p *ProgressiveModel) Spec() DecomposeSpec {
	return DecomposeSpec{
		Model:      p.full,
		AttrLo:     append([]float64(nil), p.attrLo...),
		AttrHi:     append([]float64(nil), p.attrHi...),
		LevelTerms: append([]int(nil), p.levels...),
	}
}

// Build re-runs Decompose on the spec.
func (s DecomposeSpec) Build() (*ProgressiveModel, error) {
	return Decompose(s.Model, s.AttrLo, s.AttrHi, s.LevelTerms...)
}

// AppendCanonical appends the spec's canonical encoding.
func (s DecomposeSpec) AppendCanonical(b []byte) []byte {
	b = append(b, 'D', 'S')
	b = s.Model.AppendCanonical(b)
	b = canon.AppendFloats(b, s.AttrLo)
	b = canon.AppendFloats(b, s.AttrHi)
	b = canon.AppendUint(b, uint64(len(s.LevelTerms)))
	for _, lt := range s.LevelTerms {
		b = canon.AppendUint(b, uint64(lt))
	}
	return b
}

// DecodeDecomposeSpec consumes one canonical spec encoding from r. The
// level-term values are validated by Build (via Decompose); here only
// the framing is checked.
func DecodeDecomposeSpec(r *canon.Reader) (DecomposeSpec, error) {
	var s DecomposeSpec
	if err := r.Expect("DS"); err != nil {
		return s, err
	}
	var err error
	if s.Model, err = DecodeCanonical(r); err != nil {
		return s, err
	}
	if s.AttrLo, err = r.Floats(); err != nil {
		return s, err
	}
	if s.AttrHi, err = r.Floats(); err != nil {
		return s, err
	}
	n, err := r.Count(8)
	if err != nil {
		return s, err
	}
	s.LevelTerms = make([]int, n)
	for i := range s.LevelTerms {
		v, err := r.Uint()
		if err != nil {
			return s, err
		}
		if v > math.MaxInt32 {
			return s, canon.ErrCorrupt
		}
		s.LevelTerms[i] = int(v)
	}
	return s, nil
}

// AppendCanonical appends the decomposition's canonical encoding: the
// exact underlying model plus the level structure (term order, level
// term counts, residual bounds). Two decompositions of the same model
// with different level plans execute differently but return the same
// answers; they still fingerprint distinctly, which is safe (a cache
// can only under-share, never alias).
func (p *ProgressiveModel) AppendCanonical(b []byte) []byte {
	b = append(b, 'P', 'M')
	b = p.full.AppendCanonical(b)
	b = canon.AppendUint(b, uint64(len(p.order)))
	for _, o := range p.order {
		b = canon.AppendUint(b, uint64(o))
	}
	b = canon.AppendUint(b, uint64(len(p.levels)))
	for _, l := range p.levels {
		b = canon.AppendUint(b, uint64(l))
	}
	return canon.AppendFloats(b, p.resid)
}
