// Canonical byte encodings for cache fingerprinting. The serving
// layer's result cache keys requests by content, so every model type a
// query can embed provides AppendCanonical: a deterministic, framed
// encoding (internal/canon) in which semantically different models
// never produce the same bytes.

package linear

import (
	"modelir/internal/canon"
)

// AppendCanonical appends the model's canonical encoding: attribute
// names, coefficients, and intercept.
func (m *Model) AppendCanonical(b []byte) []byte {
	b = append(b, 'L', 'M')
	b = canon.AppendUint(b, uint64(len(m.Attrs)))
	for _, a := range m.Attrs {
		b = canon.AppendString(b, a)
	}
	b = canon.AppendFloats(b, m.Coeffs)
	return canon.AppendFloat(b, m.Intercept)
}

// AppendCanonical appends the decomposition's canonical encoding: the
// exact underlying model plus the level structure (term order, level
// term counts, residual bounds). Two decompositions of the same model
// with different level plans execute differently but return the same
// answers; they still fingerprint distinctly, which is safe (a cache
// can only under-share, never alias).
func (p *ProgressiveModel) AppendCanonical(b []byte) []byte {
	b = append(b, 'P', 'M')
	b = p.full.AppendCanonical(b)
	b = canon.AppendUint(b, uint64(len(p.order)))
	for _, o := range p.order {
		b = canon.AppendUint(b, uint64(o))
	}
	b = canon.AppendUint(b, uint64(len(p.levels)))
	for _, l := range p.levels {
		b = canon.AppendUint(b, uint64(l))
	}
	return canon.AppendFloats(b, p.resid)
}
