package linear

import (
	"errors"
	"math"
)

// FICO-style credit scoring: Section 2.1's second linear-model example.
// The real model has "several hundred parameters" and is proprietary; per
// the substitution rule we build a 12-attribute surrogate with the
// published structure (score = 900 − Σ aᵢXᵢ, range 300–900) and the
// published calibration anchors (P[foreclosure] < 2% above 680, ≈ 8%
// below 620).

// CreditAttrs names the surrogate's penalty attributes. Each is a
// non-negative severity in [0, 1] (already normalized by the feature
// pipeline), so the maximum total penalty is the sum of weights.
var CreditAttrs = []string{
	"late_payments_30d",
	"late_payments_90d",
	"utilization",
	"short_history",
	"short_residence",
	"employment_gaps",
	"bankruptcies",
	"charge_offs",
	"collections",
	"recent_inquiries",
	"thin_file",
	"high_balance_count",
}

// creditWeights sum to 600 so scores span exactly [300, 900].
var creditWeights = []float64{
	95,  // late_payments_30d
	120, // late_payments_90d
	70,  // utilization
	45,  // short_history
	20,  // short_residence
	30,  // employment_gaps
	90,  // bankruptcies
	55,  // charge_offs
	40,  // collections
	15,  // recent_inquiries
	10,  // thin_file
	10,  // high_balance_count
}

// CreditScore returns the surrogate scoring model:
// score = 900 − Σ wᵢ·Xᵢ with Xᵢ ∈ [0,1].
func CreditScore() *Model {
	neg := make([]float64, len(creditWeights))
	for i, w := range creditWeights {
		neg[i] = -w
	}
	m, err := New(CreditAttrs, neg, 900)
	if err != nil {
		panic(err) // static construction cannot fail
	}
	return m
}

// ForeclosureProbability maps a score to an (approximate) foreclosure
// probability using a logistic calibrated to the paper's two anchors:
// 2% at 680 and 8% at 620.
func ForeclosureProbability(score float64) float64 {
	// Solve p = 1/(1+e^{a(s-s0)}) through (680, 0.02) and (620, 0.08):
	// logit(0.02) = -3.8918, logit(0.08) = -2.4423 -> slope over 60 pts.
	const (
		slope = (3.8918202981106265 - 2.4423470353692043) / 60 // per point
		mid   = 680.0
		base  = 3.8918202981106265
	)
	z := base + (score-mid)*slope
	return 1 / (1 + math.Exp(z))
}

// ErrScoreRange is returned for scores outside [300, 900].
var ErrScoreRange = errors.New("linear: score outside [300, 900]")

// RiskBand classifies a score into the coarse bands lenders use; it
// validates the score range.
func RiskBand(score float64) (string, error) {
	switch {
	case score < 300 || score > 900:
		return "", ErrScoreRange
	case score >= 680:
		return "prime", nil
	case score >= 620:
		return "near-prime", nil
	default:
		return "subprime", nil
	}
}
