// Package linear implements the paper's linear time-invariant models
// (Section 2.1): Y = a1·X1 + a2·X2 + … + an·Xn over attributes drawn from
// multi-modal sources, plus the two machineries the framework needs around
// them — least-squares calibration from training data ("well known
// techniques exist in deriving the optimal weights") and progressive
// decomposition ordered by term contribution (Section 3.1).
package linear

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Model is a linear model: Intercept + Σ Coeffs[i]·x[i].
// Attrs names each coefficient's input attribute (e.g. Landsat band or
// credit attribute); it is documentation plus a contract for binding the
// model to archive bands by name.
type Model struct {
	Attrs     []string
	Coeffs    []float64
	Intercept float64
}

// Common validation errors.
var (
	ErrEmptyModel = errors.New("linear: model has no terms")
	ErrDimension  = errors.New("linear: input dimension mismatch")
)

// New builds a model, validating that names and coefficients align.
func New(attrs []string, coeffs []float64, intercept float64) (*Model, error) {
	if len(coeffs) == 0 {
		return nil, ErrEmptyModel
	}
	if len(attrs) != len(coeffs) {
		return nil, fmt.Errorf("linear: %d attrs for %d coefficients", len(attrs), len(coeffs))
	}
	a := make([]string, len(attrs))
	copy(a, attrs)
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	return &Model{Attrs: a, Coeffs: c, Intercept: intercept}, nil
}

// HPSRisk returns the Hantavirus Pulmonary Syndrome risk model quoted in
// Section 2.1: R(x,y) = 0.443·X1 + 0.222·X2 + 0.153·X3 + 0.183·X4 where
// X1..X3 are Landsat TM bands 4, 5, 7 and X4 is DEM elevation in meters.
func HPSRisk() *Model {
	m, err := New(
		[]string{"b4", "b5", "b7", "elev"},
		[]float64{0.443, 0.222, 0.153, 0.183},
		0,
	)
	if err != nil {
		// Static construction cannot fail.
		panic(err)
	}
	return m
}

// NumTerms returns the number of linear terms.
func (m *Model) NumTerms() int { return len(m.Coeffs) }

// Eval computes the model value for one input vector.
func (m *Model) Eval(x []float64) (float64, error) {
	if len(x) != len(m.Coeffs) {
		return 0, fmt.Errorf("%w: got %d want %d", ErrDimension, len(x), len(m.Coeffs))
	}
	s := m.Intercept
	for i, c := range m.Coeffs {
		s += c * x[i]
	}
	return s, nil
}

// EvalUnchecked is Eval without the dimension check, for hot loops that
// validated the shape once up front.
func (m *Model) EvalUnchecked(x []float64) float64 {
	s := m.Intercept
	for i, c := range m.Coeffs {
		s += c * x[i]
	}
	return s
}

// String renders the model equation.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.4g", m.Intercept)
	for i, c := range m.Coeffs {
		fmt.Fprintf(&b, " + %.4g·%s", c, m.Attrs[i])
	}
	return b.String()
}

// Interval evaluates the model over per-attribute value intervals
// [lo[i], hi[i]] and returns the exact range of model values attainable
// when each attribute varies independently in its interval. This is the
// bound progressive execution uses against pyramid min/max envelopes: a
// coarse cell whose Interval upper bound cannot beat the current top-K
// floor is pruned without visiting its pixels.
func (m *Model) Interval(lo, hi []float64) (outLo, outHi float64, err error) {
	if len(lo) != len(m.Coeffs) || len(hi) != len(m.Coeffs) {
		return 0, 0, ErrDimension
	}
	outLo, outHi = m.Intercept, m.Intercept
	for i, c := range m.Coeffs {
		a, b := c*lo[i], c*hi[i]
		if a > b {
			a, b = b, a
		}
		outLo += a
		outHi += b
	}
	return outLo, outHi, nil
}

// Fit computes ordinary-least-squares coefficients (with intercept) for
// rows of observations: each xs[i] is an attribute vector, ys[i] the
// response. It solves the normal equations by Gaussian elimination with
// partial pivoting. attrs names the fitted coefficients.
func Fit(attrs []string, xs [][]float64, ys []float64) (*Model, error) {
	if len(xs) == 0 {
		return nil, errors.New("linear: no training rows")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("linear: %d rows for %d responses", len(xs), len(ys))
	}
	d := len(xs[0])
	if d == 0 {
		return nil, ErrEmptyModel
	}
	if len(attrs) != d {
		return nil, fmt.Errorf("linear: %d attrs for dimension %d", len(attrs), d)
	}
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("%w: row %d has %d values, want %d", ErrDimension, i, len(x), d)
		}
	}
	if len(xs) < d+1 {
		return nil, fmt.Errorf("linear: %d rows cannot determine %d coefficients + intercept", len(xs), d)
	}

	// Build normal equations over the augmented design [1, x1..xd].
	n := d + 1
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	row := make([]float64, n)
	for r, x := range xs {
		row[0] = 1
		copy(row[1:], x)
		for i := 0; i < n; i++ {
			atb[i] += row[i] * ys[r]
			for j := i; j < n; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	sol, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	return New(attrs, sol[1:], sol[0])
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (a, b), returning x with a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, errors.New("linear: singular system (collinear attributes?)")
		}
		m[col], m[p] = m[p], m[col]
		piv := m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / piv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of the model on the
// given data.
func (m *Model) RSquared(xs [][]float64, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errors.New("linear: bad evaluation set")
	}
	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i, x := range xs {
		pred, err := m.Eval(x)
		if err != nil {
			return 0, err
		}
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return 1, nil
	}
	return 1 - ssRes/ssTot, nil
}

// Contribution describes one term's share of the model's variability over
// an attribute-range specification, used to order progressive levels.
type Contribution struct {
	Index  int
	Attr   string
	Weight float64 // |coeff| × attribute span
}

// Contributions ranks terms by |coefficient| × attribute span (descending).
// spans[i] is the expected dynamic range of attribute i (e.g. 255 for a TM
// band, 1500 for elevation in meters); pass nil to rank by |coefficient|
// alone, which matches the paper's "|a1,a2| >> |a3,a4|" criterion when
// attributes share a scale.
func (m *Model) Contributions(spans []float64) ([]Contribution, error) {
	if spans != nil && len(spans) != len(m.Coeffs) {
		return nil, ErrDimension
	}
	out := make([]Contribution, len(m.Coeffs))
	for i, c := range m.Coeffs {
		w := math.Abs(c)
		if spans != nil {
			w *= math.Abs(spans[i])
		}
		out[i] = Contribution{Index: i, Attr: m.Attrs[i], Weight: w}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out, nil
}
