package linear

import (
	"errors"
	"fmt"
)

// ProgressiveModel is a linear model decomposed into nested coarse-to-fine
// sub-models per Section 3.1: level 0 evaluates only the highest-
// contribution terms, later levels add terms in decreasing contribution
// order, and the final level is the exact model. Each level carries a
// sound residual bound — the largest absolute value the omitted terms can
// contribute given per-attribute bounds — so a coarse evaluation brackets
// the exact value:
//
//	exact ∈ [coarse − Resid(level), coarse + Resid(level)]
//
// That bracket is what lets the retrieval engine prune candidates with
// cheap sub-models without ever returning a wrong top-K result.
type ProgressiveModel struct {
	full *Model
	// order[i] is the index (into full.Coeffs) of the i-th most
	// contributing term.
	order []int
	// levels[l] = number of leading terms evaluated at level l.
	levels []int
	// resid[l] = max absolute contribution of terms omitted at level l.
	resid []float64
	// attrLo/attrHi retain the Decompose inputs so the model can be
	// shipped as a DecomposeSpec and re-derived remotely.
	attrLo, attrHi []float64
}

// Decompose builds a ProgressiveModel with the given per-level term counts
// (ascending; last entry must equal NumTerms). attrLo/attrHi bound each
// attribute's value range in the archive; they determine both the
// contribution order (|coeff|·span) and the sound residual bounds.
//
// Example: Decompose(m, lo, hi, 2, 4) yields a 2-level model: the 2-term
// coarse HPS model R* from the paper, then the exact 4-term model.
func Decompose(m *Model, attrLo, attrHi []float64, levelTerms ...int) (*ProgressiveModel, error) {
	if m == nil || len(m.Coeffs) == 0 {
		return nil, ErrEmptyModel
	}
	d := len(m.Coeffs)
	if len(attrLo) != d || len(attrHi) != d {
		return nil, ErrDimension
	}
	for i := range attrLo {
		if attrHi[i] < attrLo[i] {
			return nil, fmt.Errorf("linear: attribute %d range [%v,%v] empty", i, attrLo[i], attrHi[i])
		}
	}
	if len(levelTerms) == 0 {
		return nil, errors.New("linear: no levels specified")
	}
	prev := 0
	for _, n := range levelTerms {
		if n <= prev || n > d {
			return nil, fmt.Errorf("linear: level term counts must be strictly ascending in (0,%d], got %v", d, levelTerms)
		}
		prev = n
	}
	if levelTerms[len(levelTerms)-1] != d {
		return nil, fmt.Errorf("linear: last level must evaluate all %d terms", d)
	}

	spans := make([]float64, d)
	for i := range spans {
		spans[i] = attrHi[i] - attrLo[i]
	}
	contribs, err := m.Contributions(spans)
	if err != nil {
		return nil, err
	}
	order := make([]int, d)
	for i, c := range contribs {
		order[i] = c.Index
	}

	// maxAbs[i] = max |c_i · x| over the attribute range.
	maxAbs := make([]float64, d)
	for i, c := range m.Coeffs {
		a, b := c*attrLo[i], c*attrHi[i]
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if b > a {
			a = b
		}
		maxAbs[i] = a
	}

	resid := make([]float64, len(levelTerms))
	for l, n := range levelTerms {
		var r float64
		for _, idx := range order[n:] {
			r += maxAbs[idx]
		}
		resid[l] = r
	}

	lv := make([]int, len(levelTerms))
	copy(lv, levelTerms)
	return &ProgressiveModel{
		full:   m,
		order:  order,
		levels: lv,
		resid:  resid,
		attrLo: append([]float64(nil), attrLo...),
		attrHi: append([]float64(nil), attrHi...),
	}, nil
}

// NumLevels returns the number of refinement levels.
func (p *ProgressiveModel) NumLevels() int { return len(p.levels) }

// Full returns the exact underlying model.
func (p *ProgressiveModel) Full() *Model { return p.full }

// TermsAt returns how many terms level l evaluates.
func (p *ProgressiveModel) TermsAt(l int) int { return p.levels[l] }

// Resid returns the sound residual bound at level l: the exact model value
// differs from EvalLevel(l, x) by at most this much.
func (p *ProgressiveModel) Resid(l int) float64 { return p.resid[l] }

// Order returns the term evaluation order (most contributing first).
func (p *ProgressiveModel) Order() []int {
	out := make([]int, len(p.order))
	copy(out, p.order)
	return out
}

// EvalLevel computes the level-l approximation for input x (full-length
// attribute vector; omitted terms are simply skipped).
func (p *ProgressiveModel) EvalLevel(l int, x []float64) (float64, error) {
	if l < 0 || l >= len(p.levels) {
		return 0, fmt.Errorf("linear: level %d out of range", l)
	}
	if len(x) != len(p.full.Coeffs) {
		return 0, ErrDimension
	}
	s := p.full.Intercept
	for _, idx := range p.order[:p.levels[l]] {
		s += p.full.Coeffs[idx] * x[idx]
	}
	return s, nil
}

// EvalLevelUnchecked is EvalLevel without validation for hot loops.
func (p *ProgressiveModel) EvalLevelUnchecked(l int, x []float64) float64 {
	s := p.full.Intercept
	for _, idx := range p.order[:p.levels[l]] {
		s += p.full.Coeffs[idx] * x[idx]
	}
	return s
}

// CostAt returns the per-evaluation cost (number of multiply-adds) at
// level l — the paper's "n" in the O(nN) complexity discussion. The
// effective model complexity-reduction ratio pm follows from how many
// candidates each level touches.
func (p *ProgressiveModel) CostAt(l int) int { return p.levels[l] }
