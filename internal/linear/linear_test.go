package linear

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Fatal("want error for empty model")
	}
	if _, err := New([]string{"a"}, []float64{1, 2}, 0); err == nil {
		t.Fatal("want error for attr/coeff mismatch")
	}
	m, err := New([]string{"a", "b"}, []float64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTerms() != 2 {
		t.Fatalf("terms=%d", m.NumTerms())
	}
}

func TestEval(t *testing.T) {
	m, _ := New([]string{"a", "b"}, []float64{2, -1}, 10)
	got, err := m.Eval([]float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("eval=%v want 12", got)
	}
	if _, err := m.Eval([]float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
	if m.EvalUnchecked([]float64{3, 4}) != 12 {
		t.Fatal("unchecked eval differs")
	}
}

func TestHPSRiskMatchesPaper(t *testing.T) {
	m := HPSRisk()
	// R = 0.443*X1 + 0.222*X2 + 0.153*X3 + 0.183*X4
	got, err := m.Eval([]float64{100, 50, 20, 300})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.443*100 + 0.222*50 + 0.153*20 + 0.183*300
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("HPS risk %v want %v", got, want)
	}
	if m.Attrs[0] != "b4" || m.Attrs[3] != "elev" {
		t.Fatalf("attrs %v", m.Attrs)
	}
}

func TestString(t *testing.T) {
	m, _ := New([]string{"x"}, []float64{2}, 1)
	if s := m.String(); !strings.Contains(s, "2·x") {
		t.Fatalf("String()=%q", s)
	}
}

func TestIntervalSound(t *testing.T) {
	m, _ := New([]string{"a", "b"}, []float64{2, -3}, 1)
	lo, hi, err := m.Interval([]float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// a in [0,1] contributes [0,2]; b in [0,1] contributes [-3,0].
	if lo != 1-3 || hi != 1+2 {
		t.Fatalf("interval [%v,%v] want [-2,3]", lo, hi)
	}
	if _, _, err := m.Interval([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("want dimension error")
	}
}

// Property: for random models and random points inside random boxes, the
// model value always lies within Interval's bounds.
func TestIntervalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		coeffs := make([]float64, d)
		attrs := make([]string, d)
		lo := make([]float64, d)
		hi := make([]float64, d)
		x := make([]float64, d)
		for i := 0; i < d; i++ {
			coeffs[i] = rng.NormFloat64() * 5
			attrs[i] = "a"
			lo[i] = rng.NormFloat64() * 10
			hi[i] = lo[i] + rng.Float64()*10
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		m, err := New(attrs, coeffs, rng.NormFloat64())
		if err != nil {
			return false
		}
		bLo, bHi, err := m.Interval(lo, hi)
		if err != nil {
			return false
		}
		v, _ := m.Eval(x)
		return v >= bLo-1e-9 && v <= bHi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trueM, _ := New([]string{"a", "b", "c"}, []float64{1.5, -2.0, 0.7}, 4.0)
	xs := make([][]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y, _ := trueM.Eval(x)
		xs[i] = x
		ys[i] = y + rng.NormFloat64()*0.01
	}
	fit, err := Fit([]string{"a", "b", "c"}, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueM.Coeffs {
		if math.Abs(fit.Coeffs[i]-trueM.Coeffs[i]) > 0.01 {
			t.Fatalf("coeff %d: fit %v true %v", i, fit.Coeffs[i], trueM.Coeffs[i])
		}
	}
	if math.Abs(fit.Intercept-4.0) > 0.01 {
		t.Fatalf("intercept %v", fit.Intercept)
	}
	r2, err := fit.RSquared(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, nil); err == nil {
		t.Fatal("want error for no rows")
	}
	if _, err := Fit([]string{"a"}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for row/response mismatch")
	}
	if _, err := Fit([]string{"a"}, [][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for ragged rows")
	}
	// Underdetermined: 2 rows, 2 coeffs + intercept.
	if _, err := Fit([]string{"a", "b"}, [][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err == nil {
		t.Fatal("want error for underdetermined fit")
	}
	// Collinear attributes -> singular normal equations.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	if _, err := Fit([]string{"a", "b"}, xs, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("want singularity error for collinear data")
	}
}

func TestContributionsOrdering(t *testing.T) {
	m, _ := New([]string{"small", "big", "mid"}, []float64{0.1, -5, 1}, 0)
	cs, err := m.Contributions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Attr != "big" || cs[1].Attr != "mid" || cs[2].Attr != "small" {
		t.Fatalf("order %+v", cs)
	}
	// Spans can reorder: small coefficient × huge span dominates.
	cs, err = m.Contributions([]float64{1e6, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Attr != "small" {
		t.Fatalf("span-weighted order %+v", cs)
	}
	if _, err := m.Contributions([]float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
}

func TestDecomposeHPS(t *testing.T) {
	m := HPSRisk()
	lo := []float64{0, 0, 0, 0}
	hi := []float64{255, 255, 255, 1500}
	p, err := Decompose(m, lo, hi, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLevels() != 2 || p.TermsAt(0) != 2 || p.TermsAt(1) != 4 {
		t.Fatalf("levels wrong: %d levels, terms %d/%d", p.NumLevels(), p.TermsAt(0), p.TermsAt(1))
	}
	// With spans, elevation (0.183×1500) and b4 (0.443×255) dominate.
	ord := p.Order()
	if m.Attrs[ord[0]] != "elev" || m.Attrs[ord[1]] != "b4" {
		t.Fatalf("contribution order: %v %v", m.Attrs[ord[0]], m.Attrs[ord[1]])
	}
	// Final level is exact: zero residual.
	if p.Resid(1) != 0 {
		t.Fatalf("final residual %v", p.Resid(1))
	}
	if p.Resid(0) <= 0 {
		t.Fatalf("coarse residual %v must be positive", p.Resid(0))
	}
	if p.CostAt(0) != 2 || p.CostAt(1) != 4 {
		t.Fatal("per-level costs wrong")
	}
}

func TestDecomposeValidation(t *testing.T) {
	m := HPSRisk()
	lo := []float64{0, 0, 0, 0}
	hi := []float64{1, 1, 1, 1}
	if _, err := Decompose(nil, lo, hi, 1); err == nil {
		t.Fatal("want error for nil model")
	}
	if _, err := Decompose(m, lo[:2], hi, 4); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := Decompose(m, lo, hi); err == nil {
		t.Fatal("want error for no levels")
	}
	if _, err := Decompose(m, lo, hi, 2, 2, 4); err == nil {
		t.Fatal("want error for non-ascending levels")
	}
	if _, err := Decompose(m, lo, hi, 2, 3); err == nil {
		t.Fatal("want error when last level != all terms")
	}
	if _, err := Decompose(m, []float64{2, 0, 0, 0}, []float64{1, 1, 1, 1}, 4); err == nil {
		t.Fatal("want error for empty attribute range")
	}
}

// Property: coarse evaluation ± residual always brackets the exact value
// for inputs within the declared attribute ranges.
func TestProgressiveBracketProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(5)
		coeffs := make([]float64, d)
		attrs := make([]string, d)
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := 0; i < d; i++ {
			coeffs[i] = rng.NormFloat64() * 3
			attrs[i] = "a"
			lo[i] = rng.NormFloat64() * 5
			hi[i] = lo[i] + rng.Float64()*10
		}
		m, err := New(attrs, coeffs, rng.NormFloat64())
		if err != nil {
			return false
		}
		p, err := Decompose(m, lo, hi, 1, d)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			exact, _ := m.Eval(x)
			coarse, err := p.EvalLevel(0, x)
			if err != nil {
				return false
			}
			if math.Abs(exact-coarse) > p.Resid(0)+1e-9 {
				return false
			}
			if p.EvalLevelUnchecked(0, x) != coarse {
				return false
			}
		}
		// Exact level reproduces the model.
		x := make([]float64, d)
		for i := range x {
			x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		exact, _ := m.Eval(x)
		fin, _ := p.EvalLevel(p.NumLevels()-1, x)
		return math.Abs(exact-fin) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalLevelValidation(t *testing.T) {
	m := HPSRisk()
	p, err := Decompose(m, []float64{0, 0, 0, 0}, []float64{1, 1, 1, 1}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EvalLevel(5, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("want level range error")
	}
	if _, err := p.EvalLevel(0, []float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
	if p.Full() != m {
		t.Fatal("Full() lost the model")
	}
}

func TestCreditScoreRange(t *testing.T) {
	m := CreditScore()
	if m.NumTerms() != len(CreditAttrs) {
		t.Fatalf("terms=%d", m.NumTerms())
	}
	clean := make([]float64, m.NumTerms())
	s, err := m.Eval(clean)
	if err != nil {
		t.Fatal(err)
	}
	if s != 900 {
		t.Fatalf("clean file score %v want 900", s)
	}
	worst := make([]float64, m.NumTerms())
	for i := range worst {
		worst[i] = 1
	}
	s, _ = m.Eval(worst)
	if math.Abs(s-300) > 1e-9 {
		t.Fatalf("worst file score %v want 300", s)
	}
}

func TestForeclosureCalibration(t *testing.T) {
	// The paper's anchors: <2% above 680, ~8% below 620.
	if p := ForeclosureProbability(680); math.Abs(p-0.02) > 0.001 {
		t.Fatalf("P(680)=%v want ~0.02", p)
	}
	if p := ForeclosureProbability(620); math.Abs(p-0.08) > 0.005 {
		t.Fatalf("P(620)=%v want ~0.08", p)
	}
	if ForeclosureProbability(750) >= 0.02 {
		t.Fatal("high scores must be < 2%")
	}
	if ForeclosureProbability(500) <= 0.08 {
		t.Fatal("low scores must exceed 8%")
	}
}

func TestRiskBand(t *testing.T) {
	cases := []struct {
		score float64
		want  string
	}{{700, "prime"}, {680, "prime"}, {650, "near-prime"}, {500, "subprime"}}
	for _, c := range cases {
		got, err := RiskBand(c.score)
		if err != nil || got != c.want {
			t.Fatalf("RiskBand(%v)=(%v,%v) want %v", c.score, got, err, c.want)
		}
	}
	if _, err := RiskBand(100); err == nil {
		t.Fatal("want range error")
	}
	if _, err := RiskBand(1000); err == nil {
		t.Fatal("want range error")
	}
}
