package linear

import (
	"bytes"
	"errors"
	"testing"

	"modelir/internal/canon"
)

func TestModelCanonicalRoundTrip(t *testing.T) {
	m := HPSRisk()
	enc := m.AppendCanonical(nil)
	r := canon.NewReader(enc)
	got, err := DecodeCanonical(r)
	if err != nil {
		t.Fatalf("DecodeCanonical: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode left %d bytes", r.Remaining())
	}
	if !bytes.Equal(got.AppendCanonical(nil), enc) {
		t.Fatal("re-encoded model differs from original encoding")
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeCanonical(canon.NewReader(enc[:n])); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecomposeSpecRoundTrip(t *testing.T) {
	pm, err := Decompose(HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	enc := pm.Spec().AppendCanonical(nil)
	r := canon.NewReader(enc)
	spec, err := DecodeDecomposeSpec(r)
	if err != nil {
		t.Fatalf("DecodeDecomposeSpec: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode left %d bytes", r.Remaining())
	}
	rebuilt, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// The rebuilt decomposition must be bit-identical to the original:
	// same order, levels, and residual bounds.
	if !bytes.Equal(rebuilt.AppendCanonical(nil), pm.AppendCanonical(nil)) {
		t.Fatal("rebuilt decomposition differs from original")
	}
	if !bytes.Equal(spec.AppendCanonical(nil), enc) {
		t.Fatal("re-encoded spec differs from original encoding")
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeDecomposeSpec(canon.NewReader(enc[:n])); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
}

// A structurally well-framed stream whose values violate model
// invariants (here: mismatched attr/coeff counts) must be rejected by
// the reconstruction path, not just by framing checks.
func TestDecodeCanonicalRejectsInvalidModel(t *testing.T) {
	b := []byte{'L', 'M'}
	b = canon.AppendUint(b, 1)
	b = canon.AppendString(b, "hr")
	b = canon.AppendFloats(b, []float64{1, 2}) // two coeffs, one attr
	b = canon.AppendFloat(b, 0)
	if _, err := DecodeCanonical(canon.NewReader(b)); !errors.Is(err, canon.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
