package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"modelir/internal/synth"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := Build([][]float64{{}}, Options{}); err == nil {
		t.Fatal("want zero-dim error")
	}
	if _, err := Build([][]float64{{1, 2}, {3}}, Options{}); err == nil {
		t.Fatal("want ragged error")
	}
	if _, err := Build([][]float64{{1, 2}}, Options{Fanout: 1}); err == nil {
		t.Fatal("want fanout error")
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	pts, err := synth.GaussianTuples(3, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 3000 || tr.Dim() != 3 {
		t.Fatalf("size/dim %d/%d", tr.Size(), tr.Dim())
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for i := range lo {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		got, st, err := tr.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for i, p := range pts {
			inside := true
			for d, v := range p {
				if v < lo[d] || v > hi[d] {
					inside = false
					break
				}
			}
			if inside {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d mismatch at %d", trial, i)
			}
		}
		if st.PointsTouched > 3000 {
			t.Fatal("touched more points than exist")
		}
	}
}

func TestRangeValidation(t *testing.T) {
	pts, _ := synth.GaussianTuples(1, 100, 2)
	tr, _ := Build(pts, Options{})
	if _, _, err := tr.Range([]float64{0}, []float64{1, 1}); err == nil {
		t.Fatal("want dim error")
	}
	if _, _, err := tr.Range([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Fatal("want empty-box error")
	}
}

func TestRangePruning(t *testing.T) {
	pts, _ := synth.GaussianTuples(5, 20000, 2)
	tr, _ := Build(pts, Options{})
	// Tiny box: the tree should touch a small fraction of points.
	_, st, err := tr.Range([]float64{0, 0}, []float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st.PointsTouched*10 > len(pts) {
		t.Fatalf("touched %d of %d points for a tiny box", st.PointsTouched, len(pts))
	}
}

func TestNearestKMatchesScan(t *testing.T) {
	pts, _ := synth.GaussianTuples(7, 2000, 3)
	tr, _ := Build(pts, Options{})
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		target := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got, _, err := tr.NearestK(target, 5)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			id int
			d  float64
		}
		ref := make([]pair, len(pts))
		for i, p := range pts {
			ref[i] = pair{i, dist2To(target, p)}
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].d != ref[b].d {
				return ref[a].d < ref[b].d
			}
			return ref[a].id < ref[b].id
		})
		for i := 0; i < 5; i++ {
			if got[i].ID != int64(ref[i].id) {
				t.Fatalf("trial %d pos %d: got %d want %d", trial, i, got[i].ID, ref[i].id)
			}
		}
	}
	if _, _, err := tr.NearestK([]float64{0}, 1); err == nil {
		t.Fatal("want dim error")
	}
	if _, _, err := tr.NearestK([]float64{0, 0, 0}, 0); err == nil {
		t.Fatal("want k error")
	}
}

func TestLinearTopKMatchesScan(t *testing.T) {
	pts, _ := synth.GaussianTuples(9, 5000, 3)
	tr, _ := Build(pts, Options{})
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		w := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got, _, err := tr.LinearTopK(w, 10)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			id int
			s  float64
		}
		ref := make([]pair, len(pts))
		for i, p := range pts {
			s := 0.0
			for d, wd := range w {
				s += wd * p[d]
			}
			ref[i] = pair{i, s}
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].s != ref[b].s {
				return ref[a].s > ref[b].s
			}
			return ref[a].id < ref[b].id
		})
		for i := range got {
			if got[i].ID != int64(ref[i].id) {
				t.Fatalf("trial %d pos %d: got %d want %d", trial, i, got[i].ID, ref[i].id)
			}
		}
	}
	if _, _, err := tr.LinearTopK([]float64{1}, 1); err == nil {
		t.Fatal("want dim error")
	}
	if _, _, err := tr.LinearTopK([]float64{1, 1, 1}, 0); err == nil {
		t.Fatal("want k error")
	}
}

// Property: range query equals linear scan for random boxes and sets.
func TestRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(400)
		d := 1 + rng.Intn(4)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, d)
			for j := range pts[i] {
				pts[i][j] = rng.NormFloat64()
			}
		}
		tr, err := Build(pts, Options{Fanout: 2 + rng.Intn(20)})
		if err != nil {
			return false
		}
		lo := make([]float64, d)
		hi := make([]float64, d)
		for i := range lo {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			if a > b {
				a, b = b, a
			}
			lo[i], hi[i] = a, b
		}
		got, _, err := tr.Range(lo, hi)
		if err != nil {
			return false
		}
		var want []int
		for i, p := range pts {
			inside := true
			for dd, v := range p {
				if v < lo[dd] || v > hi[dd] {
					inside = false
					break
				}
			}
			if inside {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
