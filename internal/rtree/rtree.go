// Package rtree implements an STR (sort-tile-recursive) bulk-loaded
// R-tree over d-dimensional points with range and nearest-neighbor
// queries, and — for comparison with the Onion index — a best-first
// linear-optimization query that uses MBR upper bounds.
//
// Section 3.2 of the paper positions R*-tree-style spatial indexes as the
// incumbent: "optimized for spatial range queries … sub-optimal for
// model-based queries, as these indices do not indicate where to find
// data points that will maximize the model." This package exists to make
// that comparison concrete: experiment E1 can run the same linear top-K
// through the R-tree's MBR-guided search and show it touches far more of
// the data than Onion's convex layers.
package rtree

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"modelir/internal/topk"
)

// DefaultFanout is the node capacity used when Options.Fanout is zero.
const DefaultFanout = 16

// Options tunes construction.
type Options struct {
	// Fanout is the maximum number of children (or points) per node.
	Fanout int
}

// Tree is an immutable bulk-loaded R-tree over points.
type Tree struct {
	dim    int
	points [][]float64
	root   *node
	size   int
}

type node struct {
	lo, hi   []float64
	children []*node
	// leaf entries: indices into points (leaf iff children == nil)
	entries []int
}

// Build bulk-loads a tree using sort-tile-recursive packing. Points are
// not copied; the caller must not mutate them afterwards.
func Build(points [][]float64, opt Options) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("rtree: empty point set")
	}
	d := len(points[0])
	if d == 0 {
		return nil, errors.New("rtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("rtree: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	fanout := opt.Fanout
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		return nil, errors.New("rtree: fanout must be >= 2")
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dim: d, points: points, size: len(points)}
	leaves := t.packLeaves(idx, fanout)
	for len(leaves) > 1 {
		leaves = t.packNodes(leaves, fanout)
	}
	t.root = leaves[0]
	return t, nil
}

// packLeaves STR-packs point indices into leaf nodes.
func (t *Tree) packLeaves(idx []int, fanout int) []*node {
	slabs := t.strSlabs(idx, fanout, func(i int, dim int) float64 { return t.points[i][dim] }, 0)
	leaves := make([]*node, 0, (len(idx)+fanout-1)/fanout)
	for _, slab := range slabs {
		for start := 0; start < len(slab); start += fanout {
			end := start + fanout
			if end > len(slab) {
				end = len(slab)
			}
			n := &node{entries: append([]int(nil), slab[start:end]...)}
			t.computeLeafMBR(n)
			leaves = append(leaves, n)
		}
	}
	return leaves
}

// packNodes groups child nodes into parents, one STR level.
func (t *Tree) packNodes(children []*node, fanout int) []*node {
	idx := make([]int, len(children))
	for i := range idx {
		idx[i] = i
	}
	center := func(i, dim int) float64 { return (children[i].lo[dim] + children[i].hi[dim]) / 2 }
	slabs := t.strSlabs(idx, fanout, center, 0)
	parents := make([]*node, 0, (len(children)+fanout-1)/fanout)
	for _, slab := range slabs {
		for start := 0; start < len(slab); start += fanout {
			end := start + fanout
			if end > len(slab) {
				end = len(slab)
			}
			n := &node{}
			for _, ci := range slab[start:end] {
				n.children = append(n.children, children[ci])
			}
			t.computeInnerMBR(n)
			parents = append(parents, n)
		}
	}
	return parents
}

// strSlabs sorts by the given dimension and slices into vertical slabs of
// size ~ sqrt-balanced for 2-D STR (recursing one dimension deep keeps
// construction simple and near-optimal for the moderate dimensionalities
// used here).
func (t *Tree) strSlabs(idx []int, fanout int, key func(i, dim int) float64, dim int) [][]int {
	sort.Slice(idx, func(a, b int) bool {
		if key(idx[a], dim) != key(idx[b], dim) {
			return key(idx[a], dim) < key(idx[b], dim)
		}
		return idx[a] < idx[b]
	})
	nLeaves := (len(idx) + fanout - 1) / fanout
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	if nSlabs < 1 {
		nSlabs = 1
	}
	perSlab := ((nLeaves+nSlabs-1)/nSlabs)*fanout + 1
	var out [][]int
	for start := 0; start < len(idx); start += perSlab {
		end := start + perSlab
		if end > len(idx) {
			end = len(idx)
		}
		slab := append([]int(nil), idx[start:end]...)
		if t.dim > 1 {
			nextDim := (dim + 1) % t.dim
			sort.Slice(slab, func(a, b int) bool {
				if key(slab[a], nextDim) != key(slab[b], nextDim) {
					return key(slab[a], nextDim) < key(slab[b], nextDim)
				}
				return slab[a] < slab[b]
			})
		}
		out = append(out, slab)
	}
	return out
}

func (t *Tree) computeLeafMBR(n *node) {
	n.lo = make([]float64, t.dim)
	n.hi = make([]float64, t.dim)
	for i := range n.lo {
		n.lo[i] = math.Inf(1)
		n.hi[i] = math.Inf(-1)
	}
	for _, pi := range n.entries {
		for dimI, v := range t.points[pi] {
			if v < n.lo[dimI] {
				n.lo[dimI] = v
			}
			if v > n.hi[dimI] {
				n.hi[dimI] = v
			}
		}
	}
}

func (t *Tree) computeInnerMBR(n *node) {
	n.lo = make([]float64, t.dim)
	n.hi = make([]float64, t.dim)
	for i := range n.lo {
		n.lo[i] = math.Inf(1)
		n.hi[i] = math.Inf(-1)
	}
	for _, c := range n.children {
		for dimI := 0; dimI < t.dim; dimI++ {
			if c.lo[dimI] < n.lo[dimI] {
				n.lo[dimI] = c.lo[dimI]
			}
			if c.hi[dimI] > n.hi[dimI] {
				n.hi[dimI] = c.hi[dimI]
			}
		}
	}
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Dim returns the dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Stats counts query work.
type Stats struct {
	NodesVisited  int
	PointsTouched int
}

// Range returns the indices of points inside the axis-aligned box
// [lo, hi] (inclusive), sorted ascending.
func (t *Tree) Range(lo, hi []float64) ([]int, Stats, error) {
	var st Stats
	if len(lo) != t.dim || len(hi) != t.dim {
		return nil, st, fmt.Errorf("rtree: box dim mismatch (want %d)", t.dim)
	}
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, st, fmt.Errorf("rtree: box dimension %d empty", i)
		}
	}
	var out []int
	var rec func(n *node)
	rec = func(n *node) {
		st.NodesVisited++
		for i := 0; i < t.dim; i++ {
			if n.hi[i] < lo[i] || n.lo[i] > hi[i] {
				return
			}
		}
		if n.children == nil {
			for _, pi := range n.entries {
				st.PointsTouched++
				inside := true
				for i, v := range t.points[pi] {
					if v < lo[i] || v > hi[i] {
						inside = false
						break
					}
				}
				if inside {
					out = append(out, pi)
				}
			}
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	sort.Ints(out)
	return out, st, nil
}

// pqItem is a best-first queue entry: either a node or a concrete point.
type pqItem struct {
	node  *node
	point int
	key   float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// NearestK returns the k nearest points to target (Euclidean), best
// first, via best-first MBR search.
func (t *Tree) NearestK(target []float64, k int) ([]topk.Item, Stats, error) {
	var st Stats
	if len(target) != t.dim {
		return nil, st, fmt.Errorf("rtree: target dim %d, want %d", len(target), t.dim)
	}
	if k < 1 {
		return nil, st, errors.New("rtree: k must be >= 1")
	}
	q := &pq{{node: t.root, key: minDist2(target, t.root.lo, t.root.hi)}}
	heap.Init(q)
	var out []topk.Item
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(pqItem)
		if it.node == nil {
			out = append(out, topk.Item{ID: int64(it.point), Score: it.key})
			continue
		}
		st.NodesVisited++
		n := it.node
		if n.children == nil {
			for _, pi := range n.entries {
				st.PointsTouched++
				heap.Push(q, pqItem{node: nil, point: pi, key: dist2To(target, t.points[pi])})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(q, pqItem{node: c, key: minDist2(target, c.lo, c.hi)})
		}
	}
	return out, st, nil
}

// LinearTopK answers a linear-optimization query through the R-tree:
// best-first search on the MBR upper bound of w·x. Exact, but — as the
// paper argues — the spatial MBR bound is loose for linear models, so it
// visits many more nodes/points than Onion's layers (experiment E1
// quantifies this).
func (t *Tree) LinearTopK(w []float64, k int) ([]topk.Item, Stats, error) {
	var st Stats
	if len(w) != t.dim {
		return nil, st, fmt.Errorf("rtree: weight dim %d, want %d", len(w), t.dim)
	}
	if k < 1 {
		return nil, st, errors.New("rtree: k must be >= 1")
	}
	// Max-heap on upper bound: negate keys in the min-heap.
	q := &pq{{node: t.root, key: -boxUpper(w, t.root.lo, t.root.hi)}}
	heap.Init(q)
	var out []topk.Item
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(pqItem)
		if it.node == nil {
			out = append(out, topk.Item{ID: int64(it.point), Score: -it.key})
			continue
		}
		st.NodesVisited++
		n := it.node
		if n.children == nil {
			for _, pi := range n.entries {
				st.PointsTouched++
				s := 0.0
				for i, wi := range w {
					s += wi * t.points[pi][i]
				}
				heap.Push(q, pqItem{node: nil, point: pi, key: -s})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(q, pqItem{node: c, key: -boxUpper(w, c.lo, c.hi)})
		}
	}
	return out, st, nil
}

func boxUpper(w, lo, hi []float64) float64 {
	s := 0.0
	for i, wi := range w {
		if wi >= 0 {
			s += wi * hi[i]
		} else {
			s += wi * lo[i]
		}
	}
	return s
}

func minDist2(p, lo, hi []float64) float64 {
	d := 0.0
	for i, v := range p {
		if v < lo[i] {
			d += (lo[i] - v) * (lo[i] - v)
		} else if v > hi[i] {
			d += (v - hi[i]) * (v - hi[i])
		}
	}
	return d
}

func dist2To(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	return d
}
