// Canonical byte encoding for cache fingerprinting (see the matching
// methods in internal/linear; framing primitives in internal/canon).
// A machine's semantics are exactly its alphabet, state set, start
// state, accept set, and transition table, so that is what the
// encoding covers. State and event *names* are included deliberately:
// two structurally identical machines with different labels fingerprint
// apart, which can only under-share a cache, never alias it.

package fsm

import (
	"modelir/internal/canon"
)

// AppendCanonical appends the machine's canonical encoding.
func (m *Machine) AppendCanonical(b []byte) []byte {
	b = append(b, 'F', 'S')
	b = canon.AppendUint(b, uint64(len(m.alphabet)))
	for _, e := range m.alphabet {
		b = canon.AppendString(b, e)
	}
	b = canon.AppendUint(b, uint64(len(m.states)))
	for _, s := range m.states {
		b = canon.AppendString(b, s)
	}
	b = canon.AppendUint(b, uint64(m.start))
	for _, a := range m.accept {
		if a {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = canon.AppendUint(b, uint64(len(m.trans)))
	for _, t := range m.trans {
		b = canon.AppendUint(b, uint64(t))
	}
	return b
}
