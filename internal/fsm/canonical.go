// Canonical byte encoding for cache fingerprinting and, since the
// cluster layer, for shipping machines between router and shard-server
// nodes (see the matching methods in internal/linear; framing
// primitives in internal/canon). A machine's semantics are exactly its
// alphabet, state set, start state, accept set, and transition table,
// so that is what the encoding covers. State and event *names* are
// included deliberately: two structurally identical machines with
// different labels fingerprint apart, which can only under-share a
// cache, never alias it. DecodeCanonical is the exact inverse,
// reconstructing through the Builder so a decoded machine satisfies
// every invariant Build enforces.

package fsm

import (
	"fmt"

	"modelir/internal/canon"
)

// AppendCanonical appends the machine's canonical encoding.
func (m *Machine) AppendCanonical(b []byte) []byte {
	b = append(b, 'F', 'S')
	b = canon.AppendUint(b, uint64(len(m.alphabet)))
	for _, e := range m.alphabet {
		b = canon.AppendString(b, e)
	}
	b = canon.AppendUint(b, uint64(len(m.states)))
	for _, s := range m.states {
		b = canon.AppendString(b, s)
	}
	b = canon.AppendUint(b, uint64(m.start))
	for _, a := range m.accept {
		if a {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = canon.AppendUint(b, uint64(len(m.trans)))
	for _, t := range m.trans {
		b = canon.AppendUint(b, uint64(t))
	}
	return b
}

// DecodeCanonical consumes one canonical machine encoding from r and
// rebuilds the machine through the Builder, so completeness and range
// validation match a locally constructed machine exactly. Any framing
// violation — including accept bytes outside {0,1} or a transition
// table whose size is not states×alphabet — fails with an error
// wrapping canon.ErrCorrupt.
func DecodeCanonical(r *canon.Reader) (*Machine, error) {
	if err := r.Expect("FS"); err != nil {
		return nil, err
	}
	ne, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	alphabet := make([]string, ne)
	for i := range alphabet {
		if alphabet[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	ns, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	states := make([]string, ns)
	for i := range states {
		if states[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	start, err := r.Uint()
	if err != nil {
		return nil, err
	}
	if start >= uint64(ns) {
		return nil, canon.ErrCorrupt
	}
	accept := make([]bool, ns)
	for i := range accept {
		a, err := r.Byte()
		if err != nil {
			return nil, err
		}
		switch a {
		case 0:
		case 1:
			accept[i] = true
		default:
			return nil, canon.ErrCorrupt
		}
	}
	nt, err := r.Count(8)
	if err != nil {
		return nil, err
	}
	if nt != ns*ne {
		return nil, canon.ErrCorrupt
	}
	b := NewBuilder(alphabet)
	for i, name := range states {
		b.State(name)
		if accept[i] {
			b.Accept(i)
		}
	}
	b.Start(int(start))
	for i := 0; i < nt; i++ {
		to, err := r.Uint()
		if err != nil {
			return nil, err
		}
		if to >= uint64(ns) {
			return nil, canon.ErrCorrupt
		}
		b.On(i/ne, Event(i%ne), int(to))
	}
	m, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", canon.ErrCorrupt, err)
	}
	return m, nil
}
