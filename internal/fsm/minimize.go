package fsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Minimize returns the canonical minimal DFA equivalent to m (Moore's
// partition-refinement algorithm over reachable states). Two machines
// accept the same event sequences iff their minimized forms are
// structurally identical (up to state order; Minimize numbers states in
// BFS order from the start state, so equivalence becomes Equal).
//
// Minimization matters to the retrieval framework in two ways: extracted
// machines (fsm.Extract) can carry redundant states that inflate the
// apparent difference from a target model, and Distance computations on
// the product automaton cost O(|Sa|·|Sb|) per step — minimizing first
// makes both canonical and cheaper.
func Minimize(m *Machine) (*Machine, error) {
	if m == nil {
		return nil, errors.New("fsm: nil machine")
	}
	ne := m.NumEvents()

	// 1. Restrict to reachable states.
	reach := make([]int, 0, m.NumStates())
	seen := make([]bool, m.NumStates())
	seen[m.start] = true
	reach = append(reach, m.start)
	for qi := 0; qi < len(reach); qi++ {
		s := reach[qi]
		for e := 0; e < ne; e++ {
			to := m.trans[s*ne+e]
			if !seen[to] {
				seen[to] = true
				reach = append(reach, to)
			}
		}
	}

	// 2. Moore refinement: start from the accept/reject partition.
	part := make(map[int]int, len(reach)) // state -> block id
	for _, s := range reach {
		if m.accept[s] {
			part[s] = 1
		} else {
			part[s] = 0
		}
	}
	for {
		// Signature: (current block, successor blocks per event).
		sig := make(map[int]string, len(reach))
		var sb strings.Builder
		for _, s := range reach {
			sb.Reset()
			fmt.Fprintf(&sb, "%d", part[s])
			for e := 0; e < ne; e++ {
				fmt.Fprintf(&sb, ",%d", part[m.trans[s*ne+e]])
			}
			sig[s] = sb.String()
		}
		// Re-number blocks by signature.
		ids := make(map[string]int)
		next := make(map[int]int, len(reach))
		// Deterministic block numbering: visit states in reach order.
		for _, s := range reach {
			id, ok := ids[sig[s]]
			if !ok {
				id = len(ids)
				ids[sig[s]] = id
			}
			next[s] = id
		}
		if len(ids) == countBlocks(part, reach) {
			part = next
			break
		}
		part = next
	}

	// 3. Emit the quotient machine with BFS state numbering from the
	// start block for canonical output.
	blockOf := func(s int) int { return part[s] }
	repr := make(map[int]int) // block -> representative state
	for _, s := range reach {
		b := blockOf(s)
		if _, ok := repr[b]; !ok {
			repr[b] = s
		}
	}
	order := []int{blockOf(m.start)}
	placed := map[int]int{blockOf(m.start): 0}
	for qi := 0; qi < len(order); qi++ {
		b := order[qi]
		s := repr[b]
		for e := 0; e < ne; e++ {
			nb := blockOf(m.trans[s*ne+e])
			if _, ok := placed[nb]; !ok {
				placed[nb] = len(order)
				order = append(order, nb)
			}
		}
	}
	out := &Machine{
		states:   make([]string, len(order)),
		alphabet: append([]string(nil), m.alphabet...),
		accept:   make([]bool, len(order)),
		start:    0,
		trans:    make([]int, len(order)*ne),
	}
	for newID, b := range order {
		s := repr[b]
		// Name the merged state after its members for debuggability.
		var members []string
		for _, rs := range reach {
			if blockOf(rs) == b {
				members = append(members, m.states[rs])
			}
		}
		sort.Strings(members)
		out.states[newID] = strings.Join(members, "+")
		out.accept[newID] = m.accept[s]
		for e := 0; e < ne; e++ {
			out.trans[newID*ne+e] = placed[blockOf(m.trans[s*ne+e])]
		}
	}
	return out, nil
}

func countBlocks(part map[int]int, reach []int) int {
	seen := make(map[int]bool, len(part))
	for _, s := range reach {
		seen[part[s]] = true
	}
	return len(seen)
}

// Equal reports whether two machines are structurally identical:
// same alphabet, state count, start, accepting flags and transitions
// under the same numbering. Minimize both first to decide language
// equivalence.
func Equal(a, b *Machine) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumStates() != b.NumStates() || a.NumEvents() != b.NumEvents() || a.start != b.start {
		return false
	}
	for i, n := range a.alphabet {
		if b.alphabet[i] != n {
			return false
		}
	}
	for s := range a.accept {
		if a.accept[s] != b.accept[s] {
			return false
		}
	}
	for i, to := range a.trans {
		if b.trans[i] != to {
			return false
		}
	}
	return true
}

// Equivalent reports whether two machines accept exactly the same event
// sequences (language equivalence via canonical minimization).
func Equivalent(a, b *Machine) (bool, error) {
	ma, err := Minimize(a)
	if err != nil {
		return false, err
	}
	mb, err := Minimize(b)
	if err != nil {
		return false, err
	}
	return Equal(ma, mb), nil
}
