// Event-plane codec for the snapshot subsystem: an event trace is a
// plain symbol sequence, so it serializes as one int64 column per
// archive and restores with a single widening copy. Kept here (rather
// than in internal/segment) so the segment layer never learns fsm's
// types.

package fsm

// EncodeEvents widens an event trace to the int64 column layout the
// snapshot writer stores.
func EncodeEvents(evs []Event) []int64 {
	out := make([]int64, len(evs))
	for i, e := range evs {
		out[i] = int64(e)
	}
	return out
}

// DecodeEvents narrows a restored int64 column back to an event trace.
func DecodeEvents(col []int64) []Event {
	out := make([]Event, len(col))
	for i, v := range col {
		out[i] = Event(v)
	}
	return out
}
