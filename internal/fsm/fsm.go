// Package fsm implements the paper's finite state models (Section 2.2):
// deterministic finite automata over multi-modal event alphabets, the
// fire-ants machine of Fig. 1, run semantics over daily observation
// series, a behavioral distance between machines ("when the finite state
// machine extracted from the data is slightly different from the target
// finite state machine, it is also possible to define a distance between
// these two finite state machines"), and empirical machine extraction
// from observed data.
package fsm

import (
	"errors"
	"fmt"
)

// Event is a symbol index into a machine's alphabet.
type Event int

// Machine is a complete deterministic finite automaton: every state has a
// transition for every event. Build one with NewBuilder.
type Machine struct {
	states   []string
	alphabet []string
	accept   []bool
	start    int
	// trans[s*|alphabet| + e] = next state
	trans []int
}

// Builder accumulates a machine definition and validates it on Build.
type Builder struct {
	alphabet []string
	states   []string
	accept   map[int]bool
	start    int
	hasStart bool
	trans    map[[2]int]int
}

// NewBuilder starts a machine over the given event alphabet.
func NewBuilder(alphabet []string) *Builder {
	a := make([]string, len(alphabet))
	copy(a, alphabet)
	return &Builder{
		alphabet: a,
		accept:   make(map[int]bool),
		trans:    make(map[[2]int]int),
	}
}

// State adds a named state and returns its index.
func (b *Builder) State(name string) int {
	b.states = append(b.states, name)
	return len(b.states) - 1
}

// Accept marks a state as accepting.
func (b *Builder) Accept(state int) *Builder {
	b.accept[state] = true
	return b
}

// Start sets the initial state.
func (b *Builder) Start(state int) *Builder {
	b.start = state
	b.hasStart = true
	return b
}

// On sets the transition from state `from` on event e to state `to`.
func (b *Builder) On(from int, e Event, to int) *Builder {
	b.trans[[2]int{from, int(e)}] = to
	return b
}

// OnAll sets transitions from `from` to `to` for every event not already
// mapped — a convenience for default/self-loop edges.
func (b *Builder) OnAll(from, to int) *Builder {
	for e := range b.alphabet {
		key := [2]int{from, e}
		if _, ok := b.trans[key]; !ok {
			b.trans[key] = to
		}
	}
	return b
}

// Build validates completeness and returns the machine.
func (b *Builder) Build() (*Machine, error) {
	if len(b.alphabet) == 0 {
		return nil, errors.New("fsm: empty alphabet")
	}
	if len(b.states) == 0 {
		return nil, errors.New("fsm: no states")
	}
	if !b.hasStart {
		return nil, errors.New("fsm: no start state")
	}
	if b.start < 0 || b.start >= len(b.states) {
		return nil, fmt.Errorf("fsm: start state %d out of range", b.start)
	}
	m := &Machine{
		states:   append([]string(nil), b.states...),
		alphabet: append([]string(nil), b.alphabet...),
		accept:   make([]bool, len(b.states)),
		start:    b.start,
		trans:    make([]int, len(b.states)*len(b.alphabet)),
	}
	for s := range b.states {
		m.accept[s] = b.accept[s]
		for e := range b.alphabet {
			to, ok := b.trans[[2]int{s, e}]
			if !ok {
				return nil, fmt.Errorf("fsm: state %q missing transition on %q",
					b.states[s], b.alphabet[e])
			}
			if to < 0 || to >= len(b.states) {
				return nil, fmt.Errorf("fsm: transition %q --%q--> %d out of range",
					b.states[s], b.alphabet[e], to)
			}
			m.trans[s*len(b.alphabet)+e] = to
		}
	}
	return m, nil
}

// NumStates returns the state count.
func (m *Machine) NumStates() int { return len(m.states) }

// NumEvents returns the alphabet size.
func (m *Machine) NumEvents() int { return len(m.alphabet) }

// StateName returns the name of state s.
func (m *Machine) StateName(s int) string { return m.states[s] }

// Alphabet returns a copy of the event names.
func (m *Machine) Alphabet() []string {
	out := make([]string, len(m.alphabet))
	copy(out, m.alphabet)
	return out
}

// Start returns the initial state.
func (m *Machine) Start() int { return m.start }

// IsAccept reports whether state s is accepting.
func (m *Machine) IsAccept(s int) bool { return m.accept[s] }

// Next returns the successor of state s on event e.
func (m *Machine) Next(s int, e Event) (int, error) {
	if s < 0 || s >= len(m.states) {
		return 0, fmt.Errorf("fsm: state %d out of range", s)
	}
	if int(e) < 0 || int(e) >= len(m.alphabet) {
		return 0, fmt.Errorf("fsm: event %d out of range", e)
	}
	return m.trans[s*len(m.alphabet)+int(e)], nil
}

// RunResult summarizes a machine run over an event series.
type RunResult struct {
	// FirstAccept is the 0-based index of the first event after which the
	// machine was in an accepting state, or -1 if never.
	FirstAccept int
	// AcceptCount is how many event positions left the machine accepting.
	AcceptCount int
	// Final is the state after the last event.
	Final int
}

// Run feeds the event series through the machine from its start state.
func (m *Machine) Run(events []Event) (RunResult, error) {
	res := RunResult{FirstAccept: -1, Final: m.start}
	s := m.start
	na := len(m.alphabet)
	for i, e := range events {
		if int(e) < 0 || int(e) >= na {
			return res, fmt.Errorf("fsm: event %d at position %d out of range", e, i)
		}
		s = m.trans[s*na+int(e)]
		if m.accept[s] {
			if res.FirstAccept < 0 {
				res.FirstAccept = i
			}
			res.AcceptCount++
		}
	}
	res.Final = s
	return res, nil
}

// Trace returns the full state sequence (length len(events)+1, starting
// with the start state). Used by machine extraction.
func (m *Machine) Trace(events []Event) ([]int, error) {
	out := make([]int, 0, len(events)+1)
	s := m.start
	out = append(out, s)
	na := len(m.alphabet)
	for i, e := range events {
		if int(e) < 0 || int(e) >= na {
			return nil, fmt.Errorf("fsm: event %d at position %d out of range", e, i)
		}
		s = m.trans[s*na+int(e)]
		out = append(out, s)
	}
	return out, nil
}
