package fsm

import (
	"errors"
	"fmt"
)

// Distance computes a behavioral distance between two machines over the
// same alphabet: the expected disagreement rate on acceptance, averaged
// over all input strings of length 1..maxLen with every string of a given
// length equally likely. It is computed exactly by dynamic programming on
// the product automaton (no sampling), runs in
// O(maxLen · |A| · |Sa|·|Sb|) time, and satisfies:
//
//	Distance(m, m) == 0, symmetry, and values in [0, 1].
//
// This realizes the paper's Section 3 requirement for ranking data whose
// extracted machine is "slightly different from the target finite state
// machine".
func Distance(a, b *Machine, maxLen int) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("fsm: nil machine")
	}
	if a.NumEvents() != b.NumEvents() {
		return 0, fmt.Errorf("fsm: alphabet sizes differ (%d vs %d)", a.NumEvents(), b.NumEvents())
	}
	if maxLen < 1 {
		return 0, errors.New("fsm: maxLen must be >= 1")
	}
	na, nb := a.NumStates(), b.NumStates()
	ne := a.NumEvents()

	// prob[i*nb+j] = probability mass of being in product state (i, j)
	// after k uniformly random events.
	prob := make([]float64, na*nb)
	next := make([]float64, na*nb)
	prob[a.start*nb+b.start] = 1

	var total float64
	pe := 1.0 / float64(ne)
	for k := 1; k <= maxLen; k++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				p := prob[i*nb+j]
				if p == 0 {
					continue
				}
				for e := 0; e < ne; e++ {
					ni := a.trans[i*ne+e]
					nj := b.trans[j*ne+e]
					next[ni*nb+nj] += p * pe
				}
			}
		}
		prob, next = next, prob
		// Disagreement mass at length k.
		var dis float64
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				if a.accept[i] != b.accept[j] {
					dis += prob[i*nb+j]
				}
			}
		}
		total += dis
	}
	return total / float64(maxLen), nil
}

// Extract builds the empirical machine a data series exhibits, using a
// reference machine to label states: it traces the reference machine over
// the events, counts observed transitions, and emits a machine whose
// transition function is the majority observed successor per
// (state, event). Unobserved pairs inherit the reference transition, so
// the result is always complete. The accepting set and start state are
// copied from the reference.
//
// Extract(ref, …) == ref exactly when the data never contradicts the
// reference — deviations (e.g. a corrupted sensor that reports flying
// after two dry days) surface as transition differences, which Distance
// then scores.
func Extract(ref *Machine, series [][]Event) (*Machine, error) {
	if ref == nil {
		return nil, errors.New("fsm: nil reference machine")
	}
	ns, ne := ref.NumStates(), ref.NumEvents()
	counts := make([][]int, ns*ne) // counts[s*ne+e][to]
	for i := range counts {
		counts[i] = make([]int, ns)
	}
	for _, events := range series {
		s := ref.start
		for i, e := range events {
			if int(e) < 0 || int(e) >= ne {
				return nil, fmt.Errorf("fsm: event %d at position %d out of range", e, i)
			}
			to := ref.trans[s*ne+int(e)]
			counts[s*ne+int(e)][to]++
			s = to
		}
	}
	m := &Machine{
		states:   append([]string(nil), ref.states...),
		alphabet: append([]string(nil), ref.alphabet...),
		accept:   append([]bool(nil), ref.accept...),
		start:    ref.start,
		trans:    make([]int, ns*ne),
	}
	for se := range counts {
		best, bestN := -1, 0
		for to, n := range counts[se] {
			if n > bestN {
				best, bestN = to, n
			}
		}
		if best < 0 {
			best = ref.trans[se] // unobserved: inherit
		}
		m.trans[se] = best
	}
	return m, nil
}

// ExtractObserved builds an empirical machine from explicit observed
// transitions (state-labeled data, e.g. from an annotated training set).
// Each observation is (from, event, to). The reference supplies labels,
// start and accepting states; unobserved pairs inherit its transitions.
func ExtractObserved(ref *Machine, obs [][3]int) (*Machine, error) {
	if ref == nil {
		return nil, errors.New("fsm: nil reference machine")
	}
	ns, ne := ref.NumStates(), ref.NumEvents()
	counts := make([][]int, ns*ne)
	for i := range counts {
		counts[i] = make([]int, ns)
	}
	for _, o := range obs {
		from, e, to := o[0], o[1], o[2]
		if from < 0 || from >= ns || to < 0 || to >= ns || e < 0 || e >= ne {
			return nil, fmt.Errorf("fsm: observation %v out of range", o)
		}
		counts[from*ne+e][to]++
	}
	m := &Machine{
		states:   append([]string(nil), ref.states...),
		alphabet: append([]string(nil), ref.alphabet...),
		accept:   append([]bool(nil), ref.accept...),
		start:    ref.start,
		trans:    make([]int, ns*ne),
	}
	for se := range counts {
		best, bestN := -1, 0
		for to, n := range counts[se] {
			if n > bestN {
				best, bestN = to, n
			}
		}
		if best < 0 {
			best = ref.trans[se]
		}
		m.trans[se] = best
	}
	return m, nil
}
