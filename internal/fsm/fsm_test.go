package fsm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelir/internal/synth"
)

func twoStateMachine(t *testing.T) *Machine {
	t.Helper()
	b := NewBuilder([]string{"a", "b"})
	s0 := b.State("s0")
	s1 := b.State("s1")
	b.Start(s0).Accept(s1)
	b.On(s0, 0, s1).On(s0, 1, s0)
	b.On(s1, 0, s1).On(s1, 1, s0)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(nil).Build(); err == nil {
		t.Fatal("want error for empty alphabet")
	}
	b := NewBuilder([]string{"a"})
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for no states")
	}
	s := b.State("s")
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for no start")
	}
	b.Start(s)
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for missing transition")
	}
	b.On(s, 0, s)
	if _, err := b.Build(); err != nil {
		t.Fatalf("complete machine rejected: %v", err)
	}
	// Out-of-range transition target.
	b2 := NewBuilder([]string{"a"})
	s2 := b2.State("s")
	b2.Start(s2).On(s2, 0, 99)
	if _, err := b2.Build(); err == nil {
		t.Fatal("want error for out-of-range target")
	}
}

func TestOnAll(t *testing.T) {
	b := NewBuilder([]string{"a", "b", "c"})
	s0 := b.State("s0")
	s1 := b.State("s1")
	b.Start(s0)
	b.On(s0, 0, s1) // explicit edge survives OnAll
	b.OnAll(s0, s0)
	b.OnAll(s1, s1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := m.Next(s0, 0); n != s1 {
		t.Fatal("OnAll overwrote explicit transition")
	}
	if n, _ := m.Next(s0, 1); n != s0 {
		t.Fatal("OnAll default missing")
	}
}

func TestRunAndTrace(t *testing.T) {
	m := twoStateMachine(t)
	res, err := m.Run([]Event{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// states: s0 -1-> s0 -0-> s1 -0-> s1 -1-> s0
	if res.FirstAccept != 1 || res.AcceptCount != 2 || res.Final != 0 {
		t.Fatalf("run=%+v", res)
	}
	tr, err := m.Trace([]Event{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace=%v want %v", tr, want)
		}
	}
	if _, err := m.Run([]Event{5}); err == nil {
		t.Fatal("want error for out-of-range event")
	}
	if _, err := m.Trace([]Event{-1}); err == nil {
		t.Fatal("want error for negative event")
	}
}

func TestAccessors(t *testing.T) {
	m := twoStateMachine(t)
	if m.NumStates() != 2 || m.NumEvents() != 2 || m.Start() != 0 {
		t.Fatal("accessors wrong")
	}
	if m.StateName(1) != "s1" || !m.IsAccept(1) || m.IsAccept(0) {
		t.Fatal("state metadata wrong")
	}
	if got := m.Alphabet(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("alphabet %v", got)
	}
	if _, err := m.Next(-1, 0); err == nil {
		t.Fatal("want error for bad state")
	}
	if _, err := m.Next(0, 9); err == nil {
		t.Fatal("want error for bad event")
	}
}

func TestFireAntsScenarios(t *testing.T) {
	m := FireAnts()
	cases := []struct {
		name   string
		events []Event
		flyAt  int // expected FirstAccept, -1 = never
	}{
		{"rain then 3 hot dry days", []Event{EvRain, EvDryHot, EvDryHot, EvDryHot}, 3},
		{"rain then 2 dry days only", []Event{EvRain, EvDryHot, EvDryHot}, -1},
		{"third dry day too cold, fourth hot", []Event{EvRain, EvDryHot, EvDryHot, EvDryCold, EvDryHot}, 4},
		{"always cold never flies", []Event{EvRain, EvDryCold, EvDryCold, EvDryCold, EvDryCold}, -1},
		{"rain resets the count", []Event{EvRain, EvDryHot, EvDryHot, EvRain, EvDryHot, EvDryHot, EvDryHot}, 6},
		{"flying persists while dry", []Event{EvRain, EvDryHot, EvDryHot, EvDryHot, EvDryCold}, 3},
		{"rain stops flying", []Event{EvRain, EvDryHot, EvDryHot, EvDryHot, EvRain}, 3},
	}
	for _, c := range cases {
		res, err := m.Run(c.events)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.FirstAccept != c.flyAt {
			t.Errorf("%s: FirstAccept=%d want %d", c.name, res.FirstAccept, c.flyAt)
		}
	}
	// Persistence detail: after flying, a dry cold day stays flying.
	res, _ := m.Run([]Event{EvRain, EvDryHot, EvDryHot, EvDryHot, EvDryCold})
	if res.AcceptCount != 2 {
		t.Fatalf("persistence: AcceptCount=%d want 2", res.AcceptCount)
	}
	// ...but rain ends it.
	res, _ = m.Run([]Event{EvRain, EvDryHot, EvDryHot, EvDryHot, EvRain})
	if res.AcceptCount != 1 || m.IsAccept(res.Final) {
		t.Fatalf("rain reset: %+v", res)
	}
}

func TestClassifyDay(t *testing.T) {
	if ClassifyDay(synth.DayWeather{Rain: true, TempC: 30}) != EvRain {
		t.Fatal("rain misclassified")
	}
	if ClassifyDay(synth.DayWeather{TempC: 25}) != EvDryHot {
		t.Fatal("boundary temp must be hot (>= 25)")
	}
	if ClassifyDay(synth.DayWeather{TempC: 24.9}) != EvDryCold {
		t.Fatal("cool day misclassified")
	}
	days := []synth.DayWeather{{Rain: true}, {TempC: 30}}
	ev := ClassifySeries(days)
	if len(ev) != 2 || ev[0] != EvRain || ev[1] != EvDryHot {
		t.Fatalf("series %v", ev)
	}
}

func TestFlyScore(t *testing.T) {
	m := FireAnts()
	never := []Event{EvRain, EvDryCold, EvDryCold}
	s, err := FlyScore(m, never)
	if err != nil || s != 0 {
		t.Fatalf("never-fly score %v err %v", s, err)
	}
	early := []Event{EvRain, EvDryHot, EvDryHot, EvDryHot, EvDryHot, EvDryHot}
	late := []Event{EvRain, EvDryCold, EvDryCold, EvDryCold, EvDryCold, EvDryHot}
	se, _ := FlyScore(m, early)
	sl, _ := FlyScore(m, late)
	if se <= sl {
		t.Fatalf("earlier+longer flight must score higher: %v vs %v", se, sl)
	}
	if _, err := FlyScore(m, []Event{9}); err == nil {
		t.Fatal("want error for bad event")
	}
}

func TestDistanceProperties(t *testing.T) {
	m := FireAnts()
	d, err := Distance(m, m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("self distance %v", d)
	}
	// A machine that flies after only 2 dry days differs.
	b := NewBuilder(FireAntsAlphabet)
	rain := b.State("rain")
	dry1 := b.State("dry-1")
	fly := b.State("fly")
	b.Start(rain).Accept(fly)
	for _, s := range []int{rain, dry1, fly} {
		b.On(s, EvRain, rain)
	}
	b.On(rain, EvDryHot, dry1).On(rain, EvDryCold, dry1)
	b.On(dry1, EvDryHot, fly).On(dry1, EvDryCold, dry1)
	b.On(fly, EvDryHot, fly).On(fly, EvDryCold, fly)
	early, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Distance(m, early, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 || d1 > 1 {
		t.Fatalf("distance %v out of (0,1]", d1)
	}
	d2, _ := Distance(early, m, 10)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("asymmetric distance %v vs %v", d1, d2)
	}
}

func TestDistanceValidation(t *testing.T) {
	m := FireAnts()
	if _, err := Distance(nil, m, 5); err == nil {
		t.Fatal("want nil machine error")
	}
	if _, err := Distance(m, m, 0); err == nil {
		t.Fatal("want maxLen error")
	}
	other := twoStateMachine(t)
	if _, err := Distance(m, other, 5); err == nil {
		t.Fatal("want alphabet mismatch error")
	}
}

// Property: distance is always in [0,1] and symmetric for random machines.
func TestDistanceRandomProperty(t *testing.T) {
	build := func(rng *rand.Rand, states, events int) *Machine {
		b := NewBuilder(make([]string, events))
		for i := 0; i < states; i++ {
			b.State("s")
		}
		b.Start(0)
		for s := 0; s < states; s++ {
			if rng.Float64() < 0.3 {
				b.Accept(s)
			}
			for e := 0; e < events; e++ {
				b.On(s, Event(e), rng.Intn(states))
			}
		}
		m, err := b.Build()
		if err != nil {
			panic(err)
		}
		return m
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		states := 2 + rng.Intn(5)
		events := 1 + rng.Intn(3)
		a := build(rng, states, events)
		c := build(rng, 2+rng.Intn(5), events)
		d1, err := Distance(a, c, 8)
		if err != nil {
			return false
		}
		d2, _ := Distance(c, a, 8)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractReproducesReference(t *testing.T) {
	m := FireAnts()
	// Generate event streams from real weather; data consistent with the
	// reference yields the reference machine back.
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 5, Regions: 4, Days: 600})
	if err != nil {
		t.Fatal(err)
	}
	series := make([][]Event, len(arch))
	for i, rs := range arch {
		series[i] = ClassifySeries(rs.Days)
	}
	got, err := Extract(m, series)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(m, got, 12)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("extracted machine differs from reference: distance %v", d)
	}
}

func TestExtractObservedDeviation(t *testing.T) {
	m := FireAnts()
	// Observations claiming dry-2 --dry_T>=25--> dry-3+ (instead of fly).
	dry2, dry3 := 2, 3
	obs := [][3]int{}
	for i := 0; i < 10; i++ {
		obs = append(obs, [3]int{dry2, int(EvDryHot), dry3})
	}
	dev, err := ExtractObserved(m, obs)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(m, dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("deviating observations must yield nonzero distance")
	}
	if _, err := ExtractObserved(m, [][3]int{{99, 0, 0}}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := ExtractObserved(nil, nil); err == nil {
		t.Fatal("want nil reference error")
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(nil, nil); err == nil {
		t.Fatal("want nil reference error")
	}
	m := FireAnts()
	if _, err := Extract(m, [][]Event{{Event(99)}}); err == nil {
		t.Fatal("want event range error")
	}
}
