// Allocation-free variants of machine extraction and behavioral
// distance. The engine's FSM-distance scan runs Extract+Distance once
// per region per query; the plain entry points allocate a transition
// count table, a fresh Machine and two probability planes per call.
// Scratch keeps all of that alive across calls so a steady-state
// serving scan allocates nothing. Results are bit-identical: the
// algorithms are the same, only the buffers' lifetimes change.

package fsm

import (
	"errors"
	"fmt"
)

// Scratch is the reusable working set of ExtractWith and DistanceWith.
// A Scratch may be reused across machines of different sizes (buffers
// regrow as needed) but must not be shared concurrently; pool one per
// worker.
type Scratch struct {
	// counts is Extract's flat transition-count table:
	// counts[(s*ne+e)*ns + to].
	counts []int
	// prob/next are Distance's product-automaton probability planes.
	prob, next []float64
	// out is the reusable extracted machine. Its states, alphabet and
	// accept tables alias the reference machine (immutable); only the
	// transition table is rewritten per extraction.
	out Machine
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) ints(n int) []int {
	if cap(sc.counts) < n {
		sc.counts = make([]int, n)
	}
	s := sc.counts[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (sc *Scratch) planes(n int) (prob, next []float64) {
	if cap(sc.prob) < n {
		sc.prob = make([]float64, n)
		sc.next = make([]float64, n)
	}
	prob, next = sc.prob[:n], sc.next[:n]
	for i := range prob {
		prob[i] = 0
		next[i] = 0
	}
	return prob, next
}

// ExtractWith is Extract for a single event series, reusing sc's
// buffers. The returned machine is owned by the scratch and valid only
// until the next ExtractWith call on the same scratch; its state
// labels, alphabet and accepting set alias the reference. Behavior is
// identical to Extract(ref, [][]Event{events}).
func ExtractWith(ref *Machine, events []Event, sc *Scratch) (*Machine, error) {
	if ref == nil {
		return nil, errors.New("fsm: nil reference machine")
	}
	ns, ne := ref.NumStates(), ref.NumEvents()
	counts := sc.ints(ns * ne * ns)
	s := ref.start
	for i, e := range events {
		if int(e) < 0 || int(e) >= ne {
			return nil, fmt.Errorf("fsm: event %d at position %d out of range", e, i)
		}
		to := ref.trans[s*ne+int(e)]
		counts[(s*ne+int(e))*ns+to]++
		s = to
	}
	m := &sc.out
	m.states = ref.states
	m.alphabet = ref.alphabet
	m.accept = ref.accept
	m.start = ref.start
	if cap(m.trans) < ns*ne {
		m.trans = make([]int, ns*ne)
	}
	m.trans = m.trans[:ns*ne]
	for se := 0; se < ns*ne; se++ {
		// Majority observed successor; ties and the unobserved case
		// resolve exactly as Extract does (first maximum, reference
		// transition when nothing was observed).
		best, bestN := -1, 0
		row := counts[se*ns : (se+1)*ns]
		for to, n := range row {
			if n > bestN {
				best, bestN = to, n
			}
		}
		if best < 0 {
			best = ref.trans[se]
		}
		m.trans[se] = best
	}
	return m, nil
}

// DistanceWith is Distance reusing sc's probability planes. Behavior
// is identical to Distance(a, b, maxLen).
func DistanceWith(a, b *Machine, maxLen int, sc *Scratch) (float64, error) {
	if a == nil || b == nil {
		return 0, errors.New("fsm: nil machine")
	}
	if a.NumEvents() != b.NumEvents() {
		return 0, fmt.Errorf("fsm: alphabet sizes differ (%d vs %d)", a.NumEvents(), b.NumEvents())
	}
	if maxLen < 1 {
		return 0, errors.New("fsm: maxLen must be >= 1")
	}
	na, nb := a.NumStates(), b.NumStates()
	ne := a.NumEvents()
	prob, next := sc.planes(na * nb)
	prob[a.start*nb+b.start] = 1

	var total float64
	pe := 1.0 / float64(ne)
	for k := 1; k <= maxLen; k++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				p := prob[i*nb+j]
				if p == 0 {
					continue
				}
				for e := 0; e < ne; e++ {
					ni := a.trans[i*ne+e]
					nj := b.trans[j*ne+e]
					next[ni*nb+nj] += p * pe
				}
			}
		}
		prob, next = next, prob
		var dis float64
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				if a.accept[i] != b.accept[j] {
					dis += prob[i*nb+j]
				}
			}
		}
		total += dis
	}
	return total / float64(maxLen), nil
}
