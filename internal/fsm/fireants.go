package fsm

import (
	"modelir/internal/synth"
)

// The fire-ants scenario of Fig. 1: "the fire ants of a region will fly if
// the region has some rain fall, and then remain dry for at least three
// days. In addition, the temperature needs to reach 25 degrees Celsius or
// higher."

// Fire-ants event alphabet indices.
const (
	EvRain    Event = iota // it rained
	EvDryHot               // no rain, T >= 25°C
	EvDryCold              // no rain, T < 25°C
)

// FireAntsAlphabet names the three daily events.
var FireAntsAlphabet = []string{"rains", "dry_T>=25", "dry_T<25"}

// FlyTempC is the temperature threshold from Fig. 1.
const FlyTempC = 25.0

// FireAnts builds the Fig. 1 machine. States: Rain, Dry-1, Dry-2,
// Dry-3-plus, and the accepting Fire-Ants-Fly. Any rain resets to Rain;
// the third consecutive dry day (or any later dry day) with T >= 25
// triggers flight; once flying, the state persists until rain.
func FireAnts() *Machine {
	b := NewBuilder(FireAntsAlphabet)
	rain := b.State("rain")
	dry1 := b.State("dry-1")
	dry2 := b.State("dry-2")
	dry3 := b.State("dry-3+")
	fly := b.State("fire-ants-fly")
	b.Start(rain).Accept(fly)

	// Rain resets every state.
	for _, s := range []int{rain, dry1, dry2, dry3, fly} {
		b.On(s, EvRain, rain)
	}
	// Dry-day counting; temperature is irrelevant until day 3.
	b.On(rain, EvDryHot, dry1).On(rain, EvDryCold, dry1)
	b.On(dry1, EvDryHot, dry2).On(dry1, EvDryCold, dry2)
	// Third dry day: hot -> fly, cold -> keep counting.
	b.On(dry2, EvDryHot, fly).On(dry2, EvDryCold, dry3)
	b.On(dry3, EvDryHot, fly).On(dry3, EvDryCold, dry3)
	// Flying persists through dry weather.
	b.On(fly, EvDryHot, fly).On(fly, EvDryCold, fly)

	m, err := b.Build()
	if err != nil {
		// Static construction cannot fail.
		panic(err)
	}
	return m
}

// ClassifyDay maps one weather observation to a fire-ants event.
func ClassifyDay(d synth.DayWeather) Event {
	switch {
	case d.Rain:
		return EvRain
	case d.TempC >= FlyTempC:
		return EvDryHot
	default:
		return EvDryCold
	}
}

// ClassifySeries maps a daily series to events.
func ClassifySeries(days []synth.DayWeather) []Event {
	out := make([]Event, len(days))
	for i, d := range days {
		out[i] = ClassifyDay(d)
	}
	return out
}

// FlyScore ranks a region for fire-ants retrieval: the fraction of days
// spent in the accepting state, with an earlier first flight breaking
// ties upward (earlier risk scores higher). Returns 0 for regions that
// never reach the flying state.
func FlyScore(m *Machine, events []Event) (float64, error) {
	res, err := m.Run(events)
	if err != nil {
		return 0, err
	}
	if res.FirstAccept < 0 {
		return 0, nil
	}
	frac := float64(res.AcceptCount) / float64(len(events))
	// Earlier onset adds up to one extra unit, scaled by recency.
	onset := 1 - float64(res.FirstAccept)/float64(len(events))
	return frac + onset, nil
}
