package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(nil); err == nil {
		t.Fatal("want nil machine error")
	}
}

func TestMinimizeRemovesRedundantStates(t *testing.T) {
	// Two states that behave identically must merge.
	b := NewBuilder([]string{"a"})
	s0 := b.State("s0")
	dup1 := b.State("dup1")
	dup2 := b.State("dup2")
	acc := b.State("acc")
	b.Start(s0).Accept(acc)
	b.On(s0, 0, dup1)
	b.On(dup1, 0, acc)
	b.On(dup2, 0, acc) // same behaviour as dup1, unreachable path aside
	b.On(acc, 0, s0)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	// dup2 is unreachable; dup1 unique otherwise: 3 states remain.
	if min.NumStates() != 3 {
		t.Fatalf("minimized to %d states, want 3", min.NumStates())
	}
}

func TestMinimizeMergesEquivalentAcceptStates(t *testing.T) {
	// Machine with two accepting sinks that are behaviourally identical.
	b := NewBuilder([]string{"x", "y"})
	s0 := b.State("s0")
	a1 := b.State("a1")
	a2 := b.State("a2")
	b.Start(s0).Accept(a1).Accept(a2)
	b.On(s0, 0, a1).On(s0, 1, a2)
	b.On(a1, 0, a1).On(a1, 1, a1)
	b.On(a2, 0, a2).On(a2, 1, a2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 2 {
		t.Fatalf("minimized to %d states, want 2 (s0 + merged sink)", min.NumStates())
	}
}

// A reproduction finding: the Fig. 1 machine as drawn is NOT minimal.
// Its "dry-2" and "dry-3+" states are behaviourally equivalent — once
// two dry days have passed, the next hot dry day triggers flight whether
// it is day 3 or day 5 — so the canonical machine has 4 states, not 5.
func TestFireAntsMinimizesToFourStates(t *testing.T) {
	m := FireAnts()
	min, err := Minimize(m)
	if err != nil {
		t.Fatal(err)
	}
	if min.NumStates() != 4 {
		t.Fatalf("fire-ants machine minimized %d -> %d states; want 4",
			m.NumStates(), min.NumStates())
	}
	eq, err := Equivalent(m, min)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("minimized machine not equivalent to original")
	}
	d, err := Distance(m, min, 12)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("behavioural distance to minimized form %v, want 0", d)
	}
}

func TestEquivalent(t *testing.T) {
	m := FireAnts()
	// Add a redundant clone of the dry-1 state: language unchanged.
	b := NewBuilder(FireAntsAlphabet)
	rain := b.State("rain")
	dry1 := b.State("dry-1")
	dry1b := b.State("dry-1-clone")
	dry2 := b.State("dry-2")
	dry3 := b.State("dry-3+")
	fly := b.State("fly")
	b.Start(rain).Accept(fly)
	for _, s := range []int{rain, dry1, dry1b, dry2, dry3, fly} {
		b.On(s, EvRain, rain)
	}
	// rain goes to the clone; both clones behave like dry-1.
	b.On(rain, EvDryHot, dry1b).On(rain, EvDryCold, dry1)
	b.On(dry1, EvDryHot, dry2).On(dry1, EvDryCold, dry2)
	b.On(dry1b, EvDryHot, dry2).On(dry1b, EvDryCold, dry2)
	b.On(dry2, EvDryHot, fly).On(dry2, EvDryCold, dry3)
	b.On(dry3, EvDryHot, fly).On(dry3, EvDryCold, dry3)
	b.On(fly, EvDryHot, fly).On(fly, EvDryCold, fly)
	padded, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equivalent(m, padded)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("padded machine must be equivalent to fire-ants")
	}
	// And a genuinely different machine is not equivalent.
	other := twoStateMachine(t)
	_ = other
	b2 := NewBuilder(FireAntsAlphabet)
	r := b2.State("r")
	f := b2.State("f")
	b2.Start(r).Accept(f)
	b2.On(r, EvRain, r).On(r, EvDryHot, f).On(r, EvDryCold, r)
	b2.On(f, EvRain, r).On(f, EvDryHot, f).On(f, EvDryCold, f)
	eager, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	eq, err = Equivalent(m, eager)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("distinct machines reported equivalent")
	}
}

func TestEqual(t *testing.T) {
	m := FireAnts()
	if !Equal(m, m) {
		t.Fatal("machine not equal to itself")
	}
	if Equal(m, nil) || !Equal(nil, nil) {
		t.Fatal("nil handling wrong")
	}
	if Equal(m, twoStateMachine(t)) {
		t.Fatal("different machines reported equal")
	}
}

// Property: minimization preserves behaviour — Distance(m, Minimize(m))
// is exactly 0 on random machines.
func TestMinimizePreservesLanguageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		states := 2 + rng.Intn(7)
		events := 1 + rng.Intn(3)
		b := NewBuilder(make([]string, events))
		for i := 0; i < states; i++ {
			b.State("s")
		}
		b.Start(0)
		for s := 0; s < states; s++ {
			if rng.Float64() < 0.3 {
				b.Accept(s)
			}
			for e := 0; e < events; e++ {
				b.On(s, Event(e), rng.Intn(states))
			}
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		min, err := Minimize(m)
		if err != nil {
			return false
		}
		if min.NumStates() > m.NumStates() {
			return false
		}
		d, err := Distance(m, min, 10)
		if err != nil {
			return false
		}
		if d != 0 {
			return false
		}
		// Idempotence: minimizing again changes nothing.
		min2, err := Minimize(min)
		if err != nil {
			return false
		}
		return Equal(min, min2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
