package fsm

import (
	"math/rand"
	"testing"
)

// randomEventSeries draws a deterministic event series over ne events.
func randomEventSeries(rng *rand.Rand, n, ne int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = Event(rng.Intn(ne))
	}
	return out
}

// TestExtractWithMatchesExtract: the scratch-backed single-series
// extraction must produce exactly the machine Extract produces, for
// many random series, reusing one scratch throughout.
func TestExtractWithMatchesExtract(t *testing.T) {
	ref := FireAnts()
	rng := rand.New(rand.NewSource(41))
	sc := NewScratch()
	for trial := 0; trial < 50; trial++ {
		ev := randomEventSeries(rng, 5+rng.Intn(200), ref.NumEvents())
		want, err := Extract(ref, [][]Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExtractWith(ref, ev, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.start != want.start || len(got.trans) != len(want.trans) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for i := range want.trans {
			if got.trans[i] != want.trans[i] {
				t.Fatalf("trial %d: trans[%d] = %d, want %d", trial, i, got.trans[i], want.trans[i])
			}
		}
		for s := range want.accept {
			if got.accept[s] != want.accept[s] {
				t.Fatalf("trial %d: accept[%d] differs", trial, s)
			}
		}
	}
	// Out-of-range events surface the same error.
	if _, err := ExtractWith(ref, []Event{99}, sc); err == nil {
		t.Fatal("want out-of-range event error")
	}
	if _, err := ExtractWith(nil, nil, sc); err == nil {
		t.Fatal("want nil reference error")
	}
}

// TestDistanceWithMatchesDistance: the scratch-backed distance must be
// bit-identical to Distance across random extracted machines and
// horizons, with one scratch reused for every call.
func TestDistanceWithMatchesDistance(t *testing.T) {
	ref := FireAnts()
	rng := rand.New(rand.NewSource(43))
	sc := NewScratch()
	for trial := 0; trial < 30; trial++ {
		ev := randomEventSeries(rng, 10+rng.Intn(150), ref.NumEvents())
		ext, err := ExtractWith(ref, ev, sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, horizon := range []int{1, 3, 7} {
			want, err := Distance(ref, ext, horizon)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DistanceWith(ref, ext, horizon, sc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d horizon %d: %v vs %v", trial, horizon, got, want)
			}
		}
	}
	if _, err := DistanceWith(ref, nil, 3, sc); err == nil {
		t.Fatal("want nil machine error")
	}
	if _, err := DistanceWith(ref, ref, 0, sc); err == nil {
		t.Fatal("want bad horizon error")
	}
}

// TestScratchSteadyStateZeroAllocs: a warmed-up extract+distance cycle
// must not allocate — the FSM-distance family's scan-kernel guarantee.
func TestScratchSteadyStateZeroAllocs(t *testing.T) {
	ref := FireAnts()
	rng := rand.New(rand.NewSource(47))
	ev := randomEventSeries(rng, 365, ref.NumEvents())
	sc := NewScratch()
	cycle := func() {
		ext, err := ExtractWith(ref, ev, sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DistanceWith(ref, ext, 8, sc); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Fatalf("steady-state extract+distance allocates %.1f allocs/op, want 0", allocs)
	}
}
