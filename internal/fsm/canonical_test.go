package fsm

import (
	"bytes"
	"errors"
	"testing"

	"modelir/internal/canon"
)

func TestMachineCanonicalRoundTrip(t *testing.T) {
	m := FireAnts()
	enc := m.AppendCanonical(nil)
	r := canon.NewReader(enc)
	got, err := DecodeCanonical(r)
	if err != nil {
		t.Fatalf("DecodeCanonical: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode left %d bytes", r.Remaining())
	}
	if !Equal(m, got) {
		t.Fatal("decoded machine not structurally equal")
	}
	if !bytes.Equal(got.AppendCanonical(nil), enc) {
		t.Fatal("re-encoded machine differs from original encoding")
	}
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeCanonical(canon.NewReader(enc[:n])); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", n)
		}
	}
}

func TestDecodeCanonicalRejectsCorruptMachine(t *testing.T) {
	enc := FireAnts().AppendCanonical(nil)
	cases := map[string]func([]byte) []byte{
		"accept byte outside {0,1}": func(b []byte) []byte {
			// Accept flags sit right after the 8-byte start index.
			// Locate them by decoding the prefix structurally.
			i := acceptOffset(t, b)
			b[i] = 7
			return b
		},
		"start out of range": func(b []byte) []byte {
			i := acceptOffset(t, b) - 1 // low byte of start
			b[i] = 200
			return b
		},
		"transition out of range": func(b []byte) []byte {
			b[len(b)-1] = 250 // low byte of the last transition target
			return b
		},
	}
	for name, mutate := range cases {
		b := mutate(append([]byte(nil), enc...))
		if _, err := DecodeCanonical(canon.NewReader(b)); !errors.Is(err, canon.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// acceptOffset returns the byte offset of the first accept flag in a
// canonical machine encoding by walking the framing.
func acceptOffset(t *testing.T, b []byte) int {
	t.Helper()
	r := canon.NewReader(b)
	if err := r.Expect("FS"); err != nil {
		t.Fatal(err)
	}
	ne, err := r.Count(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ne; i++ {
		if _, err := r.String(); err != nil {
			t.Fatal(err)
		}
	}
	ns, err := r.Count(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ns; i++ {
		if _, err := r.String(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Uint(); err != nil { // start
		t.Fatal(err)
	}
	return len(b) - r.Remaining()
}
