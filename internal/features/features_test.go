package features

import (
	"math"
	"math/rand"
	"testing"

	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

func uniformGrid(seed int64, w, h int, lo, hi float64) *raster.Grid {
	rng := rand.New(rand.NewSource(seed))
	g := raster.MustGrid(w, h)
	for i := range g.Data() {
		g.Data()[i] = lo + rng.Float64()*(hi-lo)
	}
	return g
}

// checkerboard returns a high-contrast periodic texture.
func checkerboard(w, h, period int) *raster.Grid {
	g := raster.MustGrid(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if ((x/period)+(y/period))%2 == 0 {
				g.Set(x, y, 200)
			} else {
				g.Set(x, y, 50)
			}
		}
	}
	return g
}

func TestHistogramBasics(t *testing.T) {
	g, _ := raster.FromData(2, 2, []float64{0, 0, 10, 10})
	h, err := NewHistogram(g, g.Bounds(), 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0] != 0.5 || h.Bins[1] != 0.5 {
		t.Fatalf("bins=%v", h.Bins)
	}
	if _, err := NewHistogram(g, g.Bounds(), 1, 0, 10); err == nil {
		t.Fatal("want error for 1 bin")
	}
	if _, err := NewHistogram(g, g.Bounds(), 4, 5, 5); err == nil {
		t.Fatal("want error for empty range")
	}
}

func TestHistogramClamping(t *testing.T) {
	g, _ := raster.FromData(2, 1, []float64{-100, 1000})
	h, err := NewHistogram(g, g.Bounds(), 4, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0] != 0.5 || h.Bins[3] != 0.5 {
		t.Fatalf("clamping failed: %v", h.Bins)
	}
}

func TestHistogramDistances(t *testing.T) {
	g1 := uniformGrid(1, 16, 16, 0, 50)
	g2 := uniformGrid(2, 16, 16, 50, 100)
	h1, _ := NewHistogram(g1, g1.Bounds(), 8, 0, 100)
	h2, _ := NewHistogram(g2, g2.Bounds(), 8, 0, 100)
	d, err := h1.L1Distance(h2)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1.9 { // disjoint supports -> L1 == 2
		t.Fatalf("disjoint histograms distance %v, want ~2", d)
	}
	same, _ := h1.L1Distance(h1)
	if same != 0 {
		t.Fatalf("self distance %v", same)
	}
	inter, _ := h1.Intersection(h1)
	if math.Abs(inter-1) > 1e-12 {
		t.Fatalf("self intersection %v", inter)
	}
	hBad := Histogram{Lo: 0, Hi: 1, Bins: make([]float64, 3)}
	if _, err := h1.L1Distance(hBad); err == nil {
		t.Fatal("want binning mismatch error")
	}
}

func TestGLCMSeparatesTextures(t *testing.T) {
	smooth := raster.MustGrid(32, 32)
	smooth.Fill(100)
	rough := checkerboard(32, 32, 1)

	ts, err := GLCM(smooth, smooth.Bounds(), 8, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GLCM(rough, rough.Bounds(), 8, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Energy != 1 || ts.Contrast != 0 {
		t.Fatalf("flat texture: %+v", ts)
	}
	if tr.Contrast <= ts.Contrast {
		t.Fatal("checkerboard must have higher contrast than flat")
	}
	if tr.Entropy <= ts.Entropy {
		t.Fatal("checkerboard must have higher entropy than flat")
	}
	if ts.Distance(tr) == 0 {
		t.Fatal("distinct textures at zero distance")
	}
	if ts.Distance(ts) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestGLCMValidation(t *testing.T) {
	g := raster.MustGrid(4, 4)
	if _, err := GLCM(g, g.Bounds(), 1, 0, 1); err == nil {
		t.Fatal("want error for 1 level")
	}
	if _, err := GLCM(g, raster.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}, 4, 0, 1); err == nil {
		t.Fatal("want error for 1x1 region")
	}
	if _, err := GLCM(g, g.Bounds(), 4, 2, 2); err == nil {
		t.Fatal("want error for empty range")
	}
}

func TestComputeBandStats(t *testing.T) {
	g, _ := raster.FromData(2, 2, []float64{1, 2, 3, 4})
	s := ComputeBandStats(g, g.Bounds())
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("stats=%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std=%v", s.Std)
	}
	empty := ComputeBandStats(g, raster.Rect{X0: 9, Y0: 9, X1: 10, Y1: 10})
	if empty != (BandStats{}) {
		t.Fatalf("empty region stats %+v", empty)
	}
}

func TestMomentsCentroid(t *testing.T) {
	g := raster.MustGrid(11, 11)
	g.Set(3, 7, 5) // single point mass
	m := ComputeMoments(g, g.Bounds())
	if m.Mass != 5 || m.Cx != 3 || m.Cy != 7 {
		t.Fatalf("moments %+v", m)
	}
	if m.Mxx != 0 || m.Myy != 0 {
		t.Fatal("point mass must have zero second moments")
	}
	// Two equal masses: centroid midway, spread along x only.
	g2 := raster.MustGrid(11, 11)
	g2.Set(2, 5, 1)
	g2.Set(8, 5, 1)
	m2 := ComputeMoments(g2, g2.Bounds())
	if m2.Cx != 5 || m2.Cy != 5 {
		t.Fatalf("centroid (%v,%v)", m2.Cx, m2.Cy)
	}
	if m2.Mxx != 9 || m2.Myy != 0 {
		t.Fatalf("second moments %+v", m2)
	}
}

func TestMomentsZeroMass(t *testing.T) {
	g := raster.MustGrid(4, 4)
	m := ComputeMoments(g, g.Bounds())
	if m.Mass != 0 || m.Cx != 0 {
		t.Fatalf("zero-mass moments %+v", m)
	}
}

func TestContour(t *testing.T) {
	// Step function: left half 0, right half 10 -> contour along x=15/16.
	g := raster.MustGrid(32, 8)
	for y := 0; y < 8; y++ {
		for x := 16; x < 32; x++ {
			g.Set(x, y, 10)
		}
	}
	cells := Contour(g, 5)
	if len(cells) != 8 {
		t.Fatalf("contour cells=%d want 8 (one per row)", len(cells))
	}
	for _, c := range cells {
		if c.X != 15 {
			t.Fatalf("contour at x=%d, want 15", c.X)
		}
	}
	if got := Contour(g, 100); len(got) != 0 {
		t.Fatalf("no crossing expected, got %d cells", len(got))
	}
}

func TestProgressiveMatchFindsPlantedTexture(t *testing.T) {
	// Scene: mostly smooth noise, one checkerboard tile planted. Period 4
	// so the texture's bimodal histogram survives the 4x downsampling used
	// by the coarse prefilter stage.
	w, h, tile := 128, 128, 16
	g := uniformGrid(7, w, h, 90, 110)
	cb := checkerboard(tile, tile, 4)
	for y := 0; y < tile; y++ {
		for x := 0; x < tile; x++ {
			g.Set(64+x, 48+y, cb.At(x, y))
		}
	}
	tiles := g.Tiles(tile)
	target := raster.Rect{X0: 64, Y0: 48, X1: 64 + tile, Y1: 48 + tile}

	p, err := pyramid.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	const coarseLevel = 2
	coarse := p.Level(coarseLevel)
	coarseTarget := raster.Rect{
		X0: target.X0 / coarse.Scale, Y0: target.Y0 / coarse.Scale,
		X1: target.X1 / coarse.Scale, Y1: target.Y1 / coarse.Scale,
	}

	q := TextureQuery{Bins: 8, Levels: 8, Lo: 0, Hi: 255, PrefilterKeep: 0.2}
	q.TargetHist, err = NewHistogram(coarse.Mean, coarseTarget, q.Bins, q.Lo, q.Hi)
	if err != nil {
		t.Fatal(err)
	}
	q.TargetTexture, err = GLCM(g, target, q.Levels, q.Lo, q.Hi)
	if err != nil {
		t.Fatal(err)
	}

	flat, flatStats, err := MatchFlat(g, tiles, q)
	if err != nil {
		t.Fatal(err)
	}
	if flat[0].Tile != target {
		t.Fatalf("flat match top tile %+v, want %+v", flat[0].Tile, target)
	}
	if flatStats.FullGLCMs != len(tiles) {
		t.Fatalf("flat GLCM count %d", flatStats.FullGLCMs)
	}

	prog, progStats, err := MatchProgressive(p, tiles, q, coarseLevel)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Tile != target {
		t.Fatalf("progressive match top tile %+v, want %+v", prog[0].Tile, target)
	}
	if progStats.FullGLCMs >= flatStats.FullGLCMs {
		t.Fatalf("progressive did %d GLCMs, flat %d: no pruning",
			progStats.FullGLCMs, flatStats.FullGLCMs)
	}
}

func TestMatchProgressiveValidation(t *testing.T) {
	g := uniformGrid(1, 32, 32, 0, 255)
	p, _ := pyramid.Build(g, 2)
	tiles := g.Tiles(8)
	q := TextureQuery{Bins: 4, Levels: 4, Lo: 0, Hi: 255}
	q.TargetHist, _ = NewHistogram(g, tiles[0], 4, 0, 255)
	q.TargetTexture, _ = GLCM(g, tiles[0], 4, 0, 255)
	if _, _, err := MatchProgressive(p, tiles, q, 5); err == nil {
		t.Fatal("want error for out-of-range level")
	}
	bad := q
	bad.PrefilterKeep = 1.5
	if _, _, err := MatchProgressive(p, tiles, bad, 1); err == nil {
		t.Fatal("want error for bad PrefilterKeep")
	}
	badQ := q
	badQ.Bins = 0
	if _, _, err := MatchFlat(g, tiles, badQ); err == nil {
		t.Fatal("want error for bad query")
	}
}
