// Package features implements the multi-abstraction axis of the paper's
// progressive data representation (Section 3.1): "raw information can be
// processed into alternate formulations such as features (texture, color,
// shape, etc.) and semantics that require lower data volumes at the expense
// of fidelity."
//
// It provides per-tile band statistics, intensity histograms, gray-level
// co-occurrence texture descriptors, contour (iso-line) extraction, spatial
// moments, and the progressive texture-matching pipeline of reference [12]
// (coarse histogram prefilter at low resolution, exact co-occurrence
// refinement at full resolution).
package features

import (
	"errors"
	"fmt"
	"math"

	"modelir/internal/raster"
)

// ErrBadBins is returned when a histogram is requested with < 2 bins.
var ErrBadBins = errors.New("features: need at least 2 bins")

// Histogram is a normalized intensity histogram over a fixed value range.
type Histogram struct {
	Lo, Hi float64
	Bins   []float64 // sums to 1 (or all zeros for an empty region)
}

// NewHistogram computes a histogram of g over r with the given bin count
// and value range. Values outside [lo,hi] clamp to the end bins.
func NewHistogram(g *raster.Grid, r raster.Rect, bins int, lo, hi float64) (Histogram, error) {
	if bins < 2 {
		return Histogram{}, ErrBadBins
	}
	if hi <= lo {
		return Histogram{}, fmt.Errorf("features: empty value range [%v,%v]", lo, hi)
	}
	h := Histogram{Lo: lo, Hi: hi, Bins: make([]float64, bins)}
	r = r.Intersect(g.Bounds())
	n := 0
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			b := int(float64(bins) * (row[x] - lo) / (hi - lo))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			h.Bins[b]++
			n++
		}
	}
	if n > 0 {
		for i := range h.Bins {
			h.Bins[i] /= float64(n)
		}
	}
	return h, nil
}

// L1Distance returns the total-variation distance between two histograms
// with identical binning (0 = identical, 2 = disjoint support before the
// 1/2 factor; we return the plain L1 sum in [0,2]).
func (h Histogram) L1Distance(o Histogram) (float64, error) {
	if len(h.Bins) != len(o.Bins) || h.Lo != o.Lo || h.Hi != o.Hi {
		return 0, errors.New("features: histogram binning mismatch")
	}
	var d float64
	for i := range h.Bins {
		d += math.Abs(h.Bins[i] - o.Bins[i])
	}
	return d, nil
}

// Intersection returns the histogram-intersection similarity in [0,1].
func (h Histogram) Intersection(o Histogram) (float64, error) {
	if len(h.Bins) != len(o.Bins) {
		return 0, errors.New("features: histogram binning mismatch")
	}
	var s float64
	for i := range h.Bins {
		s += math.Min(h.Bins[i], o.Bins[i])
	}
	return s, nil
}

// Texture is a gray-level co-occurrence (GLCM) texture descriptor computed
// at offset (1,0) and (0,1), quantized to the given number of gray levels.
// The four Haralick-style scalars capture the texture dimensions used by
// progressive texture matching [12].
type Texture struct {
	Energy      float64 // sum p² — uniformity
	Contrast    float64 // sum (i-j)² p — local variation
	Homogeneity float64 // sum p/(1+|i-j|)
	Entropy     float64 // -sum p log p
}

// GLCM computes the Texture descriptor for g over r, quantizing values in
// [lo,hi] into `levels` gray levels and averaging the horizontal and
// vertical co-occurrence matrices.
func GLCM(g *raster.Grid, r raster.Rect, levels int, lo, hi float64) (Texture, error) {
	if levels < 2 {
		return Texture{}, errors.New("features: need at least 2 gray levels")
	}
	if hi <= lo {
		return Texture{}, fmt.Errorf("features: empty value range [%v,%v]", lo, hi)
	}
	r = r.Intersect(g.Bounds())
	if r.W() < 2 || r.H() < 2 {
		return Texture{}, errors.New("features: region too small for co-occurrence")
	}
	q := func(v float64) int {
		b := int(float64(levels) * (v - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= levels {
			b = levels - 1
		}
		return b
	}
	co := make([]float64, levels*levels)
	n := 0.0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			a := q(g.At(x, y))
			if x+1 < r.X1 {
				co[a*levels+q(g.At(x+1, y))]++
				n++
			}
			if y+1 < r.Y1 {
				co[a*levels+q(g.At(x, y+1))]++
				n++
			}
		}
	}
	var t Texture
	for i := 0; i < levels; i++ {
		for j := 0; j < levels; j++ {
			p := co[i*levels+j] / n
			if p == 0 {
				continue
			}
			d := float64(i - j)
			t.Energy += p * p
			t.Contrast += d * d * p
			t.Homogeneity += p / (1 + math.Abs(d))
			t.Entropy -= p * math.Log(p)
		}
	}
	return t, nil
}

// Distance returns the Euclidean distance between two texture descriptors
// in the 4-D (energy, contrast, homogeneity, entropy) space, with contrast
// log-compressed so one dimension does not dominate.
func (t Texture) Distance(o Texture) float64 {
	d1 := t.Energy - o.Energy
	d2 := math.Log1p(t.Contrast) - math.Log1p(o.Contrast)
	d3 := t.Homogeneity - o.Homogeneity
	d4 := t.Entropy - o.Entropy
	return math.Sqrt(d1*d1 + d2*d2 + d3*d3 + d4*d4)
}

// BandStats is the cheap tile-level statistics vector stored at the
// "features" abstraction level of the archive.
type BandStats struct {
	Mean, Std, Min, Max float64
}

// ComputeBandStats summarizes g over r.
func ComputeBandStats(g *raster.Grid, r raster.Rect) BandStats {
	r = r.Intersect(g.Bounds())
	var sum, sumSq float64
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			v := row[x]
			sum += v
			sumSq += v * v
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			n++
		}
	}
	if n == 0 {
		return BandStats{}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return BandStats{Mean: mean, Std: math.Sqrt(variance), Min: lo, Max: hi}
}

// Moments are raw and central spatial moments of a (non-negative) surface
// over a region: mass, centroid and second central moments. Used for
// shape-level semantics (e.g. locating the center of a high-risk blob).
type Moments struct {
	Mass          float64
	Cx, Cy        float64
	Mxx, Myy, Mxy float64
}

// ComputeMoments integrates g (clamped to >= 0) over r.
func ComputeMoments(g *raster.Grid, r raster.Rect) Moments {
	r = r.Intersect(g.Bounds())
	var m Moments
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			v := row[x]
			if v < 0 {
				v = 0
			}
			m.Mass += v
			m.Cx += v * float64(x)
			m.Cy += v * float64(y)
		}
	}
	if m.Mass == 0 {
		return m
	}
	m.Cx /= m.Mass
	m.Cy /= m.Mass
	for y := r.Y0; y < r.Y1; y++ {
		row := g.Row(y)
		for x := r.X0; x < r.X1; x++ {
			v := row[x]
			if v < 0 {
				v = 0
			}
			dx, dy := float64(x)-m.Cx, float64(y)-m.Cy
			m.Mxx += v * dx * dx
			m.Myy += v * dy * dy
			m.Mxy += v * dx * dy
		}
	}
	m.Mxx /= m.Mass
	m.Myy /= m.Mass
	m.Mxy /= m.Mass
	return m
}

// ContourCell marks a grid cell crossed by the iso-line at the given level.
type ContourCell struct {
	X, Y int
}

// Contour returns the cells where g crosses `level` (i.e. the cell's value
// and at least one 4-neighbor straddle the level). The paper's Section 3.1
// cites contours as a low-volume abstraction "allowing for very rapid
// identification of areas with low or high parameter values".
func Contour(g *raster.Grid, level float64) []ContourCell {
	var out []ContourCell
	w, h := g.Width(), g.Height()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := g.At(x, y)
			above := v >= level
			crossed := false
			if x+1 < w && (g.At(x+1, y) >= level) != above {
				crossed = true
			}
			if !crossed && y+1 < h && (g.At(x, y+1) >= level) != above {
				crossed = true
			}
			if crossed {
				out = append(out, ContourCell{X: x, Y: y})
			}
		}
	}
	return out
}
