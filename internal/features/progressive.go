package features

import (
	"errors"
	"sort"

	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

// TextureQuery describes a progressive texture-matching query in the style
// of [12] ("Progressive Texture Matching for Earth Observing Satellite
// Image Database"): find the tiles whose texture is closest to a target,
// using a cheap coarse-resolution histogram prefilter to skip most of the
// expensive full-resolution co-occurrence computations.
type TextureQuery struct {
	// TargetHist is the exemplar's histogram and MUST be computed at the
	// same coarse resolution the prefilter stage will run at (histograms do
	// not commute with downsampling, so a full-resolution target histogram
	// would be compared against incompatible coarse histograms).
	TargetHist Histogram
	// TargetTexture is the exemplar's full-resolution GLCM descriptor used
	// by the refinement stage.
	TargetTexture Texture
	// Bins / Levels / Lo / Hi define the quantization (must match how the
	// targets were computed).
	Bins, Levels int
	Lo, Hi       float64
	// PrefilterKeep is the fraction (0,1] of tiles that survive the coarse
	// histogram stage, default 0.25. The refinement stage only computes
	// GLCM descriptors for survivors.
	PrefilterKeep float64
}

// TextureMatch is one ranked result of a texture query.
type TextureMatch struct {
	Tile     raster.Rect
	Distance float64
}

// MatchStats reports the work done by a matching run, used by experiment
// E3 to compute the progressive speedup.
type MatchStats struct {
	TilesTotal  int
	CoarseHists int
	FullGLCMs   int
}

// MatchFlat ranks every tile by full-resolution GLCM distance: the
// non-progressive baseline. Results are sorted by ascending distance.
func MatchFlat(g *raster.Grid, tiles []raster.Rect, q TextureQuery) ([]TextureMatch, MatchStats, error) {
	if err := q.validate(); err != nil {
		return nil, MatchStats{}, err
	}
	st := MatchStats{TilesTotal: len(tiles)}
	out := make([]TextureMatch, 0, len(tiles))
	for _, tile := range tiles {
		tx, err := GLCM(g, tile, q.Levels, q.Lo, q.Hi)
		if err != nil {
			return nil, st, err
		}
		st.FullGLCMs++
		out = append(out, TextureMatch{Tile: tile, Distance: q.TargetTexture.Distance(tx)})
	}
	sortMatches(out)
	return out, st, nil
}

// MatchProgressive runs the two-stage pipeline of [12]:
//
//  1. At a coarse pyramid level, compute a cheap histogram per tile and
//     keep the PrefilterKeep fraction closest to the target histogram.
//  2. At full resolution, compute exact GLCM descriptors only for the
//     survivors and rank them.
//
// The returned matches cover only surviving tiles; tiles pruned at stage 1
// are guaranteed to be poor histogram matches but are not exactly ranked —
// this is the fidelity-for-speed trade the paper's abstraction levels make
// explicit.
func MatchProgressive(p *pyramid.Pyramid, tiles []raster.Rect, q TextureQuery, coarseLevel int) ([]TextureMatch, MatchStats, error) {
	if err := q.validate(); err != nil {
		return nil, MatchStats{}, err
	}
	if coarseLevel < 0 || coarseLevel >= p.NumLevels() {
		return nil, MatchStats{}, errors.New("features: coarse level out of range")
	}
	keep := q.PrefilterKeep
	if keep == 0 {
		keep = 0.25
	}
	if keep <= 0 || keep > 1 {
		return nil, MatchStats{}, errors.New("features: PrefilterKeep out of (0,1]")
	}
	st := MatchStats{TilesTotal: len(tiles)}
	coarse := p.Level(coarseLevel)
	scale := coarse.Scale

	type cand struct {
		tile raster.Rect
		d    float64
	}
	cands := make([]cand, 0, len(tiles))
	for _, tile := range tiles {
		cr := raster.Rect{
			X0: tile.X0 / scale, Y0: tile.Y0 / scale,
			X1: (tile.X1 + scale - 1) / scale, Y1: (tile.Y1 + scale - 1) / scale,
		}
		h, err := NewHistogram(coarse.Mean, cr, q.Bins, q.Lo, q.Hi)
		if err != nil {
			return nil, st, err
		}
		st.CoarseHists++
		d, err := q.TargetHist.L1Distance(h)
		if err != nil {
			return nil, st, err
		}
		cands = append(cands, cand{tile: tile, d: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return less(cands[i].tile, cands[j].tile)
	})
	nKeep := int(float64(len(cands))*keep + 0.999)
	if nKeep < 1 {
		nKeep = 1
	}
	if nKeep > len(cands) {
		nKeep = len(cands)
	}

	full := p.Level(0).Mean
	out := make([]TextureMatch, 0, nKeep)
	for _, c := range cands[:nKeep] {
		tx, err := GLCM(full, c.tile, q.Levels, q.Lo, q.Hi)
		if err != nil {
			return nil, st, err
		}
		st.FullGLCMs++
		out = append(out, TextureMatch{Tile: c.tile, Distance: q.TargetTexture.Distance(tx)})
	}
	sortMatches(out)
	return out, st, nil
}

func (q TextureQuery) validate() error {
	if q.Bins < 2 || q.Levels < 2 {
		return errors.New("features: query needs >=2 bins and gray levels")
	}
	if q.Hi <= q.Lo {
		return errors.New("features: query value range empty")
	}
	return nil
}

func sortMatches(ms []TextureMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return less(ms[i].Tile, ms[j].Tile)
	})
}

func less(a, b raster.Rect) bool {
	if a.Y0 != b.Y0 {
		return a.Y0 < b.Y0
	}
	return a.X0 < b.X0
}
