package synth

import (
	"fmt"
	"math/rand"
)

// Lithology enumerates the rock classes used by the geology knowledge model
// of Fig. 4 (riverbed = shale on top of sandstone on top of siltstone).
type Lithology int

// Lithology classes. Values start at 1 so the zero value is invalid,
// catching uninitialized layers.
const (
	Shale Lithology = iota + 1
	Sandstone
	Siltstone
	Limestone
	Dolomite
)

// String returns the lithology name.
func (l Lithology) String() string {
	switch l {
	case Shale:
		return "shale"
	case Sandstone:
		return "sandstone"
	case Siltstone:
		return "siltstone"
	case Limestone:
		return "limestone"
	case Dolomite:
		return "dolomite"
	default:
		return "unknown"
	}
}

// Stratum is one depositional layer in a well: its lithology, the depth of
// its top (feet below surface), its thickness (feet), and the mean gamma-ray
// response (API units) measured across it. Gamma ray is the "additional
// specification" modality in the paper's oil/gas example ("Gamma Ray
// response has to be higher than a certain number", Section 1).
type Stratum struct {
	Lith     Lithology
	TopFt    float64
	ThickFt  float64
	GammaAPI float64
}

// WellLog is one well: an ordered top-down stack of strata plus a sampled
// gamma trace (one sample per foot) for raw-level processing.
type WellLog struct {
	Well   int
	Strata []Stratum
	Gamma  []float64 // 1 sample/ft from surface to total depth
}

// gammaMean returns typical gamma-ray API levels per lithology. Shale is
// strongly radioactive (~90-150 API), clean sandstone/limestone low
// (~20-50), siltstone intermediate.
func gammaMean(l Lithology) (mean, std float64) {
	switch l {
	case Shale:
		return 110, 18
	case Sandstone:
		return 35, 8
	case Siltstone:
		return 65, 12
	case Limestone:
		return 25, 6
	case Dolomite:
		return 30, 7
	default:
		return 50, 10
	}
}

// transitions encodes a first-order depositional Markov chain: which
// lithology tends to follow which going downward. Rows sum to 1.
var transitions = map[Lithology][]struct {
	to Lithology
	p  float64
}{
	Shale:     {{Sandstone, 0.45}, {Siltstone, 0.30}, {Limestone, 0.15}, {Shale, 0.10}},
	Sandstone: {{Siltstone, 0.40}, {Shale, 0.30}, {Dolomite, 0.15}, {Sandstone, 0.15}},
	Siltstone: {{Shale, 0.35}, {Sandstone, 0.30}, {Limestone, 0.20}, {Siltstone, 0.15}},
	Limestone: {{Dolomite, 0.35}, {Shale, 0.30}, {Sandstone, 0.20}, {Limestone, 0.15}},
	Dolomite:  {{Limestone, 0.35}, {Shale, 0.30}, {Siltstone, 0.20}, {Dolomite, 0.15}},
}

// WellConfig parameterizes WellArchive.
type WellConfig struct {
	Seed  int64
	Wells int
	// MinStrata/MaxStrata bound the number of layers per well.
	// Defaults 8/25.
	MinStrata, MaxStrata int
	// RiverbedFraction in [0,1] is the fraction of wells that get a planted
	// shale/sandstone/siltstone riverbed signature with hot gamma, giving
	// the geology retrieval experiment known ground truth. Default 0.15.
	RiverbedFraction float64
}

func (c *WellConfig) applyDefaults() {
	if c.MinStrata == 0 {
		c.MinStrata = 8
	}
	if c.MaxStrata == 0 {
		c.MaxStrata = 25
	}
	if c.RiverbedFraction == 0 {
		c.RiverbedFraction = 0.15
	}
}

// WellArchive generates a deterministic archive of synthetic wells with
// Markov-chain lithology stacking, per-stratum gamma responses, and planted
// riverbed signatures in a known subset of wells. It returns the wells and
// the sorted indices of wells containing a planted signature.
func WellArchive(cfg WellConfig) ([]WellLog, []int, error) {
	cfg.applyDefaults()
	if cfg.Wells <= 0 {
		return nil, nil, fmt.Errorf("synth: wells=%d", cfg.Wells)
	}
	if cfg.MinStrata < 3 || cfg.MaxStrata < cfg.MinStrata {
		return nil, nil, fmt.Errorf("synth: strata bounds [%d,%d] invalid", cfg.MinStrata, cfg.MaxStrata)
	}
	if cfg.RiverbedFraction < 0 || cfg.RiverbedFraction > 1 {
		return nil, nil, fmt.Errorf("synth: riverbed fraction %v out of [0,1]", cfg.RiverbedFraction)
	}
	wells := make([]WellLog, cfg.Wells)
	var planted []int
	for wI := 0; wI < cfg.Wells; wI++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(wI)*104729))
		n := cfg.MinStrata + rng.Intn(cfg.MaxStrata-cfg.MinStrata+1)
		strata := make([]Stratum, 0, n+3)
		lith := Lithology(1 + rng.Intn(5))
		depth := 0.0
		for i := 0; i < n; i++ {
			thick := 5 + rng.ExpFloat64()*25
			mean, std := gammaMean(lith)
			strata = append(strata, Stratum{
				Lith: lith, TopFt: depth, ThickFt: thick,
				GammaAPI: mean + rng.NormFloat64()*std,
			})
			depth += thick
			lith = nextLith(rng, lith)
		}
		isPlanted := rng.Float64() < cfg.RiverbedFraction
		if isPlanted {
			// Insert a tight shale/sandstone/siltstone triplet with hot
			// gamma at a random depth among the existing layers.
			pos := rng.Intn(len(strata))
			triplet := make([]Stratum, 0, 3)
			d := strata[pos].TopFt
			for _, l := range []Lithology{Shale, Sandstone, Siltstone} {
				thick := 4 + rng.Float64()*5 // thin: adjacency gaps < 10 ft
				mean, _ := gammaMean(l)
				g := mean
				if g < 50 {
					g = 50 + rng.Float64()*20 // hot gamma, satisfies >45
				}
				triplet = append(triplet, Stratum{Lith: l, TopFt: d, ThickFt: thick, GammaAPI: g})
				d += thick
			}
			strata = append(strata[:pos], append(triplet, strata[pos:]...)...)
			// Re-stack depths after insertion.
			d = 0
			for i := range strata {
				strata[i].TopFt = d
				d += strata[i].ThickFt
			}
			depth = d
			planted = append(planted, wI)
		}
		// Sample a 1-ft gamma trace from the strata.
		total := int(depth) + 1
		gamma := make([]float64, total)
		si := 0
		for ft := 0; ft < total; ft++ {
			for si < len(strata)-1 && float64(ft) >= strata[si].TopFt+strata[si].ThickFt {
				si++
			}
			gamma[ft] = strata[si].GammaAPI + rng.NormFloat64()*3
		}
		wells[wI] = WellLog{Well: wI, Strata: strata, Gamma: gamma}
	}
	return wells, planted, nil
}

func nextLith(rng *rand.Rand, cur Lithology) Lithology {
	row := transitions[cur]
	r := rng.Float64()
	acc := 0.0
	for _, t := range row {
		acc += t.p
		if r < acc {
			return t.to
		}
	}
	return row[len(row)-1].to
}

// HasRiverbedSignature reports whether a well contains, anywhere in its
// stack, shale directly above sandstone directly above siltstone with
// inter-layer gaps below maxGapFt and all three gamma responses above
// minGamma: the reference (oracle) implementation of the Fig. 4 model used
// to validate SPROC retrieval.
func HasRiverbedSignature(w WellLog, maxGapFt, minGamma float64) bool {
	s := w.Strata
	for i := 0; i+2 < len(s); i++ {
		if s[i].Lith != Shale || s[i+1].Lith != Sandstone || s[i+2].Lith != Siltstone {
			continue
		}
		gap1 := s[i+1].TopFt - (s[i].TopFt + s[i].ThickFt)
		gap2 := s[i+2].TopFt - (s[i+1].TopFt + s[i+1].ThickFt)
		if gap1 < 0 {
			gap1 = 0
		}
		if gap2 < 0 {
			gap2 = 0
		}
		if gap1 > maxGapFt || gap2 > maxGapFt {
			continue
		}
		if s[i].GammaAPI > minGamma && s[i+1].GammaAPI > minGamma && s[i+2].GammaAPI > minGamma {
			return true
		}
	}
	return false
}
