package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// DayWeather is one day of observations for one region: the two modalities
// the fire-ants finite-state model of Fig. 1 consumes (rain occurrence and
// temperature) plus rainfall depth for linear models.
type DayWeather struct {
	Rain   bool
	RainMM float64
	TempC  float64
}

// RegionSeries is a daily weather series for one spatial region.
type RegionSeries struct {
	Region int
	Days   []DayWeather
}

// WeatherConfig parameterizes the archive generator.
type WeatherConfig struct {
	Seed    int64
	Regions int
	Days    int
	// PWetToWet / PDryToWet are the Markov-chain transition probabilities
	// for rain occurrence. Defaults (0.65 / 0.25) give realistic spell
	// lengths. PWetToWet must be in (0,1); same for PDryToWet.
	PWetToWet, PDryToWet float64
	// MeanTempC is the seasonal mean temperature; amplitude AmpTempC is the
	// seasonal swing. Defaults 22 / 8.
	MeanTempC, AmpTempC float64
}

func (c *WeatherConfig) applyDefaults() {
	if c.PWetToWet == 0 {
		c.PWetToWet = 0.65
	}
	if c.PDryToWet == 0 {
		c.PDryToWet = 0.25
	}
	if c.MeanTempC == 0 {
		c.MeanTempC = 22
	}
	if c.AmpTempC == 0 {
		c.AmpTempC = 8
	}
}

// WeatherArchive generates a deterministic multi-region daily weather
// archive using a two-state Markov rain model overlaid with a sinusoidal
// seasonal temperature cycle plus AR(1) weather noise. Each region gets an
// independent stream and a phase offset, so "wet season followed by dry
// season" patterns (the HPS knowledge model's weather clause, Fig. 3)
// appear in some regions and not others.
func WeatherArchive(cfg WeatherConfig) ([]RegionSeries, error) {
	cfg.applyDefaults()
	if cfg.Regions <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("synth: bad weather dims regions=%d days=%d", cfg.Regions, cfg.Days)
	}
	if cfg.PWetToWet <= 0 || cfg.PWetToWet >= 1 || cfg.PDryToWet <= 0 || cfg.PDryToWet >= 1 {
		return nil, fmt.Errorf("synth: rain transition probabilities out of (0,1)")
	}
	out := make([]RegionSeries, cfg.Regions)
	for r := 0; r < cfg.Regions; r++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
		days := make([]DayWeather, cfg.Days)
		wet := rng.Float64() < 0.3
		phase := rng.Float64() * 2 * math.Pi
		// Per-region climate offset: some regions are hotter.
		climate := rng.NormFloat64() * 3
		noise := 0.0
		for d := 0; d < cfg.Days; d++ {
			p := cfg.PDryToWet
			if wet {
				p = cfg.PWetToWet
			}
			// Seasonal rain modulation: rainy season when the seasonal
			// sine is positive.
			season := math.Sin(2*math.Pi*float64(d)/365 + phase)
			p = clamp01(p + 0.20*season)
			wet = rng.Float64() < p
			mm := 0.0
			if wet {
				mm = rng.ExpFloat64() * 8
			}
			noise = 0.8*noise + rng.NormFloat64()*1.5
			temp := cfg.MeanTempC + climate + cfg.AmpTempC*season + noise
			days[d] = DayWeather{Rain: wet, RainMM: mm, TempC: temp}
		}
		out[r] = RegionSeries{Region: r, Days: days}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}

// DrySpellStats summarizes a region series for metadata-level pruning:
// the longest dry spell, total rain days, and the maximum temperature
// observed during any day that ended a >=3-day dry spell. A region whose
// MaxDrySpell < 3 or whose MaxTempAfterDry3 < threshold can never satisfy
// the fire-ants model, so whole series can be skipped without scanning.
type DrySpellStats struct {
	MaxDrySpell      int
	RainDays         int
	MaxTempAfterDry3 float64
}

// SummarizeSeries computes DrySpellStats in one pass.
func SummarizeSeries(s RegionSeries) DrySpellStats {
	st := DrySpellStats{MaxTempAfterDry3: math.Inf(-1)}
	dry := 0
	for _, d := range s.Days {
		if d.Rain {
			st.RainDays++
			dry = 0
			continue
		}
		dry++
		if dry > st.MaxDrySpell {
			st.MaxDrySpell = dry
		}
		if dry >= 3 && d.TempC > st.MaxTempAfterDry3 {
			st.MaxTempAfterDry3 = d.TempC
		}
	}
	return st
}
