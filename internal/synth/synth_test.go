package synth

import (
	"math"
	"testing"

	"modelir/internal/raster"
)

func TestFractalDEMDeterministicAndBounded(t *testing.T) {
	a, err := FractalDEM(7, 33, 21, 0.5, 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FractalDEM(7, 33, 21, 0.5, 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed must give identical DEMs")
	}
	lo, hi := a.MinMax()
	if lo < 100 || hi > 900 {
		t.Fatalf("elevations [%v,%v] outside requested range", lo, hi)
	}
	if hi-lo < 100 {
		t.Fatalf("terrain suspiciously flat: span %v", hi-lo)
	}
}

func TestFractalDEMValidation(t *testing.T) {
	if _, err := FractalDEM(1, 0, 5, 0.5, 0, 1); err == nil {
		t.Error("want error for zero width")
	}
	if _, err := FractalDEM(1, 5, 5, 0, 0, 1); err == nil {
		t.Error("want error for zero roughness")
	}
	if _, err := FractalDEM(1, 5, 5, 0.5, 5, 5); err == nil {
		t.Error("want error for empty elevation range")
	}
}

func TestSmoothFieldRangeAndCorrelation(t *testing.T) {
	g, err := SmoothField(3, 64, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.MinMax()
	if lo < 0 || hi > 1 {
		t.Fatalf("field out of [0,1]: [%v,%v]", lo, hi)
	}
	// Neighboring pixels must be highly correlated (smooth): mean absolute
	// neighbor difference much smaller than field span.
	var sum float64
	var n int
	for y := 0; y < 64; y++ {
		for x := 1; x < 64; x++ {
			sum += math.Abs(g.At(x, y) - g.At(x-1, y))
			n++
		}
	}
	if avg := sum / float64(n); avg > 0.05 {
		t.Fatalf("field not smooth: mean neighbor delta %v", avg)
	}
}

func TestLandsatSceneBandsTrackLatents(t *testing.T) {
	sc, err := LandsatScene(SceneConfig{Seed: 11, W: 96, H: 96})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Bands.NumBands() != 4 {
		t.Fatalf("bands=%d want 4", sc.Bands.NumBands())
	}
	b4, _ := sc.Bands.BandByName("b4")
	// Band 4 should correlate positively with vegetation.
	if r := pearson(b4, sc.Vegetation); r < 0.8 {
		t.Fatalf("b4/vegetation correlation %v, want > 0.8", r)
	}
	b5, _ := sc.Bands.BandByName("b5")
	if r := pearson(b5, sc.Moisture); r > -0.5 {
		t.Fatalf("b5/moisture correlation %v, want strongly negative", r)
	}
	lo, hi := b4.MinMax()
	if lo < 0 || hi > 255 {
		t.Fatalf("digital numbers out of range [%v,%v]", lo, hi)
	}
}

func pearson(a, b *raster.Grid) float64 {
	ma, sa := a.Stats()
	mb, sb := b.Stats()
	var cov float64
	da, db := a.Data(), b.Data()
	for i := range da {
		cov += (da[i] - ma) * (db[i] - mb)
	}
	cov /= float64(len(da))
	return cov / (sa * sb)
}

func TestGaussianTuples(t *testing.T) {
	pts, err := GaussianTuples(5, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10000 || len(pts[0]) != 3 {
		t.Fatalf("shape %dx%d", len(pts), len(pts[0]))
	}
	// Sample mean near 0, sample variance near 1 per dim.
	for d := 0; d < 3; d++ {
		var sum, sumSq float64
		for _, p := range pts {
			sum += p[d]
			sumSq += p[d] * p[d]
		}
		n := float64(len(pts))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
			t.Fatalf("dim %d: mean=%v var=%v", d, mean, variance)
		}
	}
	if _, err := GaussianTuples(1, 0, 3); err == nil {
		t.Error("want error for n=0")
	}
}

func TestCorrelatedTuples(t *testing.T) {
	pts, err := CorrelatedTuples(9, 20000, 2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	var sxy, sx, sy, sxx, syy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxy += p[0] * p[1]
		sxx += p[0] * p[0]
		syy += p[1] * p[1]
	}
	n := float64(len(pts))
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	r := cov / math.Sqrt(vx*vy)
	if math.Abs(r-0.8) > 0.05 {
		t.Fatalf("cross-dim correlation %v, want ~0.8", r)
	}
	if _, err := CorrelatedTuples(1, 10, 2, 1.5); err == nil {
		t.Error("want error for rho out of range")
	}
}

func TestWeatherArchiveShapeAndDeterminism(t *testing.T) {
	cfg := WeatherConfig{Seed: 3, Regions: 5, Days: 400}
	a, err := WeatherArchive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := WeatherArchive(cfg)
	if len(a) != 5 || len(a[0].Days) != 400 {
		t.Fatalf("shape %d regions x %d days", len(a), len(a[0].Days))
	}
	for r := range a {
		for d := range a[r].Days {
			if a[r].Days[d] != b[r].Days[d] {
				t.Fatal("weather archive not deterministic")
			}
		}
	}
}

func TestWeatherPlausibility(t *testing.T) {
	arch, err := WeatherArchive(WeatherConfig{Seed: 8, Regions: 10, Days: 730})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range arch {
		wet := 0
		for _, d := range rs.Days {
			if d.Rain != (d.RainMM > 0) {
				t.Fatal("rain flag and depth disagree")
			}
			if d.TempC < -30 || d.TempC > 60 {
				t.Fatalf("implausible temperature %v", d.TempC)
			}
			if d.Rain {
				wet++
			}
		}
		frac := float64(wet) / float64(len(rs.Days))
		if frac < 0.1 || frac > 0.9 {
			t.Fatalf("region %d wet fraction %v implausible", rs.Region, frac)
		}
	}
}

func TestSummarizeSeries(t *testing.T) {
	s := RegionSeries{Days: []DayWeather{
		{Rain: true, RainMM: 5, TempC: 20},
		{Rain: false, TempC: 22},
		{Rain: false, TempC: 24},
		{Rain: false, TempC: 28}, // 3rd dry day, temp 28
		{Rain: false, TempC: 26}, // 4th dry day
		{Rain: true, RainMM: 2, TempC: 21},
	}}
	st := SummarizeSeries(s)
	if st.MaxDrySpell != 4 {
		t.Fatalf("MaxDrySpell=%d want 4", st.MaxDrySpell)
	}
	if st.RainDays != 2 {
		t.Fatalf("RainDays=%d want 2", st.RainDays)
	}
	if st.MaxTempAfterDry3 != 28 {
		t.Fatalf("MaxTempAfterDry3=%v want 28", st.MaxTempAfterDry3)
	}
}

func TestWellArchive(t *testing.T) {
	wells, planted, err := WellArchive(WellConfig{Seed: 4, Wells: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(wells) != 60 {
		t.Fatalf("wells=%d", len(wells))
	}
	if len(planted) == 0 {
		t.Fatal("no planted riverbeds; expected ~15%")
	}
	for _, wI := range planted {
		if !HasRiverbedSignature(wells[wI], 10, 45) {
			t.Fatalf("planted well %d missing riverbed signature", wI)
		}
	}
	for _, w := range wells {
		// Strata are depth-ordered and contiguous.
		d := 0.0
		for i, s := range w.Strata {
			if math.Abs(s.TopFt-d) > 1e-9 {
				t.Fatalf("well %d stratum %d top %v, want %v", w.Well, i, s.TopFt, d)
			}
			if s.ThickFt <= 0 {
				t.Fatalf("well %d stratum %d nonpositive thickness", w.Well, i)
			}
			if s.Lith < Shale || s.Lith > Dolomite {
				t.Fatalf("well %d stratum %d invalid lithology", w.Well, i)
			}
			d += s.ThickFt
		}
		if len(w.Gamma) != int(d)+1 {
			t.Fatalf("well %d gamma trace length %d, depth %v", w.Well, len(w.Gamma), d)
		}
	}
}

func TestLithologyString(t *testing.T) {
	if Shale.String() != "shale" || Lithology(0).String() != "unknown" {
		t.Fatal("lithology names wrong")
	}
}

func TestOutbreakTracksRisk(t *testing.T) {
	risk := raster.MustGrid(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x >= 32 {
				risk.Set(x, y, 0.95)
			} else {
				risk.Set(x, y, 0.05)
			}
		}
	}
	occ, err := Outbreak(OutbreakConfig{Seed: 2}, risk)
	if err != nil {
		t.Fatal(err)
	}
	var loEvents, hiEvents int
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if occ.At(x, y) > 0 {
				if x >= 32 {
					hiEvents++
				} else {
					loEvents++
				}
			}
		}
	}
	if hiEvents <= loEvents*2 {
		t.Fatalf("occurrences don't track risk: hi=%d lo=%d", hiEvents, loEvents)
	}
	if _, err := Outbreak(OutbreakConfig{}, nil); err == nil {
		t.Error("want error for nil risk")
	}
}

func TestPopulationWeightsNormalized(t *testing.T) {
	w, err := PopulationWeights(6, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if m := w.Mean(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mean weight %v, want 1", m)
	}
	lo, _ := w.MinMax()
	if lo < 0 {
		t.Fatalf("negative population weight %v", lo)
	}
}
