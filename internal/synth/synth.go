// Package synth generates the synthetic multi-modal archives the
// reproduction runs on. The paper evaluates on Landsat Thematic Mapper
// imagery, digital elevation maps, weather-station series and well logs —
// data we do not have. Each generator here plants the statistical structure
// the framework's behaviour depends on (spatial correlation, seasonal
// regimes, layered lithology, Gaussian tuple clouds) so that pruning rates,
// pyramid fidelity and index selectivity behave like the real modalities.
// All generators are fully deterministic given a seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"modelir/internal/raster"
)

// FractalDEM generates a digital-elevation-map-like surface using midpoint
// displacement (diamond-square) on a (2^n+1)² lattice, then crops to w×h.
// roughness in (0,1] controls how quickly displacement amplitude decays:
// small values give smooth rolling terrain, values near 1 give jagged peaks.
// Output elevations are scaled to [minElev, maxElev] meters.
func FractalDEM(seed int64, w, h int, roughness, minElev, maxElev float64) (*raster.Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("synth: bad DEM dims %dx%d", w, h)
	}
	if roughness <= 0 || roughness > 1 {
		return nil, fmt.Errorf("synth: roughness %v out of (0,1]", roughness)
	}
	if maxElev <= minElev {
		return nil, fmt.Errorf("synth: elevation range [%v,%v] empty", minElev, maxElev)
	}
	side := 1
	for side+1 < w || side+1 < h {
		side *= 2
	}
	n := side + 1
	rng := rand.New(rand.NewSource(seed))
	f := make([]float64, n*n)
	at := func(x, y int) float64 { return f[y*n+x] }
	set := func(x, y int, v float64) { f[y*n+x] = v }

	// Seed corners.
	for _, c := range [][2]int{{0, 0}, {side, 0}, {0, side}, {side, side}} {
		set(c[0], c[1], rng.NormFloat64())
	}
	amp := 1.0
	for step := side; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < n; y += step {
			for x := half; x < n; x += step {
				avg := (at(x-half, y-half) + at(x+half, y-half) +
					at(x-half, y+half) + at(x+half, y+half)) / 4
				set(x, y, avg+rng.NormFloat64()*amp)
			}
		}
		// Square step.
		for y := 0; y < n; y += half {
			x0 := half
			if (y/half)%2 == 1 {
				x0 = 0
			}
			for x := x0; x < n; x += step {
				sum, cnt := 0.0, 0
				for _, d := range [][2]int{{x - half, y}, {x + half, y}, {x, y - half}, {x, y + half}} {
					if d[0] >= 0 && d[0] < n && d[1] >= 0 && d[1] < n {
						sum += at(d[0], d[1])
						cnt++
					}
				}
				set(x, y, sum/float64(cnt)+rng.NormFloat64()*amp)
			}
		}
		amp *= roughness
	}

	out := raster.MustGrid(w, h)
	lo, hi := math.Inf(1), math.Inf(-1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := at(x, y)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (at(x, y) - lo) / span
			out.Set(x, y, minElev+v*(maxElev-minElev))
		}
	}
	return out, nil
}

// SmoothField returns a spatially correlated random field in [0,1] built by
// bilinear interpolation of a coarse lattice of uniform noise. cells
// controls the correlation length: the coarse lattice is cells×cells, so
// larger values mean finer structure.
func SmoothField(seed int64, w, h, cells int) (*raster.Grid, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("synth: bad field dims %dx%d", w, h)
	}
	if cells < 1 {
		return nil, fmt.Errorf("synth: cells %d < 1", cells)
	}
	rng := rand.New(rand.NewSource(seed))
	cw, ch := cells+1, cells+1
	lattice := make([]float64, cw*ch)
	for i := range lattice {
		lattice[i] = rng.Float64()
	}
	out := raster.MustGrid(w, h)
	for y := 0; y < h; y++ {
		fy := float64(y) / float64(h) * float64(cells)
		iy := int(fy)
		if iy >= cells {
			iy = cells - 1
		}
		ty := fy - float64(iy)
		for x := 0; x < w; x++ {
			fx := float64(x) / float64(w) * float64(cells)
			ix := int(fx)
			if ix >= cells {
				ix = cells - 1
			}
			tx := fx - float64(ix)
			v00 := lattice[iy*cw+ix]
			v10 := lattice[iy*cw+ix+1]
			v01 := lattice[(iy+1)*cw+ix]
			v11 := lattice[(iy+1)*cw+ix+1]
			v := v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
			out.Set(x, y, v)
		}
	}
	return out, nil
}

// SceneConfig parameterizes LandsatScene.
type SceneConfig struct {
	Seed int64
	W, H int
	// Cells is the correlation lattice size for the latent fields
	// (vegetation, moisture, urbanization). Defaults to 8 when zero.
	Cells int
	// Noise is the per-pixel i.i.d. noise amplitude added to each band,
	// in digital-number units. Defaults to 4 when zero.
	Noise float64
}

// Scene bundles a synthetic multi-spectral acquisition: TM-like bands 4, 5
// and 7 (digital numbers in [0,255]), an elevation band in meters, and the
// latent fields the bands were derived from (useful as ground truth).
type Scene struct {
	Bands *raster.Multiband // "b4", "b5", "b7", "elev"
	// Latent generative fields in [0,1].
	Vegetation, Moisture, Urban *raster.Grid
}

// LandsatScene synthesizes a Landsat-TM-like scene. Band physics are
// first-order: band 4 (near IR) tracks vegetation, band 5 (short-wave IR)
// tracks dryness (inverse moisture) with vegetation attenuation, band 7
// (mid IR) tracks bare soil / urbanization. This mirrors how the HPS risk
// model of Section 2.1 reads vegetation/moisture conditions out of bands
// 4, 5 and 7.
func LandsatScene(cfg SceneConfig) (*Scene, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("synth: bad scene dims %dx%d", cfg.W, cfg.H)
	}
	cells := cfg.Cells
	if cells == 0 {
		cells = 8
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 4
	}
	veg, err := SmoothField(cfg.Seed+1, cfg.W, cfg.H, cells)
	if err != nil {
		return nil, err
	}
	moist, err := SmoothField(cfg.Seed+2, cfg.W, cfg.H, cells)
	if err != nil {
		return nil, err
	}
	urban, err := SmoothField(cfg.Seed+3, cfg.W, cfg.H, cells*2)
	if err != nil {
		return nil, err
	}
	dem, err := FractalDEM(cfg.Seed+4, cfg.W, cfg.H, 0.55, 0, 1500)
	if err != nil {
		return nil, err
	}

	b4 := raster.MustGrid(cfg.W, cfg.H)
	b5 := raster.MustGrid(cfg.W, cfg.H)
	b7 := raster.MustGrid(cfg.W, cfg.H)
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			v, m, u := veg.At(x, y), moist.At(x, y), urban.At(x, y)
			dn4 := 40 + 180*v - 30*u
			dn5 := 30 + 160*(1-m)*(1-0.5*v)
			dn7 := 20 + 120*u + 60*(1-m)*(1-v)
			b4.Set(x, y, clampDN(dn4+rng.NormFloat64()*noise))
			b5.Set(x, y, clampDN(dn5+rng.NormFloat64()*noise))
			b7.Set(x, y, clampDN(dn7+rng.NormFloat64()*noise))
		}
	}
	mb, err := raster.Stack([]string{"b4", "b5", "b7", "elev"}, b4, b5, b7, dem)
	if err != nil {
		return nil, err
	}
	return &Scene{Bands: mb, Vegetation: veg, Moisture: moist, Urban: urban}, nil
}

func clampDN(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// GaussianTuples generates n i.i.d. d-dimensional Gaussian points
// (mean 0, unit variance per coordinate): the workload the Onion paper's
// 13,000×/1,400× speedups were measured on ("three-parameter Gaussian
// distributed data sets", Section 3.2).
func GaussianTuples(seed int64, n, d int) ([][]float64, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("synth: bad tuple dims n=%d d=%d", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		out[i] = flat[i*d : (i+1)*d : (i+1)*d]
	}
	return out, nil
}

// CorrelatedTuples generates n d-dimensional points whose coordinates share
// a common latent factor with the given correlation rho in [0,1). Used for
// index-robustness tests: correlated clouds have thinner convex layers.
func CorrelatedTuples(seed int64, n, d int, rho float64) ([][]float64, error) {
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("synth: rho %v out of [0,1)", rho)
	}
	pts, err := GaussianTuples(seed, n, d)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 999))
	a := math.Sqrt(rho)
	b := math.Sqrt(1 - rho)
	for i := range pts {
		z := rng.NormFloat64()
		for j := range pts[i] {
			pts[i][j] = a*z + b*pts[i][j]
		}
	}
	return pts, nil
}
