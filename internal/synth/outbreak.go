package synth

import (
	"fmt"
	"math"
	"math/rand"

	"modelir/internal/raster"
)

// OutbreakConfig parameterizes Outbreak.
type OutbreakConfig struct {
	Seed int64
	// Link noise: standard deviation of the latent-risk perturbation before
	// thresholding into occurrences. Larger values make the model's job
	// harder (lower attainable precision). Default 0.15.
	NoiseStd float64
	// BaseRate shifts the overall prevalence of events; default -1.0
	// (roughly 15-25% of locations see at least one occurrence for typical
	// risk fields in [0,1]).
	BaseRate float64
}

// Outbreak samples a ground-truth occurrence map O(x,y) >= 0 from a latent
// risk field in [0,1] via a noisy threshold/Poisson scheme. Section 4.1
// defines model accuracy against exactly such a map: "low risk is
// associated with zero occurrence of an event, while high risk is
// associated with more than zero occurrence". Returned grid holds
// occurrence counts.
func Outbreak(cfg OutbreakConfig, risk *raster.Grid) (*raster.Grid, error) {
	if risk == nil {
		return nil, fmt.Errorf("synth: nil risk field")
	}
	noise := cfg.NoiseStd
	if noise == 0 {
		noise = 0.15
	}
	base := cfg.BaseRate
	if base == 0 {
		base = -1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := raster.MustGrid(risk.Width(), risk.Height())
	for y := 0; y < risk.Height(); y++ {
		for x := 0; x < risk.Width(); x++ {
			z := 3*risk.At(x, y) + base + rng.NormFloat64()*noise*3
			lambda := math.Exp(z) / (1 + math.Exp(z)) // in (0,1)
			// Occurrence count: Bernoulli on lambda, then geometric tail
			// for multi-occurrence locations.
			n := 0
			if rng.Float64() < lambda {
				n = 1
				for rng.Float64() < 0.35 {
					n++
				}
			}
			out.Set(x, y, float64(n))
		}
	}
	return out, nil
}

// PopulationWeights builds the w(x,y) importance surface of Section 4.1
// ("determined by the relative importance of the risk at that location,
// such as the population"): a smooth field with a few dense urban peaks,
// normalized to mean 1.
func PopulationWeights(seed int64, w, h int) (*raster.Grid, error) {
	base, err := SmoothField(seed, w, h, 6)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 17))
	// Add 3-6 urban peaks.
	peaks := 3 + rng.Intn(4)
	for p := 0; p < peaks; p++ {
		cx, cy := rng.Intn(w), rng.Intn(h)
		amp := 3 + rng.Float64()*5
		sigma := 3 + rng.Float64()*float64(minI(w, h))/8
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d2 := float64((x-cx)*(x-cx) + (y-cy)*(y-cy))
				base.Set(x, y, base.At(x, y)+amp*math.Exp(-d2/(2*sigma*sigma)))
			}
		}
	}
	m := base.Mean()
	base.Apply(func(v float64) float64 { return v / m })
	return base, nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
