// Package metrics implements the paper's model-performance machinery
// (Section 4.1) verbatim: per-location miss / false-alarm probabilities
// against an occurrence ground truth O(x,y), the weighted total cost
//
//	CT = Σ w(x,y) · C(x,y),
//	C(x,y) = cm·Pm(x,y)·P[O=0] + cf·Pf(x,y)·P[O>0],
//
// threshold sweeps for the miss/false-alarm trade-off, and
// precision/recall for top-K retrieval ("the precision is defined as the
// percentage of retrieved results that are correct, while the recall is
// defined as the percentage of correct results that are retrieved").
package metrics

import (
	"errors"
	"fmt"
	"sort"

	"modelir/internal/raster"
	"modelir/internal/topk"
)

// Costs carries the per-error-type costs of Section 4.1.
type Costs struct {
	// Miss (cm) is the cost of predicting low risk where events occurred.
	Miss float64
	// FalseAlarm (cf) is the cost of predicting high risk where no event
	// occurred.
	FalseAlarm float64
}

// Confusion is the 2×2 decision summary at one threshold.
type Confusion struct {
	TruePos  int // R >= T and O > 0
	FalsePos int // R >= T and O = 0   (false alarms)
	TrueNeg  int // R <  T and O = 0
	FalseNeg int // R <  T and O > 0   (misses)
}

// MissRate returns P(miss) = FN / (FN + TP): the fraction of event
// locations labeled low-risk.
func (c Confusion) MissRate() float64 {
	if c.FalseNeg+c.TruePos == 0 {
		return 0
	}
	return float64(c.FalseNeg) / float64(c.FalseNeg+c.TruePos)
}

// FalseAlarmRate returns P(false alarm) = FP / (FP + TN).
func (c Confusion) FalseAlarmRate() float64 {
	if c.FalsePos+c.TrueNeg == 0 {
		return 0
	}
	return float64(c.FalsePos) / float64(c.FalsePos+c.TrueNeg)
}

// Evaluate thresholds the risk surface at T and tabulates the confusion
// against the occurrence map (O > 0 means event).
func Evaluate(risk, occurrence *raster.Grid, threshold float64) (Confusion, error) {
	var c Confusion
	if risk == nil || occurrence == nil {
		return c, errors.New("metrics: nil surface")
	}
	if risk.Width() != occurrence.Width() || risk.Height() != occurrence.Height() {
		return c, fmt.Errorf("metrics: shape mismatch %dx%d vs %dx%d",
			risk.Width(), risk.Height(), occurrence.Width(), occurrence.Height())
	}
	for y := 0; y < risk.Height(); y++ {
		for x := 0; x < risk.Width(); x++ {
			high := risk.At(x, y) >= threshold
			event := occurrence.At(x, y) > 0
			switch {
			case high && event:
				c.TruePos++
			case high && !event:
				c.FalsePos++
			case !high && event:
				c.FalseNeg++
			default:
				c.TrueNeg++
			}
		}
	}
	return c, nil
}

// TotalCost computes CT = Σ w(x,y)·C(x,y) for a hard-threshold decision
// rule: a location contributes cm·w when it is a miss and cf·w when it is
// a false alarm (the per-location probabilities of Section 4.1 collapse
// to indicators once the threshold decision is made). weights may be nil
// for uniform w = 1.
func TotalCost(risk, occurrence, weights *raster.Grid, threshold float64, costs Costs) (float64, error) {
	if risk == nil || occurrence == nil {
		return 0, errors.New("metrics: nil surface")
	}
	if risk.Width() != occurrence.Width() || risk.Height() != occurrence.Height() {
		return 0, errors.New("metrics: shape mismatch")
	}
	if weights != nil &&
		(weights.Width() != risk.Width() || weights.Height() != risk.Height()) {
		return 0, errors.New("metrics: weight shape mismatch")
	}
	if costs.Miss < 0 || costs.FalseAlarm < 0 {
		return 0, errors.New("metrics: negative costs")
	}
	total := 0.0
	for y := 0; y < risk.Height(); y++ {
		for x := 0; x < risk.Width(); x++ {
			w := 1.0
			if weights != nil {
				w = weights.At(x, y)
			}
			high := risk.At(x, y) >= threshold
			event := occurrence.At(x, y) > 0
			if !high && event {
				total += costs.Miss * w
			} else if high && !event {
				total += costs.FalseAlarm * w
			}
		}
	}
	return total, nil
}

// SweepPoint is one row of a threshold sweep.
type SweepPoint struct {
	Threshold float64
	Pm        float64 // miss rate
	Pf        float64 // false-alarm rate
	Cost      float64 // CT at this threshold
	Confusion Confusion
}

// Sweep evaluates thresholds between the risk surface's min and max in
// `steps` uniform increments, returning the trade-off curve (the basis of
// experiment E6's table). steps must be >= 2.
func Sweep(risk, occurrence, weights *raster.Grid, costs Costs, steps int) ([]SweepPoint, error) {
	if steps < 2 {
		return nil, errors.New("metrics: need >= 2 sweep steps")
	}
	lo, hi := risk.MinMax()
	out := make([]SweepPoint, 0, steps)
	for i := 0; i < steps; i++ {
		t := lo + (hi-lo)*float64(i)/float64(steps-1)
		conf, err := Evaluate(risk, occurrence, t)
		if err != nil {
			return nil, err
		}
		cost, err := TotalCost(risk, occurrence, weights, t, costs)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Threshold: t, Pm: conf.MissRate(), Pf: conf.FalseAlarmRate(),
			Cost: cost, Confusion: conf,
		})
	}
	return out, nil
}

// BestThreshold returns the sweep point minimizing CT.
func BestThreshold(sweep []SweepPoint) (SweepPoint, error) {
	if len(sweep) == 0 {
		return SweepPoint{}, errors.New("metrics: empty sweep")
	}
	best := sweep[0]
	for _, p := range sweep[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best, nil
}

// PrecisionRecall scores a retrieved top-K result set against a relevance
// predicate: precision = |retrieved ∩ relevant| / |retrieved|, recall =
// |retrieved ∩ relevant| / |relevant|. totalRelevant must be the number
// of relevant items in the whole collection.
func PrecisionRecall(retrieved []topk.Item, relevant func(id int64) bool, totalRelevant int) (precision, recall float64, err error) {
	if relevant == nil {
		return 0, 0, errors.New("metrics: nil relevance predicate")
	}
	if totalRelevant < 0 {
		return 0, 0, errors.New("metrics: negative relevant count")
	}
	if len(retrieved) == 0 {
		return 0, 0, nil
	}
	hits := 0
	for _, it := range retrieved {
		if relevant(it.ID) {
			hits++
		}
	}
	precision = float64(hits) / float64(len(retrieved))
	if totalRelevant > 0 {
		recall = float64(hits) / float64(totalRelevant)
	}
	return precision, recall, nil
}

// TopKLocations ranks grid locations by a risk surface and returns the
// top-K as items whose ID encodes the location (ID = y*width + x) —
// Section 4.1's "the top-K retrieval is really based on the ordering of
// R(x,y)".
func TopKLocations(risk *raster.Grid, k int) ([]topk.Item, error) {
	if risk == nil {
		return nil, errors.New("metrics: nil risk surface")
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, err
	}
	for y := 0; y < risk.Height(); y++ {
		row := risk.Row(y)
		for x, v := range row {
			h.OfferScore(int64(y*risk.Width()+x), v)
		}
	}
	return h.Results(), nil
}

// PRAtK computes precision/recall of top-K risk locations against the
// occurrence map for each requested K (ascending order not required).
func PRAtK(risk, occurrence *raster.Grid, ks []int) (map[int][2]float64, error) {
	if risk == nil || occurrence == nil {
		return nil, errors.New("metrics: nil surface")
	}
	if risk.Width() != occurrence.Width() || risk.Height() != occurrence.Height() {
		return nil, errors.New("metrics: shape mismatch")
	}
	totalRelevant := 0
	for _, v := range occurrence.Data() {
		if v > 0 {
			totalRelevant++
		}
	}
	relevant := func(id int64) bool {
		return occurrence.Data()[id] > 0
	}
	out := make(map[int][2]float64, len(ks))
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	for _, k := range sorted {
		items, err := TopKLocations(risk, k)
		if err != nil {
			return nil, err
		}
		p, r, err := PrecisionRecall(items, relevant, totalRelevant)
		if err != nil {
			return nil, err
		}
		out[k] = [2]float64{p, r}
	}
	return out, nil
}
