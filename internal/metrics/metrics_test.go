package metrics

import (
	"math"
	"testing"

	"modelir/internal/raster"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// tinyCase: 2x2 grid. Risk: [0.9 0.1; 0.8 0.2], occurrences at (0,0) and
// (1,1) only.
func tinyCase() (*raster.Grid, *raster.Grid) {
	risk, _ := raster.FromData(2, 2, []float64{0.9, 0.1, 0.8, 0.2})
	occ, _ := raster.FromData(2, 2, []float64{1, 0, 0, 2})
	return risk, occ
}

func TestEvaluateConfusion(t *testing.T) {
	risk, occ := tinyCase()
	c, err := Evaluate(risk, occ, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0.5: high = {(0,0):0.9, (0,1):0.8}. Events = {(0,0),(1,1)}.
	if c.TruePos != 1 || c.FalsePos != 1 || c.FalseNeg != 1 || c.TrueNeg != 1 {
		t.Fatalf("confusion %+v", c)
	}
	if c.MissRate() != 0.5 || c.FalseAlarmRate() != 0.5 {
		t.Fatalf("rates Pm=%v Pf=%v", c.MissRate(), c.FalseAlarmRate())
	}
}

func TestEvaluateValidation(t *testing.T) {
	risk, _ := tinyCase()
	if _, err := Evaluate(nil, risk, 0.5); err == nil {
		t.Fatal("want nil error")
	}
	other := raster.MustGrid(3, 3)
	if _, err := Evaluate(risk, other, 0.5); err == nil {
		t.Fatal("want shape error")
	}
}

func TestConfusionDegenerateRates(t *testing.T) {
	c := Confusion{}
	if c.MissRate() != 0 || c.FalseAlarmRate() != 0 {
		t.Fatal("empty confusion must have zero rates")
	}
}

func TestTotalCost(t *testing.T) {
	risk, occ := tinyCase()
	costs := Costs{Miss: 10, FalseAlarm: 1}
	// At T=0.5: one miss at (1,1), one false alarm at (0,1).
	ct, err := TotalCost(risk, occ, nil, 0.5, costs)
	if err != nil {
		t.Fatal(err)
	}
	if ct != 11 {
		t.Fatalf("CT=%v want 11", ct)
	}
	// Weighted: weight 3 at the miss location.
	w, _ := raster.FromData(2, 2, []float64{1, 1, 1, 3})
	ct, err = TotalCost(risk, occ, w, 0.5, costs)
	if err != nil {
		t.Fatal(err)
	}
	if ct != 31 {
		t.Fatalf("weighted CT=%v want 31", ct)
	}
}

func TestTotalCostValidation(t *testing.T) {
	risk, occ := tinyCase()
	if _, err := TotalCost(nil, occ, nil, 0.5, Costs{}); err == nil {
		t.Fatal("want nil error")
	}
	if _, err := TotalCost(risk, raster.MustGrid(1, 1), nil, 0.5, Costs{}); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := TotalCost(risk, occ, raster.MustGrid(1, 1), 0.5, Costs{}); err == nil {
		t.Fatal("want weight shape error")
	}
	if _, err := TotalCost(risk, occ, nil, 0.5, Costs{Miss: -1}); err == nil {
		t.Fatal("want negative cost error")
	}
}

func TestSweepTradeoff(t *testing.T) {
	risk, occ := tinyCase()
	sweep, err := Sweep(risk, occ, nil, Costs{Miss: 1, FalseAlarm: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 10 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	// Miss rate must be non-decreasing in threshold; false-alarm rate
	// non-increasing.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].Pm < sweep[i-1].Pm-1e-12 {
			t.Fatalf("miss rate decreased at step %d", i)
		}
		if sweep[i].Pf > sweep[i-1].Pf+1e-12 {
			t.Fatalf("false-alarm rate increased at step %d", i)
		}
	}
	if _, err := Sweep(risk, occ, nil, Costs{}, 1); err == nil {
		t.Fatal("want steps error")
	}
	best, err := BestThreshold(sweep)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sweep {
		if p.Cost < best.Cost {
			t.Fatal("BestThreshold not minimal")
		}
	}
	if _, err := BestThreshold(nil); err == nil {
		t.Fatal("want empty sweep error")
	}
}

func TestCostAsymmetryMovesThreshold(t *testing.T) {
	// With expensive misses the optimal threshold should be lower (label
	// more area high-risk) than with expensive false alarms.
	risk, err := synth.SmoothField(3, 64, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := synth.Outbreak(synth.OutbreakConfig{Seed: 4}, risk)
	if err != nil {
		t.Fatal(err)
	}
	missHeavy, err := Sweep(risk, occ, nil, Costs{Miss: 20, FalseAlarm: 1}, 40)
	if err != nil {
		t.Fatal(err)
	}
	faHeavy, err := Sweep(risk, occ, nil, Costs{Miss: 1, FalseAlarm: 20}, 40)
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := BestThreshold(missHeavy)
	bf, _ := BestThreshold(faHeavy)
	if bm.Threshold >= bf.Threshold {
		t.Fatalf("miss-heavy threshold %v must be below false-alarm-heavy %v",
			bm.Threshold, bf.Threshold)
	}
}

func TestPrecisionRecall(t *testing.T) {
	items := []topk.Item{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	relevant := func(id int64) bool { return id%2 == 0 } // 0 and 2
	p, r, err := PrecisionRecall(items, relevant, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 || r != 0.5 {
		t.Fatalf("P=%v R=%v want 0.5/0.5", p, r)
	}
	p, r, err = PrecisionRecall(nil, relevant, 4)
	if err != nil || p != 0 || r != 0 {
		t.Fatal("empty retrieval must score 0/0 without error")
	}
	if _, _, err := PrecisionRecall(items, nil, 4); err == nil {
		t.Fatal("want nil predicate error")
	}
	if _, _, err := PrecisionRecall(items, relevant, -1); err == nil {
		t.Fatal("want negative total error")
	}
	// Zero relevant: recall stays 0.
	_, r, err = PrecisionRecall(items, func(int64) bool { return false }, 0)
	if err != nil || r != 0 {
		t.Fatal("zero-relevant recall must be 0")
	}
}

func TestTopKLocations(t *testing.T) {
	risk, _ := raster.FromData(3, 1, []float64{0.2, 0.9, 0.5})
	items, err := TopKLocations(risk, 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].ID != 1 || items[1].ID != 2 {
		t.Fatalf("top locations %+v", items)
	}
	if _, err := TopKLocations(nil, 2); err == nil {
		t.Fatal("want nil error")
	}
	if _, err := TopKLocations(risk, 0); err == nil {
		t.Fatal("want k error")
	}
}

func TestPRAtKImprovesWithInformativeModel(t *testing.T) {
	truthRisk, err := synth.SmoothField(7, 48, 48, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse outbreak (BaseRate -3) so top-risk locations are clearly
	// enriched relative to the base rate.
	occ, err := synth.Outbreak(synth.OutbreakConfig{Seed: 8, NoiseStd: 0.05, BaseRate: -3}, truthRisk)
	if err != nil {
		t.Fatal(err)
	}
	// Informative model: the true risk. Uninformative: constant+noise.
	pr, err := PRAtK(truthRisk, occ, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	flat := raster.MustGrid(48, 48)
	for i := range flat.Data() {
		flat.Data()[i] = float64((i*2654435761)%1000) / 1000
	}
	prFlat, err := PRAtK(flat, occ, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if pr[50][0] <= prFlat[50][0] {
		t.Fatalf("informative precision %v not above random %v", pr[50][0], prFlat[50][0])
	}
	if _, err := PRAtK(nil, occ, []int{1}); err == nil {
		t.Fatal("want nil error")
	}
	if _, err := PRAtK(truthRisk, raster.MustGrid(1, 1), []int{1}); err == nil {
		t.Fatal("want shape error")
	}
}

func TestSweepCostMatchesManual(t *testing.T) {
	risk, occ := tinyCase()
	sweep, err := Sweep(risk, occ, nil, Costs{Miss: 2, FalseAlarm: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sweep {
		manual, err := TotalCost(risk, occ, nil, p.Threshold, Costs{Miss: 2, FalseAlarm: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(manual-p.Cost) > 1e-12 {
			t.Fatalf("sweep cost %v != manual %v at T=%v", p.Cost, manual, p.Threshold)
		}
	}
}
