package core

import (
	"context"
	"math"
	"testing"

	"modelir/internal/linear"
	"modelir/internal/topk"
)

func remoteTestEngine(t *testing.T) (*Engine, Request) {
	t.Helper()
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return e, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10}
}

func TestSharedBoundTranslation(t *testing.T) {
	sb := NewSharedBound()
	if f := sb.Floor(); !math.IsInf(f, -1) {
		t.Fatalf("fresh Floor = %v", f)
	}
	// Raises before attach are buffered and applied, shift-adjusted,
	// when the plan's bound arrives.
	sb.Raise(5)
	sb.Raise(3) // lower: ignored
	b := topk.NewBound()
	sb.attach(b, 2) // result = internal + 2
	if got := b.Get(); got != 3 {
		t.Fatalf("internal floor after attach = %v, want 3", got)
	}
	sb.Raise(7)
	if got := b.Get(); got != 5 {
		t.Fatalf("internal floor after raise = %v, want 5", got)
	}
	// Local raises surface through Floor in result scale.
	b.Raise(10)
	if got := sb.Floor(); got != 12 {
		t.Fatalf("Floor = %v, want 12", got)
	}
	sb.detach()
	if got := sb.Floor(); got != 12 {
		t.Fatalf("Floor after detach = %v, want 12", got)
	}
	if !sb.foreignRaised() {
		t.Fatal("foreignRaised = false after external raise")
	}
	if NewSharedBound().foreignRaised() {
		t.Fatal("foreignRaised = true on fresh bound")
	}
}

func TestRunSharedMatchesRun(t *testing.T) {
	e, req := remoteTestEngine(t)
	// Cold run first so the plan actually attaches (a cache hit would
	// short-circuit before the bound exists and leave the floor at -Inf).
	sb := NewSharedBound()
	got, err := e.RunShared(context.Background(), req, sb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	itemsEqual(t, "RunShared vs Run", got.Items, want.Items)

	// Floor after the run reflects the filled heap's threshold: at
	// least the K-th best score, in result scale.
	kth := want.Items[len(want.Items)-1].Score
	if f := sb.Floor(); f < kth {
		t.Fatalf("Floor = %v, want >= k-th score %v", f, kth)
	}
}

// A foreign floor prunes, but every surviving item is bit-identical to
// the reference run's items at or above the floor.
func TestRunSharedForeignFloorPrunes(t *testing.T) {
	e, req := remoteTestEngine(t)
	want, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	floor := want.Items[2].Score // only the top 3 can survive for sure
	sb := NewSharedBound()
	sb.Raise(floor)
	got, err := e.RunShared(context.Background(), req, sb)
	if err != nil {
		t.Fatal(err)
	}
	// Items scoring >= floor can never be pruned (strict screening), so
	// they must appear exactly as in the reference.
	n := 0
	for n < len(want.Items) && want.Items[n].Score >= floor {
		n++
	}
	if len(got.Items) < n {
		t.Fatalf("got %d items, want at least the %d at/above the floor", len(got.Items), n)
	}
	itemsEqual(t, "items at/above foreign floor", got.Items[:n], want.Items[:n])
	for _, it := range got.Items[n:] {
		if it.Score >= floor {
			t.Fatalf("item %d score %v >= floor yet not in reference prefix", it.ID, it.Score)
		}
	}
}

// A run pruned by a foreign floor must not poison the result cache: an
// identical standalone request afterwards gets the full local answer.
func TestRunSharedForeignFloorNotCached(t *testing.T) {
	e, req := remoteTestEngine(t)

	ref := NewEngineWith(Options{Shards: 4})
	a := buildArchives(t)
	if err := ref.AddTuples("gauss", a.pts); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	sb := NewSharedBound()
	sb.Raise(want.Items[0].Score) // aggressive foreign floor
	if _, err := e.RunShared(context.Background(), req, sb); err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Cache.Hit {
		t.Fatal("foreign-floored result was served from cache")
	}
	itemsEqual(t, "post-scatter standalone run", got.Items, want.Items)
}
